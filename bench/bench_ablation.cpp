// Ablation studies for the design choices DESIGN.md calls out:
//  1. pJDS block size br (paper: br = warp size, "no matrix-dependent
//     tuning parameters") — footprint and throughput across br,
//  2. sliced-ELLPACK sorting window σ (the SELL-C-σ outlook): σ = 1
//     (Monakov) ... σ = N (pJDS-like),
//  3. why ELLPACK-style formats exist at all: CSR-scalar on the GPU.
#include <cstdio>
#include <string>

#include "sparse/footprint.hpp"
#include "gpusim/gpu_spmv.hpp"
#include "matgen/suite.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "sparse/bellpack.hpp"
#include "util/ascii.hpp"

using namespace spmvm;

int main(int argc, char** argv) {
  std::string json_path, err;
  if (!obs::consume_json_flag(&argc, argv, &json_path, &err)) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 1;
  }
  if (argc > 1) {
    std::fprintf(stderr, "usage: %s [--json <path>]\n", argv[0]);
    return 1;
  }
  obs::BenchReport report;
  report.binary = "bench_ablation";
  report.metadata = obs::machine_fingerprint();

  const auto dev = gpusim::DeviceSpec::tesla_c2070();
  const auto dlr1 = make_named("DLR1", 16).matrix;
  const auto samg = make_named("sAMG", 64).matrix;

  std::printf("Ablation 1: pJDS block size br (DP, ECC on)\n\n");
  AsciiTable t1({"br", "DLR1 fill %", "DLR1 GF/s", "sAMG fill %",
                 "sAMG GF/s"});
  for (const index_t br : {1, 4, 8, 16, 32, 64, 128}) {
    std::vector<std::string> row = {std::to_string(br)};
    for (const auto* a : {&dlr1, &samg}) {
      PjdsOptions opt;
      opt.block_rows = br;
      const auto p = Pjds<double>::from_csr(*a, opt);
      const auto r = gpusim::simulate(dev, p, {});
      row.push_back(fmt(100.0 * p.fill_fraction(), 2));
      row.push_back(fmt(r.gflops, 1));
      report.entries.push_back(obs::summarize_samples(
          std::string("ablation1/pjds_br") + std::to_string(br) + "/" +
              (a == &dlr1 ? "DLR1" : "sAMG"),
          {},
          {{"fill_pct", 100.0 * p.fill_fraction()}, {"GF/s", r.gflops}}));
    }
    t1.add_row(row);
  }
  std::printf("%s\n", t1.render().c_str());
  std::printf("expected: fill grows with br; throughput flat around br = 32 "
              "(warp size)\n-> confirms \"no matrix-dependent tuning "
              "parameters\".\n\n");

  std::printf("Ablation 2: sliced-ELLPACK sorting window sigma "
              "(C = 32, DP, ECC on)\n\n");
  AsciiTable t2({"sigma", "sAMG fill %", "sAMG GF/s", "sAMG warp eff %"});
  for (const index_t sigma :
       {1, 32, 256, 4096, samg.n_rows}) {
    const auto s = SlicedEll<double>::from_csr(samg, 32, sigma,
                                               PermuteColumns::yes);
    const auto r = gpusim::simulate(dev, s, {});
    t2.add_row({sigma == samg.n_rows ? "N (full sort)" : std::to_string(sigma),
                fmt(100.0 * s.fill_fraction(), 2), fmt(r.gflops, 1),
                fmt(100.0 * r.stats.warp_efficiency(), 1)});
    report.entries.push_back(obs::summarize_samples(
        std::string("ablation2/sell_sigma") +
            (sigma == samg.n_rows ? "N" : std::to_string(sigma)) + "/sAMG",
        {},
        {{"fill_pct", 100.0 * s.fill_fraction()},
         {"GF/s", r.gflops},
         {"warp_efficiency_pct", 100.0 * r.stats.warp_efficiency()}}));
  }
  std::printf("%s\n", t2.render().c_str());
  std::printf("expected: sigma = 1 keeps ELLPACK-R-like fill/efficiency; "
              "larger windows\napproach pJDS — the SELL-C-sigma trade-off of "
              "the paper's outlook.\n\n");

  std::printf("Ablation 3: CSR-scalar GPU kernel vs GPU formats "
              "(DLR1, DP, ECC on)\n\n");
  AsciiTable t3({"format", "GF/s", "bytes/flop"});
  for (const auto kind :
       {gpusim::FormatKind::csr_scalar, gpusim::FormatKind::csr_vector,
        gpusim::FormatKind::ellpack, gpusim::FormatKind::ellpack_r,
        gpusim::FormatKind::sliced_ell, gpusim::FormatKind::pjds}) {
    const auto r = gpusim::simulate_format(dev, dlr1, kind);
    t3.add_row({gpusim::to_string(kind), fmt(r.gflops, 1),
                fmt(r.code_balance, 2)});
    report.entries.push_back(obs::summarize_samples(
        std::string("ablation3/") + gpusim::to_string(kind) + "/DLR1", {},
        {{"GF/s", r.gflops}, {"bytes_per_flop", r.code_balance}}));
  }
  std::printf("%s\n", t3.render().c_str());
  std::printf("expected: uncoalesced CSR-scalar far below every "
              "ELLPACK-family format;\nCSR-vector competitive only because "
              "DLR1 rows are long.\n\n");

  std::printf("Ablation 4: ELLR-T threads-per-row sweep (DP, ECC on) — the "
              "tuning parameter\npJDS does without\n\n");
  {
    AsciiTable tt({"T", "DLR1 GF/s", "sAMG GF/s"});
    const auto e_dlr1 = Ellpack<double>::from_csr(dlr1, 32);
    const auto e_samg = Ellpack<double>::from_csr(samg, 32);
    for (const int t : {1, 2, 4, 8, 16, 32}) {
      const double g_dlr1 = gpusim::simulate_ellr_t(dev, e_dlr1, t).gflops;
      const double g_samg = gpusim::simulate_ellr_t(dev, e_samg, t).gflops;
      tt.add_row({std::to_string(t), fmt(g_dlr1, 1), fmt(g_samg, 1)});
      report.entries.push_back(obs::summarize_samples(
          std::string("ablation4/ellr_t") + std::to_string(t), {},
          {{"DLR1_GF/s", g_dlr1}, {"sAMG_GF/s", g_samg}}));
    }
    std::printf("%s\n", tt.render().c_str());
    std::printf("expected: the optimal T differs per matrix (long-row DLR1 "
                "likes larger T,\nshort-row sAMG degrades) — ELLR-T needs "
                "per-matrix tuning, pJDS does not.\n\n");
  }

  std::printf("Ablation 5: BELLPACK (5x5 tiles) vs pJDS — a priori block "
              "structure\n\n");
  const auto dlr2 = make_named("DLR2", 64).matrix;
  AsciiTable t4({"matrix", "format", "device bytes/nnz (DP)", "fill %"});
  for (const auto* item : {&dlr2, &samg}) {
    const char* mname = item == &dlr2 ? "DLR2 (5x5 blocks)" : "sAMG (unstructured)";
    const char* slug = item == &dlr2 ? "DLR2" : "sAMG";
    const auto bell = Bellpack<double>::from_csr(*item, 5, 5, 32);
    const auto pjds = Pjds<double>::from_csr(*item);
    const double bell_bpn = static_cast<double>(bell.bytes()) /
                            static_cast<double>(item->nnz());
    const double pjds_bpn = static_cast<double>(pjds.bytes()) /
                            static_cast<double>(item->nnz());
    t4.add_row({mname, "BELLPACK 5x5", fmt(bell_bpn, 2),
                fmt(100.0 * bell.fill_fraction(), 1)});
    t4.add_row({mname, "pJDS", fmt(pjds_bpn, 2),
                fmt(100.0 * pjds.fill_fraction(), 1)});
    report.entries.push_back(obs::summarize_samples(
        std::string("ablation5/bellpack/") + slug, {},
        {{"bytes_per_nnz", bell_bpn},
         {"fill_pct", 100.0 * bell.fill_fraction()}}));
    report.entries.push_back(obs::summarize_samples(
        std::string("ablation5/pjds/") + slug, {},
        {{"bytes_per_nnz", pjds_bpn},
         {"fill_pct", 100.0 * pjds.fill_fraction()}}));
  }
  std::printf("%s\n", t4.render().c_str());
  std::printf("expected: even with perfectly matching 5x5 tiles (DLR2), "
              "BELLPACK's per-tile\nindex savings cannot offset its "
              "ELLPACK-style block-row padding, and on a\ngeneral matrix "
              "(sAMG) the tiles store almost only zeros — the paper's "
              "rationale\nfor a structure-agnostic format with no tuning "
              "parameters.\n");

  if (!json_path.empty() && !report.write(json_path)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  // SPMVM_TRACE=1 records spans from every simulated kernel above;
  // flush them as a Chrome trace next to the report.
  if (obs::tracing_enabled() &&
      obs::write_chrome_trace("bench_ablation_trace.json"))
    std::printf("\ntrace written to bench_ablation_trace.json\n");
  return 0;
}
