// Fig. 2 reproduction: storage size and scheduling overhead per storage
// format, plus the device-memory consequence the paper highlights: DLR2
// in double precision fits a 3 GB Tesla C2050 only in the pJDS format.
//
// The formats are enumerated from the registry — every entry with a
// simulated kernel gets a row (the paper's ELLPACK / ELLPACK-R / pJDS
// trio plus whatever else is registered).
#include <cstdio>
#include <string>

#include "formats/registry.hpp"
#include "matgen/suite.hpp"
#include "obs/report.hpp"
#include "util/ascii.hpp"

using namespace spmvm;

int main(int argc, char** argv) {
  std::string json_path, err;
  if (!obs::consume_json_flag(&argc, argv, &json_path, &err)) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 1;
  }
  if (argc > 1) {
    std::fprintf(stderr, "usage: %s [--json <path>]\n", argv[0]);
    return 1;
  }
  obs::BenchReport report;
  report.binary = "bench_fig2_storage";
  report.metadata = obs::machine_fingerprint();

  std::printf("Fig. 2: storage and warp-scheduling overhead per format\n\n");

  AsciiTable t({"matrix", "format", "stored entries", "fill %",
                "warp efficiency %", "GF/s (DP,ECC)"});
  const auto dev = gpusim::DeviceSpec::tesla_c2070();
  const auto& reg = formats::registry<double>();
  struct Item {
    const char* name;
    double scale;
  };
  for (const auto& [name, scale] : {Item{"DLR1", 16}, Item{"DLR2", 32},
                                    Item{"HMEp", 64}, Item{"sAMG", 64}}) {
    const auto a = make_named(name, scale).matrix;
    auto sdev = dev;  // scale the L2 with the matrix (see DESIGN.md)
    sdev.l2_bytes = static_cast<std::size_t>(
        static_cast<double>(dev.l2_bytes) / scale);

    for (const formats::FormatInfo& info : reg.list()) {
      if (!info.has_sim_kernel) continue;
      const auto plan = reg.build(info.name, a);
      const auto r = plan->simulate(sdev);
      const Footprint f = plan->footprint();
      const double fill =
          f.stored_entries == 0
              ? 0.0
              : 100.0 * static_cast<double>(f.stored_entries - f.true_nnz) /
                    static_cast<double>(f.stored_entries);
      t.add_row({name, info.name, fmt_count(f.stored_entries), fmt(fill, 1),
                 fmt(100.0 * r->stats.warp_efficiency(), 1),
                 fmt(r->gflops, 1)});
      report.entries.push_back(obs::summarize_samples(
          std::string("fig2/") + name + "/" + info.name, {},
          {{"stored_entries", static_cast<double>(f.stored_entries)},
           {"fill_pct", fill},
           {"warp_efficiency_pct", 100.0 * r->stats.warp_efficiency()},
           {"GF/s", r->gflops}}));
    }
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("(white boxes of Fig. 2 = fill %%; light boxes = 100%% - warp "
              "efficiency)\n\n");

  // Device-capacity check at FULL paper scale, extrapolated linearly from
  // the scaled stand-in (stored entries scale with N).
  std::printf("device capacity check: DLR2, double precision, Tesla C2050 "
              "(3 GB)\n");
  const double scale = 32;
  const auto dlr2 = make_named("DLR2", scale).matrix;
  const auto c2050 = gpusim::DeviceSpec::tesla_c2050();
  AsciiTable cap({"format", "full-scale device GB", "fits 3 GB C2050?"});
  for (const formats::FormatInfo& info : reg.list()) {
    if (!info.has_sim_kernel) continue;
    const auto plan = reg.build(info.name, dlr2);
    const double gb =
        static_cast<double>(plan->footprint().total_bytes(sizeof(double))) *
        scale / 1e9;
    const bool fits = gb * 1e9 <= static_cast<double>(c2050.dram_bytes);
    cap.add_row({info.name, fmt(gb, 2), fits ? "yes" : "NO"});
    report.entries.push_back(obs::summarize_samples(
        std::string("fig2/capacity_dlr2/") + info.name, {},
        {{"device_gb_full_scale", gb}, {"fits_c2050", fits ? 1.0 : 0.0}}));
  }
  std::printf("%s\n", cap.render().c_str());
  std::printf("paper claim: \"the DLR2 matrix fits (in double precision) on "
              "an nVidia Fermi\nC2050 GPGPU only when using the pJDS "
              "format\" (its 6 GB sibling C2070 holds both).\n");

  if (!json_path.empty() && !report.write(json_path)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
