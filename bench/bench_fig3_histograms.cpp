// Fig. 3 reproduction: row-length distribution histograms (bin size 1,
// relative share, log y) of the DLR1, DLR2, HMEp and sAMG stand-ins,
// with the paper's N / Nnz / distribution-shape annotations.
#include <cstdio>
#include <string>
#include <vector>

#include "matgen/suite.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "sparse/matrix_stats.hpp"
#include "util/ascii.hpp"

using namespace spmvm;

int main(int argc, char** argv) {
  std::string json_path, err;
  if (!obs::consume_json_flag(&argc, argv, &json_path, &err)) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 1;
  }
  if (argc > 1) {
    std::fprintf(stderr, "usage: %s [--json <path>]\n", argv[0]);
    return 1;
  }
  obs::BenchReport report;
  report.binary = "bench_fig3_histograms";
  report.metadata = obs::machine_fingerprint();

  std::printf("Fig. 3: row length distribution histograms (relative share, "
              "log scale)\n\n");
  struct Item {
    const char* name;
    double scale;
  };
  for (const auto& [name, scale] : {Item{"DLR1", 16}, Item{"DLR2", 16},
                                    Item{"HMEp", 64}, Item{"sAMG", 64}}) {
    const auto m = make_named(name, scale);
    const auto s = compute_stats(m.matrix);
    std::printf("%s\n", format_stats(m.name, s).c_str());
    std::printf("  paper full size: N = %s, Nnzr = %.0f (matrix scaled by "
                "1/%.0f)\n",
                fmt_count(m.paper.dimension).c_str(), m.paper.nnzr, scale);

    const auto& h = s.row_len_histogram;
    std::vector<double> x, share;
    for (index_t v = 0; v <= s.max_row_len; ++v) {
      x.push_back(v);
      share.push_back(h.relative_share(v));
    }
    std::printf("%s\n",
                ascii_chart("  relative share vs non-zeros per row", x,
                            {share}, {"share"}, /*log_y=*/true, 12, 64)
                    .c_str());
    const double share_near_max =
        100.0 * h.share_at_least(static_cast<index_t>(0.8 * s.max_row_len));
    std::printf("  share of rows at >= 0.8*max length: %.1f%%\n",
                share_near_max);
    std::printf("  max/min row length: %.2f\n\n", s.relative_width);
    report.entries.push_back(obs::summarize_samples(
        std::string("fig3/") + name, {},
        {{"n_rows", static_cast<double>(s.n_rows)},
         {"nnzr", s.avg_row_len},
         {"max_row_len", static_cast<double>(s.max_row_len)},
         {"share_near_max_pct", share_near_max},
         {"relative_width", s.relative_width}}));
  }
  std::printf("paper shapes to check: DLR1 narrow with ~80%% of weight near "
              "the maximum;\nsAMG max > 4x min with short rows dominating; "
              "DLR2 widest absolute range;\nHMEp compact around Nnzr ~ 15.\n");

  if (!json_path.empty() && !report.write(json_path)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  // SPMVM_TRACE=1 records the matrix-generation spans; flush them.
  if (obs::tracing_enabled() &&
      obs::write_chrome_trace("bench_fig3_trace.json"))
    std::printf("\ntrace written to bench_fig3_trace.json\n");
  return 0;
}
