// Fig. 4 reproduction: event timeline of one task-mode spMVM iteration —
// dedicated communication thread (thread 0), kernel-launch thread
// (thread 1) and the GPGPU — for a DLR1-like rank at two scales of
// communication intensity.
#include <cstdio>

#include "dist/cluster_model.hpp"
#include "matgen/suite.hpp"

using namespace spmvm;
using namespace spmvm::dist;

namespace {
void show(const char* title, const Csr<double>& a, int nodes, int rank) {
  const auto part = partition_balanced_nnz(a, nodes);
  const auto d = distribute(a, part, rank);
  const auto c = ClusterSpec::dirac();
  const auto t = node_timing(c, d);
  std::printf("%s (rank %d of %d; %d peers, %s halo elements)\n", title, rank,
              nodes, t.n_peers, std::to_string(d.n_halo).c_str());
  std::printf("%s\n", task_mode_timeline(c, t).render(70).c_str());
  std::printf("  t_local %.1f us | t_comm %.1f us | t_down+t_up %.1f us | "
              "t_nonlocal %.1f us\n",
              t.t_local * 1e6, t.t_comm * 1e6, (t.t_down + t.t_up) * 1e6,
              t.t_nonlocal * 1e6);
  std::printf("  iteration: task %.1f us, naive %.1f us, vector %.1f us\n",
              t.iteration_seconds(c, CommScheme::task_mode) * 1e6,
              t.iteration_seconds(c, CommScheme::naive_overlap) * 1e6,
              t.iteration_seconds(c, CommScheme::vector_mode) * 1e6);
  // The persistent comm thread of dist/comm_plan replaces the paper-era
  // spawn/join per iteration with a condition-variable wake.
  ClusterSpec spawned = c;
  spawned.persistent_comm = false;
  std::printf("  task-mode thread cost: %.2f us woken (persistent plan) vs "
              "%.2f us spawned per iteration\n\n",
              c.thread_wake_s * 1e6, spawned.thread_sync_s * 1e6);
}
}  // namespace

int main() {
  std::printf("Fig. 4: task-mode event timeline (dedicated host thread for "
              "asynchronous MPI)\n\n");
  const auto a = make_named("DLR1", 8).matrix;
  show("communication well hidden (4 nodes)", a, 4, 1);
  show("strong-scaling regime (32 nodes)", a, 32, 15);
  std::printf("paper claim: the local spMVM on the GPGPU overlaps the entire "
              "gather/\nexchange/upload chain of thread 0; only the non-local "
              "kernel remains exposed.\n");
  return 0;
}
