// Fig. 4 reproduction: event timeline of one task-mode spMVM iteration —
// dedicated communication thread (thread 0), kernel-launch thread
// (thread 1) and the GPGPU — for a DLR1-like rank at two scales of
// communication intensity. The modeled timelines are followed by a
// *measured* one: a traced 4-rank task-mode run through the persistent
// plan, merged across rank lanes and attributed per phase
// (DESIGN.md §11).
#include <cstdio>
#include <span>
#include <vector>

#include "dist/cluster_model.hpp"
#include "dist/comm_plan.hpp"
#include "dist/timeline.hpp"
#include "matgen/suite.hpp"
#include "msg/runtime.hpp"
#include "obs/attribution.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"

using namespace spmvm;
using namespace spmvm::dist;

namespace {
void show(const char* title, const Csr<double>& a, int nodes, int rank) {
  const auto part = partition_balanced_nnz(a, nodes);
  const auto d = distribute(a, part, rank);
  const auto c = ClusterSpec::dirac();
  const auto t = node_timing(c, d);
  std::printf("%s (rank %d of %d; %d peers, %s halo elements)\n", title, rank,
              nodes, t.n_peers, std::to_string(d.n_halo).c_str());
  std::printf("%s\n", task_mode_timeline(c, t).render(70).c_str());
  std::printf("  t_local %.1f us | t_comm %.1f us | t_down+t_up %.1f us | "
              "t_nonlocal %.1f us\n",
              t.t_local * 1e6, t.t_comm * 1e6, (t.t_down + t.t_up) * 1e6,
              t.t_nonlocal * 1e6);
  std::printf("  iteration: task %.1f us, naive %.1f us, vector %.1f us\n",
              t.iteration_seconds(c, CommScheme::task_mode) * 1e6,
              t.iteration_seconds(c, CommScheme::naive_overlap) * 1e6,
              t.iteration_seconds(c, CommScheme::vector_mode) * 1e6);
  // The persistent comm thread of dist/comm_plan replaces the paper-era
  // spawn/join per iteration with a condition-variable wake.
  ClusterSpec spawned = c;
  spawned.persistent_comm = false;
  std::printf("  task-mode thread cost: %.2f us woken (persistent plan) vs "
              "%.2f us spawned per iteration\n\n",
              c.thread_wake_s * 1e6, spawned.thread_sync_s * 1e6);
}

/// The measured counterpart: run the real persistent plan on the
/// in-process runtime with tracing on, then render the merged rank-lane
/// timeline and the per-rank phase attribution from the recorded spans.
void show_measured(const Csr<double>& a) {
  const int n_ranks = 4;
  const int iters = 3;
  const auto part = partition_balanced_nnz(a, n_ranks);
  const bool was_tracing = obs::tracing_enabled();
  obs::set_tracing(true);
  msg::Runtime::run(n_ranks, [&](msg::Comm& comm) {
    const auto d = distribute(a, part, comm.rank());
    std::vector<double> x(static_cast<std::size_t>(d.n_local), 1.0);
    std::vector<double> y(static_cast<std::size_t>(d.n_local));
    CommPlan<double> plan(comm, d, CommScheme::task_mode,
                          /*gather_threads=*/2);
    // Clip the window to steady-state iterations: construction spans
    // are dropped while every rank is parked between two barriers.
    comm.barrier();
    if (comm.rank() == 0) obs::clear_trace();
    comm.barrier();
    for (int it = 0; it < iters; ++it) {
      plan.spmv(std::span<const double>(x), std::span<double>(y));
      comm.barrier();
    }
  });
  obs::set_tracing(was_tracing);
  const auto events = obs::collect();
  const auto threads = obs::trace_threads();
  const auto merged =
      obs::merge_traces(obs::split_trace_by_rank(events, threads));
  std::printf("measured: task-mode plan, %d ranks x %d iterations "
              "(in-process runtime, merged rank lanes)\n",
              n_ranks, iters);
  std::printf("%s\n",
              timeline_from_trace(merged.events, merged.threads, 1)
                  .render(70)
                  .c_str());
  std::printf("%s", obs::attribute_comm_phases(events).render().c_str());
  obs::clear_trace();
}
}  // namespace

int main() {
  std::printf("Fig. 4: task-mode event timeline (dedicated host thread for "
              "asynchronous MPI)\n\n");
  const auto a = make_named("DLR1", 8).matrix;
  show("communication well hidden (4 nodes)", a, 4, 1);
  show("strong-scaling regime (32 nodes)", a, 32, 15);
  std::printf("paper claim: the local spMVM on the GPGPU overlaps the entire "
              "gather/\nexchange/upload chain of thread 0; only the non-local "
              "kernel remains exposed.\n\n");
  show_measured(a);
  return 0;
}
