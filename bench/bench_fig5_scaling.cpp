// Fig. 5 reproduction: strong scaling of distributed spMVM for DLR1 (a)
// and UHBR (b) on a Dirac-like cluster (Tesla C2050 per node), DP with
// ECC, for the three communication schemes.
//
// The stand-in matrices are scaled down by S; to preserve the capacity
// effect ("UHBR does not fit on fewer than five nodes") the device memory
// is scaled by the same factor.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "dist/cluster_model.hpp"
#include "dist/comm_plan.hpp"
#include "obs/report.hpp"
#include "gpusim/gpu_spmv.hpp"
#include "matgen/suite.hpp"
#include "sparse/matrix_stats.hpp"
#include "util/ascii.hpp"

using namespace spmvm;
using namespace spmvm::dist;

namespace {

const char* scheme_slug(CommScheme s) {
  switch (s) {
    case CommScheme::vector_mode:
      return "vector";
    case CommScheme::naive_overlap:
      return "naive";
    case CommScheme::task_mode:
      return "task";
  }
  return "?";
}

void run_case(const char* name, double scale, double paper_single_gfs,
              const std::vector<int>& nodes, obs::BenchReport* report) {
  const auto m = make_named(name, scale);
  std::printf("%s\n", format_stats(m.name, compute_stats(m.matrix)).c_str());

  ClusterSpec c = ClusterSpec::dirac();
  c.device.dram_bytes =
      static_cast<std::size_t>(static_cast<double>(c.device.dram_bytes) / scale);
  c.device.l2_bytes =
      static_cast<std::size_t>(static_cast<double>(c.device.l2_bytes) / scale);

  const std::vector<CommScheme> schemes = {CommScheme::vector_mode,
                                           CommScheme::naive_overlap,
                                           CommScheme::task_mode};
  const auto pts = strong_scaling(c, m.matrix, nodes, schemes);
  if (report != nullptr) {
    for (const auto& p : pts) {
      if (p.seconds == 0.0) continue;  // did not fit in device memory
      const std::string entry_name = std::string(name) + "/" +
                                     scheme_slug(p.scheme) + "/" +
                                     std::to_string(p.nodes);
      const double sample[] = {p.seconds};
      report->entries.push_back(obs::summarize_samples(
          entry_name, sample,
          {{"GF/s", p.gflops}, {"nodes", static_cast<double>(p.nodes)}}));
    }
  }

  AsciiTable t({"nodes", "vector [GF/s]", "naive [GF/s]", "task [GF/s]",
                "task efficiency %"});
  double base = 0.0;
  int base_nodes = 0;
  std::vector<double> x;
  std::vector<std::vector<double>> series(3);
  for (const int n : nodes) {
    std::vector<std::string> row = {std::to_string(n)};
    double task_gfs = 0.0;
    bool fits = true;
    for (std::size_t s = 0; s < schemes.size(); ++s) {
      for (const auto& p : pts) {
        if (p.nodes != n || p.scheme != schemes[s]) continue;
        if (p.seconds == 0.0) {
          row.push_back("(no fit)");
          fits = false;
        } else {
          row.push_back(fmt(p.gflops, 1));
          if (schemes[s] == CommScheme::task_mode) task_gfs = p.gflops;
        }
        if (fits) series[s].push_back(p.gflops);
      }
    }
    if (fits) {
      x.push_back(n);
      if (base == 0.0) {
        base = task_gfs;
        base_nodes = n;
      }
      row.push_back(fmt(100.0 * task_gfs / (base * n / base_nodes), 1));
    } else {
      for (auto& s : series)
        if (s.size() > x.size()) s.pop_back();
      row.push_back("-");
    }
    t.add_row(row);
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("%s\n",
              ascii_chart("  performance vs nodes", x, series,
                          {"vector mode", "naive overlap", "task mode"},
                          false, 14, 60)
                  .c_str());
  if (paper_single_gfs > 0)
    std::printf("paper single-GPU level: %.1f GF/s (incl. PCIe)\n",
                paper_single_gfs);
  std::printf("\n");
}

/// Measured (wall-clock, functional runtime): per-iteration cost of the
/// legacy per-call dist_spmv vs the persistent CommPlan, per scheme.
/// Emitted into --json as measured/<scheme>/{legacy,plan} (not gated).
void run_measured_plan_comparison(obs::BenchReport* report) {
  const auto m = make_named("DLR1", 16);
  const int n_ranks = 4;
  const int iters = 40;
  const auto part = partition_balanced_nnz(m.matrix, n_ranks);
  AsciiTable t({"scheme", "legacy [us/iter]", "plan [us/iter]", "speedup"});
  for (const auto scheme :
       {CommScheme::vector_mode, CommScheme::naive_overlap,
        CommScheme::task_mode}) {
    double legacy_s = 0.0, plan_s = 0.0;
    msg::Runtime::run(n_ranks, [&](msg::Comm& comm) {
      const auto d = distribute(m.matrix, part, comm.rank());
      std::vector<double> x(static_cast<std::size_t>(d.n_local), 1.0);
      std::vector<double> y(static_cast<std::size_t>(d.n_local));
      std::vector<double> halo, sendbuf;
      dist_spmv(comm, d, std::span<const double>(x), std::span<double>(y),
                scheme, halo, sendbuf);  // warm up both paths
      // Best of three repetitions per path: the in-process runtime runs
      // on a shared machine, so single samples are noisy.
      double best_legacy = 0.0, best_plan = 0.0;
      for (int rep = 0; rep < 3; ++rep) {
        comm.barrier();
        const auto t0 = std::chrono::steady_clock::now();
        for (int it = 0; it < iters; ++it)
          dist_spmv(comm, d, std::span<const double>(x),
                    std::span<double>(y), scheme, halo, sendbuf);
        const double s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        if (rep == 0 || s < best_legacy) best_legacy = s;
      }
      CommPlan<double> plan(comm, d, scheme, /*gather_threads=*/2);
      plan.spmv(std::span<const double>(x), std::span<double>(y));
      for (int rep = 0; rep < 3; ++rep) {
        comm.barrier();
        const auto t0 = std::chrono::steady_clock::now();
        for (int it = 0; it < iters; ++it)
          plan.spmv(std::span<const double>(x), std::span<double>(y));
        const double s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        if (rep == 0 || s < best_plan) best_plan = s;
      }
      if (comm.rank() == 0) {
        legacy_s = best_legacy / iters;
        plan_s = best_plan / iters;
      }
    });
    t.add_row({to_string(scheme), fmt(legacy_s * 1e6, 1),
               fmt(plan_s * 1e6, 1),
               fmt(plan_s > 0.0 ? legacy_s / plan_s : 0.0, 2)});
    if (report != nullptr) {
      const double ls[] = {legacy_s};
      const double ps[] = {plan_s};
      report->entries.push_back(obs::summarize_samples(
          std::string("measured/") + scheme_slug(scheme) + "/legacy", ls,
          {}));
      report->entries.push_back(obs::summarize_samples(
          std::string("measured/") + scheme_slug(scheme) + "/plan", ps,
          {{"speedup", plan_s > 0.0 ? legacy_s / plan_s : 0.0}}));
    }
  }
  std::printf("measured on the in-process runtime (DLR1/16, 4 ranks, "
              "%d iterations):\n%s\n",
              iters, t.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path, err;
  if (!obs::consume_json_flag(&argc, argv, &json_path, &err)) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 1;
  }
  if (argc > 1) {
    std::fprintf(stderr, "usage: %s [--json <path>]\n", argv[0]);
    return 1;
  }
  obs::BenchReport report;
  report.binary = "bench_fig5_scaling";
  report.metadata.emplace_back("cluster", "dirac");
  report.metadata.emplace_back("precision", "dp+ecc");
  obs::BenchReport* rep = json_path.empty() ? nullptr : &report;

  std::printf("Fig. 5: strong scaling on a Dirac-like cluster "
              "(model, DP + ECC, ELLPACK-R)\n\n");
  const std::vector<int> nodes = {1, 2, 4, 8, 12, 16, 20, 24, 28, 32};

  std::printf("(a) DLR1 — small dimension, breakdown at high node counts\n");
  run_case("DLR1", 8, 10.9, nodes, rep);

  std::printf("(b) UHBR — large Nnz, no breakdown; capacity floor at small "
              "node counts\n");
  run_case("UHBR", 64, 44.6, nodes, rep);

  std::printf("paper claims to check:\n"
              " - task mode best everywhere; naive overlap >= vector mode;\n"
              " - DLR1: per-GPU breakdown at 32 nodes, schemes converge;\n"
              " - UHBR: no fit below ~5 nodes; task-mode parallel efficiency "
              "~84%% at 32 nodes\n   (~70%% naive overlap).\n\n");

  // Future-work extension the paper announces: the multi-GPGPU code with
  // the pJDS format instead of ELLPACK-R.
  std::printf("extension: task-mode scaling with pJDS device format "
              "(paper: ongoing work)\n");
  {
    const double scale = 8;
    const auto m = make_named("DLR1", scale);
    ClusterSpec c = ClusterSpec::dirac();
    c.device.dram_bytes = static_cast<std::size_t>(
        static_cast<double>(c.device.dram_bytes) / scale);
    c.device.l2_bytes = static_cast<std::size_t>(
        static_cast<double>(c.device.l2_bytes) / scale);
    AsciiTable t({"nodes", "ELLPACK-R task [GF/s]", "pJDS task [GF/s]",
                  "pJDS device bytes / E-R"});
    for (const int n : {1, 4, 16, 32}) {
      c.matrix_format = gpusim::FormatKind::ellpack_r;
      const auto er =
          strong_scaling(c, m.matrix, {n}, {CommScheme::task_mode});
      c.matrix_format = gpusim::FormatKind::pjds;
      const auto pj =
          strong_scaling(c, m.matrix, {n}, {CommScheme::task_mode});
      const auto part = partition_balanced_nnz(m.matrix, n);
      const auto d = distribute(m.matrix, part, 0);
      const double ratio =
          static_cast<double>(gpusim::device_bytes(
              d.local, gpusim::FormatKind::pjds, 32)) /
          static_cast<double>(gpusim::device_bytes(
              d.local, gpusim::FormatKind::ellpack_r, 32));
      t.add_row({std::to_string(n), fmt(er[0].gflops, 1),
                 fmt(pj[0].gflops, 1), fmt(ratio, 2)});
    }
    std::printf("%s\n", t.render().c_str());
  }

  std::printf("persistent halo-exchange plans vs per-call exchange:\n");
  run_measured_plan_comparison(rep);

  if (rep != nullptr && !rep->write(json_path)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
