// google-benchmark microbenchmarks of the *host* spMVM kernels for every
// storage format (the CPU reference implementations behind the library).
#include <benchmark/benchmark.h>

#include <vector>

#include "core/pjds_spmv.hpp"
#include "core/spmmv.hpp"
#include "matgen/generators.hpp"
#include "sparse/spmv_host.hpp"

using namespace spmvm;

namespace {

const Csr<double>& test_matrix() {
  static const Csr<double> a = [] {
    GenConfig cfg;
    cfg.scale = 128;
    return make_samg<double>(cfg);
  }();
  return a;
}

struct Vectors {
  std::vector<double> x;
  std::vector<double> y;
  explicit Vectors(const Csr<double>& a)
      : x(static_cast<std::size_t>(a.n_cols), 1.0),
        y(static_cast<std::size_t>(a.n_rows)) {}
};

void report(benchmark::State& state, offset_t nnz) {
  state.counters["GF/s"] = benchmark::Counter(
      2.0 * static_cast<double>(nnz) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}

void BM_SpmvCsr(benchmark::State& state) {
  const auto& a = test_matrix();
  Vectors v(a);
  for (auto _ : state) {
    spmv(a, std::span<const double>(v.x), std::span<double>(v.y));
    benchmark::DoNotOptimize(v.y.data());
  }
  report(state, a.nnz());
}
BENCHMARK(BM_SpmvCsr);

void BM_SpmvEllpackPlain(benchmark::State& state) {
  const auto& a = test_matrix();
  const auto e = Ellpack<double>::from_csr(a, 32);
  Vectors v(a);
  for (auto _ : state) {
    spmv_ellpack(e, std::span<const double>(v.x), std::span<double>(v.y));
    benchmark::DoNotOptimize(v.y.data());
  }
  report(state, a.nnz());
}
BENCHMARK(BM_SpmvEllpackPlain);

void BM_SpmvEllpackR(benchmark::State& state) {
  const auto& a = test_matrix();
  const auto e = Ellpack<double>::from_csr(a, 32);
  Vectors v(a);
  for (auto _ : state) {
    spmv_ellpack_r(e, std::span<const double>(v.x), std::span<double>(v.y));
    benchmark::DoNotOptimize(v.y.data());
  }
  report(state, a.nnz());
}
BENCHMARK(BM_SpmvEllpackR);

void BM_SpmvJds(benchmark::State& state) {
  const auto& a = test_matrix();
  const auto j = Jds<double>::from_csr(a, PermuteColumns::yes);
  Vectors v(a);
  for (auto _ : state) {
    spmv(j, std::span<const double>(v.x), std::span<double>(v.y));
    benchmark::DoNotOptimize(v.y.data());
  }
  report(state, a.nnz());
}
BENCHMARK(BM_SpmvJds);

void BM_SpmvSlicedEll(benchmark::State& state) {
  const auto& a = test_matrix();
  const auto s = SlicedEll<double>::from_csr(a, 32);
  Vectors v(a);
  for (auto _ : state) {
    spmv(s, std::span<const double>(v.x), std::span<double>(v.y));
    benchmark::DoNotOptimize(v.y.data());
  }
  report(state, a.nnz());
}
BENCHMARK(BM_SpmvSlicedEll);

void BM_SpmvPjds(benchmark::State& state) {
  const auto& a = test_matrix();
  PjdsOptions opt;
  opt.block_rows = static_cast<index_t>(state.range(0));
  const auto p = Pjds<double>::from_csr(a, opt);
  Vectors v(a);
  for (auto _ : state) {
    spmv(p, std::span<const double>(v.x), std::span<double>(v.y));
    benchmark::DoNotOptimize(v.y.data());
  }
  report(state, a.nnz());
}
BENCHMARK(BM_SpmvPjds)->Arg(1)->Arg(32)->Arg(128);

void BM_SpmmvCsr(benchmark::State& state) {
  const auto& a = test_matrix();
  const int k = static_cast<int>(state.range(0));
  std::vector<double> x(static_cast<std::size_t>(a.n_cols) * k, 1.0);
  std::vector<double> y(static_cast<std::size_t>(a.n_rows) * k);
  for (auto _ : state) {
    spmmv(a, std::span<const double>(x), std::span<double>(y), k);
    benchmark::DoNotOptimize(y.data());
  }
  report(state, a.nnz() * k);
}
BENCHMARK(BM_SpmmvCsr)->Arg(1)->Arg(4)->Arg(8);

void BM_PjdsBuild(benchmark::State& state) {
  const auto& a = test_matrix();
  for (auto _ : state) {
    auto p = Pjds<double>::from_csr(a);
    benchmark::DoNotOptimize(p.val.data());
  }
  state.counters["nnz/s"] = benchmark::Counter(
      static_cast<double>(a.nnz()) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(BM_PjdsBuild);

}  // namespace

BENCHMARK_MAIN();
