// google-benchmark microbenchmarks of the *host* spMVM kernels for every
// storage format (the CPU reference implementations behind the library).
//
// Each benchmark reports GF/s (2·nnz flops per product) and the
// effective memory bandwidth GB/s derived from the format's device
// footprint (core/footprint) plus one RHS read and one LHS write — the
// number to compare against the machine's STREAM limit, since spMVM is
// bandwidth-bound (Eq. 1).
//
// The `Seed*` variants re-implement the original fork-join runtime
// (fresh std::threads spawned per call, equal row-count chunks) and the
// pre-vectorization row-major kernels, so pooled-vs-fork-join and
// balanced-vs-static comparisons stay regenerable from this binary
// alone. Thread counts are swept via ->Arg(n).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/footprint.hpp"
#include "obs/report.hpp"
#include "core/pjds_spmv.hpp"
#include "core/spmmv.hpp"
#include "matgen/generators.hpp"
#include "sparse/spmv_host.hpp"

using namespace spmvm;

namespace {

const Csr<double>& test_matrix() {
  static const Csr<double> a = [] {
    GenConfig cfg;
    cfg.scale = 128;
    return make_samg<double>(cfg);
  }();
  return a;
}

struct Vectors {
  std::vector<double> x;
  std::vector<double> y;
  explicit Vectors(const Csr<double>& a)
      : x(static_cast<std::size_t>(a.n_cols), 1.0),
        y(static_cast<std::size_t>(a.n_rows)) {}
};

/// GF/s from true non-zeros; GB/s from the bytes one product streams:
/// the stored matrix (values + indices + aux arrays) plus RHS and LHS.
void report(benchmark::State& state, offset_t nnz, std::size_t bytes) {
  const auto it = static_cast<double>(state.iterations());
  state.counters["GF/s"] =
      benchmark::Counter(2.0 * static_cast<double>(nnz) * it,
                         benchmark::Counter::kIsRate,
                         benchmark::Counter::kIs1000);
  state.counters["GB/s"] =
      benchmark::Counter(static_cast<double>(bytes) * it,
                         benchmark::Counter::kIsRate,
                         benchmark::Counter::kIs1000);
}

std::size_t vector_bytes(const Csr<double>& a) {
  return (static_cast<std::size_t>(a.n_cols) +
          static_cast<std::size_t>(a.n_rows)) *
         sizeof(double);
}

// ---- Seed (pre-pool) runtime and kernels, kept as the comparison
// ---- baseline for EXPERIMENTS.md.
namespace seed {

/// The original fork-join parallel_for: spawn + join per call, equal
/// row-count chunks regardless of nnz.
template <class Fn>
void forkjoin_parallel_for(std::size_t n, int n_threads, Fn&& fn) {
  if (n == 0) return;
  if (n_threads <= 1 || n < 2) {
    fn(std::size_t{0}, n);
    return;
  }
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(n_threads), n);
  const std::size_t chunk = (n + workers - 1) / workers;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t begin = w * chunk;
    const std::size_t end = std::min(begin + chunk, n);
    if (begin >= end) break;
    pool.emplace_back([&fn, begin, end] { fn(begin, end); });
  }
  for (auto& t : pool) t.join();
}

void spmv_csr(const Csr<double>& a, const std::vector<double>& x,
              std::vector<double>& y, int n_threads) {
  forkjoin_parallel_for(
      static_cast<std::size_t>(a.n_rows), n_threads,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          double acc = 0.0;
          for (offset_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k)
            acc += a.val[static_cast<std::size_t>(k)] *
                   x[static_cast<std::size_t>(
                       a.col_idx[static_cast<std::size_t>(k)])];
          y[i] = acc;
        }
      });
}

void spmv_sliced_ell(const SlicedEll<double>& a, const std::vector<double>& x,
                     std::vector<double>& y, int n_threads) {
  forkjoin_parallel_for(
      static_cast<std::size_t>(a.n_slices), n_threads,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t s = begin; s < end; ++s) {
          const offset_t base = a.slice_ptr[s];
          for (index_t r = 0; r < a.slice_height; ++r) {
            const index_t i = static_cast<index_t>(s) * a.slice_height + r;
            if (i >= a.n_rows) break;
            double acc = 0.0;
            const index_t len = a.row_len[static_cast<std::size_t>(i)];
            for (index_t j = 0; j < len; ++j) {
              const std::size_t k = static_cast<std::size_t>(
                  base + static_cast<offset_t>(j) * a.slice_height + r);
              acc += a.val[k] * x[static_cast<std::size_t>(a.col_idx[k])];
            }
            y[static_cast<std::size_t>(i)] = acc;
          }
        }
      });
}

void spmv_pjds(const Pjds<double>& a, const std::vector<double>& x,
               std::vector<double>& y, int n_threads) {
  forkjoin_parallel_for(
      static_cast<std::size_t>(a.n_rows), n_threads,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          double acc = 0.0;
          const index_t len = a.row_len[i];
          for (index_t j = 0; j < len; ++j) {
            const std::size_t k = static_cast<std::size_t>(
                a.col_start[static_cast<std::size_t>(j)] +
                static_cast<offset_t>(i));
            acc += a.val[k] * x[static_cast<std::size_t>(a.col_idx[k])];
          }
          y[i] = acc;
        }
      });
}

}  // namespace seed

// ---- CSR -----------------------------------------------------------------

void BM_SpmvCsr(benchmark::State& state) {
  const auto& a = test_matrix();
  const int threads = static_cast<int>(state.range(0));
  Vectors v(a);
  for (auto _ : state) {
    spmv(a, std::span<const double>(v.x), std::span<double>(v.y), threads);
    benchmark::DoNotOptimize(v.y.data());
  }
  report(state, a.nnz(),
         footprint(a).total_bytes(sizeof(double)) + vector_bytes(a));
}
BENCHMARK(BM_SpmvCsr)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_SeedSpmvCsrForkJoin(benchmark::State& state) {
  const auto& a = test_matrix();
  const int threads = static_cast<int>(state.range(0));
  Vectors v(a);
  for (auto _ : state) {
    seed::spmv_csr(a, v.x, v.y, threads);
    benchmark::DoNotOptimize(v.y.data());
  }
  report(state, a.nnz(),
         footprint(a).total_bytes(sizeof(double)) + vector_bytes(a));
}
BENCHMARK(BM_SeedSpmvCsrForkJoin)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// ---- ELLPACK family ------------------------------------------------------

void BM_SpmvEllpackPlain(benchmark::State& state) {
  const auto& a = test_matrix();
  const auto e = Ellpack<double>::from_csr(a, 32);
  Vectors v(a);
  for (auto _ : state) {
    spmv_ellpack(e, std::span<const double>(v.x), std::span<double>(v.y));
    benchmark::DoNotOptimize(v.y.data());
  }
  report(state, a.nnz(),
         footprint(e, false).total_bytes(sizeof(double)) + vector_bytes(a));
}
BENCHMARK(BM_SpmvEllpackPlain);

void BM_SpmvEllpackR(benchmark::State& state) {
  const auto& a = test_matrix();
  const int threads = static_cast<int>(state.range(0));
  const auto e = Ellpack<double>::from_csr(a, 32);
  Vectors v(a);
  for (auto _ : state) {
    spmv_ellpack_r(e, std::span<const double>(v.x), std::span<double>(v.y),
                   threads);
    benchmark::DoNotOptimize(v.y.data());
  }
  report(state, a.nnz(),
         footprint(e, true).total_bytes(sizeof(double)) + vector_bytes(a));
}
BENCHMARK(BM_SpmvEllpackR)->Arg(1)->Arg(4);

void BM_SpmvJds(benchmark::State& state) {
  const auto& a = test_matrix();
  const auto j = Jds<double>::from_csr(a, PermuteColumns::yes);
  Vectors v(a);
  for (auto _ : state) {
    spmv(j, std::span<const double>(v.x), std::span<double>(v.y));
    benchmark::DoNotOptimize(v.y.data());
  }
  report(state, a.nnz(),
         footprint(j).total_bytes(sizeof(double)) + vector_bytes(a));
}
BENCHMARK(BM_SpmvJds);

// ---- sliced ELLPACK ------------------------------------------------------

void BM_SpmvSlicedEll(benchmark::State& state) {
  const auto& a = test_matrix();
  const int threads = static_cast<int>(state.range(0));
  const auto s = SlicedEll<double>::from_csr(a, 32);
  Vectors v(a);
  for (auto _ : state) {
    spmv(s, std::span<const double>(v.x), std::span<double>(v.y), threads);
    benchmark::DoNotOptimize(v.y.data());
  }
  report(state, a.nnz(),
         footprint(s).total_bytes(sizeof(double)) + vector_bytes(a));
}
BENCHMARK(BM_SpmvSlicedEll)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_SeedSpmvSlicedEllForkJoin(benchmark::State& state) {
  const auto& a = test_matrix();
  const int threads = static_cast<int>(state.range(0));
  const auto s = SlicedEll<double>::from_csr(a, 32);
  Vectors v(a);
  for (auto _ : state) {
    seed::spmv_sliced_ell(s, v.x, v.y, threads);
    benchmark::DoNotOptimize(v.y.data());
  }
  report(state, a.nnz(),
         footprint(s).total_bytes(sizeof(double)) + vector_bytes(a));
}
BENCHMARK(BM_SeedSpmvSlicedEllForkJoin)->Arg(1)->Arg(4);

// ---- pJDS ----------------------------------------------------------------

void BM_SpmvPjds(benchmark::State& state) {
  const auto& a = test_matrix();
  const int threads = static_cast<int>(state.range(0));
  PjdsOptions opt;
  opt.block_rows = 32;
  const auto p = Pjds<double>::from_csr(a, opt);
  Vectors v(a);
  for (auto _ : state) {
    spmv(p, std::span<const double>(v.x), std::span<double>(v.y), threads);
    benchmark::DoNotOptimize(v.y.data());
  }
  report(state, a.nnz(),
         footprint(p).total_bytes(sizeof(double)) + vector_bytes(a));
}
BENCHMARK(BM_SpmvPjds)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_SeedSpmvPjdsForkJoin(benchmark::State& state) {
  const auto& a = test_matrix();
  const int threads = static_cast<int>(state.range(0));
  PjdsOptions opt;
  opt.block_rows = 32;
  const auto p = Pjds<double>::from_csr(a, opt);
  Vectors v(a);
  for (auto _ : state) {
    seed::spmv_pjds(p, v.x, v.y, threads);
    benchmark::DoNotOptimize(v.y.data());
  }
  report(state, a.nnz(),
         footprint(p).total_bytes(sizeof(double)) + vector_bytes(a));
}
BENCHMARK(BM_SeedSpmvPjdsForkJoin)->Arg(1)->Arg(4);

void BM_SpmvPjdsBlockRows(benchmark::State& state) {
  const auto& a = test_matrix();
  PjdsOptions opt;
  opt.block_rows = static_cast<index_t>(state.range(0));
  const auto p = Pjds<double>::from_csr(a, opt);
  Vectors v(a);
  for (auto _ : state) {
    spmv(p, std::span<const double>(v.x), std::span<double>(v.y));
    benchmark::DoNotOptimize(v.y.data());
  }
  report(state, a.nnz(),
         footprint(p).total_bytes(sizeof(double)) + vector_bytes(a));
}
BENCHMARK(BM_SpmvPjdsBlockRows)->Arg(1)->Arg(32)->Arg(128);

// ---- multi-vector --------------------------------------------------------

void BM_SpmmvCsr(benchmark::State& state) {
  const auto& a = test_matrix();
  const int k = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  std::vector<double> x(static_cast<std::size_t>(a.n_cols) * k, 1.0);
  std::vector<double> y(static_cast<std::size_t>(a.n_rows) * k);
  for (auto _ : state) {
    spmmv(a, std::span<const double>(x), std::span<double>(y), k, threads);
    benchmark::DoNotOptimize(y.data());
  }
  report(state, a.nnz() * k,
         footprint(a).total_bytes(sizeof(double)) +
             static_cast<std::size_t>(k) * vector_bytes(a));
}
BENCHMARK(BM_SpmmvCsr)
    ->Args({1, 1})
    ->Args({4, 1})
    ->Args({8, 1})
    ->Args({4, 4});

void BM_PjdsBuild(benchmark::State& state) {
  const auto& a = test_matrix();
  for (auto _ : state) {
    auto p = Pjds<double>::from_csr(a);
    benchmark::DoNotOptimize(p.val.data());
  }
  state.counters["nnz/s"] = benchmark::Counter(
      static_cast<double>(a.nnz()) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(BM_PjdsBuild);

/// Console output plus capture of every non-aggregate run for the
/// bench.json report: per-iteration real time becomes the sample, rate
/// counters (GF/s, GB/s, nnz/s) are de-rated back to per-second values.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const double iters = static_cast<double>(run.iterations);
      // run.counters are already finalized (kIsRate already divided
      // by the accumulated real time), so values pass through as-is.
      std::vector<std::pair<std::string, double>> counters;
      for (const auto& [cname, c] : run.counters)
        counters.emplace_back(cname, c.value);
      entries.push_back(obs::summarize_samples(
          run.benchmark_name(),
          std::vector<double>{run.real_accumulated_time / iters},
          std::move(counters)));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  std::vector<obs::BenchEntry> entries;
};

}  // namespace

int main(int argc, char** argv) {
  // Strip our own --json flag before google-benchmark parses the rest.
  std::string json_path, err;
  if (!obs::consume_json_flag(&argc, argv, &json_path, &err)) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 1;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  JsonCaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!json_path.empty()) {
    obs::BenchReport report;
    report.binary = "bench_kernels";
    report.metadata.emplace_back(
        "hardware_threads",
        std::to_string(std::thread::hardware_concurrency()));
    report.metadata.emplace_back("scale", "128");
    report.entries = std::move(reporter.entries);
    if (!report.write(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
  }
  return 0;
}
