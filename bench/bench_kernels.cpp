// google-benchmark microbenchmarks of the *host* spMVM kernels for every
// storage format (the CPU reference implementations behind the library).
//
// The per-format benchmarks are registered dynamically from the format
// registry, so adding a format to formats/registry.cpp adds its
// spmv/<name> rows here with no bench change. `--list-formats` prints
// the registry; `--format=<name>` restricts the run to one format.
// `--backend=<name>` launches the per-format sweep through the exec
// engine's host, gpusim, hybrid, or auto backend (`--list-backends`
// prints them); the backend is recorded in the bench.json metadata.
//
// Each benchmark reports GF/s (2·nnz flops per product) and the
// effective memory bandwidth GB/s derived from the format's device
// footprint (the plan's accounting) plus one RHS read and one LHS
// write — the number to compare against the machine's STREAM limit,
// since spMVM is bandwidth-bound (Eq. 1).
//
// The `seed/` variants re-implement the original fork-join runtime
// (fresh std::threads spawned per call, equal row-count chunks) and the
// pre-vectorization row-major kernels, so pooled-vs-fork-join and
// balanced-vs-static comparisons stay regenerable from this binary
// alone. Thread counts are swept via ->Arg(n).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/spmmv.hpp"
#include "exec/dispatch.hpp"
#include "exec/engine.hpp"
#include "formats/plans.hpp"
#include "formats/registry.hpp"
#include "matgen/generators.hpp"
#include "obs/report.hpp"

using namespace spmvm;

namespace {

/// Execution backend of the per-format sweep (--backend, default host).
std::string g_backend = "host";

const Csr<double>& test_matrix() {
  static const Csr<double> a = [] {
    GenConfig cfg;
    cfg.scale = 128;
    return make_samg<double>(cfg);
  }();
  return a;
}

struct Vectors {
  std::vector<double> x;
  std::vector<double> y;
  explicit Vectors(const Csr<double>& a)
      : x(static_cast<std::size_t>(a.n_cols), 1.0),
        y(static_cast<std::size_t>(a.n_rows)) {}
};

/// GF/s from true non-zeros; GB/s from the bytes one product streams:
/// the stored matrix (values + indices + aux arrays) plus RHS and LHS.
void report(benchmark::State& state, offset_t nnz, std::size_t bytes) {
  const auto it = static_cast<double>(state.iterations());
  state.counters["GF/s"] =
      benchmark::Counter(2.0 * static_cast<double>(nnz) * it,
                         benchmark::Counter::kIsRate,
                         benchmark::Counter::kIs1000);
  state.counters["GB/s"] =
      benchmark::Counter(static_cast<double>(bytes) * it,
                         benchmark::Counter::kIsRate,
                         benchmark::Counter::kIs1000);
}

std::size_t vector_bytes(const Csr<double>& a) {
  return (static_cast<std::size_t>(a.n_cols) +
          static_cast<std::size_t>(a.n_rows)) *
         sizeof(double);
}

std::size_t product_bytes(const formats::FormatPlan<double>& plan) {
  return plan.footprint().total_bytes(sizeof(double)) +
         vector_bytes(test_matrix());
}

// ---- Seed (pre-pool) runtime and kernels, kept as the comparison
// ---- baseline for EXPERIMENTS.md. The raw format arrays come from the
// ---- registry-built plans' typed accessors (formats/plans.hpp).
namespace seed {

/// The original fork-join parallel_for: spawn + join per call, equal
/// row-count chunks regardless of nnz.
template <class Fn>
void forkjoin_parallel_for(std::size_t n, int n_threads, Fn&& fn) {
  if (n == 0) return;
  if (n_threads <= 1 || n < 2) {
    fn(std::size_t{0}, n);
    return;
  }
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(n_threads), n);
  const std::size_t chunk = (n + workers - 1) / workers;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t begin = w * chunk;
    const std::size_t end = std::min(begin + chunk, n);
    if (begin >= end) break;
    pool.emplace_back([&fn, begin, end] { fn(begin, end); });
  }
  for (auto& t : pool) t.join();
}

void spmv_csr(const Csr<double>& a, const std::vector<double>& x,
              std::vector<double>& y, int n_threads) {
  forkjoin_parallel_for(
      static_cast<std::size_t>(a.n_rows), n_threads,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          double acc = 0.0;
          for (offset_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k)
            acc += a.val[static_cast<std::size_t>(k)] *
                   x[static_cast<std::size_t>(
                       a.col_idx[static_cast<std::size_t>(k)])];
          y[i] = acc;
        }
      });
}

void spmv_sliced_ell(const SlicedEll<double>& a, const std::vector<double>& x,
                     std::vector<double>& y, int n_threads) {
  forkjoin_parallel_for(
      static_cast<std::size_t>(a.n_slices), n_threads,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t s = begin; s < end; ++s) {
          const offset_t base = a.slice_ptr[s];
          for (index_t r = 0; r < a.slice_height; ++r) {
            const index_t i = static_cast<index_t>(s) * a.slice_height + r;
            if (i >= a.n_rows) break;
            double acc = 0.0;
            const index_t len = a.row_len[static_cast<std::size_t>(i)];
            for (index_t j = 0; j < len; ++j) {
              const std::size_t k = static_cast<std::size_t>(
                  base + static_cast<offset_t>(j) * a.slice_height + r);
              acc += a.val[k] * x[static_cast<std::size_t>(a.col_idx[k])];
            }
            y[static_cast<std::size_t>(i)] = acc;
          }
        }
      });
}

void spmv_pjds(const Pjds<double>& a, const std::vector<double>& x,
               std::vector<double>& y, int n_threads) {
  forkjoin_parallel_for(
      static_cast<std::size_t>(a.n_rows), n_threads,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          double acc = 0.0;
          const index_t len = a.row_len[i];
          for (index_t j = 0; j < len; ++j) {
            const std::size_t k = static_cast<std::size_t>(
                a.col_start[static_cast<std::size_t>(j)] +
                static_cast<offset_t>(i));
            acc += a.val[k] * x[static_cast<std::size_t>(a.col_idx[k])];
          }
          y[i] = acc;
        }
      });
}

}  // namespace seed

using PlanPtr = std::shared_ptr<const formats::FormatPlan<double>>;

// ---- registry sweep: y = A·x through every plan --------------------------

void bm_plan_spmv(benchmark::State& state, const PlanPtr& plan) {
  const auto& a = test_matrix();
  exec::LaunchOptions launch;
  launch.n_threads = static_cast<int>(state.range(0));
  launch.basis = exec::Basis::plan;
  // The hybrid backend re-splits the CSR rows; the single-target
  // backends reuse the prebuilt plan outright.
  auto& eng = exec::engine<double>();
  const auto bound =
      g_backend == "hybrid"
          ? eng.bind(g_backend, a, plan->info().name, {}, launch)
          : eng.bind_plan(g_backend, plan, launch);
  Vectors v(a);
  for (auto _ : state) {
    bound->apply(std::span<const double>(v.x), std::span<double>(v.y));
    benchmark::DoNotOptimize(v.y.data());
  }
  report(state, plan->nnz(), product_bytes(*plan));
}

// ---- seed fork-join baselines --------------------------------------------

void bm_seed_csr(benchmark::State& state) {
  const auto& a = test_matrix();
  const int threads = static_cast<int>(state.range(0));
  Vectors v(a);
  for (auto _ : state) {
    seed::spmv_csr(a, v.x, v.y, threads);
    benchmark::DoNotOptimize(v.y.data());
  }
  report(state, a.nnz(), product_bytes(*formats::registry<double>().build(
                             "csr", a)));
}

void bm_seed_sliced_ell(benchmark::State& state, const PlanPtr& plan) {
  const auto& a = test_matrix();
  const int threads = static_cast<int>(state.range(0));
  const auto& s =
      dynamic_cast<const formats::SlicedEllPlan<double>&>(*plan).format();
  Vectors v(a);
  for (auto _ : state) {
    seed::spmv_sliced_ell(s, v.x, v.y, threads);
    benchmark::DoNotOptimize(v.y.data());
  }
  report(state, a.nnz(), product_bytes(*plan));
}

void bm_seed_pjds(benchmark::State& state, const PlanPtr& plan) {
  const auto& a = test_matrix();
  const int threads = static_cast<int>(state.range(0));
  const auto& p =
      dynamic_cast<const formats::PjdsPlan<double>&>(*plan).format();
  Vectors v(a);
  for (auto _ : state) {
    seed::spmv_pjds(p, v.x, v.y, threads);
    benchmark::DoNotOptimize(v.y.data());
  }
  report(state, a.nnz(), product_bytes(*plan));
}

// ---- pJDS block_rows sweep and build cost --------------------------------

void bm_pjds_block_rows(benchmark::State& state) {
  const auto& a = test_matrix();
  formats::PlanOptions opt;
  opt.chunk = static_cast<index_t>(state.range(0));
  const auto plan = formats::registry<double>().build("pjds", a, opt);
  Vectors v(a);
  for (auto _ : state) {
    exec::plan_spmv(*plan, std::span<const double>(v.x),
                    std::span<double>(v.y));
    benchmark::DoNotOptimize(v.y.data());
  }
  report(state, plan->nnz(), product_bytes(*plan));
}

void bm_pjds_build(benchmark::State& state) {
  const auto& a = test_matrix();
  for (auto _ : state) {
    auto plan = formats::registry<double>().build("pjds", a);
    benchmark::DoNotOptimize(plan.get());
  }
  state.counters["nnz/s"] = benchmark::Counter(
      static_cast<double>(a.nnz()) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}

// ---- multi-vector --------------------------------------------------------

void bm_spmmv_csr(benchmark::State& state) {
  const auto& a = test_matrix();
  const int k = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  std::vector<double> x(static_cast<std::size_t>(a.n_cols) * k, 1.0);
  std::vector<double> y(static_cast<std::size_t>(a.n_rows) * k);
  for (auto _ : state) {
    spmmv(a, std::span<const double>(x), std::span<double>(y), k, threads);
    benchmark::DoNotOptimize(y.data());
  }
  report(state, a.nnz() * k,
         product_bytes(*formats::registry<double>().build("csr", a)) +
             static_cast<std::size_t>(k - 1) * vector_bytes(a));
}

/// Register everything, honoring the --format restriction. Plans are
/// built once up front and shared by the registered closures.
void register_benchmarks(const std::string& only_format) {
  const auto& a = test_matrix();
  const auto& reg = formats::registry<double>();
  const auto want = [&](std::string_view name) {
    return only_format.empty() || only_format == name;
  };

  for (const formats::FormatInfo& info : reg.list()) {
    // `auto` probes every other format at build time; keep it out of the
    // default sweep but allow --format=auto explicitly.
    if (std::string_view(info.name) == "auto" && only_format != "auto")
      continue;
    if (!want(info.name)) continue;
    const PlanPtr plan = reg.build(info.name, a);
    benchmark::RegisterBenchmark(
        (std::string("spmv/") + info.name).c_str(),
        [plan](benchmark::State& s) { bm_plan_spmv(s, plan); })
        ->Arg(1)
        ->Arg(2)
        ->Arg(4)
        ->Arg(8);
  }

  if (want("csr")) {
    benchmark::RegisterBenchmark("seed/spmv/csr_forkjoin", bm_seed_csr)
        ->Arg(1)
        ->Arg(2)
        ->Arg(4)
        ->Arg(8);
    benchmark::RegisterBenchmark("spmmv/csr", bm_spmmv_csr)
        ->Args({1, 1})
        ->Args({4, 1})
        ->Args({8, 1})
        ->Args({4, 4});
  }
  if (want("sliced_ell")) {
    const PlanPtr sell = reg.build("sliced_ell", a);
    benchmark::RegisterBenchmark(
        "seed/spmv/sliced_ell_forkjoin",
        [sell](benchmark::State& s) { bm_seed_sliced_ell(s, sell); })
        ->Arg(1)
        ->Arg(4);
  }
  if (want("pjds")) {
    const PlanPtr pjds = reg.build("pjds", a);
    benchmark::RegisterBenchmark(
        "seed/spmv/pjds_forkjoin",
        [pjds](benchmark::State& s) { bm_seed_pjds(s, pjds); })
        ->Arg(1)
        ->Arg(4);
    benchmark::RegisterBenchmark("spmv/pjds/block_rows", bm_pjds_block_rows)
        ->Arg(1)
        ->Arg(32)
        ->Arg(128);
    benchmark::RegisterBenchmark("build/pjds", bm_pjds_build);
  }
}

/// Console output plus capture of every non-aggregate run for the
/// bench.json report: per-iteration real time becomes the sample, rate
/// counters (GF/s, GB/s, nnz/s) are de-rated back to per-second values.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const double iters = static_cast<double>(run.iterations);
      // run.counters are already finalized (kIsRate already divided
      // by the accumulated real time), so values pass through as-is.
      std::vector<std::pair<std::string, double>> counters;
      for (const auto& [cname, c] : run.counters)
        counters.emplace_back(cname, c.value);
      entries.push_back(obs::summarize_samples(
          run.benchmark_name(),
          std::vector<double>{run.real_accumulated_time / iters},
          std::move(counters)));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  std::vector<obs::BenchEntry> entries;
};

}  // namespace

int main(int argc, char** argv) {
  // Strip our own flags before google-benchmark parses the rest.
  std::string json_path, only_format, err;
  if (!obs::consume_json_flag(&argc, argv, &json_path, &err) ||
      !obs::consume_value_flag(&argc, argv, "--format", &only_format, &err) ||
      !obs::consume_backend_flag(&argc, argv, &g_backend, &err)) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 1;
  }
  if (obs::consume_switch(&argc, argv, "--list-formats")) {
    for (const auto& info : formats::registry<double>().list())
      std::printf("%-12s  %s\n", info.name, info.description);
    return 0;
  }
  if (obs::consume_switch(&argc, argv, "--list-backends")) {
    for (const exec::BackendInfo& b : exec::engine<double>().list())
      std::printf("%-8s  %s\n", b.name, b.description);
    std::printf("%-8s  %s\n", "auto",
                "pick per matrix with the Eq. 1/Eq. 2 balance model");
    return 0;
  }
  if (!only_format.empty() &&
      formats::registry<double>().find(only_format) == nullptr) {
    std::fprintf(stderr,
                 "error: unknown format '%s' (try --list-formats)\n",
                 only_format.c_str());
    return 1;
  }

  register_benchmarks(only_format);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  JsonCaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!json_path.empty()) {
    obs::BenchReport report;
    report.binary = "bench_kernels";
    report.metadata.emplace_back(
        "hardware_threads",
        std::to_string(std::thread::hardware_concurrency()));
    report.metadata.emplace_back("scale", "128");
    report.metadata.emplace_back("backend", g_backend);
    if (!only_format.empty())
      report.metadata.emplace_back("format", only_format);
    report.entries = std::move(reporter.entries);
    if (!report.write(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
  }
  return 0;
}
