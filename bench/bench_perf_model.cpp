// Performance-model reproduction (Sec. II-B):
//  - Eq. 1 code balance vs the simulator's measured bytes/flop,
//  - Eqs. 3/4 N_nzr thresholds (the 25 / 7 / 80 / 266 numbers),
//  - the Sec. III single-GPU-with-PCIe numbers: HMEp 3.7, sAMG 2.3,
//    DLR1 10.9 GF/s (vs 12.9 kernel-only) in DP with ECC.
#include <cstdio>
#include <string>

#include "gpusim/cpu_node.hpp"
#include "matgen/suite.hpp"
#include "obs/report.hpp"
#include "perfmodel/balance.hpp"
#include "perfmodel/model_eval.hpp"
#include "perfmodel/pcie_impact.hpp"
#include "util/ascii.hpp"

using namespace spmvm;
using namespace spmvm::perfmodel;

int main(int argc, char** argv) {
  std::string json_path, err;
  if (!obs::consume_json_flag(&argc, argv, &json_path, &err)) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 1;
  }
  if (argc > 1) {
    std::fprintf(stderr, "usage: %s [--json <path>]\n", argv[0]);
    return 1;
  }
  obs::BenchReport report;
  report.binary = "bench_perf_model";
  report.metadata = obs::machine_fingerprint();

  const auto dev = gpusim::DeviceSpec::tesla_c2070();

  std::printf("Eq. 1: DP code balance B_W = 6 + 4a + 8/N_nzr [bytes/flop]\n\n");
  AsciiTable bt({"N_nzr", "B(alpha=1/N_nzr)", "B(alpha=0.5)", "B(alpha=1)"});
  for (const double nnzr : {7.0, 15.0, 123.0, 144.0, 315.0}) {
    bt.add_row({fmt(nnzr, 0),
                fmt(code_balance(8, alpha_ideal(nnzr), nnzr), 2),
                fmt(code_balance(8, 0.5, nnzr), 2),
                fmt(code_balance(8, 1.0, nnzr), 2)});
  }
  std::printf("%s\n", bt.render().c_str());

  std::printf("Eqs. 3/4: favorable N_nzr ranges vs B_GPU/B_PCI ratio\n\n");
  AsciiTable rt({"case", "threshold", "paper"});
  rt.add_row({">=50% penalty, alpha=1/N_nzr, ratio 20",
              fmt(nnzr_upper_for_50pct_penalty_worst_alpha(20.0), 1), "25"});
  rt.add_row({">=50% penalty, alpha=1, ratio 10",
              fmt(nnzr_upper_for_50pct_penalty(10.0, 1.0), 1), "7"});
  rt.add_row({"<=10% penalty, alpha=1, ratio 10",
              fmt(nnzr_lower_for_10pct_penalty(10.0, 1.0), 1), "80"});
  rt.add_row({"<=10% penalty, alpha=1/N_nzr, ratio 20",
              fmt(nnzr_lower_for_10pct_penalty_worst_alpha(20.0), 1), "266"});
  std::printf("%s\n", rt.render().c_str());
  report.entries.push_back(obs::summarize_samples(
      "perf_model/thresholds", {},
      {{"ge50pct_worst_alpha_r20", nnzr_upper_for_50pct_penalty_worst_alpha(20.0)},
       {"ge50pct_alpha1_r10", nnzr_upper_for_50pct_penalty(10.0, 1.0)},
       {"le10pct_alpha1_r10", nnzr_lower_for_10pct_penalty(10.0, 1.0)},
       {"le10pct_worst_alpha_r20",
        nnzr_lower_for_10pct_penalty_worst_alpha(20.0)}}));

  std::printf("model vs simulator (DP, ECC on, ELLPACK-R), and the PCIe "
              "impact of Sec. III\ncells: measured [paper]\n\n");
  AsciiTable mt({"matrix", "alpha(meas)", "B model", "B sim",
                 "GF/s kernel", "GF/s +PCIe", "CPU CRS"});
  struct Item {
    const char* name;
    double scale;
    double paper_kernel;  // -1 when the paper gives no number
    double paper_pcie;
    double paper_cpu;
  };
  const Item items[] = {
      {"DLR1", 8, 12.9, 10.9, 5.7},
      {"HMEp", 32, 7.9, 3.7, 3.9},
      {"sAMG", 32, 7.8, 2.3, 4.1},
  };
  const auto cpu = gpusim::CpuNodeSpec::westmere_ep();
  for (const auto& it : items) {
    const auto a = make_named(it.name, it.scale).matrix;
    auto sdev = dev;  // scale the L2 with the matrix (see DESIGN.md)
    sdev.l2_bytes = static_cast<std::size_t>(
        static_cast<double>(dev.l2_bytes) / it.scale);
    auto scpu = cpu;
    scpu.cache_bytes = static_cast<std::size_t>(
        static_cast<double>(cpu.cache_bytes) / it.scale);
    const auto r = evaluate(sdev, a, gpusim::FormatKind::ellpack_r, true);
    const auto c = gpusim::simulate_csr(scpu, a);
    mt.add_row({it.name, fmt(r.alpha_measured, 2), fmt(r.balance_model, 2),
                fmt(r.balance_sim, 2),
                fmt(r.gflops_sim, 1) + " [" + fmt(it.paper_kernel, 1) + "]",
                fmt(r.gflops_with_pcie, 1) + " [" + fmt(it.paper_pcie, 1) + "]",
                fmt(c.gflops, 1) + " [" + fmt(it.paper_cpu, 1) + "]"});
    report.entries.push_back(obs::summarize_samples(
        std::string("perf_model/") + it.name, {},
        {{"alpha_measured", r.alpha_measured},
         {"balance_model", r.balance_model},
         {"balance_sim", r.balance_sim},
         {"kernel GF/s", r.gflops_sim},
         {"pcie GF/s", r.gflops_with_pcie},
         {"cpu_crs GF/s", c.gflops},
         {"model_vs_sim_pct", r.model_vs_sim_pct()}}));
  }
  std::printf("%s\n", mt.render().c_str());
  std::printf("paper claims to check:\n"
              " - HMEp/sAMG with PCIe fall below the CPU node -> no good "
              "GPGPU candidates;\n"
              " - DLR1 keeps a clear GPU advantage (10.9 vs 12.9 kernel-only "
              "~ 16%% PCIe cost).\n");

  if (!json_path.empty() && !report.write(json_path)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
