// Load generator for the spMVM serving layer (DESIGN.md §14).
//
// Drives a serve::Server with one of two client models and reports
// throughput, SLO attainment and the batch-width distribution:
//
//   closed loop (--mode closed): --clients threads each keep exactly one
//     request outstanding for --requests rounds — throughput tracks
//     service capacity, the queue stays short.
//   open loop (--mode open): one dispatcher submits at --qps for
//     --duration seconds regardless of completions — the overload
//     regime where admission control must shed instead of queueing
//     without bound. --poisson draws exponential inter-arrival gaps
//     (Poisson arrivals) instead of a fixed period.
//
//   bench_serve --mode open --qps 5000 --duration 2 --slo-ms 5
//               --backend auto --json serve.json [--trace trace.json]
//
// Latency quantiles come from the serve.latency.* exponential-bucket
// histograms (exact nearest-rank over power-of-two buckets), the batch
// widths from the serve.batch_width histogram.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "matgen/suite.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "serve/server.hpp"
#include "util/ascii.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

using namespace spmvm;

namespace {

void print_usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--mode <closed|open>] [--backend <name>] [--format <f>]\n"
      "          [--matrix <DLR1|DLR2|HMEp|sAMG|UHBR>] [--scale <s>]\n"
      "          [--workers <n>] [--max-batch <k>] [--queue-cap <n>]\n"
      "          [--watermark <n>] [--clients <n>] [--requests <n>]\n"
      "          [--qps <rate>] [--duration <s>] [--poisson] [--seed <n>]\n"
      "          [--slo-ms <ms>] [--json <path>] [--trace <path>]\n"
      "env: SPMVM_SERVE_* (see DESIGN.md section 14)\n",
      argv0);
}

struct LoadResult {
  std::uint64_t submitted = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t other = 0;
  double wall_seconds = 0.0;
  std::uint64_t within_slo = 0;
};

/// Closed loop: `clients` threads, one outstanding request each.
LoadResult run_closed(serve::Server& server, const Csr<double>& a,
                      int clients, int requests, double slo_s) {
  LoadResult res;
  std::atomic<std::uint64_t> ok{0}, shed{0}, other{0}, within{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(0x5EED + static_cast<std::uint64_t>(c));
      std::vector<double> x(static_cast<std::size_t>(a.n_cols));
      for (int i = 0; i < requests; ++i) {
        for (auto& v : x) v = rng.uniform(-1.0, 1.0);
        serve::Ticket t = server.submit("m", x);
        const serve::Response r = t.get();
        if (r.status == serve::RequestStatus::ok) {
          ok.fetch_add(1);
          if (slo_s <= 0.0 || r.total_seconds <= slo_s) within.fetch_add(1);
        } else if (r.status == serve::RequestStatus::rejected_full) {
          shed.fetch_add(1);
        } else {
          other.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  res.wall_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
  res.submitted = static_cast<std::uint64_t>(clients) *
                  static_cast<std::uint64_t>(requests);
  res.ok = ok.load();
  res.shed = shed.load();
  res.other = other.load();
  res.within_slo = within.load();
  return res;
}

/// Open loop: submit at `qps` for `duration_s`, collect tickets on the
/// side, resolve them all at the end.
LoadResult run_open(serve::Server& server, const Csr<double>& a, double qps,
                    double duration_s, bool poisson, std::uint64_t seed,
                    double slo_s) {
  LoadResult res;
  Rng rng(seed);
  std::vector<double> x(static_cast<std::size_t>(a.n_cols), 1.0);
  std::vector<serve::Ticket> tickets;
  const double mean_gap_us = 1e6 / std::max(1.0, qps);
  const auto t0 = std::chrono::steady_clock::now();
  auto next = t0;
  const auto end = t0 + std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(duration_s));
  while (std::chrono::steady_clock::now() < end) {
    tickets.push_back(server.submit("m", x));
    const double gap_us =
        poisson ? static_cast<double>(rng.exponential_int(mean_gap_us))
                : mean_gap_us;
    next += std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(gap_us * 1e-6));
    std::this_thread::sleep_until(next);
  }
  for (serve::Ticket& t : tickets) {
    const serve::Response r = t.get();
    if (r.status == serve::RequestStatus::ok) {
      ++res.ok;
      if (slo_s <= 0.0 || r.total_seconds <= slo_s) ++res.within_slo;
    } else if (r.status == serve::RequestStatus::rejected_full) {
      ++res.shed;
    } else {
      ++res.other;
    }
  }
  res.wall_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
  res.submitted = tickets.size();
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode = "closed";
  std::string matrix_name = "DLR1";
  std::string json_path, trace_path, err;
  double scale = 64.0;
  int clients = 4;
  int requests = 100;
  double qps = 2000.0;
  double duration_s = 1.0;
  double slo_ms = 0.0;
  int seed = 0x5EED;

  serve::ServerOptions sopt = serve::ServerOptions::from_env();
  double max_wait_ms = sopt.max_batch_wait_s * 1e3;
  // consume_value_flag clears its output when the flag is absent, so
  // string options with non-empty defaults go through a temporary.
  std::string mode_arg, matrix_arg, format_arg;
  if (!obs::consume_json_flag(&argc, argv, &json_path, &err) ||
      !obs::consume_backend_flag(&argc, argv, &sopt.backend, &err) ||
      !obs::consume_value_flag(&argc, argv, "--mode", &mode_arg, &err) ||
      !obs::consume_value_flag(&argc, argv, "--matrix", &matrix_arg, &err) ||
      !obs::consume_value_flag(&argc, argv, "--format", &format_arg, &err) ||
      !obs::consume_value_flag(&argc, argv, "--trace", &trace_path, &err) ||
      !obs::consume_double_flag(&argc, argv, "--scale", &scale, &err) ||
      !obs::consume_int_flag(&argc, argv, "--workers", &sopt.n_workers,
                             &err) ||
      !obs::consume_int_flag(&argc, argv, "--max-batch", &sopt.max_batch,
                             &err) ||
      !obs::consume_int_flag(&argc, argv, "--queue-cap",
                             &sopt.queue_capacity, &err) ||
      !obs::consume_int_flag(&argc, argv, "--watermark",
                             &sopt.admit_watermark, &err) ||
      !obs::consume_double_flag(&argc, argv, "--max-wait-ms", &max_wait_ms,
                                &err) ||
      !obs::consume_int_flag(&argc, argv, "--clients", &clients, &err) ||
      !obs::consume_int_flag(&argc, argv, "--requests", &requests, &err) ||
      !obs::consume_double_flag(&argc, argv, "--qps", &qps, &err) ||
      !obs::consume_double_flag(&argc, argv, "--duration", &duration_s,
                                &err) ||
      !obs::consume_double_flag(&argc, argv, "--slo-ms", &slo_ms, &err) ||
      !obs::consume_int_flag(&argc, argv, "--seed", &seed, &err)) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 2;
  }
  const bool poisson = obs::consume_switch(&argc, argv, "--poisson");
  if (!mode_arg.empty()) mode = mode_arg;
  if (!matrix_arg.empty()) matrix_name = matrix_arg;
  if (!format_arg.empty()) sopt.format = format_arg;
  sopt.max_batch_wait_s = max_wait_ms / 1e3;
  if (argc > 1 || (mode != "closed" && mode != "open")) {
    print_usage(argv[0]);
    return 2;
  }

  try {
    const Csr<double> a = make_named(matrix_name, scale).matrix;
    obs::reset_metrics();
    if (!trace_path.empty()) obs::set_tracing(true);

    serve::Server server(sopt);
    server.register_matrix("m", a);
    server.start();
    std::printf(
        "bench_serve: %s loop, matrix=%s (%d rows, nnz=%lld), backend=%s, "
        "workers=%d, max_batch=%d (model k*=%d), queue=%d/%d\n",
        mode.c_str(), matrix_name.c_str(), a.n_rows,
        static_cast<long long>(a.nnz()), sopt.backend.c_str(),
        server.options().n_workers, server.options().max_batch,
        server.batch_width("m"), server.options().queue_capacity,
        server.options().admit_watermark > 0
            ? server.options().admit_watermark
            : server.options().queue_capacity);

    const double slo_s = slo_ms * 1e-3;
    const LoadResult res =
        mode == "closed"
            ? run_closed(server, a, clients, requests, slo_s)
            : run_open(server, a, qps, duration_s, poisson,
                       static_cast<std::uint64_t>(seed), slo_s);
    server.shutdown();

    const obs::LatencySnapshot lat =
        obs::latency_histogram("serve.latency.total").snapshot();
    const Histogram widths = obs::histogram("serve.batch_width").snapshot();
    const serve::ServerStats stats = server.stats();

    const double achieved_qps =
        res.wall_seconds > 0.0
            ? static_cast<double>(res.ok) / res.wall_seconds
            : 0.0;
    const double slo_attainment =
        res.ok > 0 ? static_cast<double>(res.within_slo) /
                         static_cast<double>(res.ok)
                   : 0.0;

    AsciiTable t({"metric", "value"});
    t.add_row({"submitted", std::to_string(res.submitted)});
    t.add_row({"ok", std::to_string(res.ok)});
    t.add_row({"shed (rejected_full)", std::to_string(res.shed)});
    t.add_row({"other", std::to_string(res.other)});
    t.add_row({"achieved QPS", fmt(achieved_qps, 1)});
    t.add_row({"SLO attainment", slo_ms > 0.0 ? fmt(slo_attainment, 4)
                                              : std::string("(no --slo-ms)")});
    t.add_row({"latency p50 [us]", fmt(lat.quantile_us(0.5), 0)});
    t.add_row({"latency p95 [us]", fmt(lat.quantile_us(0.95), 0)});
    t.add_row({"latency p99 [us]", fmt(lat.quantile_us(0.99), 0)});
    t.add_row({"batches", std::to_string(stats.batches)});
    t.add_row({"batch width mean", fmt(widths.mean(), 2)});
    t.add_row({"batch width max",
               std::to_string(widths.max_value())});
    std::printf("%s\n", t.render().c_str());

    if (!json_path.empty()) {
      obs::BenchReport report;
      report.binary = "bench_serve";
      for (auto& [k, v] : obs::machine_fingerprint())
        report.metadata.emplace_back(k, v);
      report.metadata.emplace_back("mode", mode);
      report.metadata.emplace_back("matrix", matrix_name);
      report.metadata.emplace_back("backend", sopt.backend);
      const double wall[] = {res.wall_seconds};
      report.entries.push_back(obs::summarize_samples(
          "serve/load", wall,
          {{"submitted", static_cast<double>(res.submitted)},
           {"ok", static_cast<double>(res.ok)},
           {"shed", static_cast<double>(res.shed)},
           {"other", static_cast<double>(res.other)},
           {"achieved_qps", achieved_qps},
           {"slo_ms", slo_ms},
           {"slo_attainment", slo_attainment},
           {"p50_us", lat.quantile_us(0.5)},
           {"p95_us", lat.quantile_us(0.95)},
           {"p99_us", lat.quantile_us(0.99)},
           {"batches", static_cast<double>(stats.batches)},
           {"batch_width_mean", widths.mean()},
           {"batch_width_min",
            static_cast<double>(widths.min_value())},
           {"batch_width_max",
            static_cast<double>(widths.max_value())},
           {"model_k", static_cast<double>(server.batch_width("m"))}}));
      if (!report.write(json_path)) {
        std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
        return 2;
      }
      std::printf("report written to %s\n", json_path.c_str());
    }

    if (!trace_path.empty()) {
      obs::set_tracing(false);
      std::ofstream out(trace_path);
      out << obs::chrome_trace_json(obs::collect(), obs::trace_threads());
      if (!out) {
        std::fprintf(stderr, "failed to write %s\n", trace_path.c_str());
        return 2;
      }
      std::printf("trace written to %s\n", trace_path.c_str());
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return 0;
}
