// Unified benchmark suite driver.
//
// Runs the fixed scenario registry (suite_scenarios) — measured host
// kernels, GPU-simulator model deviation with measured α, PCIe
// thresholds, distributed communication modes — and emits one
// schema-versioned bench.json trajectory point. With --compare it gates
// the fresh run against a baseline report using the noise-aware
// comparison of obs/regress and exits nonzero on regression, so CI can
// fail a PR that slows a kernel or shifts a model output.
//
//   bench_suite --json BENCH_1.json           # record a trajectory point
//   bench_suite --compare BENCH_0.json        # run + gate against baseline
//   bench_suite --compare-files a.json b.json # gate two existing reports
//   bench_suite --smoke ...                   # CI-sized matrices and reps
//   bench_suite --roofline roofline.json      # + model-anchored efficiency
//
// Exit codes: 0 pass, 1 regression (or schema mismatch), 2 usage/IO.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "exec/engine.hpp"
#include "obs/ledger.hpp"
#include "obs/regress.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "suite_scenarios.hpp"
#include "util/ascii.hpp"
#include "util/error.hpp"

using namespace spmvm;

namespace {

void print_usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--smoke] [--filter <substr>] [--json <path>]\n"
      "          [--backend <host|gpusim|hybrid|auto>] [--list-backends]\n"
      "          [--compare <baseline.json>] [--compare-files <a> <b>]\n"
      "          [--rel-tol <frac>] [--stddev-k <k>] [--gate <substr>]\n"
      "          [--trace <out.json>] [--roofline <out.json>] [--list]\n"
      "env: SPMVM_BENCH_REPS, SPMVM_BENCH_MIN_SECONDS, SPMVM_BENCH_SCALE,\n"
      "     SPMVM_BENCH_THREADS, SPMVM_BENCH_REL_TOL, SPMVM_BENCH_STDDEV_K\n",
      argv0);
}

double env_or(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

void print_report(const obs::BenchReport& report) {
  AsciiTable t({"benchmark", "reps", "mean [s]", "stddev [s]", "counters"});
  for (const obs::BenchEntry& e : report.entries) {
    std::string counters;
    for (const auto& [k, v] : e.counters) {
      if (!counters.empty()) counters += "  ";
      counters += k + "=" + fmt(v, 3);
    }
    t.add_row({e.name, std::to_string(e.repetitions),
               e.repetitions > 0 ? fmt(e.mean_seconds, 6) : "-",
               e.repetitions > 1 ? fmt(e.stddev_seconds, 6) : "-",
               counters});
  }
  std::printf("%s\n", t.render().c_str());
}

int run_compare(const obs::BenchReport& baseline,
                const obs::BenchReport& current,
                const obs::RegressOptions& opt) {
  const obs::RegressResult r = obs::compare(baseline, current, opt);
  std::printf("%s", r.render().c_str());
  return r.passed ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool list = false;
  std::string filter;
  std::string json_path;
  std::string baseline_path;
  std::string trace_path;
  std::string roofline_path;
  std::string cmp_a, cmp_b;
  obs::RegressOptions opt;
  opt.rel_tol = env_or("SPMVM_BENCH_REL_TOL", opt.rel_tol);
  opt.stddev_k = env_or("SPMVM_BENCH_STDDEV_K", opt.stddev_k);

  std::string err;
  std::string backend = "host";
  if (!obs::consume_json_flag(&argc, argv, &json_path, &err) ||
      !obs::consume_backend_flag(&argc, argv, &backend, &err) ||
      !obs::consume_value_flag(&argc, argv, "--filter", &filter, &err) ||
      !obs::consume_value_flag(&argc, argv, "--compare", &baseline_path,
                               &err) ||
      !obs::consume_value_flag(&argc, argv, "--gate", &opt.name_filter,
                               &err) ||
      !obs::consume_value_flag(&argc, argv, "--trace", &trace_path, &err) ||
      !obs::consume_value_flag(&argc, argv, "--roofline", &roofline_path,
                               &err) ||
      !obs::consume_double_flag(&argc, argv, "--rel-tol", &opt.rel_tol,
                                &err) ||
      !obs::consume_double_flag(&argc, argv, "--stddev-k", &opt.stddev_k,
                                &err)) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 2;
  }
  smoke = obs::consume_switch(&argc, argv, "--smoke");
  list = obs::consume_switch(&argc, argv, "--list");
  if (obs::consume_switch(&argc, argv, "--list-backends")) {
    AsciiTable t({"backend", "device", "description"});
    for (const exec::BackendInfo& b : exec::engine<double>().list())
      t.add_row({b.name, b.uses_device ? "yes" : "no", b.description});
    t.add_row({"auto", "-",
               "pick per matrix with the Eq. 1/Eq. 2 balance model"});
    std::printf("%s\n", t.render().c_str());
    return 0;
  }

  // --compare-files takes TWO positional values, which the shared
  // consume_* helpers don't model; strip it by hand, then any argv
  // remainder is an unknown flag.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--compare-files") != 0) continue;
    if (i + 2 >= argc) {
      std::fprintf(stderr, "error: --compare-files requires two paths\n");
      return 2;
    }
    cmp_a = argv[i + 1];
    cmp_b = argv[i + 2];
    for (int j = i + 3; j < argc; ++j) argv[j - 3] = argv[j];
    argc -= 3;
    break;
  }
  if (argc > 1) {
    std::fprintf(stderr, "error: unknown argument '%s'\n", argv[1]);
    print_usage(argv[0]);
    return 2;
  }

  if (list) {
    AsciiTable t({"scenario", "deterministic", "description"});
    for (const suite::Scenario& s : suite::scenarios())
      t.add_row({s.name, s.deterministic ? "yes" : "no", s.description});
    std::printf("%s\n", t.render().c_str());
    return 0;
  }

  try {
    if (!cmp_a.empty()) {
      // Pure file-vs-file gate; no scenarios run.
      return run_compare(obs::load_bench_report(cmp_a),
                         obs::load_bench_report(cmp_b), opt);
    }

    suite::SuiteConfig cfg = suite::SuiteConfig::from_env(smoke);
    cfg.backend = backend;
    std::printf("bench_suite: %s mode, min_reps=%d, min_seconds=%g, "
                "host_scale=%g, threads=%d, backend=%s\n\n",
                cfg.smoke ? "smoke" : "full", cfg.min_reps, cfg.min_seconds,
                cfg.host_scale, cfg.threads, cfg.backend.c_str());
    if (!trace_path.empty()) obs::set_tracing(true);
    if (!roofline_path.empty()) obs::set_ledger_enabled(true);
    const obs::BenchReport report = suite::run_suite(cfg, filter);
    print_report(report);

    if (!roofline_path.empty()) {
      // Efficiency ledger across the whole run: every instrumented
      // kernel/transfer/exchange versus its Eq. 1 / link-bandwidth roof.
      std::printf("%s\n", obs::roofline_table().c_str());
      std::ofstream out(roofline_path);
      out << obs::roofline_json();
      if (!out) {
        std::fprintf(stderr, "failed to write %s\n", roofline_path.c_str());
        return 2;
      }
      std::printf("roofline ledger written to %s\n", roofline_path.c_str());
    }

    if (!json_path.empty() && !report.write(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 2;
    }

    if (!trace_path.empty()) {
      // Round-trip through split/merge: the per-rank parts of the run
      // are rebased and tid-remapped exactly like traces collected from
      // separate processes, so the written file is a *merged* multi-rank
      // Chrome trace (one pid lane per rank, send→recv flow arrows).
      obs::set_tracing(false);
      const obs::MergedTrace merged = obs::merge_traces(
          obs::split_trace_by_rank(obs::collect(), obs::trace_threads()));
      std::ofstream out(trace_path);
      out << obs::chrome_trace_json(merged.events, merged.threads);
      if (!out) {
        std::fprintf(stderr, "failed to write %s\n", trace_path.c_str());
        return 2;
      }
      std::printf("merged trace (%zu spans) written to %s\n",
                  merged.events.size(), trace_path.c_str());
    }

    if (!baseline_path.empty())
      return run_compare(obs::load_bench_report(baseline_path), report, opt);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return 0;
}
