// Table I reproduction: pJDS data reduction vs ELLPACK and spMVM
// throughput of ELLPACK-R vs pJDS on a (simulated) Tesla C2070, for
// {SP, DP} x {ECC off, ECC on}, plus the Westmere CRS baseline row.
//
// The two compared formats are resolved by name through the format
// registry; the simulated kernels and footprints come from the plans.
//
// Matrices are scaled-down synthetic stand-ins (see DESIGN.md §2); the
// quantities compared with the paper are ratios and orderings, not
// absolute GF/s.
#include <cstdio>
#include <string>
#include <vector>

#include "formats/registry.hpp"
#include "gpusim/cpu_node.hpp"
#include "matgen/suite.hpp"
#include "obs/report.hpp"
#include "sparse/matrix_stats.hpp"
#include "util/ascii.hpp"
#include "util/timer.hpp"

using namespace spmvm;

namespace {

struct Entry {
  std::string name;
  double scale;
  // Paper values: reduction %, then {SP0, SP1, DP0, DP1} x {E-R, pJDS},
  // then Westmere CRS DP.
  double p_red;
  double p[4][2];
  double p_cpu;
};

const Entry kEntries[] = {
    {"DLR1", 8, 17.5, {{22.1, 27.6}, {18.0, 19.1}, {18.7, 18.3}, {12.9, 12.9}}, 5.7},
    {"DLR2", 16, 48.0, {{15.2, 18.7}, {13.2, 12.1}, {11.7, 14.6}, {9.6, 9.5}}, 5.8},
    {"HMEp", 32, 36.0, {{15.8, 18.9}, {12.1, 11.6}, {12.3, 12.2}, {7.9, 7.5}}, 3.9},
    {"sAMG", 32, 68.4, {{14.6, 19.5}, {11.6, 12.6}, {11.1, 13.0}, {7.8, 8.5}}, 4.1},
};

template <class T>
double gfs(const gpusim::DeviceSpec& dev, const formats::FormatPlan<T>& plan,
           bool ecc) {
  gpusim::SimOptions opt;
  opt.ecc = ecc;
  return plan.simulate(dev, opt)->gflops;
}

/// Cache behaviour is scale-dependent: a 1/S-scale RHS vector fits the L2
/// when the full-size one does not. Scaling the simulated L2 (and the
/// CPU cache) by the same factor preserves the reuse regime.
gpusim::DeviceSpec scaled_device(gpusim::DeviceSpec dev, double scale) {
  dev.l2_bytes = static_cast<std::size_t>(
      static_cast<double>(dev.l2_bytes) / scale);
  return dev;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path, err;
  if (!obs::consume_json_flag(&argc, argv, &json_path, &err)) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 1;
  }
  if (argc > 1) {
    std::fprintf(stderr, "usage: %s [--json <path>]\n", argv[0]);
    return 1;
  }
  obs::BenchReport report;
  report.binary = "bench_table1";
  report.metadata = obs::machine_fingerprint();

  const auto base_dev = gpusim::DeviceSpec::tesla_c2070();
  const auto base_cpu = gpusim::CpuNodeSpec::westmere_ep();
  std::printf("Table I: data reduction and spMVM performance, %s (simulated)\n",
              base_dev.name.c_str());
  std::printf("cells: measured [paper]\n\n");

  AsciiTable t({"row", "DLR1", "DLR2", "HMEp", "sAMG"});
  std::vector<std::vector<std::string>> cells(
      10, std::vector<std::string>{});  // reduction + 4x2 + cpu

  Timer timer;
  for (const auto& e : kEntries) {
    const auto dev = scaled_device(base_dev, e.scale);
    auto cpu = base_cpu;
    cpu.cache_bytes = static_cast<std::size_t>(
        static_cast<double>(cpu.cache_bytes) / e.scale);
    const auto ad = make_named(e.name, e.scale).matrix;
    // Identical pattern in single precision (same seed and scale).
    Csr<float> af;
    af.n_rows = ad.n_rows;
    af.n_cols = ad.n_cols;
    af.row_ptr = ad.row_ptr;
    af.col_idx = ad.col_idx;
    af.val.assign(ad.val.begin(), ad.val.end());

    std::printf("  %s  (generated in %.1f s)\n",
                format_stats(e.name, compute_stats(ad)).c_str(),
                timer.seconds());
    timer.reset();

    const auto er_d = formats::registry<double>().build("ellpack_r", ad);
    const auto pj_d = formats::registry<double>().build("pjds", ad);
    const auto er_f = formats::registry<float>().build("ellpack_r", af);
    const auto pj_f = formats::registry<float>().build("pjds", af);

    // Table I, first row: 100 * (1 - stored_pJDS / stored_ELLPACK),
    // counted in matrix entries (values + indices scale identically).
    const double red =
        100.0 *
        (1.0 - static_cast<double>(pj_d->footprint().stored_entries) /
                   static_cast<double>(er_d->footprint().stored_entries));
    cells[0].push_back(fmt(red, 1) + " [" + fmt(e.p_red, 1) + "]");
    std::vector<std::pair<std::string, double>> counters = {
        {"reduction_pct", red}, {"paper_reduction_pct", e.p_red}};

    const char* cfg_names[4] = {"sp_ecc0", "sp_ecc1", "dp_ecc0", "dp_ecc1"};
    for (int cfg_i = 0; cfg_i < 4; ++cfg_i) {
      const bool sp = cfg_i < 2;
      const bool ecc = (cfg_i % 2) == 1;
      const double er = sp ? gfs(dev, *er_f, ecc) : gfs(dev, *er_d, ecc);
      const double pj = sp ? gfs(dev, *pj_f, ecc) : gfs(dev, *pj_d, ecc);
      cells[1 + 2 * cfg_i].push_back(fmt(er, 1) + " [" +
                                     fmt(e.p[cfg_i][0], 1) + "]");
      cells[2 + 2 * cfg_i].push_back(fmt(pj, 1) + " [" +
                                     fmt(e.p[cfg_i][1], 1) + "]");
      counters.emplace_back(std::string(cfg_names[cfg_i]) + "_ellpack_r GF/s",
                            er);
      counters.emplace_back(std::string(cfg_names[cfg_i]) + "_pjds GF/s", pj);
    }
    const auto c = gpusim::simulate_csr(cpu, ad);
    cells[9].push_back(fmt(c.gflops, 1) + " [" + fmt(e.p_cpu, 1) + "]");
    counters.emplace_back("cpu_crs_dp GF/s", c.gflops);
    report.entries.push_back(obs::summarize_samples(
        std::string("table1/") + e.name, {}, std::move(counters)));
  }

  const char* row_names[10] = {
      "data reduction [%]", "SP ECC=0 ELLPACK-R", "SP ECC=0 pJDS",
      "SP ECC=1 ELLPACK-R", "SP ECC=1 pJDS",      "DP ECC=0 ELLPACK-R",
      "DP ECC=0 pJDS",      "DP ECC=1 ELLPACK-R", "DP ECC=1 pJDS",
      "Westmere CRS (DP)"};
  for (int r = 0; r < 10; ++r) {
    std::vector<std::string> row = {row_names[r]};
    for (const auto& c : cells[static_cast<std::size_t>(r)]) row.push_back(c);
    t.add_row(row);
  }
  std::printf("\n%s\n", t.render().c_str());

  // Shape summary the paper claims (Sec. II-A).
  std::printf("paper claims to check:\n");
  std::printf(" - reduction ordering sAMG > DLR2 > HMEp > DLR1\n");
  std::printf(" - pJDS gains up to ~30%% (mostly SP), worst penalty ~5%% (DP)\n");
  std::printf(" - ECC costs roughly the bandwidth ratio 120/91 when bound\n");

  if (!json_path.empty() && !report.write(json_path)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
