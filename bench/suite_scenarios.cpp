#include "suite_scenarios.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "core/spmmv.hpp"
#include "dist/cluster_model.hpp"
#include "dist/comm_plan.hpp"
#include "exec/dispatch.hpp"
#include "exec/engine.hpp"
#include "formats/registry.hpp"
#include "matgen/suite.hpp"
#include "obs/attribution.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "perfmodel/balance.hpp"
#include "perfmodel/model_eval.hpp"
#include "perfmodel/pcie_impact.hpp"
#include "serve/batcher.hpp"
#include "serve/server.hpp"
#include "util/timer.hpp"

namespace spmvm::suite {

namespace {

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

/// Matrices of the model-deviation table with the scales bench_perf_model
/// uses (smoke mode shrinks them further for CI).
struct DevItem {
  const char* name;
  double scale;
  double smoke_scale;
};
constexpr DevItem kDevItems[] = {
    {"DLR1", 8, 64},
    {"HMEp", 32, 128},
    {"sAMG", 32, 128},
};

/// Eq. 1 streamed bytes of one host product: stored matrix + RHS + LHS.
template <class F>
std::size_t product_bytes(const F& fmt_footprint, index_t n_rows,
                          index_t n_cols) {
  return fmt_footprint.total_bytes(sizeof(double)) +
         (static_cast<std::size_t>(n_rows) +
          static_cast<std::size_t>(n_cols)) *
             sizeof(double);
}

obs::BenchEntry measured_entry(const SuiteConfig& cfg, const std::string& name,
                               offset_t nnz, std::size_t bytes,
                               void (*fn)(void*), void* ctx) {
  const MeasureStats s =
      measure_seconds_stats(cfg.min_seconds, cfg.min_reps, fn, ctx);
  return obs::entry_from_stats(
      name, s,
      {{"GF/s", 2.0 * static_cast<double>(nnz) / s.mean_seconds / 1e9},
       {"GB/s", static_cast<double>(bytes) / s.mean_seconds / 1e9}});
}

template <class F>
obs::BenchEntry measured_entry(const SuiteConfig& cfg, const std::string& name,
                               offset_t nnz, std::size_t bytes, F&& fn) {
  struct Ctx {
    F* f;
  } ctx{&fn};
  return measured_entry(
      cfg, name, nnz, bytes, [](void* c) { (*static_cast<Ctx*>(c)->f)(); },
      &ctx);
}

// ---- host_kernels: measured spMVM per storage format ---------------------

void run_host_kernels(const SuiteConfig& cfg, obs::BenchReport& report) {
  GenConfig gen;
  gen.scale = cfg.host_scale;
  const Csr<double> a = make_samg<double>(gen);
  std::vector<double> x(static_cast<std::size_t>(a.n_cols), 1.0);
  std::vector<double> y(static_cast<std::size_t>(a.n_rows));

  // Every registered format, by registry enumeration — adding a format
  // adds a <backend>/<name> row here with no suite change. Products go
  // through the exec engine, so --backend retargets the whole scenario
  // (gpusim and hybrid execute the same host kernels for numerics;
  // their simulated clocks advance on the side).
  exec::LaunchOptions launch;
  launch.n_threads = cfg.threads;
  launch.basis = exec::Basis::plan;
  auto& eng = exec::engine<double>();
  const auto& reg = formats::registry<double>();
  for (const formats::FormatInfo& info : reg.list()) {
    if (std::string_view(info.name) == "auto")
      continue;  // measured separately (auto_format scenario)
    const auto plan = reg.build(info.name, a);
    const auto bound = eng.bind_plan(cfg.backend, plan, launch);
    report.entries.push_back(measured_entry(
        cfg, cfg.backend + "/" + info.name, a.nnz(),
        product_bytes(plan->footprint(), a.n_rows, a.n_cols), [&] {
          bound->apply(std::span<const double>(x), std::span<double>(y));
        }));
  }
}

// ---- auto_format: the `auto` plan's pick per Table I matrix class --------

void run_auto_format(const SuiteConfig& cfg, obs::BenchReport& report) {
  for (const DevItem& it : kDevItems) {
    const double scale = cfg.smoke ? it.smoke_scale : it.scale;
    const auto a = make_named(it.name, scale).matrix;

    formats::PlanOptions opt;
    opt.probe = true;
    opt.probe_candidates = 0;  // probe everything: the choice must agree
                               // with the measured-fastest format
    opt.probe_min_seconds = cfg.min_seconds;
    opt.probe_reps = cfg.min_reps;
    opt.probe_threads = cfg.threads;
    const auto plan = formats::registry<double>().build("auto", a, opt);
    const formats::AutoChoice& c = *plan->auto_choice();

    // Gap between the Eq. 1 model's pick and the measured winner, as a
    // slowdown percentage (0 when they agree).
    const double chosen_s = c.candidates[c.chosen_index].probe_seconds;
    const double model_s = c.candidates[c.model_index].probe_seconds;
    const double gap_pct =
        chosen_s > 0.0 ? 100.0 * (model_s / chosen_s - 1.0) : 0.0;

    const double sample[] = {chosen_s};
    report.entries.push_back(obs::summarize_samples(
        std::string("auto/") + it.name, sample,
        {{"alpha_measured", c.alpha_measured},
         {"chosen_index", static_cast<double>(c.chosen_index)},
         {"model_index", static_cast<double>(c.model_index)},
         {"model_agrees", c.chosen_index == c.model_index ? 1.0 : 0.0},
         {"model_vs_measured_pct", gap_pct}}));
    report.metadata.emplace_back(std::string("auto.") + it.name + ".format",
                                 c.chosen);
  }
}

// ---- model_deviation: Eq. 1 at measured α vs the simulator ---------------

void run_model_deviation(const SuiteConfig& cfg, obs::BenchReport& report) {
  const auto dev = gpusim::DeviceSpec::tesla_c2070();
  for (const DevItem& it : kDevItems) {
    const double scale = cfg.smoke ? it.smoke_scale : it.scale;
    const auto a = make_named(it.name, scale).matrix;
    auto sdev = dev;  // scale the L2 with the matrix (see DESIGN.md)
    sdev.l2_bytes = static_cast<std::size_t>(
        static_cast<double>(dev.l2_bytes) / scale);
    const auto r =
        perfmodel::evaluate(sdev, a, gpusim::FormatKind::ellpack_r, true);
    const double sample[] = {r.sim_seconds};
    report.entries.push_back(obs::summarize_samples(
        std::string("model/") + it.name, sample,
        {{"alpha_measured", r.alpha_measured},
         {"balance_model", r.balance_model},
         {"balance_sim", r.balance_sim},
         {"model GF/s", r.gflops_model},
         {"sim GF/s", r.gflops_sim},
         {"pcie GF/s", r.gflops_with_pcie},
         {"model_vs_sim_pct", r.model_vs_sim_pct()}}));
  }
}

// ---- host_reference: the same matrices on this machine's CPU -------------

void run_host_reference(const SuiteConfig& cfg, obs::BenchReport& report) {
  for (const DevItem& it : kDevItems) {
    const double scale = cfg.smoke ? it.smoke_scale : it.scale;
    const auto a = make_named(it.name, scale).matrix;
    std::vector<double> x(static_cast<std::size_t>(a.n_cols), 1.0);
    std::vector<double> y(static_cast<std::size_t>(a.n_rows));
    const int t = cfg.threads;
    report.entries.push_back(measured_entry(
        cfg, std::string("deviation/") + it.name + "/host", a.nnz(),
        product_bytes(footprint(a), a.n_rows, a.n_cols), [&] {
          exec::host_spmv(a, std::span<const double>(x), std::span<double>(y),
                          t);
        }));
  }
}

// ---- exec_backends: one product per execution backend --------------------

/// Deterministic split and PCIe accounting of the exec engine: bind the
/// same matrix to every backend, run one product each, and record what
/// the backend decided (row split, device nnz share) and what it staged
/// over the simulated PCIe link (Eq. 2 pricing). All counters derive
/// from the model, so CI gates them bit-exactly.
void run_exec_backends(const SuiteConfig&, obs::BenchReport& report) {
  // A private engine: simulated clocks and staging counters start at
  // zero, so every number below is the exact cost of one product.
  exec::Engine<double> eng;
  const auto a = make_named("DLR1", 64).matrix;
  std::vector<double> x(static_cast<std::size_t>(a.n_cols), 1.0);
  std::vector<double> y(static_cast<std::size_t>(a.n_rows));

  formats::PlanOptions fopt;
  fopt.probe = false;  // keep any format selection bit-deterministic
  for (const char* name : {"host", "gpusim", "hybrid"}) {
    const std::uint64_t h2d0 = eng.transfers()->bytes_to_device();
    const std::uint64_t d2h0 = eng.transfers()->bytes_to_host();
    const double s0 = eng.transfers()->transfer_seconds();
    const auto bound = eng.bind(name, a, "pjds", fopt);
    bound->apply(std::span<const double>(x), std::span<double>(y));
    report.entries.push_back(obs::summarize_samples(
        std::string("exec/") + name, {},
        {{"split_row", static_cast<double>(bound->split_row())},
         {"device_nnz_share", bound->device_nnz_share()},
         {"h2d_bytes", static_cast<double>(
                           eng.transfers()->bytes_to_device() - h2d0)},
         {"d2h_bytes", static_cast<double>(
                           eng.transfers()->bytes_to_host() - d2h0)},
         {"pcie_seconds", eng.transfers()->transfer_seconds() - s0}}));
  }

  // The `auto` choice for the same matrix: the Eq. 1/Eq. 2 bound per
  // backend and the winner (recorded as metadata — it is a name).
  const exec::BackendChoice c = eng.select_backend(a);
  report.entries.push_back(obs::summarize_samples(
      "exec/auto", {},
      {{"host_s", c.host_seconds},
       {"gpusim_s", c.gpusim_seconds},
       {"hybrid_s", c.hybrid_seconds},
       {"device_share", c.hybrid_device_share}}));
  report.metadata.emplace_back("exec.auto.backend", c.chosen);
}

// ---- pcie_thresholds: the Eqs. 3/4 favorable-N_nzr numbers ---------------

void run_pcie_thresholds(const SuiteConfig&, obs::BenchReport& report) {
  struct Row {
    const char* name;
    double value;
    double paper;
  };
  const Row rows[] = {
      {"pcie/ge50pct_worst_alpha_r20",
       perfmodel::nnzr_upper_for_50pct_penalty_worst_alpha(20.0), 25},
      {"pcie/ge50pct_alpha1_r10",
       perfmodel::nnzr_upper_for_50pct_penalty(10.0, 1.0), 7},
      {"pcie/le10pct_alpha1_r10",
       perfmodel::nnzr_lower_for_10pct_penalty(10.0, 1.0), 80},
      {"pcie/le10pct_worst_alpha_r20",
       perfmodel::nnzr_lower_for_10pct_penalty_worst_alpha(20.0), 266},
  };
  for (const Row& r : rows)
    report.entries.push_back(obs::summarize_samples(
        r.name, {}, {{"nnzr", r.value}, {"paper_nnzr", r.paper}}));
}

// ---- dist_comm_modes: the three communication schemes (cluster model) ----

const char* scheme_slug(dist::CommScheme s) {
  switch (s) {
    case dist::CommScheme::vector_mode: return "vector";
    case dist::CommScheme::naive_overlap: return "naive";
    case dist::CommScheme::task_mode: return "task";
  }
  return "?";
}

void run_dist_comm_modes(const SuiteConfig& cfg, obs::BenchReport& report) {
  const double scale = cfg.smoke ? 32 : 8;
  const auto m = make_named("DLR1", scale);
  dist::ClusterSpec c = dist::ClusterSpec::dirac();
  c.device.dram_bytes = static_cast<std::size_t>(
      static_cast<double>(c.device.dram_bytes) / scale);
  c.device.l2_bytes = static_cast<std::size_t>(
      static_cast<double>(c.device.l2_bytes) / scale);

  const std::vector<int> nodes = cfg.smoke ? std::vector<int>{1, 2}
                                           : std::vector<int>{1, 2, 4, 8};
  const std::vector<dist::CommScheme> schemes = {
      dist::CommScheme::vector_mode, dist::CommScheme::naive_overlap,
      dist::CommScheme::task_mode};
  const auto pts = dist::strong_scaling(c, m.matrix, nodes, schemes);
  for (const auto& p : pts) {
    if (p.seconds == 0.0) continue;  // did not fit in device memory
    const double sample[] = {p.seconds};
    report.entries.push_back(obs::summarize_samples(
        std::string("dist/DLR1/") + scheme_slug(p.scheme) + "/" +
            std::to_string(p.nodes),
        sample,
        {{"GF/s", p.gflops}, {"nodes", static_cast<double>(p.nodes)}}));
  }
}

// ---- dist_comm: functional halo exchange through the persistent plan -----

/// Deterministic per-scheme traffic accounting (bytes and messages per
/// iteration, gated in CI) plus an informational legacy-vs-plan timing
/// comparison under dist_comm_time/ (not gated: wall-clock).
void run_dist_comm(const SuiteConfig& cfg, obs::BenchReport& report) {
  const double scale = cfg.smoke ? 64 : 16;
  const auto m = make_named("DLR1", scale);
  const int n_ranks = 4;
  const int iters = cfg.smoke ? 5 : 20;
  const auto part = dist::partition_balanced_nnz(m.matrix, n_ranks);

  const std::vector<dist::CommScheme> schemes = {
      dist::CommScheme::vector_mode, dist::CommScheme::naive_overlap,
      dist::CommScheme::task_mode};
  for (const auto scheme : schemes) {
    // Traffic counters around a barrier-synchronized plan run: every
    // steady-state send must rendezvous, so the deltas are exact.
    const std::uint64_t halo0 = obs::counter("comm.halo_bytes").value();
    const std::uint64_t send0 = obs::counter("comm.send_bytes").value();
    const std::uint64_t hits0 = obs::counter("comm.rendezvous_hits").value();
    const std::uint64_t eager0 = obs::counter("comm.eager_fallbacks").value();
    // The same run doubles as the attribution window: tracing is forced
    // on for it, and the events recorded after `trace_t0` are attributed
    // per rank and phase (DESIGN.md §11). Time-clipping instead of
    // clear_trace() keeps spans of earlier scenarios intact for a
    // --trace export.
    const bool was_tracing = obs::tracing_enabled();
    obs::set_tracing(true);
    const std::uint64_t trace_t0 = obs::now_ns();
    msg::Runtime::run(n_ranks, [&](msg::Comm& comm) {
      const auto d = dist::distribute(m.matrix, part, comm.rank());
      std::vector<double> x(static_cast<std::size_t>(d.n_local), 1.0);
      std::vector<double> y(static_cast<std::size_t>(d.n_local));
      dist::CommPlan<double> plan(comm, d, scheme, /*gather_threads=*/2);
      for (int it = 0; it < iters; ++it) {
        plan.spmv(std::span<const double>(x), std::span<double>(y));
        comm.barrier();
      }
    });
    obs::set_tracing(was_tracing);
    std::vector<obs::TraceEvent> window;
    for (const auto& e : obs::collect())
      if (e.t0_ns >= trace_t0) window.push_back(e);
    const obs::AttributionReport attr = obs::attribute_comm_phases(window);
    if (!attr.empty()) {
      report.entries.push_back(obs::summarize_samples(
          std::string("dist_comm_phase/") + scheme_slug(scheme), {},
          attr.counters()));
      std::printf("dist_comm/%s comm attribution (%d ranks, %d iters):\n%s\n",
                  scheme_slug(scheme), n_ranks, iters, attr.render().c_str());
    }
    const double per_iter =
        1.0 / static_cast<double>(iters) / n_ranks;  // per rank-iteration
    report.entries.push_back(obs::summarize_samples(
        std::string("dist_comm/") + scheme_slug(scheme), {},
        {{"halo_bytes_per_rank_iter",
          static_cast<double>(obs::counter("comm.halo_bytes").value() -
                              halo0) *
              per_iter},
         {"send_bytes_per_rank_iter",
          static_cast<double>(obs::counter("comm.send_bytes").value() -
                              send0) *
              per_iter},
         {"rendezvous_per_iter",
          static_cast<double>(obs::counter("comm.rendezvous_hits").value() -
                              hits0) /
              iters},
         {"eager_per_iter",
          static_cast<double>(obs::counter("comm.eager_fallbacks").value() -
                              eager0) /
              iters}}));

    // Separate run for wall-clock: the same product count through the
    // legacy per-call path and the plan, free-running.
    double legacy_s = 0.0, plan_s = 0.0;
    msg::Runtime::run(n_ranks, [&](msg::Comm& comm) {
      const auto d = dist::distribute(m.matrix, part, comm.rank());
      std::vector<double> x(static_cast<std::size_t>(d.n_local), 1.0);
      std::vector<double> y(static_cast<std::size_t>(d.n_local));
      std::vector<double> halo, sendbuf;
      // Warm both paths (pool workers, kernel plans) before timing.
      dist::dist_spmv(comm, d, std::span<const double>(x),
                      std::span<double>(y), scheme, halo, sendbuf);
      comm.barrier();
      const auto t0 = std::chrono::steady_clock::now();
      for (int it = 0; it < iters; ++it)
        dist::dist_spmv(comm, d, std::span<const double>(x),
                        std::span<double>(y), scheme, halo, sendbuf);
      const auto t1 = std::chrono::steady_clock::now();
      dist::CommPlan<double> plan(comm, d, scheme, /*gather_threads=*/2);
      plan.spmv(std::span<const double>(x), std::span<double>(y));
      comm.barrier();
      const auto t2 = std::chrono::steady_clock::now();
      for (int it = 0; it < iters; ++it)
        plan.spmv(std::span<const double>(x), std::span<double>(y));
      const auto t3 = std::chrono::steady_clock::now();
      if (comm.rank() == 0) {
        legacy_s = std::chrono::duration<double>(t1 - t0).count() / iters;
        plan_s = std::chrono::duration<double>(t3 - t2).count() / iters;
      }
    });
    const double sample[] = {plan_s};
    report.entries.push_back(obs::summarize_samples(
        std::string("dist_comm_time/") + scheme_slug(scheme), sample,
        {{"legacy_s", legacy_s},
         {"plan_s", plan_s},
         {"speedup", plan_s > 0.0 ? legacy_s / plan_s : 0.0}}));
  }
}

/// The suite's validation summary: for every matrix with both a model
/// row and a host row, one "deviation/<name>" entry (the three-way
/// model-vs-simulated-vs-host table) mirrored into obs gauges.
void record_deviation_table(obs::BenchReport& report) {
  for (const DevItem& it : kDevItems) {
    const obs::BenchEntry* model =
        report.find(std::string("model/") + it.name);
    const obs::BenchEntry* host =
        report.find(std::string("deviation/") + it.name + "/host");
    if (model == nullptr || host == nullptr) continue;
    const auto counter = [](const obs::BenchEntry* e, const char* name) {
      for (const auto& [k, v] : e->counters)
        if (k == name) return v;
      return 0.0;
    };
    const double model_gfs = counter(model, "model GF/s");
    const double sim_gfs = counter(model, "sim GF/s");
    const double host_gfs = counter(host, "GF/s");
    const double model_sim_pct = perfmodel::deviation_pct(model_gfs, sim_gfs);
    const double sim_host = host_gfs == 0.0 ? 0.0 : sim_gfs / host_gfs;
    const double model_host = host_gfs == 0.0 ? 0.0 : model_gfs / host_gfs;
    // Carry the host row's timing spread so the regression gate knows
    // how noisy the host-derived ratios are.
    obs::BenchEntry e = *host;
    e.name = std::string("deviation/") + it.name;
    e.counters = {{"model GF/s", model_gfs},
                  {"sim GF/s", sim_gfs},
                  {"host GF/s", host_gfs},
                  {"model_vs_sim_pct", model_sim_pct},
                  {"sim_vs_host_ratio", sim_host},
                  {"model_vs_host_ratio", model_host}};
    report.entries.push_back(std::move(e));
    const std::string prefix = std::string("report.dev.") + it.name;
    obs::gauge(prefix + ".model_vs_sim_pct").set(model_sim_pct);
    obs::gauge(prefix + ".sim_vs_host_ratio").set(sim_host);
    obs::gauge(prefix + ".model_vs_host_ratio").set(model_host);
  }
}

// ---- serve: batching model, block staging, admission accounting ----------

void run_serve(const SuiteConfig&, obs::BenchReport& report) {
  // Model-chosen batch widths per Table I matrix: the Eq. 1 block
  // extension walked with the server's default gain threshold.
  for (const char* name : {"DLR1", "HMEp", "sAMG"}) {
    const auto nm = make_named(name, 64);
    const double nnzr =
        static_cast<double>(nm.matrix.nnz()) /
        static_cast<double>(std::max<index_t>(1, nm.matrix.n_rows));
    const double alpha = perfmodel::alpha_ideal(nnzr);
    report.entries.push_back(obs::summarize_samples(
        std::string("serve/width_") + name, {},
        {{"nnzr", nnzr},
         {"target_k_max8",
          static_cast<double>(serve::target_batch_width(sizeof(double),
                                                        alpha, nnzr, 8,
                                                        0.02))},
         {"target_k_max32",
          static_cast<double>(serve::target_batch_width(sizeof(double),
                                                        alpha, nnzr, 32,
                                                        0.02))},
         {"balance_k1", spmmv_code_balance(sizeof(double), alpha, nnzr, 1)},
         {"balance_k8",
          spmmv_code_balance(sizeof(double), alpha, nnzr, 8)}}));
  }

  // Block-launch PCIe staging on a private engine: one k-wide launch
  // stages n_cols·k up and n_rows·k down — exact byte deltas, no noise.
  exec::Engine<double> eng;
  const auto a = make_named("DLR1", 64).matrix;
  formats::PlanOptions fopt;
  fopt.probe = false;
  const auto bound = eng.bind("gpusim", a, "pjds", fopt);
  for (const int k : {1, 2, 8}) {
    std::vector<double> x(static_cast<std::size_t>(a.n_cols) *
                              static_cast<std::size_t>(k),
                          1.0);
    std::vector<double> y(static_cast<std::size_t>(a.n_rows) *
                          static_cast<std::size_t>(k));
    const std::uint64_t h2d0 = eng.transfers()->bytes_to_device();
    const std::uint64_t d2h0 = eng.transfers()->bytes_to_host();
    bound->apply_block(std::span<const double>(x), std::span<double>(y), k);
    report.entries.push_back(obs::summarize_samples(
        std::string("serve/block_k") + std::to_string(k), {},
        {{"h2d_bytes", static_cast<double>(eng.transfers()->bytes_to_device() -
                                           h2d0)},
         {"d2h_bytes", static_cast<double>(eng.transfers()->bytes_to_host() -
                                           d2h0)}}));
  }

  // Admission accounting on a synchronous submission sequence: five
  // requests against a watermark of two while the workers are still
  // parked — two admitted, three shed — then a late start serves the
  // backlog as one width-2 block.
  serve::ServerOptions sopt;
  sopt.backend = "host";
  sopt.n_workers = 1;
  sopt.queue_capacity = 4;
  sopt.admit_watermark = 2;
  sopt.max_batch = 8;
  sopt.max_batch_wait_s = 0.0;
  serve::Server server(sopt);
  server.register_matrix("m", a);
  std::vector<serve::Ticket> tickets;
  for (int i = 0; i < 5; ++i)
    tickets.push_back(server.submit(
        "m", std::vector<double>(static_cast<std::size_t>(a.n_cols), 1.0)));
  server.start();
  int max_width = 0;
  for (auto& t : tickets) {
    const serve::Response r = t.get();
    max_width = std::max(max_width, r.batch_width);
  }
  server.shutdown();
  const serve::ServerStats stats = server.stats();
  report.entries.push_back(obs::summarize_samples(
      "serve/admission", {},
      {{"accepted", static_cast<double>(stats.accepted)},
       {"rejected_full", static_cast<double>(stats.rejected_full)},
       {"completed", static_cast<double>(stats.completed)},
       {"batches", static_cast<double>(stats.batches)},
       {"model_k", static_cast<double>(server.batch_width("m"))},
       {"max_width", static_cast<double>(max_width)}}));
}

constexpr Scenario kScenarios[] = {
    {"host_kernels", "measured host spMVM per storage format (sAMG)", false,
     run_host_kernels},
    {"auto_format",
     "the auto plan's format pick vs measured-fastest (DLR1/HMEp/sAMG)",
     false, run_auto_format},
    {"model_deviation",
     "Eq. 1 at measured alpha vs the GPU simulator (DLR1/HMEp/sAMG)", true,
     run_model_deviation},
    {"host_reference",
     "the model-deviation matrices on this machine's CPU (CSR)", false,
     run_host_reference},
    {"exec_backends",
     "one product per execution backend: row split and PCIe accounting "
     "(DLR1)",
     true, run_exec_backends},
    {"pcie_thresholds", "Eqs. 3/4 favorable-N_nzr thresholds", true,
     run_pcie_thresholds},
    {"dist_comm_modes",
     "cluster-model strong scaling, three communication schemes", true,
     run_dist_comm_modes},
    {"dist_comm",
     "functional halo exchange: per-scheme traffic (deterministic) and "
     "legacy-vs-plan timing",
     false, run_dist_comm},
    {"serve",
     "serving layer: model batch widths, block-launch PCIe staging, "
     "admission accounting (DLR1/HMEp/sAMG)",
     true, run_serve},
};

}  // namespace

SuiteConfig SuiteConfig::from_env(bool smoke) {
  SuiteConfig cfg;
  cfg.smoke = smoke;
  if (smoke) {
    cfg.min_reps = 5;
    cfg.min_seconds = 0.005;  // enough reps for a usable stddev estimate
    cfg.host_scale = 512.0;
  }
  cfg.min_reps =
      static_cast<int>(env_double("SPMVM_BENCH_REPS", cfg.min_reps));
  cfg.min_seconds = env_double("SPMVM_BENCH_MIN_SECONDS", cfg.min_seconds);
  cfg.host_scale = env_double("SPMVM_BENCH_SCALE", cfg.host_scale);
  cfg.threads =
      static_cast<int>(env_double("SPMVM_BENCH_THREADS", cfg.threads));
  return cfg;
}

std::span<const Scenario> scenarios() { return kScenarios; }

obs::BenchReport run_suite(const SuiteConfig& cfg, const std::string& filter) {
  obs::BenchReport report;
  report.binary = "bench_suite";
  report.metadata = obs::machine_fingerprint();
  report.metadata.emplace_back("mode", cfg.smoke ? "smoke" : "full");
  report.metadata.emplace_back("min_reps", std::to_string(cfg.min_reps));
  report.metadata.emplace_back("min_seconds",
                               std::to_string(cfg.min_seconds));
  report.metadata.emplace_back("host_scale", std::to_string(cfg.host_scale));
  report.metadata.emplace_back("threads", std::to_string(cfg.threads));
  report.metadata.emplace_back("backend", cfg.backend);
  if (!filter.empty()) report.metadata.emplace_back("filter", filter);

  for (const Scenario& s : kScenarios) {
    if (!filter.empty() &&
        std::string_view(s.name).find(filter) == std::string_view::npos)
      continue;
    // Every scenario starts from a fully zeroed registry — including
    // gauges, which reset_metrics() deliberately keeps: scenarios are
    // *different* workloads, so a gauge left over from the previous one
    // (e.g. comm.gather_seconds) would masquerade as this scenario's.
    obs::reset_all();
    s.run(cfg, report);
  }
  record_deviation_table(report);
  return report;
}

}  // namespace spmvm::suite
