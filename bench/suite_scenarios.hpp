// Scenario registry of the unified benchmark suite (bench_suite).
//
// One scenario = one named group of BenchEntry rows appended to a
// BenchReport. The registry is fixed and ordered, so two runs of the
// same binary produce the same entry set — the property the regression
// gate (obs/regress) relies on to tell "metric removed" from "scenario
// renamed". Scenarios marked `deterministic` derive everything from the
// simulator/analytic model and produce bit-identical values on any
// machine; the host_* scenarios time real kernels and carry per-rep
// noise statistics instead.
//
// Split into its own translation unit (linked by both bench_suite and
// test_bench_report) so the registry itself is under test.
#pragma once

#include <span>
#include <string>

#include "obs/bench_json.hpp"

namespace spmvm::suite {

/// Knobs shared by all scenarios. `--smoke` (or smoke_config()) selects
/// tiny matrices and minimal repetitions for CI; the SPMVM_BENCH_*
/// environment variables override individual fields (see from_env).
struct SuiteConfig {
  bool smoke = false;
  int min_reps = 5;           // SPMVM_BENCH_REPS
  double min_seconds = 0.02;  // SPMVM_BENCH_MIN_SECONDS, per measured case
  double host_scale = 64.0;   // SPMVM_BENCH_SCALE, host-kernel matrix 1/S
  int threads = 1;            // SPMVM_BENCH_THREADS, host-kernel threads
  /// Execution backend the measured kernel scenarios launch through
  /// (--backend): host, gpusim, hybrid, or auto.
  std::string backend = "host";

  /// Defaults for the mode, then SPMVM_BENCH_* overrides applied.
  static SuiteConfig from_env(bool smoke);
};

struct Scenario {
  const char* name;         // registry key, also the entry-name prefix
  const char* description;
  bool deterministic;       // machine-independent model output
  void (*run)(const SuiteConfig&, obs::BenchReport&);
};

/// The fixed, ordered scenario registry.
std::span<const Scenario> scenarios();

/// Run every scenario whose name contains `filter` (empty = all) into a
/// report stamped with the machine fingerprint and suite config.
obs::BenchReport run_suite(const SuiteConfig& cfg,
                           const std::string& filter = "");

}  // namespace spmvm::suite
