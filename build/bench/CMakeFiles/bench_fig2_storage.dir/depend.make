# Empty dependencies file for bench_fig2_storage.
# This may be replaced when dependencies are built.
