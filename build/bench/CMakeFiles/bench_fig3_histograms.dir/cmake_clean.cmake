file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_histograms.dir/bench_fig3_histograms.cpp.o"
  "CMakeFiles/bench_fig3_histograms.dir/bench_fig3_histograms.cpp.o.d"
  "bench_fig3_histograms"
  "bench_fig3_histograms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_histograms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
