file(REMOVE_RECURSE
  "CMakeFiles/device_pipeline.dir/device_pipeline.cpp.o"
  "CMakeFiles/device_pipeline.dir/device_pipeline.cpp.o.d"
  "device_pipeline"
  "device_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
