# Empty compiler generated dependencies file for device_pipeline.
# This may be replaced when dependencies are built.
