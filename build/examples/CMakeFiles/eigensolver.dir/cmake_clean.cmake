file(REMOVE_RECURSE
  "CMakeFiles/eigensolver.dir/eigensolver.cpp.o"
  "CMakeFiles/eigensolver.dir/eigensolver.cpp.o.d"
  "eigensolver"
  "eigensolver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eigensolver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
