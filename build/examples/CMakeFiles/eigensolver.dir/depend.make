# Empty dependencies file for eigensolver.
# This may be replaced when dependencies are built.
