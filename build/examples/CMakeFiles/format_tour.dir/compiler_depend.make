# Empty compiler generated dependencies file for format_tour.
# This may be replaced when dependencies are built.
