file(REMOVE_RECURSE
  "CMakeFiles/matrix_info.dir/matrix_info.cpp.o"
  "CMakeFiles/matrix_info.dir/matrix_info.cpp.o.d"
  "matrix_info"
  "matrix_info.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matrix_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
