
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/footprint.cpp" "src/core/CMakeFiles/spmvm_core.dir/footprint.cpp.o" "gcc" "src/core/CMakeFiles/spmvm_core.dir/footprint.cpp.o.d"
  "/root/repo/src/core/pjds.cpp" "src/core/CMakeFiles/spmvm_core.dir/pjds.cpp.o" "gcc" "src/core/CMakeFiles/spmvm_core.dir/pjds.cpp.o.d"
  "/root/repo/src/core/pjds_spmv.cpp" "src/core/CMakeFiles/spmvm_core.dir/pjds_spmv.cpp.o" "gcc" "src/core/CMakeFiles/spmvm_core.dir/pjds_spmv.cpp.o.d"
  "/root/repo/src/core/spmmv.cpp" "src/core/CMakeFiles/spmvm_core.dir/spmmv.cpp.o" "gcc" "src/core/CMakeFiles/spmvm_core.dir/spmmv.cpp.o.d"
  "/root/repo/src/core/to_csr.cpp" "src/core/CMakeFiles/spmvm_core.dir/to_csr.cpp.o" "gcc" "src/core/CMakeFiles/spmvm_core.dir/to_csr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sparse/CMakeFiles/spmvm_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/spmvm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
