file(REMOVE_RECURSE
  "CMakeFiles/spmvm_core.dir/footprint.cpp.o"
  "CMakeFiles/spmvm_core.dir/footprint.cpp.o.d"
  "CMakeFiles/spmvm_core.dir/pjds.cpp.o"
  "CMakeFiles/spmvm_core.dir/pjds.cpp.o.d"
  "CMakeFiles/spmvm_core.dir/pjds_spmv.cpp.o"
  "CMakeFiles/spmvm_core.dir/pjds_spmv.cpp.o.d"
  "CMakeFiles/spmvm_core.dir/spmmv.cpp.o"
  "CMakeFiles/spmvm_core.dir/spmmv.cpp.o.d"
  "CMakeFiles/spmvm_core.dir/to_csr.cpp.o"
  "CMakeFiles/spmvm_core.dir/to_csr.cpp.o.d"
  "libspmvm_core.a"
  "libspmvm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmvm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
