file(REMOVE_RECURSE
  "libspmvm_core.a"
)
