# Empty compiler generated dependencies file for spmvm_core.
# This may be replaced when dependencies are built.
