
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dist/cluster_model.cpp" "src/dist/CMakeFiles/spmvm_dist.dir/cluster_model.cpp.o" "gcc" "src/dist/CMakeFiles/spmvm_dist.dir/cluster_model.cpp.o.d"
  "/root/repo/src/dist/comm_stats.cpp" "src/dist/CMakeFiles/spmvm_dist.dir/comm_stats.cpp.o" "gcc" "src/dist/CMakeFiles/spmvm_dist.dir/comm_stats.cpp.o.d"
  "/root/repo/src/dist/dist_matrix.cpp" "src/dist/CMakeFiles/spmvm_dist.dir/dist_matrix.cpp.o" "gcc" "src/dist/CMakeFiles/spmvm_dist.dir/dist_matrix.cpp.o.d"
  "/root/repo/src/dist/dist_solver.cpp" "src/dist/CMakeFiles/spmvm_dist.dir/dist_solver.cpp.o" "gcc" "src/dist/CMakeFiles/spmvm_dist.dir/dist_solver.cpp.o.d"
  "/root/repo/src/dist/partition.cpp" "src/dist/CMakeFiles/spmvm_dist.dir/partition.cpp.o" "gcc" "src/dist/CMakeFiles/spmvm_dist.dir/partition.cpp.o.d"
  "/root/repo/src/dist/spmv_modes.cpp" "src/dist/CMakeFiles/spmvm_dist.dir/spmv_modes.cpp.o" "gcc" "src/dist/CMakeFiles/spmvm_dist.dir/spmv_modes.cpp.o.d"
  "/root/repo/src/dist/timeline.cpp" "src/dist/CMakeFiles/spmvm_dist.dir/timeline.cpp.o" "gcc" "src/dist/CMakeFiles/spmvm_dist.dir/timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sparse/CMakeFiles/spmvm_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/spmvm_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/spmvm_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/spmvm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/spmvm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
