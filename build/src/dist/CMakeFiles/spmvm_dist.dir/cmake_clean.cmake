file(REMOVE_RECURSE
  "CMakeFiles/spmvm_dist.dir/cluster_model.cpp.o"
  "CMakeFiles/spmvm_dist.dir/cluster_model.cpp.o.d"
  "CMakeFiles/spmvm_dist.dir/comm_stats.cpp.o"
  "CMakeFiles/spmvm_dist.dir/comm_stats.cpp.o.d"
  "CMakeFiles/spmvm_dist.dir/dist_matrix.cpp.o"
  "CMakeFiles/spmvm_dist.dir/dist_matrix.cpp.o.d"
  "CMakeFiles/spmvm_dist.dir/dist_solver.cpp.o"
  "CMakeFiles/spmvm_dist.dir/dist_solver.cpp.o.d"
  "CMakeFiles/spmvm_dist.dir/partition.cpp.o"
  "CMakeFiles/spmvm_dist.dir/partition.cpp.o.d"
  "CMakeFiles/spmvm_dist.dir/spmv_modes.cpp.o"
  "CMakeFiles/spmvm_dist.dir/spmv_modes.cpp.o.d"
  "CMakeFiles/spmvm_dist.dir/timeline.cpp.o"
  "CMakeFiles/spmvm_dist.dir/timeline.cpp.o.d"
  "libspmvm_dist.a"
  "libspmvm_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmvm_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
