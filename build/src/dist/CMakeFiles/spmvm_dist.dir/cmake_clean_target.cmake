file(REMOVE_RECURSE
  "libspmvm_dist.a"
)
