# Empty dependencies file for spmvm_dist.
# This may be replaced when dependencies are built.
