
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpusim/coalescing.cpp" "src/gpusim/CMakeFiles/spmvm_gpusim.dir/coalescing.cpp.o" "gcc" "src/gpusim/CMakeFiles/spmvm_gpusim.dir/coalescing.cpp.o.d"
  "/root/repo/src/gpusim/cpu_node.cpp" "src/gpusim/CMakeFiles/spmvm_gpusim.dir/cpu_node.cpp.o" "gcc" "src/gpusim/CMakeFiles/spmvm_gpusim.dir/cpu_node.cpp.o.d"
  "/root/repo/src/gpusim/device_runtime.cpp" "src/gpusim/CMakeFiles/spmvm_gpusim.dir/device_runtime.cpp.o" "gcc" "src/gpusim/CMakeFiles/spmvm_gpusim.dir/device_runtime.cpp.o.d"
  "/root/repo/src/gpusim/device_spec.cpp" "src/gpusim/CMakeFiles/spmvm_gpusim.dir/device_spec.cpp.o" "gcc" "src/gpusim/CMakeFiles/spmvm_gpusim.dir/device_spec.cpp.o.d"
  "/root/repo/src/gpusim/gpu_spmv.cpp" "src/gpusim/CMakeFiles/spmvm_gpusim.dir/gpu_spmv.cpp.o" "gcc" "src/gpusim/CMakeFiles/spmvm_gpusim.dir/gpu_spmv.cpp.o.d"
  "/root/repo/src/gpusim/kernel_sim.cpp" "src/gpusim/CMakeFiles/spmvm_gpusim.dir/kernel_sim.cpp.o" "gcc" "src/gpusim/CMakeFiles/spmvm_gpusim.dir/kernel_sim.cpp.o.d"
  "/root/repo/src/gpusim/l2_cache.cpp" "src/gpusim/CMakeFiles/spmvm_gpusim.dir/l2_cache.cpp.o" "gcc" "src/gpusim/CMakeFiles/spmvm_gpusim.dir/l2_cache.cpp.o.d"
  "/root/repo/src/gpusim/pcie.cpp" "src/gpusim/CMakeFiles/spmvm_gpusim.dir/pcie.cpp.o" "gcc" "src/gpusim/CMakeFiles/spmvm_gpusim.dir/pcie.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/spmvm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/spmvm_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/spmvm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
