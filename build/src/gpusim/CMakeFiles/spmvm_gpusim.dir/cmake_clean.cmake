file(REMOVE_RECURSE
  "CMakeFiles/spmvm_gpusim.dir/coalescing.cpp.o"
  "CMakeFiles/spmvm_gpusim.dir/coalescing.cpp.o.d"
  "CMakeFiles/spmvm_gpusim.dir/cpu_node.cpp.o"
  "CMakeFiles/spmvm_gpusim.dir/cpu_node.cpp.o.d"
  "CMakeFiles/spmvm_gpusim.dir/device_runtime.cpp.o"
  "CMakeFiles/spmvm_gpusim.dir/device_runtime.cpp.o.d"
  "CMakeFiles/spmvm_gpusim.dir/device_spec.cpp.o"
  "CMakeFiles/spmvm_gpusim.dir/device_spec.cpp.o.d"
  "CMakeFiles/spmvm_gpusim.dir/gpu_spmv.cpp.o"
  "CMakeFiles/spmvm_gpusim.dir/gpu_spmv.cpp.o.d"
  "CMakeFiles/spmvm_gpusim.dir/kernel_sim.cpp.o"
  "CMakeFiles/spmvm_gpusim.dir/kernel_sim.cpp.o.d"
  "CMakeFiles/spmvm_gpusim.dir/l2_cache.cpp.o"
  "CMakeFiles/spmvm_gpusim.dir/l2_cache.cpp.o.d"
  "CMakeFiles/spmvm_gpusim.dir/pcie.cpp.o"
  "CMakeFiles/spmvm_gpusim.dir/pcie.cpp.o.d"
  "libspmvm_gpusim.a"
  "libspmvm_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmvm_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
