file(REMOVE_RECURSE
  "libspmvm_gpusim.a"
)
