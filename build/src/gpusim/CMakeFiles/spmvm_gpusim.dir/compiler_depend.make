# Empty compiler generated dependencies file for spmvm_gpusim.
# This may be replaced when dependencies are built.
