# Empty dependencies file for spmvm_gpusim.
# This may be replaced when dependencies are built.
