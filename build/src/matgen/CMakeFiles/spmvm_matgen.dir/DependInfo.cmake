
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matgen/general.cpp" "src/matgen/CMakeFiles/spmvm_matgen.dir/general.cpp.o" "gcc" "src/matgen/CMakeFiles/spmvm_matgen.dir/general.cpp.o.d"
  "/root/repo/src/matgen/paper_matrices.cpp" "src/matgen/CMakeFiles/spmvm_matgen.dir/paper_matrices.cpp.o" "gcc" "src/matgen/CMakeFiles/spmvm_matgen.dir/paper_matrices.cpp.o.d"
  "/root/repo/src/matgen/suite.cpp" "src/matgen/CMakeFiles/spmvm_matgen.dir/suite.cpp.o" "gcc" "src/matgen/CMakeFiles/spmvm_matgen.dir/suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sparse/CMakeFiles/spmvm_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/spmvm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
