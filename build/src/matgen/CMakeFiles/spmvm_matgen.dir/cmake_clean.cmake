file(REMOVE_RECURSE
  "CMakeFiles/spmvm_matgen.dir/general.cpp.o"
  "CMakeFiles/spmvm_matgen.dir/general.cpp.o.d"
  "CMakeFiles/spmvm_matgen.dir/paper_matrices.cpp.o"
  "CMakeFiles/spmvm_matgen.dir/paper_matrices.cpp.o.d"
  "CMakeFiles/spmvm_matgen.dir/suite.cpp.o"
  "CMakeFiles/spmvm_matgen.dir/suite.cpp.o.d"
  "libspmvm_matgen.a"
  "libspmvm_matgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmvm_matgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
