file(REMOVE_RECURSE
  "libspmvm_matgen.a"
)
