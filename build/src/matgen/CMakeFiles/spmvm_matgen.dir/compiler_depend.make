# Empty compiler generated dependencies file for spmvm_matgen.
# This may be replaced when dependencies are built.
