file(REMOVE_RECURSE
  "CMakeFiles/spmvm_msg.dir/runtime.cpp.o"
  "CMakeFiles/spmvm_msg.dir/runtime.cpp.o.d"
  "libspmvm_msg.a"
  "libspmvm_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmvm_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
