file(REMOVE_RECURSE
  "libspmvm_msg.a"
)
