# Empty compiler generated dependencies file for spmvm_msg.
# This may be replaced when dependencies are built.
