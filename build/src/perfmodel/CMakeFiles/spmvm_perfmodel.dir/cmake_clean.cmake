file(REMOVE_RECURSE
  "CMakeFiles/spmvm_perfmodel.dir/balance.cpp.o"
  "CMakeFiles/spmvm_perfmodel.dir/balance.cpp.o.d"
  "CMakeFiles/spmvm_perfmodel.dir/model_eval.cpp.o"
  "CMakeFiles/spmvm_perfmodel.dir/model_eval.cpp.o.d"
  "CMakeFiles/spmvm_perfmodel.dir/pcie_impact.cpp.o"
  "CMakeFiles/spmvm_perfmodel.dir/pcie_impact.cpp.o.d"
  "libspmvm_perfmodel.a"
  "libspmvm_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmvm_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
