file(REMOVE_RECURSE
  "libspmvm_perfmodel.a"
)
