# Empty dependencies file for spmvm_perfmodel.
# This may be replaced when dependencies are built.
