
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/bicgstab.cpp" "src/solver/CMakeFiles/spmvm_solver.dir/bicgstab.cpp.o" "gcc" "src/solver/CMakeFiles/spmvm_solver.dir/bicgstab.cpp.o.d"
  "/root/repo/src/solver/cg.cpp" "src/solver/CMakeFiles/spmvm_solver.dir/cg.cpp.o" "gcc" "src/solver/CMakeFiles/spmvm_solver.dir/cg.cpp.o.d"
  "/root/repo/src/solver/lanczos.cpp" "src/solver/CMakeFiles/spmvm_solver.dir/lanczos.cpp.o" "gcc" "src/solver/CMakeFiles/spmvm_solver.dir/lanczos.cpp.o.d"
  "/root/repo/src/solver/pcg.cpp" "src/solver/CMakeFiles/spmvm_solver.dir/pcg.cpp.o" "gcc" "src/solver/CMakeFiles/spmvm_solver.dir/pcg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/spmvm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/spmvm_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/spmvm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
