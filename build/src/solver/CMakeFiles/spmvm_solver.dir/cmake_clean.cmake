file(REMOVE_RECURSE
  "CMakeFiles/spmvm_solver.dir/bicgstab.cpp.o"
  "CMakeFiles/spmvm_solver.dir/bicgstab.cpp.o.d"
  "CMakeFiles/spmvm_solver.dir/cg.cpp.o"
  "CMakeFiles/spmvm_solver.dir/cg.cpp.o.d"
  "CMakeFiles/spmvm_solver.dir/lanczos.cpp.o"
  "CMakeFiles/spmvm_solver.dir/lanczos.cpp.o.d"
  "CMakeFiles/spmvm_solver.dir/pcg.cpp.o"
  "CMakeFiles/spmvm_solver.dir/pcg.cpp.o.d"
  "libspmvm_solver.a"
  "libspmvm_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmvm_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
