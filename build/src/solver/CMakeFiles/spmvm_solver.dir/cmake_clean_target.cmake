file(REMOVE_RECURSE
  "libspmvm_solver.a"
)
