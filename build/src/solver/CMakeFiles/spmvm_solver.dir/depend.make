# Empty dependencies file for spmvm_solver.
# This may be replaced when dependencies are built.
