
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/bellpack.cpp" "src/sparse/CMakeFiles/spmvm_sparse.dir/bellpack.cpp.o" "gcc" "src/sparse/CMakeFiles/spmvm_sparse.dir/bellpack.cpp.o.d"
  "/root/repo/src/sparse/convert.cpp" "src/sparse/CMakeFiles/spmvm_sparse.dir/convert.cpp.o" "gcc" "src/sparse/CMakeFiles/spmvm_sparse.dir/convert.cpp.o.d"
  "/root/repo/src/sparse/coo.cpp" "src/sparse/CMakeFiles/spmvm_sparse.dir/coo.cpp.o" "gcc" "src/sparse/CMakeFiles/spmvm_sparse.dir/coo.cpp.o.d"
  "/root/repo/src/sparse/csr.cpp" "src/sparse/CMakeFiles/spmvm_sparse.dir/csr.cpp.o" "gcc" "src/sparse/CMakeFiles/spmvm_sparse.dir/csr.cpp.o.d"
  "/root/repo/src/sparse/ellpack.cpp" "src/sparse/CMakeFiles/spmvm_sparse.dir/ellpack.cpp.o" "gcc" "src/sparse/CMakeFiles/spmvm_sparse.dir/ellpack.cpp.o.d"
  "/root/repo/src/sparse/jds.cpp" "src/sparse/CMakeFiles/spmvm_sparse.dir/jds.cpp.o" "gcc" "src/sparse/CMakeFiles/spmvm_sparse.dir/jds.cpp.o.d"
  "/root/repo/src/sparse/matrix_market.cpp" "src/sparse/CMakeFiles/spmvm_sparse.dir/matrix_market.cpp.o" "gcc" "src/sparse/CMakeFiles/spmvm_sparse.dir/matrix_market.cpp.o.d"
  "/root/repo/src/sparse/matrix_stats.cpp" "src/sparse/CMakeFiles/spmvm_sparse.dir/matrix_stats.cpp.o" "gcc" "src/sparse/CMakeFiles/spmvm_sparse.dir/matrix_stats.cpp.o.d"
  "/root/repo/src/sparse/permutation.cpp" "src/sparse/CMakeFiles/spmvm_sparse.dir/permutation.cpp.o" "gcc" "src/sparse/CMakeFiles/spmvm_sparse.dir/permutation.cpp.o.d"
  "/root/repo/src/sparse/rcm.cpp" "src/sparse/CMakeFiles/spmvm_sparse.dir/rcm.cpp.o" "gcc" "src/sparse/CMakeFiles/spmvm_sparse.dir/rcm.cpp.o.d"
  "/root/repo/src/sparse/sliced_ell.cpp" "src/sparse/CMakeFiles/spmvm_sparse.dir/sliced_ell.cpp.o" "gcc" "src/sparse/CMakeFiles/spmvm_sparse.dir/sliced_ell.cpp.o.d"
  "/root/repo/src/sparse/spmv_host.cpp" "src/sparse/CMakeFiles/spmvm_sparse.dir/spmv_host.cpp.o" "gcc" "src/sparse/CMakeFiles/spmvm_sparse.dir/spmv_host.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/spmvm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
