file(REMOVE_RECURSE
  "CMakeFiles/spmvm_sparse.dir/bellpack.cpp.o"
  "CMakeFiles/spmvm_sparse.dir/bellpack.cpp.o.d"
  "CMakeFiles/spmvm_sparse.dir/convert.cpp.o"
  "CMakeFiles/spmvm_sparse.dir/convert.cpp.o.d"
  "CMakeFiles/spmvm_sparse.dir/coo.cpp.o"
  "CMakeFiles/spmvm_sparse.dir/coo.cpp.o.d"
  "CMakeFiles/spmvm_sparse.dir/csr.cpp.o"
  "CMakeFiles/spmvm_sparse.dir/csr.cpp.o.d"
  "CMakeFiles/spmvm_sparse.dir/ellpack.cpp.o"
  "CMakeFiles/spmvm_sparse.dir/ellpack.cpp.o.d"
  "CMakeFiles/spmvm_sparse.dir/jds.cpp.o"
  "CMakeFiles/spmvm_sparse.dir/jds.cpp.o.d"
  "CMakeFiles/spmvm_sparse.dir/matrix_market.cpp.o"
  "CMakeFiles/spmvm_sparse.dir/matrix_market.cpp.o.d"
  "CMakeFiles/spmvm_sparse.dir/matrix_stats.cpp.o"
  "CMakeFiles/spmvm_sparse.dir/matrix_stats.cpp.o.d"
  "CMakeFiles/spmvm_sparse.dir/permutation.cpp.o"
  "CMakeFiles/spmvm_sparse.dir/permutation.cpp.o.d"
  "CMakeFiles/spmvm_sparse.dir/rcm.cpp.o"
  "CMakeFiles/spmvm_sparse.dir/rcm.cpp.o.d"
  "CMakeFiles/spmvm_sparse.dir/sliced_ell.cpp.o"
  "CMakeFiles/spmvm_sparse.dir/sliced_ell.cpp.o.d"
  "CMakeFiles/spmvm_sparse.dir/spmv_host.cpp.o"
  "CMakeFiles/spmvm_sparse.dir/spmv_host.cpp.o.d"
  "libspmvm_sparse.a"
  "libspmvm_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmvm_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
