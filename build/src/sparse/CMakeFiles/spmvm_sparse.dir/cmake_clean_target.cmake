file(REMOVE_RECURSE
  "libspmvm_sparse.a"
)
