# Empty dependencies file for spmvm_sparse.
# This may be replaced when dependencies are built.
