file(REMOVE_RECURSE
  "CMakeFiles/spmvm_util.dir/ascii.cpp.o"
  "CMakeFiles/spmvm_util.dir/ascii.cpp.o.d"
  "CMakeFiles/spmvm_util.dir/histogram.cpp.o"
  "CMakeFiles/spmvm_util.dir/histogram.cpp.o.d"
  "CMakeFiles/spmvm_util.dir/rng.cpp.o"
  "CMakeFiles/spmvm_util.dir/rng.cpp.o.d"
  "CMakeFiles/spmvm_util.dir/stats.cpp.o"
  "CMakeFiles/spmvm_util.dir/stats.cpp.o.d"
  "CMakeFiles/spmvm_util.dir/timer.cpp.o"
  "CMakeFiles/spmvm_util.dir/timer.cpp.o.d"
  "libspmvm_util.a"
  "libspmvm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmvm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
