file(REMOVE_RECURSE
  "libspmvm_util.a"
)
