# Empty dependencies file for spmvm_util.
# This may be replaced when dependencies are built.
