file(REMOVE_RECURSE
  "CMakeFiles/test_ascii.dir/test_ascii.cpp.o"
  "CMakeFiles/test_ascii.dir/test_ascii.cpp.o.d"
  "test_ascii"
  "test_ascii.pdb"
  "test_ascii[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ascii.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
