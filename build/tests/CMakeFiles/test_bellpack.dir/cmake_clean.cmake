file(REMOVE_RECURSE
  "CMakeFiles/test_bellpack.dir/test_bellpack.cpp.o"
  "CMakeFiles/test_bellpack.dir/test_bellpack.cpp.o.d"
  "test_bellpack"
  "test_bellpack.pdb"
  "test_bellpack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bellpack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
