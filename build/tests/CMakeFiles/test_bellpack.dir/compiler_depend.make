# Empty compiler generated dependencies file for test_bellpack.
# This may be replaced when dependencies are built.
