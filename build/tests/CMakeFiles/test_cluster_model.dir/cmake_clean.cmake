file(REMOVE_RECURSE
  "CMakeFiles/test_cluster_model.dir/test_cluster_model.cpp.o"
  "CMakeFiles/test_cluster_model.dir/test_cluster_model.cpp.o.d"
  "test_cluster_model"
  "test_cluster_model.pdb"
  "test_cluster_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
