file(REMOVE_RECURSE
  "CMakeFiles/test_comm_stats.dir/test_comm_stats.cpp.o"
  "CMakeFiles/test_comm_stats.dir/test_comm_stats.cpp.o.d"
  "test_comm_stats"
  "test_comm_stats.pdb"
  "test_comm_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comm_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
