# Empty dependencies file for test_comm_stats.
# This may be replaced when dependencies are built.
