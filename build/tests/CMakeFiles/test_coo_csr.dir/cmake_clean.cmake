file(REMOVE_RECURSE
  "CMakeFiles/test_coo_csr.dir/test_coo_csr.cpp.o"
  "CMakeFiles/test_coo_csr.dir/test_coo_csr.cpp.o.d"
  "test_coo_csr"
  "test_coo_csr.pdb"
  "test_coo_csr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coo_csr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
