# Empty compiler generated dependencies file for test_coo_csr.
# This may be replaced when dependencies are built.
