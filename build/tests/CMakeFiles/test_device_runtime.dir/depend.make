# Empty dependencies file for test_device_runtime.
# This may be replaced when dependencies are built.
