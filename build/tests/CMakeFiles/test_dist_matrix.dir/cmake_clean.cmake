file(REMOVE_RECURSE
  "CMakeFiles/test_dist_matrix.dir/test_dist_matrix.cpp.o"
  "CMakeFiles/test_dist_matrix.dir/test_dist_matrix.cpp.o.d"
  "test_dist_matrix"
  "test_dist_matrix.pdb"
  "test_dist_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
