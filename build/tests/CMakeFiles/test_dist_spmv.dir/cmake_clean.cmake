file(REMOVE_RECURSE
  "CMakeFiles/test_dist_spmv.dir/test_dist_spmv.cpp.o"
  "CMakeFiles/test_dist_spmv.dir/test_dist_spmv.cpp.o.d"
  "test_dist_spmv"
  "test_dist_spmv.pdb"
  "test_dist_spmv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_spmv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
