# Empty dependencies file for test_dist_spmv.
# This may be replaced when dependencies are built.
