file(REMOVE_RECURSE
  "CMakeFiles/test_ellpack.dir/test_ellpack.cpp.o"
  "CMakeFiles/test_ellpack.dir/test_ellpack.cpp.o.d"
  "test_ellpack"
  "test_ellpack.pdb"
  "test_ellpack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ellpack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
