# Empty dependencies file for test_ellpack.
# This may be replaced when dependencies are built.
