file(REMOVE_RECURSE
  "CMakeFiles/test_ellr_t.dir/test_ellr_t.cpp.o"
  "CMakeFiles/test_ellr_t.dir/test_ellr_t.cpp.o.d"
  "test_ellr_t"
  "test_ellr_t.pdb"
  "test_ellr_t[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ellr_t.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
