# Empty compiler generated dependencies file for test_ellr_t.
# This may be replaced when dependencies are built.
