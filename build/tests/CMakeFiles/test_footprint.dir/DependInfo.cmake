
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_footprint.cpp" "tests/CMakeFiles/test_footprint.dir/test_footprint.cpp.o" "gcc" "tests/CMakeFiles/test_footprint.dir/test_footprint.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/spmvm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/spmvm_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/spmvm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
