file(REMOVE_RECURSE
  "CMakeFiles/test_gpusim_properties.dir/test_gpusim_properties.cpp.o"
  "CMakeFiles/test_gpusim_properties.dir/test_gpusim_properties.cpp.o.d"
  "test_gpusim_properties"
  "test_gpusim_properties.pdb"
  "test_gpusim_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpusim_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
