# Empty dependencies file for test_gpusim_properties.
# This may be replaced when dependencies are built.
