file(REMOVE_RECURSE
  "CMakeFiles/test_jds.dir/test_jds.cpp.o"
  "CMakeFiles/test_jds.dir/test_jds.cpp.o.d"
  "test_jds"
  "test_jds.pdb"
  "test_jds[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
