# Empty dependencies file for test_jds.
# This may be replaced when dependencies are built.
