file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_sim_ext.dir/test_kernel_sim_ext.cpp.o"
  "CMakeFiles/test_kernel_sim_ext.dir/test_kernel_sim_ext.cpp.o.d"
  "test_kernel_sim_ext"
  "test_kernel_sim_ext.pdb"
  "test_kernel_sim_ext[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_sim_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
