# Empty dependencies file for test_kernel_sim_ext.
# This may be replaced when dependencies are built.
