file(REMOVE_RECURSE
  "CMakeFiles/test_msg_runtime.dir/test_msg_runtime.cpp.o"
  "CMakeFiles/test_msg_runtime.dir/test_msg_runtime.cpp.o.d"
  "test_msg_runtime"
  "test_msg_runtime.pdb"
  "test_msg_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_msg_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
