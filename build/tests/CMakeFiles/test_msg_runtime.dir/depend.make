# Empty dependencies file for test_msg_runtime.
# This may be replaced when dependencies are built.
