file(REMOVE_RECURSE
  "CMakeFiles/test_msg_stress.dir/test_msg_stress.cpp.o"
  "CMakeFiles/test_msg_stress.dir/test_msg_stress.cpp.o.d"
  "test_msg_stress"
  "test_msg_stress.pdb"
  "test_msg_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_msg_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
