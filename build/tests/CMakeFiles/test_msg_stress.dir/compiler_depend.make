# Empty compiler generated dependencies file for test_msg_stress.
# This may be replaced when dependencies are built.
