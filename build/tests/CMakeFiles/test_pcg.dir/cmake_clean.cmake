file(REMOVE_RECURSE
  "CMakeFiles/test_pcg.dir/test_pcg.cpp.o"
  "CMakeFiles/test_pcg.dir/test_pcg.cpp.o.d"
  "test_pcg"
  "test_pcg.pdb"
  "test_pcg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pcg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
