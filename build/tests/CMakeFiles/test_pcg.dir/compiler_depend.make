# Empty compiler generated dependencies file for test_pcg.
# This may be replaced when dependencies are built.
