file(REMOVE_RECURSE
  "CMakeFiles/test_pcie_cpu.dir/test_pcie_cpu.cpp.o"
  "CMakeFiles/test_pcie_cpu.dir/test_pcie_cpu.cpp.o.d"
  "test_pcie_cpu"
  "test_pcie_cpu.pdb"
  "test_pcie_cpu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pcie_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
