# Empty dependencies file for test_pcie_cpu.
# This may be replaced when dependencies are built.
