file(REMOVE_RECURSE
  "CMakeFiles/test_pjds.dir/test_pjds.cpp.o"
  "CMakeFiles/test_pjds.dir/test_pjds.cpp.o.d"
  "test_pjds"
  "test_pjds.pdb"
  "test_pjds[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pjds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
