# Empty dependencies file for test_pjds.
# This may be replaced when dependencies are built.
