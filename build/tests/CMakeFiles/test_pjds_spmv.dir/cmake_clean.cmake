file(REMOVE_RECURSE
  "CMakeFiles/test_pjds_spmv.dir/test_pjds_spmv.cpp.o"
  "CMakeFiles/test_pjds_spmv.dir/test_pjds_spmv.cpp.o.d"
  "test_pjds_spmv"
  "test_pjds_spmv.pdb"
  "test_pjds_spmv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pjds_spmv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
