# Empty dependencies file for test_pjds_spmv.
# This may be replaced when dependencies are built.
