file(REMOVE_RECURSE
  "CMakeFiles/test_sliced_ell.dir/test_sliced_ell.cpp.o"
  "CMakeFiles/test_sliced_ell.dir/test_sliced_ell.cpp.o.d"
  "test_sliced_ell"
  "test_sliced_ell.pdb"
  "test_sliced_ell[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sliced_ell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
