# Empty compiler generated dependencies file for test_sliced_ell.
# This may be replaced when dependencies are built.
