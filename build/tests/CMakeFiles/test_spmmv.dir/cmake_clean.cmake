file(REMOVE_RECURSE
  "CMakeFiles/test_spmmv.dir/test_spmmv.cpp.o"
  "CMakeFiles/test_spmmv.dir/test_spmmv.cpp.o.d"
  "test_spmmv"
  "test_spmmv.pdb"
  "test_spmmv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spmmv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
