# Empty compiler generated dependencies file for test_spmmv.
# This may be replaced when dependencies are built.
