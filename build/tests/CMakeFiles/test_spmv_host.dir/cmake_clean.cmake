file(REMOVE_RECURSE
  "CMakeFiles/test_spmv_host.dir/test_spmv_host.cpp.o"
  "CMakeFiles/test_spmv_host.dir/test_spmv_host.cpp.o.d"
  "test_spmv_host"
  "test_spmv_host.pdb"
  "test_spmv_host[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spmv_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
