# Empty dependencies file for test_spmv_host.
# This may be replaced when dependencies are built.
