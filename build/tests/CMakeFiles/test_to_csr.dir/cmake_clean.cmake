file(REMOVE_RECURSE
  "CMakeFiles/test_to_csr.dir/test_to_csr.cpp.o"
  "CMakeFiles/test_to_csr.dir/test_to_csr.cpp.o.d"
  "test_to_csr"
  "test_to_csr.pdb"
  "test_to_csr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_to_csr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
