# Empty compiler generated dependencies file for test_to_csr.
# This may be replaced when dependencies are built.
