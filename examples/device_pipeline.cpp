// Device pipeline: a complete GPU-resident solver workflow on the
// simulated card. The matrix is uploaded once in pJDS, CG runs with the
// spMVM dispatched through the device runtime (correct numerics, modeled
// timing), and the example reports where the simulated device time went —
// including the difference between shuttling vectors over PCIe every
// iteration and keeping them resident (Sec. III's discussion).
#include <cstdio>
#include <memory>

#include "gpusim/device_runtime.hpp"
#include "matgen/generators.hpp"
#include "solver/cg.hpp"
#include "sparse/matrix_stats.hpp"

using namespace spmvm;

namespace {

solver::CgResult run_cg_on_device(std::shared_ptr<gpusim::DeviceRuntime> dev,
                                  const Csr<double>& a, bool resident) {
  auto op_dev =
      std::make_shared<gpusim::DeviceSpmv<double>>(dev, a,
                                                   gpusim::FormatKind::pjds);
  const solver::Operator<double> op(
      a.n_rows, [op_dev, resident](std::span<const double> x,
                                   std::span<double> y) {
        op_dev->apply(x, y, resident);
      });
  std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  std::vector<double> x(b.size(), 0.0);
  return solver::cg(op, std::span<const double>(b), std::span<double>(x),
                    1e-8, 2000);
}

}  // namespace

int main() {
  const auto a = make_banded<double>(120000, 8);
  std::printf("%s\n\n",
              format_stats("banded SPD", compute_stats(a)).c_str());

  for (const bool resident : {false, true}) {
    auto dev = std::make_shared<gpusim::DeviceRuntime>(
        gpusim::DeviceSpec::tesla_c2070());
    const auto r = run_cg_on_device(dev, a, resident);
    std::printf("CG on simulated %s, vectors %s:\n",
                dev->spec().name.c_str(),
                resident ? "device-resident" : "shuttled over PCIe");
    std::printf("  converged: %s after %d iterations (residual %.2e)\n",
                r.converged ? "yes" : "NO", r.iterations, r.residual_norm);
    std::printf("  simulated device time: %.2f ms  (kernels %.2f ms, "
                "transfers %.2f ms)\n\n",
                dev->elapsed_seconds() * 1e3, dev->kernel_seconds() * 1e3,
                dev->transfer_seconds() * 1e3);
  }
  std::printf("Keeping the vectors on the device removes the per-iteration "
              "PCIe cost —\nthe paper's motivation for running the whole "
              "iterative scheme on the GPGPU.\n");
  return 0;
}
