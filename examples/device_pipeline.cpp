// Device pipeline: a complete GPU-resident solver workflow on the
// simulated card, driven entirely through the execution engine. The
// matrix is bound to the gpusim backend in pJDS (one image upload), CG
// iterates with every product launched by the backend (correct
// numerics, modeled timing), and the example reports where the
// simulated device time went — including the difference between
// shuttling vectors over PCIe every iteration and keeping them resident
// (Sec. III's discussion, LaunchOptions::vectors_resident).
#include <cstdio>
#include <memory>
#include <vector>

#include "exec/engine.hpp"
#include "matgen/generators.hpp"
#include "solver/cg.hpp"
#include "sparse/matrix_stats.hpp"

using namespace spmvm;

int main() {
  const auto a = make_banded<double>(120000, 8);
  std::printf("%s\n\n",
              format_stats("banded SPD", compute_stats(a)).c_str());

  for (const bool resident : {false, true}) {
    // A fresh engine per configuration, so the simulated device clocks
    // count exactly one solve.
    exec::Engine<double> eng;
    exec::LaunchOptions launch;
    launch.vectors_resident = resident;
    std::shared_ptr<exec::BoundSpmv<double>> bound =
        eng.at("gpusim").bind(a, "pjds", {}, launch);
    const solver::Operator<double> op = solver::make_operator(bound);

    std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
    std::vector<double> x(b.size(), 0.0);
    const solver::CgResult r = solver::cg(
        op, std::span<const double>(b), std::span<double>(x), 1e-8, 2000);

    const auto& dev = *eng.transfers()->device();
    std::printf("CG on simulated %s (gpusim backend), vectors %s:\n",
                dev.spec().name.c_str(),
                resident ? "device-resident" : "shuttled over PCIe");
    std::printf("  converged: %s after %d iterations (residual %.2e)\n",
                r.converged ? "yes" : "NO", r.iterations, r.residual_norm);
    std::printf("  simulated device time: %.2f ms  (kernels %.2f ms, "
                "transfers %.2f ms over %llu PCIe trips)\n\n",
                dev.elapsed_seconds() * 1e3, dev.kernel_seconds() * 1e3,
                dev.transfer_seconds() * 1e3,
                static_cast<unsigned long long>(eng.transfers()->transfers()));
  }
  std::printf("Keeping the vectors on the device removes the per-iteration "
              "PCIe cost —\nthe paper's motivation for running the whole "
              "iterative scheme on the GPGPU.\n");
  return 0;
}
