// Eigensolver example: the paper's motivating workload. A Holstein-
// Hubbard-like (HMEp) matrix is symmetrized, converted to pJDS, and its
// largest eigenvalue computed with Lanczos — iterating entirely in the
// permuted basis, with permutations only before and after the solve.
//
//   ./examples/eigensolver [scale]   (default scale 256)
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "formats/registry.hpp"
#include "gpusim/gpu_spmv.hpp"
#include "matgen/generators.hpp"
#include "solver/lanczos.hpp"
#include "sparse/matrix_stats.hpp"
#include "util/timer.hpp"

using namespace spmvm;

namespace {
Csr<double> symmetrized_hmep(double scale) {
  GenConfig cfg;
  cfg.scale = scale;
  const auto h = make_hmep<double>(cfg);
  Coo<double> coo(h.n_rows, h.n_cols);
  for (index_t i = 0; i < h.n_rows; ++i)
    for (offset_t k = h.row_ptr[static_cast<std::size_t>(i)];
         k < h.row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      const index_t c = h.col_idx[static_cast<std::size_t>(k)];
      if (c >= i) coo.add_symmetric(i, c, h.val[static_cast<std::size_t>(k)]);
    }
  return Csr<double>::from_coo(std::move(coo));
}
}  // namespace

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 256.0;
  std::printf("Building symmetrized HMEp-like matrix (scale %.0f) ...\n",
              scale);
  const auto a = symmetrized_hmep(scale);
  std::printf("%s\n\n", format_stats("HMEp(sym)", compute_stats(a)).c_str());

  // Convert once to pJDS (symmetric permutation) through the registry.
  formats::PlanOptions opt;
  opt.permute_columns = PermuteColumns::yes;
  const auto& reg = formats::registry<double>();
  const std::shared_ptr<const formats::FormatPlan<double>> pjds =
      reg.build("pjds", a, opt);
  const auto ell = reg.build("ellpack", a, opt);
  const Footprint fp = pjds->footprint();
  std::printf("pJDS: %.1f%% data reduction vs ELLPACK, %.3f%% fill\n\n",
              100.0 * (1.0 - static_cast<double>(fp.stored_entries) /
                                 static_cast<double>(
                                     ell->footprint().stored_entries)),
              100.0 * (1.0 - static_cast<double>(fp.true_nnz) /
                                 static_cast<double>(fp.stored_entries)));

  // Lanczos in the permuted basis.
  const auto op = solver::make_operator<double>(pjds);
  Timer timer;
  const auto r = solver::lanczos_max_eigenvalue(op, 300, 1e-10);
  const double elapsed = timer.seconds();
  std::printf("Lanczos: lambda_max = %.8f after %d iterations (%s)\n",
              r.eigenvalue, r.iterations,
              r.converged ? "converged" : "NOT converged");
  std::printf("host time: %.3f s (%.1f spMVM/s)\n\n", elapsed,
              r.iterations / elapsed);

  // What the same iteration would sustain on a simulated Fermi card.
  const auto dev = gpusim::DeviceSpec::tesla_c2070();
  const auto sim = gpusim::simulate_format(dev, a, gpusim::FormatKind::pjds);
  std::printf("simulated %s pJDS kernel: %.1f GF/s (DP, ECC on)\n",
              dev.name.c_str(), sim.gflops);
  std::printf("=> one Lanczos iteration ~ %.2f ms on the device\n",
              sim.seconds * 1e3);
  return 0;
}
