// Format tour: walks through the pJDS derivation of Fig. 1 on a small
// matrix — compress (ELLPACK view), sort, block-pad — and compares the
// storage of every format in the registry (Fig. 2's storage sizes).
//
//   ./examples/format_tour             the Fig. 1 walkthrough + table
//   ./examples/format_tour --markdown  README's format table (generated
//                                      from FormatRegistry::list())
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>

#include "formats/plans.hpp"
#include "formats/registry.hpp"
#include "util/ascii.hpp"
#include "util/rng.hpp"

using namespace spmvm;

namespace {

Csr<double> toy_matrix() {
  // 8 rows with lengths 1..5, as in the Fig. 1 illustration.
  const index_t lens[] = {2, 5, 1, 3, 4, 1, 3, 2};
  Rng rng(7);
  Coo<double> coo(8, 8);
  for (index_t i = 0; i < 8; ++i) {
    // Distinct ascending columns starting at a random offset.
    index_t c = static_cast<index_t>(rng.next_below(3));
    for (index_t j = 0; j < lens[i]; ++j) {
      coo.add(i, c, 1.0 + i);
      c += 1 + static_cast<index_t>(rng.next_below(2));
      if (c >= 8) break;
    }
  }
  return Csr<double>::from_coo(std::move(coo));
}

void print_grid(const char* title, index_t rows, index_t width,
                const std::function<char(index_t, index_t)>& cell) {
  std::printf("%s\n", title);
  for (index_t i = 0; i < rows; ++i) {
    std::printf("  row %2d |", i);
    for (index_t j = 0; j < width; ++j) std::printf(" %c", cell(i, j));
    std::printf(" |\n");
  }
  std::printf("\n");
}

double fill_pct(const Footprint& f) {
  return f.stored_entries == 0
             ? 0.0
             : 100.0 * static_cast<double>(f.stored_entries - f.true_nnz) /
                   static_cast<double>(f.stored_entries);
}

/// README's format table, generated from the registry (small blocks so
/// the 8x8 toy matrix shows distinct padding overheads).
void print_markdown_table() {
  const auto a = toy_matrix();
  formats::PlanOptions opt;
  opt.chunk = 4;
  std::printf(
      "| format | description | sorts rows | native axpby | host kernel "
      "| sim kernel | fill %% (8x8 toy) |\n");
  std::printf("|---|---|---|---|---|---|---|\n");
  for (const formats::FormatInfo& info :
       formats::registry<double>().list()) {
    std::string fill = "-";  // `auto` delegates to whichever format wins
    if (std::strcmp(info.name, "auto") != 0) {
      const auto plan = formats::registry<double>().build(info.name, a, opt);
      fill = fmt(fill_pct(plan->footprint()), 1);
    }
    std::printf("| `%s` | %s | %s | %s | yes | %s | %s |\n", info.name,
                info.description, info.sorts_rows ? "yes" : "no",
                info.native_axpby ? "yes" : "no",
                info.has_sim_kernel ? "yes" : "no", fill.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--markdown") == 0) {
    print_markdown_table();
    return 0;
  }
  const auto a = toy_matrix();
  const auto& reg = formats::registry<double>();
  formats::PlanOptions opt;
  opt.chunk = 4;  // br = C = 4: visible blocks on an 8-row matrix

  std::printf("pJDS derivation (Fig. 1 of the paper), br = 4\n");
  std::printf("=============================================\n\n");

  // Step 0: the sparse matrix.
  print_grid("original matrix (x = non-zero):", a.n_rows, a.n_cols,
             [&](index_t i, index_t j) {
               return a.dense_row(i)[static_cast<std::size_t>(j)] != 0.0
                          ? 'x'
                          : '.';
             });

  // Step 1: compress left (the ELLPACK rectangle; o = zero fill). The
  // raw arrays come from the plan's typed accessor.
  const auto ell_plan = reg.build("ellpack", a, opt);
  const Ellpack<double>& ell =
      dynamic_cast<const formats::EllpackPlan<double>&>(*ell_plan).format();
  print_grid("ELLPACK view (compressed left; o = padding):", a.n_rows,
             ell.width, [&](index_t i, index_t j) {
               return j < ell.row_len[static_cast<std::size_t>(i)] ? 'x' : 'o';
             });

  // Step 2+3: sort by row length, pad blocks of br = 4.
  const auto pjds_plan = reg.build("pjds", a, opt);
  const Pjds<double>& p =
      dynamic_cast<const formats::PjdsPlan<double>&>(*pjds_plan).format();
  print_grid("pJDS (sorted + block-padded; o = block fill):", p.padded_rows,
             p.width, [&](index_t i, index_t j) {
               if (j < p.row_len[static_cast<std::size_t>(i)]) return 'x';
               return j < p.padded_row_len(i) ? 'o' : ' ';
             });

  std::printf("row permutation (new -> old): ");
  for (index_t r = 0; r < p.n_rows; ++r)
    std::printf("%d ", p.perm.old_of(r));
  std::printf("\ncol_start[]: ");
  for (index_t j = 0; j <= p.width; ++j)
    std::printf("%lld ", static_cast<long long>(
                             p.col_start[static_cast<std::size_t>(j)]));
  std::printf("\n\n");

  // Fig. 2: storage size of each registered format (entries incl. fill).
  AsciiTable t({"format", "stored entries", "fill %", "device bytes (DP)"});
  for (const formats::FormatInfo& info : reg.list()) {
    if (std::string(info.name) == "auto") continue;  // delegates to a winner
    const Footprint f = reg.build(info.name, a, opt)->footprint();
    t.add_row({info.name, fmt_count(f.stored_entries),
               fmt(fill_pct(f), 1),
               fmt_count(static_cast<long long>(f.total_bytes(8)))});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("nnz = %lld; ELLPACK pads every row to the global maximum,\n"
              "pJDS only to the block-local maximum after sorting.\n",
              static_cast<long long>(a.nnz()));
  return 0;
}
