// matrix_info: analysis utility. For a Matrix Market file (or a named
// paper matrix) print structural statistics, the Fig. 3-style histogram,
// per-format device footprints, simulated Fermi throughput, and the
// Eq. 3/4 PCIe verdict — everything the paper's methodology would tell
// you about *your* matrix.
//
//   ./examples/matrix_info matrix.mtx
//   ./examples/matrix_info DLR1 [scale]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sparse/footprint.hpp"
#include "gpusim/cpu_node.hpp"
#include "gpusim/gpu_spmv.hpp"
#include "matgen/suite.hpp"
#include "perfmodel/balance.hpp"
#include "perfmodel/pcie_impact.hpp"
#include "sparse/matrix_market.hpp"
#include "sparse/matrix_stats.hpp"
#include "util/ascii.hpp"

using namespace spmvm;

int main(int argc, char** argv) {
  Csr<double> a;
  std::string name = "sAMG";
  if (argc > 1 && std::string(argv[1]).find(".mtx") != std::string::npos) {
    name = argv[1];
    a = read_matrix_market_file<double>(name);
  } else {
    name = argc > 1 ? argv[1] : "sAMG";
    const double scale = argc > 2 ? std::atof(argv[2]) : 64.0;
    a = make_named(name, scale).matrix;
  }

  const auto s = compute_stats(a);
  std::printf("%s\n\n", format_stats(name, s).c_str());

  // Row-length histogram (Fig. 3 style).
  std::vector<double> x, share;
  for (index_t v = 0; v <= s.max_row_len; ++v) {
    x.push_back(v);
    share.push_back(s.row_len_histogram.relative_share(v));
  }
  std::printf("%s\n", ascii_chart("row-length distribution (log share)", x,
                                  {share}, {"share"}, true, 10, 60)
                          .c_str());

  // Footprints per format (DP).
  AsciiTable ft({"format", "stored entries", "fill %", "device MB (DP)"});
  const auto add = [&](const char* fname, const Footprint& f) {
    const double fill =
        f.stored_entries == 0
            ? 0.0
            : 100.0 * static_cast<double>(f.stored_entries - f.true_nnz) /
                  static_cast<double>(f.stored_entries);
    ft.add_row({fname, fmt_count(f.stored_entries), fmt(fill, 1),
                fmt(static_cast<double>(f.total_bytes(8)) / 1e6, 1)});
  };
  add("CRS", footprint(a));
  add("ELLPACK-R", footprint(Ellpack<double>::from_csr(a, 32), true));
  add("JDS", footprint(Jds<double>::from_csr(a)));
  add("sliced-ELL", footprint(SlicedEll<double>::from_csr(a, 32)));
  add("pJDS", footprint(Pjds<double>::from_csr(a)));
  std::printf("%s\n", ft.render().c_str());

  // Simulated device throughput (DP, ECC on).
  const auto dev = gpusim::DeviceSpec::tesla_c2070();
  AsciiTable pt({"format", "GF/s (sim)", "alpha", "bytes/flop"});
  for (const auto kind :
       {gpusim::FormatKind::csr_vector, gpusim::FormatKind::ellpack_r,
        gpusim::FormatKind::sliced_ell, gpusim::FormatKind::pjds}) {
    const auto r = gpusim::simulate_format(dev, a, kind);
    pt.add_row({gpusim::to_string(kind), fmt(r.gflops, 1),
                fmt(r.stats.measured_alpha(8), 2), fmt(r.code_balance, 2)});
  }
  std::printf("%s\n", pt.render().c_str());

  // Is this matrix a good GPGPU candidate? (Eqs. 3/4)
  const double ratio = dev.bw_gbs_ecc_on / dev.pcie_gbs;
  const double hi50 =
      perfmodel::nnzr_upper_for_50pct_penalty(ratio, 0.5);
  const double lo10 =
      perfmodel::nnzr_lower_for_10pct_penalty(ratio, 0.5);
  std::printf("PCIe verdict (B_GPU/B_PCI = %.1f, alpha = 0.5):\n", ratio);
  std::printf("  N_nzr = %.1f; <= %.1f means >50%% transfer penalty, "
              ">= %.1f means <10%%\n",
              s.avg_row_len, hi50, lo10);
  if (s.avg_row_len <= hi50) {
    std::printf("  => poor GPGPU candidate: host transfers dominate "
                "(paper Sec. II-B)\n");
  } else if (s.avg_row_len >= lo10) {
    std::printf("  => good GPGPU candidate: transfers nearly free\n");
  } else {
    std::printf("  => borderline: expect a measurable but not fatal "
                "PCIe penalty\n");
  }
  return 0;
}
