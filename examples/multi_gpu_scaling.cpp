// Multi-GPGPU spMVM example (Sec. III): run the distributed product
// functionally on the in-process message runtime with all three
// communication schemes, verify the results agree, then ask the cluster
// model for a strong-scaling estimate and print the task-mode event
// timeline of Fig. 4.
//
//   ./examples/multi_gpu_scaling [ranks] [--timeline]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

#include "dist/cluster_model.hpp"
#include "dist/comm_plan.hpp"
#include "matgen/generators.hpp"
#include "sparse/matrix_stats.hpp"
#include "util/ascii.hpp"

using namespace spmvm;
using namespace spmvm::dist;

int main(int argc, char** argv) {
  int n_ranks = 4;
  bool show_timeline = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--timeline") == 0) {
      show_timeline = true;
    } else {
      n_ranks = std::atoi(argv[i]);
    }
  }
  if (n_ranks < 1) n_ranks = 1;

  GenConfig cfg;
  cfg.scale = 32;
  const auto a = make_dlr1<double>(cfg);
  std::printf("%s\n\n",
              format_stats("DLR1-like", compute_stats(a)).c_str());

  // ---- functional distributed runs on the thread-based runtime --------
  const auto part = partition_balanced_nnz(a, n_ranks);
  std::vector<double> x(static_cast<std::size_t>(a.n_rows), 1.0);
  std::vector<double> reference;
  for (const auto scheme :
       {CommScheme::vector_mode, CommScheme::naive_overlap,
        CommScheme::task_mode}) {
    std::vector<double> y(static_cast<std::size_t>(a.n_rows));
    std::mutex y_mutex;
    msg::Runtime::run(n_ranks, [&](msg::Comm& comm) {
      const auto d = distribute(a, part, comm.rank());
      handshake_pattern(comm, d);
      const index_t row0 = part.begin(comm.rank());
      std::vector<double> x_local(x.begin() + row0,
                                  x.begin() + part.end(comm.rank()));
      std::vector<double> y_local(static_cast<std::size_t>(d.n_local));
      // Persistent halo-exchange plan (built once, reused per product).
      CommPlan<double> plan(comm, d, scheme);
      plan.spmv(std::span<const double>(x_local),
                std::span<double>(y_local));
      std::lock_guard<std::mutex> lock(y_mutex);
      std::copy(y_local.begin(), y_local.end(), y.begin() + row0);
    });
    double checksum = 0.0;
    for (const double v : y) checksum += v;
    std::printf("%-14s on %d ranks: checksum %.6f\n", to_string(scheme),
                n_ranks, checksum);
    if (reference.empty()) {
      reference = y;
    } else if (reference != y) {
      // Partial-sum order is identical across schemes — must match.
      std::printf("ERROR: schemes disagree!\n");
      return 1;
    }
  }
  std::printf("all schemes produce identical results.\n\n");

  // ---- cluster-model strong scaling ------------------------------------
  const auto c = ClusterSpec::dirac();
  const std::vector<int> nodes = {1, 2, 4, 8, 16, 32};
  const auto pts = strong_scaling(
      c, a, nodes,
      {CommScheme::vector_mode, CommScheme::naive_overlap,
       CommScheme::task_mode});
  AsciiTable t({"nodes", "vector [GF/s]", "naive [GF/s]", "task [GF/s]"});
  for (const int n : nodes) {
    std::vector<std::string> row = {std::to_string(n)};
    for (const auto scheme :
         {CommScheme::vector_mode, CommScheme::naive_overlap,
          CommScheme::task_mode}) {
      for (const auto& p : pts)
        if (p.nodes == n && p.scheme == scheme)
          row.push_back(fmt(p.gflops, 1));
    }
    t.add_row(row);
  }
  std::printf("strong scaling on a Dirac-like cluster (model, DP+ECC):\n%s\n",
              t.render().c_str());

  // ---- Fig. 4 timeline ---------------------------------------------------
  if (show_timeline) {
    const auto d = distribute(a, partition_balanced_nnz(a, 8), 3);
    const auto tl = task_mode_timeline(c, node_timing(c, d));
    std::printf("task-mode timeline of one iteration (rank 3 of 8):\n%s\n",
                tl.render(70).c_str());
  } else {
    std::printf("(run with --timeline for the Fig. 4 event timeline)\n");
  }
  return 0;
}
