// Quickstart: build a sparse matrix, convert it to pJDS, run spMVM on the
// host, and ask the GPU simulator what a Fermi-class card would do.
//
//   ./examples/quickstart [matrix.mtx]
//
// Without an argument a synthetic sAMG-like matrix is used; with one, any
// Matrix Market file.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/footprint.hpp"
#include "core/pjds_spmv.hpp"
#include "gpusim/gpu_spmv.hpp"
#include "matgen/generators.hpp"
#include "sparse/matrix_market.hpp"
#include "sparse/matrix_stats.hpp"
#include "util/ascii.hpp"

using namespace spmvm;

int main(int argc, char** argv) {
  // 1. Get a matrix: from a file, or the sAMG-like generator.
  Csr<double> a;
  if (argc > 1) {
    std::printf("Reading %s ...\n", argv[1]);
    a = read_matrix_market_file<double>(argv[1]);
  } else {
    GenConfig cfg;
    cfg.scale = 64;
    a = make_samg<double>(cfg);
  }
  std::printf("%s\n\n", format_stats("matrix", compute_stats(a)).c_str());

  // 2. Convert to pJDS (block size 32 = warp size; symmetric permutation
  //    so solvers can stay in the permuted basis).
  PjdsOptions opt;
  opt.permute_columns =
      a.n_rows == a.n_cols ? PermuteColumns::yes : PermuteColumns::no;
  const auto pjds = Pjds<double>::from_csr(a, opt);
  const auto ell = Ellpack<double>::from_csr(a, 32);
  std::printf("ELLPACK stores  %s entries\n",
              fmt_count(ell.stored_entries()).c_str());
  std::printf("pJDS stores     %s entries  (data reduction %.1f%%, fill %.2f%%)\n\n",
              fmt_count(pjds.stored_entries()).c_str(),
              data_reduction_percent(pjds, ell),
              100.0 * pjds.fill_fraction());

  // 3. Multiply on the host: y = A x through the permutation-hiding
  //    operator (input/output in the original basis).
  const PjdsOperator<double> op(pjds);
  std::vector<double> x(static_cast<std::size_t>(a.n_cols), 1.0);
  std::vector<double> y(static_cast<std::size_t>(a.n_rows));
  op.apply(x, y);
  double checksum = 0.0;
  for (const double v : y) checksum += v;
  std::printf("host spMVM checksum: %.6f\n\n", checksum);

  // 4. What would a Tesla C2070 do? (simulated; DP, ECC on)
  const auto dev = gpusim::DeviceSpec::tesla_c2070();
  AsciiTable table({"format", "GF/s (sim)", "alpha", "bytes/flop"});
  for (const auto kind :
       {gpusim::FormatKind::ellpack_r, gpusim::FormatKind::pjds}) {
    const auto r = gpusim::simulate_format(dev, a, kind);
    table.add_row({gpusim::to_string(kind), fmt(r.gflops, 1),
                   fmt(r.stats.measured_alpha(sizeof(double)), 2),
                   fmt(r.code_balance, 2)});
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
