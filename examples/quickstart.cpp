// Quickstart: build a sparse matrix, resolve a storage format through
// the format registry, run spMVM on the host, and ask the GPU simulator
// what a Fermi-class card would do with every registered format.
//
//   ./examples/quickstart [matrix.mtx]
//
// Without an argument a synthetic sAMG-like matrix is used; with one, any
// Matrix Market file.
#include <cstdio>
#include <memory>
#include <vector>

#include "formats/registry.hpp"
#include "matgen/generators.hpp"
#include "sparse/matrix_market.hpp"
#include "sparse/matrix_stats.hpp"
#include "util/ascii.hpp"

using namespace spmvm;

int main(int argc, char** argv) {
  // 1. Get a matrix: from a file, or the sAMG-like generator.
  Csr<double> a;
  if (argc > 1) {
    std::printf("Reading %s ...\n", argv[1]);
    a = read_matrix_market_file<double>(argv[1]);
  } else {
    GenConfig cfg;
    cfg.scale = 64;
    a = make_samg<double>(cfg);
  }
  std::printf("%s\n\n", format_stats("matrix", compute_stats(a)).c_str());

  // 2. Resolve formats by name through the registry (block size 32 =
  //    warp size; symmetric permutation — demoted automatically for
  //    rectangular matrices — so solvers can stay in the permuted basis).
  const auto& reg = formats::registry<double>();
  const auto pjds = reg.build("pjds", a);
  const auto ell = reg.build("ellpack", a);
  const Footprint fp = pjds->footprint();
  const Footprint fe = ell->footprint();
  std::printf("ELLPACK stores  %s entries\n",
              fmt_count(fe.stored_entries).c_str());
  std::printf("pJDS stores     %s entries  (data reduction %.1f%%, fill %.2f%%)\n\n",
              fmt_count(fp.stored_entries).c_str(),
              100.0 * (1.0 - static_cast<double>(fp.stored_entries) /
                                 static_cast<double>(fe.stored_entries)),
              100.0 * static_cast<double>(fp.stored_entries - fp.true_nnz) /
                  static_cast<double>(fp.stored_entries));

  // 3. Multiply on the host: y = A x with input/output in the original
  //    basis — the permutation handle carries the vectors across.
  std::vector<double> x(static_cast<std::size_t>(a.n_cols), 1.0);
  std::vector<double> y(static_cast<std::size_t>(a.n_rows));
  {
    const Permutation* perm = pjds->permutation();
    std::vector<double> xb = x;
    std::vector<double> yb(y.size());
    if (perm != nullptr && pjds->columns_permuted())
      perm->to_permuted(std::span<const double>(x), std::span<double>(xb));
    pjds->spmv(std::span<const double>(xb), std::span<double>(yb));
    if (perm != nullptr)
      perm->from_permuted(std::span<const double>(yb), std::span<double>(y));
    else
      y = yb;
  }
  double checksum = 0.0;
  for (const double v : y) checksum += v;
  std::printf("host spMVM checksum: %.6f\n\n", checksum);

  // 4. What would a Tesla C2070 do? (simulated; DP, ECC on) — every
  //    registered format with a simulated kernel.
  const auto dev = gpusim::DeviceSpec::tesla_c2070();
  AsciiTable table({"format", "GF/s (sim)", "alpha", "bytes/flop"});
  for (const formats::FormatInfo& info : reg.list()) {
    if (!info.has_sim_kernel) continue;
    const auto r = reg.build(info.name, a)->simulate(dev);
    table.add_row({info.name, fmt(r->gflops, 1),
                   fmt(r->stats.measured_alpha(sizeof(double)), 2),
                   fmt(r->code_balance, 2)});
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
