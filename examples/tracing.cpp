// Observability tour: run a threaded CG solve and a distributed power
// iteration with tracing on, then export the run three ways — Chrome
// trace JSON (chrome://tracing / ui.perfetto.dev), an ASCII timeline of
// the comm phases (the measured Fig. 4), and Prometheus metrics text.
// The distributed section records into rank lanes (one Chrome process
// group per rank) with flow arrows pairing each send with its receive
// — see DESIGN.md §11.
//
// Usage: tracing [trace.json]
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "sparse/pjds.hpp"
#include "dist/spmv_modes.hpp"
#include "dist/timeline.hpp"
#include "gpusim/kernel_sim.hpp"
#include "matgen/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "solver/cg.hpp"
#include "solver/operator.hpp"

using namespace spmvm;

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "trace.json";
  obs::set_tracing(true);  // same effect as SPMVM_TRACE=1 in the env
  obs::set_thread_name("main");

  // 1. A threaded CG solve: solver iterations, kernel calls and thread
  //    pool activity all record spans.
  {
    const auto a = std::make_shared<const Csr<double>>(
        make_poisson2d<double>(96, 96));
    const auto op = solver::make_operator<double>(a, 4);
    std::vector<double> b(static_cast<std::size_t>(a->n_rows), 1.0);
    std::vector<double> x(b.size(), 0.0);
    const auto r = solver::cg(op, std::span<const double>(b),
                              std::span<double>(x), 1e-10, 500);
    std::printf("CG: %d iterations, residual %.3e, converged=%d\n",
                r.iterations, r.residual_norm, r.converged);
  }

  // 2. Distributed power iterations in task mode: the comm thread and
  //    the halo-exchange phases of Fig. 4. Runtime::run stamps each
  //    rank thread's lane (obs::set_rank), so these spans land in
  //    per-rank process groups in the Chrome export and the timeline
  //    below prefixes their actors with "rN/".
  {
    const auto a = make_poisson2d<double>(64, 64);
    const auto part = dist::partition_balanced_nnz(a, 2);
    msg::Runtime::run(2, [&](msg::Comm& comm) {
      obs::set_thread_name("rank " + std::to_string(comm.rank()));
      const auto d = dist::distribute(a, part, comm.rank());
      const index_t row0 = part.begin(comm.rank());
      std::vector<double> x0(
          static_cast<std::size_t>(part.end(comm.rank()) - row0), 1.0);
      dist::run_power_iterations(comm, d, std::span<const double>(x0), 3,
                                 dist::CommScheme::task_mode);
    });
  }

  // 3. One simulated GPU kernel: gpusim spans carry the predicted time
  //    and the measured α of Eq. 1 as span args.
  {
    const auto a = make_poisson2d<double>(64, 64);
    const auto p = Pjds<double>::from_csr(a);
    const auto res =
        gpusim::simulate(gpusim::DeviceSpec::tesla_c2070(), p, {});
    std::printf("gpusim: pJDS on C2070, predicted %.2f us\n",
                res.seconds * 1e6);
  }

  // Export 1: Chrome trace JSON.
  if (obs::write_chrome_trace(out_path)) {
    std::printf("\nwrote %s — open in chrome://tracing or "
                "https://ui.perfetto.dev\n",
                out_path.c_str());
  } else {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }

  // Export 2: measured ASCII timeline (top-level + comm spans).
  std::printf("\nmeasured timeline (span depth <= 1):\n%s\n",
              dist::timeline_from_trace(obs::collect(), obs::trace_threads())
                  .render()
                  .c_str());

  // Export 3: Prometheus metrics.
  std::printf("metrics:\n%s", obs::prometheus_text().c_str());
  return 0;
}
