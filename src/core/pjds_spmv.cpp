#include "core/pjds_spmv.hpp"

#include "util/error.hpp"
#include "util/parallel.hpp"

namespace spmvm {

namespace {
template <class T>
void check_shapes(const Pjds<T>& a, std::span<const T> x, std::span<T> y) {
  SPMVM_REQUIRE(x.size() >= static_cast<std::size_t>(a.n_cols),
                "input vector too short");
  SPMVM_REQUIRE(y.size() >= static_cast<std::size_t>(a.n_rows),
                "output vector too short");
}
}  // namespace

template <class T>
void spmv(const Pjds<T>& a, std::span<const T> x, std::span<T> y,
          int n_threads) {
  check_shapes(a, x, y);
  parallel_for(static_cast<std::size_t>(a.n_rows), n_threads,
               [&](std::size_t begin, std::size_t end) {
                 for (std::size_t i = begin; i < end; ++i) {
                   T acc{0};
                   const index_t len = a.row_len[i];
                   for (index_t j = 0; j < len; ++j) {
                     const std::size_t k = static_cast<std::size_t>(
                         a.col_start[static_cast<std::size_t>(j)] +
                         static_cast<offset_t>(i));
                     acc += a.val[k] *
                            x[static_cast<std::size_t>(a.col_idx[k])];
                   }
                   y[i] = acc;
                 }
               });
}

template <class T>
void spmv_axpby(const Pjds<T>& a, std::span<const T> x, std::span<T> y,
                T alpha, T beta, int n_threads) {
  check_shapes(a, x, y);
  parallel_for(static_cast<std::size_t>(a.n_rows), n_threads,
               [&](std::size_t begin, std::size_t end) {
                 for (std::size_t i = begin; i < end; ++i) {
                   T acc{0};
                   const index_t len = a.row_len[i];
                   for (index_t j = 0; j < len; ++j) {
                     const std::size_t k = static_cast<std::size_t>(
                         a.col_start[static_cast<std::size_t>(j)] +
                         static_cast<offset_t>(i));
                     acc += a.val[k] *
                            x[static_cast<std::size_t>(a.col_idx[k])];
                   }
                   y[i] = beta * y[i] + alpha * acc;
                 }
               });
}

template <class T>
PjdsOperator<T>::PjdsOperator(Pjds<T> a)
    : a_(std::move(a)),
      columns_permuted_(a_.columns_permuted),
      x_perm_(static_cast<std::size_t>(a_.n_cols)),
      y_perm_(static_cast<std::size_t>(a_.n_rows)) {}

template <class T>
void PjdsOperator<T>::apply(std::span<const T> x, std::span<T> y) const {
  std::span<const T> input = x;
  if (columns_permuted_) {
    a_.perm.to_permuted(x, std::span<T>(x_perm_));
    input = std::span<const T>(x_perm_);
  }
  spmv(a_, input, std::span<T>(y_perm_));
  a_.perm.from_permuted(std::span<const T>(y_perm_), y);
}

#define SPMVM_INSTANTIATE_PJDS(T)                                       \
  template void spmv(const Pjds<T>&, std::span<const T>, std::span<T>,  \
                     int);                                              \
  template void spmv_axpby(const Pjds<T>&, std::span<const T>,          \
                           std::span<T>, T, T, int);                    \
  template class PjdsOperator<T>

SPMVM_INSTANTIATE_PJDS(float);
SPMVM_INSTANTIATE_PJDS(double);

}  // namespace spmvm
