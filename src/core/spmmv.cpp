#include "core/spmmv.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/parallel.hpp"

namespace spmvm {

namespace {
// The k-interleaved stride contract: X stores x[i*k + v] (row-major by
// vector index), so both the block width and the span sizes must be
// consistent before any i*k indexing happens — a non-positive k would
// otherwise silently alias rows.
void check_block(index_t n_rows, index_t n_cols, std::size_t x_size,
                 std::size_t y_size, int k) {
  SPMVM_REQUIRE(k >= 1, "spMMV block width k must be >= 1");
  SPMVM_REQUIRE(x_size >= static_cast<std::size_t>(n_cols) *
                              static_cast<std::size_t>(k),
                "input block too small for k interleaved vectors");
  SPMVM_REQUIRE(y_size >= static_cast<std::size_t>(n_rows) *
                              static_cast<std::size_t>(k),
                "output block too small for k interleaved vectors");
}
}  // namespace

template <class T>
void spmmv(const Csr<T>& a, std::span<const T> x, std::span<T> y, int k,
           int n_threads) {
  check_block(a.n_rows, a.n_cols, x.size(), y.size(), k);
  const auto kk = static_cast<std::size_t>(k);
  parallel_for_balanced(
      std::span<const offset_t>(a.row_ptr), n_threads,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          T* __restrict out = y.data() + i * kk;
          for (std::size_t v = 0; v < kk; ++v) out[v] = T{0};
          for (offset_t p = a.row_ptr[i]; p < a.row_ptr[i + 1]; ++p) {
            const T av = a.val[static_cast<std::size_t>(p)];
            const T* __restrict in =
                x.data() +
                static_cast<std::size_t>(
                    a.col_idx[static_cast<std::size_t>(p)]) *
                    kk;
#pragma omp simd
            for (std::size_t v = 0; v < kk; ++v) out[v] += av * in[v];
          }
        }
      });
}

template <class T>
void spmmv(const Pjds<T>& a, std::span<const T> x, std::span<T> y, int k,
           int n_threads) {
  check_block(a.n_rows, a.n_cols, x.size(), y.size(), k);
  const auto kk = static_cast<std::size_t>(k);
  auto rows = [&](std::size_t rb, std::size_t re) {
    for (std::size_t i = rb; i < re; ++i) {
      T* __restrict out = y.data() + i * kk;
      for (std::size_t v = 0; v < kk; ++v) out[v] = T{0};
      const index_t len = a.row_len[i];
      for (index_t j = 0; j < len; ++j) {
        const std::size_t p = static_cast<std::size_t>(
            a.col_start[static_cast<std::size_t>(j)] +
            static_cast<offset_t>(i));
        const T av = a.val[p];
        const T* __restrict in =
            x.data() + static_cast<std::size_t>(a.col_idx[p]) * kk;
#pragma omp simd
        for (std::size_t v = 0; v < kk; ++v) out[v] += av * in[v];
      }
    }
  };
  if (n_threads <= 1 || a.n_rows < 2) {
    rows(0, static_cast<std::size_t>(a.n_rows));
    return;
  }
  // Balance on stored entries per padding block; thread boundaries land
  // on block boundaries, matching the format's layout granularity.
  const auto boff = block_offsets(a);
  parallel_for_balanced(
      std::span<const offset_t>(boff), n_threads,
      [&](std::size_t bb, std::size_t be) {
        const std::size_t rb = bb * static_cast<std::size_t>(a.block_rows);
        const std::size_t re =
            std::min(be * static_cast<std::size_t>(a.block_rows),
                     static_cast<std::size_t>(a.n_rows));
        if (rb < re) rows(rb, re);
      });
}

double spmmv_code_balance(std::size_t scalar_size, double alpha, double nnzr,
                          int k) {
  SPMVM_REQUIRE(k >= 1 && nnzr > 0.0, "invalid spMMV balance arguments");
  const auto s = static_cast<double>(scalar_size);
  // Matrix entry + index amortized over k vectors; RHS/LHS terms per
  // vector stay.
  return ((s + 4.0) / k + s * alpha + 2.0 * s / nnzr) / 2.0;
}

#define SPMVM_INSTANTIATE_SPMMV(T)                                      \
  template void spmmv(const Csr<T>&, std::span<const T>, std::span<T>,  \
                      int, int);                                        \
  template void spmmv(const Pjds<T>&, std::span<const T>, std::span<T>, \
                      int, int)

SPMVM_INSTANTIATE_SPMMV(float);
SPMVM_INSTANTIATE_SPMMV(double);

}  // namespace spmvm
