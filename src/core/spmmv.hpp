// Multi-vector spMVM (spMMV): Y = A·X for a block of k right-hand sides.
//
// Block Krylov methods amortize the matrix traffic over several vectors,
// dividing the dominant (s+4)-bytes-per-non-zero term of Eq. 1 by k —
// the standard remedy when a single spMVM is bandwidth-bound. Vectors
// are stored row-major (x[i*k + v]), so one matrix entry multiplies k
// consecutive values.
#pragma once

#include <span>

#include "sparse/pjds.hpp"
#include "sparse/csr.hpp"

namespace spmvm {

/// Y = A·X with k interleaved vectors: X has n_cols*k entries, Y has
/// n_rows*k, both row-major by vector index.
template <class T>
void spmmv(const Csr<T>& a, std::span<const T> x, std::span<T> y, int k,
           int n_threads = 1);

/// pJDS variant (same basis conventions as the single-vector kernel).
template <class T>
void spmmv(const Pjds<T>& a, std::span<const T> x, std::span<T> y, int k,
           int n_threads = 1);

/// Theoretical balance improvement of k-vector spMMV over spMVM (Eq. 1
/// with matrix terms divided by k): bytes/flop.
double spmmv_code_balance(std::size_t scalar_size, double alpha, double nnzr,
                          int k);

#define SPMVM_EXTERN_SPMMV(T)                                            \
  extern template void spmmv(const Csr<T>&, std::span<const T>,         \
                             std::span<T>, int, int);                    \
  extern template void spmmv(const Pjds<T>&, std::span<const T>,        \
                             std::span<T>, int, int)

SPMVM_EXTERN_SPMMV(float);
SPMVM_EXTERN_SPMMV(double);
#undef SPMVM_EXTERN_SPMMV

}  // namespace spmvm
