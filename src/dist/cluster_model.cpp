#include "dist/cluster_model.hpp"

#include <algorithm>

#include "gpusim/gpu_spmv.hpp"
#include "gpusim/pcie.hpp"
#include "util/error.hpp"

namespace spmvm::dist {

double NodeTiming::iteration_seconds(const ClusterSpec& c,
                                     CommScheme scheme) const {
  switch (scheme) {
    case CommScheme::vector_mode:
      return t_down + t_comm + t_up + t_full;
    case CommScheme::naive_overlap: {
      const double f = c.naive_overlap_fraction;
      return t_down + std::max(t_local, f * t_comm) + (1.0 - f) * t_comm +
             t_up + t_nonlocal;
    }
    case CommScheme::task_mode:
      return std::max(t_local, t_down + t_comm + t_up) + t_nonlocal +
             (c.persistent_comm ? c.thread_wake_s : c.thread_sync_s);
  }
  return 0.0;
}

template <class T>
NodeTiming node_timing(const ClusterSpec& c, const DistMatrix<T>& d) {
  NodeTiming t;
  gpusim::SimOptions opt;
  opt.ecc = c.ecc;

  // Local and non-local kernels in the configured device format
  // (ELLPACK-R in the paper's Sec. III; pJDS as the future-work option).
  const auto local = gpusim::simulate_format(
      c.device, d.local, c.matrix_format, opt, c.device.warp_size);
  t.t_local = local.seconds;
  double nonlocal_lhs_bytes = 0.0;
  if (d.nonlocal.nnz() > 0) {
    const auto nonlocal = gpusim::simulate_format(
        c.device, d.nonlocal, c.matrix_format, opt, c.device.warp_size);
    t.t_nonlocal = nonlocal.seconds;
    nonlocal_lhs_bytes = static_cast<double>(d.n_local) * sizeof(T);
  }
  // Vector mode runs one unsplit kernel: one launch less, and the result
  // vector is written once instead of twice (Sec. III-A's 8/N_nzr term).
  t.t_full = t.t_local + t.t_nonlocal;
  if (d.nonlocal.nnz() > 0)
    t.t_full -= c.device.kernel_launch_s +
                nonlocal_lhs_bytes / c.device.bandwidth_bytes(c.ecc);

  // Host transfers: boundary download, halo upload.
  t.t_down = gpusim::pcie_seconds(
      c.device, static_cast<std::uint64_t>(d.send_total()) * sizeof(T));
  t.t_up = gpusim::pcie_seconds(
      c.device, static_cast<std::uint64_t>(d.n_halo) * sizeof(T));

  // Network: per-peer message latency plus serialized volume.
  t.n_peers = d.n_peers();
  const std::uint64_t wire_bytes =
      (static_cast<std::uint64_t>(d.send_total()) +
       static_cast<std::uint64_t>(d.n_halo)) *
      sizeof(T);
  t.t_comm = t.n_peers * c.net_latency_s +
             static_cast<double>(wire_bytes) / (c.net_bw_gbs * 1e9);

  t.flops = 2 * static_cast<std::uint64_t>(d.local.nnz() + d.nonlocal.nnz());
  return t;
}

template <class T>
std::vector<ScalingPoint> strong_scaling(
    const ClusterSpec& c, const Csr<T>& a, const std::vector<int>& node_counts,
    const std::vector<CommScheme>& schemes) {
  std::vector<ScalingPoint> out;
  for (const int nodes : node_counts) {
    SPMVM_REQUIRE(nodes >= 1, "node count must be >= 1");
    const auto part = partition_balanced_nnz(a, nodes);

    std::vector<NodeTiming> timings;
    timings.reserve(static_cast<std::size_t>(nodes));
    bool fits = true;
    for (int r = 0; r < nodes; ++r) {
      const auto d = distribute(a, part, r);
      const std::size_t bytes =
          gpusim::device_bytes(d.local, c.matrix_format,
                               c.device.warp_size) +
          gpusim::device_bytes(d.nonlocal, c.matrix_format,
                               c.device.warp_size);
      if (bytes > c.device.dram_bytes) fits = false;
      timings.push_back(node_timing(c, d));
    }

    std::uint64_t total_flops = 0;
    for (const auto& t : timings) total_flops += t.flops;

    for (const CommScheme scheme : schemes) {
      ScalingPoint p;
      p.nodes = nodes;
      p.scheme = scheme;
      if (fits) {
        for (const auto& t : timings)
          p.seconds = std::max(p.seconds, t.iteration_seconds(c, scheme));
        p.gflops = static_cast<double>(total_flops) / p.seconds / 1e9;
      }
      out.push_back(p);
    }
  }
  return out;
}

Timeline task_mode_timeline(const ClusterSpec& c, const NodeTiming& t) {
  Timeline tl;
  // Thread 0: communication chain (Fig. 4, top row).
  double at = 0.0;
  const double irecv = c.net_latency_s;
  tl.add("thread 0", "MPI_Irecv", at, at + irecv);
  at += irecv;
  tl.add("thread 0", "local gather+download", at, at + t.t_down);
  at += t.t_down;
  tl.add("thread 0", "MPI_Isend", at, at + c.net_latency_s);
  at += c.net_latency_s;
  const double wait_end = irecv + t.t_down + c.net_latency_s +
                          std::max(0.0, t.t_comm - c.net_latency_s);
  tl.add("thread 0", "MPI_Waitall", at, wait_end);
  tl.add("thread 0", "upload RHS", wait_end, wait_end + t.t_up);
  const double nonlocal_start = std::max(wait_end + t.t_up, t.t_local);
  tl.add("thread 0", "launch nonlocal", wait_end + t.t_up,
         wait_end + t.t_up + c.device.kernel_launch_s);

  // Thread 1: launches the local kernel immediately, then syncs.
  tl.add("thread 1", "launch local", 0.0, c.device.kernel_launch_s);
  tl.add("thread 1", "GPU sync", c.device.kernel_launch_s, t.t_local);

  // GPU: local kernel from t=0, non-local after upload and local finish.
  tl.add("GPGPU", "local spMVM", 0.0, t.t_local);
  tl.add("GPGPU", "nonlocal spMVM", nonlocal_start,
         nonlocal_start + t.t_nonlocal);
  return tl;
}

#define SPMVM_INSTANTIATE_CLUSTER(T)                                     \
  template NodeTiming node_timing(const ClusterSpec&,                    \
                                  const DistMatrix<T>&);                 \
  template std::vector<ScalingPoint> strong_scaling(                     \
      const ClusterSpec&, const Csr<T>&, const std::vector<int>&,        \
      const std::vector<CommScheme>&)

SPMVM_INSTANTIATE_CLUSTER(float);
SPMVM_INSTANTIATE_CLUSTER(double);

}  // namespace spmvm::dist
