// Cluster timing model for multi-GPGPU spMVM (Sec. III / Fig. 5).
//
// The functional halo exchange (spmv_modes) establishes *what* moves;
// this model turns the measured per-rank volumes and simulated kernel
// times into wall-clock estimates for one spMVM iteration under the
// three communication schemes, on a Dirac-like cluster (one Tesla C2050
// per node, QDR-InfiniBand-class interconnect).
//
// Per-rank components:
//   t_local / t_nonlocal — GPU kernel simulation of the two matrix parts,
//   t_down  — PCIe download of the boundary entries to the send buffer,
//   t_up    — PCIe upload of the received halo,
//   t_comm  — network: per-peer latency + volume / bandwidth.
//
// Composition (T_r per rank; iteration time = max over ranks):
//   vector mode   : t_down + t_comm + t_up + t_full_kernel
//   naive overlap : t_down + max(t_local, f·t_comm) + (1-f)·t_comm
//                   + t_up + t_nonlocal
//   task mode     : max(t_local, t_down + t_comm + t_up) + t_nonlocal
// where f = naive_overlap_fraction models how much communication an MPI
// library progresses without a dedicated thread (the paper: "most MPI
// libraries do not support asynchronous nonblocking point-to-point
// communication"), and t_full_kernel credits vector mode for the single
// unsplit kernel (one launch, result written once).
#pragma once

#include "dist/dist_matrix.hpp"
#include "dist/spmv_modes.hpp"
#include "dist/timeline.hpp"
#include "gpusim/gpu_spmv.hpp"

namespace spmvm::dist {

struct ClusterSpec {
  gpusim::DeviceSpec device = gpusim::DeviceSpec::tesla_c2050();
  bool ecc = true;                      // Fig. 5 runs: DP with ECC on
  double net_bw_gbs = 3.2;              // QDR IB sustained per node
  double net_latency_s = 4e-6;          // per message incl. software stack
  double naive_overlap_fraction = 0.4;  // f above
  double thread_sync_s = 3e-6;          // task-mode fork/join overhead
  /// Task mode with a persistent communication plan (dist/comm_plan)
  /// wakes a parked comm thread through a condition variable instead of
  /// spawning and joining one per iteration; the per-iteration thread
  /// cost drops from thread_sync_s to thread_wake_s.
  bool persistent_comm = true;
  double thread_wake_s = 5e-7;  // cv wake + handshake of the parked thread
  /// Device format of the local/non-local kernels. The paper used
  /// ELLPACK-R throughout Sec. III; "an implementation of the multi-GPGPU
  /// code with the pJDS format ... is ongoing work" — that extension is
  /// available here as FormatKind::pjds.
  gpusim::FormatKind matrix_format = gpusim::FormatKind::ellpack_r;

  /// The NERSC Dirac cluster configuration used by the paper.
  static ClusterSpec dirac() { return {}; }
};

/// Timed components of one rank's iteration.
struct NodeTiming {
  double t_local = 0.0;
  double t_nonlocal = 0.0;
  double t_full = 0.0;  // unsplit kernel (vector mode)
  double t_down = 0.0;
  double t_up = 0.0;
  double t_comm = 0.0;
  int n_peers = 0;
  std::uint64_t flops = 0;

  /// Wall clock of this rank's iteration under the given scheme.
  double iteration_seconds(const ClusterSpec& c, CommScheme scheme) const;
};

/// Simulate rank `d.rank`'s components (ELLPACK-R kernels, per Sec. III).
template <class T>
NodeTiming node_timing(const ClusterSpec& c, const DistMatrix<T>& d);

/// One point of Fig. 5: aggregate performance of `nodes` ranks.
struct ScalingPoint {
  int nodes = 0;
  CommScheme scheme = CommScheme::vector_mode;
  double seconds = 0.0;  // max over ranks
  double gflops = 0.0;   // 2·nnz(global) / seconds
};

/// Strong scaling of matrix `a` over the given node counts and schemes
/// (the full Fig. 5 sweep). Skips node counts whose per-node matrix would
/// not fit in device memory (paper: UHBR needs >= 5 C2050 nodes) — such
/// points are returned with seconds = 0.
template <class T>
std::vector<ScalingPoint> strong_scaling(const ClusterSpec& c, const Csr<T>& a,
                                         const std::vector<int>& node_counts,
                                         const std::vector<CommScheme>& schemes);

/// Fig. 4: render the task-mode timeline of one rank's iteration.
Timeline task_mode_timeline(const ClusterSpec& c, const NodeTiming& t);

#define SPMVM_EXTERN_CLUSTER(T)                                         \
  extern template NodeTiming node_timing(const ClusterSpec&,            \
                                         const DistMatrix<T>&);         \
  extern template std::vector<ScalingPoint> strong_scaling(             \
      const ClusterSpec&, const Csr<T>&, const std::vector<int>&,       \
      const std::vector<CommScheme>&)

SPMVM_EXTERN_CLUSTER(float);
SPMVM_EXTERN_CLUSTER(double);
#undef SPMVM_EXTERN_CLUSTER

}  // namespace spmvm::dist
