#include "dist/comm_plan.hpp"

#include <chrono>
#include <cstdint>
#include <utility>

#include "dist/cluster_model.hpp"
#include "dist/spmv_apply.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace spmvm::dist {

namespace {

/// Plan traffic uses its own tag so a plan and the legacy dist_spmv can
/// coexist on one Comm (the bit-identity tests interleave both) without
/// their messages cross-matching.
constexpr int kTagPlanHalo = 102;

const char* plan_span_name(CommScheme scheme) {
  switch (scheme) {
    case CommScheme::vector_mode:
      return "dist/plan_vector";
    case CommScheme::naive_overlap:
      return "dist/plan_naive_overlap";
    case CommScheme::task_mode:
      return "dist/plan_task";
  }
  return "dist/plan";
}

const char* scheme_slug(CommScheme scheme) {
  switch (scheme) {
    case CommScheme::vector_mode:
      return "vector_mode";
    case CommScheme::naive_overlap:
      return "naive_overlap";
    case CommScheme::task_mode:
      return "task_mode";
  }
  return "?";
}

/// Net-lane work descriptor for `bytes` of halo traffic over the
/// ClusterSpec interconnect (Eq. 3's T_comm without the latency term —
/// the latency share is exactly what the efficiency column loses).
obs::WorkDesc net_work(std::uint64_t bytes) {
  obs::WorkDesc w;
  w.bytes = bytes;
  return w;
}

}  // namespace

template <class T>
CommPlan<T>::CommPlan(msg::Comm& comm, const DistMatrix<T>& d,
                      CommScheme scheme, int gather_threads)
    : comm_(comm),
      d_(d),
      scheme_(scheme),
      gather_threads_(gather_threads) {
  SPMVM_REQUIRE(comm.size() == d.n_parts,
                "communicator size must match the partition");
  SPMVM_REQUIRE(comm.rank() == d.rank, "rank mismatch");
  SPMVM_REQUIRE(gather_threads >= 1, "need at least one gather thread");

  // Flatten the per-peer send lists into one contiguous array; the
  // legacy path recomputes these offsets on every call.
  send_offset_.assign(static_cast<std::size_t>(d.n_parts) + 1, 0);
  for (int p = 0; p < d.n_parts; ++p)
    send_offset_[static_cast<std::size_t>(p) + 1] =
        send_offset_[static_cast<std::size_t>(p)] +
        d.send_idx[static_cast<std::size_t>(p)].size();
  send_flat_.reserve(send_offset_.back());
  for (int p = 0; p < d.n_parts; ++p)
    send_flat_.insert(send_flat_.end(),
                      d.send_idx[static_cast<std::size_t>(p)].begin(),
                      d.send_idx[static_cast<std::size_t>(p)].end());

  // Every gathered entry costs the same (one load + one store), so the
  // entry-balanced partition is the even split.
  const std::size_t n_entries = send_flat_.size();
  const std::size_t parts = static_cast<std::size_t>(gather_threads_);
  gather_bounds_.resize(parts + 1);
  for (std::size_t t = 0; t <= parts; ++t)
    gather_bounds_[t] = n_entries * t / parts;

  sendbuf_.resize(n_entries);
  halo_.resize(static_cast<std::size_t>(d.n_halo));

  // Persistent requests, bound once to the plan-owned buffers.
  for (int p = 0; p < d.n_parts; ++p) {
    const auto count = d.recv_count[static_cast<std::size_t>(p)];
    if (count > 0)
      recv_reqs_.push_back(comm_.recv_init_t<T>(
          p, kTagPlanHalo,
          std::span<T>(halo_.data() +
                           d.recv_offset[static_cast<std::size_t>(p)],
                       static_cast<std::size_t>(count))));
  }
  for (int p = 0; p < d.n_parts; ++p) {
    const auto n = send_offset_[static_cast<std::size_t>(p) + 1] -
                   send_offset_[static_cast<std::size_t>(p)];
    if (n > 0)
      send_reqs_.push_back(comm_.send_init_t<T>(
          p, kTagPlanHalo,
          std::span<const T>(
              sendbuf_.data() + send_offset_[static_cast<std::size_t>(p)],
              n)));
  }

  // Post this rank's receives, then barrier: once construction returns
  // anywhere, every rank's receives are posted, so every steady-state
  // send lands in its posted buffer (rendezvous, single copy).
  start_receives();
  try {
    comm_.barrier();
  } catch (...) {
    for (auto& r : recv_reqs_) comm_.cancel(r);
    throw;
  }

  if (scheme_ == CommScheme::task_mode) {
    static obs::Counter& c_threads = obs::counter("comm.task_threads");
    c_threads.add();
    comm_thread_ = std::thread([this] { comm_thread_loop(); });
  }
}

template <class T>
CommPlan<T>::~CommPlan() {
  if (comm_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lk(m_);
      stop_ = true;
    }
    cv_.notify_all();
    comm_thread_.join();
  }
  for (auto& r : recv_reqs_) comm_.cancel(r);
}

template <class T>
void CommPlan<T>::local_gather(std::span<const T> x) {
  SPMVM_TRACE_SPAN("comm/plan_gather",
                   static_cast<std::uint64_t>(send_flat_.size()) * sizeof(T));
  obs::LedgerScope led(obs::RoofLane::host, scheme_slug(scheme_), "gather");
  if (led.active()) {
    // The gather streams the indexed reads plus the packed writes.
    obs::WorkDesc w;
    w.bytes = static_cast<std::uint64_t>(send_flat_.size()) *
              (sizeof(T) + sizeof(index_t) + sizeof(T));
    led.set_work(w);
  }
  static obs::Counter& c_ns = obs::counter("comm.gather_ns");
  static obs::Gauge& g_s = obs::gauge("comm.gather_seconds");
  const auto t0 = std::chrono::steady_clock::now();
  const index_t* idx = send_flat_.data();
  T* out = sendbuf_.data();
  const int parts = static_cast<int>(gather_bounds_.size()) - 1;
  ThreadPool::instance().run(parts, [&](int part) {
    const std::size_t lo = gather_bounds_[static_cast<std::size_t>(part)];
    const std::size_t hi = gather_bounds_[static_cast<std::size_t>(part) + 1];
    for (std::size_t i = lo; i < hi; ++i)
      out[i] = x[static_cast<std::size_t>(idx[i])];
  });
  const auto ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  c_ns.add(ns);
  g_s.set(static_cast<double>(c_ns.value()) * 1e-9);
}

template <class T>
void CommPlan<T>::start_receives() {
  comm_.startall(recv_reqs_);
}

template <class T>
void CommPlan<T>::start_sends() {
  SPMVM_TRACE_SPAN("comm/plan_sends",
                   static_cast<std::uint64_t>(sendbuf_.size()) * sizeof(T));
  obs::LedgerScope led(obs::RoofLane::net, scheme_slug(scheme_), "sends");
  if (led.active())
    led.set_work(
        net_work(static_cast<std::uint64_t>(sendbuf_.size()) * sizeof(T)));
  comm_.startall(send_reqs_);
  comm_.waitall(send_reqs_);  // buffered sends complete at start; re-arm
}

template <class T>
void CommPlan<T>::wait_receives() {
  SPMVM_TRACE_SPAN("comm/plan_waitall",
                   static_cast<std::uint64_t>(d_.n_halo) * sizeof(T));
  obs::LedgerScope led(obs::RoofLane::net, scheme_slug(scheme_), "wait");
  if (led.active())
    led.set_work(
        net_work(static_cast<std::uint64_t>(d_.n_halo) * sizeof(T)));
  comm_.waitall(recv_reqs_);
}

template <class T>
void CommPlan<T>::comm_thread_loop() {
  obs::set_thread_name("comm thread");
  // The comm thread works on behalf of its owning rank: its spans
  // (plan_sends/plan_waitall, msg flows) belong in the same rank lane.
  obs::set_rank(comm_.rank());
  std::unique_lock<std::mutex> lk(m_);
  for (;;) {
    cv_.wait(lk, [&] { return work_ || stop_; });
    if (stop_) return;
    work_ = false;
    lk.unlock();
    try {
      start_sends();
      wait_receives();
    } catch (...) {
      comm_error_ = std::current_exception();
    }
    lk.lock();
    done_ = true;
    cv_.notify_all();
  }
}

template <class T>
void CommPlan<T>::signal_comm_thread() {
  {
    std::lock_guard<std::mutex> lk(m_);
    work_ = true;
    done_ = false;
  }
  cv_.notify_all();
}

template <class T>
void CommPlan<T>::join_iteration() {
  std::unique_lock<std::mutex> lk(m_);
  cv_.wait(lk, [&] { return done_; });
  if (comm_error_) {
    std::exception_ptr e = std::exchange(comm_error_, nullptr);
    lk.unlock();
    std::rethrow_exception(e);
  }
}

template <class T>
void CommPlan<T>::spmv(std::span<const T> x_local, std::span<T> y_local) {
  SPMVM_REQUIRE(x_local.size() >= static_cast<std::size_t>(d_.n_local),
                "x block too small");
  SPMVM_REQUIRE(y_local.size() >= static_cast<std::size_t>(d_.n_local),
                "y block too small");
  SPMVM_TRACE_SPAN(plan_span_name(scheme_));

  local_gather(x_local);
  static obs::Counter& c_halo = obs::counter("comm.halo_bytes");
  static obs::Counter& c_send = obs::counter("comm.send_bytes");
  c_halo.add(static_cast<std::uint64_t>(d_.n_halo) * sizeof(T));
  c_send.add(static_cast<std::uint64_t>(sendbuf_.size()) * sizeof(T));

  switch (scheme_) {
    case CommScheme::vector_mode: {
      // Exchange completes before any compute (no overlap).
      start_sends();
      wait_receives();
      {
        SPMVM_TRACE_SPAN("kernel/local");
        detail::apply_local<T>(d_, x_local, y_local);
      }
      {
        SPMVM_TRACE_SPAN("kernel/nonlocal");
        detail::apply_nonlocal<T>(d_, std::span<const T>(halo_), y_local);
      }
      break;
    }
    case CommScheme::naive_overlap: {
      // Sends in flight while the local part computes.
      start_sends();
      {
        SPMVM_TRACE_SPAN("kernel/local");
        detail::apply_local<T>(d_, x_local, y_local);
      }
      wait_receives();
      {
        SPMVM_TRACE_SPAN("kernel/nonlocal");
        detail::apply_nonlocal<T>(d_, std::span<const T>(halo_), y_local);
      }
      break;
    }
    case CommScheme::task_mode: {
      // Wake the persistent comm thread (Fig. 4: thread 0 exchanges
      // while the compute threads run the local part).
      signal_comm_thread();
      {
        SPMVM_TRACE_SPAN("kernel/local");
        detail::apply_local<T>(d_, x_local, y_local);
      }
      join_iteration();
      {
        SPMVM_TRACE_SPAN("kernel/nonlocal");
        detail::apply_nonlocal<T>(d_, std::span<const T>(halo_), y_local);
      }
      break;
    }
  }

  // The halo is consumed; re-post the receives now so the peers' next
  // sends rendezvous straight into halo_. A send that arrives before its
  // receive is re-posted (a rank racing a full iteration ahead) falls
  // back to the eager queue — slower, never wrong.
  {
    SPMVM_TRACE_SPAN("comm/plan_repost");
    start_receives();
  }
  ++iterations_;
}

template class CommPlan<float>;
template class CommPlan<double>;

}  // namespace spmvm::dist
