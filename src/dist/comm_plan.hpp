// Persistent halo-exchange plan for distributed spMVM (Sec. III-A).
//
// The legacy dist_spmv pays per-iteration orchestration costs that the
// paper's scalability argument assumes away: per-call offset/request
// vector allocations, a serial local gather, an eager double-copy per
// message, and — in task mode — a freshly spawned communication thread
// for every product. A CommPlan is built once per DistMatrix and hoists
// all of that into reusable state:
//
//   - owned send/halo scratch buffers and precomputed per-peer offsets,
//   - persistent send/recv requests (msg::Comm::send_init/recv_init)
//     pre-bound to those buffers and re-activated with start(),
//   - pre-posted receives, so sends take the runtime's rendezvous path
//     (one copy, no mailbox allocation) in steady state,
//   - an entry-balanced ThreadPool partition of the local gather,
//   - for task mode, one long-lived per-rank communication thread woken
//     through a condition variable each iteration (the paper's
//     dedicated comm thread of Fig. 4) instead of a thread per call.
//
// The steady-state spmv() performs no heap allocation and spawns no
// threads (asserted in test_comm_plan). All three schemes stay
// bit-identical to the legacy dist_spmv: the kernels run through the
// same shared apply helpers in the same order.
//
// Every iteration is traced as a dist/plan_* span whose phases —
// comm/plan_gather, comm/plan_sends, comm/plan_waitall, kernel/local,
// kernel/nonlocal, comm/plan_repost — feed the per-rank attribution of
// obs/attribution (DESIGN.md §11); the task-mode comm thread records
// its phases in its owner's rank lane.
//
// Collective contract: construction posts this rank's receives and then
// barriers, so every rank must build its plan at the same point of the
// SPMD program. One plan may be active per Comm at a time (plans share
// the halo tag); destroy a plan (or keep it idle) before driving the
// same exchange through another one.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "dist/dist_matrix.hpp"
#include "dist/spmv_modes.hpp"
#include "msg/runtime.hpp"

namespace spmvm::dist {

template <class T>
class CommPlan {
 public:
  /// Build the plan for `d` on `comm` (collective: every rank
  /// constructs at the same point). `gather_threads` > 1 runs the local
  /// gather on the process ThreadPool with entry-balanced parts.
  CommPlan(msg::Comm& comm, const DistMatrix<T>& d, CommScheme scheme,
           int gather_threads = 1);
  ~CommPlan();

  CommPlan(const CommPlan&) = delete;
  CommPlan& operator=(const CommPlan&) = delete;

  /// One distributed spMVM: y_local = A · x_local, under the plan's
  /// scheme. Bit-identical to dist_spmv with the same scheme.
  void spmv(std::span<const T> x_local, std::span<T> y_local);

  CommScheme scheme() const { return scheme_; }
  /// Products executed so far (steady-state iteration count).
  std::uint64_t iterations() const { return iterations_; }
  /// Entries gathered into the send buffer per iteration.
  std::size_t send_entries() const { return send_flat_.size(); }

 private:
  void local_gather(std::span<const T> x);
  void start_receives();  // (re-)post the persistent halo receives
  void start_sends();     // buffered: started and re-armed in one step
  void wait_receives();
  void comm_thread_loop();
  void signal_comm_thread();
  void join_iteration();  // wait for the comm thread, rethrow its error

  msg::Comm& comm_;
  const DistMatrix<T>& d_;
  const CommScheme scheme_;
  const int gather_threads_;

  /// send_idx flattened into one contiguous index array; peer p's
  /// entries are [send_offset_[p], send_offset_[p+1]).
  std::vector<index_t> send_flat_;
  std::vector<std::size_t> send_offset_;
  /// Precomputed entry-balanced part bounds over send_flat_ for the
  /// pooled gather (entries have uniform cost, so an even split is the
  /// nnz-balanced partition).
  std::vector<std::size_t> gather_bounds_;

  std::vector<T> sendbuf_;
  std::vector<T> halo_;
  std::vector<msg::Request> recv_reqs_;
  std::vector<msg::Request> send_reqs_;
  std::uint64_t iterations_ = 0;

  // Task mode: the persistent communication thread and its handshake.
  std::thread comm_thread_;
  std::mutex m_;
  std::condition_variable cv_;
  bool work_ = false;
  bool done_ = true;
  bool stop_ = false;
  std::exception_ptr comm_error_;
};

#define SPMVM_EXTERN_COMM_PLAN(T) extern template class CommPlan<T>
SPMVM_EXTERN_COMM_PLAN(float);
SPMVM_EXTERN_COMM_PLAN(double);
#undef SPMVM_EXTERN_COMM_PLAN

}  // namespace spmvm::dist
