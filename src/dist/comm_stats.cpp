#include "dist/comm_stats.hpp"

#include <algorithm>
#include <sstream>

#include "util/ascii.hpp"

namespace spmvm::dist {

std::uint64_t PartitionStats::wire_bytes(std::size_t scalar_size) const {
  return static_cast<std::uint64_t>(avg_send * nodes) * scalar_size;
}

double PartitionStats::nonlocal_fraction() const {
  return total_nnz == 0 ? 0.0
                        : static_cast<double>(nonlocal_nnz) /
                              static_cast<double>(total_nnz);
}

template <class T>
PartitionStats analyze_partition(const Csr<T>& a, const RowPartition& part) {
  PartitionStats s;
  s.nodes = part.n_parts();
  offset_t max_rank_nnz = 0;
  for (int r = 0; r < part.n_parts(); ++r) {
    const auto d = distribute(a, part, r);
    const offset_t rank_nnz = d.local.nnz() + d.nonlocal.nnz();
    s.total_nnz += rank_nnz;
    s.nonlocal_nnz += d.nonlocal.nnz();
    max_rank_nnz = std::max(max_rank_nnz, rank_nnz);
    s.max_halo = std::max(s.max_halo, d.n_halo);
    s.avg_halo += d.n_halo;
    s.max_send = std::max(s.max_send, d.send_total());
    s.avg_send += d.send_total();
    s.max_peers = std::max(s.max_peers, d.n_peers());
    s.avg_peers += d.n_peers();
  }
  s.avg_halo /= s.nodes;
  s.avg_send /= s.nodes;
  s.avg_peers /= s.nodes;
  if (s.total_nnz > 0)
    s.nnz_imbalance = static_cast<double>(max_rank_nnz) * s.nodes /
                      static_cast<double>(s.total_nnz);
  return s;
}

std::string format_stats(const PartitionStats& s) {
  std::ostringstream os;
  os << s.nodes << " ranks: halo avg " << fmt(s.avg_halo, 0) << " (max "
     << s.max_halo << "), peers avg " << fmt(s.avg_peers, 1) << " (max "
     << s.max_peers << "), nonlocal " << fmt(100.0 * s.nonlocal_fraction(), 1)
     << "% of nnz, imbalance " << fmt(s.nnz_imbalance, 2);
  return os.str();
}

template PartitionStats analyze_partition(const Csr<float>&,
                                          const RowPartition&);
template PartitionStats analyze_partition(const Csr<double>&,
                                          const RowPartition&);

}  // namespace spmvm::dist
