// Aggregate communication statistics of a partitioned matrix — the
// quantities that explain why a strong-scaling curve bends (Fig. 5):
// halo volume, peer counts, and nnz load balance per rank.
#pragma once

#include <string>

#include "dist/dist_matrix.hpp"

namespace spmvm::dist {

struct PartitionStats {
  int nodes = 0;
  offset_t total_nnz = 0;
  offset_t nonlocal_nnz = 0;   // entries referencing remote columns
  index_t max_halo = 0;        // largest per-rank halo
  double avg_halo = 0.0;
  index_t max_send = 0;
  double avg_send = 0.0;
  int max_peers = 0;
  double avg_peers = 0.0;
  double nnz_imbalance = 1.0;  // max over avg per-rank nnz

  /// Bytes on the wire per spMVM iteration (sends only; receives equal).
  std::uint64_t wire_bytes(std::size_t scalar_size) const;
  /// Fraction of matrix entries in the non-local parts.
  double nonlocal_fraction() const;
};

/// Distribute `a` over `part` (all ranks) and aggregate.
template <class T>
PartitionStats analyze_partition(const Csr<T>& a, const RowPartition& part);

/// One-line human-readable rendering.
std::string format_stats(const PartitionStats& s);

extern template PartitionStats analyze_partition(const Csr<float>&,
                                                 const RowPartition&);
extern template PartitionStats analyze_partition(const Csr<double>&,
                                                 const RowPartition&);

}  // namespace spmvm::dist
