#include "dist/dist_matrix.hpp"

#include <algorithm>
#include <map>

#include "util/error.hpp"

namespace spmvm::dist {

template <class T>
index_t DistMatrix<T>::send_total() const {
  index_t total = 0;
  for (const auto& v : send_idx) total += static_cast<index_t>(v.size());
  return total;
}

template <class T>
int DistMatrix<T>::n_peers() const {
  int peers = 0;
  for (int p = 0; p < n_parts; ++p) {
    if (p == rank) continue;
    if (recv_count[static_cast<std::size_t>(p)] > 0 ||
        !send_idx[static_cast<std::size_t>(p)].empty())
      ++peers;
  }
  return peers;
}

template <class T>
void DistMatrix<T>::build_plans(const formats::FormatRegistry<T>& registry,
                                std::string_view format,
                                const formats::PlanOptions& options) {
  formats::PlanOptions opts = options;
  // Column relabeling never applies: the column spaces (owned block,
  // halo slots) are fixed by the exchange layout.
  opts.permute_columns = PermuteColumns::no;
  auto lp = registry.build(format, local, opts);
  SPMVM_REQUIRE(lp->permutation() == nullptr,
                std::string("format '") + std::string(format) +
                    "' permutes rows; the halo exchange needs the "
                    "original row order");
  local_plan = std::move(lp);
  nonlocal_plan = n_halo > 0 ? registry.build(format, nonlocal, opts)
                             : nullptr;
  format_name = std::string(format);
}

template <class T>
void DistMatrix<T>::validate() const {
  local.validate();
  nonlocal.validate();
  SPMVM_REQUIRE(local.n_rows == n_local && nonlocal.n_rows == n_local,
                "local/nonlocal row counts must match owned rows");
  SPMVM_REQUIRE(local.n_cols == n_local, "local part must be square");
  SPMVM_REQUIRE(nonlocal.n_cols == n_halo, "nonlocal width must be halo size");
  SPMVM_REQUIRE(recv_count.size() == static_cast<std::size_t>(n_parts) &&
                    recv_offset.size() == static_cast<std::size_t>(n_parts) &&
                    send_idx.size() == static_cast<std::size_t>(n_parts),
                "per-peer arrays must have n_parts entries");
  SPMVM_REQUIRE(recv_count[static_cast<std::size_t>(rank)] == 0,
                "no self-communication");
  index_t halo_seen = 0;
  for (int p = 0; p < n_parts; ++p) {
    SPMVM_REQUIRE(recv_offset[static_cast<std::size_t>(p)] == halo_seen,
                  "halo groups must be contiguous in rank order");
    halo_seen += recv_count[static_cast<std::size_t>(p)];
    for (const index_t i : send_idx[static_cast<std::size_t>(p)])
      SPMVM_REQUIRE(i >= 0 && i < n_local, "send index out of owned range");
  }
  SPMVM_REQUIRE(halo_seen == n_halo, "halo groups must cover the halo");
  for (index_t h = 0; h < n_halo; ++h) {
    const int owner = partition.owner(halo_global[static_cast<std::size_t>(h)]);
    SPMVM_REQUIRE(owner != rank, "halo entry owned locally");
  }
}

template <class T>
DistMatrix<T> distribute(const Csr<T>& a, const RowPartition& part,
                         int rank) {
  SPMVM_REQUIRE(a.n_rows == a.n_cols,
                "distributed spMVM expects a square matrix");
  SPMVM_REQUIRE(part.n_rows() == a.n_rows, "partition does not cover matrix");
  SPMVM_REQUIRE(rank >= 0 && rank < part.n_parts(), "rank out of range");

  DistMatrix<T> d;
  d.rank = rank;
  d.n_parts = part.n_parts();
  d.partition = part;
  const index_t row0 = part.begin(rank);
  const index_t row1 = part.end(rank);
  d.n_local = row1 - row0;

  // Pass 1: find all non-owned columns referenced by my rows.
  std::vector<index_t> needed;
  for (index_t i = row0; i < row1; ++i)
    for (offset_t k = a.row_ptr[static_cast<std::size_t>(i)];
         k < a.row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      const index_t c = a.col_idx[static_cast<std::size_t>(k)];
      if (c < row0 || c >= row1) needed.push_back(c);
    }
  std::sort(needed.begin(), needed.end());
  needed.erase(std::unique(needed.begin(), needed.end()), needed.end());

  // Halo layout: `needed` is sorted by global index, hence already grouped
  // by owning rank (contiguous row blocks own contiguous index ranges).
  d.n_halo = static_cast<index_t>(needed.size());
  d.halo_global = needed;
  d.recv_offset.assign(static_cast<std::size_t>(d.n_parts), 0);
  d.recv_count.assign(static_cast<std::size_t>(d.n_parts), 0);
  std::map<index_t, index_t> halo_slot;  // global col -> halo index
  for (index_t h = 0; h < d.n_halo; ++h) {
    halo_slot[needed[static_cast<std::size_t>(h)]] = h;
    d.recv_count[static_cast<std::size_t>(
        part.owner(needed[static_cast<std::size_t>(h)]))]++;
  }
  index_t acc = 0;
  for (int p = 0; p < d.n_parts; ++p) {
    d.recv_offset[static_cast<std::size_t>(p)] = acc;
    acc += d.recv_count[static_cast<std::size_t>(p)];
  }

  // Pass 2: split my rows into local and non-local parts.
  Coo<T> local_coo(d.n_local, d.n_local);
  Coo<T> nonlocal_coo(d.n_local, std::max<index_t>(d.n_halo, 0));
  for (index_t i = row0; i < row1; ++i)
    for (offset_t k = a.row_ptr[static_cast<std::size_t>(i)];
         k < a.row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      const index_t c = a.col_idx[static_cast<std::size_t>(k)];
      const T v = a.val[static_cast<std::size_t>(k)];
      if (c >= row0 && c < row1) {
        local_coo.add(i - row0, c - row0, v);
      } else {
        nonlocal_coo.add(i - row0, halo_slot.at(c), v);
      }
    }
  d.local = Csr<T>::from_coo(std::move(local_coo));
  d.nonlocal = Csr<T>::from_coo(std::move(nonlocal_coo));

  // Pass 3 (global knowledge): what every other rank needs from me is what
  // I must send — the same scan run from the peer's perspective.
  d.send_idx.assign(static_cast<std::size_t>(d.n_parts), {});
  for (int p = 0; p < d.n_parts; ++p) {
    if (p == rank) continue;
    std::vector<index_t> wanted;
    for (index_t i = part.begin(p); i < part.end(p); ++i)
      for (offset_t k = a.row_ptr[static_cast<std::size_t>(i)];
           k < a.row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
        const index_t c = a.col_idx[static_cast<std::size_t>(k)];
        if (c >= row0 && c < row1) wanted.push_back(c - row0);
      }
    std::sort(wanted.begin(), wanted.end());
    wanted.erase(std::unique(wanted.begin(), wanted.end()), wanted.end());
    d.send_idx[static_cast<std::size_t>(p)] = std::move(wanted);
  }
  d.build_plans(formats::registry<T>(), "csr");
  return d;
}

#define SPMVM_INSTANTIATE_DIST(T)                                     \
  template struct DistMatrix<T>;                                      \
  template DistMatrix<T> distribute(const Csr<T>&, const RowPartition&, int)

SPMVM_INSTANTIATE_DIST(float);
SPMVM_INSTANTIATE_DIST(double);

}  // namespace spmvm::dist
