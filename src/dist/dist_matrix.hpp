// Per-rank view of a distributed sparse matrix (Sec. III-A).
//
// Each rank owns a contiguous block of rows and the matching block of the
// input/output vectors. Its rows are split into
//   - a *local* part referencing owned vector entries (columns remapped to
//     [0, n_local)), and
//   - a *non-local* part referencing halo entries received from other
//     ranks (columns remapped to halo-buffer slots).
// The communication pattern records, per peer, which owned entries must
// be gathered and sent, and how many halo entries arrive.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "dist/partition.hpp"
#include "formats/registry.hpp"
#include "sparse/csr.hpp"

namespace spmvm::dist {

template <class T>
struct DistMatrix {
  int rank = 0;
  int n_parts = 1;
  RowPartition partition;
  index_t n_local = 0;  // owned rows == owned vector entries
  index_t n_halo = 0;   // remote vector entries this rank needs

  Csr<T> local;     // n_local x n_local, owned columns only
  Csr<T> nonlocal;  // n_local x n_halo, halo columns only

  /// Halo layout: slots are grouped by owning rank, ascending global
  /// index within each group. recv_offset[p] / recv_count[p] describe
  /// rank p's group (recv_count[rank] == 0).
  std::vector<index_t> recv_offset;
  std::vector<index_t> recv_count;
  /// Global column index of each halo slot (diagnostics / tests).
  std::vector<index_t> halo_global;

  /// send_idx[p]: local (0-based) indices of owned entries to gather and
  /// send to rank p, in the order p expects them.
  std::vector<std::vector<index_t>> send_idx;

  /// Kernel plans for the two parts, resolved through the format
  /// registry (distribute() defaults them to "csr"). The halo layout
  /// fixes the row order, so only non-row-sorting formats qualify.
  std::string format_name = "csr";
  std::shared_ptr<const formats::FormatPlan<T>> local_plan;
  std::shared_ptr<const formats::FormatPlan<T>> nonlocal_plan;

  /// (Re)build both kernel plans as `format`. Throws for formats that
  /// permute rows (jds, sell_c_sigma, pjds, auto): the halo exchange
  /// addresses vector blocks by original row order.
  void build_plans(const formats::FormatRegistry<T>& registry,
                   std::string_view format,
                   const formats::PlanOptions& options = {});

  index_t send_total() const;
  /// Ranks this rank exchanges data with (send or receive).
  int n_peers() const;

  void validate() const;
};

/// Build rank `rank`'s view from the (replicated) global matrix. The send
/// lists are derived from global knowledge; distribute_with_comm below
/// produces the same result using only message exchange.
template <class T>
DistMatrix<T> distribute(const Csr<T>& a, const RowPartition& part, int rank);

#define SPMVM_EXTERN_DIST(T)                                             \
  extern template struct DistMatrix<T>;                                  \
  extern template DistMatrix<T> distribute(const Csr<T>&,                \
                                           const RowPartition&, int)

SPMVM_EXTERN_DIST(float);
SPMVM_EXTERN_DIST(double);
#undef SPMVM_EXTERN_DIST

}  // namespace spmvm::dist
