#include "dist/dist_solver.hpp"

#include <cmath>
#include <vector>

#include "dist/comm_plan.hpp"
#include "util/error.hpp"

namespace spmvm::dist {

namespace {
template <class T>
double local_dot(std::span<const T> a, std::span<const T> b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  return acc;
}
}  // namespace

template <class T>
DistCgResult dist_cg(msg::Comm& comm, const DistMatrix<T>& a,
                     std::span<const T> b_local, std::span<T> x_local,
                     double tol, int max_iterations, CommScheme scheme) {
  const auto n = static_cast<std::size_t>(a.n_local);
  SPMVM_REQUIRE(b_local.size() >= n && x_local.size() >= n,
                "local blocks too small");
  std::vector<T> r(n), p(n), ap(n);
  // One persistent halo-exchange plan for the whole solve: every CG
  // iteration reuses the same buffers, requests and (in task mode)
  // communication thread.
  CommPlan<T> plan(comm, a, scheme);

  // r = b - A x0; p = r.
  plan.spmv(std::span<const T>(x_local.data(), n), std::span<T>(ap));
  for (std::size_t i = 0; i < n; ++i) r[i] = b_local[i] - ap[i];
  p.assign(r.begin(), r.end());

  const std::span<const T> b_n(b_local.data(), n);
  const double bnorm =
      std::sqrt(comm.allreduce_sum(local_dot<T>(b_n, b_n)));
  const double stop = tol * (bnorm > 0.0 ? bnorm : 1.0);
  double rr = comm.allreduce_sum(local_dot<T>(r, r));

  DistCgResult result;
  result.residual_norm = std::sqrt(rr);
  if (result.residual_norm <= stop) {
    result.converged = true;
    return result;
  }

  for (int it = 0; it < max_iterations; ++it) {
    plan.spmv(std::span<const T>(p), std::span<T>(ap));
    const double pap = comm.allreduce_sum(local_dot<T>(p, ap));
    if (pap <= 0.0) break;
    const T alpha = static_cast<T>(rr / pap);
    for (std::size_t i = 0; i < n; ++i) {
      x_local[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    const double rr_new = comm.allreduce_sum(local_dot<T>(r, r));
    result.iterations = it + 1;
    result.residual_norm = std::sqrt(rr_new);
    if (result.residual_norm <= stop) {
      result.converged = true;
      break;
    }
    const T beta = static_cast<T>(rr_new / rr);
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
    rr = rr_new;
  }
  return result;
}

template DistCgResult dist_cg(msg::Comm&, const DistMatrix<float>&,
                              std::span<const float>, std::span<float>,
                              double, int, CommScheme);
template DistCgResult dist_cg(msg::Comm&, const DistMatrix<double>&,
                              std::span<const double>, std::span<double>,
                              double, int, CommScheme);

}  // namespace spmvm::dist
