// Distributed Conjugate Gradient over the message runtime — spMVM via
// the halo-exchange machinery (any communication scheme), dot products
// via allreduce. The "production-grade solver" integration the paper's
// outlook points to.
#pragma once

#include <span>

#include "dist/spmv_modes.hpp"

namespace spmvm::dist {

struct DistCgResult {
  int iterations = 0;
  double residual_norm = 0.0;
  bool converged = false;
};

/// Solve A·x = b (A symmetric positive definite, distributed by rows).
/// `b_local`/`x_local` are this rank's blocks; every rank returns the
/// same iteration count and residual.
template <class T>
DistCgResult dist_cg(msg::Comm& comm, const DistMatrix<T>& a,
                     std::span<const T> b_local, std::span<T> x_local,
                     double tol = 1e-10, int max_iterations = 1000,
                     CommScheme scheme = CommScheme::task_mode);

extern template DistCgResult dist_cg(msg::Comm&, const DistMatrix<float>&,
                                     std::span<const float>,
                                     std::span<float>, double, int,
                                     CommScheme);
extern template DistCgResult dist_cg(msg::Comm&, const DistMatrix<double>&,
                                     std::span<const double>,
                                     std::span<double>, double, int,
                                     CommScheme);

}  // namespace spmvm::dist
