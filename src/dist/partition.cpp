#include "dist/partition.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace spmvm::dist {

RowPartition::RowPartition(std::vector<index_t> offsets)
    : offsets_(std::move(offsets)) {
  SPMVM_REQUIRE(offsets_.size() >= 2, "partition needs at least one part");
  SPMVM_REQUIRE(offsets_.front() == 0, "partition must start at row 0");
  for (std::size_t r = 1; r < offsets_.size(); ++r)
    SPMVM_REQUIRE(offsets_[r - 1] <= offsets_[r],
                  "partition offsets must be non-decreasing");
}

int RowPartition::owner(index_t row) const {
  SPMVM_REQUIRE(row >= 0 && row < n_rows(), "row outside the partition");
  const auto it =
      std::upper_bound(offsets_.begin(), offsets_.end(), row);
  return static_cast<int>(it - offsets_.begin()) - 1;
}

RowPartition partition_uniform(index_t n_rows, int n_parts) {
  SPMVM_REQUIRE(n_parts >= 1, "need at least one part");
  std::vector<index_t> offsets(static_cast<std::size_t>(n_parts) + 1, 0);
  const index_t base = n_rows / n_parts;
  const index_t extra = n_rows % n_parts;
  for (int r = 0; r < n_parts; ++r)
    offsets[static_cast<std::size_t>(r) + 1] =
        offsets[static_cast<std::size_t>(r)] + base + (r < extra ? 1 : 0);
  return RowPartition(std::move(offsets));
}

template <class T>
RowPartition partition_balanced_nnz(const Csr<T>& a, int n_parts) {
  SPMVM_REQUIRE(n_parts >= 1, "need at least one part");
  const double target = static_cast<double>(a.nnz()) / n_parts;
  std::vector<index_t> offsets;
  offsets.reserve(static_cast<std::size_t>(n_parts) + 1);
  offsets.push_back(0);
  index_t row = 0;
  for (int r = 0; r < n_parts - 1; ++r) {
    const offset_t goal = static_cast<offset_t>(target * (r + 1));
    while (row < a.n_rows &&
           a.row_ptr[static_cast<std::size_t>(row) + 1] < goal)
      ++row;
    // `row` is the first row whose cumulative nnz reaches the goal; cut
    // before or after it, whichever lands closer to the goal.
    index_t cut = row;
    if (row < a.n_rows &&
        a.row_ptr[static_cast<std::size_t>(row) + 1] - goal <
            goal - a.row_ptr[static_cast<std::size_t>(row)])
      cut = row + 1;
    // Keep at least one row per remaining part when possible.
    cut = std::min<index_t>(cut, a.n_rows - (n_parts - 1 - r));
    cut = std::max(cut, offsets.back());
    offsets.push_back(cut);
    row = cut;
  }
  offsets.push_back(a.n_rows);
  return RowPartition(std::move(offsets));
}

template RowPartition partition_balanced_nnz(const Csr<float>&, int);
template RowPartition partition_balanced_nnz(const Csr<double>&, int);

}  // namespace spmvm::dist
