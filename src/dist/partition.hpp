// Row-block partitioning of a sparse matrix across ranks.
#pragma once

#include <vector>

#include "sparse/csr.hpp"
#include "util/types.hpp"

namespace spmvm::dist {

/// Contiguous row ranges: rank r owns rows [offsets[r], offsets[r+1]).
class RowPartition {
 public:
  RowPartition() = default;
  explicit RowPartition(std::vector<index_t> offsets);

  int n_parts() const { return static_cast<int>(offsets_.size()) - 1; }
  index_t n_rows() const { return offsets_.back(); }
  index_t begin(int part) const {
    return offsets_[static_cast<std::size_t>(part)];
  }
  index_t end(int part) const {
    return offsets_[static_cast<std::size_t>(part) + 1];
  }
  index_t count(int part) const { return end(part) - begin(part); }

  /// Which part owns a global row/column index (binary search).
  int owner(index_t row) const;

  const std::vector<index_t>& offsets() const { return offsets_; }

 private:
  std::vector<index_t> offsets_;
};

/// Equal row counts (remainder spread over the first ranks).
RowPartition partition_uniform(index_t n_rows, int n_parts);

/// Contiguous blocks balanced by non-zero count — the sensible choice for
/// matrices with varying row lengths.
template <class T>
RowPartition partition_balanced_nnz(const Csr<T>& a, int n_parts);

extern template RowPartition partition_balanced_nnz(const Csr<float>&, int);
extern template RowPartition partition_balanced_nnz(const Csr<double>&, int);

}  // namespace spmvm::dist
