// Shared kernel application for the distributed spMVM paths. Both the
// legacy single-shot dist_spmv and the persistent CommPlan dispatch the
// local/non-local products through these helpers, so the two paths are
// bit-identical by construction. Kernels are reached through the
// execution engine's sanctioned dispatch surface (exec/dispatch.hpp).
#pragma once

#include <span>
#include <vector>

#include "dist/dist_matrix.hpp"
#include "exec/dispatch.hpp"

namespace spmvm::dist::detail {

/// y = local · x, dispatched through the rank's format plan (falls back
/// to the raw CSR kernel for hand-assembled DistMatrix instances).
template <class T>
inline void apply_local(const DistMatrix<T>& d, std::span<const T> x,
                        std::span<T> y) {
  if (d.local_plan != nullptr)
    exec::plan_spmv(*d.local_plan, x, y);
  else
    exec::host_spmv(d.local, x, y);
}

/// y += nonlocal · halo (the non-local contribution). Plans without a
/// native fused kernel apply and accumulate via a scratch vector.
template <class T>
inline void apply_nonlocal(const DistMatrix<T>& d, std::span<const T> halo,
                           std::span<T> y) {
  if (d.n_halo == 0) return;
  if (d.nonlocal_plan == nullptr) {
    exec::host_spmv_axpby(d.nonlocal, halo, y, T{1}, T{1});
    return;
  }
  if (exec::plan_spmv_axpby(*d.nonlocal_plan, halo, y, T{1}, T{1})) return;
  std::vector<T> tmp(static_cast<std::size_t>(d.n_local));
  exec::plan_spmv(*d.nonlocal_plan, halo, std::span<T>(tmp));
  for (std::size_t i = 0; i < tmp.size(); ++i) y[i] += tmp[i];
}

}  // namespace spmvm::dist::detail
