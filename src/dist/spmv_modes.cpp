#include "dist/spmv_modes.hpp"

#include <cmath>
#include <cstdint>
#include <thread>

#include "dist/comm_plan.hpp"
#include "dist/spmv_apply.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace spmvm::dist {

const char* to_string(CommScheme scheme) {
  switch (scheme) {
    case CommScheme::vector_mode:
      return "vector mode";
    case CommScheme::naive_overlap:
      return "naive overlap";
    case CommScheme::task_mode:
      return "task mode";
  }
  return "?";
}

namespace {
constexpr int kTagHalo = 101;

const char* scheme_span_name(CommScheme scheme) {
  switch (scheme) {
    case CommScheme::vector_mode:
      return "dist/spmv_vector";
    case CommScheme::naive_overlap:
      return "dist/spmv_naive_overlap";
    case CommScheme::task_mode:
      return "dist/spmv_task";
  }
  return "dist/spmv";
}

/// Always-on comm accounting (bytes sent into the halo exchange).
template <class T>
void record_comm(const DistMatrix<T>& d, std::size_t send_entries) {
  static obs::Counter& c_halo = obs::counter("comm.halo_bytes");
  static obs::Counter& c_send = obs::counter("comm.send_bytes");
  c_halo.add(static_cast<std::uint64_t>(d.n_halo) * sizeof(T));
  c_send.add(static_cast<std::uint64_t>(send_entries) * sizeof(T));
}

/// Gather the owned entries each peer needs into the contiguous send
/// buffer ("local gather" of Fig. 4); returns per-peer offsets.
template <class T>
std::vector<std::size_t> gather_sendbuf(const DistMatrix<T>& d,
                                        std::span<const T> x_local,
                                        std::vector<T>& sendbuf) {
  std::vector<std::size_t> offset(static_cast<std::size_t>(d.n_parts) + 1, 0);
  for (int p = 0; p < d.n_parts; ++p)
    offset[static_cast<std::size_t>(p) + 1] =
        offset[static_cast<std::size_t>(p)] +
        d.send_idx[static_cast<std::size_t>(p)].size();
  sendbuf.resize(offset.back());
  for (int p = 0; p < d.n_parts; ++p) {
    std::size_t at = offset[static_cast<std::size_t>(p)];
    for (const index_t i : d.send_idx[static_cast<std::size_t>(p)])
      sendbuf[at++] = x_local[static_cast<std::size_t>(i)];
  }
  return offset;
}

/// Post all halo receives and sends; returns the pending requests.
template <class T>
std::vector<msg::Request> post_exchange(msg::Comm& comm,
                                        const DistMatrix<T>& d,
                                        const std::vector<T>& sendbuf,
                                        const std::vector<std::size_t>& offs,
                                        std::vector<T>& halo) {
  halo.resize(static_cast<std::size_t>(d.n_halo));
  std::vector<msg::Request> reqs;
  for (int p = 0; p < d.n_parts; ++p) {
    const auto count = d.recv_count[static_cast<std::size_t>(p)];
    if (count > 0)
      reqs.push_back(comm.irecv_t<T>(
          p, kTagHalo,
          std::span<T>(halo.data() +
                           d.recv_offset[static_cast<std::size_t>(p)],
                       static_cast<std::size_t>(count))));
  }
  for (int p = 0; p < d.n_parts; ++p) {
    const auto n =
        offs[static_cast<std::size_t>(p) + 1] - offs[static_cast<std::size_t>(p)];
    if (n > 0)
      reqs.push_back(comm.isend_t<T>(
          p, kTagHalo,
          std::span<const T>(sendbuf.data() + offs[static_cast<std::size_t>(p)],
                             n)));
  }
  return reqs;
}

using detail::apply_local;
using detail::apply_nonlocal;
}  // namespace

template <class T>
void handshake_pattern(msg::Comm& comm, const DistMatrix<T>& d) {
  SPMVM_REQUIRE(comm.size() == d.n_parts,
                "communicator size must match the partition");
  SPMVM_REQUIRE(comm.rank() == d.rank, "rank mismatch");
  // Tell every owner which of its entries I need (global indices); check
  // that what peers request from me matches my precomputed send lists.
  std::vector<std::vector<index_t>> requests(
      static_cast<std::size_t>(d.n_parts));
  for (int p = 0; p < d.n_parts; ++p) {
    const auto off = d.recv_offset[static_cast<std::size_t>(p)];
    const auto cnt = d.recv_count[static_cast<std::size_t>(p)];
    requests[static_cast<std::size_t>(p)].assign(
        d.halo_global.begin() + off, d.halo_global.begin() + off + cnt);
  }
  const auto wanted_from_me = comm.alltoall_t<index_t>(requests);
  const index_t row0 = d.partition.begin(d.rank);
  for (int p = 0; p < d.n_parts; ++p) {
    if (p == d.rank) continue;
    const auto& got = wanted_from_me[static_cast<std::size_t>(p)];
    const auto& expected = d.send_idx[static_cast<std::size_t>(p)];
    SPMVM_REQUIRE(got.size() == expected.size(),
                  "send-list size mismatch in pattern handshake");
    for (std::size_t k = 0; k < got.size(); ++k)
      SPMVM_REQUIRE(got[k] - row0 == expected[k],
                    "send-list entry mismatch in pattern handshake");
  }
}

template <class T>
void dist_spmv(msg::Comm& comm, const DistMatrix<T>& d,
               std::span<const T> x_local, std::span<T> y_local,
               CommScheme scheme, std::vector<T>& halo,
               std::vector<T>& sendbuf) {
  SPMVM_REQUIRE(x_local.size() >= static_cast<std::size_t>(d.n_local),
                "x block too small");
  SPMVM_REQUIRE(y_local.size() >= static_cast<std::size_t>(d.n_local),
                "y block too small");

  SPMVM_TRACE_SPAN(scheme_span_name(scheme));
  switch (scheme) {
    case CommScheme::vector_mode: {
      // Communication first, then one full spMVM step.
      std::vector<std::size_t> offs;
      {
        SPMVM_TRACE_SPAN("comm/local_gather");
        offs = gather_sendbuf(d, x_local, sendbuf);
      }
      record_comm(d, sendbuf.size());
      std::vector<msg::Request> reqs;
      {
        SPMVM_TRACE_SPAN("comm/post_exchange");
        reqs = post_exchange(comm, d, sendbuf, offs, halo);
      }
      {
        SPMVM_TRACE_SPAN("comm/waitall",
                         static_cast<std::uint64_t>(d.n_halo) * sizeof(T));
        comm.waitall(reqs);
      }
      {
        SPMVM_TRACE_SPAN("kernel/local");
        apply_local<T>(d, x_local, y_local);
      }
      {
        SPMVM_TRACE_SPAN("kernel/nonlocal");
        apply_nonlocal<T>(d, halo, y_local);
      }
      break;
    }
    case CommScheme::naive_overlap: {
      // Nonblocking MPI posted around the local spMVM; whether anything
      // actually overlaps depends on the library's async progress.
      std::vector<std::size_t> offs;
      {
        SPMVM_TRACE_SPAN("comm/local_gather");
        offs = gather_sendbuf(d, x_local, sendbuf);
      }
      record_comm(d, sendbuf.size());
      std::vector<msg::Request> reqs;
      {
        SPMVM_TRACE_SPAN("comm/post_exchange");
        reqs = post_exchange(comm, d, sendbuf, offs, halo);
      }
      {
        SPMVM_TRACE_SPAN("kernel/local");
        apply_local<T>(d, x_local, y_local);  // overlaps (maybe) with transfer
      }
      {
        SPMVM_TRACE_SPAN("comm/waitall",
                         static_cast<std::uint64_t>(d.n_halo) * sizeof(T));
        comm.waitall(reqs);
      }
      {
        SPMVM_TRACE_SPAN("kernel/nonlocal");
        apply_nonlocal<T>(d, halo, y_local);
      }
      break;
    }
    case CommScheme::task_mode: {
      // Dedicated communication thread (thread 0 of Fig. 4): gather,
      // exchange, waitall — while this thread computes the local part.
      std::vector<std::size_t> offs;
      {
        SPMVM_TRACE_SPAN("comm/local_gather");
        offs = gather_sendbuf(d, x_local, sendbuf);
      }
      record_comm(d, sendbuf.size());
      std::exception_ptr comm_error;
      std::thread comm_thread([&] {
        obs::set_thread_name("comm thread");
        try {
          std::vector<msg::Request> reqs;
          {
            SPMVM_TRACE_SPAN("comm/post_exchange");
            reqs = post_exchange(comm, d, sendbuf, offs, halo);
          }
          SPMVM_TRACE_SPAN("comm/waitall",
                           static_cast<std::uint64_t>(d.n_halo) * sizeof(T));
          comm.waitall(reqs);
        } catch (...) {
          comm_error = std::current_exception();
        }
      });
      {
        SPMVM_TRACE_SPAN("kernel/local");
        apply_local<T>(d, x_local, y_local);
      }
      comm_thread.join();
      if (comm_error) std::rethrow_exception(comm_error);
      {
        SPMVM_TRACE_SPAN("kernel/nonlocal");
        apply_nonlocal<T>(d, halo, y_local);
      }
      break;
    }
  }
}

template <class T>
std::vector<T> run_power_iterations(msg::Comm& comm, const DistMatrix<T>& d,
                                    std::span<const T> x0_local,
                                    int iterations, CommScheme scheme) {
  std::vector<T> x(x0_local.begin(), x0_local.end());
  std::vector<T> y(static_cast<std::size_t>(d.n_local));
  // A single persistent plan carries every iteration's halo exchange;
  // results are bit-identical to per-call dist_spmv.
  CommPlan<T> plan(comm, d, scheme);
  for (int it = 0; it < iterations; ++it) {
    plan.spmv(std::span<const T>(x), std::span<T>(y));
    // Global normalization keeps values bounded and adds a collective,
    // like a real eigensolver iteration.
    double local_sq = 0.0;
    for (const T v : y) local_sq += static_cast<double>(v) * v;
    const double norm = std::sqrt(comm.allreduce_sum(local_sq));
    SPMVM_REQUIRE(norm > 0.0, "iteration collapsed to zero vector");
    for (std::size_t i = 0; i < y.size(); ++i)
      x[i] = static_cast<T>(y[i] / norm);
  }
  return x;
}

#define SPMVM_INSTANTIATE_MODES(T)                                        \
  template void handshake_pattern(msg::Comm&, const DistMatrix<T>&);      \
  template void dist_spmv(msg::Comm&, const DistMatrix<T>&,               \
                          std::span<const T>, std::span<T>, CommScheme,   \
                          std::vector<T>&, std::vector<T>&);              \
  template std::vector<T> run_power_iterations(                           \
      msg::Comm&, const DistMatrix<T>&, std::span<const T>, int, CommScheme)

SPMVM_INSTANTIATE_MODES(float);
SPMVM_INSTANTIATE_MODES(double);

}  // namespace spmvm::dist
