// Distributed spMVM with the paper's three communication schemes
// (Sec. III-A), running functionally on the in-process message runtime:
//
//   vector mode    — halo exchange completes before a single full spMVM
//                    (no overlap; vector-computer programming style),
//   naive overlap  — nonblocking MPI posted around the *local* spMVM, the
//                    non-local part applied after waitall,
//   task mode      — a dedicated communication thread per rank runs the
//                    gather/exchange while the compute thread does the
//                    local spMVM (Fig. 4).
//
// All three produce bit-identical results; the differences are purely in
// when communication may overlap computation (timed by cluster_model).
#pragma once

#include <span>

#include "dist/dist_matrix.hpp"
#include "msg/runtime.hpp"

namespace spmvm::dist {

enum class CommScheme { vector_mode, naive_overlap, task_mode };

const char* to_string(CommScheme scheme);

/// Verify at runtime, by message exchange, that the locally computed send
/// lists match what each peer expects (the pattern handshake a real MPI
/// code performs at setup). Throws on mismatch.
template <class T>
void handshake_pattern(msg::Comm& comm, const DistMatrix<T>& d);

/// One distributed spMVM: y_local = A · x (x given as the owned block).
/// `halo` and `sendbuf` are scratch buffers reused across iterations
/// (resized on demand).
template <class T>
void dist_spmv(msg::Comm& comm, const DistMatrix<T>& d,
               std::span<const T> x_local, std::span<T> y_local,
               CommScheme scheme, std::vector<T>& halo,
               std::vector<T>& sendbuf);

/// Convenience wrapper: run `iterations` products y = A·x with x <- y/|y|
/// normalization between iterations (a power-iteration-like workload),
/// return the final local block. Used by integration tests.
template <class T>
std::vector<T> run_power_iterations(msg::Comm& comm, const DistMatrix<T>& d,
                                    std::span<const T> x0_local,
                                    int iterations, CommScheme scheme);

#define SPMVM_EXTERN_MODES(T)                                              \
  extern template void handshake_pattern(msg::Comm&, const DistMatrix<T>&); \
  extern template void dist_spmv(msg::Comm&, const DistMatrix<T>&,          \
                                 std::span<const T>, std::span<T>,          \
                                 CommScheme, std::vector<T>&,               \
                                 std::vector<T>&);                          \
  extern template std::vector<T> run_power_iterations(                      \
      msg::Comm&, const DistMatrix<T>&, std::span<const T>, int, CommScheme)

SPMVM_EXTERN_MODES(float);
SPMVM_EXTERN_MODES(double);
#undef SPMVM_EXTERN_MODES

}  // namespace spmvm::dist
