#include "dist/timeline.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/error.hpp"

namespace spmvm::dist {

void Timeline::add(std::string actor, std::string label, double t0,
                   double t1) {
  SPMVM_REQUIRE(t1 >= t0 && t0 >= 0.0, "event interval must be ordered");
  events_.push_back({std::move(actor), std::move(label), t0, t1});
}

double Timeline::duration() const {
  double end = 0.0;
  for (const auto& e : events_) end = std::max(end, e.t1);
  return end;
}

std::string Timeline::render(int width) const {
  SPMVM_REQUIRE(width >= 16, "timeline width too small");
  const double total = duration();
  std::ostringstream os;
  if (total <= 0.0) {
    os << "(empty timeline)\n";
    return os.str();
  }

  std::vector<std::string> actors;
  for (const auto& e : events_)
    if (std::find(actors.begin(), actors.end(), e.actor) == actors.end())
      actors.push_back(e.actor);

  std::size_t label_w = 0;
  for (const auto& a : actors) label_w = std::max(label_w, a.size());

  for (const auto& actor : actors) {
    std::string row(static_cast<std::size_t>(width), '.');
    for (const auto& e : events_) {
      if (e.actor != actor) continue;
      auto c0 = static_cast<int>(e.t0 / total * (width - 1));
      auto c1 = static_cast<int>(e.t1 / total * (width - 1));
      c1 = std::max(c1, c0);
      row[static_cast<std::size_t>(c0)] = '[';
      row[static_cast<std::size_t>(c1)] = ']';
      // Fill with the first letters of the label.
      for (int c = c0 + 1; c < c1; ++c) {
        const std::size_t li = static_cast<std::size_t>(c - c0 - 1);
        row[static_cast<std::size_t>(c)] =
            li < e.label.size() ? e.label[li] : '-';
      }
    }
    os << actor << std::string(label_w - actor.size(), ' ') << " |" << row
       << "|\n";
  }
  char end_label[32];
  std::snprintf(end_label, sizeof(end_label), "%.1f us", total * 1e6);
  os << std::string(label_w, ' ') << " 0"
     << std::string(static_cast<std::size_t>(
                        std::max(1, width - 1 -
                                        static_cast<int>(std::string(end_label).size()))),
                    ' ')
     << end_label << "\n";
  return os.str();
}

}  // namespace spmvm::dist
