#include "dist/timeline.hpp"

#include <algorithm>

#include "obs/trace_export.hpp"
#include "util/error.hpp"

namespace spmvm::dist {

void Timeline::add(std::string actor, std::string label, double t0,
                   double t1) {
  SPMVM_REQUIRE(t1 >= t0 && t0 >= 0.0, "event interval must be ordered");
  events_.push_back({std::move(actor), std::move(label), t0, t1});
}

double Timeline::duration() const {
  double end = 0.0;
  for (const auto& e : events_) end = std::max(end, e.t1);
  return end;
}

std::string Timeline::render(int width) const {
  // Group events into per-actor rows (first-appearance order) and hand
  // the interval scaling/painting to the shared obs renderer.
  std::vector<obs::IntervalRow> rows;
  for (const auto& e : events_) {
    auto it = std::find_if(rows.begin(), rows.end(), [&](const auto& r) {
      return r.actor == e.actor;
    });
    if (it == rows.end()) {
      rows.push_back({e.actor, {}});
      it = rows.end() - 1;
    }
    it->intervals.push_back({e.label, e.t0, e.t1});
  }
  return obs::render_interval_rows(rows, duration(), width);
}

Timeline timeline_from_trace(const std::vector<obs::TraceEvent>& events,
                             const std::vector<obs::TraceThread>& threads,
                             std::uint16_t max_depth) {
  std::uint64_t origin = ~std::uint64_t{0};
  for (const auto& e : events) origin = std::min(origin, e.t0_ns);
  Timeline tl;
  for (const auto& t : threads) {
    // Rank-lane threads get an "rN/" actor prefix so a merged
    // multi-rank trace reads as one timeline with distinguishable rows;
    // unranked threads keep their plain name (single-process traces are
    // unchanged).
    std::string actor =
        t.name.empty() ? "thread " + std::to_string(t.tid) : t.name;
    if (t.rank >= 0) actor = "r" + std::to_string(t.rank) + "/" + actor;
    for (const auto& e : events) {
      if (e.tid != t.tid || e.depth > max_depth) continue;
      tl.add(actor, e.name ? e.name : "?",
             static_cast<double>(e.t0_ns - origin) * 1e-9,
             static_cast<double>(e.t1_ns - origin) * 1e-9);
    }
  }
  return tl;
}

}  // namespace spmvm::dist
