// Event timeline for one spMVM iteration (Fig. 4 of the paper): which
// actor (host thread 0 / host thread 1 / the GPU) does what, when.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace spmvm::dist {

struct TimelineEvent {
  std::string actor;  // "thread 0", "thread 1", "GPGPU"
  std::string label;  // "MPI_Irecv", "local gather", ...
  double t0 = 0.0;    // seconds from iteration start
  double t1 = 0.0;
};

class Timeline {
 public:
  void add(std::string actor, std::string label, double t0, double t1);

  const std::vector<TimelineEvent>& events() const { return events_; }

  /// Total span of all recorded events.
  double duration() const;

  /// Render as rows of labeled intervals over a scaled time axis, one row
  /// per actor, in first-appearance order (ASCII Fig. 4). Delegates to
  /// obs::render_interval_rows, the renderer shared with ascii_trace().
  std::string render(int width = 72) const;

 private:
  std::vector<TimelineEvent> events_;
};

/// Build a Timeline from recorded trace spans: one actor per thread
/// (named via obs::set_thread_name, else "thread N"), spans at depth
/// <= max_depth, times rebased so the earliest span starts at 0.
/// Threads assigned to a rank lane (obs::set_rank) get an "rN/" actor
/// prefix, so a merged multi-rank trace renders as one Fig. 4 with a
/// row group per rank. This renders a *measured* Fig. 4 next to the
/// modeled one.
Timeline timeline_from_trace(const std::vector<obs::TraceEvent>& events,
                             const std::vector<obs::TraceThread>& threads,
                             std::uint16_t max_depth = 1);

}  // namespace spmvm::dist
