// The execution engine's backend abstraction (DESIGN.md §13).
//
// A Backend decides *where* an spMVM runs — the host node, the simulated
// GPGPU, or a hybrid CPU+GPU row split — which the paper argues is the
// actual performance decision (Sec. II, Eqs. 1–4). bind() compiles one
// matrix in one storage format for one backend and returns a BoundSpmv:
// the kernel-launch handle every consumer (solver operators, the
// distributed products, benches, examples) applies products through.
// Consumers never call spmv_host or device_runtime entry points directly;
// exec/dispatch.hpp is the only sanctioned raw-kernel surface.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "formats/format_plan.hpp"
#include "sparse/csr.hpp"
#include "util/error.hpp"

namespace spmvm::exec {

/// Static description of one backend (Engine::list / --list-backends).
struct BackendInfo {
  const char* name = "";
  const char* description = "";
  bool uses_device = false;  // charges the simulated device + PCIe link
};

/// Basis the bound product's vectors live in. `original` hides row
/// permutations entirely: x and y are original-basis vectors and the
/// backend carries them across the plan's permutation per apply.
/// `plan` applies in the plan's own basis with zero carry overhead —
/// the paper's recommended solver usage (permute once before and after
/// the whole iteration, Sec. II-A).
enum class Basis : std::uint8_t { original, plan };

/// Per-bind launch knobs, shared by every backend (each reads the
/// fields that apply to it).
struct LaunchOptions {
  int n_threads = 1;
  Basis basis = Basis::original;
  /// gpusim/hybrid: keep x and y device-resident, skipping the per-call
  /// PCIe staging of Eq. 2 (Sec. III "parts of those vectors may be
  /// kept on the device").
  bool vectors_resident = false;
  /// hybrid: explicit fraction of non-zeros assigned to the device,
  /// clamped to [0, 1]. Negative (default) splits by the relative
  /// host/device bandwidth roofs of the engine's RooflineSpec.
  double device_share = -1.0;
};

/// One matrix bound to one backend in one storage format: the launch
/// handle. apply()/apply_axpby() mutate backend state (simulated device
/// clocks, ledger records, internal scratch), so handles are not
/// shareable across threads without external synchronization.
template <class T>
class BoundSpmv {
 public:
  virtual ~BoundSpmv() = default;
  BoundSpmv(const BoundSpmv&) = delete;
  BoundSpmv& operator=(const BoundSpmv&) = delete;

  virtual const BackendInfo& backend() const = 0;
  virtual index_t n_rows() const = 0;
  virtual index_t n_cols() const = 0;
  virtual offset_t nnz() const = 0;

  /// The underlying format plan; nullptr when the binding spans more
  /// than one plan (hybrid).
  virtual const formats::FormatPlan<T>* plan() const { return nullptr; }

  /// y = A·x (basis per LaunchOptions::basis).
  virtual void apply(std::span<const T> x, std::span<T> y) = 0;

  /// Block-RHS launch Y = A·X for k row-major interleaved vectors
  /// (x[i*k + v], the core/spmmv layout) — the serving layer's batched
  /// entry point. Backends route every width, including k = 1, through
  /// the block kernels, so a coalesced batch is bit-identical to issuing
  /// its requests one at a time. The default de-interleaves into k
  /// apply() calls for backends without a block path.
  virtual void apply_block(std::span<const T> x, std::span<T> y, int k) {
    check_block(x, y, k);
    const auto cols = static_cast<std::size_t>(n_cols());
    const auto rows = static_cast<std::size_t>(n_rows());
    const auto kk = static_cast<std::size_t>(k);
    std::vector<T> xv(cols), yv(rows);
    for (std::size_t v = 0; v < kk; ++v) {
      for (std::size_t i = 0; i < cols; ++i) xv[i] = x[i * kk + v];
      apply(std::span<const T>(xv), std::span<T>(yv));
      for (std::size_t i = 0; i < rows; ++i) y[i * kk + v] = yv[i];
    }
  }

  /// y = β·y + α·A·x. Backends with a native fused kernel do it in one
  /// matrix pass; the default falls back to apply() + a BLAS-1 sweep
  /// over an internal scratch vector (not safe to call concurrently).
  virtual void apply_axpby(std::span<const T> x, std::span<T> y, T alpha,
                           T beta) {
    scratch_.resize(static_cast<std::size_t>(n_rows()));
    apply(x, std::span<T>(scratch_));
    for (std::size_t i = 0; i < scratch_.size(); ++i)
      y[i] = beta * y[i] + alpha * scratch_[i];
  }

  /// Hybrid diagnostics: rows [0, split_row) run on the device, the
  /// rest on the host. Single-backend bindings report the trivial split.
  virtual index_t split_row() const {
    return backend().uses_device ? n_rows() : 0;
  }
  /// Fraction of non-zeros executed on the simulated device.
  virtual double device_nnz_share() const {
    return backend().uses_device ? 1.0 : 0.0;
  }

 protected:
  BoundSpmv() = default;
  void check_spans(std::span<const T> x, std::span<T> y) const {
    SPMVM_REQUIRE(x.size() >= static_cast<std::size_t>(n_cols()) &&
                      y.size() >= static_cast<std::size_t>(n_rows()),
                  "bound spMVM vectors too small");
  }
  void check_block(std::span<const T> x, std::span<T> y, int k) const {
    SPMVM_REQUIRE(k >= 1 &&
                      x.size() >= static_cast<std::size_t>(n_cols()) *
                                      static_cast<std::size_t>(k) &&
                      y.size() >= static_cast<std::size_t>(n_rows()) *
                                      static_cast<std::size_t>(k),
                  "bound spMMV block too small for k interleaved vectors");
  }

 private:
  std::vector<T> scratch_;
};

/// One execution target. Backends are owned by an exec::Engine and share
/// its TransferManager (buffer.hpp); bind() may allocate simulated
/// device memory and throws spmvm::Error when the card is full.
template <class T>
class Backend {
 public:
  virtual ~Backend() = default;

  virtual const BackendInfo& info() const = 0;

  /// Build `format` from `a` through the format registry and bind it to
  /// this backend.
  virtual std::unique_ptr<BoundSpmv<T>> bind(
      const Csr<T>& a, std::string_view format = "csr",
      const formats::PlanOptions& opts = {},
      const LaunchOptions& launch = {}) = 0;

  /// Bind an already-built plan (plan reuse across backends/launches).
  /// The hybrid backend recovers the CSR to split it, so prefer bind()
  /// there when the original matrix is at hand.
  virtual std::unique_ptr<BoundSpmv<T>> bind_plan(
      std::shared_ptr<const formats::FormatPlan<T>> plan,
      const LaunchOptions& launch = {}) = 0;
};

}  // namespace spmvm::exec
