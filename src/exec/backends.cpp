// The three execution backends (DESIGN.md §13).
//
//   host    pooled host kernels in the plan's or the original basis
//   gpusim  plan resident on the simulated GPGPU: numerics on the host
//           mirror, timing from the warp-granular kernel simulation
//           (or a generic Eq. 1 bandwidth bound for formats without a
//           sim kernel), Eq. 2 PCIe staging per product unless the
//           vectors are device-resident
//   hybrid  the paper's CPU+GPU row split (Sec. III): rows are
//           partitioned by cumulative nnz at the device share implied
//           by the bandwidth roofs, both parts run concurrently on the
//           thread pool, and the transfer manager reconciles
//
// Bit-identity contract (test_exec_backends): all backends accumulate
// each row's entries in the same order — host and gpusim share the
// format kernels outright, and the hybrid parts are bound with
// PermuteColumns::no so sub-matrix row sorting never relabels columns.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>

#include "core/spmmv.hpp"
#include "exec/buffer.hpp"
#include "exec/engine.hpp"
#include "formats/registry.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "perfmodel/balance.hpp"
#include "util/thread_pool.hpp"

namespace spmvm::exec {
namespace {

inline constexpr BackendInfo kHostInfo{
    "host", "pooled host kernels on the CPU node", false};
inline constexpr BackendInfo kGpusimInfo{
    "gpusim", "simulated GPGPU: host-mirror numerics, modeled timing",
    true};
inline constexpr BackendInfo kHybridInfo{
    "hybrid", "CPU+GPU row split over the bandwidth roofs (Sec. III)",
    true};

/// Rows [r0, r1) of `a` as a standalone CSR (columns untouched).
template <class T>
Csr<T> sub_csr(const Csr<T>& a, index_t r0, index_t r1) {
  Csr<T> s;
  s.n_rows = r1 - r0;
  s.n_cols = a.n_cols;
  s.row_ptr.resize(static_cast<std::size_t>(s.n_rows) + 1);
  const offset_t base = a.row_ptr[static_cast<std::size_t>(r0)];
  for (index_t i = 0; i <= s.n_rows; ++i)
    s.row_ptr[static_cast<std::size_t>(i)] =
        a.row_ptr[static_cast<std::size_t>(r0 + i)] - base;
  const auto end = a.row_ptr[static_cast<std::size_t>(r1)];
  s.col_idx.assign(a.col_idx.begin() + base, a.col_idx.begin() + end);
  s.val.assign(a.val.begin() + base, a.val.begin() + end);
  return s;
}

/// Eq. 1 streamed bytes of one k-wide product over a plan's stored
/// footprint: the matrix image streams once, the RHS gather and result
/// update scale with the block width.
template <class T>
double streamed_bytes(const formats::FormatPlan<T>& plan, int k = 1) {
  const double s = static_cast<double>(sizeof(T));
  const auto kd = static_cast<double>(k);
  const auto nnz = static_cast<double>(plan.nnz());
  const auto rows = static_cast<double>(plan.n_rows());
  double bytes =
      static_cast<double>(plan.footprint().total_bytes(sizeof(T))) +
      2.0 * s * rows * kd;
  if (nnz > 0.0 && rows > 0.0)
    bytes += s * perfmodel::alpha_ideal(nnz / rows) * nnz * kd;
  return bytes;
}

// ---- host -----------------------------------------------------------------

template <class T>
class HostBound final : public BoundSpmv<T> {
 public:
  HostBound(std::shared_ptr<const formats::FormatPlan<T>> plan,
            const LaunchOptions& launch)
      : plan_(std::move(plan)), launch_(launch) {}

  const BackendInfo& backend() const override { return kHostInfo; }
  index_t n_rows() const override { return plan_->n_rows(); }
  index_t n_cols() const override { return plan_->n_cols(); }
  offset_t nnz() const override { return plan_->nnz(); }
  const formats::FormatPlan<T>* plan() const override { return plan_.get(); }

  void apply(std::span<const T> x, std::span<T> y) override {
    this->check_spans(x, y);
    const Permutation* perm = plan_->permutation();
    if (launch_.basis == Basis::plan || perm == nullptr) {
      plan_->spmv(x, y, launch_.n_threads);
      return;
    }
    // Original basis: carry the vectors across the plan's row
    // permutation around every product (Basis::plan is the zero-carry
    // solver path, Sec. II-A).
    std::span<const T> xin = x;
    if (plan_->columns_permuted()) {
      xperm_.resize(static_cast<std::size_t>(plan_->n_cols()));
      perm->to_permuted(x.first(xperm_.size()), std::span<T>(xperm_));
      xin = std::span<const T>(xperm_);
    }
    yperm_.resize(static_cast<std::size_t>(plan_->n_rows()));
    plan_->spmv(xin, std::span<T>(yperm_), launch_.n_threads);
    perm->from_permuted(std::span<const T>(yperm_), y);
  }

  void apply_block(std::span<const T> x, std::span<T> y, int k) override {
    this->check_block(x, y, k);
    const Permutation* perm = plan_->permutation();
    if (launch_.basis == Basis::plan || perm == nullptr) {
      plan_->spmmv(x, y, k, launch_.n_threads);
      return;
    }
    // Original basis: the Permutation handle carries single vectors, so
    // blocks move whole k-wide row groups across the row permutation.
    const auto kk = static_cast<std::size_t>(k);
    const auto cols = static_cast<std::size_t>(plan_->n_cols());
    const auto rows = static_cast<std::size_t>(plan_->n_rows());
    std::span<const T> xin = x;
    if (plan_->columns_permuted()) {
      xperm_.resize(cols * kk);
      for (std::size_t r = 0; r < cols; ++r) {
        const auto o = static_cast<std::size_t>(
            perm->old_of(static_cast<index_t>(r)));
        for (std::size_t v = 0; v < kk; ++v)
          xperm_[r * kk + v] = x[o * kk + v];
      }
      xin = std::span<const T>(xperm_);
    }
    yperm_.resize(rows * kk);
    plan_->spmmv(xin, std::span<T>(yperm_), k, launch_.n_threads);
    for (std::size_t r = 0; r < rows; ++r) {
      const auto o = static_cast<std::size_t>(
          perm->old_of(static_cast<index_t>(r)));
      for (std::size_t v = 0; v < kk; ++v) y[o * kk + v] = yperm_[r * kk + v];
    }
  }

  void apply_axpby(std::span<const T> x, std::span<T> y, T alpha,
                   T beta) override {
    const bool plan_basis =
        launch_.basis == Basis::plan || plan_->permutation() == nullptr;
    if (plan_basis && plan_->info().native_axpby) {
      this->check_spans(x, y);
      if (plan_->spmv_axpby(x, y, alpha, beta, launch_.n_threads)) return;
    }
    BoundSpmv<T>::apply_axpby(x, y, alpha, beta);
  }

 private:
  std::shared_ptr<const formats::FormatPlan<T>> plan_;
  LaunchOptions launch_;
  std::vector<T> xperm_, yperm_;
};

template <class T>
class HostBackend final : public Backend<T> {
 public:
  const BackendInfo& info() const override { return kHostInfo; }

  std::unique_ptr<BoundSpmv<T>> bind(const Csr<T>& a, std::string_view format,
                                     const formats::PlanOptions& opts,
                                     const LaunchOptions& launch) override {
    return bind_plan(formats::registry<T>().build(format, a, opts), launch);
  }

  std::unique_ptr<BoundSpmv<T>> bind_plan(
      std::shared_ptr<const formats::FormatPlan<T>> plan,
      const LaunchOptions& launch) override {
    SPMVM_REQUIRE(plan != nullptr, "cannot bind a null plan");
    return std::make_unique<HostBound<T>>(std::move(plan), launch);
  }
};

// ---- gpusim ---------------------------------------------------------------

template <class T>
class GpusimBound final : public BoundSpmv<T> {
 public:
  GpusimBound(std::shared_ptr<TransferManager> tm,
              std::shared_ptr<const formats::FormatPlan<T>> plan,
              const LaunchOptions& launch)
      : tm_(std::move(tm)),
        plan_(plan),
        launch_(launch),
        numerics_(plan, launch),
        image_bytes_(plan_->footprint().total_bytes(sizeof(T))) {
    // Matrix image: reserved against the card's real capacity (throws
    // when the format does not fit) and uploaded once at bind.
    allocation_ = tm_->alloc_device_bytes(image_bytes_);
    tm_->stage_to_device(image_bytes_, "matrix");
    if (launch_.vectors_resident) {
      x_dev_ = tm_->template alloc<T>(
          Space::device, static_cast<std::size_t>(plan_->n_cols()));
      y_dev_ = tm_->template alloc<T>(
          Space::device, static_cast<std::size_t>(plan_->n_rows()));
    }
    estimate_ = make_estimate();
  }

  ~GpusimBound() override { tm_->free_device(allocation_); }

  const BackendInfo& backend() const override { return kGpusimInfo; }
  index_t n_rows() const override { return plan_->n_rows(); }
  index_t n_cols() const override { return plan_->n_cols(); }
  offset_t nnz() const override { return plan_->nnz(); }
  const formats::FormatPlan<T>* plan() const override { return plan_.get(); }

  std::size_t device_bytes() const { return image_bytes_; }
  const gpusim::KernelResult& kernel_estimate() const { return estimate_; }

  void apply(std::span<const T> x, std::span<T> y) override {
    // Numerics on the host mirror (the simulator executes the actual
    // format data structures), timing on the simulated clocks.
    numerics_.apply(x, y);
    if (!launch_.vectors_resident)
      tm_->stage_to_device(
          static_cast<std::uint64_t>(plan_->n_cols()) * sizeof(T), "vector");
    tm_->launch(estimate_);
    if (!launch_.vectors_resident)
      tm_->stage_to_host(
          static_cast<std::uint64_t>(plan_->n_rows()) * sizeof(T), "vector");
    record_launch(estimate_, 1);
  }

  void apply_block(std::span<const T> x, std::span<T> y, int k) override {
    numerics_.apply_block(x, y, k);
    const auto kb = static_cast<std::uint64_t>(k) * sizeof(T);
    if (!launch_.vectors_resident)
      tm_->stage_to_device(static_cast<std::uint64_t>(plan_->n_cols()) * kb,
                           "vector");
    const gpusim::KernelResult est = block_estimate(k);
    tm_->launch(est);
    if (!launch_.vectors_resident)
      tm_->stage_to_host(static_cast<std::uint64_t>(plan_->n_rows()) * kb,
                         "vector");
    record_launch(est, k);
  }

  /// Eq. 1 extension for k RHS (spmmv_code_balance): the matrix image
  /// streams once, the vector terms and flops scale with k; timing is
  /// re-derived from the scaled traffic on the same device roofs.
  gpusim::KernelResult block_estimate(int k) const {
    if (k <= 1) return estimate_;
    const auto& dev = tm_->device()->spec();
    gpusim::KernelResult r = estimate_;
    const auto kk = static_cast<std::uint64_t>(k);
    r.stats.flops *= kk;
    r.stats.rhs_bytes *= kk;
    r.stats.stream_bytes *= kk;
    r.stats.useful_lane_steps *= kk;
    r.stats.total_lane_steps *= kk;
    r.mem_seconds = static_cast<double>(r.stats.dram_bytes()) /
                    dev.bandwidth_bytes(tm_->device()->ecc());
    r.issue_seconds = estimate_.issue_seconds * static_cast<double>(k);
    r.seconds =
        std::max(r.mem_seconds, r.issue_seconds) + dev.kernel_launch_s;
    if (r.seconds > 0.0)
      r.gflops = static_cast<double>(r.stats.flops) / r.seconds / 1e9;
    if (r.stats.flops > 0)
      r.code_balance = static_cast<double>(r.stats.dram_bytes()) /
                       static_cast<double>(r.stats.flops);
    return r;
  }

 private:
  gpusim::KernelResult make_estimate() const {
    gpusim::SimOptions opt;
    opt.ecc = tm_->device()->ecc();
    if (auto sim = plan_->simulate(tm_->device()->spec(), opt)) return *sim;
    // No warp-granular sim kernel (jds, bellpack): generic Eq. 1
    // bandwidth bound over the stored footprint at ideal α.
    const auto& dev = tm_->device()->spec();
    gpusim::KernelResult r;
    r.stats.flops = 2 * static_cast<std::uint64_t>(plan_->nnz());
    r.stats.matrix_bytes = image_bytes_;
    r.stats.rhs_bytes =
        static_cast<std::uint64_t>(plan_->n_cols()) * sizeof(T);
    r.stats.stream_bytes =
        2 * static_cast<std::uint64_t>(plan_->n_rows()) * sizeof(T);
    r.mem_seconds = static_cast<double>(r.stats.dram_bytes()) /
                    dev.bandwidth_bytes(tm_->device()->ecc());
    r.seconds = r.mem_seconds + dev.kernel_launch_s;
    if (r.seconds > 0.0)
      r.gflops = static_cast<double>(r.stats.flops) / r.seconds / 1e9;
    if (r.stats.flops > 0)
      r.code_balance = static_cast<double>(r.stats.dram_bytes()) /
                       static_cast<double>(r.stats.flops);
    return r;
  }

  void record_launch(const gpusim::KernelResult& est, int k) const {
    if (!obs::ledger_enabled()) return;
    const auto nnz = static_cast<std::uint64_t>(plan_->nnz());
    const auto rows = static_cast<double>(plan_->n_rows());
    if (nnz == 0 || rows <= 0.0) return;
    // Same convention as the kernel simulator's own device-lane record:
    // predicted is Eq. 1 at *measured* α (extended to k RHS for batched
    // launches), so ledger efficiency equals gflops_sim / gflops_model
    // per launch. spmmv_code_balance(…, 1) is exactly Eq. 1.
    obs::WorkDesc w;
    w.bytes = est.stats.dram_bytes();
    w.flops = est.stats.flops;
    w.nnz = nnz;
    w.alpha = est.stats.measured_alpha(sizeof(T));
    const double gflops_model = perfmodel::bandwidth_bound_gflops(
        tm_->device()->spec().bandwidth_bytes(tm_->device()->ecc()) / 1e9,
        spmmv_code_balance(sizeof(T), w.alpha,
                           static_cast<double>(nnz) / rows, k));
    w.predicted_seconds =
        static_cast<double>(w.flops) / (gflops_model * 1e9);
    obs::ledger_record(obs::RoofLane::device, plan_->info().name,
                       k > 1 ? "block" : "launch", est.seconds, w);
  }

  std::shared_ptr<TransferManager> tm_;
  std::shared_ptr<const formats::FormatPlan<T>> plan_;
  LaunchOptions launch_;
  HostBound<T> numerics_;
  std::size_t image_bytes_;
  int allocation_ = -1;
  Buffer<T> x_dev_, y_dev_;
  gpusim::KernelResult estimate_;
};

template <class T>
class GpusimBackend final : public Backend<T> {
 public:
  explicit GpusimBackend(std::shared_ptr<TransferManager> tm)
      : tm_(std::move(tm)) {}

  const BackendInfo& info() const override { return kGpusimInfo; }

  std::unique_ptr<BoundSpmv<T>> bind(const Csr<T>& a, std::string_view format,
                                     const formats::PlanOptions& opts,
                                     const LaunchOptions& launch) override {
    return bind_plan(formats::registry<T>().build(format, a, opts), launch);
  }

  std::unique_ptr<BoundSpmv<T>> bind_plan(
      std::shared_ptr<const formats::FormatPlan<T>> plan,
      const LaunchOptions& launch) override {
    SPMVM_REQUIRE(plan != nullptr, "cannot bind a null plan");
    return std::make_unique<GpusimBound<T>>(tm_, std::move(plan), launch);
  }

 private:
  std::shared_ptr<TransferManager> tm_;
};

// ---- hybrid ---------------------------------------------------------------

template <class T>
class HybridBound final : public BoundSpmv<T> {
 public:
  HybridBound(std::shared_ptr<TransferManager> tm,
              const obs::RooflineSpec& roofs, const Csr<T>& a,
              std::string_view format, formats::PlanOptions opts,
              const LaunchOptions& launch)
      : n_rows_(a.n_rows),
        n_cols_(a.n_cols),
        nnz_(a.nnz()),
        format_(format),
        launch_(launch),
        roofs_(roofs) {
    double f = launch.device_share;
    if (f < 0.0) {
      // The paper's static split: each side gets work proportional to
      // its bandwidth roof, so both finish together in the
      // bandwidth-bound limit.
      const double bwh =
          roofs.bw_gbs[static_cast<int>(obs::RoofLane::host)];
      const double bwd =
          roofs.bw_gbs[static_cast<int>(obs::RoofLane::device)];
      f = bwd / (bwd + bwh);
    }
    f = std::clamp(f, 0.0, 1.0);

    // Smallest row index whose cumulative nnz reaches the device share.
    const auto target = static_cast<double>(nnz_) * f;
    split_ = 0;
    while (split_ < n_rows_ &&
           static_cast<double>(a.row_ptr[static_cast<std::size_t>(split_)]) <
               target)
      ++split_;
    device_nnz_ = a.row_ptr.empty()
                      ? 0
                      : a.row_ptr[static_cast<std::size_t>(split_)];

    // Sub-matrices are rectangular, and identical per-row accumulation
    // order across backends is part of the contract — bind both parts
    // without symmetric column relabeling.
    opts.permute_columns = PermuteColumns::no;
    LaunchOptions part = launch;
    part.basis = Basis::original;
    part.device_share = -1.0;
    if (split_ > 0)
      dev_part_ = std::make_unique<GpusimBound<T>>(
          tm, formats::registry<T>().build(format, sub_csr(a, 0, split_),
                                           opts),
          part);
    if (split_ < n_rows_) {
      part.vectors_resident = false;
      host_part_ = std::make_unique<HostBound<T>>(
          formats::registry<T>().build(format, sub_csr(a, split_, n_rows_),
                                       opts),
          part);
    }
    predicted_ = overlap_bound(1);
  }

  const BackendInfo& backend() const override { return kHybridInfo; }
  index_t n_rows() const override { return n_rows_; }
  index_t n_cols() const override { return n_cols_; }
  offset_t nnz() const override { return nnz_; }

  index_t split_row() const override { return split_; }
  double device_nnz_share() const override {
    return nnz_ == 0 ? 0.0
                     : static_cast<double>(device_nnz_) /
                           static_cast<double>(nnz_);
  }

  void apply(std::span<const T> x, std::span<T> y) override {
    this->check_spans(x, y);
    SPMVM_TRACE_SPAN("exec/hybrid", static_cast<std::uint64_t>(nnz_));
    const auto t0 = std::chrono::steady_clock::now();
    auto yfull = y.first(static_cast<std::size_t>(n_rows_));
    if (dev_part_ && host_part_) {
      auto ydev = yfull.first(static_cast<std::size_t>(split_));
      auto yhost = yfull.subspan(static_cast<std::size_t>(split_));
      // Both parts run concurrently: the device part stages and
      // launches through the (mutex-guarded) transfer manager while
      // the host part executes pooled kernels. Nested pool calls run
      // inline, so each part's kernels execute on its own worker.
      ThreadPool::instance().run(2, [&](int p) {
        if (p == 0)
          dev_part_->apply(x, ydev);
        else
          host_part_->apply(x, yhost);
      });
    } else if (dev_part_) {
      dev_part_->apply(x, yfull);
    } else if (host_part_) {
      host_part_->apply(x, yfull);
    }
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    record_overlap(wall, 1);
  }

  void apply_block(std::span<const T> x, std::span<T> y, int k) override {
    this->check_block(x, y, k);
    SPMVM_TRACE_SPAN("exec/hybrid",
                     static_cast<std::uint64_t>(nnz_) *
                         static_cast<std::uint64_t>(k));
    const auto t0 = std::chrono::steady_clock::now();
    const auto kk = static_cast<std::size_t>(k);
    // Row-major-by-vector layout keeps the row split contiguous in Y:
    // rows [0, split) are the block's first split·k values.
    auto yfull = y.first(static_cast<std::size_t>(n_rows_) * kk);
    if (dev_part_ && host_part_) {
      auto ydev = yfull.first(static_cast<std::size_t>(split_) * kk);
      auto yhost = yfull.subspan(static_cast<std::size_t>(split_) * kk);
      ThreadPool::instance().run(2, [&](int p) {
        if (p == 0)
          dev_part_->apply_block(x, ydev, k);
        else
          host_part_->apply_block(x, yhost, k);
      });
    } else if (dev_part_) {
      dev_part_->apply_block(x, yfull, k);
    } else if (host_part_) {
      host_part_->apply_block(x, yfull, k);
    }
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    record_overlap(wall, k);
  }

 private:
  /// Ideal-overlap lower bound for a k-wide launch: both parts start
  /// together, the bound is the slower of the host roof bound and the
  /// device model (kernel + per-product staging), each at block width k.
  double overlap_bound(int k) const {
    double host_s = 0.0;
    if (host_part_)
      host_s =
          streamed_bytes(*host_part_->plan(), k) /
          (roofs_.bw_gbs[static_cast<int>(obs::RoofLane::host)] * 1e9);
    double dev_s = 0.0;
    if (dev_part_) {
      dev_s = dev_part_->block_estimate(k).seconds;
      if (!launch_.vectors_resident) {
        const double staged = static_cast<double>(n_cols_ + split_) *
                              static_cast<double>(k) * sizeof(T);
        dev_s += staged /
                 (roofs_.bw_gbs[static_cast<int>(obs::RoofLane::pcie)] * 1e9);
      }
    }
    return std::max(host_s, dev_s);
  }

  void record_overlap(double wall_seconds, int k) const {
    if (!obs::ledger_enabled() || nnz_ == 0) return;
    obs::WorkDesc w;
    double bytes = 0.0;
    if (host_part_) bytes += streamed_bytes(*host_part_->plan(), k);
    if (dev_part_)
      bytes += static_cast<double>(
          dev_part_->block_estimate(k).stats.dram_bytes());
    w.bytes = static_cast<std::uint64_t>(bytes);
    w.flops = 2 * static_cast<std::uint64_t>(nnz_) *
              static_cast<std::uint64_t>(k);
    w.nnz = static_cast<std::uint64_t>(nnz_);
    w.alpha = perfmodel::alpha_ideal(static_cast<double>(nnz_) /
                                     static_cast<double>(n_rows_));
    w.predicted_seconds = k == 1 ? predicted_ : overlap_bound(k);
    obs::ledger_record(obs::RoofLane::host, format_.c_str(),
                       k > 1 ? "hybrid_block" : "hybrid", wall_seconds, w);
  }

  index_t n_rows_;
  index_t n_cols_;
  offset_t nnz_;
  std::string format_;
  LaunchOptions launch_;
  obs::RooflineSpec roofs_;
  index_t split_ = 0;
  offset_t device_nnz_ = 0;
  double predicted_ = 0.0;
  std::unique_ptr<GpusimBound<T>> dev_part_;
  std::unique_ptr<HostBound<T>> host_part_;
};

template <class T>
class HybridBackend final : public Backend<T> {
 public:
  HybridBackend(std::shared_ptr<TransferManager> tm,
                const obs::RooflineSpec& roofs)
      : tm_(std::move(tm)), roofs_(roofs) {}

  const BackendInfo& info() const override { return kHybridInfo; }

  std::unique_ptr<BoundSpmv<T>> bind(const Csr<T>& a, std::string_view format,
                                     const formats::PlanOptions& opts,
                                     const LaunchOptions& launch) override {
    SPMVM_REQUIRE(formats::registry<T>().find(format) != nullptr ||
                      format == "auto",
                  "unknown format '" + std::string(format) + "'");
    return std::make_unique<HybridBound<T>>(tm_, roofs_, a, format, opts,
                                            launch);
  }

  /// The split needs the assembled matrix; recover it from the plan.
  std::unique_ptr<BoundSpmv<T>> bind_plan(
      std::shared_ptr<const formats::FormatPlan<T>> plan,
      const LaunchOptions& launch) override {
    SPMVM_REQUIRE(plan != nullptr, "cannot bind a null plan");
    const Csr<T> a = plan->to_csr();
    return bind(a, plan->info().name, {}, launch);
  }

 private:
  std::shared_ptr<TransferManager> tm_;
  obs::RooflineSpec roofs_;
};

}  // namespace

template <class T>
std::unique_ptr<Backend<T>> make_host_backend() {
  return std::make_unique<HostBackend<T>>();
}

template <class T>
std::unique_ptr<Backend<T>> make_gpusim_backend(
    std::shared_ptr<TransferManager> tm) {
  return std::make_unique<GpusimBackend<T>>(std::move(tm));
}

template <class T>
std::unique_ptr<Backend<T>> make_hybrid_backend(
    std::shared_ptr<TransferManager> tm, const obs::RooflineSpec& roofs) {
  return std::make_unique<HybridBackend<T>>(std::move(tm), roofs);
}

#define SPMVM_INSTANTIATE_BACKENDS(T)                                   \
  template std::unique_ptr<Backend<T>> make_host_backend<T>();          \
  template std::unique_ptr<Backend<T>> make_gpusim_backend<T>(          \
      std::shared_ptr<TransferManager>);                                \
  template std::unique_ptr<Backend<T>> make_hybrid_backend<T>(          \
      std::shared_ptr<TransferManager>, const obs::RooflineSpec&)

SPMVM_INSTANTIATE_BACKENDS(float);
SPMVM_INSTANTIATE_BACKENDS(double);
#undef SPMVM_INSTANTIATE_BACKENDS

}  // namespace spmvm::exec
