#include "exec/buffer.hpp"

#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace spmvm::exec {

const char* to_string(Space space) {
  return space == Space::host ? "host" : "device";
}

TransferManager::TransferManager(std::shared_ptr<gpusim::DeviceRuntime> dev)
    : dev_(std::move(dev)), mu_(std::make_shared<std::mutex>()) {
  SPMVM_REQUIRE(dev_ != nullptr, "TransferManager needs a device runtime");
}

int TransferManager::alloc_device_bytes(std::size_t bytes) {
  std::lock_guard<std::mutex> lk(*mu_);
  return dev_->alloc(bytes);
}

void TransferManager::free_device(int allocation) {
  std::lock_guard<std::mutex> lk(*mu_);
  dev_->free(allocation);
}

void TransferManager::stage_to_device(std::uint64_t bytes, const char* what) {
  stage(bytes, what, /*to_device=*/true);
}

void TransferManager::stage_to_host(std::uint64_t bytes, const char* what) {
  stage(bytes, what, /*to_device=*/false);
}

void TransferManager::stage(std::uint64_t bytes, const char* what,
                            bool to_device) {
  if (bytes == 0) return;
  static obs::Counter& c_h2d = obs::counter("exec.h2d_bytes");
  static obs::Counter& c_d2h = obs::counter("exec.d2h_bytes");
  static obs::Counter& c_n = obs::counter("exec.transfers");
  SPMVM_TRACE_SPAN_NAMED(span, to_device ? "exec/h2d" : "exec/d2h", bytes);
  double seconds = 0.0;
  {
    // DeviceRuntime::transfer prices the move (gpusim's Eq. 2 PCIe
    // model) and advances the simulated clock; read the delta back so
    // the link is charged exactly once.
    std::lock_guard<std::mutex> lk(*mu_);
    const double before = dev_->transfer_seconds();
    dev_->transfer(bytes);
    seconds = dev_->transfer_seconds() - before;
    (to_device ? h2d_bytes_ : d2h_bytes_) += bytes;
    ++transfers_;
    seconds_ += seconds;
  }
  (to_device ? c_h2d : c_d2h).add(bytes);
  c_n.add(1);
  if (obs::ledger_enabled()) {
    // Same convention as gpusim::with_pcie_transfers: predicted is the
    // pure bandwidth term, so the efficiency shortfall is exactly the
    // link latency share (Sec. IV-B's small-transfer regime).
    obs::WorkDesc w;
    w.bytes = bytes;
    w.predicted_seconds =
        static_cast<double>(bytes) / (dev_->spec().pcie_gbs * 1e9);
    obs::ledger_record(obs::RoofLane::pcie, what,
                       to_device ? "h2d" : "d2h", seconds, w);
  }
}

void TransferManager::launch(const gpusim::KernelResult& kernel) {
  std::lock_guard<std::mutex> lk(*mu_);
  dev_->launch(kernel);
}

double TransferManager::transfer_seconds() const {
  std::lock_guard<std::mutex> lk(*mu_);
  return seconds_;
}

std::uint64_t TransferManager::bytes_to_device() const {
  std::lock_guard<std::mutex> lk(*mu_);
  return h2d_bytes_;
}

std::uint64_t TransferManager::bytes_to_host() const {
  std::lock_guard<std::mutex> lk(*mu_);
  return d2h_bytes_;
}

std::uint64_t TransferManager::transfers() const {
  std::lock_guard<std::mutex> lk(*mu_);
  return transfers_;
}

}  // namespace spmvm::exec
