// Explicit memory spaces for the execution engine (DESIGN.md §13).
//
// A Buffer is a typed allocation bound to one Space: plain host memory,
// or simulated device memory reserved against the card's real capacity
// (gpusim::DeviceRuntime). Device buffers keep a host staging mirror —
// the simulator executes kernels on host data — so upload/download are
// a memcpy plus a modeled PCIe charge.
//
// The TransferManager owns *all* PCIe staging: every host↔device byte
// goes through it, advancing the simulated device clock (Eq. 2 pricing
// via gpusim's PCIe model), feeding the obs counters
// (exec.h2d_bytes / exec.d2h_bytes / exec.transfers) and emitting
// pcie-lane roofline ledger records. Backends also route their kernel
// launches through it so concurrent hybrid parts serialize access to
// the shared DeviceRuntime.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "gpusim/device_runtime.hpp"
#include "util/error.hpp"

namespace spmvm::exec {

/// Where a Buffer's bytes live.
enum class Space : std::uint8_t { host, device };

const char* to_string(Space space);

class TransferManager;

/// Typed allocation in one memory space. Movable handle; device-space
/// buffers release their DeviceRuntime reservation on destruction.
template <class T>
class Buffer {
 public:
  Buffer() = default;
  ~Buffer() { release(); }
  Buffer(Buffer&& o) noexcept { *this = std::move(o); }
  Buffer& operator=(Buffer&& o) noexcept {
    if (this != &o) {
      release();
      space_ = o.space_;
      data_ = std::move(o.data_);
      allocation_ = o.allocation_;
      dev_ = std::move(o.dev_);
      mu_ = std::move(o.mu_);
      o.allocation_ = -1;
    }
    return *this;
  }
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  Space space() const { return space_; }
  std::size_t size() const { return data_.size(); }
  std::size_t bytes() const { return data_.size() * sizeof(T); }

  /// The host-side storage: the data itself for host buffers, the
  /// staging mirror for device buffers.
  std::span<T> host_view() { return std::span<T>(data_); }
  std::span<const T> host_view() const { return std::span<const T>(data_); }

 private:
  friend class TransferManager;
  void release() {
    if (allocation_ >= 0 && dev_) {
      std::lock_guard<std::mutex> lk(*mu_);
      dev_->free(allocation_);
      allocation_ = -1;
    }
  }

  Space space_ = Space::host;
  std::vector<T> data_;
  int allocation_ = -1;
  std::shared_ptr<gpusim::DeviceRuntime> dev_;
  std::shared_ptr<std::mutex> mu_;
};

/// Owner of the host↔device boundary: allocations, staging, launches.
/// All DeviceRuntime access is serialized through one mutex so the
/// hybrid backend's concurrent device part is race-free.
class TransferManager {
 public:
  explicit TransferManager(std::shared_ptr<gpusim::DeviceRuntime> dev);

  const std::shared_ptr<gpusim::DeviceRuntime>& device() const {
    return dev_;
  }

  /// Allocate `n` elements in `space`; device allocations throw
  /// spmvm::Error when the card is full.
  template <class T>
  Buffer<T> alloc(Space space, std::size_t n) {
    Buffer<T> b;
    b.space_ = space;
    b.data_.resize(n);
    if (space == Space::device) {
      b.allocation_ = alloc_device_bytes(n * sizeof(T));
      b.dev_ = dev_;
      b.mu_ = mu_;
    }
    return b;
  }

  /// Reserve raw device bytes for an opaque image (a format's matrix
  /// footprint). Pair with free_device().
  int alloc_device_bytes(std::size_t bytes);
  void free_device(int allocation);

  /// Host→device: copy into the buffer's staging mirror and charge the
  /// PCIe link (Eq. 2 pricing + pcie ledger lane).
  template <class T>
  void upload(std::span<const T> src, Buffer<T>& dst) {
    SPMVM_REQUIRE(dst.space() == Space::device,
                  "upload target must be a device buffer");
    SPMVM_REQUIRE(src.size() <= dst.size(), "upload overflows buffer");
    std::copy(src.begin(), src.end(), dst.data_.begin());
    stage_to_device(src.size() * sizeof(T), "vector");
  }

  /// Device→host: copy out of the staging mirror and charge the link.
  template <class T>
  void download(const Buffer<T>& src, std::span<T> dst) {
    SPMVM_REQUIRE(src.space() == Space::device,
                  "download source must be a device buffer");
    SPMVM_REQUIRE(dst.size() >= src.size(), "download overflows span");
    std::copy(src.data_.begin(), src.data_.end(), dst.begin());
    stage_to_host(src.size() * sizeof(T), "vector");
  }

  /// Charge a raw transfer without a Buffer (matrix images, vector
  /// spans staged around a launch). `what` names the payload in the
  /// pcie ledger lane ("matrix", "vector").
  void stage_to_device(std::uint64_t bytes, const char* what);
  void stage_to_host(std::uint64_t bytes, const char* what);

  /// Account a kernel execution on the shared device clock.
  void launch(const gpusim::KernelResult& kernel);

  /// Simulated seconds spent in staging through this manager.
  double transfer_seconds() const;
  std::uint64_t bytes_to_device() const;
  std::uint64_t bytes_to_host() const;
  std::uint64_t transfers() const;

 private:
  void stage(std::uint64_t bytes, const char* what, bool to_device);

  std::shared_ptr<gpusim::DeviceRuntime> dev_;
  std::shared_ptr<std::mutex> mu_;
  std::uint64_t h2d_bytes_ = 0;
  std::uint64_t d2h_bytes_ = 0;
  std::uint64_t transfers_ = 0;
  double seconds_ = 0.0;
};

}  // namespace spmvm::exec
