// The sanctioned raw-kernel entry points (DESIGN.md §13).
//
// After the exec refactor, no code outside src/exec names the host
// kernel entry points or the device runtime directly; layers that need
// a bare product without a full Backend bind — the solver's CSR
// operator shortcut, the distributed local/non-local products — go
// through these inline wrappers. They add nothing on top of the
// kernels (the kernels carry their own obs instrumentation); their
// value is that the kernel-dispatch surface greps to exactly one
// directory.
#pragma once

#include <span>

#include "formats/format_plan.hpp"
#include "sparse/csr.hpp"
#include "sparse/spmv_host.hpp"

namespace spmvm::exec {

/// y = A·x with the host CSR kernel.
template <class T>
inline void host_spmv(const Csr<T>& a, std::span<const T> x, std::span<T> y,
                      int n_threads = 1) {
  spmv(a, x, y, n_threads);
}

/// y = β·y + α·A·x with the fused host CSR kernel.
template <class T>
inline void host_spmv_axpby(const Csr<T>& a, std::span<const T> x,
                            std::span<T> y, T alpha, T beta,
                            int n_threads = 1) {
  spmv_axpby(a, x, y, alpha, beta, n_threads);
}

/// y = A·x in the plan's own basis (see formats::FormatPlan).
template <class T>
inline void plan_spmv(const formats::FormatPlan<T>& plan,
                      std::span<const T> x, std::span<T> y,
                      int n_threads = 1) {
  plan.spmv(x, y, n_threads);
}

/// Fused plan update; returns false (y untouched) when the format has
/// no native kernel — callers fall back to plan_spmv + a BLAS-1 pass.
template <class T>
inline bool plan_spmv_axpby(const formats::FormatPlan<T>& plan,
                            std::span<const T> x, std::span<T> y, T alpha,
                            T beta, int n_threads = 1) {
  return plan.spmv_axpby(x, y, alpha, beta, n_threads);
}

}  // namespace spmvm::exec
