#include "exec/engine.hpp"

#include <algorithm>
#include <string>

#include "perfmodel/balance.hpp"

namespace spmvm::exec {

template <class T>
Engine<T>::Engine(EngineOptions opt)
    : opt_(std::move(opt)),
      tm_(std::make_shared<TransferManager>(
          std::make_shared<gpusim::DeviceRuntime>(
              opt_.device, opt_.ecc && opt_.device.has_ecc))) {
  backends_.push_back(make_host_backend<T>());
  backends_.push_back(make_gpusim_backend<T>(tm_));
  backends_.push_back(make_hybrid_backend<T>(tm_, opt_.roofs));
}

template <class T>
std::vector<BackendInfo> Engine<T>::list() const {
  std::vector<BackendInfo> out;
  out.reserve(backends_.size());
  for (const auto& b : backends_) out.push_back(b->info());
  return out;
}

template <class T>
Backend<T>* Engine<T>::find(std::string_view name) const {
  for (const auto& b : backends_)
    if (name == b->info().name) return b.get();
  return nullptr;
}

template <class T>
Backend<T>& Engine<T>::at(std::string_view name) const {
  Backend<T>* b = find(name);
  if (b == nullptr) {
    std::string known;
    for (const auto& e : backends_) {
      known += e->info().name;
      known += ", ";
    }
    throw Error("unknown backend '" + std::string(name) + "'; registered: " +
                known + "auto");
  }
  return *b;
}

template <class T>
std::unique_ptr<BoundSpmv<T>> Engine<T>::bind(
    std::string_view backend, const Csr<T>& a, std::string_view format,
    const formats::PlanOptions& opts, const LaunchOptions& launch) {
  if (backend == "auto") {
    const BackendChoice choice = select_backend(a);
    return at(choice.chosen).bind(a, format, opts, launch);
  }
  return at(backend).bind(a, format, opts, launch);
}

template <class T>
std::unique_ptr<BoundSpmv<T>> Engine<T>::bind_plan(
    std::string_view backend,
    std::shared_ptr<const formats::FormatPlan<T>> plan,
    const LaunchOptions& launch) {
  SPMVM_REQUIRE(plan != nullptr, "cannot bind a null plan");
  if (backend == "auto") {
    const BackendChoice choice =
        select_backend(plan->n_rows(), plan->n_cols(), plan->nnz());
    return at(choice.chosen).bind_plan(std::move(plan), launch);
  }
  return at(backend).bind_plan(std::move(plan), launch);
}

template <class T>
BackendChoice Engine<T>::select_backend(const Csr<T>& a) const {
  return select_backend(a.n_rows, a.n_cols, a.nnz());
}

template <class T>
BackendChoice Engine<T>::select_backend(index_t n_rows, index_t n_cols,
                                        offset_t nnz) const {
  BackendChoice c;
  if (nnz <= 0 || n_rows <= 0) {
    c.chosen = "host";
    return c;
  }
  // Eq. 1 at ideal α bounds the kernel on either side of the link;
  // Eq. 2 adds the per-product vector staging for any device
  // involvement; the hybrid bound assumes the ideal row split over the
  // combined bandwidth, with only the device-share result downloaded.
  const double s = static_cast<double>(sizeof(T));
  const double nnzr =
      static_cast<double>(nnz) / static_cast<double>(n_rows);
  const double balance =
      perfmodel::code_balance(sizeof(T), perfmodel::alpha_ideal(nnzr), nnzr);
  const double flops = 2.0 * static_cast<double>(nnz);
  const double bytes = flops * balance;
  const double bwh =
      opt_.roofs.bw_gbs[static_cast<int>(obs::RoofLane::host)] * 1e9;
  const double bwd =
      opt_.roofs.bw_gbs[static_cast<int>(obs::RoofLane::device)] * 1e9;
  const double bwp =
      opt_.roofs.bw_gbs[static_cast<int>(obs::RoofLane::pcie)] * 1e9;
  const double lat = opt_.device.pcie_latency_s;

  c.host_seconds = bytes / bwh;
  c.gpusim_seconds =
      bytes / bwd + 2.0 * lat +
      static_cast<double>(n_rows + n_cols) * s / bwp;
  const double f = bwd / (bwd + bwh);
  c.hybrid_device_share = f;
  c.hybrid_seconds =
      bytes / (bwh + bwd) + 2.0 * lat +
      (static_cast<double>(n_cols) + f * static_cast<double>(n_rows)) * s /
          bwp;

  // Deterministic tie-break: host < gpusim < hybrid.
  c.chosen = "host";
  double best = c.host_seconds;
  if (c.gpusim_seconds < best) {
    best = c.gpusim_seconds;
    c.chosen = "gpusim";
  }
  if (c.hybrid_seconds < best) c.chosen = "hybrid";
  return c;
}

template <class T>
Engine<T>& engine() {
  static Engine<T> e;
  return e;
}

bool is_backend_name(std::string_view name) {
  return name == "host" || name == "gpusim" || name == "hybrid" ||
         name == "auto";
}

template class Engine<float>;
template class Engine<double>;
template Engine<float>& engine<float>();
template Engine<double>& engine<double>();

}  // namespace spmvm::exec
