// The execution engine: the registry of backends (DESIGN.md §13).
//
// One Engine owns one simulated device, the TransferManager guarding
// it, and the three backends — host, gpusim, hybrid — plus the `auto`
// pseudo-backend that picks among them with the paper's balance model:
// Eq. 1 bounds the kernel on either side of the PCIe link, Eq. 2 adds
// the per-product vector staging, and the hybrid bound assumes the
// ideal row split over the combined host+device bandwidth. The choice
// is purely model-driven and deterministic (no probing), mirroring the
// paper's Sec. III argument for when a GPGPU (or a CPU+GPU split) pays
// off at all.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "exec/backend.hpp"
#include "exec/buffer.hpp"
#include "gpusim/device_spec.hpp"
#include "obs/roofline.hpp"

namespace spmvm::exec {

struct EngineOptions {
  gpusim::DeviceSpec device = gpusim::DeviceSpec::tesla_c2070();
  bool ecc = true;
  /// Bandwidth roofs steering the hybrid row split and the `auto`
  /// backend choice (env-overridable via SPMVM_*_BW_GBS).
  obs::RooflineSpec roofs = obs::RooflineSpec::from_env();
};

/// Outcome of the Eq. 1/Eq. 2 backend selection: modeled seconds per
/// product on each backend, and the winner.
struct BackendChoice {
  std::string chosen;
  double host_seconds = 0.0;
  double gpusim_seconds = 0.0;
  double hybrid_seconds = 0.0;
  /// Device nnz share the hybrid bound assumed.
  double hybrid_device_share = 0.0;
};

// Backend factories (backends.cpp). The hybrid backend composes the
// other two, so it takes both.
template <class T>
std::unique_ptr<Backend<T>> make_host_backend();
template <class T>
std::unique_ptr<Backend<T>> make_gpusim_backend(
    std::shared_ptr<TransferManager> tm);
template <class T>
std::unique_ptr<Backend<T>> make_hybrid_backend(
    std::shared_ptr<TransferManager> tm, const obs::RooflineSpec& roofs);

template <class T>
class Engine {
 public:
  explicit Engine(EngineOptions opt = {});

  /// Registered backends, registration order (host, gpusim, hybrid).
  std::vector<BackendInfo> list() const;

  /// Backend by exact name; nullptr when unknown ("auto" is resolved by
  /// bind(), not a registered backend).
  Backend<T>* find(std::string_view name) const;

  /// Backend by name, throwing spmvm::Error (listing what exists) for
  /// unknown names.
  Backend<T>& at(std::string_view name) const;

  /// Build `format` from `a` and bind it to `backend` ("auto" selects
  /// via select_backend).
  std::unique_ptr<BoundSpmv<T>> bind(std::string_view backend,
                                     const Csr<T>& a,
                                     std::string_view format = "csr",
                                     const formats::PlanOptions& opts = {},
                                     const LaunchOptions& launch = {});

  /// Bind an already-built plan ("auto" selects on the recovered CSR
  /// shape — prefer bind() when the matrix is at hand).
  std::unique_ptr<BoundSpmv<T>> bind_plan(
      std::string_view backend,
      std::shared_ptr<const formats::FormatPlan<T>> plan,
      const LaunchOptions& launch = {});

  /// The deterministic Eq. 1/Eq. 2 model choice for `a`.
  BackendChoice select_backend(const Csr<T>& a) const;
  BackendChoice select_backend(index_t n_rows, index_t n_cols,
                               offset_t nnz) const;

  const EngineOptions& options() const { return opt_; }
  const std::shared_ptr<TransferManager>& transfers() const { return tm_; }

 private:
  EngineOptions opt_;
  std::shared_ptr<TransferManager> tm_;
  std::vector<std::unique_ptr<Backend<T>>> backends_;
};

/// The process-wide engine with default options — what the operator
/// factories and benches use when nobody manages device state
/// explicitly. Created on first use.
template <class T>
Engine<T>& engine();

/// True when `name` is a valid --backend argument (a registered backend
/// or "auto").
bool is_backend_name(std::string_view name);

extern template class Engine<float>;
extern template class Engine<double>;
extern template Engine<float>& engine<float>();
extern template Engine<double>& engine<double>();

}  // namespace spmvm::exec
