#include "formats/auto_select.hpp"

#include <algorithm>
#include <numeric>
#include <string_view>
#include <vector>

#include "formats/registry.hpp"
#include "obs/metrics.hpp"
#include "perfmodel/balance.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace spmvm::formats {

namespace {

/// Delegating wrapper returned by the "auto" registry entry: behaves
/// exactly like the chosen plan but reports the selection record.
template <class T>
class AutoPlan final : public FormatPlan<T> {
 public:
  AutoPlan(std::shared_ptr<const FormatPlan<T>> chosen, AutoChoice choice,
           const FormatInfo& info)
      : chosen_(std::move(chosen)), choice_(std::move(choice)), info_(&info) {}

  const FormatInfo& info() const override { return *info_; }
  index_t n_rows() const override { return chosen_->n_rows(); }
  index_t n_cols() const override { return chosen_->n_cols(); }
  offset_t nnz() const override { return chosen_->nnz(); }
  Footprint footprint() const override { return chosen_->footprint(); }
  Csr<T> to_csr() const override { return chosen_->to_csr(); }
  void spmv(std::span<const T> x, std::span<T> y,
            int n_threads) const override {
    chosen_->spmv(x, y, n_threads);
  }
  bool spmv_axpby(std::span<const T> x, std::span<T> y, T alpha, T beta,
                  int n_threads) const override {
    return chosen_->spmv_axpby(x, y, alpha, beta, n_threads);
  }
  void spmmv(std::span<const T> x, std::span<T> y, int k,
             int n_threads) const override {
    chosen_->spmmv(x, y, k, n_threads);
  }
  const Permutation* permutation() const override {
    return chosen_->permutation();
  }
  bool columns_permuted() const override { return chosen_->columns_permuted(); }
  std::optional<gpusim::KernelResult> simulate(
      const gpusim::DeviceSpec& dev,
      const gpusim::SimOptions& opt) const override {
    return chosen_->simulate(dev, opt);
  }
  const AutoChoice* auto_choice() const override { return &choice_; }

 private:
  std::shared_ptr<const FormatPlan<T>> chosen_;
  AutoChoice choice_;
  const FormatInfo* info_;
};

/// α measured once per matrix: the simulator's L2 model walked with a
/// reference kernel. ELLPACK-R is the designated reference (the kernel
/// Eq. 1 was written for); any sim-capable candidate serves as fallback
/// so a trimmed-down registry still works.
template <class T>
double measure_alpha(
    const std::vector<std::shared_ptr<const FormatPlan<T>>>& plans) {
  const gpusim::DeviceSpec dev = gpusim::DeviceSpec::tesla_c2070();
  const FormatPlan<T>* fallback = nullptr;
  for (const auto& p : plans) {
    if (!p->info().has_sim_kernel) continue;
    if (std::string_view(p->info().name) == "ellpack_r")
      return p->simulate(dev)->stats.measured_alpha(sizeof(T));
    if (fallback == nullptr) fallback = p.get();
  }
  if (fallback != nullptr)
    return fallback->simulate(dev)->stats.measured_alpha(sizeof(T));
  return 1.0;  // worst case of Eq. 1 when nothing can be simulated
}

}  // namespace

template <class T>
AutoChoice choose_format(
    const FormatRegistry<T>& reg, const Csr<T>& a, const PlanOptions& opts,
    std::vector<std::shared_ptr<const FormatPlan<T>>>* built) {
  SPMVM_REQUIRE(a.nnz() > 0, "auto format selection needs a non-empty matrix");

  std::vector<std::shared_ptr<const FormatPlan<T>>> plans;
  AutoChoice choice;
  for (const auto& e : reg.entries()) {
    if (std::string_view(e.info.name) == "auto") continue;
    plans.push_back(e.builder(a, opts, e.info));
    choice.candidates.push_back({e.info.name, 0.0, -1.0});
  }
  SPMVM_REQUIRE(!plans.empty(), "format registry has no concrete formats");

  choice.alpha_measured = measure_alpha(plans);
  for (std::size_t i = 0; i < plans.size(); ++i) {
    const Footprint f = plans[i]->footprint();
    choice.candidates[i].balance = perfmodel::code_balance_stored(
        f.total_bytes(sizeof(T)), static_cast<std::size_t>(a.nnz()),
        static_cast<std::size_t>(a.n_rows), sizeof(T), choice.alpha_measured);
  }

  // Model ranking; stable sort keeps registry order on exact ties, so
  // the model-only path is fully deterministic.
  std::vector<std::size_t> order(plans.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t l, std::size_t r) {
    return choice.candidates[l].balance < choice.candidates[r].balance;
  });
  choice.model_index = order.front();
  choice.chosen_index = choice.model_index;

  if (opts.probe) {
    const std::size_t k =
        opts.probe_candidates <= 0
            ? order.size()
            : std::min<std::size_t>(
                  static_cast<std::size_t>(opts.probe_candidates),
                  order.size());
    std::vector<T> x(static_cast<std::size_t>(a.n_cols), T{1});
    std::vector<T> y(static_cast<std::size_t>(a.n_rows));
    for (std::size_t j = 0; j < k; ++j) {
      const std::size_t i = order[j];
      const MeasureStats s = measure_seconds_stats(
          opts.probe_min_seconds, opts.probe_reps, [&] {
            plans[i]->spmv(std::span<const T>(x), std::span<T>(y),
                           opts.probe_threads);
          });
      choice.candidates[i].probe_seconds = s.min_seconds;
    }
    std::size_t best = choice.chosen_index;
    for (std::size_t j = 0; j < k; ++j) {
      const std::size_t i = order[j];
      if (choice.candidates[i].probe_seconds <
          choice.candidates[best].probe_seconds)
        best = i;
    }
    choice.chosen_index = best;
  }

  choice.chosen = choice.candidates[choice.chosen_index].name;
  if (built != nullptr) *built = std::move(plans);
  return choice;
}

template <class T>
std::unique_ptr<FormatPlan<T>> make_auto_plan(const FormatRegistry<T>& reg,
                                              const Csr<T>& a,
                                              const PlanOptions& opts,
                                              const FormatInfo& info) {
  std::vector<std::shared_ptr<const FormatPlan<T>>> plans;
  AutoChoice choice = choose_format(reg, a, opts, &plans);

  obs::gauge("formats.auto.alpha_measured").set(choice.alpha_measured);
  obs::gauge("formats.auto.chosen_index")
      .set(static_cast<double>(choice.chosen_index));
  obs::gauge("formats.auto.model_index")
      .set(static_cast<double>(choice.model_index));
  for (const AutoCandidate& c : choice.candidates) {
    obs::gauge("formats.auto.balance." + c.name).set(c.balance);
    if (c.probe_seconds >= 0.0)
      obs::gauge("formats.auto.probe_seconds." + c.name).set(c.probe_seconds);
  }

  auto chosen = plans[choice.chosen_index];
  return std::make_unique<AutoPlan<T>>(std::move(chosen), std::move(choice),
                                       info);
}

#define SPMVM_INSTANTIATE_AUTO_SELECT(T)                            \
  template AutoChoice choose_format(                                \
      const FormatRegistry<T>&, const Csr<T>&, const PlanOptions&,  \
      std::vector<std::shared_ptr<const FormatPlan<T>>>*);          \
  template std::unique_ptr<FormatPlan<T>> make_auto_plan(           \
      const FormatRegistry<T>&, const Csr<T>&, const PlanOptions&,  \
      const FormatInfo&)

SPMVM_INSTANTIATE_AUTO_SELECT(float);
SPMVM_INSTANTIATE_AUTO_SELECT(double);

}  // namespace spmvm::formats
