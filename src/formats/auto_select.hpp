// Model-guided format selection — the paper's implicit workflow made a
// first-class plan.
//
// Policy (see DESIGN.md "Format engine"):
//   1. Measure α (the Eq. 1 RHS re-load factor) once per matrix with the
//      kernel simulator's L2 model — α is a property of the matrix'
//      column structure, not of the storage format.
//   2. Rank every registered concrete format by the generalized Eq. 1
//      code balance at that α (perfmodel::code_balance_stored over the
//      format's real footprint, so zero fill and metadata count).
//   3. Optionally confirm with a short measured host probe of the top
//      candidates (measure_seconds_stats); the probed minimum wins.
// With probing disabled the selection is bit-deterministic: the
// simulator is exact and ties break by registry order.
#pragma once

#include <memory>

#include "formats/format_plan.hpp"

namespace spmvm::formats {

template <class T>
class FormatRegistry;

/// Run the selection policy over every concrete (non-auto) registry
/// entry. When `built` is non-null the constructed candidate plans are
/// returned through it (index-aligned with AutoChoice::candidates) so
/// the caller can reuse the winner without rebuilding.
template <class T>
AutoChoice choose_format(
    const FormatRegistry<T>& reg, const Csr<T>& a, const PlanOptions& opts,
    std::vector<std::shared_ptr<const FormatPlan<T>>>* built = nullptr);

/// The registry builder behind the "auto" entry: runs choose_format and
/// wraps the winning plan, recording the choice in obs gauges
/// (formats.auto.*) and exposing it via FormatPlan::auto_choice().
template <class T>
std::unique_ptr<FormatPlan<T>> make_auto_plan(const FormatRegistry<T>& reg,
                                              const Csr<T>& a,
                                              const PlanOptions& opts,
                                              const FormatInfo& info);

#define SPMVM_EXTERN_AUTO_SELECT(T)                                       \
  extern template AutoChoice choose_format(                               \
      const FormatRegistry<T>&, const Csr<T>&, const PlanOptions&,        \
      std::vector<std::shared_ptr<const FormatPlan<T>>>*);                \
  extern template std::unique_ptr<FormatPlan<T>> make_auto_plan(          \
      const FormatRegistry<T>&, const Csr<T>&, const PlanOptions&,        \
      const FormatInfo&)

SPMVM_EXTERN_AUTO_SELECT(float);
SPMVM_EXTERN_AUTO_SELECT(double);
#undef SPMVM_EXTERN_AUTO_SELECT

}  // namespace spmvm::formats
