// The format engine's type-erased plan interface.
//
// A FormatPlan owns one matrix in one storage format and exposes the
// operations every consumer needs — host kernels, footprint accounting,
// the row-permutation handle, CSR recovery, and the gpusim kernel hook —
// behind a uniform virtual interface. Consumers (solver Operator, the
// distributed kernels, the benches) hold plans and never name concrete
// formats; the FormatRegistry (registry.hpp) is the only place formats
// are enumerated.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "gpusim/device_spec.hpp"
#include "gpusim/kernel_sim.hpp"
#include "sparse/csr.hpp"
#include "sparse/footprint.hpp"
#include "sparse/permutation.hpp"
#include "util/error.hpp"

namespace spmvm::formats {

/// Static capabilities of one registered format. Returned by
/// FormatRegistry::list() and FormatPlan::info().
struct FormatInfo {
  const char* name = "";
  const char* description = "";
  bool sorts_rows = false;   // may produce a non-identity row permutation
  bool native_axpby = false; // fused y = β·y + α·A·x kernel available
  bool has_sim_kernel = false;  // gpusim hook (FormatPlan::simulate)
  bool native_spmmv = false;    // fused block-RHS kernel (FormatPlan::spmmv)
};

/// Build-time knobs shared by every format. Formats read the fields that
/// apply to them (chunk = br / C / row_chunk) and ignore the rest, so one
/// options struct can configure any registry entry.
struct PlanOptions {
  /// Warp-granularity parameter: pJDS block_rows, sliced-ELL slice
  /// height C, ELLPACK row chunk, BELLPACK block-row chunk.
  index_t chunk = 32;
  /// σ for sell_c_sigma (0 = format default of 8·chunk). sliced_ell
  /// always uses σ = 1.
  index_t sort_window = 0;
  /// BELLPACK tile shape.
  index_t block_r = 4;
  index_t block_c = 4;
  /// Relabel columns with the row permutation (symmetric permutation) in
  /// row-sorting formats so solvers can iterate entirely in the permuted
  /// basis. Automatically demoted to `no` for non-square matrices.
  PermuteColumns permute_columns = PermuteColumns::yes;

  // ---- `auto` plan only ----
  /// Confirm the Eq. 1 ranking with a measured probe of the top
  /// candidates. With probe = false selection is purely model-driven and
  /// bit-deterministic (used by tests).
  bool probe = true;
  /// How many of the model-ranked candidates to probe (<= 0: all).
  int probe_candidates = 2;
  double probe_min_seconds = 0.002;
  int probe_reps = 3;
  int probe_threads = 1;
};

struct AutoCandidate {
  std::string name;
  double balance = 0.0;         // Eq. 1 bytes/flop at measured α
  double probe_seconds = -1.0;  // min-of-reps host probe; -1 = not probed
};

/// Selection record of the `auto` plan (auto_select.hpp).
struct AutoChoice {
  std::string chosen;
  double alpha_measured = 0.0;          // α from the simulator's L2 model
  std::vector<AutoCandidate> candidates;  // registry order
  /// Index of `chosen` within `candidates`.
  std::size_t chosen_index = 0;
  /// Index of the best candidate by model balance alone.
  std::size_t model_index = 0;
};

/// One matrix held in one storage format. Basis convention: when
/// permutation() is non-null the plan's kernels work in the permuted
/// basis — spmv computes y_perm = A_perm·x(_perm) exactly like the
/// underlying format kernels (the host-kernel layer in src/sparse). Callers that
/// need the original basis carry vectors across with the handle.
template <class T>
class FormatPlan {
 public:
  virtual ~FormatPlan() = default;

  virtual const FormatInfo& info() const = 0;
  virtual index_t n_rows() const = 0;
  virtual index_t n_cols() const = 0;
  virtual offset_t nnz() const = 0;

  /// Stored entries / zero fill / aux-array accounting.
  virtual Footprint footprint() const = 0;

  /// Recover the original matrix (fill dropped, permutations undone).
  virtual Csr<T> to_csr() const = 0;

  /// y = A·x (permuted basis when permutation() != nullptr).
  virtual void spmv(std::span<const T> x, std::span<T> y,
                    int n_threads = 1) const = 0;

  /// Fused y = β·y + α·A·x when the format has a native kernel; returns
  /// false (leaving y untouched) when it does not — callers fall back to
  /// spmv + a BLAS-1 pass. info().native_axpby announces which.
  virtual bool spmv_axpby(std::span<const T> /*x*/, std::span<T> /*y*/,
                          T /*alpha*/, T /*beta*/, int /*n_threads*/ = 1) const {
    return false;
  }

  /// Block-RHS product Y = A·X for k row-major interleaved vectors
  /// (x[i*k + v], y[i*k + v], the core/spmmv layout). The default
  /// de-interleaves into k single-vector spmv() calls — bit-identical to
  /// issuing the vectors one by one — so every format accepts block
  /// launches; formats with a fused block kernel (info().native_spmmv)
  /// override it and amortize the matrix stream over the k vectors.
  virtual void spmmv(std::span<const T> x, std::span<T> y, int k,
                     int n_threads = 1) const {
    const auto cols = static_cast<std::size_t>(n_cols());
    const auto rows = static_cast<std::size_t>(n_rows());
    const auto kk = static_cast<std::size_t>(k > 0 ? k : 0);
    SPMVM_REQUIRE(kk >= 1 && x.size() >= cols * kk && y.size() >= rows * kk,
                  "spMMV block too small for k interleaved vectors");
    std::vector<T> xv(cols), yv(rows);
    for (std::size_t v = 0; v < kk; ++v) {
      for (std::size_t i = 0; i < cols; ++i) xv[i] = x[i * kk + v];
      spmv(std::span<const T>(xv), std::span<T>(yv), n_threads);
      for (std::size_t i = 0; i < rows; ++i) y[i * kk + v] = yv[i];
    }
  }

  /// Row permutation of the stored matrix; nullptr = identity (kernels
  /// work in the original basis).
  virtual const Permutation* permutation() const { return nullptr; }

  /// Whether columns were relabeled with the row permutation (symmetric
  /// permutation); only meaningful when permutation() != nullptr.
  virtual bool columns_permuted() const { return false; }

  /// Simulate one spMVM of this plan's kernel on `dev`; nullopt when the
  /// format has no simulated kernel (info().has_sim_kernel == false).
  virtual std::optional<gpusim::KernelResult> simulate(
      const gpusim::DeviceSpec& /*dev*/,
      const gpusim::SimOptions& /*opt*/ = {}) const {
    return std::nullopt;
  }

  /// Selection record when this is the `auto` plan; nullptr otherwise.
  virtual const AutoChoice* auto_choice() const { return nullptr; }
};

}  // namespace spmvm::formats
