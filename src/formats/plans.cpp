#include "formats/plans.hpp"

#include "core/spmmv.hpp"
#include "sparse/pjds_spmv.hpp"
#include "sparse/spmv_host.hpp"
#include "sparse/to_csr.hpp"

namespace spmvm::formats {

// ---- CSR ----

template <class T>
Footprint CsrPlan<T>::footprint() const {
  return spmvm::footprint(a_);
}

template <class T>
void CsrPlan<T>::spmv(std::span<const T> x, std::span<T> y,
                      int n_threads) const {
  spmvm::spmv(a_, x, y, n_threads);
}

template <class T>
bool CsrPlan<T>::spmv_axpby(std::span<const T> x, std::span<T> y, T alpha,
                            T beta, int n_threads) const {
  spmvm::spmv_axpby(a_, x, y, alpha, beta, n_threads);
  return true;
}

template <class T>
void CsrPlan<T>::spmmv(std::span<const T> x, std::span<T> y, int k,
                       int n_threads) const {
  spmvm::spmmv(a_, x, y, k, n_threads);
}

template <class T>
std::optional<gpusim::KernelResult> CsrPlan<T>::simulate(
    const gpusim::DeviceSpec& dev, const gpusim::SimOptions& opt) const {
  return gpusim::simulate_csr_vector(dev, a_, opt);
}

// ---- ELLPACK / ELLPACK-R ----

template <class T>
Footprint EllpackPlan<T>::footprint() const {
  return spmvm::footprint(a_, /*with_row_len=*/r_kernel_);
}

template <class T>
Csr<T> EllpackPlan<T>::to_csr() const {
  return spmvm::to_csr(a_);
}

template <class T>
void EllpackPlan<T>::spmv(std::span<const T> x, std::span<T> y,
                          int n_threads) const {
  if (r_kernel_)
    spmv_ellpack_r(a_, x, y, n_threads);
  else
    spmv_ellpack(a_, x, y, n_threads);
}

template <class T>
std::optional<gpusim::KernelResult> EllpackPlan<T>::simulate(
    const gpusim::DeviceSpec& dev, const gpusim::SimOptions& opt) const {
  return gpusim::simulate(
      dev, a_, r_kernel_ ? gpusim::EllpackKernel::r : gpusim::EllpackKernel::plain,
      opt);
}

// ---- JDS ----

template <class T>
Footprint JdsPlan<T>::footprint() const {
  return spmvm::footprint(a_);
}

template <class T>
Csr<T> JdsPlan<T>::to_csr() const {
  return spmvm::to_csr(
      a_, columns_permuted_ ? PermuteColumns::yes : PermuteColumns::no);
}

template <class T>
void JdsPlan<T>::spmv(std::span<const T> x, std::span<T> y,
                      int /*n_threads*/) const {
  spmvm::spmv(a_, x, y);
}

// ---- sliced ELLPACK / SELL-C-σ ----

template <class T>
Footprint SlicedEllPlan<T>::footprint() const {
  return spmvm::footprint(a_);
}

template <class T>
Csr<T> SlicedEllPlan<T>::to_csr() const {
  return spmvm::to_csr(
      a_, a_.columns_permuted ? PermuteColumns::yes : PermuteColumns::no);
}

template <class T>
void SlicedEllPlan<T>::spmv(std::span<const T> x, std::span<T> y,
                            int n_threads) const {
  spmvm::spmv(a_, x, y, n_threads);
}

template <class T>
bool SlicedEllPlan<T>::spmv_axpby(std::span<const T> x, std::span<T> y,
                                  T alpha, T beta, int n_threads) const {
  spmvm::spmv_axpby(a_, x, y, alpha, beta, n_threads);
  return true;
}

template <class T>
std::optional<gpusim::KernelResult> SlicedEllPlan<T>::simulate(
    const gpusim::DeviceSpec& dev, const gpusim::SimOptions& opt) const {
  return gpusim::simulate(dev, a_, opt);
}

// ---- BELLPACK ----

template <class T>
Footprint BellpackPlan<T>::footprint() const {
  return spmvm::footprint(a_);
}

template <class T>
Csr<T> BellpackPlan<T>::to_csr() const {
  return spmvm::to_csr(a_);
}

template <class T>
void BellpackPlan<T>::spmv(std::span<const T> x, std::span<T> y,
                           int n_threads) const {
  spmvm::spmv(a_, x, y, n_threads);
}

// ---- pJDS ----

template <class T>
Footprint PjdsPlan<T>::footprint() const {
  return spmvm::footprint(a_);
}

template <class T>
Csr<T> PjdsPlan<T>::to_csr() const {
  return spmvm::to_csr(a_);
}

template <class T>
void PjdsPlan<T>::spmv(std::span<const T> x, std::span<T> y,
                       int n_threads) const {
  spmvm::spmv(a_, x, y, n_threads);
}

template <class T>
bool PjdsPlan<T>::spmv_axpby(std::span<const T> x, std::span<T> y, T alpha,
                             T beta, int n_threads) const {
  spmvm::spmv_axpby(a_, x, y, alpha, beta, n_threads);
  return true;
}

template <class T>
void PjdsPlan<T>::spmmv(std::span<const T> x, std::span<T> y, int k,
                        int n_threads) const {
  spmvm::spmmv(a_, x, y, k, n_threads);
}

template <class T>
std::optional<gpusim::KernelResult> PjdsPlan<T>::simulate(
    const gpusim::DeviceSpec& dev, const gpusim::SimOptions& opt) const {
  return gpusim::simulate(dev, a_, opt);
}

#define SPMVM_INSTANTIATE_PLANS(T)   \
  template class CsrPlan<T>;         \
  template class EllpackPlan<T>;     \
  template class JdsPlan<T>;         \
  template class SlicedEllPlan<T>;   \
  template class BellpackPlan<T>;    \
  template class PjdsPlan<T>

SPMVM_INSTANTIATE_PLANS(float);
SPMVM_INSTANTIATE_PLANS(double);

}  // namespace spmvm::formats
