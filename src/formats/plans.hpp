// Concrete FormatPlan implementations, one per storage format.
//
// Exposed (rather than hidden in registry.cpp) for the few callers that
// need the native struct behind a plan — e.g. bench baselines accessing
// raw pJDS arrays — via `dynamic_cast<const PjdsPlan<T>*>(plan)->format()`.
// Everything else should stay on the FormatPlan interface.
#pragma once

#include "formats/format_plan.hpp"
#include "sparse/bellpack.hpp"
#include "sparse/ellpack.hpp"
#include "sparse/jds.hpp"
#include "sparse/pjds.hpp"
#include "sparse/sliced_ell.hpp"

namespace spmvm::formats {

template <class T>
class CsrPlan final : public FormatPlan<T> {
 public:
  CsrPlan(Csr<T> a, const FormatInfo& info) : a_(std::move(a)), info_(&info) {}
  const Csr<T>& format() const { return a_; }

  const FormatInfo& info() const override { return *info_; }
  index_t n_rows() const override { return a_.n_rows; }
  index_t n_cols() const override { return a_.n_cols; }
  offset_t nnz() const override { return a_.nnz(); }
  Footprint footprint() const override;
  Csr<T> to_csr() const override { return a_; }
  void spmv(std::span<const T> x, std::span<T> y,
            int n_threads) const override;
  bool spmv_axpby(std::span<const T> x, std::span<T> y, T alpha, T beta,
                  int n_threads) const override;
  void spmmv(std::span<const T> x, std::span<T> y, int k,
             int n_threads) const override;
  std::optional<gpusim::KernelResult> simulate(
      const gpusim::DeviceSpec& dev,
      const gpusim::SimOptions& opt) const override;

 private:
  Csr<T> a_;
  const FormatInfo* info_;
};

/// Shared by the `ellpack` (plain kernel, Fig. 2a) and `ellpack_r`
/// (rowmax early exit, Listing 1) registry entries — same storage,
/// different kernel.
template <class T>
class EllpackPlan final : public FormatPlan<T> {
 public:
  EllpackPlan(Ellpack<T> a, const FormatInfo& info, bool r_kernel)
      : a_(std::move(a)), info_(&info), r_kernel_(r_kernel) {}
  const Ellpack<T>& format() const { return a_; }

  const FormatInfo& info() const override { return *info_; }
  index_t n_rows() const override { return a_.n_rows; }
  index_t n_cols() const override { return a_.n_cols; }
  offset_t nnz() const override { return a_.nnz; }
  Footprint footprint() const override;
  Csr<T> to_csr() const override;
  void spmv(std::span<const T> x, std::span<T> y,
            int n_threads) const override;
  std::optional<gpusim::KernelResult> simulate(
      const gpusim::DeviceSpec& dev,
      const gpusim::SimOptions& opt) const override;

 private:
  Ellpack<T> a_;
  const FormatInfo* info_;
  bool r_kernel_;
};

template <class T>
class JdsPlan final : public FormatPlan<T> {
 public:
  JdsPlan(Jds<T> a, const FormatInfo& info, bool columns_permuted)
      : a_(std::move(a)), info_(&info), columns_permuted_(columns_permuted) {}
  const Jds<T>& format() const { return a_; }

  const FormatInfo& info() const override { return *info_; }
  index_t n_rows() const override { return a_.n_rows; }
  index_t n_cols() const override { return a_.n_cols; }
  offset_t nnz() const override { return a_.nnz; }
  Footprint footprint() const override;
  Csr<T> to_csr() const override;
  void spmv(std::span<const T> x, std::span<T> y,
            int n_threads) const override;
  const Permutation* permutation() const override { return &a_.perm; }
  bool columns_permuted() const override { return columns_permuted_; }

 private:
  Jds<T> a_;
  const FormatInfo* info_;
  bool columns_permuted_;
};

/// Shared by `sliced_ell` (σ = 1, original row order) and `sell_c_sigma`
/// (σ > 1, windowed descending sort) registry entries.
template <class T>
class SlicedEllPlan final : public FormatPlan<T> {
 public:
  SlicedEllPlan(SlicedEll<T> a, const FormatInfo& info) : a_(std::move(a)), info_(&info) {}
  const SlicedEll<T>& format() const { return a_; }

  const FormatInfo& info() const override { return *info_; }
  index_t n_rows() const override { return a_.n_rows; }
  index_t n_cols() const override { return a_.n_cols; }
  offset_t nnz() const override { return a_.nnz; }
  Footprint footprint() const override;
  Csr<T> to_csr() const override;
  void spmv(std::span<const T> x, std::span<T> y,
            int n_threads) const override;
  bool spmv_axpby(std::span<const T> x, std::span<T> y, T alpha, T beta,
                  int n_threads) const override;
  const Permutation* permutation() const override {
    return a_.sort_window > 1 ? &a_.perm : nullptr;
  }
  bool columns_permuted() const override { return a_.columns_permuted; }
  std::optional<gpusim::KernelResult> simulate(
      const gpusim::DeviceSpec& dev,
      const gpusim::SimOptions& opt) const override;

 private:
  SlicedEll<T> a_;
  const FormatInfo* info_;
};

template <class T>
class BellpackPlan final : public FormatPlan<T> {
 public:
  BellpackPlan(Bellpack<T> a, const FormatInfo& info) : a_(std::move(a)), info_(&info) {}
  const Bellpack<T>& format() const { return a_; }

  const FormatInfo& info() const override { return *info_; }
  index_t n_rows() const override { return a_.n_rows; }
  index_t n_cols() const override { return a_.n_cols; }
  offset_t nnz() const override { return a_.nnz; }
  Footprint footprint() const override;
  Csr<T> to_csr() const override;
  void spmv(std::span<const T> x, std::span<T> y,
            int n_threads) const override;

 private:
  Bellpack<T> a_;
  const FormatInfo* info_;
};

template <class T>
class PjdsPlan final : public FormatPlan<T> {
 public:
  PjdsPlan(Pjds<T> a, const FormatInfo& info) : a_(std::move(a)), info_(&info) {}
  const Pjds<T>& format() const { return a_; }

  const FormatInfo& info() const override { return *info_; }
  index_t n_rows() const override { return a_.n_rows; }
  index_t n_cols() const override { return a_.n_cols; }
  offset_t nnz() const override { return a_.nnz; }
  Footprint footprint() const override;
  Csr<T> to_csr() const override;
  void spmv(std::span<const T> x, std::span<T> y,
            int n_threads) const override;
  bool spmv_axpby(std::span<const T> x, std::span<T> y, T alpha, T beta,
                  int n_threads) const override;
  void spmmv(std::span<const T> x, std::span<T> y, int k,
             int n_threads) const override;
  const Permutation* permutation() const override { return &a_.perm; }
  bool columns_permuted() const override { return a_.columns_permuted; }
  std::optional<gpusim::KernelResult> simulate(
      const gpusim::DeviceSpec& dev,
      const gpusim::SimOptions& opt) const override;

 private:
  Pjds<T> a_;
  const FormatInfo* info_;
};

#define SPMVM_EXTERN_PLANS(T)               \
  extern template class CsrPlan<T>;         \
  extern template class EllpackPlan<T>;     \
  extern template class JdsPlan<T>;         \
  extern template class SlicedEllPlan<T>;   \
  extern template class BellpackPlan<T>;    \
  extern template class PjdsPlan<T>

SPMVM_EXTERN_PLANS(float);
SPMVM_EXTERN_PLANS(double);
#undef SPMVM_EXTERN_PLANS

}  // namespace spmvm::formats
