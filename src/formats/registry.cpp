#include "formats/registry.hpp"

#include <string>

#include "formats/auto_select.hpp"
#include "formats/plans.hpp"
#include "util/error.hpp"

namespace spmvm::formats {

namespace {

/// Row-sorting formats relabel columns only for square matrices (the
/// symmetric permutation P·A·Pᵀ is undefined otherwise).
template <class T>
PermuteColumns effective_permute(const Csr<T>& a, const PlanOptions& opts) {
  return a.n_rows == a.n_cols ? opts.permute_columns : PermuteColumns::no;
}

template <class T>
std::unique_ptr<FormatPlan<T>> build_csr(const Csr<T>& a,
                                         const PlanOptions&,
                                         const FormatInfo& info) {
  return std::make_unique<CsrPlan<T>>(a, info);
}

template <class T>
std::unique_ptr<FormatPlan<T>> build_ellpack(const Csr<T>& a,
                                             const PlanOptions& opts,
                                             const FormatInfo& info) {
  return std::make_unique<EllpackPlan<T>>(Ellpack<T>::from_csr(a, opts.chunk),
                                          info, /*r_kernel=*/false);
}

template <class T>
std::unique_ptr<FormatPlan<T>> build_ellpack_r(const Csr<T>& a,
                                               const PlanOptions& opts,
                                               const FormatInfo& info) {
  return std::make_unique<EllpackPlan<T>>(Ellpack<T>::from_csr(a, opts.chunk),
                                          info, /*r_kernel=*/true);
}

template <class T>
std::unique_ptr<FormatPlan<T>> build_jds(const Csr<T>& a,
                                         const PlanOptions& opts,
                                         const FormatInfo& info) {
  const PermuteColumns pc = effective_permute(a, opts);
  return std::make_unique<JdsPlan<T>>(Jds<T>::from_csr(a, pc), info,
                                      pc == PermuteColumns::yes);
}

template <class T>
std::unique_ptr<FormatPlan<T>> build_sliced_ell(const Csr<T>& a,
                                                const PlanOptions& opts,
                                                const FormatInfo& info) {
  return std::make_unique<SlicedEllPlan<T>>(
      SlicedEll<T>::from_csr(a, opts.chunk, /*sort_window=*/1,
                             PermuteColumns::no),
      info);
}

template <class T>
std::unique_ptr<FormatPlan<T>> build_sell_c_sigma(const Csr<T>& a,
                                                  const PlanOptions& opts,
                                                  const FormatInfo& info) {
  const index_t sigma =
      opts.sort_window > 0 ? opts.sort_window : 8 * opts.chunk;
  return std::make_unique<SlicedEllPlan<T>>(
      SlicedEll<T>::from_csr(a, opts.chunk, sigma, effective_permute(a, opts)),
      info);
}

template <class T>
std::unique_ptr<FormatPlan<T>> build_bellpack(const Csr<T>& a,
                                              const PlanOptions& opts,
                                              const FormatInfo& info) {
  return std::make_unique<BellpackPlan<T>>(
      Bellpack<T>::from_csr(a, opts.block_r, opts.block_c, opts.chunk), info);
}

template <class T>
std::unique_ptr<FormatPlan<T>> build_pjds(const Csr<T>& a,
                                          const PlanOptions& opts,
                                          const FormatInfo& info) {
  PjdsOptions po;
  po.block_rows = opts.chunk;
  po.permute_columns = effective_permute(a, opts);
  return std::make_unique<PjdsPlan<T>>(Pjds<T>::from_csr(a, po), info);
}

template <class T>
std::unique_ptr<FormatPlan<T>> build_auto(const Csr<T>& a,
                                          const PlanOptions& opts,
                                          const FormatInfo& info) {
  return make_auto_plan<T>(registry<T>(), a, opts, info);
}

template <class T>
void register_builtins(FormatRegistry<T>& reg) {
  reg.register_format({"csr", "compressed row storage (host reference)",
                       /*sorts_rows=*/false, /*native_axpby=*/true,
                       /*has_sim_kernel=*/true, /*native_spmmv=*/true},
                      &build_csr<T>);
  reg.register_format({"ellpack", "ELLPACK rectangle, full-width kernel",
                       false, false, true},
                      &build_ellpack<T>);
  reg.register_format({"ellpack_r", "ELLPACK + rowmax[] early exit",
                       false, false, true},
                      &build_ellpack_r<T>);
  reg.register_format({"jds", "jagged diagonals, full sort, no padding",
                       true, false, false},
                      &build_jds<T>);
  reg.register_format({"sliced_ell", "sliced ELLPACK (C=chunk, sigma=1)",
                       false, true, true},
                      &build_sliced_ell<T>);
  reg.register_format({"sell_c_sigma", "sliced ELLPACK + windowed sort",
                       true, true, true},
                      &build_sell_c_sigma<T>);
  reg.register_format({"bellpack", "blocked ELLPACK, dense tiles",
                       false, false, false},
                      &build_bellpack<T>);
  reg.register_format({"pjds", "padded jagged diagonals (the paper's format)",
                       true, true, true, /*native_spmmv=*/true},
                      &build_pjds<T>);
  reg.register_format({"auto", "Eq. 1 ranking at measured alpha + probe",
                       true, false, false},
                      &build_auto<T>);
}

}  // namespace

template <class T>
void FormatRegistry<T>::register_format(const FormatInfo& info,
                                        Builder builder) {
  SPMVM_REQUIRE(builder != nullptr, "format builder must be non-null");
  SPMVM_REQUIRE(find(info.name) == nullptr,
                std::string("format '") + info.name + "' already registered");
  entries_.push_back(Entry{info, builder});
}

template <class T>
const typename FormatRegistry<T>::Entry* FormatRegistry<T>::find(
    std::string_view name) const {
  for (const Entry& e : entries_)
    if (name == e.info.name) return &e;
  return nullptr;
}

template <class T>
std::shared_ptr<const FormatPlan<T>> FormatRegistry<T>::build(
    std::string_view name, const Csr<T>& a, const PlanOptions& opts) const {
  const Entry* e = find(name);
  if (e == nullptr) {
    std::string known;
    for (const Entry& k : entries_) {
      if (!known.empty()) known += ", ";
      known += k.info.name;
    }
    throw Error(std::string("unknown format '") + std::string(name) +
                "'; registered: " + known);
  }
  return e->builder(a, opts, e->info);
}

template <class T>
std::vector<FormatInfo> FormatRegistry<T>::list() const {
  std::vector<FormatInfo> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.info);
  return out;
}

template <class T>
FormatRegistry<T>& registry() {
  static FormatRegistry<T>* reg = [] {
    auto* r = new FormatRegistry<T>();
    register_builtins(*r);
    return r;
  }();
  return *reg;
}

template class FormatRegistry<float>;
template class FormatRegistry<double>;
template FormatRegistry<float>& registry<float>();
template FormatRegistry<double>& registry<double>();

}  // namespace spmvm::formats
