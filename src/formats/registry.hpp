// The format registry — the single place storage formats are enumerated.
//
// Every consumer that used to hand-enumerate formats (solver Operator
// factories, dist kernels, the format benches, the examples) resolves
// plans by name here instead; adding a format is one register_format()
// call. registry<T>() returns the process-wide instance pre-loaded with
// the built-in formats:
//
//   csr          CSR, thread-per-row host kernel, CSR-vector sim kernel
//   ellpack      ELLPACK rectangle, full-width kernel (Fig. 2a)
//   ellpack_r    same storage + rowmax[] early exit (Listing 1)
//   jds          classic JDS, full descending sort, no padding
//   sliced_ell   sliced ELLPACK, C = chunk, original row order (σ = 1)
//   sell_c_sigma sliced ELLPACK with windowed sort (SELL-C-σ)
//   bellpack     blocked ELLPACK, dense block_r × block_c tiles
//   pjds         the paper's padded JDS (Sec. II-A)
//   auto         Eq. 1 ranking at measured α + measured probe
#pragma once

#include <deque>
#include <memory>
#include <string_view>
#include <vector>

#include "formats/format_plan.hpp"

namespace spmvm::formats {

template <class T>
class FormatRegistry {
 public:
  /// Build the format from CSR. The FormatInfo reference is the
  /// registry-owned entry (stable address) the plan points back at.
  using Builder = std::unique_ptr<FormatPlan<T>> (*)(const Csr<T>&,
                                                     const PlanOptions&,
                                                     const FormatInfo&);
  struct Entry {
    FormatInfo info;
    Builder builder;
  };

  /// Register a format under a unique name (throws on duplicates).
  void register_format(const FormatInfo& info, Builder builder);

  /// Registered entry by exact name; nullptr when unknown.
  const Entry* find(std::string_view name) const;

  /// Build `name` from `a`. Throws spmvm::Error for unknown names,
  /// listing what is registered.
  std::shared_ptr<const FormatPlan<T>> build(std::string_view name,
                                             const Csr<T>& a,
                                             const PlanOptions& opts = {}) const;

  /// All registered formats, registration order.
  std::vector<FormatInfo> list() const;

  const std::deque<Entry>& entries() const { return entries_; }

 private:
  // deque: plans keep pointers into entries' FormatInfo, so addresses
  // must survive later registrations.
  std::deque<Entry> entries_;
};

/// The process-wide registry with the built-in formats pre-registered.
template <class T>
FormatRegistry<T>& registry();

extern template class FormatRegistry<float>;
extern template class FormatRegistry<double>;
extern template FormatRegistry<float>& registry<float>();
extern template FormatRegistry<double>& registry<double>();

}  // namespace spmvm::formats
