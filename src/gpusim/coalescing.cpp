#include "gpusim/coalescing.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace spmvm::gpusim {

std::uint64_t coalesced_bytes(std::uint64_t span_elems,
                              std::uint64_t elem_bytes,
                              std::uint64_t line_bytes) {
  if (span_elems == 0) return 0;
  const std::uint64_t bytes = span_elems * elem_bytes;
  const std::uint64_t lines = (bytes + line_bytes - 1) / line_bytes;
  return lines * line_bytes;
}

std::uint64_t sectored_bytes(std::span<const int> lanes,
                             std::uint64_t elem_bytes,
                             std::uint64_t sector_bytes) {
  // Lane indices arrive in ascending order from the kernel drivers, so
  // the touched sectors are ascending too: count each once.
  std::uint64_t sectors = 0;
  bool have_last = false;
  std::uint64_t last = 0;
  for (const int lane : lanes) {
    const std::uint64_t byte0 = static_cast<std::uint64_t>(lane) * elem_bytes;
    const std::uint64_t s0 = byte0 / sector_bytes;
    const std::uint64_t s1 = (byte0 + elem_bytes - 1) / sector_bytes;
    for (std::uint64_t s = s0; s <= s1; ++s) {
      if (!have_last || s != last) {
        ++sectors;
        last = s;
        have_last = true;
      }
    }
  }
  return sectors * sector_bytes;
}

std::size_t gather_lines(std::span<const std::uint64_t> element_addrs,
                         std::uint64_t line_bytes,
                         std::span<std::uint64_t> lines_out) {
  SPMVM_REQUIRE(lines_out.size() >= element_addrs.size(),
                "scratch span too small");
  std::size_t n = 0;
  for (const std::uint64_t addr : element_addrs) {
    const std::uint64_t line = addr / line_bytes;
    bool seen = false;
    for (std::size_t k = 0; k < n; ++k) {
      if (lines_out[k] == line) {
        seen = true;
        break;
      }
    }
    if (!seen) lines_out[n++] = line;
  }
  return n;
}

}  // namespace spmvm::gpusim
