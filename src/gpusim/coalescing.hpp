// Memory-coalescing arithmetic: how many full-width transactions a warp's
// loads generate (Sec. I-B: "it is essential that consecutive threads in
// a warp access consecutive memory locations").
#pragma once

#include <cstdint>
#include <span>

namespace spmvm::gpusim {

/// Bytes moved for a coalesced load of `span_elems` consecutive elements
/// of `elem_bytes` each, rounded up to whole transactions of
/// `line_bytes`. `span_elems` is the distance from the first to the last
/// *active* lane plus one: inactive lanes inside the span still burn
/// transaction bytes because the segments are fetched whole.
std::uint64_t coalesced_bytes(std::uint64_t span_elems,
                              std::uint64_t elem_bytes,
                              std::uint64_t line_bytes);

/// Bytes moved for a coalesced load where only some lanes of the warp are
/// active: the memory system fetches 32-byte *sectors*, so masked lanes
/// inside the span cost nothing unless they share a sector with an active
/// lane. `lanes` holds the active lane indices (0-based within the warp);
/// each lane touches elem_bytes at offset lane*elem_bytes.
std::uint64_t sectored_bytes(std::span<const int> lanes,
                             std::uint64_t elem_bytes,
                             std::uint64_t sector_bytes = 32);

/// Number of distinct cache lines touched by a warp's gather at the given
/// element addresses (sorted or not). Writes the distinct line indices
/// into `lines_out` (caller-provided scratch, cleared first) and returns
/// the count. This is the warp-level dedup the hardware performs before
/// the requests reach the L2.
std::size_t gather_lines(std::span<const std::uint64_t> element_addrs,
                         std::uint64_t line_bytes,
                         std::span<std::uint64_t> lines_out);

}  // namespace spmvm::gpusim
