#include "gpusim/cpu_node.hpp"

#include "gpusim/l2_cache.hpp"

namespace spmvm::gpusim {

template <class T>
CpuKernelResult simulate_csr(const CpuNodeSpec& node, const Csr<T>& m) {
  CpuKernelResult r;
  const std::uint64_t nnz = static_cast<std::uint64_t>(m.nnz());
  if (nnz == 0) return r;

  // Measure the RHS re-load factor with the node's last-level cache.
  L2Cache cache(node.cache_bytes, node.cache_line_bytes, node.cache_ways);
  std::uint64_t rhs_dram = 0;
  for (offset_t k = 0; k < m.nnz(); ++k) {
    const auto addr =
        static_cast<std::uint64_t>(m.col_idx[static_cast<std::size_t>(k)]) *
        sizeof(T);
    if (!cache.access(addr))
      rhs_dram += static_cast<std::uint64_t>(node.cache_line_bytes);
  }
  r.alpha = static_cast<double>(rhs_dram) /
            static_cast<double>(nnz * sizeof(T));

  const double nnzr = m.avg_row_len();
  const double per_nnz = static_cast<double>(sizeof(T)) + 4.0 +
                         r.alpha * static_cast<double>(sizeof(T));
  const double per_row =
      nnzr > 0.0 ? (8.0 + 2.0 * static_cast<double>(sizeof(T))) / nnzr : 0.0;
  r.code_balance = (per_nnz + per_row) / 2.0;  // bytes per flop

  const double bytes = r.code_balance * 2.0 * static_cast<double>(nnz);
  r.seconds = bytes / (node.bw_gbs * 1e9);
  r.gflops = 2.0 * static_cast<double>(nnz) / r.seconds / 1e9;
  return r;
}

template CpuKernelResult simulate_csr(const CpuNodeSpec&, const Csr<float>&);
template CpuKernelResult simulate_csr(const CpuNodeSpec&, const Csr<double>&);

}  // namespace spmvm::gpusim
