// CPU reference-node model for the CRS baseline (Table I, last row).
//
// Same formalism as the GPU side: the CRS kernel is bandwidth-bound on a
// multicore node; its code balance follows ref. [4], with the RHS
// re-load factor α measured by running the real access stream through a
// last-level-cache model.
#pragma once

#include "gpusim/device_spec.hpp"
#include "sparse/csr.hpp"

namespace spmvm::gpusim {

struct CpuKernelResult {
  double seconds = 0.0;
  double gflops = 0.0;
  double code_balance = 0.0;  // bytes per flop
  double alpha = 0.0;         // measured RHS re-load factor
};

/// Simulate the CRS spMVM kernel on a CPU node. Traffic per non-zero:
/// val (scalar) + col_idx (4 B) + α·scalar for the RHS; per row: the
/// row pointer (8 B) and the LHS store with write-allocate (2·scalar).
template <class T>
CpuKernelResult simulate_csr(const CpuNodeSpec& node, const Csr<T>& m);

extern template CpuKernelResult simulate_csr(const CpuNodeSpec&,
                                             const Csr<float>&);
extern template CpuKernelResult simulate_csr(const CpuNodeSpec&,
                                             const Csr<double>&);

}  // namespace spmvm::gpusim
