#include "gpusim/device_runtime.hpp"

#include "gpusim/pcie.hpp"
#include "util/error.hpp"

namespace spmvm::gpusim {

DeviceRuntime::DeviceRuntime(DeviceSpec spec, bool ecc)
    : spec_(std::move(spec)), ecc_(ecc) {}

int DeviceRuntime::alloc(std::size_t bytes) {
  SPMVM_REQUIRE(allocated_ + bytes <= spec_.dram_bytes,
                "device memory exhausted on " + spec_.name + ": need " +
                    std::to_string(bytes) + " B, free " +
                    std::to_string(free_bytes()) + " B");
  allocated_ += bytes;
  allocations_.push_back(bytes);
  return static_cast<int>(allocations_.size()) - 1;
}

void DeviceRuntime::free(int allocation) {
  SPMVM_REQUIRE(allocation >= 0 &&
                    static_cast<std::size_t>(allocation) < allocations_.size(),
                "unknown allocation id");
  allocated_ -= allocations_[static_cast<std::size_t>(allocation)];
  allocations_[static_cast<std::size_t>(allocation)] = 0;
}

void DeviceRuntime::transfer(std::size_t bytes) {
  const double t = pcie_seconds(spec_, bytes);
  clock_ += t;
  transfer_clock_ += t;
}

void DeviceRuntime::launch(const KernelResult& kernel) {
  clock_ += kernel.seconds;
  kernel_clock_ += kernel.seconds;
}

template <class T>
DeviceSpmv<T>::DeviceSpmv(std::shared_ptr<DeviceRuntime> device,
                          const Csr<T>& a, FormatKind format, index_t chunk)
    : device_(std::move(device)),
      format_(format),
      n_rows_(a.n_rows),
      n_cols_(a.n_cols),
      bytes_(gpusim::device_bytes(a, format, chunk)),
      allocation_(device_->alloc(bytes_)) {
  SimOptions opt;
  opt.ecc = device_->ecc();
  switch (format) {
    case FormatKind::csr_scalar:
    case FormatKind::csr_vector:
      csr_ = a;
      break;
    case FormatKind::ellpack:
    case FormatKind::ellpack_r:
      ellpack_ = Ellpack<T>::from_csr(a, chunk);
      break;
    case FormatKind::sliced_ell:
      sliced_ = SlicedEll<T>::from_csr(a, chunk);
      break;
    case FormatKind::pjds: {
      PjdsOptions popt;
      popt.block_rows = chunk;
      popt.permute_columns =
          a.n_rows == a.n_cols ? PermuteColumns::yes : PermuteColumns::no;
      pjds_op_ = std::make_unique<PjdsOperator<T>>(Pjds<T>::from_csr(a, popt));
      break;
    }
  }
  kernel_estimate_ =
      gpusim::simulate_format(device_->spec(), a, format, opt, chunk);
  device_->transfer(bytes_);  // upload the matrix once
}

template <class T>
DeviceSpmv<T>::~DeviceSpmv() {
  device_->free(allocation_);
}

template <class T>
void DeviceSpmv<T>::apply(std::span<const T> x, std::span<T> y,
                          bool vectors_resident) {
  SPMVM_REQUIRE(x.size() >= static_cast<std::size_t>(n_cols_) &&
                    y.size() >= static_cast<std::size_t>(n_rows_),
                "vector sizes do not match the operator");
  // Numerics: execute the same data structures on the host.
  switch (format_) {
    case FormatKind::csr_scalar:
    case FormatKind::csr_vector:
      spmv(csr_, x, y);
      break;
    case FormatKind::ellpack:
      spmv_ellpack(ellpack_, x, y);
      break;
    case FormatKind::ellpack_r:
      spmv_ellpack_r(ellpack_, x, y);
      break;
    case FormatKind::sliced_ell: {
      // Unsorted build (σ = 1): results come out in original order.
      spmv(sliced_, x, y);
      break;
    }
    case FormatKind::pjds:
      pjds_op_->apply(x, y);
      break;
  }
  // Timing: kernel estimate plus (unless resident) the Eq. 2 transfers.
  last_kernel_ = kernel_estimate_.seconds;
  last_transfer_ = 0.0;
  if (!vectors_resident) {
    const double before = device_->elapsed_seconds();
    device_->transfer(static_cast<std::size_t>(n_cols_) * sizeof(T));
    device_->transfer(static_cast<std::size_t>(n_rows_) * sizeof(T));
    last_transfer_ = device_->elapsed_seconds() - before;
  }
  device_->launch(kernel_estimate_);
}

template class DeviceSpmv<float>;
template class DeviceSpmv<double>;

}  // namespace spmvm::gpusim
