// CUDA-like device runtime on top of the performance model.
//
// The simulator's kernel and PCIe models are packaged as an executable
// runtime: buffers are allocated against the card's real capacity
// (allocation fails when a format does not fit, like DLR2-as-ELLPACK on
// a C2050), transfers and launches advance a simulated device clock, and
// kernels *actually compute* y = A·x on the host data so applications
// get correct numerics together with modeled timings.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "sparse/pjds_spmv.hpp"
#include "gpusim/gpu_spmv.hpp"
#include "sparse/spmv_host.hpp"

namespace spmvm::gpusim {

/// One virtual GPGPU: tracks allocated bytes and elapsed device time.
class DeviceRuntime {
 public:
  explicit DeviceRuntime(DeviceSpec spec, bool ecc = true);

  const DeviceSpec& spec() const { return spec_; }
  bool ecc() const { return ecc_; }

  /// Reserve device memory; throws spmvm::Error when the card is full.
  /// Returns an opaque allocation id.
  int alloc(std::size_t bytes);
  /// Release an allocation (idempotent ids are not reused).
  void free(int allocation);

  std::size_t allocated_bytes() const { return allocated_; }
  std::size_t free_bytes() const { return spec_.dram_bytes - allocated_; }

  /// Account a host-to-device or device-to-host transfer.
  void transfer(std::size_t bytes);

  /// Account a kernel execution.
  void launch(const KernelResult& kernel);

  /// Simulated seconds elapsed on this device so far.
  double elapsed_seconds() const { return clock_; }
  double transfer_seconds() const { return transfer_clock_; }
  double kernel_seconds() const { return kernel_clock_; }

 private:
  DeviceSpec spec_;
  bool ecc_;
  std::size_t allocated_ = 0;
  std::vector<std::size_t> allocations_;
  double clock_ = 0.0;
  double transfer_clock_ = 0.0;
  double kernel_clock_ = 0.0;
};

/// A matrix resident on a DeviceRuntime in a chosen format, offering
/// y = A·x with correct numerics (host execution of the same data
/// structures) and simulated timing. The RHS upload / LHS download around
/// each product is accounted like the paper's Eq. 2 unless the vectors
/// are flagged device-resident.
template <class T>
class DeviceSpmv {
 public:
  /// Uploads the format (build + H2D transfer of its footprint).
  DeviceSpmv(std::shared_ptr<DeviceRuntime> device, const Csr<T>& a,
             FormatKind format, index_t chunk = 32);
  ~DeviceSpmv();

  DeviceSpmv(const DeviceSpmv&) = delete;
  DeviceSpmv& operator=(const DeviceSpmv&) = delete;

  index_t n_rows() const { return n_rows_; }
  index_t n_cols() const { return n_cols_; }
  FormatKind format() const { return format_; }
  std::size_t device_bytes() const { return bytes_; }

  /// y = A·x in the *original* basis (permutations are hidden).
  /// `vectors_resident` skips the per-call PCIe transfers — the "parts of
  /// those vectors may be kept on the device" case of Sec. III.
  void apply(std::span<const T> x, std::span<T> y,
             bool vectors_resident = false);

  /// Timing of the most recent apply().
  double last_kernel_seconds() const { return last_kernel_; }
  double last_transfer_seconds() const { return last_transfer_; }

 private:
  std::shared_ptr<DeviceRuntime> device_;
  FormatKind format_;
  index_t n_rows_;
  index_t n_cols_;
  std::size_t bytes_;
  int allocation_;
  double last_kernel_ = 0.0;
  double last_transfer_ = 0.0;

  // Host mirrors used for execution + the precomputed kernel estimate.
  Csr<T> csr_;                      // csr_scalar / csr_vector
  Ellpack<T> ellpack_;              // ellpack / ellpack_r
  SlicedEll<T> sliced_;
  std::unique_ptr<PjdsOperator<T>> pjds_op_;
  KernelResult kernel_estimate_;
};

#define SPMVM_EXTERN_DEVICE_RUNTIME(T) extern template class DeviceSpmv<T>
SPMVM_EXTERN_DEVICE_RUNTIME(float);
SPMVM_EXTERN_DEVICE_RUNTIME(double);
#undef SPMVM_EXTERN_DEVICE_RUNTIME

}  // namespace spmvm::gpusim
