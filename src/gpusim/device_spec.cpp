#include "gpusim/device_spec.hpp"

namespace spmvm::gpusim {

double DeviceSpec::bandwidth_bytes(bool ecc) const {
  return (ecc && has_ecc ? bw_gbs_ecc_on : bw_gbs_ecc_off) * 1e9;
}

double DeviceSpec::peak_flops(Precision p) const {
  // One SP multiply plus one add per ALU per cycle -> 2 flops/ALU/cycle.
  const double sp =
      2.0 * num_mps * alus_per_mp * clock_ghz * 1e9;
  return p == Precision::sp ? sp : sp / 2.0;
}

DeviceSpec DeviceSpec::tesla_c2070() {
  DeviceSpec d;
  d.name = "Tesla C2070";
  d.dram_bytes = std::size_t{6} * 1024 * 1024 * 1024;
  return d;
}

DeviceSpec DeviceSpec::tesla_c2050() {
  DeviceSpec d = tesla_c2070();
  d.name = "Tesla C2050";
  d.dram_bytes = std::size_t{3} * 1024 * 1024 * 1024;
  return d;
}

DeviceSpec DeviceSpec::tesla_c1060() {
  DeviceSpec d;
  d.name = "Tesla C1060";
  d.num_mps = 30;
  d.alus_per_mp = 8;
  d.warp_size = 32;
  d.clock_ghz = 1.296;
  d.bw_gbs_ecc_off = 78.0;
  d.bw_gbs_ecc_on = 78.0;
  d.has_ecc = false;
  d.l2_bytes = 0;  // no L2 on GT200
  d.dram_bytes = std::size_t{4} * 1024 * 1024 * 1024;
  d.pcie_gbs = 5.0;
  // GT200 issues one instruction per 4 cycles over 8 ALUs; the per-step
  // cost in MP cycles is correspondingly higher.
  d.cycles_per_step_sp = 160.0;
  d.cycles_per_step_dp = 200.0;
  return d;
}

}  // namespace spmvm::gpusim
