// GPGPU device descriptions (Sec. I-B of the paper).
//
// The simulator is parameterized by a DeviceSpec carrying the published
// architectural constants of the paper's testbed: the Fermi-class Tesla
// C2070/C2050 (GF100: 14 MPs x 32 ALUs, 768 kB L2, ~91 GB/s sustained
// with ECC / ~120 GB/s without) and the pre-Fermi Tesla C1060 (no L2).
#pragma once

#include <cstddef>
#include <string>

namespace spmvm::gpusim {

enum class Precision { sp, dp };

inline std::size_t scalar_bytes(Precision p) {
  return p == Precision::sp ? 4 : 8;
}

struct DeviceSpec {
  std::string name;

  // Compute resources.
  int num_mps = 14;        // streaming multiprocessors
  int alus_per_mp = 32;    // in-order ALUs per MP
  int warp_size = 32;      // SIMD width (threads per warp)
  double clock_ghz = 1.15; // ALU clock

  // Issue cost of one inner spMVM iteration of one warp, in MP cycles
  // (address arithmetic + two matrix loads + gather + FMA + loop code).
  // Calibrated so the simulator's SP/DP crossover between issue-bound and
  // bandwidth-bound kernels matches Table I; see DESIGN.md.
  double cycles_per_step_sp = 40.0;
  double cycles_per_step_dp = 48.0;

  // Sustained device-memory bandwidth (streaming benchmarks, ref. [5]).
  double bw_gbs_ecc_off = 120.0;
  double bw_gbs_ecc_on = 91.0;
  bool has_ecc = true;  // C1060 cannot enable ECC

  // L2 cache (0 bytes = no L2, as on the C1060).
  std::size_t l2_bytes = 768 * 1024;
  int l2_line_bytes = 128;
  int l2_ways = 16;

  // Device memory capacity.
  std::size_t dram_bytes = 0;

  // Host link (PCIe 2.0 x16 sustained) and kernel-launch overhead.
  double pcie_gbs = 6.0;
  double pcie_latency_s = 10e-6;
  double kernel_launch_s = 5e-6;

  // Warps needed in flight to reach the memory-latency/bandwidth plateau;
  // effective bandwidth scales as w / (w + half_saturation_warps).
  double half_saturation_warps = 64.0;

  /// Sustained bandwidth in bytes/second for the given ECC setting.
  double bandwidth_bytes(bool ecc) const;

  /// Peak arithmetic throughput in flops/second (paper: 896 flops/cycle
  /// SP on the full GF100 chip, half that in DP).
  double peak_flops(Precision p) const;

  /// Tesla C2070: 6 GB Fermi card used for Table I.
  static DeviceSpec tesla_c2070();
  /// Tesla C2050: 3 GB Fermi card of the NERSC Dirac nodes (Fig. 5).
  static DeviceSpec tesla_c2050();
  /// Tesla C1060: previous generation, no L2, no ECC option.
  static DeviceSpec tesla_c1060();
};

/// CPU reference node for Table I's last row: dual-socket six-core
/// Westmere EP running the CRS kernel.
struct CpuNodeSpec {
  std::string name = "Westmere EP (2x6 cores)";
  int cores = 12;
  double clock_ghz = 2.66;
  double bw_gbs = 40.0;              // sustained node memory bandwidth
  std::size_t cache_bytes = 24 * 1024 * 1024;  // aggregate last-level
  int cache_line_bytes = 64;
  int cache_ways = 16;

  static CpuNodeSpec westmere_ep() { return {}; }
};

}  // namespace spmvm::gpusim
