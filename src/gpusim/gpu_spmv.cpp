#include "gpusim/gpu_spmv.hpp"

#include "sparse/footprint.hpp"
#include "util/error.hpp"

namespace spmvm::gpusim {

const char* to_string(FormatKind kind) {
  switch (kind) {
    case FormatKind::ellpack:
      return "ELLPACK";
    case FormatKind::ellpack_r:
      return "ELLPACK-R";
    case FormatKind::pjds:
      return "pJDS";
    case FormatKind::sliced_ell:
      return "sliced-ELL";
    case FormatKind::csr_scalar:
      return "CSR-scalar";
    case FormatKind::csr_vector:
      return "CSR-vector";
  }
  return "?";
}

namespace {
template <class T>
Pjds<T> build_pjds(const Csr<T>& a, index_t chunk) {
  PjdsOptions opt;
  opt.block_rows = chunk;
  // The paper's kernel benchmark (Listing 2) permutes rows only: the RHS
  // stays in the original basis and col_idx[] keeps original column
  // numbers. Solvers that want to stay permuted use PermuteColumns::yes
  // explicitly (see solver/).
  opt.permute_columns = PermuteColumns::no;
  return Pjds<T>::from_csr(a, opt);
}
}  // namespace

template <class T>
KernelResult simulate_format(const DeviceSpec& dev, const Csr<T>& a,
                             FormatKind kind, const SimOptions& opt,
                             index_t chunk) {
  switch (kind) {
    case FormatKind::ellpack:
      return simulate(dev, Ellpack<T>::from_csr(a, chunk),
                      EllpackKernel::plain, opt);
    case FormatKind::ellpack_r:
      return simulate(dev, Ellpack<T>::from_csr(a, chunk), EllpackKernel::r,
                      opt);
    case FormatKind::pjds:
      return simulate(dev, build_pjds(a, chunk), opt);
    case FormatKind::sliced_ell:
      return simulate(dev, SlicedEll<T>::from_csr(a, chunk), opt);
    case FormatKind::csr_scalar:
      return simulate_csr_scalar(dev, a, opt);
    case FormatKind::csr_vector:
      return simulate_csr_vector(dev, a, opt);
  }
  SPMVM_REQUIRE(false, "unhandled format kind");
  return {};
}

template <class T>
std::size_t device_bytes(const Csr<T>& a, FormatKind kind, index_t chunk) {
  const std::size_t vectors =
      (static_cast<std::size_t>(a.n_rows) + static_cast<std::size_t>(a.n_cols)) *
      sizeof(T);
  switch (kind) {
    case FormatKind::ellpack:
      return footprint(Ellpack<T>::from_csr(a, chunk), false).total_bytes(
                 sizeof(T)) +
             vectors;
    case FormatKind::ellpack_r:
      return footprint(Ellpack<T>::from_csr(a, chunk), true).total_bytes(
                 sizeof(T)) +
             vectors;
    case FormatKind::pjds:
      return footprint(build_pjds(a, chunk)).total_bytes(sizeof(T)) + vectors;
    case FormatKind::sliced_ell:
      return footprint(SlicedEll<T>::from_csr(a, chunk)).total_bytes(
                 sizeof(T)) +
             vectors;
    case FormatKind::csr_scalar:
    case FormatKind::csr_vector:
      return footprint(a).total_bytes(sizeof(T)) + vectors;
  }
  SPMVM_REQUIRE(false, "unhandled format kind");
  return 0;
}

#define SPMVM_INSTANTIATE_GPU_SPMV(T)                                     \
  template KernelResult simulate_format(const DeviceSpec&, const Csr<T>&, \
                                        FormatKind, const SimOptions&,    \
                                        index_t);                         \
  template std::size_t device_bytes(const Csr<T>&, FormatKind, index_t)

SPMVM_INSTANTIATE_GPU_SPMV(float);
SPMVM_INSTANTIATE_GPU_SPMV(double);

}  // namespace spmvm::gpusim
