// High-level driver: build a storage format from CSR and simulate its
// spMVM kernel in one call — the loop body of every Table I-style bench.
#pragma once

#include <string>

#include "gpusim/kernel_sim.hpp"
#include "gpusim/pcie.hpp"

namespace spmvm::gpusim {

enum class FormatKind { ellpack, ellpack_r, pjds, sliced_ell, csr_scalar, csr_vector };

const char* to_string(FormatKind kind);

/// Build `kind` from `a` (row chunk / block size / slice height = `chunk`)
/// and simulate one spMVM on `dev`. pJDS is built with the paper's
/// benchmark setup (Listing 2): rows permuted, RHS vector and column
/// indices in the original basis — the inter-row RHS-locality loss the
/// paper discusses still shows because formerly-adjacent rows land in
/// different warps after the sort.
template <class T>
KernelResult simulate_format(const DeviceSpec& dev, const Csr<T>& a,
                             FormatKind kind, const SimOptions& opt = {},
                             index_t chunk = 32);

/// Device memory needed to hold `kind` for matrix `a` plus the RHS and
/// LHS vectors — decides whether a matrix fits a card at all (the paper:
/// DLR2 in DP fits a 3 GB C2050 only as pJDS).
template <class T>
std::size_t device_bytes(const Csr<T>& a, FormatKind kind, index_t chunk = 32);

#define SPMVM_EXTERN_GPU_SPMV(T)                                         \
  extern template KernelResult simulate_format(                          \
      const DeviceSpec&, const Csr<T>&, FormatKind, const SimOptions&,   \
      index_t);                                                          \
  extern template std::size_t device_bytes(const Csr<T>&, FormatKind,    \
                                           index_t)

SPMVM_EXTERN_GPU_SPMV(float);
SPMVM_EXTERN_GPU_SPMV(double);
#undef SPMVM_EXTERN_GPU_SPMV

}  // namespace spmvm::gpusim
