#include "gpusim/kernel_sim.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <span>

#include "gpusim/coalescing.hpp"
#include "gpusim/l2_cache.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "perfmodel/balance.hpp"
#include "util/error.hpp"

namespace spmvm::gpusim {

double KernelStats::measured_alpha(std::size_t scalar_size) const {
  const std::uint64_t minimal = flops / 2 * scalar_size;  // nnz elements
  return minimal == 0
             ? 0.0
             : static_cast<double>(rhs_bytes) / static_cast<double>(minimal);
}

double KernelStats::warp_efficiency() const {
  return total_lane_steps == 0 ? 0.0
                               : static_cast<double>(useful_lane_steps) /
                                     static_cast<double>(total_lane_steps);
}

namespace {

/// Shared accumulation engine: the format-specific drivers below feed it
/// one warp step at a time.
class Engine {
 public:
  // The RHS-gather path is modeled end-to-end at 32-byte *sector*
  // granularity: scattered gather misses fill sectors, not whole 128-byte
  // lines, on GF100-class memory systems.
  static constexpr int kGatherSector = 32;

  Engine(const DeviceSpec& dev, std::size_t scalar_size, bool ecc)
      : dev_(dev),
        esize_(scalar_size),
        ecc_(ecc),
        l2_(dev.l2_bytes, std::min(dev.l2_line_bytes, kGatherSector),
            dev.l2_ways) {}

  /// Coalesced load of the active lanes' matrix entries (val: scalar
  /// size, col_idx: 4 bytes): masked lanes inside the span cost nothing
  /// beyond shared 32-byte sectors.
  void matrix_load(std::span<const int> lanes) {
    stats_.matrix_bytes += sectored_bytes(lanes, esize_);
    stats_.matrix_bytes += sectored_bytes(lanes, sizeof(index_t));
  }

  /// RHS gather of the active lanes' columns: warp-level sector dedup,
  /// then the L2 model; misses cost one sector of DRAM traffic.
  void rhs_gather(std::span<const index_t> cols) {
    const auto line = static_cast<std::uint64_t>(l2_.line_bytes());
    std::array<std::uint64_t, 64> addrs;
    std::array<std::uint64_t, 64> lines;
    SPMVM_REQUIRE(cols.size() <= addrs.size(), "warp wider than scratch");
    for (std::size_t k = 0; k < cols.size(); ++k)
      addrs[k] = static_cast<std::uint64_t>(cols[k]) * esize_;
    const std::size_t n = gather_lines(
        std::span<const std::uint64_t>(addrs.data(), cols.size()), line,
        std::span<std::uint64_t>(lines.data(), lines.size()));
    for (std::size_t k = 0; k < n; ++k) {
      if (l2_.access_line(lines[k])) {
        ++stats_.rhs_line_hits;
      } else {
        ++stats_.rhs_line_misses;
        stats_.rhs_bytes += line;
      }
    }
  }

  /// Account one executed warp step with `active` useful lanes.
  void warp_step(std::uint64_t active) {
    ++stats_.warp_steps;
    stats_.useful_lane_steps += active;
    stats_.total_lane_steps += static_cast<std::uint64_t>(dev_.warp_size);
  }

  void end_warp() { ++stats_.warps; }

  /// Streaming traffic outside the inner loop (LHS store, row_len loads).
  void stream(std::uint64_t bytes) { stats_.stream_bytes += bytes; }

  void set_flops(std::uint64_t flops) { stats_.flops = flops; }

  const KernelStats& stats() const { return stats_; }

  KernelResult finalize() const {
    KernelResult r;
    r.stats = stats_;
    // Bandwidth saturates only with enough warps in flight to cover the
    // memory latency (matters for the strong-scaling regime of Fig. 5a).
    const double w = static_cast<double>(stats_.warps);
    const double occupancy =
        w == 0.0 ? 1.0 : w / (w + dev_.half_saturation_warps);
    r.mem_seconds = static_cast<double>(stats_.dram_bytes()) /
                    (dev_.bandwidth_bytes(ecc_) * occupancy);
    const double cycles_per_step =
        esize_ == 4 ? dev_.cycles_per_step_sp : dev_.cycles_per_step_dp;
    r.issue_seconds = static_cast<double>(stats_.warp_steps) *
                      cycles_per_step /
                      (static_cast<double>(dev_.num_mps) * dev_.clock_ghz * 1e9);
    r.seconds = std::max(r.mem_seconds, r.issue_seconds) + dev_.kernel_launch_s;
    r.gflops = static_cast<double>(stats_.flops) / r.seconds / 1e9;
    r.code_balance = stats_.flops == 0
                         ? 0.0
                         : static_cast<double>(stats_.dram_bytes()) /
                               static_cast<double>(stats_.flops);
    return r;
  }

 private:
  const DeviceSpec& dev_;
  std::size_t esize_;
  bool ecc_;
  L2Cache l2_;
  KernelStats stats_;
};

/// Per-simulation bookkeeping: the span carries the model-predicted DRAM
/// transactions (bytes), measured balance alpha and predicted runtime, so
/// a trace of the simulator reads like Table II. When the roofline
/// ledger is on, the simulated run also folds into a device-lane record
/// judged against the Eq. 1 bound at *measured* α (perfmodel/balance,
/// the same prediction perfmodel::evaluate reports as gflops_model), so
/// the ledger's efficiency is exactly gflops_sim / gflops_model.
void record_sim(obs::SpanGuard& span, const KernelResult& r,
                std::size_t scalar_size, const char* format,
                const DeviceSpec& dev, bool ecc, index_t n_rows) {
  static obs::Counter& c_sims = obs::counter("gpusim.kernels");
  static obs::Counter& c_bytes = obs::counter("gpusim.dram_bytes");
  c_sims.add();
  c_bytes.add(r.stats.dram_bytes());
  const double alpha = r.stats.measured_alpha(scalar_size);
  if (span.active()) {
    span.set_bytes(r.stats.dram_bytes());
    span.set_arg("alpha", alpha);
    span.set_arg("pred_us", r.seconds * 1e6);
  }
  if (obs::ledger_enabled()) {
    const std::uint64_t nnz = r.stats.flops / 2;
    obs::WorkDesc w;
    w.bytes = r.stats.dram_bytes();
    w.flops = r.stats.flops;
    w.nnz = nnz;
    w.alpha = alpha;
    if (n_rows > 0 && nnz > 0) {
      const double nnzr =
          static_cast<double>(nnz) / static_cast<double>(n_rows);
      const double gflops_model = perfmodel::bandwidth_bound_gflops(
          dev.bandwidth_bytes(ecc) / 1e9,
          perfmodel::code_balance(scalar_size, alpha, nnzr));
      w.predicted_seconds =
          static_cast<double>(r.stats.flops) / (gflops_model * 1e9);
    }
    obs::ledger_record(obs::RoofLane::device, format, "spmv", r.seconds, w);
  }
}

}  // namespace

template <class T>
KernelResult simulate(const DeviceSpec& dev, const Ellpack<T>& m,
                      EllpackKernel kernel, const SimOptions& opt) {
  SPMVM_TRACE_SPAN_NAMED(span, kernel == EllpackKernel::plain
                                   ? "gpusim/ellpack"
                                   : "gpusim/ellpack_r");
  Engine eng(dev, sizeof(T), opt.ecc);
  eng.set_flops(2 * static_cast<std::uint64_t>(m.nnz));
  const index_t ws = dev.warp_size;
  std::vector<index_t> cols;
  std::vector<int> lanes;
  cols.reserve(static_cast<std::size_t>(ws));
  lanes.reserve(static_cast<std::size_t>(ws));
  for (index_t w0 = 0; w0 < m.padded_rows; w0 += ws) {
    const index_t w1 = std::min<index_t>(w0 + ws, m.padded_rows);
    index_t steps = 0;
    if (kernel == EllpackKernel::plain) {
      steps = m.width;
    } else {
      for (index_t i = w0; i < w1; ++i)
        steps = std::max(steps, m.row_len[static_cast<std::size_t>(i)]);
    }
    for (index_t j = 0; j < steps; ++j) {
      cols.clear();
      lanes.clear();
      for (index_t i = w0; i < w1; ++i) {
        const bool active =
            kernel == EllpackKernel::plain ||
            j < m.row_len[static_cast<std::size_t>(i)];
        if (!active) continue;
        lanes.push_back(static_cast<int>(i - w0));
        const std::size_t k = static_cast<std::size_t>(j) *
                                  static_cast<std::size_t>(m.padded_rows) +
                              static_cast<std::size_t>(i);
        cols.push_back(m.col_idx[k]);
      }
      if (lanes.empty()) continue;  // no lane active in this step
      eng.matrix_load(lanes);
      eng.rhs_gather(cols);
      // Useful work counts only true non-zeros even in the plain kernel.
      std::uint64_t useful = 0;
      for (index_t i = w0; i < w1; ++i)
        if (j < m.row_len[static_cast<std::size_t>(i)]) ++useful;
      eng.warp_step(useful);
    }
    eng.end_warp();
  }
  // LHS store and, for ELLPACK-R, the rowmax[] stream.
  eng.stream(static_cast<std::uint64_t>(m.n_rows) * sizeof(T));
  if (kernel == EllpackKernel::r)
    eng.stream(static_cast<std::uint64_t>(m.n_rows) * sizeof(index_t));
  const KernelResult res = eng.finalize();
  record_sim(span, res, sizeof(T),
             kernel == EllpackKernel::plain ? "ellpack" : "ellpack_r", dev,
             opt.ecc, m.n_rows);
  return res;
}

template <class T>
KernelResult simulate(const DeviceSpec& dev, const Pjds<T>& m,
                      const SimOptions& opt) {
  SPMVM_TRACE_SPAN_NAMED(span, "gpusim/pjds");
  Engine eng(dev, sizeof(T), opt.ecc);
  eng.set_flops(2 * static_cast<std::uint64_t>(m.nnz));
  const index_t ws = dev.warp_size;
  std::vector<index_t> cols;
  std::vector<int> lanes;
  cols.reserve(static_cast<std::size_t>(ws));
  lanes.reserve(static_cast<std::size_t>(ws));
  for (index_t w0 = 0; w0 < m.padded_rows; w0 += ws) {
    const index_t w1 = std::min<index_t>(w0 + ws, m.padded_rows);
    // Rows are globally sorted by descending length: the active lanes of
    // every step are a prefix of the warp.
    const index_t steps = m.row_len[static_cast<std::size_t>(w0)];
    for (index_t j = 0; j < steps; ++j) {
      cols.clear();
      lanes.clear();
      for (index_t i = w0; i < w1; ++i) {
        if (j >= m.row_len[static_cast<std::size_t>(i)]) break;
        lanes.push_back(static_cast<int>(i - w0));
        const std::size_t k = static_cast<std::size_t>(
            m.col_start[static_cast<std::size_t>(j)] +
            static_cast<offset_t>(i));
        cols.push_back(m.col_idx[k]);
      }
      if (cols.empty()) continue;
      eng.matrix_load(lanes);
      eng.rhs_gather(cols);
      eng.warp_step(cols.size());
    }
    eng.end_warp();
  }
  eng.stream(static_cast<std::uint64_t>(m.n_rows) * sizeof(T));          // LHS
  eng.stream(static_cast<std::uint64_t>(m.n_rows) * sizeof(index_t));    // rowmax
  // col_start[] is warp-uniform per step. With an L2 (Fermi) or mapped to
  // the texture cache (C1060, as the paper requires) it is effectively
  // free; otherwise each step re-reads one 32-byte segment.
  if (dev.l2_bytes == 0 && !opt.col_start_in_texture)
    eng.stream(eng.stats().warp_steps * 32);
  const KernelResult res = eng.finalize();
  record_sim(span, res, sizeof(T), "pjds", dev, opt.ecc, m.n_rows);
  return res;
}

template <class T>
KernelResult simulate(const DeviceSpec& dev, const SlicedEll<T>& m,
                      const SimOptions& opt) {
  SPMVM_TRACE_SPAN_NAMED(span, "gpusim/sell");
  Engine eng(dev, sizeof(T), opt.ecc);
  eng.set_flops(2 * static_cast<std::uint64_t>(m.nnz));
  const index_t ws = dev.warp_size;
  std::vector<index_t> cols;
  std::vector<int> lanes;
  cols.reserve(static_cast<std::size_t>(ws));
  lanes.reserve(static_cast<std::size_t>(ws));
  for (index_t w0 = 0; w0 < m.padded_rows; w0 += ws) {
    const index_t w1 = std::min<index_t>(w0 + ws, m.padded_rows);
    index_t steps = 0;
    for (index_t i = w0; i < w1; ++i)
      steps = std::max(steps, m.row_len[static_cast<std::size_t>(i)]);
    for (index_t j = 0; j < steps; ++j) {
      cols.clear();
      lanes.clear();
      for (index_t i = w0; i < w1; ++i) {
        if (j >= m.row_len[static_cast<std::size_t>(i)]) continue;
        lanes.push_back(static_cast<int>(i - w0));
        const index_t s = i / m.slice_height;
        const index_t r = i % m.slice_height;
        const std::size_t k = static_cast<std::size_t>(
            m.slice_ptr[static_cast<std::size_t>(s)] +
            static_cast<offset_t>(j) * m.slice_height + r);
        cols.push_back(m.col_idx[k]);
      }
      if (lanes.empty()) continue;
      eng.matrix_load(lanes);
      eng.rhs_gather(cols);
      eng.warp_step(cols.size());
    }
    eng.end_warp();
  }
  eng.stream(static_cast<std::uint64_t>(m.n_rows) * sizeof(T));
  eng.stream(static_cast<std::uint64_t>(m.n_rows) * sizeof(index_t));
  const KernelResult res = eng.finalize();
  record_sim(span, res, sizeof(T), "sell", dev, opt.ecc, m.n_rows);
  return res;
}

template <class T>
KernelResult simulate_csr_scalar(const DeviceSpec& dev, const Csr<T>& m,
                                 const SimOptions& opt) {
  SPMVM_TRACE_SPAN_NAMED(span, "gpusim/csr_scalar");
  Engine eng(dev, sizeof(T), opt.ecc);
  eng.set_flops(2 * static_cast<std::uint64_t>(m.nnz()));
  const index_t ws = dev.warp_size;
  // Uncoalesced lane loads: each active lane issues its own minimum-size
  // (32-byte) transaction for val and col_idx.
  const std::uint64_t segment = 32;
  std::vector<index_t> cols;
  cols.reserve(static_cast<std::size_t>(ws));
  for (index_t w0 = 0; w0 < m.n_rows; w0 += ws) {
    const index_t w1 = std::min<index_t>(w0 + ws, m.n_rows);
    index_t steps = 0;
    for (index_t i = w0; i < w1; ++i) steps = std::max(steps, m.row_len(i));
    for (index_t j = 0; j < steps; ++j) {
      cols.clear();
      for (index_t i = w0; i < w1; ++i) {
        if (j >= m.row_len(i)) continue;
        const std::size_t k =
            static_cast<std::size_t>(m.row_ptr[static_cast<std::size_t>(i)] +
                                     static_cast<offset_t>(j));
        cols.push_back(m.col_idx[k]);
      }
      if (cols.empty()) continue;
      eng.warp_step(cols.size());
      eng.rhs_gather(cols);
      // One 32B val segment and one 32B idx segment per active lane —
      // lane addresses diverge, so nothing coalesces.
      eng.stream(static_cast<std::uint64_t>(cols.size()) * 2 * segment);
    }
    eng.end_warp();
  }
  eng.stream(static_cast<std::uint64_t>(m.n_rows) * sizeof(T));
  eng.stream(static_cast<std::uint64_t>(m.n_rows) * sizeof(offset_t));
  const KernelResult res = eng.finalize();
  record_sim(span, res, sizeof(T), "csr_scalar", dev, opt.ecc, m.n_rows);
  return res;
}

template <class T>
KernelResult simulate_csr_vector(const DeviceSpec& dev, const Csr<T>& m,
                                 const SimOptions& opt) {
  SPMVM_TRACE_SPAN_NAMED(span, "gpusim/csr_vector");
  Engine eng(dev, sizeof(T), opt.ecc);
  eng.set_flops(2 * static_cast<std::uint64_t>(m.nnz()));
  const index_t ws = dev.warp_size;
  std::vector<index_t> cols;
  std::vector<int> lanes;
  cols.reserve(static_cast<std::size_t>(ws));
  lanes.reserve(static_cast<std::size_t>(ws));
  // One warp per row: val/col_idx loads coalesce along the row; the row
  // is processed in chunks of warp_size, then a log2(ws) reduction.
  const auto reduction_steps =
      static_cast<index_t>(std::max(1.0, std::log2(static_cast<double>(ws))));
  for (index_t i = 0; i < m.n_rows; ++i) {
    const offset_t b = m.row_ptr[static_cast<std::size_t>(i)];
    const index_t len = m.row_len(i);
    for (index_t j0 = 0; j0 < len; j0 += ws) {
      const index_t chunk = std::min<index_t>(ws, len - j0);
      cols.clear();
      lanes.clear();
      for (index_t j = 0; j < chunk; ++j) {
        lanes.push_back(static_cast<int>(j));
        cols.push_back(
            m.col_idx[static_cast<std::size_t>(b + j0 + j)]);
      }
      eng.matrix_load(lanes);
      eng.rhs_gather(cols);
      eng.warp_step(static_cast<std::uint64_t>(chunk));
    }
    // Intra-warp reduction: occupies the warp without useful flops.
    for (index_t r = 0; r < reduction_steps; ++r) eng.warp_step(0);
    eng.end_warp();
  }
  eng.stream(static_cast<std::uint64_t>(m.n_rows) * sizeof(T));
  eng.stream(static_cast<std::uint64_t>(m.n_rows) * sizeof(offset_t));
  const KernelResult res = eng.finalize();
  record_sim(span, res, sizeof(T), "csr_vector", dev, opt.ecc, m.n_rows);
  return res;
}

template <class T>
KernelResult simulate_ellr_t(const DeviceSpec& dev, const Ellpack<T>& m,
                             int threads_per_row, const SimOptions& opt) {
  SPMVM_REQUIRE(threads_per_row >= 1 &&
                    dev.warp_size % threads_per_row == 0,
                "threads_per_row must divide the warp size");
  SPMVM_TRACE_SPAN_NAMED(span, "gpusim/ellr_t");
  Engine eng(dev, sizeof(T), opt.ecc);
  eng.set_flops(2 * static_cast<std::uint64_t>(m.nnz));
  const index_t tpr = threads_per_row;
  const index_t rows_per_warp = dev.warp_size / tpr;
  const auto reduction_steps = static_cast<index_t>(
      tpr > 1 ? std::lround(std::log2(static_cast<double>(tpr))) : 0);
  std::vector<index_t> cols;
  std::vector<int> lanes;
  cols.reserve(static_cast<std::size_t>(dev.warp_size));
  lanes.reserve(static_cast<std::size_t>(dev.warp_size));
  for (index_t w0 = 0; w0 < m.padded_rows; w0 += rows_per_warp) {
    const index_t w1 = std::min<index_t>(w0 + rows_per_warp, m.padded_rows);
    index_t steps = 0;
    for (index_t i = w0; i < w1; ++i)
      steps = std::max(steps,
                       (m.row_len[static_cast<std::size_t>(i)] + tpr - 1) /
                           tpr);
    for (index_t s = 0; s < steps; ++s) {
      cols.clear();
      lanes.clear();
      int lane = 0;
      for (index_t i = w0; i < w1; ++i) {
        const index_t len = m.row_len[static_cast<std::size_t>(i)];
        for (index_t t = 0; t < tpr; ++t, ++lane) {
          const index_t j = s * tpr + t;
          if (j >= len) continue;
          // The tuned ELLR-T layout keeps the cooperative lanes' loads
          // coalesced; model them as consecutive.
          lanes.push_back(static_cast<int>(lanes.size()));
          const std::size_t k = static_cast<std::size_t>(j) *
                                    static_cast<std::size_t>(m.padded_rows) +
                                static_cast<std::size_t>(i);
          cols.push_back(m.col_idx[k]);
        }
      }
      if (lanes.empty()) continue;
      eng.matrix_load(lanes);
      eng.rhs_gather(cols);
      eng.warp_step(cols.size());
    }
    // Intra-row reduction across the T lanes.
    for (index_t r = 0; r < reduction_steps; ++r) eng.warp_step(0);
    eng.end_warp();
  }
  eng.stream(static_cast<std::uint64_t>(m.n_rows) * sizeof(T));
  eng.stream(static_cast<std::uint64_t>(m.n_rows) * sizeof(index_t));
  const KernelResult res = eng.finalize();
  record_sim(span, res, sizeof(T), "ellr_t", dev, opt.ecc, m.n_rows);
  return res;
}

#define SPMVM_INSTANTIATE_KERNEL_SIM(T)                                    \
  template KernelResult simulate(const DeviceSpec&, const Ellpack<T>&,     \
                                 EllpackKernel, const SimOptions&);        \
  template KernelResult simulate(const DeviceSpec&, const Pjds<T>&,        \
                                 const SimOptions&);                       \
  template KernelResult simulate(const DeviceSpec&, const SlicedEll<T>&,   \
                                 const SimOptions&);                       \
  template KernelResult simulate_csr_scalar(const DeviceSpec&,             \
                                            const Csr<T>&,                 \
                                            const SimOptions&);            \
  template KernelResult simulate_csr_vector(const DeviceSpec&,             \
                                            const Csr<T>&,                 \
                                            const SimOptions&);            \
  template KernelResult simulate_ellr_t(const DeviceSpec&,                 \
                                        const Ellpack<T>&, int,            \
                                        const SimOptions&)

SPMVM_INSTANTIATE_KERNEL_SIM(float);
SPMVM_INSTANTIATE_KERNEL_SIM(double);

}  // namespace spmvm::gpusim
