// Warp-granular spMVM kernel simulation.
//
// The simulator walks the *actual* format data structures warp by warp
// and accumulates, per warp step (one inner-loop iteration of Listings
// 1/2):
//   - device-memory transactions for the matrix arrays (val + col_idx),
//     coalesced over the active-lane span,
//   - RHS-gather traffic: warp-level line dedup, then the L2 cache model
//     (this *measures* the paper's α instead of assuming it),
//   - issue slots: every warp occupies its MP until the longest row in
//     the warp completes — ELLPACK-R's "useless hardware reservation"
//     (light boxes in Fig. 2b) — while pJDS's sorted rows keep lanes busy.
//
// Kernel time = max(memory time, issue time) + launch overhead, i.e. the
// kernel is modeled as either bandwidth-bound or issue/occupancy-bound,
// which is what separates the SP and DP columns of Table I.
#pragma once

#include "sparse/pjds.hpp"
#include "gpusim/device_spec.hpp"
#include "sparse/csr.hpp"
#include "sparse/ellpack.hpp"
#include "sparse/sliced_ell.hpp"

namespace spmvm::gpusim {

struct SimOptions {
  bool ecc = true;
  /// Map the pJDS col_start[] array to the texture cache. On Fermi the
  /// L2 makes this a no-op; on the C1060 generation (no L2) the paper
  /// notes it is *necessary* — without it every warp step re-reads the
  /// offset from device memory.
  bool col_start_in_texture = true;
};

struct KernelStats {
  std::uint64_t warps = 0;
  std::uint64_t warp_steps = 0;         // Σ_warps max-row-in-warp
  std::uint64_t useful_lane_steps = 0;  // Σ executed non-zeros
  std::uint64_t total_lane_steps = 0;   // warp_steps × warp_size
  std::uint64_t matrix_bytes = 0;       // val + col_idx transactions
  std::uint64_t rhs_bytes = 0;          // L2 misses × line size
  std::uint64_t stream_bytes = 0;       // LHS store, row_len loads
  std::uint64_t rhs_line_hits = 0;
  std::uint64_t rhs_line_misses = 0;
  std::uint64_t flops = 0;  // 2 × nnz (useful flops only)

  std::uint64_t dram_bytes() const {
    return matrix_bytes + rhs_bytes + stream_bytes;
  }
  /// Measured α of Eq. 1: RHS DRAM traffic / (nnz × scalar size).
  double measured_alpha(std::size_t scalar_size) const;
  /// Fraction of reserved lane-steps doing useful work (Fig. 2b vs 2c).
  double warp_efficiency() const;
};

struct KernelResult {
  KernelStats stats;
  double mem_seconds = 0.0;
  double issue_seconds = 0.0;
  double seconds = 0.0;       // max(mem, issue) + launch overhead
  double gflops = 0.0;        // useful flops / seconds
  double code_balance = 0.0;  // DRAM bytes per useful flop (Eq. 1)
};

enum class EllpackKernel { plain, r };

/// Simulate the ELLPACK (plain, Fig. 2a) or ELLPACK-R (Listing 1,
/// Fig. 2b) kernel.
template <class T>
KernelResult simulate(const DeviceSpec& dev, const Ellpack<T>& m,
                      EllpackKernel kernel, const SimOptions& opt = {});

/// Simulate the pJDS kernel (Listing 2, Fig. 2c).
template <class T>
KernelResult simulate(const DeviceSpec& dev, const Pjds<T>& m,
                      const SimOptions& opt = {});

/// Simulate the sliced-ELLPACK kernel (ELLR-T-style row_len early exit).
template <class T>
KernelResult simulate(const DeviceSpec& dev, const SlicedEll<T>& m,
                      const SimOptions& opt = {});

/// Simulate ELLR-T (Vázquez et al., ref. [3]): ELLPACK-R storage with
/// `threads_per_row` lanes cooperating on each row, so a warp covers
/// warp_size/T rows and a row finishes in ceil(len/T) steps (plus a
/// log2(T) reduction). T is the matrix-dependent tuning parameter the
/// paper contrasts with pJDS's parameter-free design. T must divide the
/// warp size.
template <class T>
KernelResult simulate_ellr_t(const DeviceSpec& dev, const Ellpack<T>& m,
                             int threads_per_row, const SimOptions& opt = {});

/// Simulate a naive CSR kernel with one thread per row: lane addresses
/// diverge, so every load is an uncoalesced 32-byte transaction. The
/// baseline that motivates ELLPACK-style formats on GPUs.
template <class T>
KernelResult simulate_csr_scalar(const DeviceSpec& dev, const Csr<T>& m,
                                 const SimOptions& opt = {});

/// Simulate the CSR *vector* kernel (one warp per row, Bell & Garland
/// [1]): matrix loads coalesce along the row, followed by a log2(warp)
/// intra-warp reduction. Competitive for long rows, wasteful for short
/// ones.
template <class T>
KernelResult simulate_csr_vector(const DeviceSpec& dev, const Csr<T>& m,
                                 const SimOptions& opt = {});

#define SPMVM_EXTERN_KERNEL_SIM(T)                                         \
  extern template KernelResult simulate(const DeviceSpec&,                 \
                                        const Ellpack<T>&, EllpackKernel,  \
                                        const SimOptions&);                \
  extern template KernelResult simulate(const DeviceSpec&, const Pjds<T>&, \
                                        const SimOptions&);                \
  extern template KernelResult simulate(const DeviceSpec&,                 \
                                        const SlicedEll<T>&,               \
                                        const SimOptions&);                \
  extern template KernelResult simulate_csr_scalar(const DeviceSpec&,      \
                                                   const Csr<T>&,          \
                                                   const SimOptions&);     \
  extern template KernelResult simulate_csr_vector(const DeviceSpec&,      \
                                                   const Csr<T>&,          \
                                                   const SimOptions&);     \
  extern template KernelResult simulate_ellr_t(const DeviceSpec&,          \
                                               const Ellpack<T>&, int,     \
                                               const SimOptions&)

SPMVM_EXTERN_KERNEL_SIM(float);
SPMVM_EXTERN_KERNEL_SIM(double);
#undef SPMVM_EXTERN_KERNEL_SIM

}  // namespace spmvm::gpusim
