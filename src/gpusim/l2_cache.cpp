#include "gpusim/l2_cache.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace spmvm::gpusim {

L2Cache::L2Cache(std::size_t capacity_bytes, int line_bytes, int ways)
    : line_bytes_(line_bytes), ways_(ways) {
  SPMVM_REQUIRE(line_bytes >= 1, "line size must be >= 1");
  SPMVM_REQUIRE(ways >= 1, "associativity must be >= 1");
  const std::size_t lines = capacity_bytes / static_cast<std::size_t>(line_bytes);
  n_sets_ = lines / static_cast<std::size_t>(ways);
  if (capacity_bytes > 0)
    SPMVM_REQUIRE(n_sets_ >= 1, "cache too small for its associativity");
  tags_.assign(n_sets_ * static_cast<std::size_t>(ways_), -1);
  lru_.assign(tags_.size(), 0);
}

bool L2Cache::access(std::uint64_t addr) {
  return access_line(addr / static_cast<std::uint64_t>(line_bytes_));
}

bool L2Cache::access_line(std::uint64_t line) {
  if (n_sets_ == 0) {  // cache disabled
    ++misses_;
    return false;
  }
  const std::size_t set = static_cast<std::size_t>(line % n_sets_);
  const auto tag = static_cast<std::int64_t>(line);
  const std::size_t base = set * static_cast<std::size_t>(ways_);
  ++stamp_;
  std::size_t victim = base;
  std::uint64_t oldest = ~std::uint64_t{0};
  for (std::size_t w = base; w < base + static_cast<std::size_t>(ways_); ++w) {
    if (tags_[w] == tag) {
      lru_[w] = stamp_;
      ++hits_;
      return true;
    }
    if (tags_[w] == -1) {  // prefer an empty way
      victim = w;
      oldest = 0;
    } else if (lru_[w] < oldest) {
      victim = w;
      oldest = lru_[w];
    }
  }
  tags_[victim] = tag;
  lru_[victim] = stamp_;
  ++misses_;
  return false;
}

void L2Cache::reset() {
  std::fill(tags_.begin(), tags_.end(), -1);
  std::fill(lru_.begin(), lru_.end(), 0);
  stamp_ = hits_ = misses_ = 0;
}

double L2Cache::hit_rate() const {
  const std::uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0
                    : static_cast<double>(hits_) / static_cast<double>(total);
}

}  // namespace spmvm::gpusim
