// Set-associative LRU cache simulator.
//
// Models the Fermi L2 for the RHS-vector gather: the paper's α parameter
// (Eq. 1) — how often an RHS element must be re-fetched from device
// memory — is *measured* by running the kernel's real access stream
// through this cache instead of being assumed.
#pragma once

#include <cstdint>
#include <vector>

namespace spmvm::gpusim {

class L2Cache {
 public:
  /// capacity_bytes == 0 disables the cache (every access misses), which
  /// models the C1060 generation.
  L2Cache(std::size_t capacity_bytes, int line_bytes, int ways);

  /// Probe one byte address; returns true on hit. Misses fill the line
  /// (LRU replacement within the set).
  bool access(std::uint64_t addr);

  /// Probe a whole line given its line index (addr / line_bytes).
  bool access_line(std::uint64_t line);

  void reset();

  int line_bytes() const { return line_bytes_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  double hit_rate() const;

 private:
  int line_bytes_;
  int ways_;
  std::size_t n_sets_;
  // tags_[set * ways + way]; lru_[same] = last-use stamp; tag -1 = empty.
  std::vector<std::int64_t> tags_;
  std::vector<std::uint64_t> lru_;
  std::uint64_t stamp_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace spmvm::gpusim
