#include "gpusim/pcie.hpp"

#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace spmvm::gpusim {

double pcie_seconds(const DeviceSpec& dev, std::uint64_t bytes) {
  if (bytes == 0) return 0.0;
  static obs::Counter& c_bytes = obs::counter("gpusim.pcie.bytes");
  c_bytes.add(bytes);
  return dev.pcie_latency_s + static_cast<double>(bytes) / (dev.pcie_gbs * 1e9);
}

SpmvTimings with_pcie_transfers(const DeviceSpec& dev, const KernelResult& k,
                                index_t n_rows, index_t n_cols,
                                std::size_t scalar_size) {
  const auto up = static_cast<std::uint64_t>(n_cols) * scalar_size;
  const auto down = static_cast<std::uint64_t>(n_rows) * scalar_size;
  SPMVM_TRACE_SPAN_NAMED(span, "gpusim/pcie_transfers", up + down);
  SpmvTimings t;
  t.kernel_seconds = k.seconds;
  t.pcie_seconds = pcie_seconds(dev, up) + pcie_seconds(dev, down);
  t.total_seconds = t.kernel_seconds + t.pcie_seconds;
  const auto flops = static_cast<double>(k.stats.flops);
  t.gflops_kernel = flops / t.kernel_seconds / 1e9;
  t.gflops_total = flops / t.total_seconds / 1e9;
  span.set_arg("pred_pcie_us", t.pcie_seconds * 1e6);
  if (obs::ledger_enabled()) {
    // PCIe-lane record: the transfer against the raw link bandwidth —
    // the efficiency shortfall is exactly the latency share of the two
    // transfers (Sec. IV-B's small-transfer regime).
    obs::WorkDesc w;
    w.bytes = up + down;
    w.predicted_seconds =
        static_cast<double>(up + down) / (dev.pcie_gbs * 1e9);
    obs::ledger_record(obs::RoofLane::pcie, "vector", "transfer",
                       t.pcie_seconds, w);
  }
  return t;
}

}  // namespace spmvm::gpusim
