// PCIe transfer model (Sec. II-B, Eq. 2): the RHS vector must be uploaded
// and the LHS result downloaded around each spMVM, at the host-link
// bandwidth B_PCI — the overhead that disqualifies low-N_nzr matrices
// from GPGPU acceleration.
#pragma once

#include <cstdint>

#include "gpusim/device_spec.hpp"
#include "gpusim/kernel_sim.hpp"
#include "util/types.hpp"

namespace spmvm::gpusim {

/// Wall-clock seconds to move `bytes` across the host link (latency +
/// bandwidth term).
double pcie_seconds(const DeviceSpec& dev, std::uint64_t bytes);

/// Kernel + host-transfer timing for one spMVM (Eq. 2: T_MVM and T_PCI).
struct SpmvTimings {
  double kernel_seconds = 0.0;
  double pcie_seconds = 0.0;
  double total_seconds = 0.0;
  double gflops_kernel = 0.0;  // excluding transfers (Table I convention)
  double gflops_total = 0.0;   // including transfers (Sec. III numbers)
};

/// Combine a simulated kernel with the RHS-upload (n_cols elements) and
/// LHS-download (n_rows elements) transfers.
SpmvTimings with_pcie_transfers(const DeviceSpec& dev, const KernelResult& k,
                                index_t n_rows, index_t n_cols,
                                std::size_t scalar_size);

}  // namespace spmvm::gpusim
