// General-purpose generators: stencils, banded, random and power-law
// matrices used by tests, examples and ablation benchmarks.
#include <algorithm>
#include <vector>

#include "matgen/generators.hpp"
#include "util/error.hpp"

namespace spmvm {

template <class T>
Csr<T> make_poisson2d(index_t nx, index_t ny) {
  SPMVM_REQUIRE(nx >= 1 && ny >= 1, "grid dimensions must be >= 1");
  const index_t n = nx * ny;
  Coo<T> coo(n, n);
  coo.reserve(static_cast<offset_t>(n) * 5);
  for (index_t y = 0; y < ny; ++y)
    for (index_t x = 0; x < nx; ++x) {
      const index_t i = y * nx + x;
      coo.add(i, i, static_cast<T>(4.0));
      if (x > 0) coo.add(i, i - 1, static_cast<T>(-1.0));
      if (x + 1 < nx) coo.add(i, i + 1, static_cast<T>(-1.0));
      if (y > 0) coo.add(i, i - nx, static_cast<T>(-1.0));
      if (y + 1 < ny) coo.add(i, i + nx, static_cast<T>(-1.0));
    }
  return Csr<T>::from_coo(std::move(coo));
}

template <class T>
Csr<T> make_poisson3d(index_t nx, index_t ny, index_t nz) {
  SPMVM_REQUIRE(nx >= 1 && ny >= 1 && nz >= 1,
                "grid dimensions must be >= 1");
  const index_t n = nx * ny * nz;
  Coo<T> coo(n, n);
  coo.reserve(static_cast<offset_t>(n) * 7);
  for (index_t z = 0; z < nz; ++z)
    for (index_t y = 0; y < ny; ++y)
      for (index_t x = 0; x < nx; ++x) {
        const index_t i = (z * ny + y) * nx + x;
        coo.add(i, i, static_cast<T>(6.0));
        if (x > 0) coo.add(i, i - 1, static_cast<T>(-1.0));
        if (x + 1 < nx) coo.add(i, i + 1, static_cast<T>(-1.0));
        if (y > 0) coo.add(i, i - nx, static_cast<T>(-1.0));
        if (y + 1 < ny) coo.add(i, i + nx, static_cast<T>(-1.0));
        if (z > 0) coo.add(i, i - nx * ny, static_cast<T>(-1.0));
        if (z + 1 < nz) coo.add(i, i + nx * ny, static_cast<T>(-1.0));
      }
  return Csr<T>::from_coo(std::move(coo));
}

template <class T>
Csr<T> make_banded(index_t n, index_t band) {
  SPMVM_REQUIRE(n >= 1 && band >= 0, "invalid banded-matrix parameters");
  Coo<T> coo(n, n);
  // Off-diagonal values depend symmetrically on the unordered index pair,
  // and the diagonal dominates the band: the matrix is SPD, so it can
  // drive the CG/Lanczos solvers directly.
  const auto pair_value = [](index_t a, index_t b) {
    Rng rng((static_cast<std::uint64_t>(std::min(a, b)) << 32) ^
            static_cast<std::uint64_t>(std::max(a, b)) ^ 0xBA4Dull);
    return rng.uniform(-1.0, 1.0);
  };
  for (index_t i = 0; i < n; ++i) {
    const index_t lo = std::max<index_t>(0, i - band);
    const index_t hi = std::min<index_t>(n - 1, i + band);
    for (index_t c = lo; c <= hi; ++c)
      coo.add(i, c,
              c == i ? static_cast<T>(2.0 * band + 1.0)
                     : static_cast<T>(pair_value(i, c)));
  }
  return Csr<T>::from_coo(std::move(coo));
}

template <class T>
Csr<T> make_random_uniform(index_t n, index_t nnzr, std::uint64_t seed,
                           bool diagonal) {
  SPMVM_REQUIRE(n >= 1 && nnzr >= 0 && nnzr <= n,
                "invalid random-matrix parameters");
  Rng rng(seed);
  Coo<T> coo(n, n);
  std::vector<bool> used(static_cast<std::size_t>(n), false);
  std::vector<index_t> cols;
  for (index_t i = 0; i < n; ++i) {
    cols.clear();
    if (diagonal && nnzr > 0) {
      cols.push_back(i);
      used[static_cast<std::size_t>(i)] = true;
    }
    while (static_cast<index_t>(cols.size()) < nnzr) {
      const auto c =
          static_cast<index_t>(rng.next_below(static_cast<std::uint64_t>(n)));
      if (!used[static_cast<std::size_t>(c)]) {
        used[static_cast<std::size_t>(c)] = true;
        cols.push_back(c);
      }
    }
    std::sort(cols.begin(), cols.end());
    for (index_t c : cols) {
      used[static_cast<std::size_t>(c)] = false;
      coo.add(i, c,
              c == i ? static_cast<T>(nnzr + 1)
                     : static_cast<T>(rng.uniform(-1.0, 1.0)));
    }
  }
  return Csr<T>::from_coo(std::move(coo));
}

template <class T>
Csr<T> make_powerlaw(index_t n, double mean_len, index_t max_len,
                     std::uint64_t seed) {
  SPMVM_REQUIRE(n >= 1 && mean_len >= 1.0 && max_len >= 1,
                "invalid power-law parameters");
  Rng rng(seed);
  Coo<T> coo(n, n);
  std::vector<bool> used(static_cast<std::size_t>(n), false);
  std::vector<index_t> cols;
  for (index_t i = 0; i < n; ++i) {
    auto len = static_cast<index_t>(
        std::min<std::uint64_t>(1 + rng.exponential_int(mean_len - 1.0),
                                static_cast<std::uint64_t>(max_len)));
    len = std::min(len, n);
    cols.clear();
    cols.push_back(i);
    used[static_cast<std::size_t>(i)] = true;
    while (static_cast<index_t>(cols.size()) < len) {
      const auto c =
          static_cast<index_t>(rng.next_below(static_cast<std::uint64_t>(n)));
      if (!used[static_cast<std::size_t>(c)]) {
        used[static_cast<std::size_t>(c)] = true;
        cols.push_back(c);
      }
    }
    std::sort(cols.begin(), cols.end());
    for (index_t c : cols) {
      used[static_cast<std::size_t>(c)] = false;
      coo.add(i, c,
              c == i ? static_cast<T>(2.0)
                     : static_cast<T>(rng.uniform(-1.0, 1.0)));
    }
  }
  return Csr<T>::from_coo(std::move(coo));
}

#define SPMVM_INSTANTIATE_GENERAL_GEN(T)                                \
  template Csr<T> make_poisson2d(index_t, index_t);                     \
  template Csr<T> make_poisson3d(index_t, index_t, index_t);            \
  template Csr<T> make_banded(index_t, index_t);                        \
  template Csr<T> make_random_uniform(index_t, index_t, std::uint64_t,  \
                                      bool);                            \
  template Csr<T> make_powerlaw(index_t, double, index_t, std::uint64_t)

SPMVM_INSTANTIATE_GENERAL_GEN(float);
SPMVM_INSTANTIATE_GENERAL_GEN(double);

}  // namespace spmvm
