// Synthetic matrix generators.
//
// The paper's test matrices (Sec. I-C) are proprietary; these generators
// reproduce each matrix's published fingerprint — dimension, average
// non-zeros per row (N_nzr), row-length distribution shape (Fig. 3) and
// characteristic structure — at a configurable scale. Everything the
// paper measures (data reduction, kernel balance, cache reuse, halo
// volume) depends only on these properties, so the stand-ins preserve
// the experiments' behaviour (see DESIGN.md §2).
#pragma once

#include "sparse/csr.hpp"
#include "util/rng.hpp"

namespace spmvm {

/// Common generator knobs. `scale` divides the paper's matrix dimension
/// (scale = 1 reproduces the full-size matrix; the default fits a laptop).
struct GenConfig {
  double scale = 64.0;
  std::uint64_t seed = 0x5EED;
};

/// HMEp — Holstein-Hubbard model (quantum physics). Paper: N = 6,201,600,
/// N_nzr ≈ 15, contiguous off-diagonals of length 15,000.
/// Structure: local electron hopping (±1, ±2) plus phonon couplings on
/// far off-diagonals at multiples of the phonon stride.
template <class T>
Csr<T> make_hmep(const GenConfig& cfg = {});

/// sAMG — adaptive multigrid for a Poisson problem on a car geometry.
/// Paper: N = 3,405,035, N_nzr ≈ 7, widest row > 4x the shortest, short
/// rows dominating the weight.
template <class T>
Csr<T> make_samg(const GenConfig& cfg = {});

/// DLR1 — adjoint CFD (TAU) on an unstructured hybrid grid, 6 unknowns
/// per point. Paper: N = 278,502, N_nzr ≈ 144, narrow length spread
/// (relative width ≈ 2, 80% of rows at >= 0.8 of the maximum).
template <class T>
Csr<T> make_dlr1(const GenConfig& cfg = {});

/// DLR2 — aerodynamic gradients (TAU), entirely dense 5x5 subblocks.
/// Paper: N = 541,980, N_nzr ≈ 315.
template <class T>
Csr<T> make_dlr2(const GenConfig& cfg = {});

/// UHBR — aeroelastic turbine-fan investigation (TRACE solver).
/// Paper: N = 4,485,000 (4.5e6), N_nzr ≈ 123.
template <class T>
Csr<T> make_uhbr(const GenConfig& cfg = {});

// ---- General-purpose generators -----------------------------------------

/// Symmetric positive-definite 2D five-point Poisson stencil on an
/// nx × ny grid (dimension nx*ny).
template <class T>
Csr<T> make_poisson2d(index_t nx, index_t ny);

/// Symmetric positive-definite 3D seven-point Poisson stencil.
template <class T>
Csr<T> make_poisson3d(index_t nx, index_t ny, index_t nz);

/// Banded matrix with `band` sub/super-diagonals (plus main diagonal).
template <class T>
Csr<T> make_banded(index_t n, index_t band);

/// Each row gets exactly `nnzr` uniformly random distinct columns (plus a
/// guaranteed diagonal when `diagonal` is set, making it irreducible).
template <class T>
Csr<T> make_random_uniform(index_t n, index_t nnzr, std::uint64_t seed,
                           bool diagonal = true);

/// Power-law row lengths: a few very long rows, many short ones — the
/// adversarial case for ELLPACK storage.
template <class T>
Csr<T> make_powerlaw(index_t n, double mean_len, index_t max_len,
                     std::uint64_t seed);

#define SPMVM_EXTERN_GEN(T)                                               \
  extern template Csr<T> make_hmep(const GenConfig&);                     \
  extern template Csr<T> make_samg(const GenConfig&);                     \
  extern template Csr<T> make_dlr1(const GenConfig&);                     \
  extern template Csr<T> make_dlr2(const GenConfig&);                     \
  extern template Csr<T> make_uhbr(const GenConfig&);                     \
  extern template Csr<T> make_poisson2d(index_t, index_t);                \
  extern template Csr<T> make_poisson3d(index_t, index_t, index_t);       \
  extern template Csr<T> make_banded(index_t, index_t);                   \
  extern template Csr<T> make_random_uniform(index_t, index_t,            \
                                             std::uint64_t, bool);        \
  extern template Csr<T> make_powerlaw(index_t, double, index_t,          \
                                       std::uint64_t)

SPMVM_EXTERN_GEN(float);
SPMVM_EXTERN_GEN(double);
#undef SPMVM_EXTERN_GEN

}  // namespace spmvm
