// Generators for the five paper test matrices (see generators.hpp for the
// published fingerprints each one reproduces).
#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "matgen/generators.hpp"
#include "util/error.hpp"

namespace spmvm {

namespace {

index_t scaled_dim(double paper_dim, double scale, index_t multiple) {
  SPMVM_REQUIRE(scale >= 1.0, "scale must be >= 1");
  auto n = static_cast<index_t>(paper_dim / scale);
  n = std::max<index_t>(n, 4 * multiple);
  return (n / multiple) * multiple;
}

/// Push one row built from a scratch column list: clamp to range, sort,
/// dedup, emit with random values and a stable diagonal.
template <class T>
void emit_row(Coo<T>& coo, index_t i, std::vector<index_t>& cols, Rng& rng) {
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  for (index_t c : cols) {
    const T v = (c == i) ? static_cast<T>(4.0)
                         : static_cast<T>(rng.uniform(-1.0, 1.0));
    coo.add(i, c, v);
  }
}

int clamped_normal(Rng& rng, double mean, double sigma, int lo, int hi) {
  const double v = mean + sigma * rng.normal();
  return std::clamp(static_cast<int>(std::lround(v)), lo, hi);
}

/// Block-structured CFD-like matrix: points carry `block` unknowns; each
/// point couples to `degree(point)` neighbor points clustered around it,
/// and every coupling is a dense block x block subblock.
template <class T>
Csr<T> make_blocked_cfd(index_t n_points, index_t block, Rng& rng,
                        const std::function<int(Rng&)>& degree) {
  const index_t n = n_points * block;
  Coo<T> coo(n, n);
  std::vector<index_t> neighbor_points;
  std::vector<index_t> cols;
  for (index_t p = 0; p < n_points; ++p) {
    const int d = std::min<int>(degree(rng), static_cast<int>(n_points));
    neighbor_points.clear();
    neighbor_points.push_back(p);
    // Neighbors cluster around the point, but with the loose locality of
    // an unstructured-grid numbering: the window is wide relative to the
    // degree, which is what gives these matrices their substantial halo
    // volume when partitioned (Fig. 5a). The window is shifted to lie
    // inside the point range so boundary points keep their full degree.
    const index_t span = std::min<index_t>(
        static_cast<index_t>(32 * d + 128), n_points);
    const index_t lo =
        std::clamp<index_t>(p - span / 2, 0, n_points - span);
    int attempts = 0;
    while (static_cast<int>(neighbor_points.size()) < d &&
           attempts < 64 * d) {
      ++attempts;
      const index_t q =
          lo + static_cast<index_t>(
                   rng.next_below(static_cast<std::uint64_t>(span)));
      if (std::find(neighbor_points.begin(), neighbor_points.end(), q) ==
          neighbor_points.end())
        neighbor_points.push_back(q);
    }
    std::sort(neighbor_points.begin(), neighbor_points.end());
    for (index_t u = 0; u < block; ++u) {
      const index_t i = p * block + u;
      cols.clear();
      for (index_t q : neighbor_points)
        for (index_t v = 0; v < block; ++v) cols.push_back(q * block + v);
      emit_row(coo, i, cols, rng);
    }
  }
  return Csr<T>::from_coo(std::move(coo));
}

}  // namespace

template <class T>
Csr<T> make_hmep(const GenConfig& cfg) {
  Rng rng(cfg.seed ^ 0x484D4570ull);  // "HMEp"
  const index_t n = scaled_dim(6201600.0, cfg.scale, 64);
  // Phonon stride: the paper's contiguous off-diagonals have length
  // 15,000 at full size; scale it with the dimension (floor 8).
  const index_t stride =
      std::max<index_t>(static_cast<index_t>(15000.0 / cfg.scale), 8);
  Coo<T> coo(n, n);
  std::vector<index_t> cols;
  // Draw the phonon-coupling count once per 64-row segment so the far
  // off-diagonals stay contiguous over long row runs, as in the paper;
  // small per-row jitter models boundary effects in the occupation-number
  // basis and keeps warps mildly imbalanced.
  constexpr index_t kSegment = 64;
  int segment_couplings = 0;
  for (index_t i = 0; i < n; ++i) {
    if (i % kSegment == 0)
      segment_couplings = clamped_normal(rng, 10.0, 4.0, 0, 18);
    const int couplings = std::clamp(
        segment_couplings - 2 + static_cast<int>(rng.next_below(5)), 0, 18);
    cols.clear();
    // Electron hopping: diagonal plus +-1, +-2.
    for (index_t d = -2; d <= 2; ++d) {
      const index_t c = i + d;
      if (c >= 0 && c < n) cols.push_back(c);
    }
    // Phonon ladder: alternate +-k*stride until `couplings` entries land.
    int placed = 0;
    for (index_t k = 1; placed < couplings && k <= 18; ++k) {
      const index_t up = i + k * stride;
      const index_t dn = i - k * stride;
      if (up < n && placed < couplings) {
        cols.push_back(up);
        ++placed;
      }
      if (dn >= 0 && placed < couplings) {
        cols.push_back(dn);
        ++placed;
      }
    }
    emit_row(coo, i, cols, rng);
  }
  return Csr<T>::from_coo(std::move(coo));
}

template <class T>
Csr<T> make_samg(const GenConfig& cfg) {
  Rng rng(cfg.seed ^ 0x73414D47ull);  // "sAMG"
  const index_t n = scaled_dim(3405035.0, cfg.scale, 1);
  // Irregular mesh locality: most couplings stay within a window that
  // mimics the coarse-grid neighborhood.
  const index_t window = std::max<index_t>(n / 64, 32);
  Coo<T> coo(n, n);
  std::vector<index_t> cols;
  for (index_t i = 0; i < n; ++i) {
    // Heavy-tailed row lengths drawn independently per row: short rows
    // dominate, a few rows reach > 4x the typical length (Fig. 3, sAMG
    // panel). The uncorrelated lengths are what make ELLPACK-R's warp
    // reservation waste so large on this matrix.
    const int extra = static_cast<int>(
        std::min<std::uint64_t>(rng.exponential_int(6.5), 24));
    cols.clear();
    cols.push_back(i);
    int attempts = 0;
    while (static_cast<int>(cols.size()) < 1 + extra &&
           attempts < 16 * (1 + extra)) {
      ++attempts;
      const auto hop =
          static_cast<index_t>(1 + rng.exponential_int(window / 8.0));
      const index_t c = rng.chance(0.5) ? i + hop : i - hop;
      if (c >= 0 && c < n &&
          std::find(cols.begin(), cols.end(), c) == cols.end())
        cols.push_back(c);
    }
    emit_row(coo, i, cols, rng);
  }
  return Csr<T>::from_coo(std::move(coo));
}

template <class T>
Csr<T> make_dlr1(const GenConfig& cfg) {
  Rng rng(cfg.seed ^ 0x444C5231ull);  // "DLR1"
  const index_t n = scaled_dim(278502.0, cfg.scale, 6);
  // 80% of rows at >= 0.8 of the maximum length: high-degree points
  // dominate, with a thin tail of low-degree (boundary) points.
  auto degree = [](Rng& r) {
    return r.chance(0.8) ? 23 + static_cast<int>(r.next_below(7))    // 23..29
                         : 12 + static_cast<int>(r.next_below(11));  // 12..22
  };
  return make_blocked_cfd<T>(n / 6, 6, rng, degree);
}

template <class T>
Csr<T> make_dlr2(const GenConfig& cfg) {
  Rng rng(cfg.seed ^ 0x444C5232ull);  // "DLR2"
  const index_t n = scaled_dim(541980.0, cfg.scale, 5);
  // Dense 5x5 subblocks throughout; block count spread wide enough to
  // give the ~48% pJDS data reduction of Table I.
  auto degree = [](Rng& r) { return clamped_normal(r, 63.0, 22.0, 12, 121); };
  return make_blocked_cfd<T>(n / 5, 5, rng, degree);
}

template <class T>
Csr<T> make_uhbr(const GenConfig& cfg) {
  Rng rng(cfg.seed ^ 0x55484252ull);  // "UHBR"
  const index_t n = scaled_dim(4485000.0, cfg.scale, 6);
  auto degree = [](Rng& r) { return clamped_normal(r, 20.5, 4.5, 8, 34); };
  return make_blocked_cfd<T>(n / 6, 6, rng, degree);
}

#define SPMVM_INSTANTIATE_PAPER_GEN(T)                 \
  template Csr<T> make_hmep(const GenConfig&);         \
  template Csr<T> make_samg(const GenConfig&);         \
  template Csr<T> make_dlr1(const GenConfig&);         \
  template Csr<T> make_dlr2(const GenConfig&);         \
  template Csr<T> make_uhbr(const GenConfig&)

SPMVM_INSTANTIATE_PAPER_GEN(float);
SPMVM_INSTANTIATE_PAPER_GEN(double);

}  // namespace spmvm
