#include "matgen/suite.hpp"

#include "util/error.hpp"

namespace spmvm {

namespace {
PaperRef ref_dlr1() { return {278502, 144.0, 17.5, 12.9, 12.9}; }
PaperRef ref_dlr2() { return {541980, 315.0, 48.0, 9.6, 9.5}; }
PaperRef ref_hmep() { return {6201600, 15.0, 36.0, 7.9, 7.5}; }
PaperRef ref_samg() { return {3405035, 7.0, 68.4, 7.8, 8.5}; }
PaperRef ref_uhbr() { return {4485000, 123.0, -1.0, -1.0, -1.0}; }
}  // namespace

NamedMatrix make_named(const std::string& name, double scale,
                       std::uint64_t seed) {
  GenConfig cfg;
  cfg.scale = scale;
  cfg.seed = seed;
  if (name == "DLR1") return {name, make_dlr1<double>(cfg), ref_dlr1()};
  if (name == "DLR2") return {name, make_dlr2<double>(cfg), ref_dlr2()};
  if (name == "HMEp") return {name, make_hmep<double>(cfg), ref_hmep()};
  if (name == "sAMG") return {name, make_samg<double>(cfg), ref_samg()};
  if (name == "UHBR") return {name, make_uhbr<double>(cfg), ref_uhbr()};
  SPMVM_REQUIRE(false, "unknown matrix name: " + name);
  return {};
}

std::vector<NamedMatrix> table1_suite(double scale, std::uint64_t seed) {
  std::vector<NamedMatrix> suite;
  for (const char* name : {"DLR1", "DLR2", "HMEp", "sAMG"})
    suite.push_back(make_named(name, scale, seed));
  return suite;
}

std::vector<NamedMatrix> scaling_suite(double scale, std::uint64_t seed) {
  std::vector<NamedMatrix> suite;
  for (const char* name : {"DLR1", "UHBR"})
    suite.push_back(make_named(name, scale, seed));
  return suite;
}

}  // namespace spmvm
