// The paper's benchmark suite: named matrices plus their published
// reference numbers, so every bench can print paper-vs-measured rows.
#pragma once

#include <string>
#include <vector>

#include "matgen/generators.hpp"
#include "sparse/csr.hpp"

namespace spmvm {

/// Published figures for one test matrix (Sec. I-C and Table I).
struct PaperRef {
  index_t dimension = 0;          // full-size N
  double nnzr = 0.0;              // average non-zeros per row
  double data_reduction = -1.0;   // pJDS vs ELLPACK, % (Table I; -1 = n/a)
  double gfs_ellpack_r_dp_ecc = -1.0;  // Table I, DP ECC=1 (-1 = n/a)
  double gfs_pjds_dp_ecc = -1.0;
};

struct NamedMatrix {
  std::string name;
  Csr<double> matrix;
  PaperRef paper;
};

/// The four Table I matrices (DLR1, DLR2, HMEp, sAMG) at the given scale.
std::vector<NamedMatrix> table1_suite(double scale,
                                      std::uint64_t seed = 0x5EED);

/// The two strong-scaling matrices of Fig. 5 (DLR1, UHBR).
std::vector<NamedMatrix> scaling_suite(double scale,
                                       std::uint64_t seed = 0x5EED);

/// Look up one matrix of the full suite by name (DLR1, DLR2, HMEp, sAMG,
/// UHBR); throws spmvm::Error for unknown names.
NamedMatrix make_named(const std::string& name, double scale,
                       std::uint64_t seed = 0x5EED);

}  // namespace spmvm
