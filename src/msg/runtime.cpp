#include "msg/runtime.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <exception>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace spmvm::msg {

namespace detail {

struct Message {
  int source;
  int tag;
  std::vector<std::byte> payload;
  std::uint64_t flow_id = 0;  // trace flow pairing (0 = untraced send)
};

/// A posted receive waiting for rendezvous delivery. The slot lives in
/// the owning Request (allocated once for persistent requests) and is
/// registered in the receiver's mailbox; `done` is written by the
/// sender and read by the receiver, both under the mailbox mutex.
struct RecvSlot {
  int source = -1;
  int tag = -1;
  std::span<std::byte> buffer{};
  bool done = false;
  std::uint64_t flow_id = 0;  // stamped by the sender on delivery
};

struct Mailbox {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Message> messages;  // eager protocol: queued payload copies
  /// Receives posted before the matching send arrived, FIFO by
  /// position. A vector (not a deque) so steady-state post/match cycles
  /// reuse the same capacity and never allocate.
  std::vector<std::shared_ptr<RecvSlot>> posted;
};

struct State {
  explicit State(int n) : n_ranks(n), mailboxes(static_cast<std::size_t>(n)) {
    reduce_slots.assign(static_cast<std::size_t>(n), 0.0);
    // Per-peer traffic counters, resolved once here so the send/receive
    // hot paths never touch the registry map (steady-state plan
    // iterations stay allocation-free, asserted in test_comm_plan).
    bytes_sent_to.reserve(static_cast<std::size_t>(n));
    bytes_recv_from.reserve(static_cast<std::size_t>(n));
    for (int p = 0; p < n; ++p) {
      const std::string peer = "{peer=" + std::to_string(p) + "}";
      bytes_sent_to.push_back(&obs::counter("comm.bytes_sent" + peer));
      bytes_recv_from.push_back(&obs::counter("comm.bytes_recv" + peer));
    }
  }
  int n_ranks;
  std::vector<Mailbox> mailboxes;
  std::vector<obs::Counter*> bytes_sent_to;    // indexed by destination
  std::vector<obs::Counter*> bytes_recv_from;  // indexed by source
  std::atomic<bool> aborted{false};

  // Barrier (generation counting).
  std::mutex barrier_mutex;
  std::condition_variable barrier_cv;
  int barrier_waiting = 0;
  std::uint64_t barrier_generation = 0;

  // Scratch for the simple collectives (guarded by the barrier protocol:
  // every rank writes its slot, barrier, every rank reads, barrier).
  std::vector<double> reduce_slots;
};

}  // namespace detail

using detail::Mailbox;
using detail::Message;
using detail::RecvSlot;
using detail::State;

int Comm::size() const { return state_->n_ranks; }

void Comm::deliver(int dest, int tag, std::span<const std::byte> data) {
  SPMVM_REQUIRE(dest >= 0 && dest < size(), "destination rank out of range");
  static obs::Counter& c_hits = obs::counter("comm.rendezvous_hits");
  static obs::Counter& c_eager = obs::counter("comm.eager_fallbacks");
  state_->bytes_sent_to[static_cast<std::size_t>(dest)]->add(data.size());
  // The send span carries a fresh flow id; the id travels with the
  // payload (RecvSlot / Message) and the matching receive span stamps
  // the same id, which exporters draw as a send→recv arrow.
  SPMVM_TRACE_SPAN_NAMED(span, "msg/send", data.size());
  std::uint64_t flow = 0;
  if (span.active()) {
    flow = obs::next_flow_id();
    span.set_flow(obs::FlowDir::send, flow);
    span.set_arg("peer", dest);
  }
  auto& box = state_->mailboxes[static_cast<std::size_t>(dest)];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    for (auto it = box.posted.begin(); it != box.posted.end(); ++it) {
      RecvSlot& slot = **it;
      if (slot.source != rank_ || slot.tag != tag) continue;
      SPMVM_REQUIRE(data.size() == slot.buffer.size(),
                    "message size does not match receive buffer");
      if (!data.empty())
        std::memcpy(slot.buffer.data(), data.data(), data.size());
      slot.done = true;
      slot.flow_id = flow;
      box.posted.erase(it);
      c_hits.add();
      span.set_arg("rendezvous", 1.0);
      box.cv.notify_all();
      return;
    }
    box.messages.push_back(
        Message{rank_, tag, {data.begin(), data.end()}, flow});
    c_eager.add();
    span.set_arg("rendezvous", 0.0);
  }
  box.cv.notify_all();
}

void Comm::post_recv(Request& req) {
  auto& box = state_->mailboxes[static_cast<std::size_t>(rank_)];
  std::lock_guard<std::mutex> lock(box.mutex);
  // Drain the eager queue first so per-(source, tag) message order is
  // preserved: a queued message is always older than this receive.
  const auto it = std::find_if(
      box.messages.begin(), box.messages.end(), [&](const Message& m) {
        return m.source == req.peer_ && m.tag == req.tag_;
      });
  if (it != box.messages.end()) {
    SPMVM_REQUIRE(it->payload.size() == req.buffer_.size(),
                  "message size does not match receive buffer");
    {
      SPMVM_TRACE_SPAN_NAMED(span, "msg/recv", it->payload.size());
      if (span.active()) {
        span.set_arg("peer", req.peer_);
        if (it->flow_id != 0)
          span.set_flow(obs::FlowDir::recv, it->flow_id);
      }
      std::copy(it->payload.begin(), it->payload.end(), req.buffer_.begin());
    }
    state_->bytes_recv_from[static_cast<std::size_t>(req.peer_)]->add(
        it->payload.size());
    box.messages.erase(it);
    req.done_ = true;
    return;
  }
  if (req.slot_ == nullptr) req.slot_ = std::make_shared<RecvSlot>();
  req.slot_->source = req.peer_;
  req.slot_->tag = req.tag_;
  req.slot_->buffer = req.buffer_;
  req.slot_->done = false;
  req.slot_->flow_id = 0;
  box.posted.push_back(req.slot_);
  req.done_ = false;
}

Request Comm::isend(int dest, int tag, std::span<const std::byte> data) {
  deliver(dest, tag, data);
  Request req;
  req.kind_ = Request::Kind::send;
  req.peer_ = dest;
  req.tag_ = tag;
  req.done_ = true;  // buffered: complete on return
  return req;
}

Request Comm::irecv(int source, int tag, std::span<std::byte> buffer) {
  SPMVM_REQUIRE(source >= 0 && source < size(),
                "irecv: source rank out of range");
  SPMVM_REQUIRE(source != rank_,
                "irecv: receiving from self would wait on a mailbox that "
                "can never fill; self-owned data needs no message");
  Request req;
  req.kind_ = Request::Kind::recv;
  req.peer_ = source;
  req.tag_ = tag;
  req.buffer_ = buffer;
  post_recv(req);
  return req;
}

Request Comm::send_init(int dest, int tag, std::span<const std::byte> data) {
  SPMVM_REQUIRE(dest >= 0 && dest < size(),
                "send_init: destination rank out of range");
  SPMVM_REQUIRE(dest != rank_, "send_init: no self-communication");
  Request req;
  req.kind_ = Request::Kind::send;
  req.peer_ = dest;
  req.tag_ = tag;
  req.send_data_ = data;
  req.persistent_ = true;
  return req;
}

Request Comm::recv_init(int source, int tag, std::span<std::byte> buffer) {
  SPMVM_REQUIRE(source >= 0 && source < size(),
                "recv_init: source rank out of range");
  SPMVM_REQUIRE(source != rank_,
                "recv_init: receiving from self would wait on a mailbox "
                "that can never fill; self-owned data needs no message");
  Request req;
  req.kind_ = Request::Kind::recv;
  req.peer_ = source;
  req.tag_ = tag;
  req.buffer_ = buffer;
  req.persistent_ = true;
  req.slot_ = std::make_shared<RecvSlot>();  // reused by every start()
  return req;
}

void Comm::start(Request& req) {
  SPMVM_REQUIRE(req.persistent_, "start: request is not persistent");
  SPMVM_REQUIRE(!req.active_, "start: persistent request already active");
  req.active_ = true;
  if (req.kind_ == Request::Kind::send) {
    deliver(req.peer_, req.tag_, req.send_data_);
    req.done_ = true;
  } else {
    post_recv(req);
  }
}

void Comm::startall(std::span<Request> reqs) {
  for (auto& r : reqs) start(r);
}

void Comm::cancel(Request& req) {
  if (req.kind_ != Request::Kind::recv || req.slot_ == nullptr) {
    req.active_ = false;
    return;
  }
  auto& box = state_->mailboxes[static_cast<std::size_t>(rank_)];
  std::lock_guard<std::mutex> lock(box.mutex);
  const auto it =
      std::find(box.posted.begin(), box.posted.end(), req.slot_);
  if (it != box.posted.end()) box.posted.erase(it);
  req.active_ = false;
  req.done_ = false;
}

void Comm::wait(Request& req) {
  if (req.kind_ == Request::Kind::none) return;
  if (req.persistent_ && !req.active_) return;  // inactive: nothing pending
  if (req.done_) {
    req.active_ = false;
    return;
  }
  SPMVM_REQUIRE(req.kind_ == Request::Kind::recv,
                "only receive requests can be pending");
  auto& box = state_->mailboxes[static_cast<std::size_t>(rank_)];
  std::unique_lock<std::mutex> lock(box.mutex);
  for (;;) {
    if (req.slot_ != nullptr && req.slot_->done) {
      // Rendezvous completion: the sender already filled the buffer;
      // record the receive end of the flow at the point the receiver
      // observed it.
      {
        SPMVM_TRACE_SPAN_NAMED(span, "msg/recv", req.buffer_.size());
        if (span.active()) {
          span.set_arg("peer", req.peer_);
          if (req.slot_->flow_id != 0)
            span.set_flow(obs::FlowDir::recv, req.slot_->flow_id);
        }
      }
      state_->bytes_recv_from[static_cast<std::size_t>(req.peer_)]->add(
          req.buffer_.size());
      req.slot_->flow_id = 0;
      req.done_ = true;
      req.active_ = false;
      return;
    }
    SPMVM_REQUIRE(!state_->aborted.load(),
                  "peer rank failed while this rank was receiving");
    box.cv.wait(lock);
  }
}

void Comm::waitall(std::span<Request> reqs) {
  for (auto& r : reqs) wait(r);
}

void Comm::send(int dest, int tag, std::span<const std::byte> data) {
  isend(dest, tag, data);
}

void Comm::recv(int source, int tag, std::span<std::byte> buffer) {
  Request req = irecv(source, tag, buffer);
  wait(req);
}

void Comm::barrier() {
  std::unique_lock<std::mutex> lock(state_->barrier_mutex);
  const std::uint64_t gen = state_->barrier_generation;
  if (++state_->barrier_waiting == state_->n_ranks) {
    state_->barrier_waiting = 0;
    ++state_->barrier_generation;
    state_->barrier_cv.notify_all();
  } else {
    state_->barrier_cv.wait(lock, [&] {
      return state_->barrier_generation != gen || state_->aborted.load();
    });
    SPMVM_REQUIRE(state_->barrier_generation != gen,
                  "peer rank failed while this rank was in a barrier");
  }
}

double Comm::allreduce_sum(double local) {
  state_->reduce_slots[static_cast<std::size_t>(rank_)] = local;
  barrier();
  double total = 0.0;
  for (const double v : state_->reduce_slots) total += v;
  barrier();  // keep slots alive until everyone has read
  return total;
}

std::vector<double> Comm::allgather(double local) {
  state_->reduce_slots[static_cast<std::size_t>(rank_)] = local;
  barrier();
  std::vector<double> out = state_->reduce_slots;
  barrier();
  return out;
}

std::vector<std::vector<std::byte>> Comm::alltoall(
    const std::vector<std::vector<std::byte>>& send) {
  SPMVM_REQUIRE(static_cast<int>(send.size()) == size(),
                "alltoall needs one buffer per rank");
  constexpr int kTag = -0x7FFF;  // reserved internal tag
  std::vector<std::vector<std::byte>> out(send.size());
  // Exchange sizes first (self-size handled locally).
  std::vector<std::uint64_t> sizes(send.size());
  for (int d = 0; d < size(); ++d) {
    if (d == rank_) continue;
    const std::uint64_t len = send[static_cast<std::size_t>(d)].size();
    isend(d, kTag, std::as_bytes(std::span<const std::uint64_t>(&len, 1)));
  }
  for (int s = 0; s < size(); ++s) {
    if (s == rank_) continue;
    recv(s, kTag,
         std::as_writable_bytes(std::span<std::uint64_t>(
             &sizes[static_cast<std::size_t>(s)], 1)));
  }
  for (int d = 0; d < size(); ++d) {
    if (d == rank_) continue;
    isend(d, kTag + 1, send[static_cast<std::size_t>(d)]);
  }
  out[static_cast<std::size_t>(rank_)] = send[static_cast<std::size_t>(rank_)];
  for (int s = 0; s < size(); ++s) {
    if (s == rank_) continue;
    out[static_cast<std::size_t>(s)].resize(sizes[static_cast<std::size_t>(s)]);
    recv(s, kTag + 1, out[static_cast<std::size_t>(s)]);
  }
  return out;
}

void Runtime::run(int n_ranks, const std::function<void(Comm&)>& rank_fn) {
  SPMVM_REQUIRE(n_ranks >= 1, "need at least one rank");
  auto state = std::make_shared<State>(n_ranks);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n_ranks));
  threads.reserve(static_cast<std::size_t>(n_ranks));
  for (int r = 0; r < n_ranks; ++r) {
    threads.emplace_back([r, state, &rank_fn, &errors] {
      obs::set_rank(r);  // every span this rank records lands in lane r
      Comm comm(r, state);
      try {
        rank_fn(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        // Wake any rank blocked on this one so the run can unwind; the
        // first captured error is the one rethrown after join.
        state->aborted.store(true);
        for (auto& box : state->mailboxes) {
          std::lock_guard<std::mutex> lock(box.mutex);
          box.cv.notify_all();
        }
        {
          std::lock_guard<std::mutex> lock(state->barrier_mutex);
          state->barrier_cv.notify_all();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors)
    if (e) std::rethrow_exception(e);
}

}  // namespace spmvm::msg
