// In-process message-passing runtime.
//
// Substitute for MPI on the Dirac cluster (DESIGN.md §2): ranks run as
// threads of one process and exchange byte buffers through per-rank
// mailboxes, with MPI-like nonblocking semantics (isend/irecv +
// wait/waitall, tag and source matching), persistent requests
// (send_init/recv_init/start, the MPI_*_init family), a barrier, and
// the collectives the distributed spMVM needs.
//
// Delivery uses a rendezvous fast path: when the receiver has already
// posted a matching receive, the sender copies the payload straight
// into the posted buffer — one copy, no mailbox allocation. Otherwise
// the eager protocol queues a copy in the destination mailbox and the
// receive drains it later (two copies). The split is observable through
// the obs counters `comm.rendezvous_hits` / `comm.eager_fallbacks`.
// Functional behaviour only — wall-clock performance of a *cluster* is
// produced by dist/cluster_model.
//
// Observability (DESIGN.md §11): Runtime::run assigns each rank thread
// its trace lane (obs::set_rank), every delivery records a `msg/send`
// span and every completion a matching `msg/recv` span linked by a
// flow id (exported as send→recv arrows in Chrome traces), and traffic
// is attributed per peer through the always-on counters
// `comm.bytes_sent{peer=N}` / `comm.bytes_recv{peer=N}`.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace spmvm::msg {

namespace detail {
struct State;
struct RecvSlot;
}

/// Handle for a pending nonblocking operation. Persistent requests
/// (send_init/recv_init) stay bound to their peer/tag/buffer and can be
/// re-activated with Comm::start after every wait.
class Request {
 public:
  Request() = default;

 private:
  friend class Comm;
  enum class Kind { none, send, recv };
  Kind kind_ = Kind::none;
  int peer_ = -1;
  int tag_ = -1;
  std::span<std::byte> buffer_{};            // receive target
  std::span<const std::byte> send_data_{};   // persistent-send payload
  std::shared_ptr<detail::RecvSlot> slot_{}; // posted-receive registration
  bool done_ = false;
  bool persistent_ = false;
  bool active_ = false;  // persistent: started and not yet waited
};

/// Per-rank communicator handed to the rank function by Runtime::run.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Buffered nonblocking send: the payload lands either directly in a
  /// matching posted receive buffer (rendezvous) or as a copy in the
  /// destination mailbox (eager); the request completes at once.
  Request isend(int dest, int tag, std::span<const std::byte> data);

  /// Nonblocking receive of exactly buffer.size() bytes from (source,
  /// tag). The receive is posted immediately: an already-queued eager
  /// message is drained on the spot, otherwise the buffer is registered
  /// for rendezvous delivery. Receiving from self or an out-of-range
  /// rank is rejected up front — such a receive could never complete.
  Request irecv(int source, int tag, std::span<std::byte> buffer);

  // ---- persistent requests (MPI_Send_init / MPI_Recv_init style) ---------

  /// Bind a send to (dest, tag, data) without starting it. The returned
  /// request is inactive; each start() delivers the current contents of
  /// `data`, and wait() re-arms it for the next start().
  Request send_init(int dest, int tag, std::span<const std::byte> data);

  /// Bind a receive to (source, tag, buffer) without posting it. Each
  /// start() posts the receive (registering `buffer` for rendezvous
  /// delivery); wait() completes it and re-arms for the next start().
  /// The registration slot is allocated once, here — steady-state
  /// start/wait cycles perform no heap allocation.
  Request recv_init(int source, int tag, std::span<std::byte> buffer);

  /// Activate a persistent request. Starting an already-active request
  /// is an error.
  void start(Request& req);
  void startall(std::span<Request> reqs);

  /// Deregister a started-but-unmatched persistent receive (teardown of
  /// a communication plan). No-op for completed or inactive requests.
  void cancel(Request& req);

  void wait(Request& req);
  void waitall(std::span<Request> reqs);

  /// Blocking conveniences.
  void send(int dest, int tag, std::span<const std::byte> data);
  void recv(int source, int tag, std::span<std::byte> buffer);

  void barrier();

  /// Sum-reduction over all ranks; every rank receives the total.
  double allreduce_sum(double local);

  /// Gather one value from every rank, in rank order, on every rank.
  std::vector<double> allgather(double local);

  /// Personalized all-to-all exchange of byte buffers: element d of the
  /// result is what rank d sent to this rank. send[rank()] is returned
  /// verbatim (self-message).
  std::vector<std::vector<std::byte>> alltoall(
      const std::vector<std::vector<std::byte>>& send);

  // ---- typed wrappers ----------------------------------------------------

  template <class T>
  Request isend_t(int dest, int tag, std::span<const T> data) {
    return isend(dest, tag, std::as_bytes(data));
  }
  template <class T>
  Request irecv_t(int source, int tag, std::span<T> buffer) {
    return irecv(source, tag, std::as_writable_bytes(buffer));
  }
  template <class T>
  Request send_init_t(int dest, int tag, std::span<const T> data) {
    return send_init(dest, tag, std::as_bytes(data));
  }
  template <class T>
  Request recv_init_t(int source, int tag, std::span<T> buffer) {
    return recv_init(source, tag, std::as_writable_bytes(buffer));
  }
  template <class T>
  void send_t(int dest, int tag, std::span<const T> data) {
    send(dest, tag, std::as_bytes(data));
  }
  template <class T>
  void recv_t(int source, int tag, std::span<T> buffer) {
    recv(source, tag, std::as_writable_bytes(buffer));
  }
  template <class T>
  std::vector<std::vector<T>> alltoall_t(
      const std::vector<std::vector<T>>& send) {
    std::vector<std::vector<std::byte>> raw(send.size());
    for (std::size_t d = 0; d < send.size(); ++d) {
      raw[d].resize(send[d].size() * sizeof(T));
      std::memcpy(raw[d].data(), send[d].data(), raw[d].size());
    }
    const auto got = alltoall(raw);
    std::vector<std::vector<T>> out(got.size());
    for (std::size_t s = 0; s < got.size(); ++s) {
      SPMVM_REQUIRE(got[s].size() % sizeof(T) == 0,
                    "alltoall payload size not a multiple of element size");
      out[s].resize(got[s].size() / sizeof(T));
      std::memcpy(out[s].data(), got[s].data(), got[s].size());
    }
    return out;
  }

 private:
  friend class Runtime;
  Comm(int rank, std::shared_ptr<detail::State> state)
      : rank_(rank), state_(std::move(state)) {}

  /// Send-side delivery: rendezvous into a posted receive when one
  /// matches, eager mailbox copy otherwise.
  void deliver(int dest, int tag, std::span<const std::byte> data);
  /// Receive-side posting: drain a queued eager message or register the
  /// buffer for rendezvous delivery.
  void post_recv(Request& req);

  int rank_;
  std::shared_ptr<detail::State> state_;
};

/// Launches N ranks as threads and blocks until all return. The first
/// exception thrown by any rank is rethrown on the caller after joining.
class Runtime {
 public:
  static void run(int n_ranks, const std::function<void(Comm&)>& rank_fn);
};

}  // namespace spmvm::msg
