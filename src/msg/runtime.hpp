// In-process message-passing runtime.
//
// Substitute for MPI on the Dirac cluster (DESIGN.md §2): ranks run as
// threads of one process and exchange copies of byte buffers through
// per-rank mailboxes, with MPI-like nonblocking semantics (isend/irecv +
// wait/waitall, tag and source matching), a barrier, and the collectives
// the distributed spMVM needs. Functional behaviour only — wall-clock
// performance of a *cluster* is produced by dist/cluster_model.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace spmvm::msg {

namespace detail {
struct State;
}

/// Handle for a pending nonblocking operation.
class Request {
 public:
  Request() = default;

 private:
  friend class Comm;
  enum class Kind { none, send, recv };
  Kind kind_ = Kind::none;
  int peer_ = -1;
  int tag_ = -1;
  std::span<std::byte> buffer_{};
  bool done_ = false;
};

/// Per-rank communicator handed to the rank function by Runtime::run.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Buffered nonblocking send: the data is copied into the destination
  /// mailbox immediately; the request completes at once (eager protocol).
  Request isend(int dest, int tag, std::span<const std::byte> data);

  /// Nonblocking receive of exactly buffer.size() bytes from (source, tag).
  Request irecv(int source, int tag, std::span<std::byte> buffer);

  void wait(Request& req);
  void waitall(std::span<Request> reqs);

  /// Blocking conveniences.
  void send(int dest, int tag, std::span<const std::byte> data);
  void recv(int source, int tag, std::span<std::byte> buffer);

  void barrier();

  /// Sum-reduction over all ranks; every rank receives the total.
  double allreduce_sum(double local);

  /// Gather one value from every rank, in rank order, on every rank.
  std::vector<double> allgather(double local);

  /// Personalized all-to-all exchange of byte buffers: element d of the
  /// result is what rank d sent to this rank. send[rank()] is returned
  /// verbatim (self-message).
  std::vector<std::vector<std::byte>> alltoall(
      const std::vector<std::vector<std::byte>>& send);

  // ---- typed wrappers ----------------------------------------------------

  template <class T>
  Request isend_t(int dest, int tag, std::span<const T> data) {
    return isend(dest, tag, std::as_bytes(data));
  }
  template <class T>
  Request irecv_t(int source, int tag, std::span<T> buffer) {
    return irecv(source, tag, std::as_writable_bytes(buffer));
  }
  template <class T>
  void send_t(int dest, int tag, std::span<const T> data) {
    send(dest, tag, std::as_bytes(data));
  }
  template <class T>
  void recv_t(int source, int tag, std::span<T> buffer) {
    recv(source, tag, std::as_writable_bytes(buffer));
  }
  template <class T>
  std::vector<std::vector<T>> alltoall_t(
      const std::vector<std::vector<T>>& send) {
    std::vector<std::vector<std::byte>> raw(send.size());
    for (std::size_t d = 0; d < send.size(); ++d) {
      raw[d].resize(send[d].size() * sizeof(T));
      std::memcpy(raw[d].data(), send[d].data(), raw[d].size());
    }
    const auto got = alltoall(raw);
    std::vector<std::vector<T>> out(got.size());
    for (std::size_t s = 0; s < got.size(); ++s) {
      SPMVM_REQUIRE(got[s].size() % sizeof(T) == 0,
                    "alltoall payload size not a multiple of element size");
      out[s].resize(got[s].size() / sizeof(T));
      std::memcpy(out[s].data(), got[s].data(), got[s].size());
    }
    return out;
  }

 private:
  friend class Runtime;
  Comm(int rank, std::shared_ptr<detail::State> state)
      : rank_(rank), state_(std::move(state)) {}
  int rank_;
  std::shared_ptr<detail::State> state_;
};

/// Launches N ranks as threads and blocks until all return. The first
/// exception thrown by any rank is rethrown on the caller after joining.
class Runtime {
 public:
  static void run(int n_ranks, const std::function<void(Comm&)>& rank_fn);
};

}  // namespace spmvm::msg
