#include "obs/attribution.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <sstream>

#include "util/ascii.hpp"

namespace spmvm::obs {

namespace {

bool is_iteration_span(const TraceEvent& e) {
  return e.name != nullptr &&
         std::strncmp(e.name, "dist/plan_", 10) == 0;
}

/// Phase of a span, or -1 when the span is not a comm-plan phase.
int phase_of(const TraceEvent& e) {
  if (e.name == nullptr) return -1;
  struct NamePhase {
    const char* name;
    CommPhase phase;
  };
  static constexpr NamePhase kMap[] = {
      {"comm/plan_gather", CommPhase::gather},
      {"comm/plan_sends", CommPhase::post},
      {"comm/plan_waitall", CommPhase::wait},
      {"kernel/local", CommPhase::local},
      {"kernel/nonlocal", CommPhase::nonlocal},
      {"comm/plan_repost", CommPhase::repost},
  };
  for (const auto& m : kMap)
    if (std::strcmp(e.name, m.name) == 0) return static_cast<int>(m.phase);
  return -1;
}

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

double arg_value(const TraceEvent& e, const char* key, double fallback) {
  for (int i = 0; i < e.n_args; ++i)
    if (e.arg_name[i] != nullptr && std::strcmp(e.arg_name[i], key) == 0)
      return e.arg_value[i];
  return fallback;
}

}  // namespace

const char* to_string(CommPhase p) {
  switch (p) {
    case CommPhase::gather: return "gather";
    case CommPhase::post: return "post";
    case CommPhase::wait: return "wait";
    case CommPhase::local: return "local";
    case CommPhase::nonlocal: return "nonlocal";
    case CommPhase::repost: return "repost";
  }
  return "?";
}

double AttributionReport::overlap_pct() const {
  double wall = 0.0, hidden = 0.0;
  for (const auto& r : ranks) {
    wall += r.wall_s;
    hidden += r.overlap_s;
  }
  return wall > 0.0 ? 100.0 * hidden / wall : 0.0;
}

std::string AttributionReport::render() const {
  std::ostringstream os;
  if (empty()) {
    os << "(no comm-plan iterations in trace)\n";
    return os.str();
  }
  AsciiTable phase_table(
      {"phase", "min [us]", "median [us]", "max [us]", "total [us]"});
  for (const auto& p : phases)
    phase_table.add_row({to_string(p.phase), fmt(p.min_s * 1e6, 1),
                         fmt(p.median_s * 1e6, 1), fmt(p.max_s * 1e6, 1),
                         fmt(p.total_s * 1e6, 1)});
  os << "phase spread across ranks (per-rank totals over the window):\n"
     << phase_table.render();

  AsciiTable rank_table({"rank", "iters", "wall [us]", "phase sum [us]",
                         "hidden [us]", "overlap %"});
  for (const auto& r : ranks)
    rank_table.add_row(
        {r.rank < 0 ? std::string("-") : std::to_string(r.rank),
         std::to_string(r.iterations), fmt(r.wall_s * 1e6, 1),
         fmt(r.phase_sum_s * 1e6, 1), fmt(r.overlap_s * 1e6, 1),
         fmt(r.overlap_pct(), 1)});
  os << "per-rank attribution:\n" << rank_table.render();

  if (!peers.empty()) {
    AsciiTable peer_table({"edge", "messages", "bytes", "GB/s"});
    for (const auto& p : peers)
      peer_table.add_row({std::to_string(p.rank) + " -> " +
                              std::to_string(p.peer),
                          std::to_string(p.messages),
                          fmt_count(static_cast<long long>(p.bytes)),
                          fmt(p.gbytes_per_s(), 2)});
    os << "per-peer message bandwidth (msg/send spans):\n"
       << peer_table.render();
  }
  return os.str();
}

std::vector<std::pair<std::string, double>> AttributionReport::counters()
    const {
  std::vector<std::pair<std::string, double>> out;
  if (empty()) return out;
  std::uint64_t iters = 0;
  std::vector<double> walls;
  for (const auto& r : ranks) {
    iters += r.iterations;
    walls.push_back(r.wall_s);
  }
  for (const auto& p : phases)
    out.emplace_back(std::string(to_string(p.phase)) + "_s", p.median_s);
  out.emplace_back("wall_s", median(std::move(walls)));
  out.emplace_back("overlap_pct", overlap_pct());
  out.emplace_back("ranks", static_cast<double>(ranks.size()));
  out.emplace_back("iterations", static_cast<double>(iters));
  return out;
}

AttributionReport attribute_comm_phases(
    const std::vector<TraceEvent>& events) {
  std::map<int, RankPhases> by_rank;
  std::map<std::pair<int, int>, PeerRate> by_edge;
  for (const auto& e : events) {
    if (is_iteration_span(e)) {
      RankPhases& r = by_rank[e.rank];
      r.rank = e.rank;
      ++r.iterations;
      r.wall_s += e.seconds();
      continue;
    }
    const int phase = phase_of(e);
    if (phase >= 0) {
      RankPhases& r = by_rank[e.rank];
      r.rank = e.rank;
      r.phase_s[phase] += e.seconds();
      continue;
    }
    if (e.name != nullptr && std::strcmp(e.name, "msg/send") == 0) {
      const int peer = static_cast<int>(arg_value(e, "peer", -1.0));
      PeerRate& p = by_edge[{e.rank, peer}];
      p.rank = e.rank;
      p.peer = peer;
      p.bytes += e.bytes;
      p.seconds += e.seconds();
      ++p.messages;
    }
  }
  // Task mode records its post/wait phases on the comm thread, which
  // shares the rank lane with its owner — the per-rank grouping above
  // already folds them together. Ranks whose lane saw phases but no
  // iteration span (a clipped window) are kept: wall 0, overlap 0.
  AttributionReport report;
  for (auto& [rank, r] : by_rank) {
    for (int p = 0; p < kNumCommPhases; ++p) r.phase_sum_s += r.phase_s[p];
    r.overlap_s = std::max(0.0, r.phase_sum_s - r.wall_s);
    report.ranks.push_back(r);
  }
  for (int p = 0; p < kNumCommPhases; ++p) {
    PhaseSpread s;
    s.phase = static_cast<CommPhase>(p);
    std::vector<double> totals;
    for (const auto& r : report.ranks) {
      totals.push_back(r.phase_s[p]);
      s.total_s += r.phase_s[p];
    }
    s.min_s = totals.empty()
                  ? 0.0
                  : *std::min_element(totals.begin(), totals.end());
    s.max_s = totals.empty()
                  ? 0.0
                  : *std::max_element(totals.begin(), totals.end());
    s.median_s = median(std::move(totals));
    report.phases.push_back(s);
  }
  for (const auto& [edge, p] : by_edge) report.peers.push_back(p);
  return report;
}

}  // namespace spmvm::obs
