// Per-iteration communication-phase attribution (DESIGN.md §11).
//
// The paper's scalability argument (Figs. 4/5) is about *where* an
// iteration's time goes on every rank — gather, send posting, receive
// wait, local kernel, non-local kernel — and how much of the
// communication is hidden under compute. This module turns a recorded
// multi-rank trace (dist/CommPlan phase spans + msg flow spans, see
// obs/trace) into exactly that answer: per-rank phase totals, a
// min/median/max table across ranks, an overlap-efficiency percentage,
// and effective bytes/s per peer — so "which phase of which rank
// stalled" is readable from one artifact instead of N disjoint logs.
//
// Attribution is derived purely from spans: it costs nothing while
// tracing is off, and the phase sums are checked against the measured
// iteration wall time in test_dist_trace.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.hpp"

namespace spmvm::obs {

/// The comm-plan phases recognized by the attributor, in execution
/// order. "post" covers start_sends, "wait" the receive waitall,
/// "repost" the end-of-iteration receive re-arm.
enum class CommPhase { gather, post, wait, local, nonlocal, repost };
inline constexpr int kNumCommPhases = 6;
const char* to_string(CommPhase p);

/// One rank's totals over the traced window.
struct RankPhases {
  int rank = -1;
  std::uint64_t iterations = 0;  // number of dist/plan_* spans
  double wall_s = 0.0;           // sum of iteration span durations
  double phase_s[kNumCommPhases] = {};
  double phase_sum_s = 0.0;      // sum over phase_s
  /// Time two or more phases ran concurrently (task-mode overlap):
  /// max(0, phase_sum_s - wall_s).
  double overlap_s = 0.0;
  double overlap_pct() const {
    return wall_s > 0.0 ? 100.0 * overlap_s / wall_s : 0.0;
  }
};

/// Cross-rank spread of one phase (over per-rank totals).
struct PhaseSpread {
  CommPhase phase = CommPhase::gather;
  double min_s = 0.0;
  double median_s = 0.0;
  double max_s = 0.0;
  double total_s = 0.0;  // summed over ranks
};

/// Effective message bandwidth of one (sender rank → peer) edge,
/// accumulated from msg/send spans.
struct PeerRate {
  int rank = -1;
  int peer = -1;
  std::uint64_t bytes = 0;
  double seconds = 0.0;
  std::uint64_t messages = 0;
  double gbytes_per_s() const {
    return seconds > 0.0 ? static_cast<double>(bytes) / seconds * 1e-9 : 0.0;
  }
};

struct AttributionReport {
  std::vector<RankPhases> ranks;    // ordered by rank
  std::vector<PhaseSpread> phases;  // one row per phase, execution order
  std::vector<PeerRate> peers;      // ordered by (rank, peer)

  bool empty() const { return ranks.empty(); }
  /// Aggregate overlap efficiency: hidden time / wall, summed over ranks.
  double overlap_pct() const;

  /// Human tables: per-phase min/median/max across ranks with overlap
  /// efficiency per rank, plus the per-peer bandwidth table.
  std::string render() const;

  /// Flat counters for a bench.json entry ("gather_s" = median across
  /// ranks per phase, "wall_s", "overlap_pct", "ranks", "iterations").
  std::vector<std::pair<std::string, double>> counters() const;
};

/// Attribute a recorded trace window. Considers dist/plan_* iteration
/// spans, the comm/plan_* + kernel/{local,nonlocal} phase spans, and
/// msg/send spans; everything else (nested kernels, pool workers,
/// solver spans) is ignored. Spans are grouped by their rank stamp
/// (obs::set_rank); a window mixing plan iterations with unrelated
/// traffic should be clipped by the caller (clear_trace before the
/// loop).
AttributionReport attribute_comm_phases(const std::vector<TraceEvent>& events);

}  // namespace spmvm::obs
