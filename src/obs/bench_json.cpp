#include "obs/bench_json.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/stats.hpp"

namespace spmvm::obs {

namespace {

std::string esc(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
      continue;
    }
    out += c;
  }
  return out;
}

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

BenchEntry summarize_samples(
    const std::string& name, std::span<const double> seconds,
    std::vector<std::pair<std::string, double>> counters) {
  BenchEntry e;
  e.name = name;
  e.repetitions = static_cast<int>(seconds.size());
  e.counters = std::move(counters);
  if (seconds.empty()) return e;
  std::vector<double> sorted(seconds.begin(), seconds.end());
  std::sort(sorted.begin(), sorted.end());
  e.mean_seconds = mean_of(seconds);
  e.median_seconds = percentile_sorted(std::span<const double>(sorted), 0.5);
  e.min_seconds = sorted.front();
  e.max_seconds = sorted.back();
  e.stddev_seconds = stddev_of(seconds);
  return e;
}

BenchEntry entry_from_stats(
    const std::string& name, const MeasureStats& s,
    std::vector<std::pair<std::string, double>> counters) {
  BenchEntry e;
  e.name = name;
  e.repetitions = s.reps;
  e.mean_seconds = s.mean_seconds;
  e.median_seconds = s.median_seconds;
  e.min_seconds = s.min_seconds;
  e.max_seconds = s.max_seconds;
  e.stddev_seconds = s.stddev_seconds;
  e.counters = std::move(counters);
  return e;
}

const BenchEntry* BenchReport::find(const std::string& name) const {
  for (const BenchEntry& e : entries)
    if (e.name == name) return &e;
  return nullptr;
}

std::string BenchReport::to_json() const {
  std::ostringstream os;
  os << "{\"schema_version\":" << schema_version << ",\"binary\":\""
     << esc(binary) << "\",\"metadata\":{";
  for (std::size_t i = 0; i < metadata.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << esc(metadata[i].first) << "\":\"" << esc(metadata[i].second)
       << "\"";
  }
  os << "},\"benchmarks\":[";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const BenchEntry& e = entries[i];
    if (i > 0) os << ",";
    os << "{\"name\":\"" << esc(e.name) << "\",\"repetitions\":"
       << e.repetitions << ",\"mean_seconds\":" << num(e.mean_seconds)
       << ",\"median_seconds\":" << num(e.median_seconds)
       << ",\"min_seconds\":" << num(e.min_seconds)
       << ",\"max_seconds\":" << num(e.max_seconds)
       << ",\"stddev_seconds\":" << num(e.stddev_seconds) << ",\"counters\":{";
    for (std::size_t c = 0; c < e.counters.size(); ++c) {
      if (c > 0) os << ",";
      os << "\"" << esc(e.counters[c].first)
         << "\":" << num(e.counters[c].second);
    }
    os << "}}";
  }
  os << "]}";
  return os.str();
}

bool BenchReport::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json() << "\n";
  return static_cast<bool>(out);
}

}  // namespace spmvm::obs
