// Machine-readable benchmark reports ("bench.json"): run metadata plus
// per-benchmark medians/min/max/stddev and named counters, so BENCH_*.json
// trajectories can be recorded per PR and diffed by tooling instead of
// scraping console tables. Used by bench_kernels and bench_fig5_scaling
// via their --json <path> flag.
#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "util/timer.hpp"

namespace spmvm::obs {

/// Version of the bench.json layout. Bumped whenever a field is removed
/// or changes meaning; obs/regress refuses to compare reports across
/// versions. Version 1 added "schema_version" and "mean_seconds" (files
/// from before the field existed parse as version 0).
inline constexpr int kBenchSchemaVersion = 1;

/// Timing summary + counters of one benchmark case.
struct BenchEntry {
  std::string name;
  int repetitions = 0;
  double mean_seconds = 0.0;
  double median_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
  double stddev_seconds = 0.0;
  std::vector<std::pair<std::string, double>> counters;  // "GB/s", ...
};

/// Summarize raw per-repetition samples (seconds) into an entry.
BenchEntry summarize_samples(const std::string& name,
                             std::span<const double> seconds,
                             std::vector<std::pair<std::string, double>>
                                 counters = {});

/// Build an entry from a measure_seconds_stats() run.
BenchEntry entry_from_stats(const std::string& name, const MeasureStats& s,
                            std::vector<std::pair<std::string, double>>
                                counters = {});

/// One benchmark run: metadata + entries, serialized as a JSON object
/// {"schema_version": N, "binary": ..., "metadata": {...},
///  "benchmarks": [...]}.
struct BenchReport {
  int schema_version = kBenchSchemaVersion;
  std::string binary;
  std::vector<std::pair<std::string, std::string>> metadata;
  std::vector<BenchEntry> entries;

  /// First entry with the given name, or nullptr.
  const BenchEntry* find(const std::string& name) const;

  std::string to_json() const;
  /// Write to `path`; false on I/O failure.
  bool write(const std::string& path) const;
};

}  // namespace spmvm::obs
