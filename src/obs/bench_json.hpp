// Machine-readable benchmark reports ("bench.json"): run metadata plus
// per-benchmark medians/min/max/stddev and named counters, so BENCH_*.json
// trajectories can be recorded per PR and diffed by tooling instead of
// scraping console tables. Used by bench_kernels and bench_fig5_scaling
// via their --json <path> flag.
#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

namespace spmvm::obs {

/// Timing summary + counters of one benchmark case.
struct BenchEntry {
  std::string name;
  int repetitions = 0;
  double median_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
  double stddev_seconds = 0.0;
  std::vector<std::pair<std::string, double>> counters;  // "GB/s", ...
};

/// Summarize raw per-repetition samples (seconds) into an entry.
BenchEntry summarize_samples(const std::string& name,
                             std::span<const double> seconds,
                             std::vector<std::pair<std::string, double>>
                                 counters = {});

/// One benchmark run: metadata + entries, serialized as a JSON object
/// {"binary": ..., "metadata": {...}, "benchmarks": [...]}.
struct BenchReport {
  std::string binary;
  std::vector<std::pair<std::string, std::string>> metadata;
  std::vector<BenchEntry> entries;

  std::string to_json() const;
  /// Write to `path`; false on I/O failure.
  bool write(const std::string& path) const;
};

}  // namespace spmvm::obs
