#include "obs/ledger.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string_view>
#include <thread>
#include <tuple>

#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "util/ascii.hpp"

namespace spmvm::obs {

namespace {

constexpr std::size_t kResidualCap = 65536;

// Same convention as SPMVM_TRACE: set and not "0" means on.
bool env_on(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' && std::string_view(v) != "0";
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

/// All mutable ledger state under one mutex. Leaked on purpose so
/// instrumented sites in static destructors stay safe.
struct LedgerState {
  std::mutex m;
  RooflineSpec spec = RooflineSpec::from_env();
  AnomalyOptions anomaly;
  std::map<std::tuple<int, std::string, std::string, int>, EffRecord>
      records;
  std::vector<ResidualPoint> residuals;
};

LedgerState& state() {
  static LedgerState* s = new LedgerState;
  return *s;
}

std::atomic<bool>& ledger_flag() {
  static std::atomic<bool>* f =
      new std::atomic<bool>(env_on("SPMVM_ROOFLINE"));
  return *f;
}

// ---- periodic reporter ----------------------------------------------------

struct Reporter {
  std::mutex m;
  std::condition_variable cv;
  std::thread th;
  bool stop = false;
  bool running = false;
};

Reporter& reporter() {
  static Reporter* r = new Reporter;
  return *r;
}

void emit_snapshot(const std::string& path) {
  publish_roofline_gauges();
  if (path.empty()) {
    const std::string text = roofline_table();
    std::fputs(text.c_str(), stderr);
    return;
  }
  std::ofstream out(path, std::ios::trunc);
  if (out) out << roofline_json();
}

void maybe_autostart_reporter() {
  const double interval = env_double("SPMVM_REPORT_INTERVAL", 0.0);
  if (interval <= 0.0) return;
  const char* p = std::getenv("SPMVM_REPORT_PATH");
  start_reporter(interval, p != nullptr ? p : "");
}

// ---- anomaly detection ----------------------------------------------------

std::string record_labels(const EffRecord& r) {
  std::string labels = "lane=";
  labels += to_string(r.lane);
  labels += ",format=";
  labels += r.format;
  labels += ",phase=";
  labels += r.phase;
  if (r.rank >= 0) {
    labels += ",rank=";
    labels += std::to_string(r.rank);
  }
  return labels;
}

/// Judge one sample's efficiency against the record's rolling baseline
/// and update the baseline (obs/regress noise window: one-sided, an
/// efficiency *drop* beyond max(rel_tol·mean, k·stddev) is anomalous).
/// Anomalous samples are kept out of the baseline and re-firing is
/// suppressed until the record recovers, so a sustained slowdown fires
/// exactly once. Called under the ledger mutex.
void observe_efficiency(EffRecord& r, double eff,
                        const AnomalyOptions& opt) {
  if (r.eff_n >= static_cast<std::uint64_t>(opt.warmup)) {
    const double allowed =
        std::max(opt.rel_tol * std::abs(r.eff_mean),
                 opt.stddev_k * r.eff_stddev());
    if (r.eff_mean - eff > allowed) {
      if (!r.in_anomaly) {
        r.in_anomaly = true;
        ++r.anomalies;
        set_metric_help("anomaly.total",
                        "Efficiency drops beyond the rolling-baseline noise "
                        "window, across all ledger records");
        set_metric_help("anomaly.fired",
                        "Efficiency drops beyond the rolling-baseline noise "
                        "window, per lane/format/phase");
        counter("anomaly.total").add();
        counter("anomaly.fired{" + record_labels(r) + "}").add();
        // Zero-length span event marking the drop in the trace.
        SPMVM_TRACE_SPAN_NAMED(span, "obs/anomaly");
        span.set_arg("efficiency", eff);
        span.set_arg("baseline", r.eff_mean);
      }
      return;  // do not fold the anomalous sample into the baseline
    }
    r.in_anomaly = false;
  }
  ++r.eff_n;
  const double d = eff - r.eff_mean;
  r.eff_mean += d / static_cast<double>(r.eff_n);
  r.eff_m2 += d * (eff - r.eff_mean);
}

// ---- JSON rendering -------------------------------------------------------

std::string jnum(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string jstr(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out + "\"";
}

}  // namespace

// ---- enable / configuration ----------------------------------------------

bool ledger_enabled() {
  // First consultation also honors SPMVM_REPORT_INTERVAL (live
  // snapshots want the reporter running before any sample lands).
  static const bool autostarted = [] {
    maybe_autostart_reporter();
    return true;
  }();
  (void)autostarted;
  return ledger_flag().load(std::memory_order_relaxed);
}

void set_ledger_enabled(bool on) {
  ledger_flag().store(on, std::memory_order_relaxed);
}

RooflineSpec roofline_spec() {
  LedgerState& s = state();
  std::lock_guard<std::mutex> lk(s.m);
  return s.spec;
}

void set_roofline_spec(const RooflineSpec& spec) {
  LedgerState& s = state();
  std::lock_guard<std::mutex> lk(s.m);
  s.spec = spec;
}

AnomalyOptions anomaly_options() {
  LedgerState& s = state();
  std::lock_guard<std::mutex> lk(s.m);
  return s.anomaly;
}

void set_anomaly_options(const AnomalyOptions& opt) {
  LedgerState& s = state();
  std::lock_guard<std::mutex> lk(s.m);
  s.anomaly = opt;
}

// ---- EffRecord derived quantities -----------------------------------------

double EffRecord::achieved_gbs() const {
  return seconds > 0.0 ? bytes / seconds / 1e9 : 0.0;
}

double EffRecord::achieved_gflops() const {
  return seconds > 0.0 ? flops / seconds / 1e9 : 0.0;
}

double EffRecord::predicted_gflops() const {
  return predicted_s > 0.0 ? flops / predicted_s / 1e9 : 0.0;
}

double EffRecord::efficiency() const {
  return (seconds > 0.0 && predicted_s > 0.0) ? predicted_s / seconds : 0.0;
}

double EffRecord::mean_alpha() const {
  return calls > 0 ? alpha_sum / static_cast<double>(calls) : 0.0;
}

double EffRecord::eff_stddev() const {
  return eff_n > 1 ? std::sqrt(eff_m2 / static_cast<double>(eff_n - 1))
                   : 0.0;
}

std::string EffRecord::key() const {
  std::string k = to_string(lane);
  k += "/";
  k += format;
  k += "/";
  k += phase;
  if (rank >= 0) {
    k += "@";
    k += std::to_string(rank);
  }
  return k;
}

// ---- recording ------------------------------------------------------------

void ledger_record(RoofLane lane, const char* format, const char* phase,
                   double seconds, const WorkDesc& work) {
  if (!ledger_enabled()) return;
  LedgerState& s = state();
  std::lock_guard<std::mutex> lk(s.m);
  const int rank = current_rank();
  EffRecord& r = s.records[{static_cast<int>(lane),
                            format != nullptr ? format : "?",
                            phase != nullptr ? phase : "?", rank}];
  if (r.calls == 0) {
    r.lane = lane;
    r.format = format != nullptr ? format : "?";
    r.phase = phase != nullptr ? phase : "?";
    r.rank = rank;
  }
  const double pred = predicted_seconds(s.spec, lane, work);
  ++r.calls;
  r.seconds += seconds;
  r.bytes += static_cast<double>(work.bytes);
  r.flops += static_cast<double>(work.flops);
  r.nnz += static_cast<double>(work.nnz);
  r.alpha_sum += work.alpha;
  r.predicted_s += pred;
  if (pred > 0.0 && seconds > 0.0)
    observe_efficiency(r, pred / seconds, s.anomaly);
}

void ledger_residual(const char* solver, std::uint64_t iteration,
                     double residual) {
  if (!ledger_enabled()) return;
  LedgerState& s = state();
  std::lock_guard<std::mutex> lk(s.m);
  if (s.residuals.size() >= kResidualCap) {
    counter("ledger.residual_dropped").add();
    return;
  }
  ResidualPoint p;
  p.solver = solver != nullptr ? solver : "?";
  p.iteration = iteration;
  p.residual = residual;
  p.t_s = static_cast<double>(now_ns()) * 1e-9;
  s.residuals.push_back(std::move(p));
}

std::vector<EffRecord> ledger_snapshot() {
  LedgerState& s = state();
  std::lock_guard<std::mutex> lk(s.m);
  std::vector<EffRecord> out;
  out.reserve(s.records.size());
  for (const auto& [key, r] : s.records) out.push_back(r);
  return out;
}

std::vector<ResidualPoint> residual_series() {
  LedgerState& s = state();
  std::lock_guard<std::mutex> lk(s.m);
  return s.residuals;
}

void reset_ledger() {
  LedgerState& s = state();
  std::lock_guard<std::mutex> lk(s.m);
  s.records.clear();
  s.residuals.clear();
}

// ---- exporters ------------------------------------------------------------

std::string roofline_table(const std::vector<EffRecord>& records) {
  std::ostringstream os;
  if (records.empty()) {
    os << "(empty roofline ledger)\n";
    return os.str();
  }
  AsciiTable t({"lane", "format", "phase", "rank", "calls", "GB/s", "GF/s",
                "model GF/s", "eff %", "alpha", "anomalies"});
  for (const EffRecord& r : records)
    t.add_row({to_string(r.lane), r.format, r.phase,
               r.rank < 0 ? std::string("-") : std::to_string(r.rank),
               std::to_string(r.calls), fmt(r.achieved_gbs(), 2),
               fmt(r.achieved_gflops(), 2), fmt(r.predicted_gflops(), 2),
               fmt(100.0 * r.efficiency(), 1),
               r.alpha_sum > 0.0 ? fmt(r.mean_alpha(), 4) : std::string("-"),
               std::to_string(r.anomalies)});
  os << t.render();
  return os.str();
}

std::string roofline_table() { return roofline_table(ledger_snapshot()); }

std::string roofline_json() {
  const std::vector<EffRecord> records = ledger_snapshot();
  const std::vector<ResidualPoint> residuals = residual_series();
  std::ostringstream os;
  os << "{\n  \"schema_version\": " << kRooflineSchemaVersion << ",\n";
  os << "  \"metadata\": {";
  bool first = true;
  for (const auto& [k, v] : machine_fingerprint()) {
    os << (first ? "" : ", ") << jstr(k) << ": " << jstr(v);
    first = false;
  }
  os << "},\n  \"records\": [";
  first = true;
  for (const EffRecord& r : records) {
    os << (first ? "\n" : ",\n") << "    {\"lane\": " << jstr(to_string(r.lane))
       << ", \"format\": " << jstr(r.format)
       << ", \"phase\": " << jstr(r.phase) << ", \"rank\": " << r.rank
       << ", \"calls\": " << r.calls
       << ", \"seconds\": " << jnum(r.seconds)
       << ", \"bytes\": " << jnum(r.bytes)
       << ", \"flops\": " << jnum(r.flops) << ", \"nnz\": " << jnum(r.nnz)
       << ", \"alpha\": " << jnum(r.mean_alpha())
       << ", \"predicted_seconds\": " << jnum(r.predicted_s)
       << ", \"achieved_gbs\": " << jnum(r.achieved_gbs())
       << ", \"achieved_gflops\": " << jnum(r.achieved_gflops())
       << ", \"model_gflops\": " << jnum(r.predicted_gflops())
       << ", \"efficiency\": " << jnum(r.efficiency())
       << ", \"anomalies\": " << r.anomalies << "}";
    first = false;
  }
  os << (first ? "]" : "\n  ]") << ",\n  \"residuals\": [";
  first = true;
  for (const ResidualPoint& p : residuals) {
    os << (first ? "\n" : ",\n") << "    {\"solver\": " << jstr(p.solver)
       << ", \"iteration\": " << p.iteration
       << ", \"residual\": " << jnum(p.residual)
       << ", \"seconds\": " << jnum(p.t_s) << "}";
    first = false;
  }
  os << (first ? "]" : "\n  ]") << "\n}\n";
  return os.str();
}

void publish_roofline_gauges() {
  set_metric_help("roofline.efficiency",
                  "Achieved fraction of the model-predicted roof "
                  "(Eq. 1 code balance for kernels, link bandwidth for "
                  "transfers) per lane/format/phase");
  set_metric_help("roofline.achieved_gbs",
                  "Measured memory/link bandwidth per lane/format/phase "
                  "in GB/s");
  for (const EffRecord& r : ledger_snapshot()) {
    std::string labels = "{";
    labels += record_labels(r);
    labels += "}";
    gauge("roofline.efficiency" + labels).set(r.efficiency());
    gauge("roofline.achieved_gbs" + labels).set(r.achieved_gbs());
  }
}

// ---- periodic snapshot thread ---------------------------------------------

void start_reporter(double interval_s, const std::string& path) {
  stop_reporter();
  // The reporter thread must not outlive main(): it touches the
  // (leaked) ledger and metrics registries, but stdio teardown is not.
  static std::once_flag atexit_once;
  std::call_once(atexit_once, [] { std::atexit(stop_reporter); });
  Reporter& r = reporter();
  std::lock_guard<std::mutex> lk(r.m);
  r.stop = false;
  r.running = true;
  r.th = std::thread([interval_s, path] {
    set_thread_name("roofline reporter");
    Reporter& rep = reporter();
    std::unique_lock<std::mutex> lk(rep.m);
    while (!rep.stop) {
      rep.cv.wait_for(lk, std::chrono::duration<double>(interval_s),
                      [&] { return rep.stop; });
      lk.unlock();
      // Emit on stop too: a run shorter than one interval still leaves
      // its final snapshot behind (stop_reporter runs at process exit).
      emit_snapshot(path);
      lk.lock();
    }
  });
}

void stop_reporter() {
  Reporter& r = reporter();
  std::thread joinable;
  {
    std::lock_guard<std::mutex> lk(r.m);
    if (!r.running) return;
    r.stop = true;
    r.running = false;
    joinable = std::move(r.th);
  }
  r.cv.notify_all();
  if (joinable.joinable()) joinable.join();
}

}  // namespace spmvm::obs
