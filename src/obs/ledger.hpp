// Roofline efficiency ledger (DESIGN.md §12).
//
// The trace layer (obs/trace) answers "how long did it take?"; the
// ledger answers "how far from the roofline was it?". Instrumented
// sites open a LedgerScope carrying a WorkDesc (obs/roofline); on close
// the sample folds into a per-{lane, format, phase, rank} efficiency
// record: achieved GB/s and GF/s against the model prediction — Eq. 1
// at measured α for kernels, ClusterSpec/PCIe link limits for
// dist/CommPlan traffic.
//
// Off by default: a disabled LedgerScope is one relaxed atomic load and
// records nothing. Enable with SPMVM_ROOFLINE=1 or set_ledger_enabled.
//
// On top of the records:
//  - exporters: roofline_table() (ASCII), roofline_json()
//    (schema-versioned, fingerprinted like bench.json), and
//    publish_roofline_gauges() → `roofline.efficiency{format=,phase=}`
//    Prometheus gauges.
//  - a periodic snapshot thread (start_reporter / SPMVM_REPORT_INTERVAL)
//    emitting live ledger snapshots while a long run is in flight.
//  - an online anomaly detector reusing the obs/regress noise window:
//    each record keeps a rolling baseline (Welford) of its per-call
//    efficiency; a sample whose efficiency drops below the baseline by
//    more than max(rel_tol·mean, k·stddev) fires `anomaly.*` counters
//    and an "obs/anomaly" span event. Anomalous samples do not enter
//    the baseline and refiring is suppressed until the record recovers,
//    so a sustained slowdown fires exactly once.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/roofline.hpp"
#include "obs/trace.hpp"

namespace spmvm::obs {

/// Whether LedgerScope records samples (SPMVM_ROOFLINE env or
/// set_ledger_enabled).
bool ledger_enabled();

/// Turn the ledger on/off at runtime, overriding the environment.
void set_ledger_enabled(bool on);

/// Roofs the ledger folds predictions against. Defaults come from
/// RooflineSpec::from_env() at first use.
RooflineSpec roofline_spec();
void set_roofline_spec(const RooflineSpec& spec);

/// Online anomaly detector knobs — the same window shape as
/// obs/RegressOptions: allowed = max(rel_tol·mean, k·stddev), judged
/// one-sided (only an efficiency *drop* is an anomaly), after `warmup`
/// baseline samples.
struct AnomalyOptions {
  int warmup = 8;
  double rel_tol = 0.05;
  double stddev_k = 3.0;
};
AnomalyOptions anomaly_options();
void set_anomaly_options(const AnomalyOptions& opt);

/// One folded efficiency record: every sample with the same
/// {lane, format, phase, rank} key lands here.
struct EffRecord {
  RoofLane lane = RoofLane::host;
  std::string format;  // storage format / comm scheme / solver
  std::string phase;   // "spmv", "sends", "dot", ...
  int rank = -1;       // obs::current_rank() at record time

  std::uint64_t calls = 0;
  double seconds = 0.0;      // measured wall time, summed
  double bytes = 0.0;        // WorkDesc bytes, summed
  double flops = 0.0;
  double nnz = 0.0;
  double alpha_sum = 0.0;    // per-call α, mean_alpha() averages
  double predicted_s = 0.0;  // model lower bound, summed

  // Rolling per-call efficiency baseline (Welford) + anomaly state.
  std::uint64_t eff_n = 0;
  double eff_mean = 0.0;
  double eff_m2 = 0.0;
  bool in_anomaly = false;
  std::uint64_t anomalies = 0;

  double achieved_gbs() const;
  double achieved_gflops() const;
  double predicted_gflops() const;
  /// predicted_s / seconds ∈ (0, 1] when the model holds; 0 when the
  /// record carries no prediction.
  double efficiency() const;
  double mean_alpha() const;
  double eff_stddev() const;
  /// "lane/format/phase" or "lane/format/phase@rank".
  std::string key() const;
};

/// Fold one measured sample into the ledger (no-op while disabled).
/// `format` and `phase` must point to static storage or outlive the
/// call (they are copied into the record key on first sight).
void ledger_record(RoofLane lane, const char* format, const char* phase,
                   double seconds, const WorkDesc& work);

/// RAII sample: measures [construction, destruction) and folds it into
/// the ledger. Disabled: one atomic load, no clock reads.
class LedgerScope {
 public:
  LedgerScope(RoofLane lane, const char* format, const char* phase)
      : active_(ledger_enabled()),
        lane_(lane),
        format_(format),
        phase_(phase) {
    if (active_) t0_ns_ = now_ns();
  }
  ~LedgerScope() {
    if (active_)
      ledger_record(lane_, format_, phase_,
                    static_cast<double>(now_ns() - t0_ns_) * 1e-9, work_);
  }
  LedgerScope(const LedgerScope&) = delete;
  LedgerScope& operator=(const LedgerScope&) = delete;

  /// True when this scope will record — use to skip WorkDesc
  /// computations in hot paths.
  bool active() const { return active_; }
  void set_work(const WorkDesc& w) {
    if (active_) work_ = w;
  }

 private:
  bool active_;
  RoofLane lane_;
  const char* format_;
  const char* phase_;
  std::uint64_t t0_ns_ = 0;
  WorkDesc work_;
};

/// One point of a solver's residual-vs-wall-time trajectory.
struct ResidualPoint {
  std::string solver;
  std::uint64_t iteration = 0;
  double residual = 0.0;
  double t_s = 0.0;  // seconds since the trace epoch (obs::now_ns)
};

/// Append a residual point (no-op while the ledger is disabled). The
/// series is bounded; overflow is dropped and counted in
/// `ledger.residual_dropped`.
void ledger_residual(const char* solver, std::uint64_t iteration,
                     double residual);

/// Snapshot the ledger: records sorted by key / the residual series.
std::vector<EffRecord> ledger_snapshot();
std::vector<ResidualPoint> residual_series();

/// Drop every record and residual point (enable state and roofs kept).
void reset_ledger();

// ---- exporters ------------------------------------------------------------

inline constexpr int kRooflineSchemaVersion = 1;

/// ASCII roofline report: one row per record with achieved GB/s, GF/s,
/// the model GF/s and the efficiency percentage.
std::string roofline_table();
std::string roofline_table(const std::vector<EffRecord>& records);

/// Schema-versioned JSON document: {"schema_version", "metadata"
/// (machine fingerprint, like bench.json), "records", "residuals"}.
std::string roofline_json();

/// Publish per-record gauges into the metrics registry:
/// `roofline.efficiency{lane=,format=,phase=[,rank=]}` and
/// `roofline.achieved_gbs{...}` — the Prometheus exporter picks them up
/// on the next scrape.
void publish_roofline_gauges();

// ---- periodic snapshot thread ---------------------------------------------

/// Start (or restart) the reporter thread: every `interval_s` seconds
/// it refreshes the roofline gauges and emits a snapshot — the JSON
/// document to `path` (overwritten in place), or the ASCII table to
/// stderr when `path` is empty. Auto-started when SPMVM_REPORT_INTERVAL
/// is set (> 0 seconds; SPMVM_REPORT_PATH names the output file) the
/// first time the ledger is consulted. Stopped via stop_reporter() or
/// automatically at process exit.
void start_reporter(double interval_s, const std::string& path = "");
void stop_reporter();

}  // namespace spmvm::obs
