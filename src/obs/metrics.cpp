#include "obs/metrics.hpp"

#include <algorithm>
#include <map>
#include <memory>

namespace spmvm::obs {

namespace {

/// One sorted map per metric kind; map nodes never move, so returned
/// references are stable.
struct MetricsRegistry {
  std::mutex m;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms;
  std::map<std::string, std::string> help;
};

MetricsRegistry& metrics_registry() {
  static MetricsRegistry* r = new MetricsRegistry;  // leaked on purpose
  return *r;
}

template <class M>
M& lookup(std::map<std::string, std::unique_ptr<M>>& by_name,
          std::mutex& m, const std::string& name) {
  std::lock_guard<std::mutex> lk(m);
  auto& slot = by_name[name];
  if (!slot) slot = std::make_unique<M>();
  return *slot;
}

}  // namespace

Counter& counter(const std::string& name) {
  MetricsRegistry& r = metrics_registry();
  return lookup(r.counters, r.m, name);
}

Gauge& gauge(const std::string& name) {
  MetricsRegistry& r = metrics_registry();
  return lookup(r.gauges, r.m, name);
}

HistogramMetric& histogram(const std::string& name) {
  MetricsRegistry& r = metrics_registry();
  return lookup(r.histograms, r.m, name);
}

std::vector<MetricSample> metrics_snapshot() {
  MetricsRegistry& r = metrics_registry();
  std::lock_guard<std::mutex> lk(r.m);
  std::vector<MetricSample> out;
  for (const auto& [name, c] : r.counters)
    out.push_back({name, MetricKind::counter,
                   static_cast<double>(c->value()), Histogram()});
  for (const auto& [name, g] : r.gauges)
    out.push_back({name, MetricKind::gauge, g->value(), Histogram()});
  for (const auto& [name, h] : r.histograms) {
    MetricSample s;
    s.name = name;
    s.kind = MetricKind::histogram;
    s.hist = h->snapshot();
    s.value = static_cast<double>(s.hist.total());
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

void reset_metrics() {
  MetricsRegistry& r = metrics_registry();
  std::lock_guard<std::mutex> lk(r.m);
  for (const auto& [name, c] : r.counters) c->reset();
  for (const auto& [name, h] : r.histograms) h->reset();
}

void reset_all() {
  MetricsRegistry& r = metrics_registry();
  std::lock_guard<std::mutex> lk(r.m);
  for (const auto& [name, c] : r.counters) c->reset();
  for (const auto& [name, h] : r.histograms) h->reset();
  for (const auto& [name, g] : r.gauges) g->reset();
}

void set_metric_help(const std::string& name, const std::string& help) {
  MetricsRegistry& r = metrics_registry();
  std::lock_guard<std::mutex> lk(r.m);
  r.help[name] = help;
}

std::string metric_help(const std::string& name) {
  MetricsRegistry& r = metrics_registry();
  std::lock_guard<std::mutex> lk(r.m);
  auto it = r.help.find(name);
  if (it != r.help.end()) return it->second;
  const auto brace = name.find('{');
  if (brace != std::string::npos) {
    it = r.help.find(name.substr(0, brace));
    if (it != r.help.end()) return it->second;
  }
  return {};
}

}  // namespace spmvm::obs
