#include "obs/metrics.hpp"

#include <algorithm>
#include <map>
#include <memory>

namespace spmvm::obs {

namespace {

/// One sorted map per metric kind; map nodes never move, so returned
/// references are stable.
struct MetricsRegistry {
  std::mutex m;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> latencies;
  std::map<std::string, std::string> help;
};

MetricsRegistry& metrics_registry() {
  static MetricsRegistry* r = new MetricsRegistry;  // leaked on purpose
  return *r;
}

template <class M>
M& lookup(std::map<std::string, std::unique_ptr<M>>& by_name,
          std::mutex& m, const std::string& name) {
  std::lock_guard<std::mutex> lk(m);
  auto& slot = by_name[name];
  if (!slot) slot = std::make_unique<M>();
  return *slot;
}

/// Lock-free running min/max over a relaxed atomic double.
void atomic_min(std::atomic<double>& slot, double v) {
  double cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& slot, double v) {
  double cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

double LatencySnapshot::quantile_us(double q) const {
  if (count == 0) return 0.0;
  const double target = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (int b = 0; b < kLatencyBuckets; ++b) {
    cum += buckets[static_cast<std::size_t>(b)];
    if (static_cast<double>(cum) >= target)
      return LatencyHistogram::bucket_bound_us(b);
  }
  return LatencyHistogram::bucket_bound_us(kLatencyBuckets - 1);
}

void LatencyHistogram::observe_us(double us) {
  if (us < 0.0) us = 0.0;
  int b = 0;
  while (b < kLatencyBuckets - 1 && bucket_bound_us(b) < us) ++b;
  buckets_[static_cast<std::size_t>(b)].fetch_add(1,
                                                  std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // sum via CAS add: a CAS loop keeps the requirement at C++17 atomics
  // (atomic<double>::fetch_add is C++20).
  double cur = sum_us_.load(std::memory_order_relaxed);
  while (!sum_us_.compare_exchange_weak(cur, cur + us,
                                        std::memory_order_relaxed)) {
  }
  atomic_min(min_us_, us);
  atomic_max(max_us_, us);
}

LatencySnapshot LatencyHistogram::snapshot() const {
  LatencySnapshot s;
  for (int b = 0; b < kLatencyBuckets; ++b)
    s.buckets[static_cast<std::size_t>(b)] =
        buckets_[static_cast<std::size_t>(b)].load(std::memory_order_relaxed);
  s.count = count_.load(std::memory_order_relaxed);
  s.sum_us = sum_us_.load(std::memory_order_relaxed);
  const double mn = min_us_.load(std::memory_order_relaxed);
  s.min_us = s.count == 0 || mn == kNoMin ? 0.0 : mn;
  s.max_us = max_us_.load(std::memory_order_relaxed);
  return s;
}

void LatencyHistogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_us_.store(0.0, std::memory_order_relaxed);
  min_us_.store(kNoMin, std::memory_order_relaxed);
  max_us_.store(0.0, std::memory_order_relaxed);
}

Counter& counter(const std::string& name) {
  MetricsRegistry& r = metrics_registry();
  return lookup(r.counters, r.m, name);
}

Gauge& gauge(const std::string& name) {
  MetricsRegistry& r = metrics_registry();
  return lookup(r.gauges, r.m, name);
}

HistogramMetric& histogram(const std::string& name) {
  MetricsRegistry& r = metrics_registry();
  return lookup(r.histograms, r.m, name);
}

LatencyHistogram& latency_histogram(const std::string& name) {
  MetricsRegistry& r = metrics_registry();
  return lookup(r.latencies, r.m, name);
}

std::vector<MetricSample> metrics_snapshot() {
  MetricsRegistry& r = metrics_registry();
  std::lock_guard<std::mutex> lk(r.m);
  std::vector<MetricSample> out;
  for (const auto& [name, c] : r.counters)
    out.push_back({name, MetricKind::counter,
                   static_cast<double>(c->value()), Histogram(), {}});
  for (const auto& [name, g] : r.gauges)
    out.push_back({name, MetricKind::gauge, g->value(), Histogram(), {}});
  for (const auto& [name, h] : r.histograms) {
    MetricSample s;
    s.name = name;
    s.kind = MetricKind::histogram;
    s.hist = h->snapshot();
    s.value = static_cast<double>(s.hist.total());
    out.push_back(std::move(s));
  }
  for (const auto& [name, l] : r.latencies) {
    MetricSample s;
    s.name = name;
    s.kind = MetricKind::latency;
    s.lat = l->snapshot();
    s.value = static_cast<double>(s.lat.count);
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

void reset_metrics() {
  MetricsRegistry& r = metrics_registry();
  std::lock_guard<std::mutex> lk(r.m);
  for (const auto& [name, c] : r.counters) c->reset();
  for (const auto& [name, h] : r.histograms) h->reset();
  for (const auto& [name, l] : r.latencies) l->reset();
}

void reset_all() {
  MetricsRegistry& r = metrics_registry();
  std::lock_guard<std::mutex> lk(r.m);
  for (const auto& [name, c] : r.counters) c->reset();
  for (const auto& [name, h] : r.histograms) h->reset();
  for (const auto& [name, l] : r.latencies) l->reset();
  for (const auto& [name, g] : r.gauges) g->reset();
}

void set_metric_help(const std::string& name, const std::string& help) {
  MetricsRegistry& r = metrics_registry();
  std::lock_guard<std::mutex> lk(r.m);
  r.help[name] = help;
}

std::string metric_help(const std::string& name) {
  MetricsRegistry& r = metrics_registry();
  std::lock_guard<std::mutex> lk(r.m);
  auto it = r.help.find(name);
  if (it != r.help.end()) return it->second;
  const auto brace = name.find('{');
  if (brace != std::string::npos) {
    it = r.help.find(name.substr(0, brace));
    if (it != r.help.end()) return it->second;
  }
  return {};
}

}  // namespace spmvm::obs
