// Named process-wide metrics: counters, gauges and histograms.
//
// Unlike spans (obs/trace), metrics are always on — one relaxed atomic
// op per update — so bytes moved, nnz processed and pool activity are
// observable without enabling a trace. Instrumented sites cache the
// reference returned by counter()/gauge()/histogram() in a function-
// local static, so the name lookup happens once per site.
//
// Export: metrics_snapshot() for programmatic access, or the
// Prometheus-style text format in obs/trace_export.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/histogram.hpp"
#include "util/types.hpp"

namespace spmvm::obs {

/// Monotonically increasing counter (events, bytes, iterations).
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value (worker count, queue depth).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Distribution of non-negative integer observations, backed by
/// util/Histogram (bin size 1) under a mutex.
class HistogramMetric {
 public:
  void observe(index_t value) {
    std::lock_guard<std::mutex> lk(m_);
    h_.add(value);
  }
  Histogram snapshot() const {
    std::lock_guard<std::mutex> lk(m_);
    return h_;
  }
  void reset() {
    std::lock_guard<std::mutex> lk(m_);
    h_ = Histogram();
  }

 private:
  mutable std::mutex m_;
  Histogram h_;
};

/// Look up (creating on first use) a metric by name. References stay
/// valid for the process lifetime. Dotted names ("pool.parts") are the
/// convention; exporters sanitize as needed.
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
HistogramMetric& histogram(const std::string& name);

/// Attach a human-readable description to a metric name. Exporters emit
/// it as a `# HELP` line. For labeled metrics ("base{key=value}") register
/// the help under the bare base name — it applies to every label set.
void set_metric_help(const std::string& name, const std::string& help);

/// Help text for `name`, falling back to the base name before '{' for
/// labeled metrics. Empty when none was registered.
std::string metric_help(const std::string& name);

enum class MetricKind { counter, gauge, histogram };

struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::counter;
  double value = 0.0;  // counter/gauge value; histogram: sample count
  Histogram hist;      // populated for histograms only
};

/// All registered metrics, sorted by name.
std::vector<MetricSample> metrics_snapshot();

/// Zero every counter and histogram (gauges keep their last value).
/// Use between repetitions of the *same* workload, where a gauge such as
/// a device clock or thread count is still meaningful afterwards.
void reset_metrics();

/// Zero every counter, histogram AND gauge. Use between *different*
/// workloads (e.g. bench_suite scenarios): a gauge left over from the
/// previous scenario would otherwise leak into the next snapshot and be
/// exported as if the new workload had produced it.
void reset_all();

}  // namespace spmvm::obs
