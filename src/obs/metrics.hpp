// Named process-wide metrics: counters, gauges and histograms.
//
// Unlike spans (obs/trace), metrics are always on — one relaxed atomic
// op per update — so bytes moved, nnz processed and pool activity are
// observable without enabling a trace. Instrumented sites cache the
// reference returned by counter()/gauge()/histogram() in a function-
// local static, so the name lookup happens once per site.
//
// Export: metrics_snapshot() for programmatic access, or the
// Prometheus-style text format in obs/trace_export.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/histogram.hpp"
#include "util/types.hpp"

namespace spmvm::obs {

/// Monotonically increasing counter (events, bytes, iterations).
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value (worker count, queue depth).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Distribution of non-negative integer observations, backed by
/// util/Histogram (bin size 1) under a mutex.
class HistogramMetric {
 public:
  void observe(index_t value) {
    std::lock_guard<std::mutex> lk(m_);
    h_.add(value);
  }
  Histogram snapshot() const {
    std::lock_guard<std::mutex> lk(m_);
    return h_;
  }
  void reset() {
    std::lock_guard<std::mutex> lk(m_);
    h_ = Histogram();
  }

 private:
  mutable std::mutex m_;
  Histogram h_;
};

/// Bucket count of LatencyHistogram: power-of-two upper bounds in
/// microseconds, 2^0 us .. 2^39 us (~6.4 days).
inline constexpr int kLatencyBuckets = 40;

/// Point-in-time copy of a LatencyHistogram (metrics_snapshot and the
/// Prometheus exporter consume this).
struct LatencySnapshot {
  std::uint64_t count = 0;
  double sum_us = 0.0;
  double min_us = 0.0;  // 0 when empty
  double max_us = 0.0;
  std::array<std::uint64_t, kLatencyBuckets> buckets{};

  /// Exact nearest-rank q-quantile over the bucket counts, reported as
  /// the covering bucket's upper bound in microseconds. Deterministic
  /// for a given observation multiset (no interpolation).
  double quantile_us(double q) const;
};

/// Latency distribution with exponential (power-of-two) bucket bounds.
/// util/Histogram uses bin size 1 and therefore cannot hold microsecond
/// magnitudes; this variant spans nine decades in 40 buckets with one
/// relaxed atomic add per observation (plus running count/sum/min/max),
/// so hot serving paths can observe without a mutex.
class LatencyHistogram {
 public:
  /// Upper bound of bucket b in microseconds: 2^b.
  static double bucket_bound_us(int b) {
    return static_cast<double>(std::uint64_t{1} << b);
  }

  void observe_us(double us);
  void observe_seconds(double s) { observe_us(s * 1e6); }

  LatencySnapshot snapshot() const;
  void reset();

 private:
  /// min sentinel for "no observation yet" (snapshot reports 0 then).
  static constexpr double kNoMin = 1e300;

  std::array<std::atomic<std::uint64_t>, kLatencyBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_us_{0.0};
  std::atomic<double> min_us_{kNoMin};
  std::atomic<double> max_us_{0.0};
};

/// Look up (creating on first use) a metric by name. References stay
/// valid for the process lifetime. Dotted names ("pool.parts") are the
/// convention; exporters sanitize as needed.
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
HistogramMetric& histogram(const std::string& name);
LatencyHistogram& latency_histogram(const std::string& name);

/// Attach a human-readable description to a metric name. Exporters emit
/// it as a `# HELP` line. For labeled metrics ("base{key=value}") register
/// the help under the bare base name — it applies to every label set.
void set_metric_help(const std::string& name, const std::string& help);

/// Help text for `name`, falling back to the base name before '{' for
/// labeled metrics. Empty when none was registered.
std::string metric_help(const std::string& name);

enum class MetricKind { counter, gauge, histogram, latency };

struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::counter;
  double value = 0.0;  // counter/gauge value; histogram/latency: count
  Histogram hist;      // populated for histograms only
  LatencySnapshot lat;  // populated for latency histograms only
};

/// All registered metrics, sorted by name.
std::vector<MetricSample> metrics_snapshot();

/// Zero every counter and histogram (gauges keep their last value).
/// Use between repetitions of the *same* workload, where a gauge such as
/// a device clock or thread count is still meaningful afterwards.
void reset_metrics();

/// Zero every counter, histogram AND gauge. Use between *different*
/// workloads (e.g. bench_suite scenarios): a gauge left over from the
/// previous scenario would otherwise leak into the next snapshot and be
/// exported as if the new workload had produced it.
void reset_all();

}  // namespace spmvm::obs
