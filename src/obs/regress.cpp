#include "obs/regress.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace spmvm::obs {

namespace {

bool name_passes(const std::string& name, const RegressOptions& opt) {
  return opt.name_filter.empty() ||
         name.find(opt.name_filter) != std::string::npos;
}

/// Rate counters (GF/s, GB/s, nnz/s) are higher-is-better; a drop gates.
bool is_rate(const std::string& counter) {
  return counter.size() >= 2 &&
         counter.compare(counter.size() - 2, 2, "/s") == 0;
}

double rel_change(double baseline, double current) {
  if (baseline == 0.0) return current == 0.0 ? 0.0 : INFINITY;
  return (current - baseline) / std::abs(baseline);
}

/// One-sided comparison: `worse` is the signed amount by which the
/// current value moved in the bad direction.
DeltaStatus judge(double worse, double allowed) {
  if (worse > allowed) return DeltaStatus::regression;
  if (-worse > allowed) return DeltaStatus::improved;
  return DeltaStatus::ok;
}

}  // namespace

const char* to_string(DeltaStatus s) {
  switch (s) {
    case DeltaStatus::ok: return "ok";
    case DeltaStatus::regression: return "REGRESSION";
    case DeltaStatus::improved: return "improved";
    case DeltaStatus::added: return "added";
    case DeltaStatus::removed: return "removed";
  }
  return "?";
}

RegressResult compare(const BenchReport& baseline, const BenchReport& current,
                      const RegressOptions& opt) {
  RegressResult r;
  r.baseline_schema = baseline.schema_version;
  r.current_schema = current.schema_version;
  if (baseline.schema_version != current.schema_version) {
    // Refuse to diff metrics across layouts: a field that changed
    // meaning would silently pass (or fail) for the wrong reason.
    r.schema_mismatch = true;
    r.passed = !opt.fail_on_schema;
    return r;
  }

  const auto gate = [&](MetricDelta d) {
    if (d.status == DeltaStatus::regression ||
        (d.status == DeltaStatus::removed && opt.fail_on_removed))
      ++r.n_regressions;
    if (d.status == DeltaStatus::improved) ++r.n_improvements;
    r.deltas.push_back(std::move(d));
  };

  for (const BenchEntry& b : baseline.entries) {
    if (!name_passes(b.name, opt)) continue;
    const BenchEntry* c = current.find(b.name);
    if (c == nullptr) {
      MetricDelta d;
      d.entry = b.name;
      d.metric = "(entry)";
      d.status = DeltaStatus::removed;
      d.baseline = b.mean_seconds;
      gate(std::move(d));
      continue;
    }

    {
      // Timing: the noise window uses the pooled per-rep spread of both
      // runs — a jittery pair of runs earns a wider window, while a
      // deterministic model output (stddev 0) is held to rel_tol alone.
      MetricDelta d;
      d.entry = b.name;
      d.metric = "mean_seconds";
      d.baseline = b.mean_seconds;
      d.current = c->mean_seconds;
      d.rel_change = rel_change(b.mean_seconds, c->mean_seconds);
      const double pooled =
          std::sqrt(b.stddev_seconds * b.stddev_seconds +
                    c->stddev_seconds * c->stddev_seconds);
      d.allowed = std::max(opt.rel_tol * std::abs(b.mean_seconds),
                           opt.stddev_k * pooled);
      d.status = judge(c->mean_seconds - b.mean_seconds, d.allowed);
      gate(std::move(d));
    }

    // Counters (GF/s, GB/s, ratios) are derived from the entry's timing,
    // so they inherit its per-rep jitter: pool the relative spread of
    // both runs the same way the timing window does.
    const auto rel_spread = [](const BenchEntry& e) {
      return e.mean_seconds > 0.0 ? e.stddev_seconds / e.mean_seconds : 0.0;
    };
    const double rel_noise =
        std::sqrt(rel_spread(b) * rel_spread(b) +
                  rel_spread(*c) * rel_spread(*c));
    for (const auto& [cname, bval] : b.counters) {
      MetricDelta d;
      d.entry = b.name;
      d.metric = cname;
      d.baseline = bval;
      const auto it = std::find_if(
          c->counters.begin(), c->counters.end(),
          [&](const auto& kv) { return kv.first == cname; });
      if (it == c->counters.end()) {
        d.status = DeltaStatus::removed;
        gate(std::move(d));
        continue;
      }
      d.current = it->second;
      d.rel_change = rel_change(bval, it->second);
      d.allowed = std::max(opt.rel_tol, opt.stddev_k * rel_noise) *
                  std::abs(bval);
      // Rates gate when they drop; everything else gates on any drift
      // beyond the tolerance (direction unknown -> conservative).
      const double worse = is_rate(cname) ? bval - it->second
                                          : std::abs(it->second - bval);
      d.status = judge(worse, d.allowed);
      gate(std::move(d));
    }
    for (const auto& [cname, cval] : c->counters) {
      const bool in_baseline = std::any_of(
          b.counters.begin(), b.counters.end(),
          [&](const auto& kv) { return kv.first == cname; });
      if (in_baseline) continue;
      MetricDelta d;
      d.entry = b.name;
      d.metric = cname;
      d.status = DeltaStatus::added;
      d.current = cval;
      gate(std::move(d));
    }
  }

  for (const BenchEntry& c : current.entries) {
    if (!name_passes(c.name, opt) || baseline.find(c.name) != nullptr)
      continue;
    MetricDelta d;
    d.entry = c.name;
    d.metric = "(entry)";
    d.status = DeltaStatus::added;
    d.current = c.mean_seconds;
    gate(std::move(d));
  }

  r.passed = r.n_regressions == 0;
  return r;
}

std::string RegressResult::render() const {
  std::ostringstream os;
  if (schema_mismatch) {
    os << "schema mismatch: baseline v" << baseline_schema << " vs current v"
       << current_schema << " -> refusing to compare\n";
    return os.str();
  }
  int compared = 0;
  for (const MetricDelta& d : deltas) {
    if (d.status == DeltaStatus::ok) {
      ++compared;
      continue;
    }
    char buf[256];
    if (d.status == DeltaStatus::added) {
      std::snprintf(buf, sizeof(buf), "%-10s %s %s (new metric, %.6g)\n",
                    to_string(d.status), d.entry.c_str(), d.metric.c_str(),
                    d.current);
    } else if (d.status == DeltaStatus::removed) {
      std::snprintf(buf, sizeof(buf), "%-10s %s %s (missing from current)\n",
                    to_string(d.status), d.entry.c_str(), d.metric.c_str());
    } else {
      ++compared;
      std::snprintf(buf, sizeof(buf),
                    "%-10s %s %s %.6g -> %.6g (%+.1f%%, window ±%.3g)\n",
                    to_string(d.status), d.entry.c_str(), d.metric.c_str(),
                    d.baseline, d.current, 100.0 * d.rel_change, d.allowed);
    }
    os << buf;
  }
  os << "compared " << compared << " metrics: " << n_regressions
     << " regression(s), " << n_improvements << " improvement(s) -> "
     << (passed ? "PASS" : "FAIL") << "\n";
  return os.str();
}

}  // namespace spmvm::obs
