// Noise-aware regression gating between two bench reports.
//
// Benchmark timings jitter; a naive "is it slower than last time" gate
// either cries wolf or needs tolerances so wide it misses real
// regressions. compare() therefore allows each timing metric a window of
//
//   allowed = max(rel_tol · |baseline|, k · pooled_stddev)
//
// where pooled_stddev combines the per-rep standard deviations of both
// runs — a run with visible jitter automatically earns a wider window,
// while a deterministic model output (stddev 0) is held to rel_tol
// alone. Counters carry no spread, so they use rel_tol only.
//
// Structural differences are never silent: entries or counters present
// on only one side are reported as added/removed (removed gates by
// default), and reports with different schema_version refuse to compare.
#pragma once

#include <string>
#include <vector>

#include "obs/bench_json.hpp"

namespace spmvm::obs {

struct RegressOptions {
  double rel_tol = 0.05;    // relative tolerance per metric
  double stddev_k = 3.0;    // noise window: k · pooled stddev
  bool fail_on_removed = true;   // baseline metric missing from current
  bool fail_on_schema = true;    // schema_version mismatch gates
  /// Only entries whose name contains this substring are gated
  /// (empty = all). Added/removed reporting is filtered the same way.
  std::string name_filter;
};

enum class DeltaStatus {
  ok,          // within the noise window
  regression,  // worse beyond the window
  improved,    // better beyond the window (informational)
  added,       // metric only in the current report
  removed,     // metric only in the baseline report
};

const char* to_string(DeltaStatus s);

/// One compared metric: an entry's mean_seconds ("time") or a counter.
struct MetricDelta {
  std::string entry;    // benchmark entry name
  std::string metric;   // "mean_seconds" or the counter name
  DeltaStatus status = DeltaStatus::ok;
  double baseline = 0.0;
  double current = 0.0;
  double rel_change = 0.0;  // (current - baseline) / |baseline|
  double allowed = 0.0;     // the absolute window this metric was given
};

struct RegressResult {
  bool schema_mismatch = false;
  int baseline_schema = 0;
  int current_schema = 0;
  std::vector<MetricDelta> deltas;

  /// True when nothing gates under the options the comparison ran with.
  bool passed = true;
  int n_regressions = 0;
  int n_improvements = 0;

  /// Human-readable comparison table (one line per non-ok delta, plus a
  /// summary line).
  std::string render() const;
};

/// Compare `current` against `baseline`. Seconds are gated one-sided
/// (slower = regression); rate-like counters (name ending in "/s") are
/// gated one-sided downwards; all other counters two-sided.
RegressResult compare(const BenchReport& baseline, const BenchReport& current,
                      const RegressOptions& opt = {});

}  // namespace spmvm::obs
