#include "obs/report.hpp"

#include <cctype>
#include <climits>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "util/error.hpp"

#if !defined(_WIN32)
#include <sys/utsname.h>
#include <unistd.h>
#endif

namespace spmvm::obs {

namespace {

std::string compiler_id() {
#if defined(__clang__)
  return "clang " + std::string(__clang_version__);
#elif defined(__GNUC__)
  return "gcc " + std::string(__VERSION__);
#else
  return "unknown";
#endif
}

std::string arch_id() {
#if defined(__x86_64__) || defined(_M_X64)
  return "x86_64";
#elif defined(__aarch64__)
  return "aarch64";
#elif defined(__riscv)
  return "riscv";
#else
  return "unknown";
#endif
}

std::string host_name() {
#if !defined(_WIN32)
  char buf[256] = {};
  if (gethostname(buf, sizeof(buf) - 1) == 0 && buf[0] != '\0') return buf;
#endif
  return "unknown";
}

std::string os_id() {
#if !defined(_WIN32)
  utsname u{};
  if (uname(&u) == 0)
    return std::string(u.sysname) + " " + u.release + " " + u.machine;
#endif
  return "unknown";
}

// The build flags are injected by src/obs/CMakeLists.txt; stringified
// through two macro levels so the flag *value* expands first.
#define SPMVM_STR2(x) #x
#define SPMVM_STR(x) SPMVM_STR2(x)
std::string build_flags() {
#if defined(SPMVM_CXX_FLAGS)
  return SPMVM_STR(SPMVM_CXX_FLAGS);
#else
  return "unknown";
#endif
}
#undef SPMVM_STR
#undef SPMVM_STR2

// ---- bench.json reader ---------------------------------------------------
// A recursive-descent parser for the JSON subset BenchReport::to_json
// emits (objects, arrays, strings, numbers); unknown keys are skipped so
// future additive fields keep old readers working.
class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  BenchReport parse() {
    BenchReport r;
    r.schema_version = 0;  // pre-versioning files carry no field
    skip_ws();
    expect('{');
    bool first = true;
    while (!try_consume('}')) {
      if (!first) expect(',');
      first = false;
      const std::string key = parse_string();
      expect(':');
      if (key == "schema_version") {
        r.schema_version = static_cast<int>(parse_number());
      } else if (key == "binary") {
        r.binary = parse_string();
      } else if (key == "metadata") {
        parse_metadata(r);
      } else if (key == "benchmarks") {
        parse_benchmarks(r);
      } else {
        skip_value();
      }
    }
    skip_ws();
    SPMVM_REQUIRE(pos_ == s_.size(), "trailing characters after bench.json");
    return r;
  }

 private:
  void parse_metadata(BenchReport& r) {
    expect('{');
    bool first = true;
    while (!try_consume('}')) {
      if (!first) expect(',');
      first = false;
      std::string key = parse_string();
      expect(':');
      r.metadata.emplace_back(std::move(key), parse_string());
    }
  }

  void parse_benchmarks(BenchReport& r) {
    expect('[');
    bool first = true;
    while (!try_consume(']')) {
      if (!first) expect(',');
      first = false;
      r.entries.push_back(parse_entry());
    }
  }

  BenchEntry parse_entry() {
    BenchEntry e;
    expect('{');
    bool first = true;
    while (!try_consume('}')) {
      if (!first) expect(',');
      first = false;
      const std::string key = parse_string();
      expect(':');
      if (key == "name") {
        e.name = parse_string();
      } else if (key == "repetitions") {
        e.repetitions = static_cast<int>(parse_number());
      } else if (key == "mean_seconds") {
        e.mean_seconds = parse_number();
      } else if (key == "median_seconds") {
        e.median_seconds = parse_number();
      } else if (key == "min_seconds") {
        e.min_seconds = parse_number();
      } else if (key == "max_seconds") {
        e.max_seconds = parse_number();
      } else if (key == "stddev_seconds") {
        e.stddev_seconds = parse_number();
      } else if (key == "counters") {
        expect('{');
        bool cfirst = true;
        while (!try_consume('}')) {
          if (!cfirst) expect(',');
          cfirst = false;
          std::string cname = parse_string();
          expect(':');
          e.counters.emplace_back(std::move(cname), parse_number());
        }
      } else {
        skip_value();
      }
    }
    return e;
  }

  void skip_value() {
    skip_ws();
    SPMVM_REQUIRE(pos_ < s_.size(), "unexpected end of bench.json");
    const char c = s_[pos_];
    if (c == '"') {
      parse_string();
    } else if (c == '{') {
      ++pos_;
      bool first = true;
      while (!try_consume('}')) {
        if (!first) expect(',');
        first = false;
        parse_string();
        expect(':');
        skip_value();
      }
    } else if (c == '[') {
      ++pos_;
      bool first = true;
      while (!try_consume(']')) {
        if (!first) expect(',');
        first = false;
        skip_value();
      }
    } else if (std::strchr("tfn", c) != nullptr) {
      while (pos_ < s_.size() && std::isalpha(static_cast<unsigned char>(
                                     s_[pos_])))
        ++pos_;
    } else {
      parse_number();
    }
  }

  std::string parse_string() {
    skip_ws();
    expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        SPMVM_REQUIRE(pos_ < s_.size(), "unterminated escape in bench.json");
        const char esc = s_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u':
            // The writer never emits \u; decode as a placeholder.
            SPMVM_REQUIRE(pos_ + 4 <= s_.size(),
                          "truncated \\u escape in bench.json");
            pos_ += 4;
            c = '?';
            break;
          default:
            SPMVM_REQUIRE(false, "unknown escape in bench.json");
        }
      }
      out += c;
    }
    expect('"');
    return out;
  }

  double parse_number() {
    skip_ws();
    const char* begin = s_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    SPMVM_REQUIRE(end != begin, "expected a number in bench.json");
    pos_ += static_cast<std::size_t>(end - begin);
    return v;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  void expect(char c) {
    skip_ws();
    SPMVM_REQUIRE(pos_ < s_.size() && s_[pos_] == c,
                  std::string("expected '") + c + "' in bench.json");
    ++pos_;
  }

  bool try_consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::pair<std::string, std::string>> machine_fingerprint() {
  return {
      {"hostname", host_name()},
      {"cores", std::to_string(std::thread::hardware_concurrency())},
      {"compiler", compiler_id()},
      {"arch", arch_id()},
      {"os", os_id()},
      {"cxx_flags", build_flags()},
  };
}

BenchReport parse_bench_report(const std::string& json) {
  return Parser(json).parse();
}

BenchReport load_bench_report(const std::string& path) {
  std::ifstream in(path);
  SPMVM_REQUIRE(static_cast<bool>(in), "cannot open bench report: " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return parse_bench_report(os.str());
}

bool consume_value_flag(int* argc, char** argv, const char* flag,
                        std::string* value, std::string* err) {
  value->clear();
  err->clear();
  const std::size_t flag_len = std::strlen(flag);
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      // Only consume a following non-flag token as the value, so a bare
      // flag can't swallow the next option.
      if (i + 1 >= *argc || argv[i + 1][0] == '-') {
        *err = std::string(flag) + " requires a value";
        return false;
      }
      *value = argv[++i];
    } else if (std::strncmp(argv[i], flag, flag_len) == 0 &&
               argv[i][flag_len] == '=') {
      *value = argv[i] + flag_len + 1;
      if (value->empty()) {
        *err = std::string(flag) + " requires a value";
        return false;
      }
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return true;
}

bool consume_switch(int* argc, char** argv, const char* flag) {
  bool seen = false;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0)
      seen = true;
    else
      argv[out++] = argv[i];
  }
  *argc = out;
  return seen;
}

bool consume_json_flag(int* argc, char** argv, std::string* path,
                       std::string* err) {
  return consume_value_flag(argc, argv, "--json", path, err);
}

bool consume_double_flag(int* argc, char** argv, const char* flag,
                         double* value, std::string* err) {
  std::string raw;
  if (!consume_value_flag(argc, argv, flag, &raw, err)) return false;
  if (raw.empty()) return true;  // flag absent: keep the caller's default
  char* end = nullptr;
  const double parsed = std::strtod(raw.c_str(), &end);
  if (end == raw.c_str() || *end != '\0') {
    *err = std::string(flag) + " expects a number, got '" + raw + "'";
    return false;
  }
  *value = parsed;
  return true;
}

bool consume_int_flag(int* argc, char** argv, const char* flag, int* value,
                      std::string* err) {
  std::string raw;
  if (!consume_value_flag(argc, argv, flag, &raw, err)) return false;
  if (raw.empty()) return true;  // flag absent: keep the caller's default
  char* end = nullptr;
  const long parsed = std::strtol(raw.c_str(), &end, 10);
  if (end == raw.c_str() || *end != '\0' || parsed < INT_MIN ||
      parsed > INT_MAX) {
    *err = std::string(flag) + " expects an integer, got '" + raw + "'";
    return false;
  }
  *value = static_cast<int>(parsed);
  return true;
}

bool consume_backend_flag(int* argc, char** argv, std::string* backend,
                          std::string* err) {
  std::string value;
  if (!consume_value_flag(argc, argv, "--backend", &value, err)) return false;
  if (value.empty()) return true;  // flag absent: keep the caller's default
  // The name set mirrors exec::is_backend_name; obs sits below exec in
  // the link order, so the list is spelled out here.
  if (value != "host" && value != "gpusim" && value != "hybrid" &&
      value != "auto") {
    *err = "unknown backend '" + value +
           "' (expected host, gpusim, hybrid or auto)";
    return false;
  }
  *backend = value;
  return true;
}

}  // namespace spmvm::obs
