// Durable benchmark reports: the reader half of obs/bench_json plus the
// run metadata that makes a BENCH_*.json self-describing.
//
// - machine_fingerprint() stamps a report with the host it ran on
//   (hostname, cores, compiler, flags, OS), so a regression gate can
//   tell "code got slower" apart from "different machine".
// - parse_bench_report()/load_bench_report() read a report back —
//   exactly the subset of JSON that BenchReport::to_json() emits — so
//   obs/regress can diff two trajectory points without external
//   dependencies.
// - consume_value_flag()/consume_switch() strip one `--flag <value>` /
//   `--flag=<value>` pair or a bare boolean `--flag` from argv before
//   the rest is handed to another parser (e.g. google-benchmark);
//   consume_json_flag() is the benches' common `--json <path>` built on
//   top of them.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "obs/bench_json.hpp"

namespace spmvm::obs {

/// Key/value description of the machine and build this process runs on:
/// hostname, cores, compiler, compiler_version, arch, os, cxx_flags.
/// Append to BenchReport::metadata so every report names its origin.
std::vector<std::pair<std::string, std::string>> machine_fingerprint();

/// Parse a bench.json document (the format BenchReport::to_json emits).
/// Reports written before the schema_version field parse with
/// schema_version 0. Throws spmvm::Error on malformed input.
BenchReport parse_bench_report(const std::string& json);

/// Read and parse `path`; throws spmvm::Error on I/O or parse failure.
BenchReport load_bench_report(const std::string& path);

/// Strip a `--<flag> <value>` / `--<flag>=<value>` pair from argv in
/// place (argc is updated; remaining arguments keep their order, so the
/// caller can hand them to its own parser, e.g. google-benchmark).
/// `flag` includes the leading dashes ("--format"). Returns false with
/// *err set when the flag is present but has no value (a bare flag
/// never swallows a following `--option`); *value is left empty when
/// the flag does not occur.
bool consume_value_flag(int* argc, char** argv, const char* flag,
                        std::string* value, std::string* err);

/// Strip a boolean `--<flag>` from argv in place; returns true when it
/// occurred (any number of times).
bool consume_switch(int* argc, char** argv, const char* flag);

/// The benches' common `--json <path>` flag: consume_value_flag for
/// "--json".
bool consume_json_flag(int* argc, char** argv, std::string* path,
                       std::string* err);

/// Numeric `--<flag> <value>` variants built on consume_value_flag —
/// the shared spelling of knobs like `--qps`, `--duration`, `--slo-ms`,
/// `--rel-tol` across the benches. *value is only written when the flag
/// occurs, so initialize it with the caller's default. Returns false
/// with *err set for a missing or non-numeric value (note the value
/// must not start with '-': these flags take non-negative numbers).
bool consume_double_flag(int* argc, char** argv, const char* flag,
                         double* value, std::string* err);
bool consume_int_flag(int* argc, char** argv, const char* flag, int* value,
                      std::string* err);

/// The benches' common `--backend <name>` flag: consume_value_flag for
/// "--backend", validated against the exec engine's backend names
/// (host, gpusim, hybrid) plus "auto". *backend is left untouched when
/// the flag does not occur — initialize it with the caller's default.
/// Returns false with *err set for a missing or unknown value.
bool consume_backend_flag(int* argc, char** argv, std::string* backend,
                          std::string* err);

}  // namespace spmvm::obs
