// Durable benchmark reports: the reader half of obs/bench_json plus the
// run metadata that makes a BENCH_*.json self-describing.
//
// - machine_fingerprint() stamps a report with the host it ran on
//   (hostname, cores, compiler, flags, OS), so a regression gate can
//   tell "code got slower" apart from "different machine".
// - parse_bench_report()/load_bench_report() read a report back —
//   exactly the subset of JSON that BenchReport::to_json() emits — so
//   obs/regress can diff two trajectory points without external
//   dependencies.
// - consume_json_flag() implements the benches' common `--json <path>`
//   flag (bare or empty value rejected) in one place.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "obs/bench_json.hpp"

namespace spmvm::obs {

/// Key/value description of the machine and build this process runs on:
/// hostname, cores, compiler, compiler_version, arch, os, cxx_flags.
/// Append to BenchReport::metadata so every report names its origin.
std::vector<std::pair<std::string, std::string>> machine_fingerprint();

/// Parse a bench.json document (the format BenchReport::to_json emits).
/// Reports written before the schema_version field parse with
/// schema_version 0. Throws spmvm::Error on malformed input.
BenchReport parse_bench_report(const std::string& json);

/// Read and parse `path`; throws spmvm::Error on I/O or parse failure.
BenchReport load_bench_report(const std::string& path);

/// Strip a `--json <path>` / `--json=<path>` flag from argv in place
/// (argc is updated; remaining arguments keep their order, so the
/// caller can hand them to its own parser, e.g. google-benchmark).
/// Returns false with *err set when the flag is present but has no
/// value (a bare `--json` never swallows a following `--flag`).
bool consume_json_flag(int* argc, char** argv, std::string* path,
                       std::string* err);

}  // namespace spmvm::obs
