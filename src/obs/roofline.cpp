#include "obs/roofline.hpp"

#include <algorithm>
#include <cstdlib>

namespace spmvm::obs {

namespace {

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end != nullptr && *end == '\0' && parsed > 0.0) ? parsed : fallback;
}

}  // namespace

const char* to_string(RoofLane lane) {
  switch (lane) {
    case RoofLane::host: return "host";
    case RoofLane::device: return "device";
    case RoofLane::pcie: return "pcie";
    case RoofLane::net: return "net";
  }
  return "?";
}

RooflineSpec RooflineSpec::from_env() {
  RooflineSpec s;
  s.bw_gbs[0] = env_double("SPMVM_HOST_BW_GBS", s.bw_gbs[0]);
  s.bw_gbs[1] = env_double("SPMVM_DEVICE_BW_GBS", s.bw_gbs[1]);
  s.bw_gbs[2] = env_double("SPMVM_PCIE_BW_GBS", s.bw_gbs[2]);
  s.bw_gbs[3] = env_double("SPMVM_NET_BW_GBS", s.bw_gbs[3]);
  s.peak_gflops[0] =
      env_double("SPMVM_HOST_PEAK_GFLOPS", s.peak_gflops[0]);
  return s;
}

double predicted_seconds(const RooflineSpec& spec, RoofLane lane,
                         const WorkDesc& w) {
  if (w.predicted_seconds > 0.0) return w.predicted_seconds;
  const int i = static_cast<int>(lane);
  double t = 0.0;
  if (w.bytes > 0 && spec.bw_gbs[i] > 0.0)
    t = static_cast<double>(w.bytes) / (spec.bw_gbs[i] * 1e9);
  if (w.flops > 0 && spec.peak_gflops[i] > 0.0)
    t = std::max(t, static_cast<double>(w.flops) /
                        (spec.peak_gflops[i] * 1e9));
  return t;
}

}  // namespace spmvm::obs
