// Roofline work descriptors: the vocabulary shared by the efficiency
// ledger (obs/ledger) and every instrumented site.
//
// A WorkDesc states what a measured span *should* have cost under the
// paper's bandwidth model: bytes moved per the format's stored footprint
// (Eq. 1 accounting, see perfmodel/balance.hpp), flops, nnz and the RHS
// re-load factor α. Sites that know a better prediction than the generic
// lane roof — the GPU simulator evaluates Eq. 1 at *measured* α — set
// predicted_seconds directly; everyone else leaves it 0 and the ledger
// derives the lower bound from the lane's RooflineSpec roof.
#pragma once

#include <cstdint>

namespace spmvm::obs {

/// Hardware lane a measured span ran on. Each lane has its own
/// bandwidth roof: host DRAM, simulated device DRAM, the PCIe link, and
/// the cluster interconnect (ClusterSpec limits).
enum class RoofLane : std::uint8_t { host = 0, device = 1, pcie = 2, net = 3 };

inline constexpr int kNumRoofLanes = 4;

const char* to_string(RoofLane lane);

/// Per-lane bandwidth and compute roofs, in GB/s and GF/s. Defaults
/// follow the paper's testbeds — a Westmere-class host socket, the
/// C2070's ECC-on DRAM bandwidth, its PCIe gen2 link, and Dirac's QDR
/// InfiniBand (dist/ClusterSpec::dirac) — and every roof can be
/// overridden per run via SPMVM_{HOST,DEVICE,PCIE,NET}_BW_GBS plus
/// SPMVM_HOST_PEAK_GFLOPS (see from_env). peak_gflops 0 = unbounded
/// (purely bandwidth-limited lane).
struct RooflineSpec {
  double bw_gbs[kNumRoofLanes] = {20.0, 91.0, 6.0, 3.2};
  double peak_gflops[kNumRoofLanes] = {0.0, 0.0, 0.0, 0.0};

  /// Defaults with environment overrides applied.
  static RooflineSpec from_env();
};

/// Work one measured span performed, in model terms.
struct WorkDesc {
  std::uint64_t bytes = 0;  // data streamed (format footprint + vectors)
  std::uint64_t flops = 0;  // 2·nnz for spMVM
  std::uint64_t nnz = 0;    // non-zeros processed (0 for pure transfers)
  double alpha = 0.0;       // RHS re-load factor; 0 = not applicable
  /// Model lower bound for this span in seconds. 0 lets the ledger
  /// derive max(bytes/bw, flops/peak) from the lane's roofs; the GPU
  /// simulator sets the Eq. 1 prediction at measured α here.
  double predicted_seconds = 0.0;
};

/// Model lower-bound seconds for `w` on `lane`: the explicit
/// predicted_seconds when set, else the lane-roof bound. 0 when the
/// descriptor carries no work (no bytes, no flops).
double predicted_seconds(const RooflineSpec& spec, RoofLane lane,
                         const WorkDesc& w);

}  // namespace spmvm::obs
