#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string_view>

#include "obs/metrics.hpp"

namespace spmvm::obs {

namespace {

/// Per-thread span storage. The owning thread appends under `m`; the
/// critical sections are a few instructions, so the mutex is effectively
/// uncontended except while collect() snapshots — which keeps the
/// concurrent-collection path race-free (validated under TSan).
struct ThreadBuffer {
  std::mutex m;
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
  std::string name;
  std::int32_t rank = -1;
};

struct Registry {
  std::mutex m;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::uint32_t next_tid = 0;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: threads may outlive main
  return *r;
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{[] {
    const char* e = std::getenv("SPMVM_TRACE");
    return e != nullptr && *e != '\0' && std::string_view(e) != "0";
  }()};
  return flag;
}

ThreadBuffer& thread_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buf = [] {
    auto b = std::make_shared<ThreadBuffer>();
    Registry& r = registry();
    std::lock_guard<std::mutex> lk(r.m);
    b->tid = r.next_tid++;
    r.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

thread_local std::uint16_t t_depth = 0;
thread_local std::int32_t t_rank = -1;

std::chrono::steady_clock::time_point trace_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

std::size_t env_trace_cap() {
  const char* e = std::getenv("SPMVM_TRACE_CAP");
  if (e == nullptr || *e == '\0') return std::size_t{1} << 20;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(e, &end, 10);
  return (end != nullptr && *end == '\0') ? static_cast<std::size_t>(v)
                                          : std::size_t{1} << 20;
}

std::atomic<std::size_t>& cap_value() {
  static std::atomic<std::size_t> cap{env_trace_cap()};
  return cap;
}

}  // namespace

bool tracing_enabled() {
  return enabled_flag().load(std::memory_order_relaxed);
}

void set_tracing(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

void set_thread_name(const std::string& name) {
  // Not gated on tracing_enabled(): a thread named while tracing is off
  // (e.g. a pool worker spawned early) keeps its actor label for traces
  // enabled later. Once per thread, so the registration cost is moot.
  ThreadBuffer& b = thread_buffer();
  std::lock_guard<std::mutex> lk(b.m);
  b.name = name;
}

void set_rank(int rank) {
  t_rank = rank;
  // Mirror into the registry (like set_thread_name) so trace_threads()
  // reports the lane even for threads that recorded no spans yet.
  ThreadBuffer& b = thread_buffer();
  std::lock_guard<std::mutex> lk(b.m);
  b.rank = rank;
}

int current_rank() { return t_rank; }

std::uint64_t next_flow_id() {
  static std::atomic<std::uint64_t> id{1};
  return id.fetch_add(1, std::memory_order_relaxed);
}

std::size_t trace_cap() {
  return cap_value().load(std::memory_order_relaxed);
}

void set_trace_cap(std::size_t cap) {
  cap_value().store(cap, std::memory_order_relaxed);
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - trace_epoch())
          .count());
}

std::vector<TraceEvent> collect() {
  std::vector<TraceEvent> out;
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.m);
  for (const auto& b : r.buffers) {
    std::lock_guard<std::mutex> blk(b->m);
    out.insert(out.end(), b->events.begin(), b->events.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.t0_ns < b.t0_ns;
                   });
  return out;
}

std::vector<TraceThread> trace_threads() {
  std::vector<TraceThread> out;
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.m);
  for (const auto& b : r.buffers) {
    std::lock_guard<std::mutex> blk(b->m);
    out.push_back({b->tid, b->name, b->rank});
  }
  std::sort(out.begin(), out.end(),
            [](const TraceThread& a, const TraceThread& b) {
              return a.tid < b.tid;
            });
  return out;
}

void clear_trace() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.m);
  for (const auto& b : r.buffers) {
    std::lock_guard<std::mutex> blk(b->m);
    b->events.clear();
  }
}

SpanGuard::SpanGuard(const char* name, std::uint64_t bytes) {
  if (name == nullptr || !tracing_enabled()) return;
  active_ = true;
  event_.name = name;
  event_.bytes = bytes;
  event_.rank = t_rank;
  event_.depth = t_depth++;
  event_.t0_ns = now_ns();
}

SpanGuard::~SpanGuard() {
  if (!active_) return;
  event_.t1_ns = now_ns();
  --t_depth;
  ThreadBuffer& b = thread_buffer();
  const std::size_t cap = trace_cap();
  std::lock_guard<std::mutex> lk(b.m);
  if (cap != 0 && b.events.size() >= cap) {
    // Bounded buffers: long solver runs with tracing left on saturate
    // at the cap instead of growing without limit. The loss is counted
    // so an exported trace can flag itself as incomplete.
    static Counter& c_dropped = counter("trace.dropped_spans");
    c_dropped.add();
    return;
  }
  event_.tid = b.tid;
  b.events.push_back(event_);
}

}  // namespace spmvm::obs
