// Span tracing for the whole stack (DESIGN.md §7 "Observability").
//
// Every instrumented site opens an RAII span (SPMVM_TRACE_SPAN) that is
// recorded into the *calling thread's* buffer — appends never touch
// another thread's data, so kernels, pool workers and the msg runtime's
// rank threads can all trace concurrently. Tracing is off by default:
// a disabled span is one relaxed atomic load and performs no allocation
// whatsoever (asserted in test_trace.cpp). Enable with the environment
// variable SPMVM_TRACE=1 or set_tracing(true).
//
// Spans nest: the per-thread depth is recorded so exporters can rebuild
// the call tree. Completed spans are appended when the guard closes;
// collect() snapshots every thread's buffer for export (Chrome trace
// JSON via obs/trace_export, ASCII via dist/Timeline).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace spmvm::obs {

/// One completed span. `name` and the attribute keys are pointers to
/// static-storage strings (the macros pass literals), never owned.
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t t0_ns = 0;  // since the process trace epoch
  std::uint64_t t1_ns = 0;
  std::uint32_t tid = 0;    // sequential thread id (see trace_threads())
  std::uint16_t depth = 0;  // nesting level within the thread
  std::uint64_t bytes = 0;  // payload the span moved; 0 = not set
  static constexpr int kMaxArgs = 2;
  const char* arg_name[kMaxArgs] = {nullptr, nullptr};
  double arg_value[kMaxArgs] = {0.0, 0.0};
  int n_args = 0;

  double seconds() const {
    return static_cast<double>(t1_ns - t0_ns) * 1e-9;
  }
};

/// Identity of a thread that recorded spans: sequential id + actor name
/// ("pool worker 3", "comm thread", ... — empty means unnamed).
struct TraceThread {
  std::uint32_t tid = 0;
  std::string name;
};

/// Whether spans are being recorded (SPMVM_TRACE env or set_tracing).
bool tracing_enabled();

/// Turn recording on/off at runtime, overriding the environment.
void set_tracing(bool on);

/// Label the calling thread for exports (actor row in timelines). Takes
/// effect even while tracing is off, so threads spawned before a trace
/// is enabled keep their names.
void set_thread_name(const std::string& name);

/// Nanoseconds since the process-wide trace epoch.
std::uint64_t now_ns();

/// Snapshot all completed spans of every thread, ordered by start time.
std::vector<TraceEvent> collect();

/// Threads that have recorded at least one span (or were named).
std::vector<TraceThread> trace_threads();

/// Drop all recorded spans (thread registrations are kept).
void clear_trace();

/// RAII span: records [construction, destruction) into the calling
/// thread's buffer when tracing is enabled, else does nothing.
class SpanGuard {
 public:
  explicit SpanGuard(const char* name, std::uint64_t bytes = 0);
  ~SpanGuard();
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  /// True when this span is being recorded — use to skip attribute
  /// computations in hot paths.
  bool active() const { return active_; }

  void set_bytes(std::uint64_t bytes) {
    if (active_) event_.bytes = bytes;
  }

  /// Attach a numeric attribute (α, predicted seconds, residual, ...).
  /// `key` must point to static storage. Beyond kMaxArgs is ignored.
  void set_arg(const char* key, double value) {
    if (!active_ || event_.n_args >= TraceEvent::kMaxArgs) return;
    event_.arg_name[event_.n_args] = key;
    event_.arg_value[event_.n_args] = value;
    ++event_.n_args;
  }

 private:
  TraceEvent event_;
  bool active_ = false;
};

#define SPMVM_OBS_CONCAT2(a, b) a##b
#define SPMVM_OBS_CONCAT(a, b) SPMVM_OBS_CONCAT2(a, b)

/// Anonymous span covering the rest of the enclosing scope.
/// Usage: SPMVM_TRACE_SPAN("kernel/pjds");            — name only
///        SPMVM_TRACE_SPAN("kernel/pjds", bytes);     — with payload
#define SPMVM_TRACE_SPAN(...)                                         \
  ::spmvm::obs::SpanGuard SPMVM_OBS_CONCAT(spmvm_trace_span_,         \
                                           __LINE__) { __VA_ARGS__ }

/// Named span for sites that attach attributes after the fact:
///   SPMVM_TRACE_SPAN_NAMED(span, "gpusim/pjds");
///   if (span.active()) span.set_arg("alpha", a);
#define SPMVM_TRACE_SPAN_NAMED(var, ...)                              \
  ::spmvm::obs::SpanGuard var { __VA_ARGS__ }

}  // namespace spmvm::obs
