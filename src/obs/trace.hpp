// Span tracing for the whole stack (DESIGN.md §7 "Observability").
//
// Every instrumented site opens an RAII span (SPMVM_TRACE_SPAN) that is
// recorded into the *calling thread's* buffer — appends never touch
// another thread's data, so kernels, pool workers and the msg runtime's
// rank threads can all trace concurrently. Tracing is off by default:
// a disabled span is one relaxed atomic load and performs no allocation
// whatsoever (asserted in test_trace.cpp). Enable with the environment
// variable SPMVM_TRACE=1 or set_tracing(true).
//
// Spans nest: the per-thread depth is recorded so exporters can rebuild
// the call tree. Completed spans are appended when the guard closes;
// collect() snapshots every thread's buffer for export (Chrome trace
// JSON via obs/trace_export, ASCII via dist/Timeline).
//
// Distributed runs (DESIGN.md §11): set_rank() stamps a rank lane into
// every span the calling thread records, so a multi-rank trace exports
// as one timeline with a pid lane per rank. Message flow ids
// (next_flow_id + SpanGuard::set_flow) link a send span to its matching
// receive across rank lanes — the Chrome exporter draws them as flow
// arrows. Per-thread span storage is bounded: once a thread holds
// trace_cap() spans, further spans are dropped and counted in the
// `trace.dropped_spans` counter (cap configurable via SPMVM_TRACE_CAP,
// 0 = unbounded).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace spmvm::obs {

/// Direction of the message flow a span participates in.
enum class FlowDir : std::uint8_t { none = 0, send = 1, recv = 2 };

/// One completed span. `name` and the attribute keys are pointers to
/// static-storage strings (the macros pass literals), never owned.
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t t0_ns = 0;  // since the process trace epoch
  std::uint64_t t1_ns = 0;
  std::uint32_t tid = 0;    // sequential thread id (see trace_threads())
  std::int32_t rank = -1;   // owning rank lane (set_rank); -1 = unranked
  std::uint16_t depth = 0;  // nesting level within the thread
  std::uint64_t bytes = 0;  // payload the span moved; 0 = not set
  std::uint64_t flow_id = 0;          // nonzero: send→recv pairing id
  FlowDir flow = FlowDir::none;       // which end of the flow this is
  static constexpr int kMaxArgs = 2;
  const char* arg_name[kMaxArgs] = {nullptr, nullptr};
  double arg_value[kMaxArgs] = {0.0, 0.0};
  int n_args = 0;

  double seconds() const {
    return static_cast<double>(t1_ns - t0_ns) * 1e-9;
  }
};

/// Identity of a thread that recorded spans: sequential id + actor name
/// ("pool worker 3", "comm thread", ... — empty means unnamed) + the
/// rank the thread belongs to (-1 when set_rank was never called).
struct TraceThread {
  std::uint32_t tid = 0;
  std::string name;
  std::int32_t rank = -1;
};

/// Whether spans are being recorded (SPMVM_TRACE env or set_tracing).
bool tracing_enabled();

/// Turn recording on/off at runtime, overriding the environment.
void set_tracing(bool on);

/// Label the calling thread for exports (actor row in timelines). Takes
/// effect even while tracing is off, so threads spawned before a trace
/// is enabled keep their names.
void set_thread_name(const std::string& name);

/// Assign the calling thread to a rank lane: every span it records from
/// now on carries `rank`, and exporters lay it out in that rank's pid
/// lane. msg::Runtime::run calls this for every rank thread; a plan's
/// persistent comm thread inherits its owner's rank the same way.
/// Like set_thread_name, effective even while tracing is off. -1 clears.
void set_rank(int rank);

/// The calling thread's rank lane (-1 when unassigned).
int current_rank();

/// Allocate a process-unique message flow id (monotonic, starts at 1).
/// The sender stamps it on its send span (SpanGuard::set_flow) and
/// ships it with the message; the receiver stamps the same id on its
/// receive span, which lets exporters draw the send→recv arrow.
std::uint64_t next_flow_id();

/// Per-thread span-buffer cap (0 = unbounded). Initialized from the
/// SPMVM_TRACE_CAP environment variable, default 1M spans per thread;
/// spans recorded beyond the cap are dropped and counted in the
/// `trace.dropped_spans` counter instead of growing the buffer.
std::size_t trace_cap();
void set_trace_cap(std::size_t cap);

/// Nanoseconds since the process-wide trace epoch.
std::uint64_t now_ns();

/// Snapshot all completed spans of every thread, ordered by start time.
std::vector<TraceEvent> collect();

/// Threads that have recorded at least one span (or were named).
std::vector<TraceThread> trace_threads();

/// Drop all recorded spans (thread registrations are kept).
void clear_trace();

/// RAII span: records [construction, destruction) into the calling
/// thread's buffer when tracing is enabled, else does nothing.
class SpanGuard {
 public:
  explicit SpanGuard(const char* name, std::uint64_t bytes = 0);
  ~SpanGuard();
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  /// True when this span is being recorded — use to skip attribute
  /// computations in hot paths.
  bool active() const { return active_; }

  void set_bytes(std::uint64_t bytes) {
    if (active_) event_.bytes = bytes;
  }

  /// Attach a numeric attribute (α, predicted seconds, residual, ...).
  /// `key` must point to static storage. Beyond kMaxArgs is ignored.
  void set_arg(const char* key, double value) {
    if (!active_ || event_.n_args >= TraceEvent::kMaxArgs) return;
    event_.arg_name[event_.n_args] = key;
    event_.arg_value[event_.n_args] = value;
    ++event_.n_args;
  }

  /// Mark this span as one end of a message flow (see next_flow_id).
  void set_flow(FlowDir dir, std::uint64_t id) {
    if (!active_) return;
    event_.flow = dir;
    event_.flow_id = id;
  }

 private:
  TraceEvent event_;
  bool active_ = false;
};

#define SPMVM_OBS_CONCAT2(a, b) a##b
#define SPMVM_OBS_CONCAT(a, b) SPMVM_OBS_CONCAT2(a, b)

/// Anonymous span covering the rest of the enclosing scope.
/// Usage: SPMVM_TRACE_SPAN("kernel/pjds");            — name only
///        SPMVM_TRACE_SPAN("kernel/pjds", bytes);     — with payload
#define SPMVM_TRACE_SPAN(...)                                         \
  ::spmvm::obs::SpanGuard SPMVM_OBS_CONCAT(spmvm_trace_span_,         \
                                           __LINE__) { __VA_ARGS__ }

/// Named span for sites that attach attributes after the fact:
///   SPMVM_TRACE_SPAN_NAMED(span, "gpusim/pjds");
///   if (span.active()) span.set_arg("alpha", a);
#define SPMVM_TRACE_SPAN_NAMED(var, ...)                              \
  ::spmvm::obs::SpanGuard var { __VA_ARGS__ }

}  // namespace spmvm::obs
