#include "obs/trace_export.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace spmvm::obs {

namespace {

/// JSON string escaping for names/labels (control chars, quote, slash).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Microseconds with nanosecond resolution, fixed notation (Chrome's
/// "ts"/"dur" fields).
std::string fmt_us(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

std::string display_thread_name(const TraceThread& t) {
  return t.name.empty() ? "thread " + std::to_string(t.tid) : t.name;
}

/// Prometheus metric name: sanitized to [a-zA-Z0-9_:], "spmvm_" prefix.
std::string prom_name(const std::string& name) {
  std::string out = "spmvm_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string prom_value(double v) {
  if (v == static_cast<double>(static_cast<long long>(v))) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  return fmt_double(v);
}

}  // namespace

IntervalCols scale_interval(double t0, double t1, double total, int width) {
  IntervalCols ic;
  ic.c0 = static_cast<int>(t0 / total * (width - 1));
  ic.c1 = std::max(static_cast<int>(t1 / total * (width - 1)), ic.c0);
  return ic;
}

std::string render_interval_rows(const std::vector<IntervalRow>& rows,
                                 double total, int width) {
  SPMVM_REQUIRE(width >= 16, "timeline width too small");
  std::ostringstream os;
  if (total <= 0.0) {
    os << "(empty timeline)\n";
    return os.str();
  }

  std::size_t label_w = 0;
  for (const auto& row : rows) label_w = std::max(label_w, row.actor.size());

  for (const auto& row : rows) {
    std::string line(static_cast<std::size_t>(width), '.');
    for (const auto& iv : row.intervals) {
      const IntervalCols ic = scale_interval(iv.t0, iv.t1, total, width);
      line[static_cast<std::size_t>(ic.c0)] = '[';
      line[static_cast<std::size_t>(ic.c1)] = ']';
      // Fill with the first letters of the label.
      for (int c = ic.c0 + 1; c < ic.c1; ++c) {
        const std::size_t li = static_cast<std::size_t>(c - ic.c0 - 1);
        line[static_cast<std::size_t>(c)] =
            li < iv.label.size() ? iv.label[li] : '-';
      }
    }
    os << row.actor << std::string(label_w - row.actor.size(), ' ') << " |"
       << line << "|\n";
  }
  char end_label[32];
  std::snprintf(end_label, sizeof(end_label), "%.1f us", total * 1e6);
  os << std::string(label_w, ' ') << " 0"
     << std::string(static_cast<std::size_t>(
                        std::max(1, width - 1 -
                                        static_cast<int>(std::string(end_label).size()))),
                    ' ')
     << end_label << "\n";
  return os.str();
}

std::string ascii_trace(const std::vector<TraceEvent>& events,
                        const std::vector<TraceThread>& threads, int width,
                        std::uint16_t max_depth) {
  std::uint64_t origin = ~std::uint64_t{0};
  std::uint64_t end = 0;
  for (const auto& e : events) {
    origin = std::min(origin, e.t0_ns);
    end = std::max(end, e.t1_ns);
  }
  std::vector<IntervalRow> rows;
  for (const auto& t : threads) {
    IntervalRow row;
    row.actor = display_thread_name(t);
    for (const auto& e : events) {
      if (e.tid != t.tid || e.depth > max_depth) continue;
      row.intervals.push_back(
          {e.name, static_cast<double>(e.t0_ns - origin) * 1e-9,
           static_cast<double>(e.t1_ns - origin) * 1e-9});
    }
    if (!row.intervals.empty()) rows.push_back(std::move(row));
  }
  const double total =
      events.empty() ? 0.0 : static_cast<double>(end - origin) * 1e-9;
  return render_interval_rows(rows, total, width);
}

std::string chrome_trace_json(const std::vector<TraceEvent>& events,
                              const std::vector<TraceThread>& threads) {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const auto& t : threads) {
    if (!first) os << ",";
    first = false;
    os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":" << t.tid
       << ",\"args\":{\"name\":\"" << json_escape(display_thread_name(t))
       << "\"}}";
  }
  for (const auto& e : events) {
    if (!first) os << ",";
    first = false;
    os << "{\"ph\":\"X\",\"name\":\"" << json_escape(e.name ? e.name : "?")
       << "\",\"pid\":0,\"tid\":" << e.tid << ",\"ts\":" << fmt_us(e.t0_ns)
       << ",\"dur\":" << fmt_us(e.t1_ns - e.t0_ns) << ",\"args\":{\"depth\":"
       << e.depth;
    if (e.bytes > 0) {
      os << ",\"bytes\":" << e.bytes;
      if (e.t1_ns > e.t0_ns)
        // 1 byte/ns == 1 GB/s, so the effective bandwidth falls out of
        // the span itself.
        os << ",\"GB/s\":"
           << fmt_double(static_cast<double>(e.bytes) /
                         static_cast<double>(e.t1_ns - e.t0_ns));
    }
    for (int i = 0; i < e.n_args; ++i)
      os << ",\"" << json_escape(e.arg_name[i])
         << "\":" << fmt_double(e.arg_value[i]);
    os << "}}";
  }
  os << "]}";
  return os.str();
}

std::string chrome_trace_json() {
  return chrome_trace_json(collect(), trace_threads());
}

bool write_chrome_trace(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << chrome_trace_json();
  return static_cast<bool>(out);
}

std::string prometheus_text(const std::vector<MetricSample>& samples) {
  std::ostringstream os;
  for (const auto& s : samples) {
    const std::string name = prom_name(s.name);
    switch (s.kind) {
      case MetricKind::counter:
        os << "# TYPE " << name << " counter\n"
           << name << " " << prom_value(s.value) << "\n";
        break;
      case MetricKind::gauge:
        os << "# TYPE " << name << " gauge\n"
           << name << " " << prom_value(s.value) << "\n";
        break;
      case MetricKind::histogram: {
        // Exposed as a summary: _count/_sum plus min/max gauges (the
        // bin-1 histograms are exact, so no quantile estimation needed).
        double sum = 0.0;
        const auto& bins = s.hist.bins();
        for (std::size_t v = 0; v < bins.size(); ++v)
          sum += static_cast<double>(v) * static_cast<double>(bins[v]);
        os << "# TYPE " << name << " summary\n"
           << name << "_count " << prom_value(s.value) << "\n"
           << name << "_sum " << prom_value(sum) << "\n";
        os << "# TYPE " << name << "_min gauge\n"
           << name << "_min " << s.hist.min_value() << "\n";
        os << "# TYPE " << name << "_max gauge\n"
           << name << "_max " << s.hist.max_value() << "\n";
        break;
      }
    }
  }
  return os.str();
}

std::string prometheus_text() { return prometheus_text(metrics_snapshot()); }

}  // namespace spmvm::obs
