#include "obs/trace_export.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "util/error.hpp"

namespace spmvm::obs {

namespace {

/// JSON string escaping for names/labels (control chars, quote, slash).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Microseconds with nanosecond resolution, fixed notation (Chrome's
/// "ts"/"dur" fields).
std::string fmt_us(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

std::string display_thread_name(const TraceThread& t) {
  return t.name.empty() ? "thread " + std::to_string(t.tid) : t.name;
}

/// Rank lane → Chrome pid: rank r gets pid r + 1 so the unranked
/// process lane keeps pid 0 (single-process traces are unchanged).
int rank_pid(std::int32_t rank) { return rank < 0 ? 0 : rank + 1; }

std::string pid_lane_name(int pid) {
  return pid == 0 ? "process" : "rank " + std::to_string(pid - 1);
}

/// Prometheus label-value escaping per the text exposition format:
/// exactly backslash, double-quote and line feed are escaped — unlike
/// JSON, tabs and other control bytes pass through verbatim.
std::string prom_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// HELP-line escaping: only backslash and line feed (quotes are legal).
std::string prom_help_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\')
      out += "\\\\";
    else if (c == '\n')
      out += "\\n";
    else
      out += c;
  }
  return out;
}

/// Prometheus metric name: sanitized to [a-zA-Z0-9_:], "spmvm_" prefix.
std::string prom_name(const std::string& name) {
  std::string out = "spmvm_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

/// Split "base{key=value,...}" into the sanitized base name and a
/// rendered Prometheus label block (`{key="value",...}`, empty when the
/// registry name carries no labels).
struct PromParts {
  std::string base;    // sanitized, "spmvm_" prefixed
  std::string labels;  // "" or "{k=\"v\",...}"
};
PromParts prom_parts(const std::string& name) {
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}')
    return {prom_name(name), ""};
  PromParts p;
  p.base = prom_name(name.substr(0, brace));
  std::string rendered = "{";
  std::size_t at = brace + 1;
  const std::size_t end = name.size() - 1;
  while (at < end) {
    std::size_t comma = name.find(',', at);
    if (comma == std::string::npos || comma > end) comma = end;
    const std::string pair = name.substr(at, comma - at);
    const std::size_t eq = pair.find('=');
    if (rendered.size() > 1) rendered += ",";
    if (eq == std::string::npos) {
      rendered += prom_name(pair).substr(6) + "=\"\"";
    } else {
      rendered += prom_name(pair.substr(0, eq)).substr(6) + "=\"" +
                  prom_escape(pair.substr(eq + 1)) + "\"";
    }
    at = comma + 1;
  }
  p.labels = rendered + "}";
  return p;
}

/// Exact q-quantile of a bin-1 histogram: the smallest value whose
/// cumulative count reaches q·total (nearest-rank definition).
double exact_quantile(const Histogram& h, double q) {
  const auto total = static_cast<double>(h.total());
  if (total <= 0.0) return 0.0;
  const auto& bins = h.bins();
  const double target = q * total;
  double cum = 0.0;
  for (std::size_t v = 0; v < bins.size(); ++v) {
    cum += static_cast<double>(bins[v]);
    if (cum >= target) return static_cast<double>(v);
  }
  return static_cast<double>(bins.empty() ? 0 : bins.size() - 1);
}

/// Merge a quantile label into an existing (possibly empty) label block.
std::string with_quantile(const std::string& labels, const char* q) {
  if (labels.empty()) return std::string("{quantile=\"") + q + "\"}";
  return labels.substr(0, labels.size() - 1) + ",quantile=\"" + q + "\"}";
}

std::string prom_value(double v) {
  if (v == static_cast<double>(static_cast<long long>(v))) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  return fmt_double(v);
}

}  // namespace

IntervalCols scale_interval(double t0, double t1, double total, int width) {
  IntervalCols ic;
  ic.c0 = static_cast<int>(t0 / total * (width - 1));
  ic.c1 = std::max(static_cast<int>(t1 / total * (width - 1)), ic.c0);
  return ic;
}

std::string render_interval_rows(const std::vector<IntervalRow>& rows,
                                 double total, int width) {
  SPMVM_REQUIRE(width >= 16, "timeline width too small");
  std::ostringstream os;
  if (total <= 0.0) {
    os << "(empty timeline)\n";
    return os.str();
  }

  std::size_t label_w = 0;
  for (const auto& row : rows) label_w = std::max(label_w, row.actor.size());

  for (const auto& row : rows) {
    std::string line(static_cast<std::size_t>(width), '.');
    for (const auto& iv : row.intervals) {
      const IntervalCols ic = scale_interval(iv.t0, iv.t1, total, width);
      line[static_cast<std::size_t>(ic.c0)] = '[';
      line[static_cast<std::size_t>(ic.c1)] = ']';
      // Fill with the first letters of the label.
      for (int c = ic.c0 + 1; c < ic.c1; ++c) {
        const std::size_t li = static_cast<std::size_t>(c - ic.c0 - 1);
        line[static_cast<std::size_t>(c)] =
            li < iv.label.size() ? iv.label[li] : '-';
      }
    }
    os << row.actor << std::string(label_w - row.actor.size(), ' ') << " |"
       << line << "|\n";
  }
  char end_label[32];
  std::snprintf(end_label, sizeof(end_label), "%.1f us", total * 1e6);
  os << std::string(label_w, ' ') << " 0"
     << std::string(static_cast<std::size_t>(
                        std::max(1, width - 1 -
                                        static_cast<int>(std::string(end_label).size()))),
                    ' ')
     << end_label << "\n";
  return os.str();
}

std::string ascii_trace(const std::vector<TraceEvent>& events,
                        const std::vector<TraceThread>& threads, int width,
                        std::uint16_t max_depth) {
  std::uint64_t origin = ~std::uint64_t{0};
  std::uint64_t end = 0;
  for (const auto& e : events) {
    origin = std::min(origin, e.t0_ns);
    end = std::max(end, e.t1_ns);
  }
  std::vector<IntervalRow> rows;
  for (const auto& t : threads) {
    IntervalRow row;
    row.actor = display_thread_name(t);
    for (const auto& e : events) {
      if (e.tid != t.tid || e.depth > max_depth) continue;
      row.intervals.push_back(
          {e.name, static_cast<double>(e.t0_ns - origin) * 1e-9,
           static_cast<double>(e.t1_ns - origin) * 1e-9});
    }
    if (!row.intervals.empty()) rows.push_back(std::move(row));
  }
  const double total =
      events.empty() ? 0.0 : static_cast<double>(end - origin) * 1e-9;
  return render_interval_rows(rows, total, width);
}

std::string chrome_trace_json(const std::vector<TraceEvent>& events,
                              const std::vector<TraceThread>& threads) {
  // Lay out one pid lane per rank. A thread's lane comes from its
  // registry rank (set_rank) and falls back to the rank its spans
  // carry, so merged traces and live in-process captures agree.
  std::map<std::uint32_t, int> tid_pid;
  for (const auto& t : threads) tid_pid[t.tid] = rank_pid(t.rank);
  std::set<int> pids;
  for (const auto& e : events) {
    const int pid = rank_pid(e.rank);
    tid_pid.emplace(e.tid, pid);
    pids.insert(pid);
  }
  for (const auto& t : threads) pids.insert(tid_pid[t.tid]);

  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",";
    first = false;
  };
  if (pids.size() > 1 || (pids.size() == 1 && *pids.begin() != 0)) {
    for (const int pid : pids) {
      sep();
      os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
         << ",\"tid\":0,\"args\":{\"name\":\"" << pid_lane_name(pid)
         << "\"}}";
      sep();
      os << "{\"ph\":\"M\",\"name\":\"process_sort_index\",\"pid\":" << pid
         << ",\"tid\":0,\"args\":{\"sort_index\":" << pid << "}}";
    }
  }
  for (const auto& t : threads) {
    sep();
    os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << tid_pid[t.tid]
       << ",\"tid\":" << t.tid << ",\"args\":{\"name\":\""
       << json_escape(display_thread_name(t)) << "\"}}";
  }
  for (const auto& e : events) {
    const int pid = rank_pid(e.rank);
    sep();
    os << "{\"ph\":\"X\",\"name\":\"" << json_escape(e.name ? e.name : "?")
       << "\",\"pid\":" << pid << ",\"tid\":" << e.tid
       << ",\"ts\":" << fmt_us(e.t0_ns)
       << ",\"dur\":" << fmt_us(e.t1_ns - e.t0_ns) << ",\"args\":{\"depth\":"
       << e.depth;
    if (e.bytes > 0) {
      os << ",\"bytes\":" << e.bytes;
      if (e.t1_ns > e.t0_ns)
        // 1 byte/ns == 1 GB/s, so the effective bandwidth falls out of
        // the span itself.
        os << ",\"GB/s\":"
           << fmt_double(static_cast<double>(e.bytes) /
                         static_cast<double>(e.t1_ns - e.t0_ns));
    }
    for (int i = 0; i < e.n_args; ++i)
      os << ",\"" << json_escape(e.arg_name[i])
         << "\":" << fmt_double(e.arg_value[i]);
    os << "}}";
    if (e.flow != FlowDir::none && e.flow_id != 0) {
      // Flow arrow endpoint bound to this slice: "s" starts the arrow
      // at the send span, "f" (binding point "e" = enclosing slice)
      // terminates it at the matching receive.
      sep();
      os << "{\"ph\":\"" << (e.flow == FlowDir::send ? "s" : "f") << "\"";
      if (e.flow == FlowDir::recv) os << ",\"bp\":\"e\"";
      os << ",\"cat\":\"msg\",\"name\":\"msg\",\"id\":" << e.flow_id
         << ",\"pid\":" << pid << ",\"tid\":" << e.tid
         << ",\"ts\":" << fmt_us(e.t0_ns) << "}";
    }
  }
  os << "]}";
  return os.str();
}

MergedTrace merge_traces(const std::vector<RankTrace>& parts) {
  MergedTrace out;
  std::uint32_t next_tid = 0;
  for (const auto& part : parts) {
    // Remap this part's thread ids into one shared id space (separate
    // processes number their threads independently).
    std::map<std::uint32_t, std::uint32_t> remap;
    for (const auto& t : part.threads) {
      remap.emplace(t.tid, next_tid + static_cast<std::uint32_t>(remap.size()));
    }
    for (const auto& e : part.events) remap.emplace(e.tid, next_tid + static_cast<std::uint32_t>(remap.size()));
    for (const auto& t : part.threads) {
      TraceThread mt = t;
      mt.tid = remap.at(t.tid);
      mt.rank = part.rank;
      out.threads.push_back(std::move(mt));
    }
    for (const auto& e : part.events) {
      TraceEvent me = e;
      me.tid = remap.at(e.tid);
      me.rank = part.rank;
      me.t0_ns += part.epoch_ns;
      me.t1_ns += part.epoch_ns;
      out.events.push_back(me);
    }
    next_tid += static_cast<std::uint32_t>(remap.size());
  }
  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.t0_ns < b.t0_ns;
                   });
  std::stable_sort(out.threads.begin(), out.threads.end(),
                   [](const TraceThread& a, const TraceThread& b) {
                     return a.tid < b.tid;
                   });
  return out;
}

std::vector<RankTrace> split_trace_by_rank(
    const std::vector<TraceEvent>& events,
    const std::vector<TraceThread>& threads) {
  std::map<int, RankTrace> parts;
  const auto part_for = [&](int rank) -> RankTrace& {
    RankTrace& p = parts[rank];
    p.rank = rank;
    return p;
  };
  // A thread belongs to its registry lane; a thread only known through
  // its events (e.g. exited before being named) follows its spans.
  std::map<std::uint32_t, int> tid_rank;
  for (const auto& t : threads) tid_rank[t.tid] = t.rank;
  for (const auto& e : events) tid_rank.emplace(e.tid, e.rank);
  for (const auto& t : threads) part_for(tid_rank[t.tid]).threads.push_back(t);
  for (const auto& e : events)
    part_for(tid_rank[e.tid]).events.push_back(e);
  std::vector<RankTrace> out;
  out.reserve(parts.size());
  for (auto& [rank, part] : parts) out.push_back(std::move(part));
  return out;
}

std::string chrome_trace_json() {
  return chrome_trace_json(collect(), trace_threads());
}

bool write_chrome_trace(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << chrome_trace_json();
  return static_cast<bool>(out);
}

std::string prometheus_text(const std::vector<MetricSample>& samples) {
  std::ostringstream os;
  // One "# HELP"/"# TYPE" header pair per metric base name: labeled
  // samples of the same base (comm.bytes_sent{peer=0}, {peer=1}, ...)
  // are adjacent in the sorted snapshot and share their header. HELP is
  // emitted only when the site registered text via set_metric_help.
  std::string last_typed;
  const auto type_header = [&](const std::string& base, const char* kind,
                               const std::string& registry_name) {
    if (base == last_typed) return;
    last_typed = base;
    const std::string help = metric_help(registry_name);
    if (!help.empty())
      os << "# HELP " << base << " " << prom_help_escape(help) << "\n";
    os << "# TYPE " << base << " " << kind << "\n";
  };
  for (const auto& s : samples) {
    const PromParts p = prom_parts(s.name);
    const std::string sample_name = p.base + p.labels;
    switch (s.kind) {
      case MetricKind::counter:
        type_header(p.base, "counter", s.name);
        os << sample_name << " " << prom_value(s.value) << "\n";
        break;
      case MetricKind::gauge:
        type_header(p.base, "gauge", s.name);
        os << sample_name << " " << prom_value(s.value) << "\n";
        break;
      case MetricKind::histogram: {
        // Exposed as a summary: exact p50/p95/p99 quantiles (the bin-1
        // histograms hold full counts per value, so the nearest-rank
        // quantile is exact, not estimated), _count/_sum, plus min/max
        // gauges.
        double sum = 0.0;
        const auto& bins = s.hist.bins();
        for (std::size_t v = 0; v < bins.size(); ++v)
          sum += static_cast<double>(v) * static_cast<double>(bins[v]);
        type_header(p.base, "summary", s.name);
        static constexpr struct {
          const char* label;
          double q;
        } kQuantiles[] = {{"0.5", 0.5}, {"0.95", 0.95}, {"0.99", 0.99}};
        for (const auto& [label, q] : kQuantiles)
          os << p.base << with_quantile(p.labels, label) << " "
             << prom_value(exact_quantile(s.hist, q)) << "\n";
        os << p.base << "_count" << p.labels << " " << prom_value(s.value)
           << "\n"
           << p.base << "_sum" << p.labels << " " << prom_value(sum) << "\n";
        type_header(p.base + "_min", "gauge", s.name);
        os << p.base << "_min" << p.labels << " " << s.hist.min_value()
           << "\n";
        type_header(p.base + "_max", "gauge", s.name);
        os << p.base << "_max" << p.labels << " " << s.hist.max_value()
           << "\n";
        break;
      }
      case MetricKind::latency: {
        // Exponential-bucket latency histograms export as a summary in
        // microseconds: nearest-rank p50/p95/p99 over the power-of-two
        // buckets (each quantile reports its covering bucket's upper
        // bound, so the values are deterministic), _count/_sum, plus
        // exact min/max gauges.
        type_header(p.base, "summary", s.name);
        static constexpr struct {
          const char* label;
          double q;
        } kQuantiles[] = {{"0.5", 0.5}, {"0.95", 0.95}, {"0.99", 0.99}};
        for (const auto& [label, q] : kQuantiles)
          os << p.base << with_quantile(p.labels, label) << " "
             << prom_value(s.lat.quantile_us(q)) << "\n";
        os << p.base << "_count" << p.labels << " "
           << prom_value(static_cast<double>(s.lat.count)) << "\n"
           << p.base << "_sum" << p.labels << " " << prom_value(s.lat.sum_us)
           << "\n";
        type_header(p.base + "_min", "gauge", s.name);
        os << p.base << "_min" << p.labels << " " << prom_value(s.lat.min_us)
           << "\n";
        type_header(p.base + "_max", "gauge", s.name);
        os << p.base << "_max" << p.labels << " " << prom_value(s.lat.max_us)
           << "\n";
        break;
      }
    }
  }
  return os.str();
}

std::string prometheus_text() { return prometheus_text(metrics_snapshot()); }

}  // namespace spmvm::obs
