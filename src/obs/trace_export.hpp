// Exporters for the trace/metrics layer:
//   - Chrome trace JSON (open in chrome://tracing or https://ui.perfetto.dev)
//   - Prometheus text exposition format for the metrics registry
//   - ASCII interval rows — the scaled-time-axis renderer shared by
//     dist/Timeline (Fig. 4) and ascii_trace()
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace spmvm::obs {

// ---- ASCII interval rendering ---------------------------------------------

/// Character columns [c0, c1] of the interval [t0, t1] on a time axis of
/// `total` seconds rendered into `width` columns. c1 is clamped to >= c0.
struct IntervalCols {
  int c0 = 0;
  int c1 = 0;
};
IntervalCols scale_interval(double t0, double t1, double total, int width);

/// One renderable row: a named actor with labeled intervals (seconds).
struct IntervalRow {
  struct Interval {
    std::string label;
    double t0 = 0.0;
    double t1 = 0.0;
  };
  std::string actor;
  std::vector<Interval> intervals;
};

/// Render rows over a shared scaled time axis of `total` seconds:
/// "actor |[label---]....|" per row plus a "0 ... N us" footer. This is
/// the renderer behind dist/Timeline::render (ASCII Fig. 4).
std::string render_interval_rows(const std::vector<IntervalRow>& rows,
                                 double total, int width);

/// Render a collected trace as interval rows, one per thread, spans at
/// depth <= max_depth (deeper nesting would overpaint its parent).
std::string ascii_trace(const std::vector<TraceEvent>& events,
                        const std::vector<TraceThread>& threads,
                        int width = 72, std::uint16_t max_depth = 0);

// ---- multi-rank trace merging ---------------------------------------------

/// One rank's recorded trace, ready for merging. `epoch_ns` is the
/// offset of this rank's trace epoch on the shared clock: merge shifts
/// every timestamp by it, so traces captured by separate processes with
/// independent epochs line up on one axis (the in-process msg runtime
/// shares a single epoch, so its parts use 0).
struct RankTrace {
  int rank = -1;  // -1 = the unranked process lane
  std::uint64_t epoch_ns = 0;
  std::vector<TraceEvent> events;
  std::vector<TraceThread> threads;
};

/// A merged multi-rank trace: events rebased onto the shared epoch and
/// stamped with their part's rank, thread ids remapped to be unique
/// across parts, events ordered by start time.
struct MergedTrace {
  std::vector<TraceEvent> events;
  std::vector<TraceThread> threads;
};

/// Merge per-rank traces into one timeline (see RankTrace). Exporting
/// the result draws one pid lane per rank with send→recv flow arrows
/// between the lanes.
MergedTrace merge_traces(const std::vector<RankTrace>& parts);

/// Split an in-process trace (ranks stamped by obs::set_rank) into
/// per-rank parts: one part per rank lane present, plus a rank == -1
/// part when unranked spans or named rankless threads exist. The
/// inverse of merge_traces for single-process multi-rank runs.
std::vector<RankTrace> split_trace_by_rank(
    const std::vector<TraceEvent>& events,
    const std::vector<TraceThread>& threads);

// ---- Chrome trace JSON ----------------------------------------------------

/// Serialize spans as Chrome trace "X" (complete) events plus process/
/// thread name metadata. Timestamps are microseconds since the trace
/// epoch; bytes and numeric attributes appear under "args" (with a
/// derived "GB/s" when a span carries bytes). Rank-stamped spans land
/// in their own pid lane (pid = rank + 1, named "rank N"; unranked
/// spans stay in pid 0), and spans carrying flow ids additionally emit
/// Chrome flow events ("s"/"f") so matched send→recv pairs render as
/// arrows across rank lanes.
std::string chrome_trace_json(const std::vector<TraceEvent>& events,
                              const std::vector<TraceThread>& threads);

/// Collect the current trace and serialize it.
std::string chrome_trace_json();

/// Collect, serialize and write to `path`; false on I/O failure.
bool write_chrome_trace(const std::string& path);

// ---- Prometheus text ------------------------------------------------------

/// Prometheus exposition text: "# HELP" (when registered via
/// set_metric_help) and "# TYPE" comments plus sample line(s) per
/// metric. Names are sanitized to [a-zA-Z0-9_:] and prefixed "spmvm_".
/// Histograms are exposed as summaries: exact p50/p95/p99
/// `{quantile="..."}` samples (bin-1 histograms hold full counts, so
/// nearest-rank quantiles are exact) plus _count/_sum/_min/_max. A
/// metric name of the form "base{key=value,...}" renders with
/// Prometheus label syntax — `spmvm_base{key="value"}`, label values
/// escaped per the exposition format (backslash, quote, newline) — and
/// consecutive samples of one base share a single header (the per-peer
/// comm counters `comm.bytes_sent{peer=N}` rely on this).
std::string prometheus_text(const std::vector<MetricSample>& samples);

/// Snapshot the metrics registry and serialize it.
std::string prometheus_text();

}  // namespace spmvm::obs
