// Exporters for the trace/metrics layer:
//   - Chrome trace JSON (open in chrome://tracing or https://ui.perfetto.dev)
//   - Prometheus text exposition format for the metrics registry
//   - ASCII interval rows — the scaled-time-axis renderer shared by
//     dist/Timeline (Fig. 4) and ascii_trace()
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace spmvm::obs {

// ---- ASCII interval rendering ---------------------------------------------

/// Character columns [c0, c1] of the interval [t0, t1] on a time axis of
/// `total` seconds rendered into `width` columns. c1 is clamped to >= c0.
struct IntervalCols {
  int c0 = 0;
  int c1 = 0;
};
IntervalCols scale_interval(double t0, double t1, double total, int width);

/// One renderable row: a named actor with labeled intervals (seconds).
struct IntervalRow {
  struct Interval {
    std::string label;
    double t0 = 0.0;
    double t1 = 0.0;
  };
  std::string actor;
  std::vector<Interval> intervals;
};

/// Render rows over a shared scaled time axis of `total` seconds:
/// "actor |[label---]....|" per row plus a "0 ... N us" footer. This is
/// the renderer behind dist/Timeline::render (ASCII Fig. 4).
std::string render_interval_rows(const std::vector<IntervalRow>& rows,
                                 double total, int width);

/// Render a collected trace as interval rows, one per thread, spans at
/// depth <= max_depth (deeper nesting would overpaint its parent).
std::string ascii_trace(const std::vector<TraceEvent>& events,
                        const std::vector<TraceThread>& threads,
                        int width = 72, std::uint16_t max_depth = 0);

// ---- Chrome trace JSON ----------------------------------------------------

/// Serialize spans as Chrome trace "X" (complete) events plus thread
/// name metadata. Timestamps are microseconds since the trace epoch;
/// bytes and numeric attributes appear under "args" (with a derived
/// "GB/s" when a span carries bytes).
std::string chrome_trace_json(const std::vector<TraceEvent>& events,
                              const std::vector<TraceThread>& threads);

/// Collect the current trace and serialize it.
std::string chrome_trace_json();

/// Collect, serialize and write to `path`; false on I/O failure.
bool write_chrome_trace(const std::string& path);

// ---- Prometheus text ------------------------------------------------------

/// Prometheus exposition text: "# TYPE" comment plus sample line(s) per
/// metric. Names are sanitized to [a-zA-Z0-9_:] and prefixed "spmvm_".
/// Histograms emit _count/_sum/_min/_max samples.
std::string prometheus_text(const std::vector<MetricSample>& samples);

/// Snapshot the metrics registry and serialize it.
std::string prometheus_text();

}  // namespace spmvm::obs
