#include "perfmodel/balance.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace spmvm::perfmodel {

double code_balance(std::size_t scalar_size, double alpha, double nnzr) {
  SPMVM_REQUIRE(nnzr > 0.0, "N_nzr must be positive");
  SPMVM_REQUIRE(alpha >= 0.0, "alpha must be non-negative");
  const auto s = static_cast<double>(scalar_size);
  return ((s + 4.0) + s * alpha + 2.0 * s / nnzr) / 2.0;
}

double code_balance_stored(std::size_t stored_bytes, std::size_t nnz,
                           std::size_t n_rows, std::size_t scalar_size,
                           double alpha) {
  SPMVM_REQUIRE(nnz > 0, "nnz must be positive");
  SPMVM_REQUIRE(alpha >= 0.0, "alpha must be non-negative");
  const auto s = static_cast<double>(scalar_size);
  const double bytes = static_cast<double>(stored_bytes) +
                       s * alpha * static_cast<double>(nnz) +
                       2.0 * s * static_cast<double>(n_rows);
  return bytes / (2.0 * static_cast<double>(nnz));
}

double alpha_ideal(double nnzr) {
  SPMVM_REQUIRE(nnzr > 0.0, "N_nzr must be positive");
  return 1.0 / nnzr;
}

double split_kernel_penalty(std::size_t scalar_size, double nnzr) {
  SPMVM_REQUIRE(nnzr > 0.0, "N_nzr must be positive");
  return static_cast<double>(scalar_size) / nnzr;
}

double bandwidth_bound_gflops(double bandwidth_gbs, double balance) {
  SPMVM_REQUIRE(balance > 0.0, "balance must be positive");
  return bandwidth_gbs / balance;
}

double roofline_gflops(double peak_gflops, double bandwidth_gbs,
                       double balance) {
  return std::min(peak_gflops, bandwidth_bound_gflops(bandwidth_gbs, balance));
}

}  // namespace spmvm::perfmodel
