// Code-balance model, Eq. 1 of the paper.
//
// Worst-case balance of the ELLPACK/pJDS kernels:
//   B_W = ( (s + 4) + s·α + 2·s/N_nzr ) / 2   bytes/flop
// with s the scalar size (8 in the paper's DP formula), 4 bytes of column
// index per non-zero, α ∈ [1/N_nzr, 1] the RHS re-load factor, and the
// per-row result update (load + store of c[i]).
#pragma once

#include <cstddef>

namespace spmvm::perfmodel {

/// Bytes per flop of the spMVM kernel (Eq. 1, generalized to SP/DP).
double code_balance(std::size_t scalar_size, double alpha, double nnzr);

/// Eq. 1 generalized to an arbitrary storage layout: `stored_bytes` is the
/// format's full device footprint (values + indices + aux arrays, i.e.
/// Footprint::total_bytes), so zero fill and per-format metadata enter the
/// balance instead of the idealized (s+4) bytes per non-zero. RHS gather
/// traffic (s·α per non-zero) and the result update (2·s per row) are
/// unchanged from Eq. 1. Used by the `auto` format plan to rank formats at
/// measured α.
double code_balance_stored(std::size_t stored_bytes, std::size_t nnz,
                           std::size_t n_rows, std::size_t scalar_size,
                           double alpha);

/// Lower bound of α: every RHS element loaded exactly once (κ = 0 in [4]).
double alpha_ideal(double nnzr);

/// Splitting the spMVM into local and non-local parts writes the result
/// twice, adding 2·s/N_nzr bytes/flop (Sec. III-A, naive overlap).
double split_kernel_penalty(std::size_t scalar_size, double nnzr);

/// Bandwidth-limited throughput in GF/s: bandwidth / balance.
double bandwidth_bound_gflops(double bandwidth_gbs, double balance);

/// Roofline: min(peak, bandwidth-bound) in GF/s.
double roofline_gflops(double peak_gflops, double bandwidth_gbs,
                       double balance);

}  // namespace spmvm::perfmodel
