// Code-balance model, Eq. 1 of the paper.
//
// Worst-case balance of the ELLPACK/pJDS kernels:
//   B_W = ( (s + 4) + s·α + 2·s/N_nzr ) / 2   bytes/flop
// with s the scalar size (8 in the paper's DP formula), 4 bytes of column
// index per non-zero, α ∈ [1/N_nzr, 1] the RHS re-load factor, and the
// per-row result update (load + store of c[i]).
//
// Header-only on purpose: the Eq. 1 arithmetic is consumed by layers below
// spmvm_perfmodel in the link order (obs/ledger, gpusim) that must not link
// the perfmodel library to avoid a dependency cycle.
#pragma once

#include <algorithm>
#include <cstddef>

#include "util/error.hpp"

namespace spmvm::perfmodel {

/// Bytes per flop of the spMVM kernel (Eq. 1, generalized to SP/DP).
inline double code_balance(std::size_t scalar_size, double alpha,
                           double nnzr) {
  SPMVM_REQUIRE(nnzr > 0.0, "N_nzr must be positive");
  SPMVM_REQUIRE(alpha >= 0.0, "alpha must be non-negative");
  const auto s = static_cast<double>(scalar_size);
  return ((s + 4.0) + s * alpha + 2.0 * s / nnzr) / 2.0;
}

/// Eq. 1 generalized to an arbitrary storage layout: `stored_bytes` is the
/// format's full device footprint (values + indices + aux arrays, i.e.
/// Footprint::total_bytes), so zero fill and per-format metadata enter the
/// balance instead of the idealized (s+4) bytes per non-zero. RHS gather
/// traffic (s·α per non-zero) and the result update (2·s per row) are
/// unchanged from Eq. 1. Used by the `auto` format plan to rank formats at
/// measured α.
inline double code_balance_stored(std::size_t stored_bytes, std::size_t nnz,
                                  std::size_t n_rows, std::size_t scalar_size,
                                  double alpha) {
  SPMVM_REQUIRE(nnz > 0, "nnz must be positive");
  SPMVM_REQUIRE(alpha >= 0.0, "alpha must be non-negative");
  const auto s = static_cast<double>(scalar_size);
  const double bytes = static_cast<double>(stored_bytes) +
                       s * alpha * static_cast<double>(nnz) +
                       2.0 * s * static_cast<double>(n_rows);
  return bytes / (2.0 * static_cast<double>(nnz));
}

/// Lower bound of α: every RHS element loaded exactly once (κ = 0 in [4]).
inline double alpha_ideal(double nnzr) {
  SPMVM_REQUIRE(nnzr > 0.0, "N_nzr must be positive");
  return 1.0 / nnzr;
}

/// Splitting the spMVM into local and non-local parts writes the result
/// twice, adding 2·s/N_nzr bytes/flop (Sec. III-A, naive overlap).
inline double split_kernel_penalty(std::size_t scalar_size, double nnzr) {
  SPMVM_REQUIRE(nnzr > 0.0, "N_nzr must be positive");
  return static_cast<double>(scalar_size) / nnzr;
}

/// Bandwidth-limited throughput in GF/s: bandwidth / balance.
inline double bandwidth_bound_gflops(double bandwidth_gbs, double balance) {
  SPMVM_REQUIRE(balance > 0.0, "balance must be positive");
  return bandwidth_gbs / balance;
}

/// Roofline: min(peak, bandwidth-bound) in GF/s.
inline double roofline_gflops(double peak_gflops, double bandwidth_gbs,
                              double balance) {
  return std::min(peak_gflops,
                  bandwidth_bound_gflops(bandwidth_gbs, balance));
}

}  // namespace spmvm::perfmodel
