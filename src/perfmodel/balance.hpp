// Code-balance model, Eq. 1 of the paper.
//
// Worst-case balance of the ELLPACK/pJDS kernels:
//   B_W = ( (s + 4) + s·α + 2·s/N_nzr ) / 2   bytes/flop
// with s the scalar size (8 in the paper's DP formula), 4 bytes of column
// index per non-zero, α ∈ [1/N_nzr, 1] the RHS re-load factor, and the
// per-row result update (load + store of c[i]).
#pragma once

#include <cstddef>

namespace spmvm::perfmodel {

/// Bytes per flop of the spMVM kernel (Eq. 1, generalized to SP/DP).
double code_balance(std::size_t scalar_size, double alpha, double nnzr);

/// Lower bound of α: every RHS element loaded exactly once (κ = 0 in [4]).
double alpha_ideal(double nnzr);

/// Splitting the spMVM into local and non-local parts writes the result
/// twice, adding 2·s/N_nzr bytes/flop (Sec. III-A, naive overlap).
double split_kernel_penalty(std::size_t scalar_size, double nnzr);

/// Bandwidth-limited throughput in GF/s: bandwidth / balance.
double bandwidth_bound_gflops(double bandwidth_gbs, double balance);

/// Roofline: min(peak, bandwidth-bound) in GF/s.
double roofline_gflops(double peak_gflops, double bandwidth_gbs,
                       double balance);

}  // namespace spmvm::perfmodel
