#include "perfmodel/model_eval.hpp"

#include "gpusim/pcie.hpp"
#include "perfmodel/balance.hpp"

namespace spmvm::perfmodel {

double deviation_pct(double predicted, double reference) {
  if (reference == 0.0) return 0.0;
  return 100.0 * (predicted - reference) / reference;
}

double ModelVsSim::model_vs_sim_pct() const {
  return deviation_pct(gflops_model, gflops_sim);
}

template <class T>
ModelVsSim evaluate(const gpusim::DeviceSpec& dev, const Csr<T>& a,
                    gpusim::FormatKind kind, bool ecc) {
  ModelVsSim r;
  gpusim::SimOptions opt;
  opt.ecc = ecc;
  const auto sim = gpusim::simulate_format(dev, a, kind, opt);
  r.alpha_measured = sim.stats.measured_alpha(sizeof(T));
  r.balance_model = code_balance(sizeof(T), r.alpha_measured, a.avg_row_len());
  r.balance_sim = sim.code_balance;
  r.gflops_model =
      bandwidth_bound_gflops(dev.bandwidth_bytes(ecc) / 1e9, r.balance_model);
  r.gflops_sim = sim.gflops;
  r.sim_seconds = sim.seconds;
  r.gflops_with_pcie =
      gpusim::with_pcie_transfers(dev, sim, a.n_rows, a.n_cols, sizeof(T))
          .gflops_total;
  return r;
}

template ModelVsSim evaluate(const gpusim::DeviceSpec&, const Csr<float>&,
                             gpusim::FormatKind, bool);
template ModelVsSim evaluate(const gpusim::DeviceSpec&, const Csr<double>&,
                             gpusim::FormatKind, bool);

}  // namespace spmvm::perfmodel
