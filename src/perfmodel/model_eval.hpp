// Cross-checks between the analytic model (Eqs. 1-4) and the simulator:
// predicted vs. simulated throughput for a given matrix, with α taken
// from the simulator's L2 measurement.
#pragma once

#include "gpusim/gpu_spmv.hpp"
#include "sparse/csr.hpp"

namespace spmvm::perfmodel {

struct ModelVsSim {
  double alpha_measured = 0.0;     // from the L2 simulation
  double balance_model = 0.0;      // Eq. 1 at the measured α
  double balance_sim = 0.0;        // DRAM bytes per flop in the simulator
  double gflops_model = 0.0;       // bandwidth / balance
  double gflops_sim = 0.0;         // simulator throughput
  double gflops_with_pcie = 0.0;   // simulator incl. host transfers
  double sim_seconds = 0.0;        // simulated kernel wall clock

  /// Signed deviation of the Eq. 1 prediction from the simulator, in %
  /// of the simulated value — the per-matrix cell of the suite's
  /// model-vs-measured validation table.
  double model_vs_sim_pct() const;
};

/// Signed relative deviation 100·(predicted - reference)/reference; 0
/// when the reference is 0.
double deviation_pct(double predicted, double reference);

/// Run format `kind` through the simulator and evaluate Eq. 1 at the α
/// the simulator measured — the apples-to-apples comparison behind the
/// model discussion of Sec. II-B.
template <class T>
ModelVsSim evaluate(const gpusim::DeviceSpec& dev, const Csr<T>& a,
                    gpusim::FormatKind kind, bool ecc);

extern template ModelVsSim evaluate(const gpusim::DeviceSpec&,
                                    const Csr<float>&, gpusim::FormatKind,
                                    bool);
extern template ModelVsSim evaluate(const gpusim::DeviceSpec&,
                                    const Csr<double>&, gpusim::FormatKind,
                                    bool);

}  // namespace spmvm::perfmodel
