#include "perfmodel/pcie_impact.hpp"

#include "util/error.hpp"

namespace spmvm::perfmodel {

double t_mvm_seconds(double n_rows, double nnzr, double alpha,
                     double bgpu_gbs) {
  SPMVM_REQUIRE(bgpu_gbs > 0.0, "GPU bandwidth must be positive");
  return 8.0 * n_rows * (nnzr * (alpha + 1.5) + 2.0) / (bgpu_gbs * 1e9);
}

double t_pci_seconds(double n_rows, double bpci_gbs) {
  SPMVM_REQUIRE(bpci_gbs > 0.0, "PCIe bandwidth must be positive");
  return 16.0 * n_rows / (bpci_gbs * 1e9);
}

double nnzr_upper_for_50pct_penalty(double bw_ratio, double alpha) {
  SPMVM_REQUIRE(bw_ratio > 1.0, "bandwidth ratio must exceed 1");
  return 2.0 * (bw_ratio - 1.0) / (alpha + 1.5);
}

double nnzr_upper_for_50pct_penalty_worst_alpha(double bw_ratio) {
  // α = 1/N_nzr makes Eq. 3 implicit:
  //   N (1/N + 3/2) <= 2 (r - 1) - ... => 1 + 1.5 N <= 2 (r - 1)
  SPMVM_REQUIRE(bw_ratio > 1.0, "bandwidth ratio must exceed 1");
  return (2.0 * (bw_ratio - 1.0) - 1.0) / 1.5;
}

double nnzr_lower_for_10pct_penalty(double bw_ratio, double alpha) {
  SPMVM_REQUIRE(bw_ratio > 0.1, "bandwidth ratio must exceed 0.1");
  return (20.0 * bw_ratio - 2.0) / (alpha + 1.5);
}

double nnzr_lower_for_10pct_penalty_worst_alpha(double bw_ratio) {
  //   N (1/N + 3/2) >= 20 r - 2  =>  N >= (20 r - 3) / 1.5
  SPMVM_REQUIRE(bw_ratio > 0.15, "bandwidth ratio must exceed 0.15");
  return (20.0 * bw_ratio - 3.0) / 1.5;
}

double pcie_time_fraction(double n_rows, double nnzr, double alpha,
                          double bgpu_gbs, double bpci_gbs) {
  const double t_mvm = t_mvm_seconds(n_rows, nnzr, alpha, bgpu_gbs);
  const double t_pci = t_pci_seconds(n_rows, bpci_gbs);
  return t_pci / (t_mvm + t_pci);
}

}  // namespace spmvm::perfmodel
