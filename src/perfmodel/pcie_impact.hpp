// PCIe-impact model, Eqs. 2-4 of the paper (double precision).
//
//   T_MVM = 8N [ N_nzr (α + 3/2) + 2 ] / B_GPU        (kernel)
//   T_PCI = 16N / B_PCI                               (RHS up + LHS down)
//
// From these, the favorable range of N_nzr:
//   >= 50% PCIe penalty (T_MVM <= T_PCI):  N_nzr <= 2 (B_GPU/B_PCI - 1) / (α + 3/2)   (Eq. 3)
//   <= 10% PCIe penalty (T_MVM >= 10 T_PCI): N_nzr >= (20 B_GPU/B_PCI - 2) / (α + 3/2) (Eq. 4)
#pragma once

namespace spmvm::perfmodel {

/// Kernel wallclock for an N-row DP spMVM at bandwidth `bgpu_gbs` (Eq. 2).
double t_mvm_seconds(double n_rows, double nnzr, double alpha,
                     double bgpu_gbs);

/// Host-transfer wallclock for the DP RHS/LHS vectors (Eq. 2).
double t_pci_seconds(double n_rows, double bpci_gbs);

/// Eq. 3: largest N_nzr that still suffers >= 50% PCIe penalty.
double nnzr_upper_for_50pct_penalty(double bw_ratio, double alpha);

/// Eq. 3 in the worst case α = 1/N_nzr (implicit in N_nzr, solved).
double nnzr_upper_for_50pct_penalty_worst_alpha(double bw_ratio);

/// Eq. 4: smallest N_nzr with <= 10% PCIe penalty.
double nnzr_lower_for_10pct_penalty(double bw_ratio, double alpha);

/// Eq. 4 in the worst case α = 1/N_nzr.
double nnzr_lower_for_10pct_penalty_worst_alpha(double bw_ratio);

/// Fraction of total time spent in PCIe transfers for given parameters.
double pcie_time_fraction(double n_rows, double nnzr, double alpha,
                          double bgpu_gbs, double bpci_gbs);

}  // namespace spmvm::perfmodel
