#include "serve/batcher.hpp"

#include "core/spmmv.hpp"

namespace spmvm::serve {

int target_batch_width(std::size_t scalar_size, double alpha, double nnzr,
                       int max_k, double min_gain) {
  if (max_k < 1) return 1;
  int k = 1;
  while (k < max_k) {
    const double bk = spmmv_code_balance(scalar_size, alpha, nnzr, k);
    const double bk1 = spmmv_code_balance(scalar_size, alpha, nnzr, k + 1);
    // B(k) is strictly decreasing in k with a shrinking step, so the
    // first below-threshold step ends the walk.
    if (bk <= 0.0 || (bk - bk1) / bk < min_gain) break;
    ++k;
  }
  return k;
}

}  // namespace spmvm::serve
