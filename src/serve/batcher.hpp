// The micro-batcher's width model (DESIGN.md §14).
//
// Coalescing k same-matrix requests into one block-RHS spMMV divides
// the matrix-traffic term of Eq. 1 by k (core/spmmv's extension of the
// code balance): B(k) = ((s+4)/k + s·α + 2s/nnzr) / 2 bytes/flop. The
// gain is steeply diminishing — the α and nnzr terms do not shrink —
// so waiting for ever-wider batches buys latency without bandwidth.
// target_batch_width() walks B(k) and stops at the last k whose step
// to k+1 still improves the balance by at least `min_gain` relative:
// the model-chosen sweet spot the batcher aims for before its max-wait
// deadline forces a launch.
#pragma once

#include <cstddef>

namespace spmvm::serve {

/// Smallest k in [1, max_k] at which widening the block by one more
/// vector improves the spMMV code balance by less than `min_gain`
/// (relative). alpha is the Eq. 1 RHS-traffic ratio, nnzr the average
/// non-zeros per row. Deterministic in its inputs.
int target_batch_width(std::size_t scalar_size, double alpha, double nnzr,
                       int max_k, double min_gain);

}  // namespace spmvm::serve
