#include "serve/queue.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace spmvm::serve {

namespace {

obs::Gauge& depth_gauge() {
  static obs::Gauge& g = obs::gauge("serve.queue_depth");
  return g;
}

}  // namespace

RequestQueue::RequestQueue(int capacity, int watermark)
    : capacity_(std::max(1, capacity)),
      watermark_(watermark >= 1 && watermark <= std::max(1, capacity)
                     ? watermark
                     : std::max(1, capacity)) {
  static const bool help = [] {
    obs::set_metric_help("serve.queue_depth",
                         "Requests admitted but not yet dequeued");
    obs::set_metric_help("serve.accepted",
                         "Requests admitted by the serve queue");
    obs::set_metric_help(
        "serve.rejected_full",
        "Requests shed by admission control (depth at watermark)");
    obs::set_metric_help("serve.rejected_shutdown",
                         "Requests rejected after shutdown began");
    return true;
  }();
  (void)help;
}

Admit RequestQueue::push(std::shared_ptr<Request> r) {
  static obs::Counter& c_accepted = obs::counter("serve.accepted");
  static obs::Counter& c_full = obs::counter("serve.rejected_full");
  static obs::Counter& c_shut = obs::counter("serve.rejected_shutdown");
  {
    std::lock_guard<std::mutex> lk(m_);
    if (shutdown_) {
      c_shut.add();
      return Admit::rejected_shutdown;
    }
    if (static_cast<int>(q_.size()) >= watermark_) {
      c_full.add();
      return Admit::rejected_full;
    }
    r->enqueue_time = Clock::now();
    q_.push_back(std::move(r));
    ++push_seq_;
    depth_gauge().set(static_cast<double>(q_.size()));
  }
  c_accepted.add();
  cv_.notify_all();
  return Admit::accepted;
}

std::shared_ptr<Request> RequestQueue::pop() {
  std::unique_lock<std::mutex> lk(m_);
  cv_.wait(lk, [&] { return shutdown_ || !q_.empty(); });
  if (q_.empty()) return nullptr;  // shut down and drained
  std::shared_ptr<Request> r = std::move(q_.front());
  q_.pop_front();
  depth_gauge().set(static_cast<double>(q_.size()));
  r->dequeue_time = Clock::now();
  return r;
}

int RequestQueue::pop_matching(const std::string& matrix, int max_n,
                               std::vector<std::shared_ptr<Request>>* out) {
  if (max_n <= 0) return 0;
  std::vector<std::shared_ptr<Request>> taken;
  {
    std::lock_guard<std::mutex> lk(m_);
    for (auto it = q_.begin(); it != q_.end() &&
                               static_cast<int>(taken.size()) < max_n;) {
      if ((*it)->matrix == matrix) {
        taken.push_back(std::move(*it));
        it = q_.erase(it);
      } else {
        ++it;
      }
    }
    depth_gauge().set(static_cast<double>(q_.size()));
  }
  const Clock::time_point now = Clock::now();
  for (auto& r : taken) {
    r->dequeue_time = now;
    out->push_back(std::move(r));
  }
  return static_cast<int>(taken.size());
}

std::uint64_t RequestQueue::push_seq() const {
  std::lock_guard<std::mutex> lk(m_);
  return push_seq_;
}

bool RequestQueue::wait_for_push(std::uint64_t seen,
                                 Clock::time_point deadline) {
  std::unique_lock<std::mutex> lk(m_);
  cv_.wait_until(lk, deadline,
                 [&] { return shutdown_ || push_seq_ != seen; });
  return push_seq_ != seen;
}

void RequestQueue::shutdown() {
  {
    std::lock_guard<std::mutex> lk(m_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

bool RequestQueue::is_shut_down() const {
  std::lock_guard<std::mutex> lk(m_);
  return shutdown_;
}

int RequestQueue::depth() const {
  std::lock_guard<std::mutex> lk(m_);
  return static_cast<int>(q_.size());
}

}  // namespace spmvm::serve
