// Bounded MPMC admission queue of the serving layer (DESIGN.md §14).
//
// Admission control is load shedding at the door: once the depth
// reaches the watermark, push() rejects with a reason instead of
// blocking the client or growing without bound — the server stays
// inside the regime where its batching model is valid. The queue also
// provides the two primitives the micro-batcher needs: pop_matching()
// to coalesce same-matrix requests out of FIFO order, and
// wait_for_push() so a worker holding a partial batch can wait for
// more arrivals up to its batching deadline.
//
// Counters: serve.accepted, serve.rejected_full, serve.rejected_shutdown.
// Gauge: serve.queue_depth.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/request.hpp"

namespace spmvm::serve {

/// Outcome of RequestQueue::push.
enum class Admit : std::uint8_t { accepted, rejected_full, rejected_shutdown };

class RequestQueue {
 public:
  /// `watermark` is the admission threshold (depth at which new pushes
  /// are shed); values < 1 or > capacity clamp to `capacity`.
  explicit RequestQueue(int capacity, int watermark = 0);

  /// Admit or shed `r`. On `accepted` the queue owns a reference and
  /// stamps r->enqueue_time; on rejection the caller resolves the
  /// ticket itself. Thread-safe.
  Admit push(std::shared_ptr<Request> r);

  /// Block until a request is available or the queue is shut down and
  /// drained; returns nullptr only in the latter case (worker exit
  /// signal). Stamps dequeue_time.
  std::shared_ptr<Request> pop();

  /// Remove up to `max_n` queued requests for `matrix` (FIFO among the
  /// matches), append them to *out with dequeue_time stamped. Returns
  /// the number taken. Never blocks.
  int pop_matching(const std::string& matrix, int max_n,
                   std::vector<std::shared_ptr<Request>>* out);

  /// Monotone count of successful pushes, for wait_for_push().
  std::uint64_t push_seq() const;

  /// Block until push_seq() != seen, shutdown, or `deadline`. Returns
  /// true when a new push arrived (the caller re-scans with
  /// pop_matching), false on deadline/shutdown.
  bool wait_for_push(std::uint64_t seen, Clock::time_point deadline);

  /// Stop admitting (push → rejected_shutdown). Queued requests keep
  /// draining through pop(); once empty, pop() returns nullptr.
  void shutdown();

  bool is_shut_down() const;
  int depth() const;
  int capacity() const { return capacity_; }
  int watermark() const { return watermark_; }

 private:
  const int capacity_;
  const int watermark_;
  mutable std::mutex m_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Request>> q_;
  std::uint64_t push_seq_ = 0;
  bool shutdown_ = false;
};

}  // namespace spmvm::serve
