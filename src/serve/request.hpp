// Request/response types of the spMVM serving layer (DESIGN.md §14).
//
// A Request is one y = A·x product submitted against a registered
// matrix; the server answers it through a Ticket, a one-shot future
// carrying the Response. Requests are reference-counted shared state:
// the submitting client (via its Ticket), the admission queue and the
// worker that executes the batch all hold the same Request object, so
// cooperative cancellation is a single atomic flag every stage checks.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

namespace spmvm::serve {

using Clock = std::chrono::steady_clock;

/// Terminal state of one request. Everything except `ok` means the
/// product did not run (the response carries no y).
enum class RequestStatus : std::uint8_t {
  ok,                 ///< executed; Response::y is valid
  rejected_full,      ///< admission control shed it (queue over watermark)
  rejected_shutdown,  ///< submitted after shutdown() began
  rejected_invalid,   ///< unknown matrix or wrong x size
  timed_out,          ///< deadline expired before the launch
  cancelled,          ///< Ticket::cancel() won the race against execution
  failed,             ///< the launch threw; Response::error has details
};

/// Human-readable status for logs and bench output.
const char* to_string(RequestStatus s);

/// What a Ticket resolves to.
struct Response {
  RequestStatus status = RequestStatus::failed;
  std::vector<double> y;  ///< result vector (original basis), ok only
  int batch_width = 0;    ///< k of the block launch that served this
  double queue_seconds = 0.0;    ///< enqueue → dequeue
  double batch_seconds = 0.0;    ///< dequeue → kernel launch
  double execute_seconds = 0.0;  ///< block-launch wall time
  double total_seconds = 0.0;    ///< enqueue → response
  std::string error;             ///< failure detail (failed only)

  bool ok() const { return status == RequestStatus::ok; }
};

/// Shared state of one in-flight request. Owned jointly by the Ticket,
/// the queue and the executing worker.
struct Request {
  std::string matrix;       ///< registered matrix name
  std::vector<double> x;    ///< input vector, n_cols entries
  Clock::time_point enqueue_time{};
  Clock::time_point dequeue_time{};
  Clock::time_point deadline = Clock::time_point::max();
  std::atomic<bool> cancelled{false};
  std::promise<Response> promise;
};

/// One-shot handle to a submitted request. Rejections resolve the
/// ticket immediately, so get() never blocks forever on a shed request.
class Ticket {
 public:
  Ticket() = default;
  explicit Ticket(std::shared_ptr<Request> req)
      : req_(std::move(req)), future_(req_->promise.get_future().share()) {}

  /// Block until the response is ready and return it.
  Response get() { return future_.get(); }

  /// True when the response became ready within `seconds`.
  bool wait_for(double seconds) const {
    return future_.wait_for(std::chrono::duration<double>(seconds)) ==
           std::future_status::ready;
  }

  /// Request cooperative cancellation. A request still in the queue (or
  /// batched but not yet launched) resolves as `cancelled`; one whose
  /// launch already started completes normally.
  void cancel() {
    if (req_) req_->cancelled.store(true, std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<Request> req_;
  std::shared_future<Response> future_;
};

}  // namespace spmvm::serve
