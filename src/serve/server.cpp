#include "serve/server.hpp"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "perfmodel/balance.hpp"
#include "serve/batcher.hpp"
#include "util/error.hpp"

namespace spmvm::serve {

namespace {

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

int env_int(const char* name, int fallback) {
  const double v = env_double(name, static_cast<double>(fallback));
  return static_cast<int>(v);
}

std::string env_str(const char* name, std::string fallback) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? std::string(v) : fallback;
}

Clock::duration seconds_to_duration(double s) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(s));
}

double elapsed_seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

void register_help() {
  static const bool once = [] {
    obs::set_metric_help("serve.in_flight",
                         "Requests dequeued but not yet resolved");
    obs::set_metric_help("serve.completed",
                         "Requests answered with an executed product");
    obs::set_metric_help("serve.timed_out",
                         "Requests whose deadline expired before launch");
    obs::set_metric_help("serve.cancelled",
                         "Requests cancelled before their launch");
    obs::set_metric_help("serve.failed", "Requests whose launch threw");
    obs::set_metric_help("serve.rejected_invalid",
                         "Requests against unknown matrices or with "
                         "wrong-sized vectors");
    obs::set_metric_help("serve.batches", "Block-RHS launches issued");
    obs::set_metric_help("serve.batched_requests",
                         "Requests served through block launches");
    obs::set_metric_help("serve.batch_width",
                         "Distribution of block-launch widths k");
    obs::set_metric_help("serve.latency.total",
                         "End-to-end request latency (enqueue to response)");
    obs::set_metric_help("serve.latency.queue",
                         "Admission-queue residency per request");
    obs::set_metric_help("serve.latency.batch",
                         "Batch-formation wait per request");
    obs::set_metric_help("serve.latency.execute",
                         "Block-launch wall time per request");
    return true;
  }();
  (void)once;
}

}  // namespace

const char* to_string(RequestStatus s) {
  switch (s) {
    case RequestStatus::ok: return "ok";
    case RequestStatus::rejected_full: return "rejected_full";
    case RequestStatus::rejected_shutdown: return "rejected_shutdown";
    case RequestStatus::rejected_invalid: return "rejected_invalid";
    case RequestStatus::timed_out: return "timed_out";
    case RequestStatus::cancelled: return "cancelled";
    case RequestStatus::failed: return "failed";
  }
  return "unknown";
}

ServerOptions ServerOptions::from_env() {
  ServerOptions o;
  o.backend = env_str("SPMVM_SERVE_BACKEND", o.backend);
  o.format = env_str("SPMVM_SERVE_FORMAT", o.format);
  o.n_workers = env_int("SPMVM_SERVE_WORKERS", o.n_workers);
  o.queue_capacity = env_int("SPMVM_SERVE_QUEUE_CAP", o.queue_capacity);
  o.admit_watermark = env_int("SPMVM_SERVE_WATERMARK", o.admit_watermark);
  o.max_batch = env_int("SPMVM_SERVE_MAX_BATCH", o.max_batch);
  o.max_batch_wait_s =
      env_double("SPMVM_SERVE_MAX_WAIT_MS", o.max_batch_wait_s * 1e3) / 1e3;
  o.default_deadline_s =
      env_double("SPMVM_SERVE_DEADLINE_MS", o.default_deadline_s * 1e3) / 1e3;
  o.kernel_threads = env_int("SPMVM_SERVE_THREADS", o.kernel_threads);
  o.min_batch_gain = env_double("SPMVM_SERVE_MIN_GAIN", o.min_batch_gain);
  return o;
}

struct Server::Entry {
  std::unique_ptr<exec::BoundSpmv<double>> bound;
  std::mutex launch_mutex;  // BoundSpmv handles are not thread-safe
  int target_k = 1;
  index_t n_rows = 0;
  index_t n_cols = 0;
};

Server::Server(ServerOptions opt)
    : opt_(std::move(opt)),
      queue_(std::make_unique<RequestQueue>(opt_.queue_capacity,
                                            opt_.admit_watermark)) {
  opt_.n_workers = std::max(1, opt_.n_workers);
  opt_.max_batch = std::max(1, opt_.max_batch);
  register_help();
}

Server::~Server() { shutdown(); }

void Server::register_matrix(const std::string& name, const Csr<double>& a) {
  SPMVM_REQUIRE(!name.empty(), "matrix name must not be empty");
  auto entry = std::make_unique<Entry>();
  entry->n_rows = a.n_rows;
  entry->n_cols = a.n_cols;
  const double nnzr =
      a.n_rows > 0 ? static_cast<double>(a.nnz()) /
                         static_cast<double>(a.n_rows)
                   : 1.0;
  entry->target_k = target_batch_width(
      sizeof(double), perfmodel::alpha_ideal(std::max(1.0, nnzr)),
      std::max(1.0, nnzr), opt_.max_batch, opt_.min_batch_gain);
  exec::LaunchOptions launch;
  launch.n_threads = opt_.kernel_threads;
  entry->bound = engine_.bind(opt_.backend, a, opt_.format, {}, launch);
  std::lock_guard<std::mutex> lk(matrices_mutex_);
  SPMVM_REQUIRE(matrices_.find(name) == matrices_.end(),
                "matrix '" + name + "' already registered");
  matrices_.emplace(name, std::move(entry));
}

int Server::batch_width(const std::string& name) const {
  Entry* e = find_entry(name);
  SPMVM_REQUIRE(e != nullptr, "unknown matrix '" + name + "'");
  return e->target_k;
}

Server::Entry* Server::find_entry(const std::string& name) const {
  std::lock_guard<std::mutex> lk(matrices_mutex_);
  const auto it = matrices_.find(name);
  return it == matrices_.end() ? nullptr : it->second.get();
}

void Server::start() {
  std::lock_guard<std::mutex> lk(lifecycle_mutex_);
  if (started_ || stopped_) return;
  started_ = true;
  for (int i = 0; i < opt_.n_workers; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

Ticket Server::submit(const std::string& matrix, std::vector<double> x,
                      double deadline_s) {
  auto req = std::make_shared<Request>();
  req->matrix = matrix;
  req->x = std::move(x);
  Ticket ticket(req);

  Entry* e = find_entry(matrix);
  if (e == nullptr ||
      req->x.size() != static_cast<std::size_t>(e->n_cols)) {
    static obs::Counter& c = obs::counter("serve.rejected_invalid");
    c.add();
    Response resp;
    resp.status = RequestStatus::rejected_invalid;
    resp.error = e == nullptr ? "unknown matrix '" + matrix + "'"
                              : "x has " + std::to_string(req->x.size()) +
                                    " entries, matrix needs " +
                                    std::to_string(e->n_cols);
    resolve(req, std::move(resp));
    return ticket;
  }
  const double dl = deadline_s < 0.0 ? opt_.default_deadline_s : deadline_s;
  if (dl > 0.0) req->deadline = Clock::now() + seconds_to_duration(dl);

  const Admit admit = queue_->push(req);
  {
    std::lock_guard<std::mutex> lk(stats_mutex_);
    if (admit == Admit::accepted) ++stats_.accepted;
    if (admit == Admit::rejected_full) ++stats_.rejected_full;
    if (admit == Admit::rejected_shutdown) ++stats_.rejected_shutdown;
  }
  if (admit != Admit::accepted) {
    Response resp;
    resp.status = admit == Admit::rejected_full
                      ? RequestStatus::rejected_full
                      : RequestStatus::rejected_shutdown;
    resp.error = admit == Admit::rejected_full
                     ? "admission queue at watermark"
                     : "server shutting down";
    resolve(req, std::move(resp));
  }
  return ticket;
}

void Server::worker_loop(int idx) {
  obs::set_thread_name("serve worker " + std::to_string(idx));
  for (;;) {
    std::shared_ptr<Request> first = queue_->pop();
    if (!first) return;  // shut down and drained
    serve_batch(std::move(first));
  }
}

void Server::serve_batch(std::shared_ptr<Request> first) {
  static obs::Counter& c_batches = obs::counter("serve.batches");
  static obs::Counter& c_batched = obs::counter("serve.batched_requests");
  static obs::Counter& c_timeout = obs::counter("serve.timed_out");
  static obs::Counter& c_cancel = obs::counter("serve.cancelled");
  static obs::Gauge& g_inflight = obs::gauge("serve.in_flight");
  static obs::HistogramMetric& h_width = obs::histogram("serve.batch_width");
  static obs::LatencyHistogram& l_batch =
      obs::latency_histogram("serve.latency.batch");
  static obs::LatencyHistogram& l_exec =
      obs::latency_histogram("serve.latency.execute");

  Entry* e = find_entry(first->matrix);  // validated at submit
  std::vector<std::shared_ptr<Request>> batch;
  batch.push_back(std::move(first));
  const std::string& matrix = batch.front()->matrix;

  // Coalesce toward the model width: take whatever same-matrix requests
  // are queued now, then wait out the batching deadline for stragglers.
  if (e->target_k > 1) {
    const Clock::time_point batch_deadline =
        batch.front()->dequeue_time +
        seconds_to_duration(opt_.max_batch_wait_s);
    for (;;) {
      const std::uint64_t seen = queue_->push_seq();
      queue_->pop_matching(matrix,
                           e->target_k - static_cast<int>(batch.size()),
                           &batch);
      if (static_cast<int>(batch.size()) >= e->target_k) break;
      if (!queue_->wait_for_push(seen, batch_deadline)) break;
    }
  }

  g_inflight.set(static_cast<double>(
      in_flight_.fetch_add(static_cast<int>(batch.size()),
                           std::memory_order_relaxed) +
      static_cast<int>(batch.size())));

  // Weed out requests that died while queued or during batching.
  const Clock::time_point now = Clock::now();
  std::vector<std::shared_ptr<Request>> live;
  for (auto& r : batch) {
    if (r->cancelled.load(std::memory_order_relaxed)) {
      c_cancel.add();
      Response resp;
      resp.status = RequestStatus::cancelled;
      resolve(r, std::move(resp));
    } else if (now > r->deadline) {
      c_timeout.add();
      Response resp;
      resp.status = RequestStatus::timed_out;
      resp.error = "deadline expired before launch";
      resolve(r, std::move(resp));
    } else {
      live.push_back(std::move(r));
    }
  }

  if (!live.empty()) {
    const int k = static_cast<int>(live.size());
    const auto rows = static_cast<std::size_t>(e->n_rows);
    const auto cols = static_cast<std::size_t>(e->n_cols);
    const auto kk = static_cast<std::size_t>(k);
    SPMVM_TRACE_SPAN("serve/batch", static_cast<std::size_t>(k));
    std::vector<double> X(cols * kk), Y(rows * kk);
    for (std::size_t v = 0; v < kk; ++v)
      for (std::size_t i = 0; i < cols; ++i) X[i * kk + v] = live[v]->x[i];

    const Clock::time_point t_launch = Clock::now();
    std::string error;
    {
      std::lock_guard<std::mutex> lk(e->launch_mutex);
      SPMVM_TRACE_SPAN("serve/launch",
                       static_cast<std::size_t>(e->bound->nnz()) * kk);
      try {
        e->bound->apply_block(X, Y, k);
      } catch (const std::exception& ex) {
        error = ex.what();
      }
    }
    const Clock::time_point t_done = Clock::now();
    const double exec_s = elapsed_seconds(t_launch, t_done);
    c_batches.add();
    c_batched.add(static_cast<std::uint64_t>(k));
    h_width.observe(static_cast<index_t>(k));
    {
      std::lock_guard<std::mutex> lk(stats_mutex_);
      ++stats_.batches;
    }

    for (std::size_t v = 0; v < kk; ++v) {
      Response resp;
      resp.batch_width = k;
      resp.queue_seconds =
          elapsed_seconds(live[v]->enqueue_time, live[v]->dequeue_time);
      resp.batch_seconds = elapsed_seconds(live[v]->dequeue_time, t_launch);
      resp.execute_seconds = exec_s;
      l_batch.observe_seconds(resp.batch_seconds);
      l_exec.observe_seconds(exec_s);
      if (error.empty()) {
        resp.status = RequestStatus::ok;
        resp.y.resize(rows);
        for (std::size_t i = 0; i < rows; ++i) resp.y[i] = Y[i * kk + v];
      } else {
        resp.status = RequestStatus::failed;
        resp.error = error;
      }
      resolve(live[v], std::move(resp));
    }
  }

  g_inflight.set(static_cast<double>(
      in_flight_.fetch_sub(static_cast<int>(batch.size()),
                           std::memory_order_relaxed) -
      static_cast<int>(batch.size())));
}

void Server::resolve(const std::shared_ptr<Request>& r, Response resp) {
  static obs::Counter& c_completed = obs::counter("serve.completed");
  static obs::Counter& c_failed = obs::counter("serve.failed");
  static obs::LatencyHistogram& l_total =
      obs::latency_histogram("serve.latency.total");
  static obs::LatencyHistogram& l_queue =
      obs::latency_histogram("serve.latency.queue");
  if (r->enqueue_time != Clock::time_point{}) {
    resp.total_seconds = elapsed_seconds(r->enqueue_time, Clock::now());
    l_total.observe_seconds(resp.total_seconds);
  }
  if (resp.status == RequestStatus::ok) {
    c_completed.add();
    l_queue.observe_seconds(resp.queue_seconds);
  }
  if (resp.status == RequestStatus::failed) c_failed.add();
  {
    std::lock_guard<std::mutex> lk(stats_mutex_);
    switch (resp.status) {
      case RequestStatus::ok: ++stats_.completed; break;
      case RequestStatus::timed_out: ++stats_.timed_out; break;
      case RequestStatus::cancelled: ++stats_.cancelled; break;
      case RequestStatus::failed: ++stats_.failed; break;
      case RequestStatus::rejected_invalid: ++stats_.rejected_invalid; break;
      default: break;  // queue-level rejects counted at submit
    }
  }
  r->promise.set_value(std::move(resp));
}

void Server::shutdown() {
  {
    std::lock_guard<std::mutex> lk(lifecycle_mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  queue_->shutdown();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  // Safety net for a server that was never started: resolve anything
  // still queued so no accepted ticket is left hanging.
  while (std::shared_ptr<Request> r = queue_->pop()) {
    Response resp;
    resp.status = RequestStatus::rejected_shutdown;
    resp.error = "server shut down before execution";
    resolve(r, std::move(resp));
  }
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lk(stats_mutex_);
  return stats_;
}

}  // namespace spmvm::serve
