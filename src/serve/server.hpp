// The spMVM server: admission queue → micro-batcher → execution engine
// (DESIGN.md §14).
//
// A Server owns a private exec::Engine, a set of registered matrices
// (each bound once to the configured backend) and a worker pool.
// Clients submit y = A·x requests against a matrix name and get a
// Ticket; workers drain the admission queue, coalesce same-matrix
// requests into block-RHS spMMV launches whose width comes from the
// Eq. 1 balance model (serve/batcher), and resolve the tickets.
// Because every backend routes all widths — including k = 1 — through
// the same per-format block kernel, a coalesced batch is bit-identical
// to issuing its requests one at a time.
//
// Lifecycle: construct → register_matrix()* → start() → submit()* →
// shutdown() (rejects new work, drains in-flight, joins workers). The
// destructor calls shutdown().
#pragma once

#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exec/engine.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"

namespace spmvm::serve {

/// Server configuration. Every field has an SPMVM_SERVE_* environment
/// override (see from_env and DESIGN.md §14).
struct ServerOptions {
  std::string backend = "auto";  ///< host | gpusim | hybrid | auto
  std::string format = "csr";    ///< storage format for bound matrices
  int n_workers = 2;             ///< batch-executing worker threads
  int queue_capacity = 256;      ///< hard bound on queued requests
  int admit_watermark = 0;       ///< shed above this depth (0 → capacity)
  int max_batch = 8;             ///< ceiling on the block width k
  double max_batch_wait_s = 1e-3;   ///< batching deadline per launch
  double default_deadline_s = 0.0;  ///< per-request deadline (0 → none)
  int kernel_threads = 1;        ///< n_threads of each block launch
  double min_batch_gain = 0.02;  ///< balance-model stop threshold

  /// Defaults overridden by SPMVM_SERVE_BACKEND, _FORMAT, _WORKERS,
  /// _QUEUE_CAP, _WATERMARK, _MAX_BATCH, _MAX_WAIT_MS, _DEADLINE_MS,
  /// _THREADS, _MIN_GAIN. Malformed values keep the default.
  static ServerOptions from_env();
};

/// Point-in-time serving statistics (mirrors the obs counters, scoped
/// to this Server instance).
struct ServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t rejected_full = 0;
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t rejected_invalid = 0;
  std::uint64_t completed = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t failed = 0;
  std::uint64_t batches = 0;  ///< block launches issued
};

class Server {
 public:
  explicit Server(ServerOptions opt = {});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind `a` to the configured backend under `name` and compute its
  /// model batch width. Must precede start(); duplicate names throw.
  void register_matrix(const std::string& name, const Csr<double>& a);

  /// Model-chosen block width for a registered matrix (min of the
  /// Eq. 1 walk and max_batch). Throws for unknown names.
  int batch_width(const std::string& name) const;

  /// Launch the worker pool. Idempotent.
  void start();

  /// Submit y = A·x against a registered matrix. Never blocks: shed or
  /// invalid requests come back as an already-resolved Ticket.
  /// `deadline_s` overrides the configured default (< 0 → default,
  /// 0 → none): a request whose deadline passes before its launch
  /// resolves as timed_out.
  Ticket submit(const std::string& matrix, std::vector<double> x,
                double deadline_s = -1.0);

  /// Stop admitting, drain queued and in-flight requests, join the
  /// workers. Every accepted ticket is resolved before this returns.
  void shutdown();

  ServerStats stats() const;
  int queue_depth() const { return queue_->depth(); }
  const ServerOptions& options() const { return opt_; }

 private:
  struct Entry;  // one registered matrix

  Entry* find_entry(const std::string& name) const;
  void worker_loop(int idx);
  void serve_batch(std::shared_ptr<Request> first);
  void resolve(const std::shared_ptr<Request>& r, Response resp);

  ServerOptions opt_;
  exec::Engine<double> engine_;
  std::unique_ptr<RequestQueue> queue_;
  mutable std::mutex matrices_mutex_;
  std::map<std::string, std::unique_ptr<Entry>> matrices_;
  std::vector<std::thread> workers_;
  bool started_ = false;
  bool stopped_ = false;
  mutable std::mutex lifecycle_mutex_;

  mutable std::mutex stats_mutex_;
  ServerStats stats_;
  std::atomic<int> in_flight_{0};
};

}  // namespace spmvm::serve
