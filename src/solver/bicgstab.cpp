#include "solver/bicgstab.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "solver/kernels.hpp"

namespace spmvm::solver {

template <class T>
BicgstabResult bicgstab(const Operator<T>& a, std::span<const T> b,
                        std::span<T> x, double tol, int max_iterations) {
  const auto n = static_cast<std::size_t>(a.size());
  SPMVM_TRACE_SPAN("solver/bicgstab");
  obs::LedgerScope solve_led(obs::RoofLane::host, "solver", "bicgstab");
  static obs::Counter& c_iters = obs::counter("solver.iterations");
  std::vector<T> r(n), r0(n), p(n), v(n), s(n), t(n);

  // r = b - A x0 in one fused matrix pass.
  copy<T>(b, r);
  a.apply_axpby(x, std::span<T>(r), T{-1}, T{1});
  copy<T>(r, r0);
  copy<T>(r, p);

  const double bnorm = norm2<T>(b);
  const double stop = tol * (bnorm > 0.0 ? bnorm : 1.0);

  BicgstabResult result;
  result.residual_norm = norm2<T>(std::span<const T>(r));
  if (result.residual_norm <= stop) {
    result.converged = true;
    return result;
  }

  double rho = dot<T>(std::span<const T>(r0), std::span<const T>(r));
  for (int it = 0; it < max_iterations; ++it) {
    SPMVM_TRACE_SPAN_NAMED(iter_span, "solver/bicgstab/iteration");
    c_iters.add();
    a.apply(std::span<const T>(p), std::span<T>(v));
    const double r0v = dot<T>(std::span<const T>(r0), std::span<const T>(v));
    if (std::abs(r0v) < 1e-300) {
      result.breakdown = true;
      break;
    }
    const double alpha = rho / r0v;
    for (std::size_t i = 0; i < n; ++i)
      s[i] = r[i] - static_cast<T>(alpha) * v[i];

    // Early exit on the half step.
    if (norm2<T>(std::span<const T>(s)) <= stop) {
      axpy<T>(static_cast<T>(alpha), p, x);
      result.iterations = it + 1;
      result.residual_norm = norm2<T>(std::span<const T>(s));
      if (iter_span.active()) {
        iter_span.set_arg("iteration", static_cast<double>(result.iterations));
        iter_span.set_arg("residual", result.residual_norm);
      }
      obs::ledger_residual("bicgstab", result.iterations,
                           result.residual_norm);
      result.converged = true;
      return result;
    }

    a.apply(std::span<const T>(s), std::span<T>(t));
    const double tt = dot<T>(std::span<const T>(t), std::span<const T>(t));
    if (tt < 1e-300) {
      result.breakdown = true;
      break;
    }
    const double omega =
        dot<T>(std::span<const T>(t), std::span<const T>(s)) / tt;
    for (std::size_t i = 0; i < n; ++i)
      x[i] += static_cast<T>(alpha) * p[i] + static_cast<T>(omega) * s[i];
    for (std::size_t i = 0; i < n; ++i)
      r[i] = s[i] - static_cast<T>(omega) * t[i];

    result.iterations = it + 1;
    result.residual_norm = norm2<T>(std::span<const T>(r));
    if (iter_span.active()) {
      iter_span.set_arg("iteration", static_cast<double>(result.iterations));
      iter_span.set_arg("residual", result.residual_norm);
    }
    obs::ledger_residual("bicgstab", result.iterations, result.residual_norm);
    if (result.residual_norm <= stop) {
      result.converged = true;
      return result;
    }
    const double rho_new =
        dot<T>(std::span<const T>(r0), std::span<const T>(r));
    if (std::abs(rho_new) < 1e-300 || std::abs(omega) < 1e-300) {
      result.breakdown = true;
      break;
    }
    const double beta = (rho_new / rho) * (alpha / omega);
    for (std::size_t i = 0; i < n; ++i)
      p[i] = r[i] + static_cast<T>(beta) *
                        (p[i] - static_cast<T>(omega) * v[i]);
    rho = rho_new;
  }
  return result;
}

template <class T>
BicgstabResult bicgstab_with_format(const Csr<T>& a, std::span<const T> b,
                                    std::span<T> x, std::string_view format,
                                    double tol, int max_iterations,
                                    const formats::PlanOptions& options) {
  formats::PlanOptions opt = options;
  opt.permute_columns = PermuteColumns::yes;
  const auto plan = formats::registry<T>().build(format, a, opt);
  const auto n = static_cast<std::size_t>(a.n_rows);
  const Permutation* perm = plan->permutation();

  std::vector<T> b_perm(n), x_perm(n);
  if (perm != nullptr) {
    perm->to_permuted(b, std::span<T>(b_perm));
    perm->to_permuted(std::span<const T>(x), std::span<T>(x_perm));
  } else {
    std::copy(b.begin(), b.end(), b_perm.begin());
    std::copy(x.begin(), x.end(), x_perm.begin());
  }

  const auto op = make_operator<T>(plan);
  const BicgstabResult result =
      bicgstab(op, std::span<const T>(b_perm), std::span<T>(x_perm), tol,
               max_iterations);

  if (perm != nullptr)
    perm->from_permuted(std::span<const T>(x_perm), x);
  else
    std::copy(x_perm.begin(), x_perm.end(), x.begin());
  return result;
}

#define SPMVM_INSTANTIATE_BICGSTAB(T)                                  \
  template BicgstabResult bicgstab(const Operator<T>&,                 \
                                   std::span<const T>, std::span<T>,   \
                                   double, int);                       \
  template BicgstabResult bicgstab_with_format(                        \
      const Csr<T>&, std::span<const T>, std::span<T>,                 \
      std::string_view, double, int, const formats::PlanOptions&)

SPMVM_INSTANTIATE_BICGSTAB(float);
SPMVM_INSTANTIATE_BICGSTAB(double);

}  // namespace spmvm::solver
