// BiCGSTAB — Krylov solver for the *nonsymmetric* systems the paper's
// DLR1/DLR2/UHBR matrices come from (CG requires SPD).
#pragma once

#include "solver/operator.hpp"

namespace spmvm::solver {

struct BicgstabResult {
  int iterations = 0;
  double residual_norm = 0.0;
  bool converged = false;
  bool breakdown = false;  // rho or omega collapsed
};

/// Solve A·x = b for general (nonsymmetric) A. `x` carries the initial
/// guess in and the solution out. Converges when ||r|| <= tol·||b||.
template <class T>
BicgstabResult bicgstab(const Operator<T>& a, std::span<const T> b,
                        std::span<T> x, double tol = 1e-10,
                        int max_iterations = 1000);

/// BiCGSTAB through any registered storage format, iterating in the
/// plan's basis (permutations only at entry and exit, as in Sec. II-A).
template <class T>
BicgstabResult bicgstab_with_format(const Csr<T>& a, std::span<const T> b,
                                    std::span<T> x, std::string_view format,
                                    double tol = 1e-10,
                                    int max_iterations = 1000,
                                    const formats::PlanOptions& options = {});

/// BiCGSTAB through pJDS, the paper's pairing.
template <class T>
BicgstabResult bicgstab_pjds(const Csr<T>& a, std::span<const T> b,
                             std::span<T> x, double tol = 1e-10,
                             int max_iterations = 1000) {
  return bicgstab_with_format(a, b, x, "pjds", tol, max_iterations);
}

#define SPMVM_EXTERN_BICGSTAB(T)                                          \
  extern template BicgstabResult bicgstab(const Operator<T>&,             \
                                          std::span<const T>,             \
                                          std::span<T>, double, int);     \
  extern template BicgstabResult bicgstab_with_format(                    \
      const Csr<T>&, std::span<const T>, std::span<T>, std::string_view,  \
      double, int, const formats::PlanOptions&)

SPMVM_EXTERN_BICGSTAB(float);
SPMVM_EXTERN_BICGSTAB(double);
#undef SPMVM_EXTERN_BICGSTAB

}  // namespace spmvm::solver
