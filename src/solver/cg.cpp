#include "solver/cg.hpp"

#include <algorithm>
#include <vector>

#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "solver/kernels.hpp"

namespace spmvm::solver {

template <class T>
CgResult cg(const Operator<T>& a, std::span<const T> b, std::span<T> x,
            double tol, int max_iterations) {
  const auto n = static_cast<std::size_t>(a.size());
  SPMVM_TRACE_SPAN("solver/cg");
  // Unpredicted scope: contributes the "solve" wall-time row so the
  // ledger's phase breakdown shows kernel/blas1 share of time to solution.
  obs::LedgerScope solve_led(obs::RoofLane::host, "solver", "cg");
  static obs::Counter& c_iters = obs::counter("solver.iterations");
  std::vector<T> r(n), p(n), ap(n);

  // r = b - A x0 in one fused matrix pass; p = r.
  copy<T>(b, r);
  a.apply_axpby(x, std::span<T>(r), T{-1}, T{1});
  copy<T>(r, p);

  const double bnorm = norm2<T>(b);
  const double stop = tol * (bnorm > 0.0 ? bnorm : 1.0);
  double rr = dot<T>(r, r);

  CgResult result;
  result.residual_norm = std::sqrt(rr);
  if (result.residual_norm <= stop) {
    result.converged = true;
    return result;
  }

  for (int it = 0; it < max_iterations; ++it) {
    SPMVM_TRACE_SPAN_NAMED(iter_span, "solver/cg/iteration");
    c_iters.add();
    a.apply(std::span<const T>(p.data(), n), std::span<T>(ap));
    const double pap = dot<T>(std::span<const T>(p), std::span<const T>(ap));
    if (pap <= 0.0) break;  // not SPD (or breakdown): bail out
    const T alpha = static_cast<T>(rr / pap);
    axpy<T>(alpha, p, x);
    axpy<T>(static_cast<T>(-alpha), ap, r);
    const double rr_new = dot<T>(r, r);
    result.iterations = it + 1;
    result.residual_norm = std::sqrt(rr_new);
    if (iter_span.active()) {
      iter_span.set_arg("iteration", static_cast<double>(result.iterations));
      iter_span.set_arg("residual", result.residual_norm);
    }
    obs::ledger_residual("cg", result.iterations, result.residual_norm);
    if (result.residual_norm <= stop) {
      result.converged = true;
      break;
    }
    const T beta = static_cast<T>(rr_new / rr);
    xpay<T>(r, beta, p);  // p = r + beta p
    rr = rr_new;
  }
  return result;
}

template <class T>
CgResult cg_with_format(const Csr<T>& a, std::span<const T> b, std::span<T> x,
                        std::string_view format, double tol,
                        int max_iterations,
                        const formats::PlanOptions& options) {
  formats::PlanOptions opt = options;
  opt.permute_columns = PermuteColumns::yes;
  const auto plan = formats::registry<T>().build(format, a, opt);
  const auto n = static_cast<std::size_t>(a.n_rows);
  const Permutation* perm = plan->permutation();

  // Permute once on entry (identity for non-sorting formats)...
  std::vector<T> b_perm(n), x_perm(n);
  if (perm != nullptr) {
    perm->to_permuted(b, std::span<T>(b_perm));
    perm->to_permuted(std::span<const T>(x), std::span<T>(x_perm));
  } else {
    std::copy(b.begin(), b.end(), b_perm.begin());
    std::copy(x.begin(), x.end(), x_perm.begin());
  }

  // ... iterate entirely in the plan's basis ...
  const auto op = make_operator<T>(plan);
  const CgResult result =
      cg(op, std::span<const T>(b_perm), std::span<T>(x_perm), tol,
         max_iterations);

  // ... and permute once on exit.
  if (perm != nullptr)
    perm->from_permuted(std::span<const T>(x_perm), x);
  else
    std::copy(x_perm.begin(), x_perm.end(), x.begin());
  return result;
}

#define SPMVM_INSTANTIATE_CG(T)                                        \
  template CgResult cg(const Operator<T>&, std::span<const T>,         \
                       std::span<T>, double, int);                     \
  template CgResult cg_with_format(                                    \
      const Csr<T>&, std::span<const T>, std::span<T>,                 \
      std::string_view, double, int, const formats::PlanOptions&)

SPMVM_INSTANTIATE_CG(float);
SPMVM_INSTANTIATE_CG(double);

}  // namespace spmvm::solver
