// Conjugate Gradient — the archetypal "sparse solver dominated by spMVM"
// the paper's introduction motivates, including the pJDS variant that
// iterates entirely in the permuted basis.
#pragma once

#include "core/pjds.hpp"
#include "solver/operator.hpp"

namespace spmvm::solver {

struct CgResult {
  int iterations = 0;
  double residual_norm = 0.0;
  bool converged = false;
};

/// Solve A·x = b for symmetric positive-definite A. `x` carries the
/// initial guess in and the solution out. Converges when
/// ||r|| <= tol · ||b||.
template <class T>
CgResult cg(const Operator<T>& a, std::span<const T> b, std::span<T> x,
            double tol = 1e-10, int max_iterations = 1000);

/// CG through the pJDS format: builds pJDS (symmetric permutation),
/// permutes b and the initial guess once, iterates in the permuted basis,
/// and permutes the solution back — the workflow of Sec. II-A.
template <class T>
CgResult cg_pjds(const Csr<T>& a, std::span<const T> b, std::span<T> x,
                 double tol = 1e-10, int max_iterations = 1000,
                 const PjdsOptions& options = {});

#define SPMVM_EXTERN_CG(T)                                             \
  extern template CgResult cg(const Operator<T>&, std::span<const T>,  \
                              std::span<T>, double, int);              \
  extern template CgResult cg_pjds(const Csr<T>&, std::span<const T>,  \
                                   std::span<T>, double, int,          \
                                   const PjdsOptions&)

SPMVM_EXTERN_CG(float);
SPMVM_EXTERN_CG(double);
#undef SPMVM_EXTERN_CG

}  // namespace spmvm::solver
