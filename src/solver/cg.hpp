// Conjugate Gradient — the archetypal "sparse solver dominated by spMVM"
// the paper's introduction motivates, including the pJDS variant that
// iterates entirely in the permuted basis.
#pragma once

#include "solver/operator.hpp"

namespace spmvm::solver {

struct CgResult {
  int iterations = 0;
  double residual_norm = 0.0;
  bool converged = false;
};

/// Solve A·x = b for symmetric positive-definite A. `x` carries the
/// initial guess in and the solution out. Converges when
/// ||r|| <= tol · ||b||.
template <class T>
CgResult cg(const Operator<T>& a, std::span<const T> b, std::span<T> x,
            double tol = 1e-10, int max_iterations = 1000);

/// CG through any registered storage format: builds the plan (symmetric
/// permutation for row-sorting formats), permutes b and the initial guess
/// once, iterates in the plan's basis, and permutes the solution back —
/// the workflow of Sec. II-A generalized over the format registry.
template <class T>
CgResult cg_with_format(const Csr<T>& a, std::span<const T> b, std::span<T> x,
                        std::string_view format, double tol = 1e-10,
                        int max_iterations = 1000,
                        const formats::PlanOptions& options = {});

/// The paper's recommended pairing: CG in the pJDS permuted basis.
template <class T>
CgResult cg_pjds(const Csr<T>& a, std::span<const T> b, std::span<T> x,
                 double tol = 1e-10, int max_iterations = 1000) {
  return cg_with_format(a, b, x, "pjds", tol, max_iterations);
}

#define SPMVM_EXTERN_CG(T)                                             \
  extern template CgResult cg(const Operator<T>&, std::span<const T>,  \
                              std::span<T>, double, int);              \
  extern template CgResult cg_with_format(                             \
      const Csr<T>&, std::span<const T>, std::span<T>,                 \
      std::string_view, double, int, const formats::PlanOptions&)

SPMVM_EXTERN_CG(float);
SPMVM_EXTERN_CG(double);
#undef SPMVM_EXTERN_CG

}  // namespace spmvm::solver
