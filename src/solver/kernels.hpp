// BLAS-1 style vector kernels used by the Krylov solvers.
#pragma once

#include <cmath>
#include <span>

namespace spmvm::solver {

template <class T>
double dot(std::span<const T> a, std::span<const T> b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  return acc;
}

template <class T>
double norm2(std::span<const T> a) {
  return std::sqrt(dot(a, a));
}

/// y += alpha * x
template <class T>
void axpy(T alpha, std::span<const T> x, std::span<T> y) {
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

/// x = alpha * x
template <class T>
void scale(T alpha, std::span<T> x) {
  for (auto& v : x) v *= alpha;
}

/// y = x
template <class T>
void copy(std::span<const T> x, std::span<T> y) {
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i];
}

/// x = alpha*x + y  (used by CG's p-update)
template <class T>
void xpay(std::span<const T> y, T alpha, std::span<T> x) {
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = alpha * x[i] + y[i];
}

}  // namespace spmvm::solver
