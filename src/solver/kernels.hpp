// BLAS-1 style vector kernels used by the Krylov solvers.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>

#include "obs/ledger.hpp"

namespace spmvm::solver {

namespace detail {

/// Roofline work for a streaming BLAS-1 op: `streams` vectors of `n`
/// scalars through memory, `flops_per_elem` flops each. All ops here
/// are pure streams, so the host STREAM roof is the right yardstick
/// (no matrix, hence no nnz / alpha).
inline obs::WorkDesc blas1_work(std::size_t n, std::size_t scalar_size,
                                std::uint64_t streams,
                                std::uint64_t flops_per_elem) {
  obs::WorkDesc w;
  w.bytes = streams * static_cast<std::uint64_t>(n) * scalar_size;
  w.flops = flops_per_elem * static_cast<std::uint64_t>(n);
  return w;
}

}  // namespace detail

template <class T>
double dot(std::span<const T> a, std::span<const T> b) {
  obs::LedgerScope led(obs::RoofLane::host, "blas1", "dot");
  if (led.active()) led.set_work(detail::blas1_work(a.size(), sizeof(T), 2, 2));
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  return acc;
}

template <class T>
double norm2(std::span<const T> a) {
  return std::sqrt(dot(a, a));  // ledger-attributed to "dot" by design
}

/// y += alpha * x
template <class T>
void axpy(T alpha, std::span<const T> x, std::span<T> y) {
  obs::LedgerScope led(obs::RoofLane::host, "blas1", "axpy");
  if (led.active()) led.set_work(detail::blas1_work(x.size(), sizeof(T), 3, 2));
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

/// x = alpha * x
template <class T>
void scale(T alpha, std::span<T> x) {
  obs::LedgerScope led(obs::RoofLane::host, "blas1", "scale");
  if (led.active()) led.set_work(detail::blas1_work(x.size(), sizeof(T), 2, 1));
  for (auto& v : x) v *= alpha;
}

/// y = x
template <class T>
void copy(std::span<const T> x, std::span<T> y) {
  obs::LedgerScope led(obs::RoofLane::host, "blas1", "copy");
  if (led.active()) led.set_work(detail::blas1_work(x.size(), sizeof(T), 2, 0));
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i];
}

/// x = alpha*x + y  (used by CG's p-update)
template <class T>
void xpay(std::span<const T> y, T alpha, std::span<T> x) {
  obs::LedgerScope led(obs::RoofLane::host, "blas1", "xpay");
  if (led.active()) led.set_work(detail::blas1_work(x.size(), sizeof(T), 3, 2));
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = alpha * x[i] + y[i];
}

}  // namespace spmvm::solver
