#include "solver/lanczos.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "solver/kernels.hpp"
#include "util/rng.hpp"

namespace spmvm::solver {

double tridiag_max_eigenvalue(std::span<const double> alpha,
                              std::span<const double> beta) {
  const std::size_t n = alpha.size();
  SPMVM_REQUIRE(n >= 1, "empty tridiagonal matrix");
  SPMVM_REQUIRE(beta.size() + 1 == n, "beta must have n-1 entries");

  // Gershgorin bounds.
  double lo = alpha[0], hi = alpha[0];
  for (std::size_t i = 0; i < n; ++i) {
    const double b_left = i > 0 ? std::abs(beta[i - 1]) : 0.0;
    const double b_right = i + 1 < n ? std::abs(beta[i]) : 0.0;
    lo = std::min(lo, alpha[i] - b_left - b_right);
    hi = std::max(hi, alpha[i] + b_left + b_right);
  }

  // Sturm count: eigenvalues strictly below x.
  const auto count_below = [&](double x) {
    int count = 0;
    double d = 1.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double b2 = i > 0 ? beta[i - 1] * beta[i - 1] : 0.0;
      d = alpha[i] - x - (d != 0.0 ? b2 / d : b2 / 1e-300);
      if (d < 0.0) ++count;
    }
    return count;
  };

  // Bisect for the largest eigenvalue: the unique x with count(x) = n-1
  // below, n at x+.
  double a = lo - 1e-12, b = hi + 1e-12;
  for (int it = 0; it < 200 && b - a > 1e-13 * std::max(1.0, std::abs(b));
       ++it) {
    const double mid = 0.5 * (a + b);
    if (count_below(mid) >= static_cast<int>(n)) {
      b = mid;
    } else {
      a = mid;
    }
  }
  return 0.5 * (a + b);
}

template <class T>
LanczosResult lanczos_max_eigenvalue(const Operator<T>& a, int max_iterations,
                                     double tol, std::uint64_t seed) {
  const auto n = static_cast<std::size_t>(a.size());
  LanczosResult result;
  if (n == 0) return result;
  SPMVM_TRACE_SPAN("solver/lanczos");
  static obs::Counter& c_iters = obs::counter("solver.iterations");

  Rng rng(seed);
  std::vector<T> v(n), v_prev(n, T{0}), w(n);
  for (auto& x : v) x = static_cast<T>(rng.uniform(-1.0, 1.0));
  const double vnorm = norm2<T>(std::span<const T>(v));
  scale<T>(static_cast<T>(1.0 / vnorm), v);

  std::vector<double> alpha, beta;
  double prev_estimate = 0.0;
  for (int it = 0; it < max_iterations; ++it) {
    SPMVM_TRACE_SPAN_NAMED(iter_span, "solver/lanczos/iteration");
    c_iters.add();
    a.apply(std::span<const T>(v), std::span<T>(w));
    const double al = dot<T>(std::span<const T>(w), std::span<const T>(v));
    alpha.push_back(al);
    // w = w - alpha v - beta v_prev
    axpy<T>(static_cast<T>(-al), std::span<const T>(v), std::span<T>(w));
    if (!beta.empty())
      axpy<T>(static_cast<T>(-beta.back()), std::span<const T>(v_prev),
              std::span<T>(w));
    const double bt = norm2<T>(std::span<const T>(w));

    const double estimate = tridiag_max_eigenvalue(alpha, beta);
    result.eigenvalue = estimate;
    result.iterations = it + 1;
    if (iter_span.active()) {
      iter_span.set_arg("iteration", static_cast<double>(result.iterations));
      iter_span.set_arg("estimate", estimate);
    }
    if (it > 0 && std::abs(estimate - prev_estimate) <=
                      tol * std::max(1.0, std::abs(estimate))) {
      result.converged = true;
      break;
    }
    prev_estimate = estimate;
    if (bt < 1e-14) {  // invariant subspace found: exact answer
      result.converged = true;
      break;
    }
    beta.push_back(bt);
    v_prev = v;
    for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<T>(w[i] / bt);
  }
  return result;
}

double tridiag_min_eigenvalue(std::span<const double> alpha,
                              std::span<const double> beta) {
  // min eig(T) = -max eig(-T); negating the diagonal suffices because
  // the off-diagonal signs do not affect the spectrum of a tridiagonal
  // (similarity by a diagonal +-1 matrix).
  std::vector<double> neg(alpha.begin(), alpha.end());
  for (auto& v : neg) v = -v;
  return -tridiag_max_eigenvalue(neg, beta);
}

template <class T>
LanczosResult lanczos_min_eigenvalue(const Operator<T>& a, int max_iterations,
                                     double tol, std::uint64_t seed) {
  // Run Lanczos on -A by wrapping the operator.
  const Operator<T> negated(
      a.size(), [&a, n = static_cast<std::size_t>(a.size())](
                    std::span<const T> x, std::span<T> y) {
        a.apply(x, y);
        for (std::size_t i = 0; i < n; ++i) y[i] = -y[i];
      });
  LanczosResult r =
      lanczos_max_eigenvalue(negated, max_iterations, tol, seed);
  r.eigenvalue = -r.eigenvalue;
  return r;
}

template LanczosResult lanczos_max_eigenvalue(const Operator<float>&, int,
                                              double, std::uint64_t);
template LanczosResult lanczos_max_eigenvalue(const Operator<double>&, int,
                                              double, std::uint64_t);
template LanczosResult lanczos_min_eigenvalue(const Operator<float>&, int,
                                              double, std::uint64_t);
template LanczosResult lanczos_min_eigenvalue(const Operator<double>&, int,
                                              double, std::uint64_t);

}  // namespace spmvm::solver
