// Lanczos iteration for extremal eigenvalues of symmetric operators —
// the paper's HMEp matrix comes from exactly this kind of quantum
// eigenproblem, and "application to a production-grade eigensolver" is
// its stated outlook.
#pragma once

#include <cstdint>

#include "solver/operator.hpp"

namespace spmvm::solver {

struct LanczosResult {
  double eigenvalue = 0.0;  // extremal (largest) eigenvalue estimate
  int iterations = 0;
  bool converged = false;
};

/// Estimate the largest eigenvalue of a symmetric operator via plain
/// Lanczos with full tridiagonal bookkeeping (no reorthogonalization —
/// fine for extremal values at these iteration counts). Converges when
/// the eigenvalue estimate changes by less than `tol` (relative).
template <class T>
LanczosResult lanczos_max_eigenvalue(const Operator<T>& a,
                                     int max_iterations = 200,
                                     double tol = 1e-9,
                                     std::uint64_t seed = 1);

/// Estimate the smallest eigenvalue of a symmetric operator (Lanczos on
/// -A: eigenvalue bounds are symmetric under negation).
template <class T>
LanczosResult lanczos_min_eigenvalue(const Operator<T>& a,
                                     int max_iterations = 200,
                                     double tol = 1e-9,
                                     std::uint64_t seed = 1);

/// Largest eigenvalue of a symmetric tridiagonal matrix (diagonal `alpha`,
/// off-diagonal `beta`) by bisection with Sturm-sequence counting.
/// Exposed for testing.
double tridiag_max_eigenvalue(std::span<const double> alpha,
                              std::span<const double> beta);

/// Smallest eigenvalue of a symmetric tridiagonal matrix.
double tridiag_min_eigenvalue(std::span<const double> alpha,
                              std::span<const double> beta);

extern template LanczosResult lanczos_max_eigenvalue(const Operator<float>&,
                                                     int, double,
                                                     std::uint64_t);
extern template LanczosResult lanczos_max_eigenvalue(const Operator<double>&,
                                                     int, double,
                                                     std::uint64_t);
extern template LanczosResult lanczos_min_eigenvalue(const Operator<float>&,
                                                     int, double,
                                                     std::uint64_t);
extern template LanczosResult lanczos_min_eigenvalue(const Operator<double>&,
                                                     int, double,
                                                     std::uint64_t);

}  // namespace spmvm::solver
