// Type-erased linear operator y = A·x for the Krylov solvers, with
// factories for every storage format. The pJDS factory keeps the solver
// entirely in the permuted basis — the paper's recommended usage, where
// permutation happens only before and after the iteration (Sec. II-A).
//
// Operators also expose the fused update y = β·y + α·A·x; formats with a
// native spmv_axpby kernel do it in one matrix pass, everything else
// falls back to apply + a BLAS-1 sweep over an internal scratch vector.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/pjds.hpp"
#include "core/pjds_spmv.hpp"
#include "sparse/csr.hpp"
#include "sparse/sliced_ell.hpp"
#include "sparse/spmv_host.hpp"
#include "util/error.hpp"

namespace spmvm::solver {

template <class T>
class Operator {
 public:
  using ApplyFn = std::function<void(std::span<const T>, std::span<T>)>;
  using ApplyAxpbyFn =
      std::function<void(std::span<const T>, std::span<T>, T, T)>;

  Operator(index_t n, ApplyFn fn, ApplyAxpbyFn axpby = nullptr)
      : n_(n), fn_(std::move(fn)), axpby_(std::move(axpby)) {
    SPMVM_REQUIRE(n >= 0, "operator size must be >= 0");
  }

  index_t size() const { return n_; }

  void apply(std::span<const T> x, std::span<T> y) const {
    check_spans(x, y);
    fn_(x, y);
  }

  /// y = beta*y + alpha*A·x in one pass when the format supports it.
  /// The fallback path reuses an internal scratch vector, so concurrent
  /// apply_axpby calls on the same Operator are not safe.
  void apply_axpby(std::span<const T> x, std::span<T> y, T alpha,
                   T beta) const {
    check_spans(x, y);
    if (axpby_) {
      axpby_(x, y, alpha, beta);
      return;
    }
    scratch_.resize(static_cast<std::size_t>(n_));
    fn_(x, std::span<T>(scratch_));
    for (std::size_t i = 0; i < scratch_.size(); ++i)
      y[i] = beta * y[i] + alpha * scratch_[i];
  }

 private:
  void check_spans(std::span<const T> x, std::span<T> y) const {
    SPMVM_REQUIRE(x.size() >= static_cast<std::size_t>(n_) &&
                      y.size() >= static_cast<std::size_t>(n_),
                  "operator vectors too small");
  }

  index_t n_;
  ApplyFn fn_;
  ApplyAxpbyFn axpby_;
  mutable std::vector<T> scratch_;
};

/// Operator over a CSR matrix (kept alive by shared ownership).
template <class T>
Operator<T> make_operator(std::shared_ptr<const Csr<T>> a, int n_threads = 1) {
  SPMVM_REQUIRE(a->n_rows == a->n_cols, "solvers need a square operator");
  const index_t n = a->n_rows;
  return Operator<T>(
      n,
      [a, n_threads](std::span<const T> x, std::span<T> y) {
        spmv(*a, x, y, n_threads);
      },
      [a, n_threads](std::span<const T> x, std::span<T> y, T alpha, T beta) {
        spmv_axpby(*a, x, y, alpha, beta, n_threads);
      });
}

/// Operator over a pJDS matrix, applied in the *permuted* basis: x and y
/// are permuted vectors. Requires a format built with symmetric
/// permutation so the basis is self-consistent.
template <class T>
Operator<T> make_permuted_operator(std::shared_ptr<const Pjds<T>> a,
                                   int n_threads = 1) {
  SPMVM_REQUIRE(a->columns_permuted,
                "permuted-basis solver needs PermuteColumns::yes");
  const index_t n = a->n_rows;
  return Operator<T>(
      n,
      [a, n_threads](std::span<const T> x, std::span<T> y) {
        spmv(*a, x, y, n_threads);
      },
      [a, n_threads](std::span<const T> x, std::span<T> y, T alpha, T beta) {
        spmv_axpby(*a, x, y, alpha, beta, n_threads);
      });
}

/// Operator over a sliced-ELLPACK matrix in its row-sorted basis. With
/// σ == 1 the permutation is the identity and this is the plain basis;
/// σ > 1 requires symmetric column relabeling (PermuteColumns::yes).
template <class T>
Operator<T> make_permuted_operator(std::shared_ptr<const SlicedEll<T>> a,
                                   int n_threads = 1) {
  SPMVM_REQUIRE(a->n_rows == a->n_cols, "solvers need a square operator");
  SPMVM_REQUIRE(a->sort_window == 1 || a->columns_permuted,
                "permuted-basis solver needs PermuteColumns::yes");
  const index_t n = a->n_rows;
  return Operator<T>(
      n,
      [a, n_threads](std::span<const T> x, std::span<T> y) {
        spmv(*a, x, y, n_threads);
      },
      [a, n_threads](std::span<const T> x, std::span<T> y, T alpha, T beta) {
        spmv_axpby(*a, x, y, alpha, beta, n_threads);
      });
}

}  // namespace spmvm::solver
