// Type-erased linear operator y = A·x for the Krylov solvers. Storage
// formats enter through the format registry: make_operator(registry,
// name, csr) resolves any registered format — including row-sorting ones,
// which keep the solver entirely in the permuted basis, the paper's
// recommended usage where permutation happens only before and after the
// iteration (Sec. II-A). Execution backends enter through the exec
// engine: make_operator(bound) wraps any exec::BoundSpmv, so a solver
// can iterate on the host, the simulated GPGPU, or the hybrid CPU+GPU
// split without knowing which. All kernel dispatch goes through the
// exec layer (exec/dispatch.hpp) — solvers never name kernel entry
// points.
//
// Operators also expose the fused update y = β·y + α·A·x; formats with a
// native fused kernel do it in one matrix pass, everything else falls
// back to apply + a BLAS-1 sweep over an internal scratch vector.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "exec/backend.hpp"
#include "exec/dispatch.hpp"
#include "formats/registry.hpp"
#include "sparse/csr.hpp"
#include "util/error.hpp"

namespace spmvm::solver {

template <class T>
class Operator {
 public:
  using ApplyFn = std::function<void(std::span<const T>, std::span<T>)>;
  using ApplyAxpbyFn =
      std::function<void(std::span<const T>, std::span<T>, T, T)>;

  Operator(index_t n, ApplyFn fn, ApplyAxpbyFn axpby = nullptr)
      : n_(n), fn_(std::move(fn)), axpby_(std::move(axpby)) {
    SPMVM_REQUIRE(n >= 0, "operator size must be >= 0");
  }

  index_t size() const { return n_; }

  void apply(std::span<const T> x, std::span<T> y) const {
    check_spans(x, y);
    fn_(x, y);
  }

  /// y = beta*y + alpha*A·x in one pass when the format supports it.
  /// The fallback path reuses an internal scratch vector, so concurrent
  /// apply_axpby calls on the same Operator are not safe.
  void apply_axpby(std::span<const T> x, std::span<T> y, T alpha,
                   T beta) const {
    check_spans(x, y);
    if (axpby_) {
      axpby_(x, y, alpha, beta);
      return;
    }
    scratch_.resize(static_cast<std::size_t>(n_));
    fn_(x, std::span<T>(scratch_));
    for (std::size_t i = 0; i < scratch_.size(); ++i)
      y[i] = beta * y[i] + alpha * scratch_[i];
  }

 private:
  void check_spans(std::span<const T> x, std::span<T> y) const {
    SPMVM_REQUIRE(x.size() >= static_cast<std::size_t>(n_) &&
                      y.size() >= static_cast<std::size_t>(n_),
                  "operator vectors too small");
  }

  index_t n_;
  ApplyFn fn_;
  ApplyAxpbyFn axpby_;
  mutable std::vector<T> scratch_;
};

/// Operator over a CSR matrix (kept alive by shared ownership) — the
/// interchange-format shortcut that needs no registry lookup.
template <class T>
Operator<T> make_operator(std::shared_ptr<const Csr<T>> a, int n_threads = 1) {
  SPMVM_REQUIRE(a->n_rows == a->n_cols, "solvers need a square operator");
  const index_t n = a->n_rows;
  return Operator<T>(
      n,
      [a, n_threads](std::span<const T> x, std::span<T> y) {
        exec::host_spmv(*a, x, y, n_threads);
      },
      [a, n_threads](std::span<const T> x, std::span<T> y, T alpha, T beta) {
        exec::host_spmv_axpby(*a, x, y, alpha, beta, n_threads);
      });
}

/// Operator over a format plan, applied in the plan's own basis: for
/// row-sorting formats x and y are *permuted* vectors (carry them across
/// with plan->permutation()). Requires a self-consistent basis — either
/// no row permutation or symmetric column relabeling — so that repeated
/// applications compose (what Krylov iterations do).
template <class T>
Operator<T> make_operator(std::shared_ptr<const formats::FormatPlan<T>> plan,
                          int n_threads = 1) {
  SPMVM_REQUIRE(plan->n_rows() == plan->n_cols(),
                "solvers need a square operator");
  SPMVM_REQUIRE(plan->permutation() == nullptr || plan->columns_permuted(),
                "permuted-basis solver needs PermuteColumns::yes");
  const index_t n = plan->n_rows();
  typename Operator<T>::ApplyAxpbyFn axpby = nullptr;
  if (plan->info().native_axpby)
    axpby = [plan, n_threads](std::span<const T> x, std::span<T> y, T alpha,
                              T beta) {
      exec::plan_spmv_axpby(*plan, x, y, alpha, beta, n_threads);
    };
  return Operator<T>(
      n,
      [plan, n_threads](std::span<const T> x, std::span<T> y) {
        exec::plan_spmv(*plan, x, y, n_threads);
      },
      std::move(axpby));
}

/// Operator over an exec-engine binding: the solver iterates on
/// whatever backend the bound product was compiled for (host, gpusim,
/// hybrid). The bound handle mutates per apply (device clocks, ledger,
/// scratch), so one Operator must not be applied concurrently.
template <class T>
Operator<T> make_operator(std::shared_ptr<exec::BoundSpmv<T>> bound) {
  SPMVM_REQUIRE(bound != nullptr, "cannot wrap a null binding");
  SPMVM_REQUIRE(bound->n_rows() == bound->n_cols(),
                "solvers need a square operator");
  const index_t n = bound->n_rows();
  return Operator<T>(
      n,
      [bound](std::span<const T> x, std::span<T> y) { bound->apply(x, y); },
      [bound](std::span<const T> x, std::span<T> y, T alpha, T beta) {
        bound->apply_axpby(x, y, alpha, beta);
      });
}

/// Build `format` from `a` through the registry and wrap it as an
/// operator — the one-line factory every former per-format overload
/// collapsed into. The plan is owned by the returned Operator; use the
/// two-step form (registry.build + make_operator) when the caller needs
/// the permutation handle.
template <class T>
Operator<T> make_operator(const formats::FormatRegistry<T>& registry,
                          std::string_view format, const Csr<T>& a,
                          const formats::PlanOptions& options = {},
                          int n_threads = 1) {
  return make_operator<T>(registry.build(format, a, options), n_threads);
}

}  // namespace spmvm::solver
