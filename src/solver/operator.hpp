// Type-erased linear operator y = A·x for the Krylov solvers, with
// factories for every storage format. The pJDS factory keeps the solver
// entirely in the permuted basis — the paper's recommended usage, where
// permutation happens only before and after the iteration (Sec. II-A).
#pragma once

#include <functional>
#include <memory>
#include <span>

#include "core/pjds.hpp"
#include "core/pjds_spmv.hpp"
#include "sparse/csr.hpp"
#include "sparse/spmv_host.hpp"
#include "util/error.hpp"

namespace spmvm::solver {

template <class T>
class Operator {
 public:
  using ApplyFn = std::function<void(std::span<const T>, std::span<T>)>;

  Operator(index_t n, ApplyFn fn) : n_(n), fn_(std::move(fn)) {
    SPMVM_REQUIRE(n >= 0, "operator size must be >= 0");
  }

  index_t size() const { return n_; }

  void apply(std::span<const T> x, std::span<T> y) const {
    SPMVM_REQUIRE(x.size() >= static_cast<std::size_t>(n_) &&
                      y.size() >= static_cast<std::size_t>(n_),
                  "operator vectors too small");
    fn_(x, y);
  }

 private:
  index_t n_;
  ApplyFn fn_;
};

/// Operator over a CSR matrix (kept alive by shared ownership).
template <class T>
Operator<T> make_operator(std::shared_ptr<const Csr<T>> a, int n_threads = 1) {
  SPMVM_REQUIRE(a->n_rows == a->n_cols, "solvers need a square operator");
  const index_t n = a->n_rows;
  return Operator<T>(n, [a, n_threads](std::span<const T> x, std::span<T> y) {
    spmv(*a, x, y, n_threads);
  });
}

/// Operator over a pJDS matrix, applied in the *permuted* basis: x and y
/// are permuted vectors. Requires a format built with symmetric
/// permutation so the basis is self-consistent.
template <class T>
Operator<T> make_permuted_operator(std::shared_ptr<const Pjds<T>> a,
                                   int n_threads = 1) {
  SPMVM_REQUIRE(a->columns_permuted,
                "permuted-basis solver needs PermuteColumns::yes");
  const index_t n = a->n_rows;
  return Operator<T>(n, [a, n_threads](std::span<const T> x, std::span<T> y) {
    spmv(*a, x, y, n_threads);
  });
}

}  // namespace spmvm::solver
