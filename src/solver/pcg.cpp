#include "solver/pcg.hpp"

#include <cmath>

#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "solver/kernels.hpp"

namespace spmvm::solver {

template <class T>
std::vector<T> extract_diagonal(const Csr<T>& a) {
  SPMVM_REQUIRE(a.n_rows == a.n_cols, "diagonal of a non-square matrix");
  std::vector<T> d(static_cast<std::size_t>(a.n_rows), T{0});
  for (index_t i = 0; i < a.n_rows; ++i)
    for (offset_t k = a.row_ptr[static_cast<std::size_t>(i)];
         k < a.row_ptr[static_cast<std::size_t>(i) + 1]; ++k)
      if (a.col_idx[static_cast<std::size_t>(k)] == i)
        d[static_cast<std::size_t>(i)] = a.val[static_cast<std::size_t>(k)];
  return d;
}

template <class T>
CgResult pcg_jacobi(const Operator<T>& a, std::span<const T> diagonal,
                    std::span<const T> b, std::span<T> x, double tol,
                    int max_iterations) {
  const auto n = static_cast<std::size_t>(a.size());
  SPMVM_REQUIRE(diagonal.size() >= n, "diagonal too short");
  for (std::size_t i = 0; i < n; ++i)
    SPMVM_REQUIRE(diagonal[i] != T{0},
                  "Jacobi preconditioner needs a non-zero diagonal");

  SPMVM_TRACE_SPAN("solver/pcg_jacobi");
  obs::LedgerScope solve_led(obs::RoofLane::host, "solver", "pcg_jacobi");
  static obs::Counter& c_iters = obs::counter("solver.iterations");
  std::vector<T> r(n), z(n), p(n), ap(n);
  // r = b - A x0 in one fused matrix pass.
  copy<T>(b, r);
  a.apply_axpby(x, std::span<T>(r), T{-1}, T{1});
  for (std::size_t i = 0; i < n; ++i) z[i] = r[i] / diagonal[i];
  copy<T>(z, p);

  const double bnorm = norm2<T>(b);
  const double stop = tol * (bnorm > 0.0 ? bnorm : 1.0);
  double rz = dot<T>(std::span<const T>(r), std::span<const T>(z));

  CgResult result;
  result.residual_norm = norm2<T>(std::span<const T>(r));
  if (result.residual_norm <= stop) {
    result.converged = true;
    return result;
  }

  for (int it = 0; it < max_iterations; ++it) {
    SPMVM_TRACE_SPAN_NAMED(iter_span, "solver/pcg_jacobi/iteration");
    c_iters.add();
    a.apply(std::span<const T>(p), std::span<T>(ap));
    const double pap = dot<T>(std::span<const T>(p), std::span<const T>(ap));
    if (pap <= 0.0) break;
    const T alpha = static_cast<T>(rz / pap);
    axpy<T>(alpha, p, x);
    axpy<T>(static_cast<T>(-alpha), ap, r);
    result.iterations = it + 1;
    result.residual_norm = norm2<T>(std::span<const T>(r));
    if (iter_span.active()) {
      iter_span.set_arg("iteration", static_cast<double>(result.iterations));
      iter_span.set_arg("residual", result.residual_norm);
    }
    obs::ledger_residual("pcg_jacobi", result.iterations,
                         result.residual_norm);
    if (result.residual_norm <= stop) {
      result.converged = true;
      break;
    }
    for (std::size_t i = 0; i < n; ++i) z[i] = r[i] / diagonal[i];
    const double rz_new =
        dot<T>(std::span<const T>(r), std::span<const T>(z));
    const T beta = static_cast<T>(rz_new / rz);
    xpay<T>(z, beta, p);  // p = z + beta p
    rz = rz_new;
  }
  return result;
}

#define SPMVM_INSTANTIATE_PCG(T)                                       \
  template std::vector<T> extract_diagonal(const Csr<T>&);             \
  template CgResult pcg_jacobi(const Operator<T>&, std::span<const T>, \
                               std::span<const T>, std::span<T>,       \
                               double, int)

SPMVM_INSTANTIATE_PCG(float);
SPMVM_INSTANTIATE_PCG(double);

}  // namespace spmvm::solver
