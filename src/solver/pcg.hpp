// Jacobi-preconditioned Conjugate Gradient.
//
// Diagonal preconditioning is the cheapest accelerator for the
// diagonally dominant systems the generators produce, and it adds the
// element-wise M⁻¹·r step a production solver would run between spMVMs.
#pragma once

#include "solver/cg.hpp"
#include "solver/operator.hpp"

namespace spmvm::solver {

/// Extract the diagonal of a CSR matrix (missing entries are 0).
template <class T>
std::vector<T> extract_diagonal(const Csr<T>& a);

/// Preconditioned CG with M = diag(d): solve A·x = b, converging when
/// ||r|| <= tol·||b||. All diagonal entries must be non-zero.
template <class T>
CgResult pcg_jacobi(const Operator<T>& a, std::span<const T> diagonal,
                    std::span<const T> b, std::span<T> x, double tol = 1e-10,
                    int max_iterations = 1000);

#define SPMVM_EXTERN_PCG(T)                                              \
  extern template std::vector<T> extract_diagonal(const Csr<T>&);        \
  extern template CgResult pcg_jacobi(const Operator<T>&,                \
                                      std::span<const T>,                \
                                      std::span<const T>, std::span<T>,  \
                                      double, int)

SPMVM_EXTERN_PCG(float);
SPMVM_EXTERN_PCG(double);
#undef SPMVM_EXTERN_PCG

}  // namespace spmvm::solver
