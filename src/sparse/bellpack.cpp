#include "sparse/bellpack.hpp"

#include <algorithm>
#include <cstdint>
#include <map>

#include "obs/ledger.hpp"
#include "obs/trace.hpp"
#include "sparse/footprint.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace spmvm {

template <class T>
Bellpack<T> Bellpack<T>::from_csr(const Csr<T>& a, index_t block_r,
                                  index_t block_c, index_t row_chunk) {
  SPMVM_REQUIRE(block_r >= 1 && block_c >= 1, "tile dims must be >= 1");
  SPMVM_REQUIRE(row_chunk >= 1, "row chunk must be >= 1");
  Bellpack<T> m;
  m.n_rows = a.n_rows;
  m.n_cols = a.n_cols;
  m.block_r = block_r;
  m.block_c = block_c;
  m.n_block_rows = (a.n_rows + block_r - 1) / block_r;
  m.padded_block_rows =
      ((m.n_block_rows + row_chunk - 1) / row_chunk) * row_chunk;
  m.nnz = a.nnz();

  // Pass 1: which block columns does each block row touch?
  std::vector<std::vector<index_t>> tiles(
      static_cast<std::size_t>(m.n_block_rows));
  for (index_t I = 0; I < m.n_block_rows; ++I) {
    auto& list = tiles[static_cast<std::size_t>(I)];
    const index_t r0 = I * block_r;
    const index_t r1 = std::min<index_t>(r0 + block_r, a.n_rows);
    for (index_t i = r0; i < r1; ++i)
      for (offset_t k = a.row_ptr[static_cast<std::size_t>(i)];
           k < a.row_ptr[static_cast<std::size_t>(i) + 1]; ++k)
        list.push_back(a.col_idx[static_cast<std::size_t>(k)] / block_c);
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    m.width = std::max(m.width, static_cast<index_t>(list.size()));
  }

  m.stored_blocks =
      static_cast<offset_t>(m.width) * m.padded_block_rows;
  m.val.assign(static_cast<std::size_t>(m.stored_entries()), T{0});
  m.block_col.assign(static_cast<std::size_t>(m.stored_blocks), index_t{0});
  m.block_row_len.assign(static_cast<std::size_t>(m.padded_block_rows),
                         index_t{0});

  // Pass 2: fill tile payloads.
  const std::size_t tile_scalars =
      static_cast<std::size_t>(block_r) * static_cast<std::size_t>(block_c);
  for (index_t I = 0; I < m.n_block_rows; ++I) {
    const auto& list = tiles[static_cast<std::size_t>(I)];
    m.block_row_len[static_cast<std::size_t>(I)] =
        static_cast<index_t>(list.size());
    std::map<index_t, index_t> slot_of;  // block col -> slot j
    for (index_t j = 0; j < static_cast<index_t>(list.size()); ++j) {
      const std::size_t slot = static_cast<std::size_t>(j) *
                                   static_cast<std::size_t>(m.padded_block_rows) +
                               static_cast<std::size_t>(I);
      m.block_col[slot] = list[static_cast<std::size_t>(j)];
      slot_of[list[static_cast<std::size_t>(j)]] = j;
    }
    const index_t r0 = I * block_r;
    const index_t r1 = std::min<index_t>(r0 + block_r, a.n_rows);
    for (index_t i = r0; i < r1; ++i)
      for (offset_t k = a.row_ptr[static_cast<std::size_t>(i)];
           k < a.row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
        const index_t c = a.col_idx[static_cast<std::size_t>(k)];
        const index_t j = slot_of.at(c / block_c);
        const std::size_t slot = static_cast<std::size_t>(j) *
                                     static_cast<std::size_t>(m.padded_block_rows) +
                                 static_cast<std::size_t>(I);
        const std::size_t within =
            static_cast<std::size_t>(i - r0) *
                static_cast<std::size_t>(block_c) +
            static_cast<std::size_t>(c % block_c);
        m.val[slot * tile_scalars + within] =
            a.val[static_cast<std::size_t>(k)];
      }
  }
  return m;
}

template <class T>
std::size_t Bellpack<T>::bytes() const {
  return val.size() * sizeof(T) + block_col.size() * sizeof(index_t) +
         block_row_len.size() * sizeof(index_t);
}

template <class T>
double Bellpack<T>::fill_fraction() const {
  if (stored_entries() == 0) return 0.0;
  return 1.0 -
         static_cast<double>(nnz) / static_cast<double>(stored_entries());
}

template <class T>
void Bellpack<T>::validate() const {
  SPMVM_REQUIRE(val.size() == static_cast<std::size_t>(stored_entries()),
                "val size mismatch");
  SPMVM_REQUIRE(block_col.size() == static_cast<std::size_t>(stored_blocks),
                "block_col size mismatch");
  for (index_t I = 0; I < padded_block_rows; ++I) {
    const index_t len = block_row_len[static_cast<std::size_t>(I)];
    SPMVM_REQUIRE(len >= 0 && len <= width, "block row exceeds width");
    SPMVM_REQUIRE(I < n_block_rows || len == 0, "padding rows must be empty");
  }
}

template <class T>
void spmv(const Bellpack<T>& a, std::span<const T> x, std::span<T> y,
          int n_threads) {
  SPMVM_REQUIRE(x.size() >= static_cast<std::size_t>(a.n_cols),
                "input vector too short");
  SPMVM_REQUIRE(y.size() >= static_cast<std::size_t>(a.n_rows),
                "output vector too short");
  SPMVM_TRACE_SPAN_NAMED(span, "kernel/bellpack");
  obs::LedgerScope led(obs::RoofLane::host, "bellpack", "spmv");
  if (span.active() || led.active()) {
    // Streamed bytes per call: stored footprint + one RHS read and one
    // LHS write (the Eq. 1 accounting of sparse/spmv_host.cpp).
    const std::uint64_t nnz = static_cast<std::uint64_t>(a.stored_entries());
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(footprint(a).total_bytes(sizeof(T))) +
        (static_cast<std::uint64_t>(a.n_rows) +
         static_cast<std::uint64_t>(a.n_cols)) *
            sizeof(T);
    span.set_bytes(bytes);
    obs::WorkDesc w;
    w.bytes = bytes;
    w.flops = 2 * nnz;
    w.nnz = nnz;
    w.alpha = nnz > 0
                  ? static_cast<double>(a.n_rows) / static_cast<double>(nnz)
                  : 0.0;
    led.set_work(w);
  }
  const std::size_t tile_scalars =
      static_cast<std::size_t>(a.block_r) * static_cast<std::size_t>(a.block_c);
  parallel_for(
      static_cast<std::size_t>(a.n_block_rows), n_threads,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t I = begin; I < end; ++I) {
          const index_t r0 = static_cast<index_t>(I) * a.block_r;
          const index_t rows =
              std::min<index_t>(a.block_r, a.n_rows - r0);
          for (index_t r = 0; r < rows; ++r)
            y[static_cast<std::size_t>(r0 + r)] = T{0};
          const index_t len = a.block_row_len[I];
          for (index_t j = 0; j < len; ++j) {
            const std::size_t slot =
                static_cast<std::size_t>(j) *
                    static_cast<std::size_t>(a.padded_block_rows) +
                I;
            const index_t c0 = a.block_col[slot] * a.block_c;
            const T* tile = a.val.data() + slot * tile_scalars;
            const index_t cols =
                std::min<index_t>(a.block_c, a.n_cols - c0);
            for (index_t r = 0; r < rows; ++r) {
              T acc{0};
              for (index_t c = 0; c < cols; ++c)
                acc += tile[static_cast<std::size_t>(r) *
                                static_cast<std::size_t>(a.block_c) +
                            static_cast<std::size_t>(c)] *
                       x[static_cast<std::size_t>(c0 + c)];
              y[static_cast<std::size_t>(r0 + r)] += acc;
            }
          }
        }
      });
}

#define SPMVM_INSTANTIATE_BELLPACK(T)                              \
  template struct Bellpack<T>;                                     \
  template void spmv(const Bellpack<T>&, std::span<const T>,       \
                     std::span<T>, int)

SPMVM_INSTANTIATE_BELLPACK(float);
SPMVM_INSTANTIATE_BELLPACK(double);

}  // namespace spmvm
