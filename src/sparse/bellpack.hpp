// BELLPACK-style blocked ELLPACK (Choi, Singh & Vuduc, ref. [2] of the
// paper): the matrix is tiled into dense block_r x block_c blocks; block
// rows are compressed leftwards and padded ELLPACK-style. One column
// index per *block* cuts index storage by block_r*block_c, but any
// non-zero inside a tile materializes the whole tile — the format pays
// off only for matrices with genuine dense substructure (DLR2's 5x5
// blocks) and needs the block shape as a priori knowledge, which is
// exactly the contrast the paper draws with pJDS.
#pragma once

#include "sparse/csr.hpp"
#include "util/aligned_buffer.hpp"

namespace spmvm {

template <class T>
struct Bellpack {
  index_t n_rows = 0;
  index_t n_cols = 0;
  index_t block_r = 0;  // tile height
  index_t block_c = 0;  // tile width
  index_t n_block_rows = 0;       // ceil(n_rows / block_r)
  index_t padded_block_rows = 0;  // rounded up to row_chunk
  index_t width = 0;              // max tiles per block row
  offset_t nnz = 0;               // true scalar non-zeros
  offset_t stored_blocks = 0;     // width * padded_block_rows

  // Tile slot (I, j) lives at j * padded_block_rows + I; its dense
  // payload occupies block_r*block_c consecutive scalars (row-major
  // within the tile) in val.
  AlignedVector<T> val;
  AlignedVector<index_t> block_col;      // block-column index per slot
  AlignedVector<index_t> block_row_len;  // tiles per block row

  static Bellpack from_csr(const Csr<T>& a, index_t block_r, index_t block_c,
                           index_t row_chunk = 32);

  /// Scalar slots stored including tile fill and ELLPACK padding.
  offset_t stored_entries() const {
    return stored_blocks * block_r * block_c;
  }

  /// Device bytes: dense tiles + one index per tile + tile counts.
  std::size_t bytes() const;

  /// Fraction of stored scalar slots that are fill.
  double fill_fraction() const;

  void validate() const;
};

/// y = A·x with the blocked kernel (tile-dense inner loops).
template <class T>
void spmv(const Bellpack<T>& a, std::span<const T> x, std::span<T> y,
          int n_threads = 1);

#define SPMVM_EXTERN_BELLPACK(T)                                   \
  extern template struct Bellpack<T>;                              \
  extern template void spmv(const Bellpack<T>&, std::span<const T>, \
                            std::span<T>, int)

SPMVM_EXTERN_BELLPACK(float);
SPMVM_EXTERN_BELLPACK(double);
#undef SPMVM_EXTERN_BELLPACK

}  // namespace spmvm
