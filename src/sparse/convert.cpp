#include "sparse/convert.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace spmvm {

template <class T>
Csr<T> permute_csr(const Csr<T>& a, const Permutation& perm,
                   PermuteColumns permute_columns) {
  SPMVM_REQUIRE(perm.size() == a.n_rows, "permutation size must match rows");
  if (permute_columns == PermuteColumns::yes)
    SPMVM_REQUIRE(a.n_rows == a.n_cols,
                  "symmetric permutation requires a square matrix");

  Csr<T> out;
  out.n_rows = a.n_rows;
  out.n_cols = a.n_cols;
  out.row_ptr.assign(static_cast<std::size_t>(a.n_rows) + 1, 0);
  out.col_idx.resize(static_cast<std::size_t>(a.nnz()));
  out.val.resize(static_cast<std::size_t>(a.nnz()));

  for (index_t r = 0; r < a.n_rows; ++r)
    out.row_ptr[static_cast<std::size_t>(r) + 1] =
        out.row_ptr[static_cast<std::size_t>(r)] + a.row_len(perm.old_of(r));

  std::vector<std::pair<index_t, T>> row;
  for (index_t r = 0; r < a.n_rows; ++r) {
    const index_t src = perm.old_of(r);
    const offset_t b = a.row_ptr[static_cast<std::size_t>(src)];
    const offset_t e = a.row_ptr[static_cast<std::size_t>(src) + 1];
    row.clear();
    for (offset_t k = b; k < e; ++k) {
      index_t c = a.col_idx[static_cast<std::size_t>(k)];
      if (permute_columns == PermuteColumns::yes) c = perm.new_of(c);
      row.emplace_back(c, a.val[static_cast<std::size_t>(k)]);
    }
    if (permute_columns == PermuteColumns::yes)
      std::sort(row.begin(), row.end(),
                [](const auto& x, const auto& y) { return x.first < y.first; });
    offset_t dst = out.row_ptr[static_cast<std::size_t>(r)];
    for (const auto& [c, v] : row) {
      out.col_idx[static_cast<std::size_t>(dst)] = c;
      out.val[static_cast<std::size_t>(dst)] = v;
      ++dst;
    }
  }
  return out;
}

template <class T>
Csr<T> transpose(const Csr<T>& a) {
  Csr<T> t;
  t.n_rows = a.n_cols;
  t.n_cols = a.n_rows;
  t.row_ptr.assign(static_cast<std::size_t>(a.n_cols) + 1, 0);
  t.col_idx.resize(static_cast<std::size_t>(a.nnz()));
  t.val.resize(static_cast<std::size_t>(a.nnz()));

  for (offset_t k = 0; k < a.nnz(); ++k)
    t.row_ptr[static_cast<std::size_t>(a.col_idx[static_cast<std::size_t>(k)]) +
              1]++;
  for (index_t c = 0; c < a.n_cols; ++c)
    t.row_ptr[static_cast<std::size_t>(c) + 1] +=
        t.row_ptr[static_cast<std::size_t>(c)];

  std::vector<offset_t> cursor(t.row_ptr.begin(), t.row_ptr.end() - 1);
  for (index_t i = 0; i < a.n_rows; ++i) {
    for (offset_t k = a.row_ptr[static_cast<std::size_t>(i)];
         k < a.row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      const index_t c = a.col_idx[static_cast<std::size_t>(k)];
      const offset_t dst = cursor[static_cast<std::size_t>(c)]++;
      t.col_idx[static_cast<std::size_t>(dst)] = i;
      t.val[static_cast<std::size_t>(dst)] = a.val[static_cast<std::size_t>(k)];
    }
  }
  return t;
}

template <class T>
bool is_symmetric(const Csr<T>& a) {
  if (a.n_rows != a.n_cols) return false;
  return structurally_equal(a, transpose(a));
}

template Csr<float> permute_csr(const Csr<float>&, const Permutation&,
                                PermuteColumns);
template Csr<double> permute_csr(const Csr<double>&, const Permutation&,
                                 PermuteColumns);
template Csr<float> transpose(const Csr<float>&);
template Csr<double> transpose(const Csr<double>&);
template bool is_symmetric(const Csr<float>&);
template bool is_symmetric(const Csr<double>&);

}  // namespace spmvm
