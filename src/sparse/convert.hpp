// Structure-changing CSR transformations: permutation and transpose.
//
// All row-reordering formats (JDS, sliced-ELL, pJDS) are built by first
// materializing the permuted CSR matrix, so the reorder logic lives in
// exactly one place.
#pragma once

#include "sparse/csr.hpp"
#include "sparse/permutation.hpp"

namespace spmvm {

/// Apply a row permutation to `a`: row r of the result is row perm.old_of(r)
/// of `a`. With PermuteColumns::yes the columns are relabeled with the same
/// permutation (symmetric permutation P·A·Pᵀ; requires a square matrix) and
/// each row is re-sorted by the new column indices.
template <class T>
Csr<T> permute_csr(const Csr<T>& a, const Permutation& perm,
                   PermuteColumns permute_columns);

/// Transpose of a CSR matrix (CSC view materialized as CSR).
template <class T>
Csr<T> transpose(const Csr<T>& a);

/// True if the matrix equals its transpose (structure and values).
template <class T>
bool is_symmetric(const Csr<T>& a);

extern template Csr<float> permute_csr(const Csr<float>&, const Permutation&,
                                       PermuteColumns);
extern template Csr<double> permute_csr(const Csr<double>&, const Permutation&,
                                        PermuteColumns);
extern template Csr<float> transpose(const Csr<float>&);
extern template Csr<double> transpose(const Csr<double>&);
extern template bool is_symmetric(const Csr<float>&);
extern template bool is_symmetric(const Csr<double>&);

}  // namespace spmvm
