#include "sparse/coo.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace spmvm {

template <class T>
Coo<T>::Coo(index_t n_rows, index_t n_cols)
    : n_rows_(n_rows), n_cols_(n_cols) {
  SPMVM_REQUIRE(n_rows >= 0 && n_cols >= 0, "matrix dimensions must be >= 0");
}

template <class T>
void Coo<T>::add(index_t row, index_t col, T value) {
  SPMVM_REQUIRE(row >= 0 && row < n_rows_, "row index out of range");
  SPMVM_REQUIRE(col >= 0 && col < n_cols_, "column index out of range");
  entries_.push_back({row, col, value});
}

template <class T>
void Coo<T>::add_symmetric(index_t row, index_t col, T value) {
  add(row, col, value);
  if (row != col) add(col, row, value);
}

template <class T>
void Coo<T>::sort_and_combine() {
  std::sort(entries_.begin(), entries_.end(),
            [](const Triplet<T>& a, const Triplet<T>& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  std::size_t out = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (out > 0 && entries_[out - 1].row == entries_[i].row &&
        entries_[out - 1].col == entries_[i].col) {
      entries_[out - 1].val += entries_[i].val;
    } else {
      entries_[out++] = entries_[i];
    }
  }
  entries_.resize(out);
}

template class Coo<float>;
template class Coo<double>;

}  // namespace spmvm
