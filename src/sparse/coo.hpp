// Coordinate-format matrix builder.
//
// COO is the assembly format: generators and the Matrix Market reader
// accumulate (row, col, value) triplets here, then convert to CSR, which
// is the canonical interchange format for everything downstream.
#pragma once

#include <vector>

#include "util/types.hpp"

namespace spmvm {

template <class T>
struct Triplet {
  index_t row;
  index_t col;
  T val;
};

template <class T>
class Coo {
 public:
  Coo(index_t n_rows, index_t n_cols);

  index_t n_rows() const { return n_rows_; }
  index_t n_cols() const { return n_cols_; }
  offset_t size() const { return static_cast<offset_t>(entries_.size()); }

  /// Append one entry; duplicate (row, col) pairs are summed on conversion.
  void add(index_t row, index_t col, T value);

  /// Append value at (row, col) and, if off-diagonal, also at (col, row).
  void add_symmetric(index_t row, index_t col, T value);

  void reserve(offset_t n) { entries_.reserve(static_cast<std::size_t>(n)); }

  const std::vector<Triplet<T>>& entries() const { return entries_; }

  /// Sort by (row, col) and sum duplicates in place.
  void sort_and_combine();

 private:
  index_t n_rows_;
  index_t n_cols_;
  std::vector<Triplet<T>> entries_;
};

extern template class Coo<float>;
extern template class Coo<double>;

}  // namespace spmvm
