#include "sparse/csr.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace spmvm {

template <class T>
index_t Csr<T>::max_row_len() const {
  index_t w = 0;
  for (index_t i = 0; i < n_rows; ++i) w = std::max(w, row_len(i));
  return w;
}

template <class T>
index_t Csr<T>::min_row_len() const {
  if (n_rows == 0) return 0;
  index_t w = row_len(0);
  for (index_t i = 1; i < n_rows; ++i) w = std::min(w, row_len(i));
  return w;
}

template <class T>
double Csr<T>::avg_row_len() const {
  return n_rows == 0 ? 0.0
                     : static_cast<double>(nnz()) / static_cast<double>(n_rows);
}

template <class T>
std::size_t Csr<T>::bytes() const {
  return val.size() * sizeof(T) + col_idx.size() * sizeof(index_t) +
         row_ptr.size() * sizeof(offset_t);
}

template <class T>
void Csr<T>::validate() const {
  SPMVM_REQUIRE(row_ptr.size() == static_cast<std::size_t>(n_rows) + 1,
                "row_ptr size mismatch");
  SPMVM_REQUIRE(row_ptr.front() == 0, "row_ptr must start at 0");
  for (index_t i = 0; i < n_rows; ++i) {
    const offset_t b = row_ptr[static_cast<std::size_t>(i)];
    const offset_t e = row_ptr[static_cast<std::size_t>(i) + 1];
    SPMVM_REQUIRE(b <= e, "row_ptr must be non-decreasing");
    for (offset_t k = b; k < e; ++k) {
      const index_t c = col_idx[static_cast<std::size_t>(k)];
      SPMVM_REQUIRE(c >= 0 && c < n_cols, "column index out of range");
      if (k > b)
        SPMVM_REQUIRE(col_idx[static_cast<std::size_t>(k) - 1] < c,
                      "column indices must be strictly increasing per row");
    }
  }
  SPMVM_REQUIRE(col_idx.size() == static_cast<std::size_t>(nnz()),
                "col_idx size mismatch");
  SPMVM_REQUIRE(val.size() == static_cast<std::size_t>(nnz()),
                "val size mismatch");
}

template <class T>
Csr<T> Csr<T>::from_coo(Coo<T> coo) {
  coo.sort_and_combine();
  Csr<T> m;
  m.n_rows = coo.n_rows();
  m.n_cols = coo.n_cols();
  m.row_ptr.assign(static_cast<std::size_t>(m.n_rows) + 1, 0);
  m.col_idx.reserve(coo.entries().size());
  m.val.reserve(coo.entries().size());
  for (const auto& e : coo.entries()) {
    m.row_ptr[static_cast<std::size_t>(e.row) + 1]++;
    m.col_idx.push_back(e.col);
    m.val.push_back(e.val);
  }
  for (index_t i = 0; i < m.n_rows; ++i)
    m.row_ptr[static_cast<std::size_t>(i) + 1] +=
        m.row_ptr[static_cast<std::size_t>(i)];
  return m;
}

template <class T>
std::vector<T> Csr<T>::dense_row(index_t i) const {
  SPMVM_REQUIRE(i >= 0 && i < n_rows, "row index out of range");
  std::vector<T> out(static_cast<std::size_t>(n_cols), T{0});
  for (offset_t k = row_ptr[static_cast<std::size_t>(i)];
       k < row_ptr[static_cast<std::size_t>(i) + 1]; ++k)
    out[static_cast<std::size_t>(col_idx[static_cast<std::size_t>(k)])] =
        val[static_cast<std::size_t>(k)];
  return out;
}

template <class T>
bool structurally_equal(const Csr<T>& a, const Csr<T>& b) {
  return a.n_rows == b.n_rows && a.n_cols == b.n_cols &&
         std::equal(a.row_ptr.begin(), a.row_ptr.end(), b.row_ptr.begin(),
                    b.row_ptr.end()) &&
         std::equal(a.col_idx.begin(), a.col_idx.end(), b.col_idx.begin(),
                    b.col_idx.end()) &&
         std::equal(a.val.begin(), a.val.end(), b.val.begin(), b.val.end());
}

template struct Csr<float>;
template struct Csr<double>;
template bool structurally_equal(const Csr<float>&, const Csr<float>&);
template bool structurally_equal(const Csr<double>&, const Csr<double>&);

}  // namespace spmvm
