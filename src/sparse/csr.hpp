// Compressed Row Storage (CRS/CSR) — the canonical host format.
//
// The paper's CPU baseline (Table I, last row) runs CRS on a Westmere
// node; in this project CSR is additionally the interchange format from
// which every GPU-oriented format (ELLPACK, ELLPACK-R, JDS, sliced-ELL,
// pJDS) is constructed.
#pragma once

#include <span>

#include "sparse/coo.hpp"
#include "util/aligned_buffer.hpp"
#include "util/types.hpp"

namespace spmvm {

template <class T>
struct Csr {
  index_t n_rows = 0;
  index_t n_cols = 0;
  AlignedVector<offset_t> row_ptr;  // size n_rows + 1
  AlignedVector<index_t> col_idx;   // size nnz
  AlignedVector<T> val;             // size nnz

  offset_t nnz() const { return row_ptr.empty() ? 0 : row_ptr.back(); }
  index_t row_len(index_t i) const {
    return static_cast<index_t>(row_ptr[static_cast<std::size_t>(i) + 1] -
                                row_ptr[static_cast<std::size_t>(i)]);
  }
  /// Longest row (N^max_nzr in the paper); 0 for an empty matrix.
  index_t max_row_len() const;
  /// Shortest row; 0 for an empty matrix.
  index_t min_row_len() const;
  /// Average non-zeros per row (N_nzr).
  double avg_row_len() const;

  /// Bytes of the CSR representation itself (values + indices + pointers).
  std::size_t bytes() const;

  /// Structural invariants: monotone row_ptr, in-range sorted column
  /// indices. Throws spmvm::Error on violation.
  void validate() const;

  /// Build from (possibly unsorted, duplicated) COO entries.
  static Csr from_coo(Coo<T> coo);

  /// Dense row extraction for testing (size n_cols, zero-filled).
  std::vector<T> dense_row(index_t i) const;
};

/// Deep equality of structure and values (exact compare; for tests).
template <class T>
bool structurally_equal(const Csr<T>& a, const Csr<T>& b);

extern template struct Csr<float>;
extern template struct Csr<double>;
extern template bool structurally_equal(const Csr<float>&, const Csr<float>&);
extern template bool structurally_equal(const Csr<double>&, const Csr<double>&);

}  // namespace spmvm
