#include "sparse/ellpack.hpp"

#include "util/error.hpp"

namespace spmvm {

template <class T>
Ellpack<T> Ellpack<T>::from_csr(const Csr<T>& a, index_t row_chunk) {
  SPMVM_REQUIRE(row_chunk >= 1, "row chunk must be >= 1");
  Ellpack<T> e;
  e.n_rows = a.n_rows;
  e.n_cols = a.n_cols;
  e.padded_rows =
      ((a.n_rows + row_chunk - 1) / row_chunk) * row_chunk;
  e.width = a.max_row_len();
  e.nnz = a.nnz();
  const std::size_t total = static_cast<std::size_t>(e.stored_entries());
  e.val.assign(total, T{0});
  e.col_idx.assign(total, index_t{0});
  e.row_len.assign(static_cast<std::size_t>(e.padded_rows), index_t{0});
  for (index_t i = 0; i < a.n_rows; ++i) {
    const offset_t b = a.row_ptr[static_cast<std::size_t>(i)];
    const offset_t len = a.row_ptr[static_cast<std::size_t>(i) + 1] - b;
    e.row_len[static_cast<std::size_t>(i)] = static_cast<index_t>(len);
    for (offset_t j = 0; j < len; ++j) {
      const std::size_t dst = static_cast<std::size_t>(j) *
                                  static_cast<std::size_t>(e.padded_rows) +
                              static_cast<std::size_t>(i);
      e.val[dst] = a.val[static_cast<std::size_t>(b + j)];
      e.col_idx[dst] = a.col_idx[static_cast<std::size_t>(b + j)];
    }
  }
  return e;
}

template <class T>
std::size_t Ellpack<T>::bytes(bool with_row_len) const {
  std::size_t b = val.size() * sizeof(T) + col_idx.size() * sizeof(index_t);
  if (with_row_len) b += row_len.size() * sizeof(index_t);
  return b;
}

template <class T>
double Ellpack<T>::fill_fraction() const {
  if (stored_entries() == 0) return 0.0;
  return 1.0 -
         static_cast<double>(nnz) / static_cast<double>(stored_entries());
}

template <class T>
void Ellpack<T>::validate() const {
  SPMVM_REQUIRE(padded_rows >= n_rows, "padded rows below logical rows");
  SPMVM_REQUIRE(val.size() == static_cast<std::size_t>(stored_entries()),
                "val size mismatch");
  SPMVM_REQUIRE(col_idx.size() == val.size(), "col_idx size mismatch");
  SPMVM_REQUIRE(row_len.size() == static_cast<std::size_t>(padded_rows),
                "row_len size mismatch");
  offset_t counted = 0;
  for (index_t i = 0; i < padded_rows; ++i) {
    const index_t len = row_len[static_cast<std::size_t>(i)];
    SPMVM_REQUIRE(len >= 0 && len <= width, "row length exceeds width");
    SPMVM_REQUIRE(i < n_rows || len == 0, "padding rows must be empty");
    counted += len;
  }
  SPMVM_REQUIRE(counted == nnz, "nnz mismatch");
}

template struct Ellpack<float>;
template struct Ellpack<double>;

}  // namespace spmvm
