// ELLPACK / ELLPACK-R storage (Sec. II-A, Fig. 2a/b of the paper).
//
// Rows are compressed leftwards and the resulting N × N^max_nzr rectangle
// is stored column-by-column, zero-padded. The same storage serves both
// kernels: plain ELLPACK iterates the full width; ELLPACK-R additionally
// keeps the per-row non-zero count (rowmax[]) so threads stop early.
#pragma once

#include "sparse/csr.hpp"
#include "util/aligned_buffer.hpp"
#include "util/types.hpp"

namespace spmvm {

template <class T>
struct Ellpack {
  index_t n_rows = 0;       // logical rows
  index_t n_cols = 0;
  index_t padded_rows = 0;  // n_rows rounded up to row_chunk (warp size)
  index_t width = 0;        // N^max_nzr
  offset_t nnz = 0;         // true non-zeros

  // Column-major rectangle: entry (i, j) lives at j * padded_rows + i.
  // Padding entries have val 0 and col_idx 0.
  AlignedVector<T> val;
  AlignedVector<index_t> col_idx;
  // Per-row non-zero count; the paper's rowmax[] (ELLPACK-R only).
  AlignedVector<index_t> row_len;

  /// Build from CSR, padding the row count to a multiple of `row_chunk`
  /// (the warp size; footnote 2 in the paper).
  static Ellpack from_csr(const Csr<T>& a, index_t row_chunk = 32);

  /// Stored entries including zero fill.
  offset_t stored_entries() const {
    return static_cast<offset_t>(width) * padded_rows;
  }

  /// Device bytes of val + col_idx (+ row_len when ELLPACK-R).
  std::size_t bytes(bool with_row_len) const;

  /// Fraction of stored entries that are zero fill.
  double fill_fraction() const;

  void validate() const;
};

extern template struct Ellpack<float>;
extern template struct Ellpack<double>;

}  // namespace spmvm
