#include "sparse/footprint.hpp"

#include "util/error.hpp"

namespace spmvm {

template <class T>
Footprint footprint(const Csr<T>& a) {
  Footprint f;
  f.stored_entries = a.nnz();
  f.index_entries = a.nnz();
  f.true_nnz = a.nnz();
  f.aux_bytes = a.row_ptr.size() * sizeof(offset_t);
  return f;
}

template <class T>
Footprint footprint(const Ellpack<T>& a, bool with_row_len) {
  Footprint f;
  f.stored_entries = a.stored_entries();
  f.index_entries = a.stored_entries();
  f.true_nnz = a.nnz;
  f.aux_bytes = with_row_len ? a.row_len.size() * sizeof(index_t) : 0;
  return f;
}

template <class T>
Footprint footprint(const Jds<T>& a) {
  Footprint f;
  f.stored_entries = a.nnz;
  f.index_entries = a.nnz;
  f.true_nnz = a.nnz;
  f.aux_bytes = a.jd_ptr.size() * sizeof(offset_t) +
                a.row_len.size() * sizeof(index_t);
  return f;
}

template <class T>
Footprint footprint(const SlicedEll<T>& a) {
  Footprint f;
  f.stored_entries = a.stored_entries();
  f.index_entries = a.stored_entries();
  f.true_nnz = a.nnz;
  f.aux_bytes = a.slice_ptr.size() * sizeof(offset_t) +
                a.row_len.size() * sizeof(index_t);
  return f;
}

template <class T>
Footprint footprint(const Pjds<T>& a) {
  Footprint f;
  f.stored_entries = a.stored_entries();
  f.index_entries = a.stored_entries();
  f.true_nnz = a.nnz;
  f.aux_bytes = a.col_start.size() * sizeof(offset_t) +
                a.row_len.size() * sizeof(index_t);
  return f;
}

template <class T>
Footprint footprint(const Bellpack<T>& a) {
  Footprint f;
  f.stored_entries = a.stored_entries();
  f.index_entries = a.stored_blocks;  // one column index per tile
  f.true_nnz = a.nnz;
  f.aux_bytes = a.block_row_len.size() * sizeof(index_t);
  return f;
}

template <class T>
double data_reduction_percent(const Pjds<T>& pjds, const Ellpack<T>& ell) {
  SPMVM_REQUIRE(pjds.nnz == ell.nnz,
                "formats must describe the same matrix");
  if (ell.stored_entries() == 0) return 0.0;
  return 100.0 * (1.0 - static_cast<double>(pjds.stored_entries()) /
                            static_cast<double>(ell.stored_entries()));
}

#define SPMVM_INSTANTIATE_FOOTPRINT(T)                         \
  template Footprint footprint(const Csr<T>&);                 \
  template Footprint footprint(const Ellpack<T>&, bool);       \
  template Footprint footprint(const Jds<T>&);                 \
  template Footprint footprint(const SlicedEll<T>&);           \
  template Footprint footprint(const Pjds<T>&);                \
  template Footprint footprint(const Bellpack<T>&);            \
  template double data_reduction_percent(const Pjds<T>&,       \
                                         const Ellpack<T>&)

SPMVM_INSTANTIATE_FOOTPRINT(float);
SPMVM_INSTANTIATE_FOOTPRINT(double);

}  // namespace spmvm
