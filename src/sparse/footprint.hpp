// Memory footprint accounting across storage formats (Table I's
// "data reduction" row and the storage sizes of Fig. 2).
#pragma once

#include "sparse/pjds.hpp"
#include "sparse/bellpack.hpp"
#include "sparse/csr.hpp"
#include "sparse/ellpack.hpp"
#include "sparse/jds.hpp"
#include "sparse/sliced_ell.hpp"

namespace spmvm {

/// Byte breakdown of one matrix representation on the device, split by
/// the scalar size so SP/DP footprints can both be reported.
struct Footprint {
  offset_t stored_entries = 0;  // matrix entries incl. zero fill
  offset_t index_entries = 0;   // column indices stored (== stored_entries
                                // except blocked formats: one per tile)
  offset_t true_nnz = 0;
  std::size_t aux_bytes = 0;  // row_len / col_start / slice_ptr / row_ptr

  std::size_t value_bytes(std::size_t scalar_size) const {
    return static_cast<std::size_t>(stored_entries) * scalar_size;
  }
  std::size_t index_bytes() const {
    return static_cast<std::size_t>(index_entries) * sizeof(index_t);
  }
  std::size_t total_bytes(std::size_t scalar_size) const {
    return value_bytes(scalar_size) + index_bytes() + aux_bytes;
  }
  /// Fill entries relative to true non-zeros (0 = perfectly compact).
  double overhead_vs_minimum() const {
    return true_nnz == 0 ? 0.0
                         : static_cast<double>(stored_entries - true_nnz) /
                               static_cast<double>(true_nnz);
  }
};

template <class T>
Footprint footprint(const Csr<T>& a);
template <class T>
Footprint footprint(const Ellpack<T>& a, bool with_row_len);
template <class T>
Footprint footprint(const Jds<T>& a);
template <class T>
Footprint footprint(const SlicedEll<T>& a);
template <class T>
Footprint footprint(const Pjds<T>& a);
template <class T>
Footprint footprint(const Bellpack<T>& a);

/// Table I, first row: percentage of ELLPACK storage saved by pJDS,
/// 100 * (1 - stored_pJDS / stored_ELLPACK), counted in matrix entries
/// (values + indices scale identically).
template <class T>
double data_reduction_percent(const Pjds<T>& pjds, const Ellpack<T>& ell);

#define SPMVM_EXTERN_FOOTPRINT(T)                                     \
  extern template Footprint footprint(const Csr<T>&);                 \
  extern template Footprint footprint(const Ellpack<T>&, bool);       \
  extern template Footprint footprint(const Jds<T>&);                 \
  extern template Footprint footprint(const SlicedEll<T>&);           \
  extern template Footprint footprint(const Pjds<T>&);                \
  extern template Footprint footprint(const Bellpack<T>&);            \
  extern template double data_reduction_percent(const Pjds<T>&,       \
                                                const Ellpack<T>&)

SPMVM_EXTERN_FOOTPRINT(float);
SPMVM_EXTERN_FOOTPRINT(double);
#undef SPMVM_EXTERN_FOOTPRINT

}  // namespace spmvm
