#include "sparse/jds.hpp"

#include "sparse/convert.hpp"
#include "util/error.hpp"

namespace spmvm {

template <class T>
Jds<T> Jds<T>::from_csr(const Csr<T>& a, PermuteColumns permute_columns) {
  Jds<T> m;
  m.n_rows = a.n_rows;
  m.n_cols = a.n_cols;
  m.nnz = a.nnz();
  m.width = a.max_row_len();

  std::vector<index_t> lens(static_cast<std::size_t>(a.n_rows));
  for (index_t i = 0; i < a.n_rows; ++i)
    lens[static_cast<std::size_t>(i)] = a.row_len(i);
  m.perm = Permutation::sort_descending(lens, std::max<index_t>(a.n_rows, 1));
  const Csr<T> p = permute_csr(a, m.perm, permute_columns);

  m.row_len.resize(static_cast<std::size_t>(a.n_rows));
  for (index_t i = 0; i < a.n_rows; ++i)
    m.row_len[static_cast<std::size_t>(i)] = p.row_len(i);

  // Diagonal j holds one entry for every row with length > j; because rows
  // are sorted descending those are exactly rows 0..L_j-1.
  m.jd_ptr.assign(static_cast<std::size_t>(m.width) + 1, 0);
  for (index_t j = 0; j < m.width; ++j) {
    index_t L = 0;
    while (L < m.n_rows && m.row_len[static_cast<std::size_t>(L)] > j) ++L;
    m.jd_ptr[static_cast<std::size_t>(j) + 1] =
        m.jd_ptr[static_cast<std::size_t>(j)] + L;
  }

  m.col_idx.resize(static_cast<std::size_t>(m.nnz));
  m.val.resize(static_cast<std::size_t>(m.nnz));
  for (index_t j = 0; j < m.width; ++j) {
    const offset_t base = m.jd_ptr[static_cast<std::size_t>(j)];
    const index_t L = m.diag_len(j);
    for (index_t i = 0; i < L; ++i) {
      const offset_t src = p.row_ptr[static_cast<std::size_t>(i)] + j;
      m.col_idx[static_cast<std::size_t>(base + i)] =
          p.col_idx[static_cast<std::size_t>(src)];
      m.val[static_cast<std::size_t>(base + i)] =
          p.val[static_cast<std::size_t>(src)];
    }
  }
  return m;
}

template <class T>
std::size_t Jds<T>::bytes() const {
  return val.size() * sizeof(T) + col_idx.size() * sizeof(index_t) +
         jd_ptr.size() * sizeof(offset_t) + row_len.size() * sizeof(index_t);
}

template <class T>
void Jds<T>::validate() const {
  SPMVM_REQUIRE(jd_ptr.size() == static_cast<std::size_t>(width) + 1,
                "jd_ptr size mismatch");
  SPMVM_REQUIRE(jd_ptr.back() == nnz, "diagonals must cover all non-zeros");
  for (index_t i = 1; i < n_rows; ++i)
    SPMVM_REQUIRE(row_len[static_cast<std::size_t>(i - 1)] >=
                      row_len[static_cast<std::size_t>(i)],
                  "row lengths must be non-increasing after the sort");
  for (index_t j = 1; j < width; ++j)
    SPMVM_REQUIRE(diag_len(j - 1) >= diag_len(j),
                  "diagonal lengths must be non-increasing");
}

template struct Jds<float>;
template struct Jds<double>;

}  // namespace spmvm
