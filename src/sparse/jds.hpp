// Classic Jagged Diagonals Storage (JDS), the vector-computer format that
// pJDS generalizes (Sec. II-A). Rows are fully sorted by descending length
// and stored as "jagged diagonals" with no padding at all.
#pragma once

#include "sparse/csr.hpp"
#include "sparse/permutation.hpp"
#include "util/aligned_buffer.hpp"

namespace spmvm {

template <class T>
struct Jds {
  index_t n_rows = 0;
  index_t n_cols = 0;
  index_t width = 0;  // number of jagged diagonals == N^max_nzr
  offset_t nnz = 0;
  Permutation perm;  // row order after the descending-length sort

  AlignedVector<offset_t> jd_ptr;  // width + 1; start of each diagonal
  AlignedVector<index_t> col_idx;  // nnz
  AlignedVector<T> val;            // nnz
  AlignedVector<index_t> row_len;  // per permuted row (non-increasing)

  static Jds from_csr(const Csr<T>& a,
                      PermuteColumns permute_columns = PermuteColumns::no);

  /// Rows participating in diagonal j.
  index_t diag_len(index_t j) const {
    return static_cast<index_t>(jd_ptr[static_cast<std::size_t>(j) + 1] -
                                jd_ptr[static_cast<std::size_t>(j)]);
  }

  std::size_t bytes() const;
  void validate() const;
};

extern template struct Jds<float>;
extern template struct Jds<double>;

}  // namespace spmvm
