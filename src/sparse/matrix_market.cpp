#include "sparse/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <string>

#include "util/error.hpp"

namespace spmvm {

namespace {
std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}
}  // namespace

template <class T>
Csr<T> read_matrix_market(std::istream& in) {
  std::string line;
  SPMVM_REQUIRE(static_cast<bool>(std::getline(in, line)), "empty stream");
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  SPMVM_REQUIRE(banner == "%%MatrixMarket", "missing MatrixMarket banner");
  SPMVM_REQUIRE(lower(object) == "matrix", "only 'matrix' objects supported");
  SPMVM_REQUIRE(lower(format) == "coordinate",
                "only coordinate format supported");
  field = lower(field);
  symmetry = lower(symmetry);
  SPMVM_REQUIRE(field == "real" || field == "integer" || field == "pattern",
                "unsupported field type: " + field);
  SPMVM_REQUIRE(symmetry == "general" || symmetry == "symmetric" ||
                    symmetry == "skew-symmetric",
                "unsupported symmetry: " + symmetry);

  // Skip comments and blank lines up to the size line.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream size_line(line);
  long long rows = -1, cols = -1, entries = -1;
  size_line >> rows >> cols >> entries;
  SPMVM_REQUIRE(rows >= 0 && cols >= 0 && entries >= 0,
                "malformed size line");

  Coo<T> coo(static_cast<index_t>(rows), static_cast<index_t>(cols));
  coo.reserve(symmetry == "general" ? entries : 2 * entries);
  for (long long k = 0; k < entries; ++k) {
    SPMVM_REQUIRE(static_cast<bool>(std::getline(in, line)),
                  "unexpected end of file in entry list");
    if (line.empty() || line[0] == '%') {
      --k;
      continue;
    }
    std::istringstream ls(line);
    long long r = 0, c = 0;
    double v = 1.0;
    ls >> r >> c;
    SPMVM_REQUIRE(!ls.fail(), "malformed entry line");
    if (field != "pattern") {
      ls >> v;
      SPMVM_REQUIRE(!ls.fail(), "malformed value");
    }
    const auto i = static_cast<index_t>(r - 1);
    const auto j = static_cast<index_t>(c - 1);
    coo.add(i, j, static_cast<T>(v));
    if (i != j) {
      if (symmetry == "symmetric") coo.add(j, i, static_cast<T>(v));
      if (symmetry == "skew-symmetric") coo.add(j, i, static_cast<T>(-v));
    }
  }
  return Csr<T>::from_coo(std::move(coo));
}

template <class T>
Csr<T> read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  SPMVM_REQUIRE(in.good(), "cannot open file: " + path);
  return read_matrix_market<T>(in);
}

template <class T>
void write_matrix_market(std::ostream& out, const Csr<T>& a) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << "% written by pjds_spmvm\n";
  out << a.n_rows << " " << a.n_cols << " " << a.nnz() << "\n";
  out.precision(17);
  for (index_t i = 0; i < a.n_rows; ++i)
    for (offset_t k = a.row_ptr[static_cast<std::size_t>(i)];
         k < a.row_ptr[static_cast<std::size_t>(i) + 1]; ++k)
      out << (i + 1) << " " << (a.col_idx[static_cast<std::size_t>(k)] + 1)
          << " " << a.val[static_cast<std::size_t>(k)] << "\n";
}

template <class T>
void write_matrix_market_file(const std::string& path, const Csr<T>& a) {
  std::ofstream out(path);
  SPMVM_REQUIRE(out.good(), "cannot open file for writing: " + path);
  write_matrix_market(out, a);
}

template Csr<float> read_matrix_market(std::istream&);
template Csr<double> read_matrix_market(std::istream&);
template Csr<float> read_matrix_market_file(const std::string&);
template Csr<double> read_matrix_market_file(const std::string&);
template void write_matrix_market(std::ostream&, const Csr<float>&);
template void write_matrix_market(std::ostream&, const Csr<double>&);
template void write_matrix_market_file(const std::string&, const Csr<float>&);
template void write_matrix_market_file(const std::string&, const Csr<double>&);

}  // namespace spmvm
