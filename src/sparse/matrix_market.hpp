// Matrix Market (.mtx) coordinate-format I/O.
//
// The paper's test matrices (HMEp, sAMG, DLR1/2, UHBR) are not publicly
// distributed; this reader lets users of the library load their own
// matrices, and the writer round-trips the synthetic stand-ins.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/csr.hpp"

namespace spmvm {

/// Read a coordinate-format Matrix Market stream. Supports `real`,
/// `integer` and `pattern` fields (pattern entries become 1.0) and
/// `general`, `symmetric` and `skew-symmetric` symmetry (mirrored entries
/// are materialized). Throws spmvm::Error on malformed input.
template <class T>
Csr<T> read_matrix_market(std::istream& in);

template <class T>
Csr<T> read_matrix_market_file(const std::string& path);

/// Write in `matrix coordinate real general` form.
template <class T>
void write_matrix_market(std::ostream& out, const Csr<T>& a);

template <class T>
void write_matrix_market_file(const std::string& path, const Csr<T>& a);

extern template Csr<float> read_matrix_market(std::istream&);
extern template Csr<double> read_matrix_market(std::istream&);
extern template Csr<float> read_matrix_market_file(const std::string&);
extern template Csr<double> read_matrix_market_file(const std::string&);
extern template void write_matrix_market(std::ostream&, const Csr<float>&);
extern template void write_matrix_market(std::ostream&, const Csr<double>&);
extern template void write_matrix_market_file(const std::string&,
                                              const Csr<float>&);
extern template void write_matrix_market_file(const std::string&,
                                              const Csr<double>&);

}  // namespace spmvm
