#include "sparse/matrix_stats.hpp"

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "util/ascii.hpp"

namespace spmvm {

template <class T>
MatrixStats compute_stats(const Csr<T>& a) {
  MatrixStats s;
  s.n_rows = a.n_rows;
  s.n_cols = a.n_cols;
  s.nnz = a.nnz();
  s.min_row_len = a.min_row_len();
  s.max_row_len = a.max_row_len();
  s.avg_row_len = a.avg_row_len();
  s.relative_width =
      s.min_row_len > 0 ? static_cast<double>(s.max_row_len) /
                              static_cast<double>(s.min_row_len)
                        : 0.0;

  double var = 0.0;
  double dist = 0.0;
  for (index_t i = 0; i < a.n_rows; ++i) {
    const index_t len = a.row_len(i);
    s.row_len_histogram.add(len);
    const double d = static_cast<double>(len) - s.avg_row_len;
    var += d * d;
    for (offset_t k = a.row_ptr[static_cast<std::size_t>(i)];
         k < a.row_ptr[static_cast<std::size_t>(i) + 1]; ++k)
      dist += std::abs(
          static_cast<double>(a.col_idx[static_cast<std::size_t>(k)] - i));
  }
  if (a.n_rows > 1)
    s.row_len_stddev = std::sqrt(var / static_cast<double>(a.n_rows - 1));
  if (s.nnz > 0) s.mean_col_distance = dist / static_cast<double>(s.nnz);
  return s;
}

std::string format_stats(const std::string& name, const MatrixStats& s) {
  std::ostringstream os;
  os << name << ": N = " << fmt_count(s.n_rows)
     << ", Nnz = " << fmt_count(s.nnz) << ", Nnzr = " << fmt(s.avg_row_len, 1)
     << " (min " << s.min_row_len << ", max " << s.max_row_len
     << ", rel. width " << fmt(s.relative_width, 2) << ", sigma "
     << fmt(s.row_len_stddev, 2) << ")";
  return os.str();
}

template MatrixStats compute_stats(const Csr<float>&);
template MatrixStats compute_stats(const Csr<double>&);

}  // namespace spmvm
