// Structural statistics of a sparse matrix: the quantities Fig. 3 and the
// sparsity-pattern discussion of the paper are based on.
#pragma once

#include <string>

#include "sparse/csr.hpp"
#include "util/histogram.hpp"

namespace spmvm {

struct MatrixStats {
  index_t n_rows = 0;
  index_t n_cols = 0;
  offset_t nnz = 0;
  index_t min_row_len = 0;
  index_t max_row_len = 0;
  double avg_row_len = 0.0;     // N_nzr
  double relative_width = 0.0;  // max(rowlen)/min(rowlen); inf-safe: 0 if min==0
  double row_len_stddev = 0.0;
  Histogram row_len_histogram;  // bin size 1 (Fig. 3)
  double mean_col_distance = 0.0;  // avg |col - row| — RHS locality proxy
};

template <class T>
MatrixStats compute_stats(const Csr<T>& a);

/// Multi-line human-readable rendering used by examples and benches.
std::string format_stats(const std::string& name, const MatrixStats& s);

extern template MatrixStats compute_stats(const Csr<float>&);
extern template MatrixStats compute_stats(const Csr<double>&);

}  // namespace spmvm
