#include "sparse/permutation.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace spmvm {

Permutation Permutation::identity(index_t n) {
  SPMVM_REQUIRE(n >= 0, "permutation size must be >= 0");
  Permutation p;
  p.new_to_old_.resize(static_cast<std::size_t>(n));
  std::iota(p.new_to_old_.begin(), p.new_to_old_.end(), index_t{0});
  p.rebuild_inverse();
  return p;
}

Permutation Permutation::sort_descending(std::span<const index_t> keys,
                                         index_t window) {
  SPMVM_REQUIRE(window >= 1, "sort window must be >= 1");
  Permutation p = identity(static_cast<index_t>(keys.size()));
  auto& order = p.new_to_old_;
  const std::size_t n = order.size();
  const std::size_t w = static_cast<std::size_t>(window);
  for (std::size_t begin = 0; begin < n; begin += w) {
    const std::size_t end = std::min(begin + w, n);
    std::stable_sort(order.begin() + static_cast<std::ptrdiff_t>(begin),
                     order.begin() + static_cast<std::ptrdiff_t>(end),
                     [&keys](index_t a, index_t b) {
                       return keys[static_cast<std::size_t>(a)] >
                              keys[static_cast<std::size_t>(b)];
                     });
  }
  p.rebuild_inverse();
  return p;
}

Permutation Permutation::from_new_to_old(std::vector<index_t> new_to_old) {
  Permutation p;
  p.new_to_old_ = std::move(new_to_old);
  p.rebuild_inverse();  // also validates bijectivity
  return p;
}

bool Permutation::is_identity() const {
  for (index_t r = 0; r < size(); ++r)
    if (old_of(r) != r) return false;
  return true;
}

void Permutation::rebuild_inverse() {
  const auto n = new_to_old_.size();
  old_to_new_.assign(n, index_t{-1});
  for (std::size_t r = 0; r < n; ++r) {
    const index_t o = new_to_old_[r];
    SPMVM_REQUIRE(o >= 0 && static_cast<std::size_t>(o) < n,
                  "permutation entry out of range");
    SPMVM_REQUIRE(old_to_new_[static_cast<std::size_t>(o)] == -1,
                  "permutation entry duplicated");
    old_to_new_[static_cast<std::size_t>(o)] = static_cast<index_t>(r);
  }
}

template void Permutation::to_permuted<float>(std::span<const float>,
                                              std::span<float>) const;
template void Permutation::to_permuted<double>(std::span<const double>,
                                               std::span<double>) const;
template void Permutation::from_permuted<float>(std::span<const float>,
                                                std::span<float>) const;
template void Permutation::from_permuted<double>(std::span<const double>,
                                                 std::span<double>) const;

}  // namespace spmvm
