// Row/column permutations.
//
// pJDS and JDS reorder matrix rows by descending row length. Iterative
// solvers then run entirely in the permuted basis; vectors are permuted
// once on entry and once on exit (Sec. II-A of the paper).
#pragma once

#include <span>
#include <vector>

#include "util/types.hpp"

namespace spmvm {

class Permutation {
 public:
  Permutation() = default;

  /// Identity permutation of size n.
  static Permutation identity(index_t n);

  /// Stable sort of [0, keys.size()) by descending key. `window` limits the
  /// sorting scope: indices are sorted only within consecutive chunks of
  /// `window` elements (the σ parameter of the later SELL-C-σ format);
  /// window >= n gives the full sort used by pJDS/JDS.
  static Permutation sort_descending(std::span<const index_t> keys,
                                     index_t window);

  /// Build from an explicit new->old map (validated).
  static Permutation from_new_to_old(std::vector<index_t> new_to_old);

  index_t size() const { return static_cast<index_t>(new_to_old_.size()); }
  bool is_identity() const;

  /// Original index of permuted position r.
  index_t old_of(index_t r) const {
    return new_to_old_[static_cast<std::size_t>(r)];
  }
  /// Permuted position of original index i.
  index_t new_of(index_t i) const {
    return old_to_new_[static_cast<std::size_t>(i)];
  }

  const std::vector<index_t>& new_to_old() const { return new_to_old_; }
  const std::vector<index_t>& old_to_new() const { return old_to_new_; }

  /// dst[r] = src[old_of(r)] — carry a vector into the permuted basis.
  template <class T>
  void to_permuted(std::span<const T> src, std::span<T> dst) const {
    for (index_t r = 0; r < size(); ++r)
      dst[static_cast<std::size_t>(r)] =
          src[static_cast<std::size_t>(old_of(r))];
  }

  /// dst[old_of(r)] = src[r] — carry a vector back to the original basis.
  template <class T>
  void from_permuted(std::span<const T> src, std::span<T> dst) const {
    for (index_t r = 0; r < size(); ++r)
      dst[static_cast<std::size_t>(old_of(r))] =
          src[static_cast<std::size_t>(r)];
  }

 private:
  std::vector<index_t> new_to_old_;
  std::vector<index_t> old_to_new_;
  void rebuild_inverse();
};

/// Whether a format build should also relabel columns with the same
/// permutation (symmetric permutation, P·A·Pᵀ). Symmetric permutation is
/// what lets Krylov solvers iterate entirely in the permuted basis; row-only
/// permutation (P·A) leaves the RHS vector in the original basis.
enum class PermuteColumns { no, yes };

extern template void Permutation::to_permuted<float>(std::span<const float>,
                                                     std::span<float>) const;
extern template void Permutation::to_permuted<double>(std::span<const double>,
                                                      std::span<double>) const;
extern template void Permutation::from_permuted<float>(std::span<const float>,
                                                       std::span<float>) const;
extern template void Permutation::from_permuted<double>(
    std::span<const double>, std::span<double>) const;

}  // namespace spmvm
