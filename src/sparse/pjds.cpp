#include "sparse/pjds.hpp"

#include <algorithm>

#include "sparse/convert.hpp"
#include "util/error.hpp"

namespace spmvm {

template <class T>
Pjds<T> Pjds<T>::from_csr(const Csr<T>& a, const PjdsOptions& opt) {
  SPMVM_REQUIRE(opt.block_rows >= 1, "block_rows must be >= 1");
  Pjds<T> m;
  m.n_rows = a.n_rows;
  m.n_cols = a.n_cols;
  m.block_rows = opt.block_rows;
  m.padded_rows =
      ((a.n_rows + opt.block_rows - 1) / opt.block_rows) * opt.block_rows;
  m.width = a.max_row_len();
  m.nnz = a.nnz();
  m.columns_permuted = opt.permute_columns == PermuteColumns::yes;

  // "sort" step: full descending sort by row length (stable).
  std::vector<index_t> lens(static_cast<std::size_t>(a.n_rows));
  for (index_t i = 0; i < a.n_rows; ++i)
    lens[static_cast<std::size_t>(i)] = a.row_len(i);
  m.perm = Permutation::sort_descending(lens, std::max<index_t>(a.n_rows, 1));
  const Csr<T> p = permute_csr(a, m.perm, opt.permute_columns);

  m.row_len.assign(static_cast<std::size_t>(m.padded_rows), index_t{0});
  for (index_t i = 0; i < a.n_rows; ++i)
    m.row_len[static_cast<std::size_t>(i)] = p.row_len(i);

  // "pad" step: each block of br rows is padded to its first (longest) row;
  // phantom rows past n_rows belong to the last block and are all fill.
  const index_t n_blocks = m.padded_rows / m.block_rows;
  std::vector<index_t> block_width(static_cast<std::size_t>(n_blocks), 0);
  for (index_t b = 0; b < n_blocks; ++b) {
    const index_t first = b * m.block_rows;
    if (first < m.n_rows)
      block_width[static_cast<std::size_t>(b)] =
          m.row_len[static_cast<std::size_t>(first)];
  }

  // Jagged diagonal j contains all rows whose *padded* length exceeds j;
  // padded lengths are non-increasing (full sort), so those are rows
  // [0, L_j).
  m.col_start.assign(static_cast<std::size_t>(m.width) + 1, 0);
  for (index_t j = 0; j < m.width; ++j) {
    index_t blocks_active = 0;
    while (blocks_active < n_blocks &&
           block_width[static_cast<std::size_t>(blocks_active)] > j)
      ++blocks_active;
    m.col_start[static_cast<std::size_t>(j) + 1] =
        m.col_start[static_cast<std::size_t>(j)] +
        static_cast<offset_t>(blocks_active) * m.block_rows;
  }

  const std::size_t total = static_cast<std::size_t>(m.col_start.back());
  m.val.assign(total, T{0});
  m.col_idx.assign(total, index_t{0});
  for (index_t i = 0; i < m.n_rows; ++i) {
    const offset_t rb = p.row_ptr[static_cast<std::size_t>(i)];
    const index_t len = m.row_len[static_cast<std::size_t>(i)];
    for (index_t j = 0; j < len; ++j) {
      const std::size_t dst =
          static_cast<std::size_t>(m.col_start[static_cast<std::size_t>(j)] + i);
      m.val[dst] = p.val[static_cast<std::size_t>(rb + j)];
      m.col_idx[dst] = p.col_idx[static_cast<std::size_t>(rb + j)];
    }
  }
  return m;
}

template <class T>
index_t Pjds<T>::padded_row_len(index_t i) const {
  SPMVM_REQUIRE(i >= 0 && i < padded_rows, "row index out of range");
  const index_t first = (i / block_rows) * block_rows;
  return first < n_rows ? row_len[static_cast<std::size_t>(first)] : 0;
}

template <class T>
std::size_t Pjds<T>::bytes() const {
  return val.size() * sizeof(T) + col_idx.size() * sizeof(index_t) +
         row_len.size() * sizeof(index_t) +
         col_start.size() * sizeof(offset_t);
}

template <class T>
double Pjds<T>::fill_fraction() const {
  if (stored_entries() == 0) return 0.0;
  return 1.0 -
         static_cast<double>(nnz) / static_cast<double>(stored_entries());
}

template <class T>
void Pjds<T>::validate() const {
  SPMVM_REQUIRE(col_start.size() == static_cast<std::size_t>(width) + 1,
                "col_start size mismatch");
  SPMVM_REQUIRE(val.size() == static_cast<std::size_t>(stored_entries()),
                "val size mismatch");
  SPMVM_REQUIRE(col_idx.size() == val.size(), "col_idx size mismatch");
  SPMVM_REQUIRE(row_len.size() == static_cast<std::size_t>(padded_rows),
                "row_len size mismatch");
  offset_t counted = 0;
  for (index_t i = 0; i < padded_rows; ++i) {
    SPMVM_REQUIRE(i < n_rows || row_len[static_cast<std::size_t>(i)] == 0,
                  "phantom rows must be empty");
    SPMVM_REQUIRE(row_len[static_cast<std::size_t>(i)] <= padded_row_len(i),
                  "row exceeds its block width");
    counted += row_len[static_cast<std::size_t>(i)];
  }
  SPMVM_REQUIRE(counted == nnz, "nnz mismatch");
  for (index_t i = 1; i < n_rows; ++i)
    SPMVM_REQUIRE(row_len[static_cast<std::size_t>(i - 1)] >=
                      row_len[static_cast<std::size_t>(i)],
                  "row lengths must be non-increasing after the sort");
  for (index_t j = 1; j < width; ++j)
    SPMVM_REQUIRE(diag_len(j - 1) >= diag_len(j),
                  "diagonal lengths must be non-increasing");
  // Every diagonal length is a whole number of blocks.
  for (index_t j = 0; j < width; ++j)
    SPMVM_REQUIRE(diag_len(j) % block_rows == 0,
                  "diagonal length must be a block multiple");
}

template <class T>
std::vector<offset_t> block_offsets(const Pjds<T>& a) {
  const index_t n_blocks =
      a.block_rows > 0 ? a.padded_rows / a.block_rows : 0;
  std::vector<offset_t> off(static_cast<std::size_t>(n_blocks) + 1, 0);
  for (index_t b = 0; b < n_blocks; ++b) {
    const index_t first = b * a.block_rows;
    const index_t width =
        first < a.n_rows ? a.row_len[static_cast<std::size_t>(first)] : 0;
    off[static_cast<std::size_t>(b) + 1] =
        off[static_cast<std::size_t>(b)] +
        static_cast<offset_t>(width) * a.block_rows;
  }
  return off;
}

template struct Pjds<float>;
template struct Pjds<double>;
template std::vector<offset_t> block_offsets(const Pjds<float>&);
template std::vector<offset_t> block_offsets(const Pjds<double>&);

}  // namespace spmvm
