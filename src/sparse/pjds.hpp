// pJDS — "padded Jagged Diagonals Storage", the paper's contribution
// (Sec. II-A, Fig. 1).
//
// Construction pipeline:
//   1. compress rows leftwards (ELLPACK view of a CSR matrix),
//   2. "sort":  order rows by descending non-zero count (stable, full sort),
//   3. "pad":   pad each block of `block_rows` (= br, ideally the warp
//               size) consecutive rows to the longest row in the block,
//   4. store the resulting jagged diagonals consecutively, column-by-
//      column, recording each diagonal's start offset in col_start[].
//
// Compared to ELLPACK(-R) this eliminates almost all zero fill while
// keeping warp-coalesced loads; the price is a row permutation, which
// iterative solvers apply once before and once after the solve.
#pragma once

#include "sparse/csr.hpp"
#include "sparse/permutation.hpp"
#include "util/aligned_buffer.hpp"

namespace spmvm {

struct PjdsOptions {
  /// Rows per padding block (br). The paper recommends the warp size (32).
  index_t block_rows = 32;
  /// Relabel columns with the row permutation (symmetric permutation);
  /// required for solvers that iterate in the permuted basis. Needs a
  /// square matrix.
  PermuteColumns permute_columns = PermuteColumns::yes;
};

template <class T>
struct Pjds {
  index_t n_rows = 0;
  index_t n_cols = 0;
  index_t padded_rows = 0;  // n_rows rounded up to block_rows
  index_t block_rows = 0;   // br
  index_t width = 0;        // number of jagged diagonals == N^max_nzr
  offset_t nnz = 0;         // true non-zeros
  Permutation perm;         // descending row-length order
  bool columns_permuted = false;  // built with PermuteColumns::yes?

  /// Start offset of each jagged diagonal (width + 1 entries; the paper's
  /// col_start[] plus an end sentinel). Diagonal j spans rows
  /// [0, col_start[j+1]-col_start[j]).
  AlignedVector<offset_t> col_start;
  AlignedVector<T> val;            // col_start.back() entries (fill included)
  AlignedVector<index_t> col_idx;  // same layout; fill points at column 0
  AlignedVector<index_t> row_len;  // true length per permuted row (rowmax[])

  static Pjds from_csr(const Csr<T>& a, const PjdsOptions& opt = {});

  /// Rows participating in diagonal j (padded lengths included).
  index_t diag_len(index_t j) const {
    return static_cast<index_t>(col_start[static_cast<std::size_t>(j) + 1] -
                                col_start[static_cast<std::size_t>(j)]);
  }

  /// Block-padded length of permuted row i (width of its block).
  index_t padded_row_len(index_t i) const;

  /// Stored entries including the (block-local) zero fill.
  offset_t stored_entries() const { return col_start.back(); }

  /// Device bytes: val + col_idx + row_len + col_start.
  std::size_t bytes() const;

  /// Fraction of stored entries that are zero fill.
  double fill_fraction() const;

  void validate() const;
};

/// Stored-entry prefix over the br-row padding blocks (padded_rows /
/// block_rows + 1 entries): block b's jagged-diagonal entries add up to
/// block_offsets[b+1] - block_offsets[b] stored scalars. This is the
/// offsets array the nnz-balanced host scheduler partitions, since
/// thread boundaries must fall on block boundaries to keep the
/// diagonal-major kernel's ranges contiguous.
template <class T>
std::vector<offset_t> block_offsets(const Pjds<T>& a);

extern template struct Pjds<float>;
extern template struct Pjds<double>;
extern template std::vector<offset_t> block_offsets(const Pjds<float>&);
extern template std::vector<offset_t> block_offsets(const Pjds<double>&);

}  // namespace spmvm
