#include "sparse/pjds_spmv.hpp"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "sparse/footprint.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace spmvm {

namespace {
template <class T>
void check_shapes(const Pjds<T>& a, std::span<const T> x, std::span<T> y) {
  SPMVM_REQUIRE(x.size() >= static_cast<std::size_t>(a.n_cols),
                "input vector too short");
  SPMVM_REQUIRE(y.size() >= static_cast<std::size_t>(a.n_rows),
                "output vector too short");
}

// Row tile of the diagonal-major traversal: small enough that the
// accumulator strip stays cache-resident across all `width` passes.
constexpr index_t kPjdsRowTile = 1024;

/// Effective bytes per call: the stored matrix (footprint accounting)
/// plus one RHS read and one LHS write — see sparse/spmv_host.cpp.
template <class T>
std::uint64_t kernel_bytes(const Pjds<T>& a) {
  return static_cast<std::uint64_t>(footprint(a).total_bytes(sizeof(T))) +
         (static_cast<std::uint64_t>(a.n_rows) +
          static_cast<std::uint64_t>(a.n_cols)) *
             sizeof(T);
}

// noinline: keeps the static-local guards out of the kernels' entry
// blocks so the hot loops stay within the inliner's budget.
[[gnu::noinline]] void record_kernel(obs::SpanGuard& span, std::uint64_t nnz,
                                     std::uint64_t bytes) {
  static obs::Counter& c_calls = obs::counter("kernel.calls");
  static obs::Counter& c_nnz = obs::counter("kernel.nnz");
  static obs::Counter& c_bytes = obs::counter("kernel.bytes");
  c_calls.add();
  c_nnz.add(nnz);
  c_bytes.add(bytes);
  span.set_bytes(bytes);
}

/// Roofline work descriptor — see sparse/spmv_host.cpp kernel_work.
[[gnu::noinline]] obs::WorkDesc kernel_work(std::uint64_t nnz,
                                            std::uint64_t bytes,
                                            index_t n_rows) {
  obs::WorkDesc w;
  w.bytes = bytes;
  w.flops = 2 * nnz;
  w.nnz = nnz;
  w.alpha = nnz > 0 ? static_cast<double>(n_rows) / static_cast<double>(nnz)
                    : 0.0;
  return w;
}

/// Rows [rb, re) of y via jagged-diagonal-major traversal: for each row
/// tile, stream every diagonal's contiguous val/col segment with a SIMD
/// inner loop over rows. Per-row summation order (ascending diagonal
/// index) is identical to the row-major formulation, so results are
/// bitwise reproducible across any thread partition. Padding slots hold
/// val = 0 / col_idx = 0 and contribute exact zeros.
template <class T, bool Fused>
void pjds_rows(const Pjds<T>& a, const T* __restrict x, T* __restrict y,
               T alpha, T beta, index_t rb, index_t re) {
  const T* __restrict val =
      std::assume_aligned<kDeviceAlignment>(a.val.data());
  const index_t* __restrict col =
      std::assume_aligned<kDeviceAlignment>(a.col_idx.data());
  const offset_t* __restrict cs = a.col_start.data();
  T acc[kPjdsRowTile];
  for (index_t tb = rb; tb < re; tb += kPjdsRowTile) {
    const index_t te = std::min<index_t>(re, tb + kPjdsRowTile);
    const index_t tile = te - tb;
    for (index_t r = 0; r < tile; ++r) acc[r] = T{0};
    for (index_t j = 0; j < a.width; ++j) {
      const index_t L = a.diag_len(j);
      if (L <= tb) break;  // diagonals only shrink: nothing further back
      const index_t e = std::min(te, L);
      const offset_t base = cs[j];
#pragma omp simd
      for (index_t i = tb; i < e; ++i)
        acc[i - tb] += val[base + i] * x[col[base + i]];
    }
    if constexpr (Fused) {
      for (index_t r = 0; r < tile; ++r)
        y[tb + r] = beta * y[tb + r] + alpha * acc[r];
    } else {
      for (index_t r = 0; r < tile; ++r) y[tb + r] = acc[r];
    }
  }
}

/// Dispatch rows across threads on block boundaries, balanced by stored
/// entries per block (the bytes each thread actually moves). noinline:
/// keeps the hot loops out of the instrumented entry points so the
/// span/counter bookkeeping cannot perturb their codegen.
template <class T, bool Fused>
[[gnu::noinline]] void pjds_dispatch(const Pjds<T>& a, const T* x, T* y,
                                     T alpha, T beta, int n_threads) {
  if (n_threads <= 1 || a.n_rows < 2) {
    pjds_rows<T, Fused>(a, x, y, alpha, beta, 0, a.n_rows);
    return;
  }
  const auto boff = block_offsets(a);
  parallel_for_balanced(
      std::span<const offset_t>(boff), n_threads,
      [&](std::size_t bb, std::size_t be) {
        const index_t rb = static_cast<index_t>(bb) * a.block_rows;
        const index_t re = std::min<index_t>(
            static_cast<index_t>(be) * a.block_rows, a.n_rows);
        if (rb < re) pjds_rows<T, Fused>(a, x, y, alpha, beta, rb, re);
      });
}
}  // namespace

template <class T>
void spmv(const Pjds<T>& a, std::span<const T> x, std::span<T> y,
          int n_threads) {
  check_shapes(a, x, y);
  SPMVM_TRACE_SPAN_NAMED(span, "kernel/pjds");
  const std::uint64_t nnz = static_cast<std::uint64_t>(a.val.size());
  const std::uint64_t bytes = kernel_bytes(a);
  record_kernel(span, nnz, bytes);
  obs::LedgerScope led(obs::RoofLane::host, "pjds", "spmv");
  if (led.active()) led.set_work(kernel_work(nnz, bytes, a.n_rows));
  pjds_dispatch<T, false>(a, x.data(), y.data(), T{1}, T{0}, n_threads);
}

template <class T>
void spmv_axpby(const Pjds<T>& a, std::span<const T> x, std::span<T> y,
                T alpha, T beta, int n_threads) {
  check_shapes(a, x, y);
  SPMVM_TRACE_SPAN_NAMED(span, "kernel/pjds_axpby");
  const std::uint64_t nnz = static_cast<std::uint64_t>(a.val.size());
  const std::uint64_t bytes = kernel_bytes(a);
  record_kernel(span, nnz, bytes);
  obs::LedgerScope led(obs::RoofLane::host, "pjds", "spmv_axpby");
  if (led.active()) led.set_work(kernel_work(nnz, bytes, a.n_rows));
  pjds_dispatch<T, true>(a, x.data(), y.data(), alpha, beta, n_threads);
}

template <class T>
PjdsOperator<T>::PjdsOperator(Pjds<T> a)
    : a_(std::move(a)),
      columns_permuted_(a_.columns_permuted),
      x_perm_(static_cast<std::size_t>(a_.n_cols)),
      y_perm_(static_cast<std::size_t>(a_.n_rows)) {}

template <class T>
void PjdsOperator<T>::apply(std::span<const T> x, std::span<T> y) const {
  std::span<const T> input = x;
  if (columns_permuted_) {
    a_.perm.to_permuted(x, std::span<T>(x_perm_));
    input = std::span<const T>(x_perm_);
  }
  spmv(a_, input, std::span<T>(y_perm_));
  a_.perm.from_permuted(std::span<const T>(y_perm_), y);
}

#define SPMVM_INSTANTIATE_PJDS(T)                                       \
  template void spmv(const Pjds<T>&, std::span<const T>, std::span<T>,  \
                     int);                                              \
  template void spmv_axpby(const Pjds<T>&, std::span<const T>,          \
                           std::span<T>, T, T, int);                    \
  template class PjdsOperator<T>

SPMVM_INSTANTIATE_PJDS(float);
SPMVM_INSTANTIATE_PJDS(double);

}  // namespace spmvm
