// The pJDS spMVM kernel (Listing 2 of the paper) and a convenience
// operator that hides the permuted basis from callers.
#pragma once

#include <span>

#include "sparse/pjds.hpp"

namespace spmvm {

/// y_perm = A_perm·x. When the format was built with PermuteColumns::yes,
/// x must be in the permuted basis; otherwise x is in the original basis
/// and only the result is permuted.
template <class T>
void spmv(const Pjds<T>& a, std::span<const T> x, std::span<T> y,
          int n_threads = 1);

/// y_perm = β·y_perm + α·A_perm·x — solver building block.
template <class T>
void spmv_axpby(const Pjds<T>& a, std::span<const T> x, std::span<T> y,
                T alpha, T beta, int n_threads = 1);

/// Wrapper that performs y = A·x entirely in the *original* basis by
/// permuting on entry and exit. Used for one-shot products and tests; for
/// iterative solvers prefer staying permuted (see solver/).
template <class T>
class PjdsOperator {
 public:
  explicit PjdsOperator(Pjds<T> a);

  index_t n_rows() const { return a_.n_rows; }
  index_t n_cols() const { return a_.n_cols; }
  const Pjds<T>& format() const { return a_; }

  /// y = A·x in the original basis.
  void apply(std::span<const T> x, std::span<T> y) const;

 private:
  Pjds<T> a_;
  bool columns_permuted_;
  mutable AlignedVector<T> x_perm_;
  mutable AlignedVector<T> y_perm_;
};

#define SPMVM_EXTERN_PJDS(T)                                             \
  extern template void spmv(const Pjds<T>&, std::span<const T>,          \
                            std::span<T>, int);                          \
  extern template void spmv_axpby(const Pjds<T>&, std::span<const T>,    \
                                  std::span<T>, T, T, int);              \
  extern template class PjdsOperator<T>

SPMVM_EXTERN_PJDS(float);
SPMVM_EXTERN_PJDS(double);
#undef SPMVM_EXTERN_PJDS

}  // namespace spmvm
