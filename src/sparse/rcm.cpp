#include "sparse/rcm.hpp"

#include <algorithm>
#include <queue>
#include <vector>

#include "sparse/convert.hpp"
#include "util/error.hpp"

namespace spmvm {

namespace {

/// Symmetrized adjacency (pattern of A + Aᵀ, self-loops removed).
template <class T>
std::vector<std::vector<index_t>> build_adjacency(const Csr<T>& a) {
  std::vector<std::vector<index_t>> adj(static_cast<std::size_t>(a.n_rows));
  const auto add_edges = [&](const Csr<T>& m) {
    for (index_t i = 0; i < m.n_rows; ++i)
      for (offset_t k = m.row_ptr[static_cast<std::size_t>(i)];
           k < m.row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
        const index_t c = m.col_idx[static_cast<std::size_t>(k)];
        if (c != i) adj[static_cast<std::size_t>(i)].push_back(c);
      }
  };
  add_edges(a);
  add_edges(transpose(a));
  for (auto& list : adj) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  return adj;
}

}  // namespace

template <class T>
Permutation reverse_cuthill_mckee(const Csr<T>& a) {
  SPMVM_REQUIRE(a.n_rows == a.n_cols, "RCM needs a square matrix");
  const auto adj = build_adjacency(a);
  const auto n = static_cast<std::size_t>(a.n_rows);

  std::vector<index_t> order;
  order.reserve(n);
  std::vector<bool> visited(n, false);
  std::vector<index_t> degree(n);
  for (std::size_t i = 0; i < n; ++i)
    degree[i] = static_cast<index_t>(adj[i].size());

  // Process every connected component, starting each BFS at a
  // minimum-degree unvisited vertex (a cheap peripheral-node heuristic).
  for (;;) {
    index_t start = -1;
    for (std::size_t i = 0; i < n; ++i) {
      if (visited[i]) continue;
      if (start < 0 || degree[i] < degree[static_cast<std::size_t>(start)])
        start = static_cast<index_t>(i);
    }
    if (start < 0) break;

    std::queue<index_t> frontier;
    frontier.push(start);
    visited[static_cast<std::size_t>(start)] = true;
    std::vector<index_t> neighbors;
    while (!frontier.empty()) {
      const index_t v = frontier.front();
      frontier.pop();
      order.push_back(v);
      neighbors.clear();
      for (const index_t w : adj[static_cast<std::size_t>(v)])
        if (!visited[static_cast<std::size_t>(w)]) neighbors.push_back(w);
      std::sort(neighbors.begin(), neighbors.end(),
                [&](index_t x, index_t y) {
                  return degree[static_cast<std::size_t>(x)] <
                         degree[static_cast<std::size_t>(y)];
                });
      for (const index_t w : neighbors) {
        visited[static_cast<std::size_t>(w)] = true;
        frontier.push(w);
      }
    }
  }
  // "Reverse" Cuthill-McKee.
  std::reverse(order.begin(), order.end());
  return Permutation::from_new_to_old(std::move(order));
}

template <class T>
index_t bandwidth(const Csr<T>& a) {
  index_t bw = 0;
  for (index_t i = 0; i < a.n_rows; ++i)
    for (offset_t k = a.row_ptr[static_cast<std::size_t>(i)];
         k < a.row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      const index_t d = a.col_idx[static_cast<std::size_t>(k)] - i;
      bw = std::max(bw, d < 0 ? -d : d);
    }
  return bw;
}

template Permutation reverse_cuthill_mckee(const Csr<float>&);
template Permutation reverse_cuthill_mckee(const Csr<double>&);
template index_t bandwidth(const Csr<float>&);
template index_t bandwidth(const Csr<double>&);

}  // namespace spmvm
