// Reverse Cuthill-McKee (RCM) bandwidth-reducing reordering.
//
// RHS cache reuse (the α of Eq. 1) depends on column locality; RCM
// renumbers the rows/columns of a (structurally symmetrized) matrix so
// that neighbors get nearby indices, shrinking the bandwidth and — as the
// GPU simulator measures — the RHS traffic. Complements pJDS, whose
// row-length sort deliberately ignores locality.
#pragma once

#include "sparse/csr.hpp"
#include "sparse/permutation.hpp"

namespace spmvm {

/// Compute the RCM ordering of a square matrix's structure (the pattern
/// of A + Aᵀ is used, so nonsymmetric inputs are fine). Returns a
/// permutation suitable for permute_csr with PermuteColumns::yes.
template <class T>
Permutation reverse_cuthill_mckee(const Csr<T>& a);

/// Matrix bandwidth: max |i - j| over non-zeros (0 for diagonal/empty).
template <class T>
index_t bandwidth(const Csr<T>& a);

extern template Permutation reverse_cuthill_mckee(const Csr<float>&);
extern template Permutation reverse_cuthill_mckee(const Csr<double>&);
extern template index_t bandwidth(const Csr<float>&);
extern template index_t bandwidth(const Csr<double>&);

}  // namespace spmvm
