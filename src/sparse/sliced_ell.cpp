#include "sparse/sliced_ell.hpp"

#include <algorithm>

#include "sparse/convert.hpp"
#include "util/error.hpp"

namespace spmvm {

template <class T>
SlicedEll<T> SlicedEll<T>::from_csr(const Csr<T>& a, index_t slice_height,
                                    index_t sort_window,
                                    PermuteColumns permute_columns) {
  SPMVM_REQUIRE(slice_height >= 1, "slice height must be >= 1");
  SPMVM_REQUIRE(sort_window >= 1, "sort window must be >= 1");
  SlicedEll<T> m;
  m.n_rows = a.n_rows;
  m.n_cols = a.n_cols;
  m.slice_height = slice_height;
  m.sort_window = sort_window;
  m.n_slices = (a.n_rows + slice_height - 1) / slice_height;
  m.padded_rows = m.n_slices * slice_height;
  m.nnz = a.nnz();
  m.columns_permuted = permute_columns == PermuteColumns::yes;

  std::vector<index_t> lens(static_cast<std::size_t>(a.n_rows));
  for (index_t i = 0; i < a.n_rows; ++i)
    lens[static_cast<std::size_t>(i)] = a.row_len(i);
  m.perm = Permutation::sort_descending(lens, sort_window);
  const Csr<T> p = (sort_window == 1)
                       ? a
                       : permute_csr(a, m.perm, permute_columns);

  m.row_len.assign(static_cast<std::size_t>(m.padded_rows), index_t{0});
  for (index_t i = 0; i < a.n_rows; ++i)
    m.row_len[static_cast<std::size_t>(i)] = p.row_len(i);

  m.slice_ptr.assign(static_cast<std::size_t>(m.n_slices) + 1, 0);
  for (index_t s = 0; s < m.n_slices; ++s) {
    index_t w = 0;
    for (index_t r = 0; r < slice_height; ++r) {
      const index_t i = s * slice_height + r;
      if (i < m.padded_rows)
        w = std::max(w, m.row_len[static_cast<std::size_t>(i)]);
    }
    m.slice_ptr[static_cast<std::size_t>(s) + 1] =
        m.slice_ptr[static_cast<std::size_t>(s)] +
        static_cast<offset_t>(w) * slice_height;
  }

  const std::size_t total = static_cast<std::size_t>(m.slice_ptr.back());
  m.val.assign(total, T{0});
  m.col_idx.assign(total, index_t{0});
  for (index_t s = 0; s < m.n_slices; ++s) {
    const offset_t base = m.slice_ptr[static_cast<std::size_t>(s)];
    for (index_t r = 0; r < slice_height; ++r) {
      const index_t i = s * slice_height + r;
      if (i >= m.n_rows) continue;
      const offset_t rb = p.row_ptr[static_cast<std::size_t>(i)];
      const index_t len = m.row_len[static_cast<std::size_t>(i)];
      for (index_t j = 0; j < len; ++j) {
        const std::size_t dst = static_cast<std::size_t>(
            base + static_cast<offset_t>(j) * slice_height + r);
        m.val[dst] = p.val[static_cast<std::size_t>(rb + j)];
        m.col_idx[dst] = p.col_idx[static_cast<std::size_t>(rb + j)];
      }
    }
  }
  return m;
}

template <class T>
std::size_t SlicedEll<T>::bytes() const {
  return val.size() * sizeof(T) + col_idx.size() * sizeof(index_t) +
         slice_ptr.size() * sizeof(offset_t) +
         row_len.size() * sizeof(index_t);
}

template <class T>
double SlicedEll<T>::fill_fraction() const {
  if (stored_entries() == 0) return 0.0;
  return 1.0 -
         static_cast<double>(nnz) / static_cast<double>(stored_entries());
}

template <class T>
void SlicedEll<T>::validate() const {
  SPMVM_REQUIRE(slice_ptr.size() == static_cast<std::size_t>(n_slices) + 1,
                "slice_ptr size mismatch");
  SPMVM_REQUIRE(val.size() == static_cast<std::size_t>(stored_entries()),
                "val size mismatch");
  SPMVM_REQUIRE(col_idx.size() == val.size(), "col_idx size mismatch");
  offset_t counted = 0;
  for (index_t i = 0; i < padded_rows; ++i) {
    SPMVM_REQUIRE(i < n_rows || row_len[static_cast<std::size_t>(i)] == 0,
                  "padding rows must be empty");
    counted += row_len[static_cast<std::size_t>(i)];
  }
  SPMVM_REQUIRE(counted == nnz, "nnz mismatch");
  for (index_t s = 0; s < n_slices; ++s)
    for (index_t r = 0; r < slice_height; ++r) {
      const index_t i = s * slice_height + r;
      SPMVM_REQUIRE(row_len[static_cast<std::size_t>(i)] <= slice_width(s),
                    "row longer than its slice width");
    }
}

template struct SlicedEll<float>;
template struct SlicedEll<double>;

}  // namespace spmvm
