// Sliced ELLPACK (Monakov et al. [12]) with an optional sorting window —
// the related-work comparator the paper's outlook discusses, and with
// sort_window > 1 the SELL-C-σ format that pJDS evolved into.
//
// The matrix is cut into slices of `slice_height` rows; each slice is
// padded to its own maximum row length and stored column-major. Rows may
// be pre-sorted by descending length within windows of `sort_window` rows
// (σ): σ = 1 keeps the original order, σ >= N is a full sort.
#pragma once

#include "sparse/csr.hpp"
#include "sparse/permutation.hpp"
#include "util/aligned_buffer.hpp"

namespace spmvm {

template <class T>
struct SlicedEll {
  index_t n_rows = 0;
  index_t n_cols = 0;
  index_t slice_height = 0;  // C
  index_t sort_window = 1;   // σ
  index_t n_slices = 0;
  index_t padded_rows = 0;  // n_slices * slice_height
  offset_t nnz = 0;
  Permutation perm;  // row order (identity when σ == 1)
  bool columns_permuted = false;  // built with PermuteColumns::yes?

  AlignedVector<offset_t> slice_ptr;  // n_slices + 1; element offsets
  AlignedVector<index_t> row_len;     // padded_rows
  AlignedVector<index_t> col_idx;     // slice_ptr.back()
  AlignedVector<T> val;               // slice_ptr.back()

  static SlicedEll from_csr(const Csr<T>& a, index_t slice_height = 32,
                            index_t sort_window = 1,
                            PermuteColumns permute_columns = PermuteColumns::no);

  index_t slice_width(index_t s) const {
    return static_cast<index_t>(
        (slice_ptr[static_cast<std::size_t>(s) + 1] -
         slice_ptr[static_cast<std::size_t>(s)]) /
        slice_height);
  }

  /// Stored entries including padding.
  offset_t stored_entries() const { return slice_ptr.back(); }

  std::size_t bytes() const;
  double fill_fraction() const;
  void validate() const;
};

extern template struct SlicedEll<float>;
extern template struct SlicedEll<double>;

}  // namespace spmvm
