#include "sparse/spmv_host.hpp"

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace spmvm {

namespace {
/// Effective bytes one kernel call streams — the stored matrix (values +
/// indices + aux arrays, matching sparse/footprint's accounting) plus one
/// RHS read and one LHS write — so a span's bytes / duration is directly
/// the GB/s to compare against the STREAM limit (Eq. 1).
template <class T>
std::uint64_t vector_stream_bytes(index_t n_rows, index_t n_cols) {
  return (static_cast<std::uint64_t>(n_rows) +
          static_cast<std::uint64_t>(n_cols)) *
         sizeof(T);
}

template <class T>
std::uint64_t kernel_bytes(const Csr<T>& a) {
  return static_cast<std::uint64_t>(a.nnz()) * (sizeof(T) + sizeof(index_t)) +
         static_cast<std::uint64_t>(a.row_ptr.size()) * sizeof(offset_t) +
         vector_stream_bytes<T>(a.n_rows, a.n_cols);
}

template <class T>
std::uint64_t kernel_bytes(const Ellpack<T>& a, bool with_row_len) {
  return static_cast<std::uint64_t>(a.val.size()) *
             (sizeof(T) + sizeof(index_t)) +
         (with_row_len
              ? static_cast<std::uint64_t>(a.row_len.size()) * sizeof(index_t)
              : 0) +
         vector_stream_bytes<T>(a.n_rows, a.n_cols);
}

template <class T>
std::uint64_t kernel_bytes(const Jds<T>& a) {
  return static_cast<std::uint64_t>(a.val.size()) *
             (sizeof(T) + sizeof(index_t)) +
         static_cast<std::uint64_t>(a.jd_ptr.size()) * sizeof(offset_t) +
         vector_stream_bytes<T>(a.n_rows, a.n_cols);
}

template <class T>
std::uint64_t kernel_bytes(const SlicedEll<T>& a) {
  return static_cast<std::uint64_t>(a.val.size()) *
             (sizeof(T) + sizeof(index_t)) +
         static_cast<std::uint64_t>(a.slice_ptr.size()) * sizeof(offset_t) +
         static_cast<std::uint64_t>(a.row_len.size()) * sizeof(index_t) +
         vector_stream_bytes<T>(a.n_rows, a.n_cols);
}

/// Per-call bookkeeping shared by every host kernel: bytes onto the
/// span, always-on counters for calls / nnz processed / bytes moved.
/// noinline: the static-local guards would bloat every kernel's entry
/// block and push the hot loops past the inliner's budget.
[[gnu::noinline]] void record_kernel(obs::SpanGuard& span, std::uint64_t nnz,
                                     std::uint64_t bytes) {
  static obs::Counter& c_calls = obs::counter("kernel.calls");
  static obs::Counter& c_nnz = obs::counter("kernel.nnz");
  static obs::Counter& c_bytes = obs::counter("kernel.bytes");
  static const bool help = [] {
    obs::set_metric_help("kernel.calls", "Host spMVM kernel invocations");
    obs::set_metric_help("kernel.nnz",
                         "Non-zeros processed by host spMVM kernels");
    obs::set_metric_help("kernel.bytes",
                         "Bytes streamed by host spMVM kernels (stored "
                         "footprint plus RHS/LHS vectors, Eq. 1 accounting)");
    return true;
  }();
  (void)help;
  c_calls.add();
  c_nnz.add(nnz);
  c_bytes.add(bytes);
  span.set_bytes(bytes);
}

/// Roofline work descriptor of one kernel call: the streamed bytes are
/// kernel_bytes() (stored footprint + one RHS read + one LHS write, the
/// Eq. 1 accounting), flops 2·nnz, α at its ideal value 1/N_nzr — the
/// RHS stream is counted exactly once in kernel_bytes, so the host roof
/// derived from these bytes is the perfect-cache bound.
[[gnu::noinline]] obs::WorkDesc kernel_work(std::uint64_t nnz,
                                            std::uint64_t bytes,
                                            index_t n_rows) {
  obs::WorkDesc w;
  w.bytes = bytes;
  w.flops = 2 * nnz;
  w.nnz = nnz;
  w.alpha = nnz > 0 ? static_cast<double>(n_rows) / static_cast<double>(nnz)
                    : 0.0;
  return w;
}

template <class T>
void check_shapes(index_t n_rows, index_t n_cols, std::span<const T> x,
                  std::span<T> y) {
  SPMVM_REQUIRE(x.size() >= static_cast<std::size_t>(n_cols),
                "input vector too short");
  SPMVM_REQUIRE(y.size() >= static_cast<std::size_t>(n_rows),
                "output vector too short");
}

// All bulk arrays come out of AlignedVector (128-byte aligned storage);
// telling the compiler lets it pick aligned vector loads for the
// streaming val/col_idx accesses.
template <class T>
const T* aligned(const AlignedVector<T>& v) {
  return std::assume_aligned<kDeviceAlignment>(v.data());
}

/// One CSR row as a 4-way unrolled dot product. Four independent
/// accumulators break the FP add dependency chain; the combine order is
/// fixed, so the result is identical for every thread partition. The
/// unroll only pays off once a row is long enough for the add chain to
/// dominate; short rows (the common case on sAMG-like matrices, where
/// the x[] gathers dominate instead) take the plain loop, and on such
/// matrices the branch is perfectly predicted.
template <class T>
T csr_row_dot(const T* __restrict val, const index_t* __restrict col,
              const T* __restrict x, offset_t b, offset_t e) {
  if (e - b < 32) {
    T acc{0};
    for (offset_t k = b; k < e; ++k) acc += val[k] * x[col[k]];
    return acc;
  }
  T a0{0}, a1{0}, a2{0}, a3{0};
  offset_t k = b;
  for (; k + 4 <= e; k += 4) {
    a0 += val[k] * x[col[k]];
    a1 += val[k + 1] * x[col[k + 1]];
    a2 += val[k + 2] * x[col[k + 2]];
    a3 += val[k + 3] * x[col[k + 3]];
  }
  T acc = (a0 + a1) + (a2 + a3);
  for (; k < e; ++k) acc += val[k] * x[col[k]];
  return acc;
}

/// Sliced-ELL slices [begin, end): chunk-column-major accumulation.
/// Iterates every slice's full width — padding entries carry val = 0 and
/// col_idx = 0, so they contribute exact zeros and cost no extra memory
/// traffic (they share cache lines with the real entries either way).
/// Store == nullptr means plain overwrite, else y = beta*y + alpha*acc.
template <class T, bool Fused>
void sliced_ell_slices(const SlicedEll<T>& a, const T* __restrict x,
                       T* __restrict y, T alpha, T beta, std::size_t begin,
                       std::size_t end, std::vector<T>& acc) {
  const T* __restrict val = aligned(a.val);
  const index_t* __restrict col = aligned(a.col_idx);
  const std::size_t C = static_cast<std::size_t>(a.slice_height);
  for (std::size_t s = begin; s < end; ++s) {
    const offset_t base = a.slice_ptr[s];
    const index_t width = a.slice_width(static_cast<index_t>(s));
    for (std::size_t r = 0; r < C; ++r) acc[r] = T{0};
    for (index_t j = 0; j < width; ++j) {
      const T* __restrict v = val + base + static_cast<std::size_t>(j) * C;
      const index_t* __restrict c = col + base + static_cast<std::size_t>(j) * C;
#pragma omp simd
      for (std::size_t r = 0; r < C; ++r) acc[r] += v[r] * x[c[r]];
    }
    const std::size_t row0 = s * C;
    const std::size_t rows =
        std::min(C, static_cast<std::size_t>(a.n_rows) - row0);
    T* __restrict ys = y + row0;
    if constexpr (Fused) {
      for (std::size_t r = 0; r < rows; ++r)
        ys[r] = beta * ys[r] + alpha * acc[r];
    } else {
      for (std::size_t r = 0; r < rows; ++r) ys[r] = acc[r];
    }
  }
}
}  // namespace

// The instrumented entry points below delegate to noinline _impl
// functions: keeping the hot loops in their own function means the
// wrapper's span/counter bookkeeping cannot perturb their codegen
// (inliner budget, loop placement) — measured at several percent when
// the bookkeeping shared a function body with the loops.
namespace {

template <class T>
[[gnu::noinline]] void spmv_csr_impl(const Csr<T>& a, std::span<const T> x,
                                     std::span<T> y, int n_threads) {
  const T* val = aligned(a.val);
  const index_t* col = aligned(a.col_idx);
  const offset_t* rp = aligned(a.row_ptr);
  parallel_for_balanced(std::span<const offset_t>(a.row_ptr), n_threads,
                        [&](std::size_t begin, std::size_t end) {
                          for (std::size_t i = begin; i < end; ++i)
                            y[i] = csr_row_dot(val, col, x.data(), rp[i],
                                               rp[i + 1]);
                        });
}

template <class T>
[[gnu::noinline]] void spmv_csr_axpby_impl(const Csr<T>& a,
                                           std::span<const T> x,
                                           std::span<T> y, T alpha, T beta,
                                           int n_threads) {
  const T* val = aligned(a.val);
  const index_t* col = aligned(a.col_idx);
  const offset_t* rp = aligned(a.row_ptr);
  parallel_for_balanced(
      std::span<const offset_t>(a.row_ptr), n_threads,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i)
          y[i] = beta * y[i] +
                 alpha * csr_row_dot(val, col, x.data(), rp[i], rp[i + 1]);
      });
}

template <class T>
[[gnu::noinline]] void spmv_ellpack_impl(const Ellpack<T>& a,
                                         std::span<const T> x, std::span<T> y,
                                         int n_threads) {
  const auto rows = static_cast<std::size_t>(a.padded_rows);
  const T* __restrict val = aligned(a.val);
  const index_t* __restrict col = aligned(a.col_idx);
  parallel_for(static_cast<std::size_t>(a.n_rows), n_threads,
               [&](std::size_t begin, std::size_t end) {
                 for (std::size_t i = begin; i < end; ++i) {
                   T acc{0};
                   // Plain ELLPACK: iterate the full width, fill included.
                   for (index_t j = 0; j < a.width; ++j) {
                     const std::size_t k =
                         static_cast<std::size_t>(j) * rows + i;
                     acc += val[k] * x[static_cast<std::size_t>(col[k])];
                   }
                   y[i] = acc;
                 }
               });
}

template <class T>
[[gnu::noinline]] void spmv_ellpack_r_impl(const Ellpack<T>& a,
                                           std::span<const T> x,
                                           std::span<T> y, int n_threads) {
  const auto rows = static_cast<std::size_t>(a.padded_rows);
  const T* __restrict val = aligned(a.val);
  const index_t* __restrict col = aligned(a.col_idx);
  parallel_for(static_cast<std::size_t>(a.n_rows), n_threads,
               [&](std::size_t begin, std::size_t end) {
                 for (std::size_t i = begin; i < end; ++i) {
                   T acc{0};
                   const index_t len = a.row_len[i];
                   for (index_t j = 0; j < len; ++j) {
                     const std::size_t k =
                         static_cast<std::size_t>(j) * rows + i;
                     acc += val[k] * x[static_cast<std::size_t>(col[k])];
                   }
                   y[i] = acc;
                 }
               });
}

template <class T>
[[gnu::noinline]] void spmv_jds_impl(const Jds<T>& a, std::span<const T> x,
                                     std::span<T> y) {
  for (index_t i = 0; i < a.n_rows; ++i) y[static_cast<std::size_t>(i)] = T{0};
  // Diagonal-major loop order: long inner loops over consecutive rows,
  // the traversal JDS was designed for on vector machines.
  for (index_t j = 0; j < a.width; ++j) {
    const offset_t base = a.jd_ptr[static_cast<std::size_t>(j)];
    const index_t L = a.diag_len(j);
    for (index_t i = 0; i < L; ++i) {
      const std::size_t k = static_cast<std::size_t>(base + i);
      y[static_cast<std::size_t>(i)] +=
          a.val[k] * x[static_cast<std::size_t>(a.col_idx[k])];
    }
  }
}

template <class T>
[[gnu::noinline]] void spmv_sell_impl(const SlicedEll<T>& a,
                                      std::span<const T> x, std::span<T> y,
                                      int n_threads) {
  parallel_for_balanced(
      std::span<const offset_t>(a.slice_ptr), n_threads,
      [&](std::size_t begin, std::size_t end) {
        std::vector<T> acc(static_cast<std::size_t>(a.slice_height));
        sliced_ell_slices<T, false>(a, x.data(), y.data(), T{1}, T{0}, begin,
                                    end, acc);
      });
}

template <class T>
[[gnu::noinline]] void spmv_sell_axpby_impl(const SlicedEll<T>& a,
                                            std::span<const T> x,
                                            std::span<T> y, T alpha, T beta,
                                            int n_threads) {
  parallel_for_balanced(
      std::span<const offset_t>(a.slice_ptr), n_threads,
      [&](std::size_t begin, std::size_t end) {
        std::vector<T> acc(static_cast<std::size_t>(a.slice_height));
        sliced_ell_slices<T, true>(a, x.data(), y.data(), alpha, beta, begin,
                                   end, acc);
      });
}

}  // namespace

template <class T>
void spmv(const Csr<T>& a, std::span<const T> x, std::span<T> y,
          int n_threads) {
  check_shapes(a.n_rows, a.n_cols, x, y);
  SPMVM_TRACE_SPAN_NAMED(span, "kernel/csr");
  const std::uint64_t nnz = static_cast<std::uint64_t>(a.nnz());
  const std::uint64_t bytes = kernel_bytes(a);
  record_kernel(span, nnz, bytes);
  obs::LedgerScope led(obs::RoofLane::host, "csr", "spmv");
  if (led.active()) led.set_work(kernel_work(nnz, bytes, a.n_rows));
  spmv_csr_impl(a, x, y, n_threads);
}

template <class T>
void spmv_axpby(const Csr<T>& a, std::span<const T> x, std::span<T> y,
                T alpha, T beta, int n_threads) {
  check_shapes(a.n_rows, a.n_cols, x, y);
  SPMVM_TRACE_SPAN_NAMED(span, "kernel/csr_axpby");
  const std::uint64_t nnz = static_cast<std::uint64_t>(a.nnz());
  const std::uint64_t bytes = kernel_bytes(a);
  record_kernel(span, nnz, bytes);
  obs::LedgerScope led(obs::RoofLane::host, "csr", "spmv_axpby");
  if (led.active()) led.set_work(kernel_work(nnz, bytes, a.n_rows));
  spmv_csr_axpby_impl(a, x, y, alpha, beta, n_threads);
}

template <class T>
void spmv_ellpack(const Ellpack<T>& a, std::span<const T> x, std::span<T> y,
                  int n_threads) {
  check_shapes(a.n_rows, a.n_cols, x, y);
  SPMVM_TRACE_SPAN_NAMED(span, "kernel/ellpack");
  const std::uint64_t nnz = static_cast<std::uint64_t>(a.val.size());
  const std::uint64_t bytes = kernel_bytes(a, /*with_row_len=*/false);
  record_kernel(span, nnz, bytes);
  obs::LedgerScope led(obs::RoofLane::host, "ellpack", "spmv");
  if (led.active()) led.set_work(kernel_work(nnz, bytes, a.n_rows));
  spmv_ellpack_impl(a, x, y, n_threads);
}

template <class T>
void spmv_ellpack_r(const Ellpack<T>& a, std::span<const T> x, std::span<T> y,
                    int n_threads) {
  check_shapes(a.n_rows, a.n_cols, x, y);
  SPMVM_TRACE_SPAN_NAMED(span, "kernel/ellpack_r");
  const std::uint64_t nnz = static_cast<std::uint64_t>(a.nnz);
  const std::uint64_t bytes = kernel_bytes(a, /*with_row_len=*/true);
  record_kernel(span, nnz, bytes);
  obs::LedgerScope led(obs::RoofLane::host, "ellpack_r", "spmv");
  if (led.active()) led.set_work(kernel_work(nnz, bytes, a.n_rows));
  spmv_ellpack_r_impl(a, x, y, n_threads);
}

template <class T>
void spmv(const Jds<T>& a, std::span<const T> x, std::span<T> y) {
  check_shapes(a.n_rows, a.n_cols, x, y);
  SPMVM_TRACE_SPAN_NAMED(span, "kernel/jds");
  const std::uint64_t nnz = static_cast<std::uint64_t>(a.val.size());
  const std::uint64_t bytes = kernel_bytes(a);
  record_kernel(span, nnz, bytes);
  obs::LedgerScope led(obs::RoofLane::host, "jds", "spmv");
  if (led.active()) led.set_work(kernel_work(nnz, bytes, a.n_rows));
  spmv_jds_impl(a, x, y);
}

template <class T>
void spmv(const SlicedEll<T>& a, std::span<const T> x, std::span<T> y,
          int n_threads) {
  check_shapes(a.n_rows, a.n_cols, x, y);
  SPMVM_TRACE_SPAN_NAMED(span, "kernel/sell");
  const std::uint64_t nnz = static_cast<std::uint64_t>(a.val.size());
  const std::uint64_t bytes = kernel_bytes(a);
  record_kernel(span, nnz, bytes);
  obs::LedgerScope led(obs::RoofLane::host, "sell", "spmv");
  if (led.active()) led.set_work(kernel_work(nnz, bytes, a.n_rows));
  spmv_sell_impl(a, x, y, n_threads);
}

template <class T>
void spmv_axpby(const SlicedEll<T>& a, std::span<const T> x, std::span<T> y,
                T alpha, T beta, int n_threads) {
  check_shapes(a.n_rows, a.n_cols, x, y);
  SPMVM_TRACE_SPAN_NAMED(span, "kernel/sell_axpby");
  const std::uint64_t nnz = static_cast<std::uint64_t>(a.val.size());
  const std::uint64_t bytes = kernel_bytes(a);
  record_kernel(span, nnz, bytes);
  obs::LedgerScope led(obs::RoofLane::host, "sell", "spmv_axpby");
  if (led.active()) led.set_work(kernel_work(nnz, bytes, a.n_rows));
  spmv_sell_axpby_impl(a, x, y, alpha, beta, n_threads);
}

#define SPMVM_INSTANTIATE_HOST_KERNELS(T)                                   \
  template void spmv(const Csr<T>&, std::span<const T>, std::span<T>, int); \
  template void spmv_axpby(const Csr<T>&, std::span<const T>, std::span<T>, \
                           T, T, int);                                      \
  template void spmv_ellpack(const Ellpack<T>&, std::span<const T>,         \
                             std::span<T>, int);                            \
  template void spmv_ellpack_r(const Ellpack<T>&, std::span<const T>,       \
                               std::span<T>, int);                          \
  template void spmv(const Jds<T>&, std::span<const T>, std::span<T>);      \
  template void spmv(const SlicedEll<T>&, std::span<const T>, std::span<T>, \
                     int);                                                  \
  template void spmv_axpby(const SlicedEll<T>&, std::span<const T>,         \
                           std::span<T>, T, T, int)

SPMVM_INSTANTIATE_HOST_KERNELS(float);
SPMVM_INSTANTIATE_HOST_KERNELS(double);

}  // namespace spmvm
