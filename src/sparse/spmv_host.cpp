#include "sparse/spmv_host.hpp"

#include "util/error.hpp"
#include "util/parallel.hpp"

namespace spmvm {

namespace {
template <class T>
void check_shapes(index_t n_rows, index_t n_cols, std::span<const T> x,
                  std::span<T> y) {
  SPMVM_REQUIRE(x.size() >= static_cast<std::size_t>(n_cols),
                "input vector too short");
  SPMVM_REQUIRE(y.size() >= static_cast<std::size_t>(n_rows),
                "output vector too short");
}
}  // namespace

template <class T>
void spmv(const Csr<T>& a, std::span<const T> x, std::span<T> y,
          int n_threads) {
  check_shapes(a.n_rows, a.n_cols, x, y);
  parallel_for(static_cast<std::size_t>(a.n_rows), n_threads,
               [&](std::size_t begin, std::size_t end) {
                 for (std::size_t i = begin; i < end; ++i) {
                   T acc{0};
                   for (offset_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k)
                     acc += a.val[static_cast<std::size_t>(k)] *
                            x[static_cast<std::size_t>(
                                a.col_idx[static_cast<std::size_t>(k)])];
                   y[i] = acc;
                 }
               });
}

template <class T>
void spmv_axpby(const Csr<T>& a, std::span<const T> x, std::span<T> y,
                T alpha, T beta, int n_threads) {
  check_shapes(a.n_rows, a.n_cols, x, y);
  parallel_for(static_cast<std::size_t>(a.n_rows), n_threads,
               [&](std::size_t begin, std::size_t end) {
                 for (std::size_t i = begin; i < end; ++i) {
                   T acc{0};
                   for (offset_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k)
                     acc += a.val[static_cast<std::size_t>(k)] *
                            x[static_cast<std::size_t>(
                                a.col_idx[static_cast<std::size_t>(k)])];
                   y[i] = beta * y[i] + alpha * acc;
                 }
               });
}

template <class T>
void spmv_ellpack(const Ellpack<T>& a, std::span<const T> x, std::span<T> y,
                  int n_threads) {
  check_shapes(a.n_rows, a.n_cols, x, y);
  const auto rows = static_cast<std::size_t>(a.padded_rows);
  parallel_for(static_cast<std::size_t>(a.n_rows), n_threads,
               [&](std::size_t begin, std::size_t end) {
                 for (std::size_t i = begin; i < end; ++i) {
                   T acc{0};
                   // Plain ELLPACK: iterate the full width, fill included.
                   for (index_t j = 0; j < a.width; ++j) {
                     const std::size_t k =
                         static_cast<std::size_t>(j) * rows + i;
                     acc += a.val[k] *
                            x[static_cast<std::size_t>(a.col_idx[k])];
                   }
                   y[i] = acc;
                 }
               });
}

template <class T>
void spmv_ellpack_r(const Ellpack<T>& a, std::span<const T> x, std::span<T> y,
                    int n_threads) {
  check_shapes(a.n_rows, a.n_cols, x, y);
  const auto rows = static_cast<std::size_t>(a.padded_rows);
  parallel_for(static_cast<std::size_t>(a.n_rows), n_threads,
               [&](std::size_t begin, std::size_t end) {
                 for (std::size_t i = begin; i < end; ++i) {
                   T acc{0};
                   const index_t len = a.row_len[i];
                   for (index_t j = 0; j < len; ++j) {
                     const std::size_t k =
                         static_cast<std::size_t>(j) * rows + i;
                     acc += a.val[k] *
                            x[static_cast<std::size_t>(a.col_idx[k])];
                   }
                   y[i] = acc;
                 }
               });
}

template <class T>
void spmv(const Jds<T>& a, std::span<const T> x, std::span<T> y) {
  check_shapes(a.n_rows, a.n_cols, x, y);
  for (index_t i = 0; i < a.n_rows; ++i) y[static_cast<std::size_t>(i)] = T{0};
  // Diagonal-major loop order: long inner loops over consecutive rows,
  // the traversal JDS was designed for on vector machines.
  for (index_t j = 0; j < a.width; ++j) {
    const offset_t base = a.jd_ptr[static_cast<std::size_t>(j)];
    const index_t L = a.diag_len(j);
    for (index_t i = 0; i < L; ++i) {
      const std::size_t k = static_cast<std::size_t>(base + i);
      y[static_cast<std::size_t>(i)] +=
          a.val[k] * x[static_cast<std::size_t>(a.col_idx[k])];
    }
  }
}

template <class T>
void spmv(const SlicedEll<T>& a, std::span<const T> x, std::span<T> y,
          int n_threads) {
  check_shapes(a.n_rows, a.n_cols, x, y);
  parallel_for(
      static_cast<std::size_t>(a.n_slices), n_threads,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t s = begin; s < end; ++s) {
          const offset_t base = a.slice_ptr[s];
          for (index_t r = 0; r < a.slice_height; ++r) {
            const index_t i =
                static_cast<index_t>(s) * a.slice_height + r;
            if (i >= a.n_rows) break;
            T acc{0};
            const index_t len = a.row_len[static_cast<std::size_t>(i)];
            for (index_t j = 0; j < len; ++j) {
              const std::size_t k = static_cast<std::size_t>(
                  base + static_cast<offset_t>(j) * a.slice_height + r);
              acc += a.val[k] * x[static_cast<std::size_t>(a.col_idx[k])];
            }
            y[static_cast<std::size_t>(i)] = acc;
          }
        }
      });
}

#define SPMVM_INSTANTIATE_HOST_KERNELS(T)                                   \
  template void spmv(const Csr<T>&, std::span<const T>, std::span<T>, int); \
  template void spmv_axpby(const Csr<T>&, std::span<const T>, std::span<T>, \
                           T, T, int);                                      \
  template void spmv_ellpack(const Ellpack<T>&, std::span<const T>,         \
                             std::span<T>, int);                            \
  template void spmv_ellpack_r(const Ellpack<T>&, std::span<const T>,       \
                               std::span<T>, int);                          \
  template void spmv(const Jds<T>&, std::span<const T>, std::span<T>);      \
  template void spmv(const SlicedEll<T>&, std::span<const T>, std::span<T>, \
                     int)

SPMVM_INSTANTIATE_HOST_KERNELS(float);
SPMVM_INSTANTIATE_HOST_KERNELS(double);

}  // namespace spmvm
