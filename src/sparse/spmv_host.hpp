// Host (CPU) spMVM kernels for every storage format.
//
// These are the reference implementations: the GPU simulator executes the
// same data structures, and every test cross-checks formats against the
// CSR kernel. Basis convention for row-sorted formats (JDS, sliced-ELL,
// and pJDS in core/): the kernel produces the *permuted* result vector
// y_perm; when the format was built with PermuteColumns::yes the input
// vector must be in the permuted basis as well.
#pragma once

#include <span>

#include "sparse/csr.hpp"
#include "sparse/ellpack.hpp"
#include "sparse/jds.hpp"
#include "sparse/sliced_ell.hpp"

namespace spmvm {

/// y = A·x (CSR). `n_threads` > 1 splits rows across threads.
template <class T>
void spmv(const Csr<T>& a, std::span<const T> x, std::span<T> y,
          int n_threads = 1);

/// y = β·y + α·A·x (CSR) — the solver building block.
template <class T>
void spmv_axpby(const Csr<T>& a, std::span<const T> x, std::span<T> y,
                T alpha, T beta, int n_threads = 1);

/// y = A·x with the plain ELLPACK kernel: every thread iterates the full
/// width including zero fill (Fig. 2a).
template <class T>
void spmv_ellpack(const Ellpack<T>& a, std::span<const T> x, std::span<T> y,
                  int n_threads = 1);

/// y = A·x with the ELLPACK-R kernel (Listing 1): rows stop at rowmax[i].
template <class T>
void spmv_ellpack_r(const Ellpack<T>& a, std::span<const T> x, std::span<T> y,
                    int n_threads = 1);

/// y_perm = A_perm·x — classic JDS, iterating diagonal-by-diagonal (the
/// vector-computer loop order).
template <class T>
void spmv(const Jds<T>& a, std::span<const T> x, std::span<T> y);

/// y_perm = A_perm·x — sliced ELLPACK, slice-by-slice. The inner loop
/// runs chunk-column-major across the C (slice height) dimension — the
/// SELL-C-σ loop order for wide-SIMD CPUs.
template <class T>
void spmv(const SlicedEll<T>& a, std::span<const T> x, std::span<T> y,
          int n_threads = 1);

/// y_perm = β·y_perm + α·A_perm·x — fused sliced-ELLPACK update, so
/// solvers in the permuted basis need no separate BLAS-1 pass.
template <class T>
void spmv_axpby(const SlicedEll<T>& a, std::span<const T> x, std::span<T> y,
                T alpha, T beta, int n_threads = 1);

#define SPMVM_EXTERN_HOST_KERNELS(T)                                        \
  extern template void spmv(const Csr<T>&, std::span<const T>,              \
                            std::span<T>, int);                             \
  extern template void spmv_axpby(const Csr<T>&, std::span<const T>,        \
                                  std::span<T>, T, T, int);                 \
  extern template void spmv_ellpack(const Ellpack<T>&, std::span<const T>,  \
                                    std::span<T>, int);                     \
  extern template void spmv_ellpack_r(const Ellpack<T>&, std::span<const T>,\
                                      std::span<T>, int);                   \
  extern template void spmv(const Jds<T>&, std::span<const T>,              \
                            std::span<T>);                                  \
  extern template void spmv(const SlicedEll<T>&, std::span<const T>,        \
                            std::span<T>, int);                             \
  extern template void spmv_axpby(const SlicedEll<T>&, std::span<const T>,  \
                                  std::span<T>, T, T, int)

SPMVM_EXTERN_HOST_KERNELS(float);
SPMVM_EXTERN_HOST_KERNELS(double);
#undef SPMVM_EXTERN_HOST_KERNELS

}  // namespace spmvm
