#include "sparse/to_csr.hpp"

#include "sparse/convert.hpp"
#include "util/error.hpp"

namespace spmvm {

namespace {

/// Invert a row permutation on a permuted-basis CSR matrix: row r of `p`
/// becomes row perm.old_of(r), and columns are relabeled back when they
/// were permuted too.
template <class T>
Csr<T> unpermute(const Csr<T>& p, const Permutation& perm,
                 PermuteColumns columns) {
  // permute_csr with the inverse permutation undoes the forward one.
  const Permutation inverse =
      Permutation::from_new_to_old(perm.old_to_new());
  return permute_csr(p, inverse, columns);
}

}  // namespace

template <class T>
Csr<T> to_csr(const Ellpack<T>& m) {
  Coo<T> coo(m.n_rows, m.n_cols);
  coo.reserve(m.nnz);
  for (index_t i = 0; i < m.n_rows; ++i)
    for (index_t j = 0; j < m.row_len[static_cast<std::size_t>(i)]; ++j) {
      const std::size_t k = static_cast<std::size_t>(j) *
                                static_cast<std::size_t>(m.padded_rows) +
                            static_cast<std::size_t>(i);
      coo.add(i, m.col_idx[k], m.val[k]);
    }
  auto out = Csr<T>::from_coo(std::move(coo));
  SPMVM_REQUIRE(out.nnz() == m.nnz, "lost entries in ELLPACK round trip");
  return out;
}

template <class T>
Csr<T> to_csr(const Jds<T>& m, PermuteColumns columns_were_permuted) {
  Coo<T> coo(m.n_rows, m.n_cols);
  coo.reserve(m.nnz);
  for (index_t j = 0; j < m.width; ++j) {
    const offset_t base = m.jd_ptr[static_cast<std::size_t>(j)];
    for (index_t i = 0; i < m.diag_len(j); ++i) {
      const std::size_t k = static_cast<std::size_t>(base + i);
      coo.add(i, m.col_idx[k], m.val[k]);
    }
  }
  return unpermute(Csr<T>::from_coo(std::move(coo)), m.perm,
                   columns_were_permuted);
}

template <class T>
Csr<T> to_csr(const SlicedEll<T>& m, PermuteColumns columns_were_permuted) {
  Coo<T> coo(m.n_rows, m.n_cols);
  coo.reserve(m.nnz);
  for (index_t i = 0; i < m.n_rows; ++i) {
    const index_t s = i / m.slice_height;
    const index_t r = i % m.slice_height;
    for (index_t j = 0; j < m.row_len[static_cast<std::size_t>(i)]; ++j) {
      const std::size_t k = static_cast<std::size_t>(
          m.slice_ptr[static_cast<std::size_t>(s)] +
          static_cast<offset_t>(j) * m.slice_height + r);
      coo.add(i, m.col_idx[k], m.val[k]);
    }
  }
  return unpermute(Csr<T>::from_coo(std::move(coo)), m.perm,
                   columns_were_permuted);
}

template <class T>
Csr<T> to_csr(const Pjds<T>& m) {
  Coo<T> coo(m.n_rows, m.n_cols);
  coo.reserve(m.nnz);
  for (index_t i = 0; i < m.n_rows; ++i)
    for (index_t j = 0; j < m.row_len[static_cast<std::size_t>(i)]; ++j) {
      const std::size_t k = static_cast<std::size_t>(
          m.col_start[static_cast<std::size_t>(j)] +
          static_cast<offset_t>(i));
      coo.add(i, m.col_idx[k], m.val[k]);
    }
  return unpermute(Csr<T>::from_coo(std::move(coo)), m.perm,
                   m.columns_permuted ? PermuteColumns::yes
                                      : PermuteColumns::no);
}

template <class T>
Csr<T> to_csr(const Bellpack<T>& m) {
  Coo<T> coo(m.n_rows, m.n_cols);
  coo.reserve(m.nnz);
  const std::size_t tile_scalars =
      static_cast<std::size_t>(m.block_r) * static_cast<std::size_t>(m.block_c);
  for (index_t I = 0; I < m.n_block_rows; ++I) {
    for (index_t j = 0; j < m.block_row_len[static_cast<std::size_t>(I)];
         ++j) {
      const std::size_t slot = static_cast<std::size_t>(j) *
                                   static_cast<std::size_t>(m.padded_block_rows) +
                               static_cast<std::size_t>(I);
      const index_t r0 = I * m.block_r;
      const index_t c0 = m.block_col[slot] * m.block_c;
      for (index_t r = 0; r < m.block_r && r0 + r < m.n_rows; ++r)
        for (index_t c = 0; c < m.block_c && c0 + c < m.n_cols; ++c) {
          const T v = m.val[slot * tile_scalars +
                            static_cast<std::size_t>(r) *
                                static_cast<std::size_t>(m.block_c) +
                            static_cast<std::size_t>(c)];
          // Tile fill is dropped: only true non-zeros survive.
          if (v != T{0}) coo.add(r0 + r, c0 + c, v);
        }
    }
  }
  return Csr<T>::from_coo(std::move(coo));
}

#define SPMVM_INSTANTIATE_TO_CSR(T)                            \
  template Csr<T> to_csr(const Ellpack<T>&);                   \
  template Csr<T> to_csr(const Jds<T>&, PermuteColumns);       \
  template Csr<T> to_csr(const SlicedEll<T>&, PermuteColumns); \
  template Csr<T> to_csr(const Pjds<T>&);                      \
  template Csr<T> to_csr(const Bellpack<T>&)

SPMVM_INSTANTIATE_TO_CSR(float);
SPMVM_INSTANTIATE_TO_CSR(double);

}  // namespace spmvm
