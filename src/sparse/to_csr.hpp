// Conversions back to CSR from every storage format.
//
// Round-tripping guarantees the builders lose no information (the test
// suite checks from_csr ∘ to_csr == identity for every format), and lets
// applications hand any format back to CSR-based tooling (I/O,
// repartitioning, direct solvers).
#pragma once

#include "sparse/pjds.hpp"
#include "sparse/bellpack.hpp"  // comparator formats
#include "sparse/csr.hpp"
#include "sparse/ellpack.hpp"
#include "sparse/jds.hpp"
#include "sparse/sliced_ell.hpp"

namespace spmvm {

/// Recover the original matrix (explicit zeros in the fill are dropped).
template <class T>
Csr<T> to_csr(const Ellpack<T>& m);

/// Recover the original matrix, undoing the row (and, if applied,
/// column) permutation.
template <class T>
Csr<T> to_csr(const Jds<T>& m, PermuteColumns columns_were_permuted);

template <class T>
Csr<T> to_csr(const SlicedEll<T>& m, PermuteColumns columns_were_permuted);

/// Recover the original matrix from pJDS (the permutation handling is
/// read from the stored columns_permuted flag).
template <class T>
Csr<T> to_csr(const Pjds<T>& m);

template <class T>
Csr<T> to_csr(const Bellpack<T>& m);

#define SPMVM_EXTERN_TO_CSR(T)                                        \
  extern template Csr<T> to_csr(const Ellpack<T>&);                   \
  extern template Csr<T> to_csr(const Jds<T>&, PermuteColumns);       \
  extern template Csr<T> to_csr(const SlicedEll<T>&, PermuteColumns); \
  extern template Csr<T> to_csr(const Pjds<T>&);                      \
  extern template Csr<T> to_csr(const Bellpack<T>&)

SPMVM_EXTERN_TO_CSR(float);
SPMVM_EXTERN_TO_CSR(double);
#undef SPMVM_EXTERN_TO_CSR

}  // namespace spmvm
