// Cache-line / SIMD aligned storage for matrix and vector data.
//
// GPU device arrays must be 128-byte aligned for full-width memory
// transactions; host kernels benefit from 64-byte alignment. All bulk
// numeric storage in this project goes through AlignedVector.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

namespace spmvm {

inline constexpr std::size_t kDeviceAlignment = 128;  // one GPU transaction

/// Minimal C++17 aligned allocator (std::aligned_alloc based).
template <class T, std::size_t Align = kDeviceAlignment>
class AlignedAllocator {
 public:
  using value_type = T;
  static constexpr std::align_val_t alignment{Align};

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T))
      throw std::bad_array_new_length();
    return static_cast<T*>(::operator new(n * sizeof(T), alignment));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, alignment);
  }

  template <class U>
  bool operator==(const AlignedAllocator<U, Align>&) const noexcept {
    return true;
  }
  template <class U>
  bool operator!=(const AlignedAllocator<U, Align>&) const noexcept {
    return false;
  }

  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };
};

template <class T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace spmvm
