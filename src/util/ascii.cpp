#include "util/ascii.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/error.hpp"

namespace spmvm {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  SPMVM_REQUIRE(!header_.empty(), "table needs at least one column");
}

void AsciiTable::add_row(std::vector<std::string> cells) {
  SPMVM_REQUIRE(cells.size() == header_.size(),
                "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string AsciiTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit_row = [&](std::ostringstream& os,
                      const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      const std::size_t pad = width[c] - row[c].size();
      if (c == 0) {
        os << row[c] << std::string(pad, ' ');
      } else {
        os << std::string(pad, ' ') << row[c];
      }
    }
    os << " |\n";
  };

  std::ostringstream os;
  emit_row(os, header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << std::string(width[c] + 2, '-') << "|";
  os << "\n";
  for (const auto& row : rows_) emit_row(os, row);
  return os.str();
}

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string fmt_count(long long value) {
  std::string digits = std::to_string(value < 0 ? -value : value);
  std::string out;
  int group = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (group == 3) {
      out.push_back(',');
      group = 0;
    }
    out.push_back(*it);
    ++group;
  }
  if (value < 0) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

std::string ascii_chart(const std::string& title, const std::vector<double>& x,
                        const std::vector<std::vector<double>>& series,
                        const std::vector<std::string>& series_names,
                        bool log_y, int height, int width) {
  SPMVM_REQUIRE(series.size() == series_names.size(),
                "one name per series required");
  SPMVM_REQUIRE(height >= 4 && width >= 16, "chart too small");
  for (const auto& s : series)
    SPMVM_REQUIRE(s.size() == x.size(), "series length must match x length");

  const char marks[] = {'*', 'o', '+', 'x', '#', '@'};
  auto transform = [&](double v) {
    if (!log_y) return v;
    return v > 0 ? std::log10(v) : -12.0;
  };

  double lo = 1e300, hi = -1e300;
  for (const auto& s : series)
    for (double v : s) {
      const double t = transform(v);
      lo = std::min(lo, t);
      hi = std::max(hi, t);
    }
  if (x.empty() || series.empty()) {
    return title + "\n  (no data)\n";
  }
  if (hi <= lo) hi = lo + 1.0;

  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  const double xmin = *std::min_element(x.begin(), x.end());
  const double xmax = *std::max_element(x.begin(), x.end());
  const double xspan = (xmax > xmin) ? (xmax - xmin) : 1.0;

  for (std::size_t s = 0; s < series.size(); ++s) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      const int col = static_cast<int>((x[i] - xmin) / xspan * (width - 1));
      const double t = transform(series[s][i]);
      const int row =
          height - 1 - static_cast<int>((t - lo) / (hi - lo) * (height - 1));
      grid[static_cast<std::size_t>(std::clamp(row, 0, height - 1))]
          [static_cast<std::size_t>(std::clamp(col, 0, width - 1))] =
              marks[s % sizeof(marks)];
    }
  }

  std::ostringstream os;
  os << title << "\n";
  for (int r = 0; r < height; ++r) {
    const double yv = hi - (hi - lo) * r / (height - 1);
    char label[32];
    std::snprintf(label, sizeof(label), "%9.3g |", log_y ? std::pow(10, yv) : yv);
    os << label << grid[static_cast<std::size_t>(r)] << "\n";
  }
  os << std::string(10, ' ') << '+' << std::string(static_cast<std::size_t>(width), '-')
     << "\n";
  char xlabel[64];
  std::snprintf(xlabel, sizeof(xlabel), "%10.3g", xmin);
  os << xlabel << std::string(static_cast<std::size_t>(std::max(0, width - 10)), ' ');
  std::snprintf(xlabel, sizeof(xlabel), "%.3g", xmax);
  os << xlabel << "\n";
  for (std::size_t s = 0; s < series_names.size(); ++s)
    os << "  " << marks[s % sizeof(marks)] << " = " << series_names[s] << "\n";
  return os.str();
}

}  // namespace spmvm
