// Plain-text rendering of tables and simple charts so every benchmark
// binary can print paper-style artifacts (Table I rows, Fig. 3 histograms,
// Fig. 5 scaling series) to a terminal or log file.
#pragma once

#include <string>
#include <vector>

namespace spmvm {

/// A rectangular text table with a header row; columns are right-aligned
/// except the first, which is left-aligned (row labels).
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Render with column separators and a header rule.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Render one y(x) series as a fixed-height ASCII line chart.
/// `log_y` plots log10(y) (zero/negative values clamp to the axis floor).
std::string ascii_chart(const std::string& title,
                        const std::vector<double>& x,
                        const std::vector<std::vector<double>>& series,
                        const std::vector<std::string>& series_names,
                        bool log_y = false, int height = 16, int width = 64);

/// Format a double with fixed precision (helper for table cells).
std::string fmt(double value, int precision = 1);

/// Format an integer with thousands separators for readability.
std::string fmt_count(long long value);

}  // namespace spmvm
