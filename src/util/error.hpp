// Error handling: invariant checks that throw std::runtime_error with
// a formatted location-tagged message. Used at module boundaries; hot
// kernels use assert() only.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace spmvm {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_error(const char* cond, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": requirement failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace spmvm

/// Check a precondition/invariant; throws spmvm::Error when violated.
#define SPMVM_REQUIRE(cond, msg)                                     \
  do {                                                               \
    if (!(cond))                                                     \
      ::spmvm::detail::throw_error(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)
