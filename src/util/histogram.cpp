#include "util/histogram.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace spmvm {

Histogram Histogram::from_values(std::span<const index_t> values) {
  Histogram h;
  for (index_t v : values) h.add(v);
  return h;
}

void Histogram::add(index_t value, std::uint64_t count) {
  SPMVM_REQUIRE(value >= 0, "histogram values must be non-negative");
  const auto idx = static_cast<std::size_t>(value);
  if (idx >= bins_.size()) bins_.resize(idx + 1, 0);
  bins_[idx] += count;
  total_ += count;
}

std::uint64_t Histogram::count(index_t value) const {
  const auto idx = static_cast<std::size_t>(value);
  return (value >= 0 && idx < bins_.size()) ? bins_[idx] : 0;
}

double Histogram::relative_share(index_t value) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(value)) / static_cast<double>(total_);
}

index_t Histogram::min_value() const {
  for (std::size_t i = 0; i < bins_.size(); ++i)
    if (bins_[i] > 0) return static_cast<index_t>(i);
  return 0;
}

index_t Histogram::max_value() const {
  for (std::size_t i = bins_.size(); i-- > 0;)
    if (bins_[i] > 0) return static_cast<index_t>(i);
  return 0;
}

double Histogram::mean() const {
  if (total_ == 0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < bins_.size(); ++i)
    acc += static_cast<double>(i) * static_cast<double>(bins_[i]);
  return acc / static_cast<double>(total_);
}

double Histogram::share_at_least(index_t threshold) const {
  if (total_ == 0) return 0.0;
  std::uint64_t acc = 0;
  const auto start = static_cast<std::size_t>(std::max<index_t>(threshold, 0));
  for (std::size_t i = start; i < bins_.size(); ++i) acc += bins_[i];
  return static_cast<double>(acc) / static_cast<double>(total_);
}

}  // namespace spmvm
