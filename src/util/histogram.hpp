// Integer-valued histograms (bin size 1), as used for the row-length
// distributions in Fig. 3 of the paper.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace spmvm {

/// Histogram over non-negative integer values with bin size 1.
class Histogram {
 public:
  Histogram() = default;

  /// Build directly from a sample of values.
  static Histogram from_values(std::span<const index_t> values);

  void add(index_t value, std::uint64_t count = 1);

  /// Number of samples recorded so far.
  std::uint64_t total() const { return total_; }

  /// Count in bin `value` (0 if beyond the populated range).
  std::uint64_t count(index_t value) const;

  /// Fraction of samples equal to `value` (Fig. 3's "relative share").
  double relative_share(index_t value) const;

  /// Smallest / largest populated value; 0 if empty.
  index_t min_value() const;
  index_t max_value() const;

  /// Mean of the recorded values.
  double mean() const;

  /// Fraction of samples with value >= threshold.
  double share_at_least(index_t threshold) const;

  /// Per-bin counts, index == value.
  const std::vector<std::uint64_t>& bins() const { return bins_; }

 private:
  std::vector<std::uint64_t> bins_;
  std::uint64_t total_ = 0;
};

}  // namespace spmvm
