// Minimal fork-join parallel_for over index ranges (std::thread based).
//
// Host spMVM kernels accept an optional thread count; on a single-core
// machine this degrades gracefully to the serial path (n_threads <= 1).
#pragma once

#include <algorithm>
#include <cstddef>
#include <thread>
#include <vector>

namespace spmvm {

/// Invoke fn(begin, end) on static contiguous chunks of [0, n) across
/// `n_threads` threads. fn must be safe to run concurrently on disjoint
/// ranges. n_threads <= 1 runs inline with no thread creation.
template <class Fn>
void parallel_for(std::size_t n, int n_threads, Fn&& fn) {
  if (n == 0) return;
  if (n_threads <= 1 || n < 2) {
    fn(std::size_t{0}, n);
    return;
  }
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(n_threads), n);
  const std::size_t chunk = (n + workers - 1) / workers;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t begin = w * chunk;
    const std::size_t end = std::min(begin + chunk, n);
    if (begin >= end) break;
    pool.emplace_back([&fn, begin, end] { fn(begin, end); });
  }
  for (auto& t : pool) t.join();
}

/// Hardware concurrency with a sane floor of 1.
inline int hardware_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

}  // namespace spmvm
