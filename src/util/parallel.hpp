// parallel_for over index ranges, backed by the persistent ThreadPool.
//
// Host spMVM kernels accept an optional thread count; n_threads <= 1
// runs inline with no synchronization at all, so single-threaded use
// (the default everywhere) never touches the pool. Two scheduling
// policies are offered:
//  - parallel_for:           static contiguous ranges of equal index count
//  - parallel_for_balanced:  contiguous ranges of equal *offset mass*
//    (nnz / stored bytes), computed from a row_ptr/slice_ptr-style
//    prefix array — the right policy for bandwidth-bound spMVM on
//    matrices with skewed row-length distributions.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <thread>

#include "util/thread_pool.hpp"
#include "util/types.hpp"

namespace spmvm {

/// Invoke fn(begin, end) on static contiguous chunks of [0, n) across
/// `n_threads` threads. fn must be safe to run concurrently on disjoint
/// ranges. n_threads <= 1 runs inline with no thread involvement. The
/// worker count is clamped to n, and the part count is derived from the
/// chunk size, so no empty or degenerate size-0 chunks are ever created.
template <class Fn>
void parallel_for(std::size_t n, int n_threads, Fn&& fn) {
  if (n == 0) return;
  const std::size_t workers =
      n_threads <= 1 ? 1
                     : std::min<std::size_t>(static_cast<std::size_t>(n_threads),
                                             n);
  if (workers <= 1) {
    fn(std::size_t{0}, n);
    return;
  }
  const std::size_t chunk = (n + workers - 1) / workers;
  const int parts = static_cast<int>((n + chunk - 1) / chunk);
  ThreadPool::instance().run(parts, [&fn, chunk, n](int p) {
    const std::size_t begin = static_cast<std::size_t>(p) * chunk;
    fn(begin, std::min(begin + chunk, n));
  });
}

/// Invoke fn(begin, end) on contiguous index ranges of [0, n) where
/// n = offsets.size() - 1 and `offsets` is a monotone prefix array
/// (row_ptr, slice_ptr, ...). Ranges are chosen so every thread moves
/// roughly the same number of stored entries instead of the same number
/// of rows. Empty ranges (a single row heavier than one share) are
/// skipped, not delivered to fn.
template <class Fn>
void parallel_for_balanced(std::span<const offset_t> offsets, int n_threads,
                           Fn&& fn) {
  if (offsets.size() <= 1) return;
  const std::size_t n = offsets.size() - 1;
  if (n_threads <= 1 || n < 2) {
    fn(std::size_t{0}, n);
    return;
  }
  const auto bounds = balanced_partition(
      offsets, std::min<std::size_t>(static_cast<std::size_t>(n_threads), n));
  const int parts = static_cast<int>(bounds.size() - 1);
  ThreadPool::instance().run(parts, [&fn, &bounds](int p) {
    const std::size_t begin = bounds[static_cast<std::size_t>(p)];
    const std::size_t end = bounds[static_cast<std::size_t>(p) + 1];
    if (begin < end) fn(begin, end);
  });
}

/// Hardware concurrency with a sane floor of 1.
inline int hardware_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

}  // namespace spmvm
