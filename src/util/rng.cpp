#include "util/rng.hpp"

#include <cmath>

namespace spmvm {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

inline std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  for (auto& s : s_) s = splitmix64(seed);
  // Avoid the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (l < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::normal() {
  // Box-Muller; discard the second variate for simplicity.
  double u1 = next_double();
  double u2 = next_double();
  while (u1 <= 0.0) u1 = next_double();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

std::uint64_t Rng::exponential_int(double mean) {
  double u = next_double();
  while (u <= 0.0) u = next_double();
  return static_cast<std::uint64_t>(-mean * std::log(u));
}

}  // namespace spmvm
