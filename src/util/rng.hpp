// Deterministic pseudo-random number generation (xoshiro256**).
//
// Every synthetic matrix generator and every randomized test draws from
// this generator so results are reproducible across runs and platforms
// (std::mt19937 distributions are not implementation-stable; ours are).
#pragma once

#include <cstdint>

namespace spmvm {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  /// Re-initialize the state from a single seed via splitmix64.
  void reseed(std::uint64_t seed);

  /// Uniform 64 random bits.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound) using Lemire's unbiased reduction.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Standard normal variate (Box-Muller, one value per call).
  double normal();

  /// Geometric-like heavy tail: floor of an exponential with given mean.
  std::uint64_t exponential_int(double mean);

  /// Bernoulli trial with probability p.
  bool chance(double p) { return next_double() < p; }

 private:
  std::uint64_t s_[4];
};

}  // namespace spmvm
