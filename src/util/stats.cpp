#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace spmvm {

double percentile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  SPMVM_REQUIRE(q >= 0.0 && q <= 1.0, "percentile fraction out of range");
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean_of(std::span<const double> sample) {
  if (sample.empty()) return 0.0;
  double acc = 0.0;
  for (double v : sample) acc += v;
  return acc / static_cast<double>(sample.size());
}

double stddev_of(std::span<const double> sample) {
  if (sample.size() < 2) return 0.0;
  const double m = mean_of(sample);
  double acc = 0.0;
  for (double v : sample) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(sample.size() - 1));
}

double geomean_of(std::span<const double> sample) {
  if (sample.empty()) return 0.0;
  double acc = 0.0;
  for (double v : sample) {
    SPMVM_REQUIRE(v > 0.0, "geomean requires positive values");
    acc += std::log(v);
  }
  return std::exp(acc / static_cast<double>(sample.size()));
}

Summary summarize(std::span<const double> sample) {
  Summary s;
  s.count = sample.size();
  if (sample.empty()) return s;
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.mean = mean_of(sample);
  s.stddev = stddev_of(sample);
  s.p50 = percentile_sorted(sorted, 0.50);
  s.p90 = percentile_sorted(sorted, 0.90);
  s.p99 = percentile_sorted(sorted, 0.99);
  return s;
}

double linear_slope(std::span<const double> x, std::span<const double> y) {
  SPMVM_REQUIRE(x.size() == y.size() && x.size() >= 2,
                "slope needs matched samples of size >= 2");
  const double mx = mean_of(x);
  const double my = mean_of(y);
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    num += (x[i] - mx) * (y[i] - my);
    den += (x[i] - mx) * (x[i] - mx);
  }
  SPMVM_REQUIRE(den > 0.0, "slope undefined for constant x");
  return num / den;
}

}  // namespace spmvm
