// Descriptive statistics used by matrix analysis and benchmark reporting.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace spmvm {

/// Summary of a sample: min/max/mean/stddev and selected percentiles.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Compute a Summary over the sample (copies + sorts internally).
Summary summarize(std::span<const double> sample);

/// Percentile by linear interpolation over a *sorted* sample; q in [0,1].
double percentile_sorted(std::span<const double> sorted, double q);

/// Arithmetic mean; 0 for an empty span.
double mean_of(std::span<const double> sample);

/// Sample standard deviation (n-1 denominator); 0 for n < 2.
double stddev_of(std::span<const double> sample);

/// Geometric mean; requires strictly positive entries.
double geomean_of(std::span<const double> sample);

/// Simple least-squares slope of y over x (for scaling-trend checks).
double linear_slope(std::span<const double> x, std::span<const double> y);

}  // namespace spmvm
