#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace spmvm {

namespace {
// Backstop against pathological part counts; real callers clamp the
// worker count to the iteration count long before this matters.
constexpr int kMaxPoolWorkers = 256;

thread_local bool g_in_pool_task = false;
}  // namespace

struct ThreadPool::State {
  std::mutex submit_mutex;  // serializes concurrent external submissions

  std::mutex m;  // guards everything below
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  std::vector<std::thread> workers;
  std::uint64_t generation = 0;
  void (*invoke)(void*, int) = nullptr;
  void* ctx = nullptr;
  int n_parts = 0;
  std::atomic<int> next_part{0};
  int completed = 0;
  int running = 0;  // workers between cv-wakeup and re-park
  std::exception_ptr first_error;
  bool stop = false;

  /// Returns the number of parts this thread executed (imbalance gauge).
  int execute_parts(void (*fn)(void*, int), void* c, int n) {
    static obs::Counter& c_parts = obs::counter("pool.parts");
    static obs::Gauge& g_queued = obs::gauge("pool.queued_parts");
    int mine = 0;
    for (;;) {
      const int part = next_part.fetch_add(1, std::memory_order_relaxed);
      if (part >= n) return mine;
      // Unclaimed parts of the current broadcast; reaches 0 when the
      // last part is claimed (not when it finishes).
      g_queued.set(static_cast<double>(std::max(0, n - part - 1)));
      ++mine;
      c_parts.add();
      g_in_pool_task = true;
      try {
        SPMVM_TRACE_SPAN("pool/part");
        fn(c, part);
      } catch (...) {
        std::lock_guard<std::mutex> lk(m);
        if (!first_error) first_error = std::current_exception();
      }
      g_in_pool_task = false;
      std::lock_guard<std::mutex> lk(m);
      if (++completed == n) done_cv.notify_all();
    }
  }

  void worker_loop() {
    static obs::Gauge& g_active = obs::gauge("pool.active_workers");
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(m);
    for (;;) {
      work_cv.wait(lk, [&] { return stop || generation != seen; });
      if (stop) return;
      seen = generation;
      auto* fn = invoke;
      auto* c = ctx;
      const int n = n_parts;
      g_active.set(static_cast<double>(++running));
      lk.unlock();
      {
        // One span per broadcast received: the worker's busy interval.
        SPMVM_TRACE_SPAN("pool/worker_run");
        execute_parts(fn, c, n);
      }
      lk.lock();
      g_active.set(static_cast<double>(--running));
      if (running == 0) done_cv.notify_all();
    }
  }
};

ThreadPool::ThreadPool() : s_(new State) {}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(s_->m);
    s_->stop = true;
  }
  s_->work_cv.notify_all();
  for (auto& t : s_->workers) t.join();
  delete s_;
}

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

bool ThreadPool::in_task() { return g_in_pool_task; }

int ThreadPool::workers_spawned() const {
  std::lock_guard<std::mutex> lk(s_->m);
  return static_cast<int>(s_->workers.size());
}

void ThreadPool::run_impl(int n_parts, void (*invoke)(void*, int), void* ctx) {
  static obs::Counter& c_tasks = obs::counter("pool.tasks");
  static obs::Counter& c_contended = obs::counter("pool.submit_contended");
  static obs::Gauge& g_workers = obs::gauge("pool.workers");
  static obs::Gauge& g_caller_share = obs::gauge("pool.caller_part_share");
  static const bool help = [] {
    obs::set_metric_help("pool.active_workers",
                         "Pool workers currently executing a broadcast "
                         "(excludes the submitting caller)");
    obs::set_metric_help("pool.queued_parts",
                         "Unclaimed parts of the current pool broadcast");
    return true;
  }();
  (void)help;

  // A failing try_lock means another external submitter holds the pool:
  // the closest thing this design has to queue depth.
  if (!s_->submit_mutex.try_lock()) {
    c_contended.add();
    s_->submit_mutex.lock();
  }
  std::lock_guard<std::mutex> serialize(s_->submit_mutex, std::adopt_lock);
  c_tasks.add();
  const int wanted = std::min(n_parts - 1, kMaxPoolWorkers);
  {
    std::unique_lock<std::mutex> lk(s_->m);
    while (static_cast<int>(s_->workers.size()) < wanted) {
      const int worker_idx = static_cast<int>(s_->workers.size());
      s_->workers.emplace_back([this, worker_idx] {
        obs::set_thread_name("pool worker " + std::to_string(worker_idx));
        s_->worker_loop();
      });
    }
    g_workers.set(static_cast<double>(s_->workers.size()));
    // A worker from the previous generation may still sit between its
    // cv-wakeup and its next part claim, holding the previous task's
    // fn/ctx. Resetting next_part under it would hand it a part of
    // *this* generation to run with the dead closure — wait until every
    // worker is parked again before re-arming the claim counter.
    s_->done_cv.wait(lk, [&] { return s_->running == 0; });
    s_->invoke = invoke;
    s_->ctx = ctx;
    s_->n_parts = n_parts;
    s_->next_part.store(0, std::memory_order_relaxed);
    s_->completed = 0;
    s_->first_error = nullptr;
    ++s_->generation;
  }
  s_->work_cv.notify_all();
  // The caller works too; its share of the dynamically claimed parts is
  // the load-imbalance signal (1.0 = workers never got a part).
  const int mine = s_->execute_parts(invoke, ctx, n_parts);
  g_caller_share.set(static_cast<double>(mine) /
                     static_cast<double>(n_parts));

  std::unique_lock<std::mutex> lk(s_->m);
  s_->done_cv.wait(lk, [&] { return s_->completed == s_->n_parts; });
  const std::exception_ptr err = s_->first_error;
  s_->first_error = nullptr;
  lk.unlock();
  if (err) std::rethrow_exception(err);
}

std::vector<std::size_t> balanced_partition(std::span<const offset_t> offsets,
                                            std::size_t parts) {
  const std::size_t n = offsets.empty() ? 0 : offsets.size() - 1;
  parts = std::max<std::size_t>(1, std::min(parts, std::max<std::size_t>(n, 1)));
  std::vector<std::size_t> bounds(parts + 1, n);
  bounds[0] = 0;
  if (n == 0) return bounds;
  const offset_t total = offsets[n] - offsets[0];
  if (total <= 0) {
    // Degenerate (all-empty rows): fall back to an even index split.
    for (std::size_t t = 1; t < parts; ++t) bounds[t] = n * t / parts;
    return bounds;
  }
  for (std::size_t t = 1; t < parts; ++t) {
    const offset_t target =
        offsets[0] + static_cast<offset_t>(
                         (static_cast<double>(total) * static_cast<double>(t)) /
                         static_cast<double>(parts));
    const auto it = std::lower_bound(offsets.begin(), offsets.end(), target);
    const auto idx = static_cast<std::size_t>(it - offsets.begin());
    bounds[t] = std::min(n, std::max(bounds[t - 1], idx));
  }
  return bounds;
}

}  // namespace spmvm
