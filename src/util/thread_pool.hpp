// Persistent parallel runtime for the host spMVM kernels.
//
// The original fork-join parallel_for spawned and joined fresh
// std::threads on every kernel invocation — tens of microseconds of
// overhead per spMVM call, paid once per solver iteration. This pool is
// created lazily on first parallel use, keeps its workers parked on a
// condition variable between calls, and broadcasts one task per call;
// workers claim statically precomputed parts (contiguous index ranges)
// through an atomic counter, so range→result mapping is deterministic
// regardless of which worker executes which part.
//
// Concurrency contract:
//  - run() may be called concurrently from any number of external
//    threads (e.g. the msg runtime's rank threads); submissions are
//    serialized, callers queue on a mutex.
//  - run() from inside a running task (nested parallelism) executes the
//    nested parts inline on the calling worker — no deadlock, no
//    oversubscription.
//  - The first exception thrown by a part is captured and rethrown on
//    the submitting thread after all parts finished.
#pragma once

#include <cstddef>
#include <span>
#include <type_traits>
#include <vector>

#include "util/types.hpp"

namespace spmvm {

class ThreadPool {
 public:
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide pool. Created on first use; workers are spawned
  /// on demand, up to the largest part count ever requested (capped).
  static ThreadPool& instance();

  /// Invoke task(part) for every part in [0, n_parts), distributed over
  /// the pooled workers plus the calling thread. Blocks until every part
  /// completed; rethrows the first exception a part threw. n_parts <= 1
  /// and nested calls run inline with no synchronization.
  template <class F>
  void run(int n_parts, F&& task) {
    if (n_parts <= 1 || in_task()) {
      for (int p = 0; p < n_parts; ++p) task(p);
      return;
    }
    run_impl(
        n_parts,
        [](void* ctx, int part) {
          (*static_cast<std::remove_reference_t<F>*>(ctx))(part);
        },
        const_cast<void*>(static_cast<const void*>(&task)));
  }

  /// Worker threads currently alive (grows on demand, never shrinks).
  int workers_spawned() const;

  /// True while the current thread is executing a pool task; such calls
  /// to run() short-circuit to the inline serial path.
  static bool in_task();

 private:
  ThreadPool();
  ~ThreadPool();

  void run_impl(int n_parts, void (*invoke)(void*, int), void* ctx);

  struct State;
  State* s_;
};

/// Partition boundaries over a row_ptr/slice_ptr-style monotone offsets
/// array of size n+1: returns parts+1 non-decreasing indices b with
/// b[0] = 0 and b[parts] = n, chosen so every range [b[t], b[t+1]) spans
/// roughly the same offset mass (non-zeros / stored bytes) rather than
/// the same number of indices. Ranges may be empty when a single index
/// carries more than its share.
std::vector<std::size_t> balanced_partition(std::span<const offset_t> offsets,
                                            std::size_t parts);

}  // namespace spmvm
