#include "util/timer.hpp"

#include <algorithm>
#include <vector>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace spmvm {

double measure_seconds(double min_seconds, int min_reps, void (*fn)(void*),
                       void* ctx) {
  SPMVM_REQUIRE(min_reps >= 1, "measure_seconds needs at least 1 repetition");
  SPMVM_REQUIRE(min_seconds >= 0.0, "negative measurement duration");
  // Warm-up run (touch caches, fault pages).
  fn(ctx);
  int reps = 0;
  Timer t;
  do {
    fn(ctx);
    ++reps;
  } while (t.seconds() < min_seconds || reps < min_reps);
  return t.seconds() / reps;
}

MeasureStats measure_seconds_stats(double min_seconds, int min_reps,
                                   void (*fn)(void*), void* ctx) {
  SPMVM_REQUIRE(min_reps >= 1,
                "measure_seconds_stats needs at least 1 repetition");
  SPMVM_REQUIRE(min_seconds >= 0.0, "negative measurement duration");
  // Warm-up run (touch caches, fault pages).
  fn(ctx);
  std::vector<double> samples;
  Timer total;
  do {
    Timer t;
    fn(ctx);
    samples.push_back(t.seconds());
  } while (total.seconds() < min_seconds ||
           static_cast<int>(samples.size()) < min_reps);

  MeasureStats s;
  s.reps = static_cast<int>(samples.size());
  s.mean_seconds = mean_of(samples);
  s.stddev_seconds = stddev_of(samples);
  std::sort(samples.begin(), samples.end());
  s.min_seconds = samples.front();
  s.max_seconds = samples.back();
  s.median_seconds = percentile_sorted(samples, 0.5);
  return s;
}

}  // namespace spmvm
