#include "util/timer.hpp"

namespace spmvm {

double measure_seconds(double min_seconds, int min_reps, void (*fn)(void*),
                       void* ctx) {
  // Warm-up run (touch caches, fault pages).
  fn(ctx);
  int reps = 0;
  Timer t;
  do {
    fn(ctx);
    ++reps;
  } while (t.seconds() < min_seconds || reps < min_reps);
  return t.seconds() / reps;
}

}  // namespace spmvm
