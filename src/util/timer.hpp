// Wall-clock timing helpers for benchmarks and the host kernels.
#pragma once

#include <chrono>

namespace spmvm {

/// Monotonic stopwatch measuring seconds as double.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Run `fn` repeatedly for at least `min_seconds` (and at least `min_reps`
/// repetitions) and return the average seconds per invocation.
/// `min_reps` must be >= 1 (throws spmvm::Error otherwise).
double measure_seconds(double min_seconds, int min_reps, void (*fn)(void*),
                       void* ctx);

template <class F>
double measure_seconds(double min_seconds, int min_reps, F&& fn) {
  struct Ctx {
    F* f;
  } ctx{&fn};
  return measure_seconds(min_seconds, min_reps,
                         [](void* c) { (*static_cast<Ctx*>(c)->f)(); }, &ctx);
}

/// Per-repetition timing spread from one measure_seconds_stats() run —
/// mean alone hides jitter; min is the best-case (least-disturbed) rep.
struct MeasureStats {
  int reps = 0;
  double mean_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
  double stddev_seconds = 0.0;
  double median_seconds = 0.0;
};

/// Like measure_seconds, but times every repetition individually and
/// reports the spread across them. `min_reps` must be >= 1 (throws
/// spmvm::Error otherwise); with a single repetition the stddev is 0,
/// never NaN.
MeasureStats measure_seconds_stats(double min_seconds, int min_reps,
                                   void (*fn)(void*), void* ctx);

template <class F>
MeasureStats measure_seconds_stats(double min_seconds, int min_reps, F&& fn) {
  struct Ctx {
    F* f;
  } ctx{&fn};
  return measure_seconds_stats(
      min_seconds, min_reps,
      [](void* c) { (*static_cast<Ctx*>(c)->f)(); }, &ctx);
}

}  // namespace spmvm
