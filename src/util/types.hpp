// Fundamental scalar and index types shared by every module.
#pragma once

#include <cstddef>
#include <cstdint>

namespace spmvm {

/// Column/row index type. The paper's balance model (Eq. 1) assumes 4-byte
/// column indices, so the default index is 32-bit. Row-pointer offsets use
/// 64 bits because nnz may exceed 2^31 for full-scale matrices.
using index_t = std::int32_t;
using offset_t = std::int64_t;

/// Number of bytes in one index entry (the "4" in Eq. 1).
inline constexpr std::size_t kIndexBytes = sizeof(index_t);

}  // namespace spmvm
