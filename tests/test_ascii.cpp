#include "util/ascii.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/error.hpp"

namespace spmvm {
namespace {

TEST(AsciiTable, RendersHeaderAndRows) {
  AsciiTable t({"matrix", "GF/s"});
  t.add_row({"DLR1", "22.1"});
  t.add_row({"sAMG", "14.6"});
  const std::string out = t.render();
  EXPECT_NE(out.find("matrix"), std::string::npos);
  EXPECT_NE(out.find("DLR1"), std::string::npos);
  EXPECT_NE(out.find("22.1"), std::string::npos);
  // Header + rule + 2 rows = 4 lines.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(AsciiTable, RejectsMismatchedRow) {
  AsciiTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(AsciiTable, AlignsColumns) {
  AsciiTable t({"x", "yyyy"});
  t.add_row({"longlabel", "1"});
  const std::string out = t.render();
  // Both data lines must have the same length as the header line.
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < out.size()) {
    const auto nl = out.find('\n', pos);
    lines.push_back(out.substr(pos, nl - pos));
    pos = nl + 1;
  }
  ASSERT_GE(lines.size(), 3u);
  EXPECT_EQ(lines[0].size(), lines[2].size());
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(FmtCount, ThousandsSeparators) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(6201600), "6,201,600");
  EXPECT_EQ(fmt_count(-12345), "-12,345");
}

TEST(AsciiChart, ContainsSeriesMarkers) {
  const std::vector<double> x = {1, 2, 4, 8};
  const std::vector<std::vector<double>> series = {{1, 2, 4, 8}, {1, 1.5, 2, 3}};
  const std::string out =
      ascii_chart("scaling", x, series, {"ideal", "actual"});
  EXPECT_NE(out.find("scaling"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
  EXPECT_NE(out.find("ideal"), std::string::npos);
}

TEST(AsciiChart, LogScaleHandlesZeros) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<std::vector<double>> series = {{0.0, 1e-3, 1.0}};
  const std::string out = ascii_chart("hist", x, series, {"share"}, true);
  EXPECT_NE(out.find("hist"), std::string::npos);
}

TEST(AsciiChart, RejectsMismatchedNames) {
  const std::vector<double> x = {1};
  const std::vector<std::vector<double>> series = {{1}};
  EXPECT_THROW(ascii_chart("t", x, series, {}), Error);
}

}  // namespace
}  // namespace spmvm
