// Degenerate inputs of the comm-phase attributor (obs/attribution):
// empty traces, traces with no plan iterations, a single-rank trace
// (synthetic and a real 1-rank CommPlan run), and a trace truncated by
// SPMVM_TRACE_CAP — none of which may crash or produce insane sums.
#include "obs/attribution.hpp"

#include <gtest/gtest.h>

#include <span>
#include <string>
#include <vector>

#include "dist/comm_plan.hpp"
#include "matgen/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "test_helpers.hpp"

namespace spmvm {
namespace {

class ScopedTracing {
 public:
  explicit ScopedTracing(bool on) : prev_(obs::tracing_enabled()) {
    obs::clear_trace();
    obs::set_tracing(on);
  }
  ~ScopedTracing() {
    obs::set_tracing(prev_);
    obs::clear_trace();
  }

 private:
  bool prev_;
};

obs::TraceEvent make_event(const char* name, std::uint64_t t0_us,
                           std::uint64_t t1_us, int rank,
                           std::uint16_t depth) {
  obs::TraceEvent e;
  e.name = name;
  e.t0_ns = t0_us * 1000;
  e.t1_ns = t1_us * 1000;
  e.rank = rank;
  e.depth = depth;
  return e;
}

TEST(AttributionEdge, EmptyTraceYieldsEmptyReport) {
  const obs::AttributionReport report = obs::attribute_comm_phases({});
  EXPECT_TRUE(report.empty());
  EXPECT_TRUE(report.ranks.empty());
  EXPECT_TRUE(report.peers.empty());
  EXPECT_DOUBLE_EQ(report.overlap_pct(), 0.0);
  EXPECT_TRUE(report.counters().empty());
  // render() must still produce a readable placeholder, not crash.
  EXPECT_NE(report.render().find("no comm-plan iterations"),
            std::string::npos);
}

TEST(AttributionEdge, TraceWithoutPlanIterationsIsEmpty) {
  std::vector<obs::TraceEvent> events;
  events.push_back(make_event("kernel/pjds", 0, 500, 0, 0));
  events.push_back(make_event("solver/cg", 0, 900, 0, 0));
  const obs::AttributionReport report = obs::attribute_comm_phases(events);
  EXPECT_TRUE(report.empty());
  EXPECT_TRUE(report.counters().empty());
}

TEST(AttributionEdge, SyntheticSingleRankTrace) {
  // One vector-mode iteration on rank 0: gather, exchange, local,
  // non-local — strictly sequential, so no overlap.
  std::vector<obs::TraceEvent> events;
  events.push_back(make_event("dist/plan_vector", 0, 1000, 0, 0));
  events.push_back(make_event("comm/plan_gather", 0, 100, 0, 1));
  events.push_back(make_event("comm/plan_sends", 100, 200, 0, 1));
  events.push_back(make_event("comm/plan_waitall", 200, 300, 0, 1));
  events.push_back(make_event("kernel/local", 300, 800, 0, 1));
  events.push_back(make_event("kernel/nonlocal", 800, 950, 0, 1));

  const obs::AttributionReport report = obs::attribute_comm_phases(events);
  ASSERT_EQ(report.ranks.size(), 1u);
  const obs::RankPhases& r = report.ranks[0];
  EXPECT_EQ(r.rank, 0);
  EXPECT_EQ(r.iterations, 1u);
  EXPECT_NEAR(r.wall_s, 1.0e-3, 1e-12);
  EXPECT_NEAR(r.phase_sum_s, 0.95e-3, 1e-12);
  EXPECT_DOUBLE_EQ(r.overlap_s, 0.0);
  // With one rank, every spread collapses to min == median == max.
  for (const obs::PhaseSpread& p : report.phases) {
    EXPECT_DOUBLE_EQ(p.min_s, p.median_s);
    EXPECT_DOUBLE_EQ(p.median_s, p.max_s);
    EXPECT_DOUBLE_EQ(p.total_s, p.median_s);
  }
  EXPECT_FALSE(report.counters().empty());
  EXPECT_NE(report.render().find("rank"), std::string::npos);
}

TEST(AttributionEdge, RealSingleRankPlanRun) {
  ScopedTracing on(true);
  const auto a = testing::random_csr<double>(96, 96, 1, 9, 11);
  const auto part = dist::partition_balanced_nnz(a, 1);
  const auto x = testing::random_vector<double>(a.n_cols, 5);
  msg::Runtime::run(1, [&](msg::Comm& comm) {
    const auto d = dist::distribute(a, part, comm.rank());
    std::vector<double> x_local(x.begin(), x.end());
    std::vector<double> y(static_cast<std::size_t>(d.n_local));
    dist::CommPlan<double> plan(comm, d, dist::CommScheme::vector_mode);
    for (int it = 0; it < 3; ++it)
      plan.spmv(std::span<const double>(x_local), std::span<double>(y));
  });
  const obs::AttributionReport report =
      obs::attribute_comm_phases(obs::collect());
  ASSERT_EQ(report.ranks.size(), 1u);
  EXPECT_EQ(report.ranks[0].iterations, 3u);
  EXPECT_GT(report.ranks[0].wall_s, 0.0);
  // A 1-rank partition has no halo: zero comm bytes must not divide by
  // zero anywhere (no peers, finite percentages).
  EXPECT_TRUE(report.peers.empty());
  EXPECT_GE(report.overlap_pct(), 0.0);
}

TEST(AttributionEdge, CapTruncatedTraceStaysSane) {
  ScopedTracing on(true);
  const std::size_t prev_cap = obs::trace_cap();
  obs::set_trace_cap(4);
  obs::set_rank(0);
  const std::uint64_t dropped_before =
      obs::counter("trace.dropped_spans").value();

  // The iteration span and the first phases land under the cap; the
  // trailing spans overflow and are dropped.
  { SPMVM_TRACE_SPAN("dist/plan_vector"); }
  { SPMVM_TRACE_SPAN("comm/plan_gather"); }
  { SPMVM_TRACE_SPAN("kernel/local"); }
  { SPMVM_TRACE_SPAN("kernel/nonlocal"); }
  for (int i = 0; i < 16; ++i) {
    SPMVM_TRACE_SPAN("comm/plan_waitall");
  }

  obs::set_rank(-1);
  obs::set_trace_cap(prev_cap);
  EXPECT_GT(obs::counter("trace.dropped_spans").value(), dropped_before);

  const obs::AttributionReport report =
      obs::attribute_comm_phases(obs::collect());
  ASSERT_EQ(report.ranks.size(), 1u);
  const obs::RankPhases& r = report.ranks[0];
  EXPECT_EQ(r.iterations, 1u);
  // Truncation may lose phase spans but can never manufacture time.
  for (int p = 0; p < obs::kNumCommPhases; ++p)
    EXPECT_GE(r.phase_s[p], 0.0);
  EXPECT_GE(r.overlap_s, 0.0);
  EXPECT_FALSE(report.counters().empty());
}

}  // namespace
}  // namespace spmvm
