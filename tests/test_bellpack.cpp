#include "sparse/bellpack.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "sparse/footprint.hpp"
#include "matgen/generators.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace spmvm {
namespace {

using spmvm::testing::random_csr;
using spmvm::testing::random_vector;

TEST(Bellpack, Geometry) {
  const auto a = random_csr<double>(70, 70, 1, 6, 1);
  const auto b = Bellpack<double>::from_csr(a, 5, 5, 4);
  b.validate();
  EXPECT_EQ(b.n_block_rows, 14);
  EXPECT_EQ(b.padded_block_rows, 16);
  EXPECT_EQ(b.nnz, a.nnz());
  EXPECT_EQ(b.stored_entries(), b.stored_blocks * 25);
}

class BellpackSpmvSweep
    : public ::testing::TestWithParam<std::tuple<index_t, index_t, int>> {};

TEST_P(BellpackSpmvSweep, MatchesReference) {
  const auto& [br, bc, threads] = GetParam();
  const auto a = random_csr<double>(101, 83, 0, 9, 2);
  const auto b = Bellpack<double>::from_csr(a, br, bc, 8);
  b.validate();
  const auto x = random_vector<double>(83, 3);
  std::vector<double> y(101);
  spmv(b, std::span<const double>(x), std::span<double>(y), threads);
  testing::expect_vectors_near<double>(testing::reference_spmv(a, x), y,
                                       1e-12);
}

INSTANTIATE_TEST_SUITE_P(TileShapes, BellpackSpmvSweep,
                         ::testing::Combine(::testing::Values(1, 2, 5),
                                            ::testing::Values(1, 3, 5),
                                            ::testing::Values(1, 4)));

TEST(Bellpack, PerfectTilingOnDlr2LikeMatrix) {
  // DLR2 consists entirely of dense 5x5 subblocks: a 5x5 BELLPACK has no
  // tile fill at all (only ELLPACK-style row padding).
  GenConfig cfg;
  cfg.scale = 64;
  const auto a = make_dlr2<double>(cfg);
  const auto b = Bellpack<double>::from_csr(a, 5, 5, 32);
  b.validate();
  // Tile fill only from the block-row padding, not from within tiles:
  // stored scalars in *used* tiles equal nnz exactly.
  offset_t used_tiles = 0;
  for (index_t I = 0; I < b.n_block_rows; ++I)
    used_tiles += b.block_row_len[static_cast<std::size_t>(I)];
  EXPECT_EQ(used_tiles * 25, a.nnz());
}

TEST(Bellpack, IndexSavingsOnBlockedMatrix) {
  // One column index per tile: for a perfectly 5x5-blocked matrix the
  // index bytes drop by ~25x vs scalar formats.
  GenConfig cfg;
  cfg.scale = 64;
  const auto a = make_dlr2<double>(cfg);
  const auto b = Bellpack<double>::from_csr(a, 5, 5, 32);
  const double idx_per_nnz =
      static_cast<double>(b.block_col.size() * sizeof(index_t)) /
      static_cast<double>(a.nnz());
  // Far below the 4 bytes/nnz of scalar formats even with the
  // ELLPACK-style block-row padding included.
  EXPECT_LT(idx_per_nnz, 0.5);
}

TEST(Bellpack, CatastrophicFillOnUnstructuredMatrix) {
  // The paper's point: blocked formats need a priori structure. On an
  // unstructured sAMG-like matrix, 5x5 tiles store mostly zeros.
  GenConfig cfg;
  cfg.scale = 256;
  const auto a = make_samg<double>(cfg);
  const auto b = Bellpack<double>::from_csr(a, 5, 5, 32);
  EXPECT_GT(b.fill_fraction(), 0.7);
}

TEST(Bellpack, OneByOneTileEqualsEllpack) {
  const auto a = random_csr<double>(64, 64, 0, 8, 4);
  const auto b = Bellpack<double>::from_csr(a, 1, 1, 32);
  const auto e = Ellpack<double>::from_csr(a, 32);
  EXPECT_EQ(b.stored_entries(), e.stored_entries());
  EXPECT_DOUBLE_EQ(b.fill_fraction(), e.fill_fraction());
}

TEST(Bellpack, RejectsBadTileDims) {
  const auto a = random_csr<double>(10, 10, 1, 2, 5);
  EXPECT_THROW(Bellpack<double>::from_csr(a, 0, 5), Error);
  EXPECT_THROW(Bellpack<double>::from_csr(a, 5, 0), Error);
}

TEST(Bellpack, EmptyMatrix) {
  Coo<double> coo(0, 0);
  const auto b =
      Bellpack<double>::from_csr(Csr<double>::from_coo(std::move(coo)), 4, 4);
  b.validate();
  EXPECT_EQ(b.stored_entries(), 0);
}

TEST(Bellpack, RaggedEdgeTiles) {
  // n_rows / n_cols not multiples of the tile dims: edge tiles clip.
  const auto a = random_csr<double>(13, 17, 1, 5, 6);
  const auto b = Bellpack<double>::from_csr(a, 4, 4, 2);
  b.validate();
  const auto x = random_vector<double>(17, 7);
  std::vector<double> y(13);
  spmv(b, std::span<const double>(x), std::span<double>(y));
  testing::expect_vectors_near<double>(testing::reference_spmv(a, x), y,
                                       1e-12);
}

}  // namespace
}  // namespace spmvm
