#include "obs/report.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "suite_scenarios.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace spmvm::obs {
namespace {

BenchReport sample_report() {
  BenchReport r;
  r.binary = "bench_suite";
  r.metadata = {{"mode", "smoke"}, {"note", "quote \" backslash \\ done"}};
  BenchEntry e;
  e.name = "host/csr";
  e.repetitions = 5;
  e.mean_seconds = 1.5e-3;
  e.median_seconds = 1.4e-3;
  e.min_seconds = 1.2e-3;
  e.max_seconds = 2.0e-3;
  e.stddev_seconds = 2.5e-4;
  e.counters = {{"GF/s", 12.5}, {"GB/s", 83.0}};
  r.entries.push_back(e);
  BenchEntry m;
  m.name = "model/DLR1";
  m.counters = {{"alpha_measured", 0.31}};
  r.entries.push_back(m);
  return r;
}

TEST(BenchReport, JsonRoundTrip) {
  const BenchReport r = sample_report();
  const BenchReport p = parse_bench_report(r.to_json());

  EXPECT_EQ(p.schema_version, kBenchSchemaVersion);
  EXPECT_EQ(p.binary, r.binary);
  ASSERT_EQ(p.metadata.size(), r.metadata.size());
  EXPECT_EQ(p.metadata, r.metadata);  // escapes survive the round trip
  ASSERT_EQ(p.entries.size(), r.entries.size());
  for (std::size_t i = 0; i < r.entries.size(); ++i) {
    const BenchEntry& a = r.entries[i];
    const BenchEntry& b = p.entries[i];
    EXPECT_EQ(b.name, a.name);
    EXPECT_EQ(b.repetitions, a.repetitions);
    EXPECT_DOUBLE_EQ(b.mean_seconds, a.mean_seconds);
    EXPECT_DOUBLE_EQ(b.median_seconds, a.median_seconds);
    EXPECT_DOUBLE_EQ(b.min_seconds, a.min_seconds);
    EXPECT_DOUBLE_EQ(b.max_seconds, a.max_seconds);
    EXPECT_DOUBLE_EQ(b.stddev_seconds, a.stddev_seconds);
    ASSERT_EQ(b.counters.size(), a.counters.size());
    for (std::size_t j = 0; j < a.counters.size(); ++j) {
      EXPECT_EQ(b.counters[j].first, a.counters[j].first);
      EXPECT_DOUBLE_EQ(b.counters[j].second, a.counters[j].second);
    }
  }
}

TEST(BenchReport, WriteLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "bench_report_rt.json";
  const BenchReport r = sample_report();
  ASSERT_TRUE(r.write(path));
  const BenchReport p = load_bench_report(path);
  EXPECT_EQ(p.schema_version, r.schema_version);
  ASSERT_EQ(p.entries.size(), r.entries.size());
  EXPECT_EQ(p.entries[0].name, r.entries[0].name);
  std::remove(path.c_str());
}

TEST(BenchReport, PreVersioningFilesParseAsVersionZero) {
  // PR 2-era reports had no schema_version field.
  const std::string json =
      R"({"binary": "bench_kernels", "metadata": {}, "benchmarks": [)"
      R"({"name": "k", "repetitions": 1, "median_seconds": 2.0,)"
      R"( "min_seconds": 2.0, "max_seconds": 2.0, "stddev_seconds": 0.0,)"
      R"( "counters": {}}]})";
  const BenchReport p = parse_bench_report(json);
  EXPECT_EQ(p.schema_version, 0);
  ASSERT_EQ(p.entries.size(), 1u);
  EXPECT_EQ(p.entries[0].name, "k");
  EXPECT_DOUBLE_EQ(p.entries[0].median_seconds, 2.0);
}

TEST(BenchReport, UnknownKeysAreSkipped) {
  const std::string json =
      R"({"schema_version": 1, "binary": "x", "future_field": [1, {"a": 2}],)"
      R"( "metadata": {"k": "v"}, "benchmarks": []})";
  const BenchReport p = parse_bench_report(json);
  EXPECT_EQ(p.schema_version, 1);
  EXPECT_EQ(p.binary, "x");
}

TEST(BenchReport, MalformedJsonThrows) {
  EXPECT_THROW(parse_bench_report(""), Error);
  EXPECT_THROW(parse_bench_report("{"), Error);
  EXPECT_THROW(parse_bench_report("[1,2]"), Error);
  EXPECT_THROW(parse_bench_report(R"({"binary": )"), Error);
}

TEST(BenchReport, LoadMissingFileThrows) {
  EXPECT_THROW(load_bench_report("/nonexistent/bench.json"), Error);
}

TEST(BenchReport, FindLocatesEntriesByName) {
  const BenchReport r = sample_report();
  ASSERT_NE(r.find("model/DLR1"), nullptr);
  EXPECT_DOUBLE_EQ(r.find("model/DLR1")->counters[0].second, 0.31);
  EXPECT_EQ(r.find("absent"), nullptr);
}

TEST(BenchReport, MachineFingerprintNamesTheHost) {
  const auto fp = machine_fingerprint();
  std::set<std::string> keys;
  for (const auto& [k, v] : fp) keys.insert(k);
  for (const char* want : {"hostname", "cores", "compiler", "arch", "os",
                           "cxx_flags"})
    EXPECT_TRUE(keys.count(want)) << "missing fingerprint key: " << want;
  for (const auto& [k, v] : fp)
    if (k == "cores") EXPECT_GT(std::stoi(v), 0);
}

TEST(BenchReport, EntryFromStatsCopiesTheSummary) {
  MeasureStats s;
  s.reps = 4;
  s.mean_seconds = 2.0;
  s.median_seconds = 1.9;
  s.min_seconds = 1.5;
  s.max_seconds = 2.6;
  s.stddev_seconds = 0.4;
  const BenchEntry e = entry_from_stats("k", s, {{"GF/s", 3.0}});
  EXPECT_EQ(e.repetitions, 4);
  EXPECT_DOUBLE_EQ(e.mean_seconds, 2.0);
  EXPECT_DOUBLE_EQ(e.median_seconds, 1.9);
  EXPECT_DOUBLE_EQ(e.min_seconds, 1.5);
  EXPECT_DOUBLE_EQ(e.max_seconds, 2.6);
  EXPECT_DOUBLE_EQ(e.stddev_seconds, 0.4);
  ASSERT_EQ(e.counters.size(), 1u);
  EXPECT_EQ(e.counters[0].first, "GF/s");
}

TEST(BenchReport, ConsumeJsonFlag) {
  std::string path, err;

  {
    const char* raw[] = {"bench", "--smoke", "--json", "out.json", "--list"};
    char** argv = const_cast<char**>(raw);
    int argc = 5;
    EXPECT_TRUE(consume_json_flag(&argc, argv, &path, &err));
    EXPECT_EQ(path, "out.json");
    ASSERT_EQ(argc, 3);  // flag + value stripped, order kept
    EXPECT_STREQ(argv[1], "--smoke");
    EXPECT_STREQ(argv[2], "--list");
  }
  {
    const char* raw[] = {"bench", "--json=x.json"};
    char** argv = const_cast<char**>(raw);
    int argc = 2;
    path.clear();
    EXPECT_TRUE(consume_json_flag(&argc, argv, &path, &err));
    EXPECT_EQ(path, "x.json");
    EXPECT_EQ(argc, 1);
  }
  {
    // A bare --json must not swallow the following flag.
    const char* raw[] = {"bench", "--json", "--smoke"};
    char** argv = const_cast<char**>(raw);
    int argc = 3;
    EXPECT_FALSE(consume_json_flag(&argc, argv, &path, &err));
    EXPECT_FALSE(err.empty());
  }
  {
    const char* raw[] = {"bench", "--json="};
    char** argv = const_cast<char**>(raw);
    int argc = 2;
    err.clear();
    EXPECT_FALSE(consume_json_flag(&argc, argv, &path, &err));
    EXPECT_FALSE(err.empty());
  }
  {
    const char* raw[] = {"bench", "--json"};
    char** argv = const_cast<char**>(raw);
    int argc = 2;
    EXPECT_FALSE(consume_json_flag(&argc, argv, &path, &err));
  }
}

}  // namespace
}  // namespace spmvm::obs

namespace spmvm::suite {
namespace {

TEST(SuiteRegistry, IsFixedAndOrdered) {
  const auto s = scenarios();
  ASSERT_EQ(s.size(), 9u);
  const std::vector<std::string> names = {
      "host_kernels",    "auto_format",      "model_deviation",
      "host_reference",  "exec_backends",    "pcie_thresholds",
      "dist_comm_modes", "dist_comm",        "serve"};
  std::set<std::string> seen;
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(s[i].name, names[i]);
    EXPECT_NE(s[i].description[0], '\0');
    EXPECT_NE(s[i].run, nullptr);
    seen.insert(s[i].name);
  }
  EXPECT_EQ(seen.size(), s.size());  // names unique
}

TEST(SuiteRegistry, DeterministicScenariosReproduce) {
  // Model-only scenarios must emit bit-identical reports on every run —
  // the property the CI regression gate relies on.
  SuiteConfig cfg;
  cfg.smoke = true;
  cfg.min_reps = 1;
  cfg.min_seconds = 0.0;
  for (const char* filter :
       {"pcie_thresholds", "dist_comm_modes", "exec_backends", "serve"}) {
    const obs::BenchReport a = run_suite(cfg, filter);
    const obs::BenchReport b = run_suite(cfg, filter);
    ASSERT_FALSE(a.entries.empty()) << filter;
    ASSERT_EQ(a.entries.size(), b.entries.size()) << filter;
    for (std::size_t i = 0; i < a.entries.size(); ++i) {
      EXPECT_EQ(a.entries[i].name, b.entries[i].name);
      EXPECT_EQ(a.entries[i].counters, b.entries[i].counters) << filter;
      EXPECT_EQ(a.entries[i].mean_seconds, b.entries[i].mean_seconds);
    }
  }
}

TEST(SuiteRegistry, RunSuiteStampsFingerprintAndConfig) {
  SuiteConfig cfg;
  cfg.smoke = true;
  const obs::BenchReport r = run_suite(cfg, "pcie_thresholds");
  std::set<std::string> keys;
  for (const auto& [k, v] : r.metadata) keys.insert(k);
  for (const char* want :
       {"hostname", "cores", "compiler", "mode", "min_reps", "filter"})
    EXPECT_TRUE(keys.count(want)) << "missing metadata key: " << want;
  EXPECT_EQ(r.binary, "bench_suite");
  EXPECT_EQ(r.schema_version, obs::kBenchSchemaVersion);
  // Filter selects exactly the one scenario's entries.
  for (const obs::BenchEntry& e : r.entries)
    EXPECT_EQ(e.name.rfind("pcie/", 0), 0u) << e.name;
}

TEST(SuiteRegistry, SuiteReportSurvivesJsonRoundTrip) {
  SuiteConfig cfg;
  cfg.smoke = true;
  const obs::BenchReport r = run_suite(cfg, "dist_comm_modes");
  const obs::BenchReport p = obs::parse_bench_report(r.to_json());
  ASSERT_EQ(p.entries.size(), r.entries.size());
  for (std::size_t i = 0; i < r.entries.size(); ++i) {
    EXPECT_EQ(p.entries[i].name, r.entries[i].name);
    // The writer prints %.9g, so model seconds survive to ~1e-9 relative.
    EXPECT_NEAR(p.entries[i].mean_seconds, r.entries[i].mean_seconds,
                1e-8 * std::abs(r.entries[i].mean_seconds) + 1e-15);
  }
}

}  // namespace
}  // namespace spmvm::suite
