#include "solver/bicgstab.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "matgen/generators.hpp"
#include "sparse/convert.hpp"
#include "sparse/spmv_host.hpp"
#include "test_helpers.hpp"

namespace spmvm::solver {
namespace {

using spmvm::testing::random_vector;

/// Nonsymmetric but diagonally dominant matrix (BiCGSTAB-friendly).
Csr<double> nonsymmetric_matrix(index_t n, std::uint64_t seed) {
  auto a = spmvm::testing::random_csr<double>(n, n, 2, 8, seed);
  // Boost the diagonal well above the off-diagonal row sums.
  Coo<double> coo(n, n);
  for (index_t i = 0; i < n; ++i) {
    coo.add(i, i, 12.0);
    for (offset_t k = a.row_ptr[static_cast<std::size_t>(i)];
         k < a.row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      const index_t c = a.col_idx[static_cast<std::size_t>(k)];
      if (c != i) coo.add(i, c, a.val[static_cast<std::size_t>(k)]);
    }
  }
  return Csr<double>::from_coo(std::move(coo));
}

TEST(Bicgstab, SolvesNonsymmetricSystem) {
  const auto csr = nonsymmetric_matrix(200, 1);
  EXPECT_FALSE(is_symmetric(csr));
  const auto a = std::make_shared<const Csr<double>>(csr);
  const auto op = make_operator<double>(a);
  const auto x_true = random_vector<double>(200, 2);
  std::vector<double> b(200);
  op.apply(std::span<const double>(x_true), std::span<double>(b));

  std::vector<double> x(200, 0.0);
  const auto r = bicgstab(op, std::span<const double>(b),
                          std::span<double>(x), 1e-12, 500);
  EXPECT_TRUE(r.converged);
  EXPECT_FALSE(r.breakdown);
  spmvm::testing::expect_vectors_near<double>(x_true, x, 1e-7);
}

TEST(Bicgstab, SolvesSpdSystemToo) {
  const auto a = std::make_shared<const Csr<double>>(
      make_poisson2d<double>(15, 15));
  const auto op = make_operator<double>(a);
  const auto b = random_vector<double>(a->n_rows, 3);
  std::vector<double> x(b.size(), 0.0);
  const auto r = bicgstab(op, std::span<const double>(b),
                          std::span<double>(x), 1e-11, 2000);
  EXPECT_TRUE(r.converged);
  std::vector<double> ax(b.size());
  op.apply(std::span<const double>(x), std::span<double>(ax));
  spmvm::testing::expect_vectors_near<double>(b, ax, 1e-7);
}

TEST(Bicgstab, ZeroRhsImmediate) {
  const auto a = std::make_shared<const Csr<double>>(
      make_poisson2d<double>(6, 6));
  std::vector<double> b(36, 0.0), x(36, 0.0);
  const auto r = bicgstab(make_operator<double>(a),
                          std::span<const double>(b), std::span<double>(x));
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0);
}

TEST(Bicgstab, PjdsVariantMatchesCsr) {
  // DLR1-like nonsymmetric system through the permuted pJDS basis.
  GenConfig cfg;
  cfg.scale = 512;
  auto base = make_dlr1<double>(cfg);
  // Strengthen the diagonal so BiCGSTAB converges without preconditioning.
  for (index_t i = 0; i < base.n_rows; ++i)
    for (offset_t k = base.row_ptr[static_cast<std::size_t>(i)];
         k < base.row_ptr[static_cast<std::size_t>(i) + 1]; ++k)
      if (base.col_idx[static_cast<std::size_t>(k)] == i)
        base.val[static_cast<std::size_t>(k)] =
            static_cast<double>(base.row_len(i)) + 1.0;

  const auto b = random_vector<double>(base.n_rows, 5);
  std::vector<double> x_csr(b.size(), 0.0), x_pjds(b.size(), 0.0);

  const auto shared = std::make_shared<const Csr<double>>(base);
  const auto rc = bicgstab(make_operator<double>(shared),
                           std::span<const double>(b),
                           std::span<double>(x_csr), 1e-11, 2000);
  const auto rp = bicgstab_pjds(base, std::span<const double>(b),
                                std::span<double>(x_pjds), 1e-11, 2000);
  EXPECT_TRUE(rc.converged);
  EXPECT_TRUE(rp.converged);
  spmvm::testing::expect_vectors_near<double>(x_csr, x_pjds, 1e-6);
}

TEST(Bicgstab, ReportsBreakdownOnSingularSystem) {
  // Singular matrix (zero row): cannot converge for a generic b; the
  // solver must terminate without claiming convergence.
  Coo<double> coo(4, 4);
  coo.add(0, 0, 1.0);
  coo.add(1, 1, 1.0);
  coo.add(2, 2, 1.0);  // row 3 empty -> singular
  const auto a = std::make_shared<const Csr<double>>(
      Csr<double>::from_coo(std::move(coo)));
  const std::vector<double> b = {1, 1, 1, 1};
  std::vector<double> x(4, 0.0);
  const auto r = bicgstab(make_operator<double>(a),
                          std::span<const double>(b), std::span<double>(x),
                          1e-12, 50);
  EXPECT_FALSE(r.converged);
}

}  // namespace
}  // namespace spmvm::solver
