// Shape tests for the Fig. 4/5 machinery: the cluster model must
// reproduce the qualitative results of the paper's Sec. III-B.
#include "dist/cluster_model.hpp"

#include <gtest/gtest.h>

#include "matgen/generators.hpp"
#include "test_helpers.hpp"

namespace spmvm::dist {
namespace {

double gflops_of(const std::vector<ScalingPoint>& pts, int nodes,
                 CommScheme scheme) {
  for (const auto& p : pts)
    if (p.nodes == nodes && p.scheme == scheme) return p.gflops;
  ADD_FAILURE() << "missing point";
  return 0.0;
}

const std::vector<CommScheme> kAllSchemes = {
    CommScheme::vector_mode, CommScheme::naive_overlap, CommScheme::task_mode};

TEST(NodeTiming, ComponentsArePositive) {
  const auto a = spmvm::testing::random_csr<double>(2048, 2048, 20, 40, 1);
  const auto d = distribute(a, partition_uniform(2048, 4), 1);
  const auto t = node_timing(ClusterSpec::dirac(), d);
  EXPECT_GT(t.t_local, 0.0);
  EXPECT_GT(t.t_nonlocal, 0.0);
  EXPECT_GT(t.t_comm, 0.0);
  EXPECT_GT(t.t_down, 0.0);
  EXPECT_GT(t.t_up, 0.0);
  EXPECT_GT(t.n_peers, 0);
  EXPECT_LT(t.t_full, t.t_local + t.t_nonlocal);
}

TEST(NodeTiming, TaskModeNeverSlowerThanVector) {
  const auto c = ClusterSpec::dirac();
  const auto a = spmvm::testing::random_csr<double>(4096, 4096, 30, 60, 2);
  for (int r = 0; r < 4; ++r) {
    const auto d = distribute(a, partition_uniform(4096, 4), r);
    const auto t = node_timing(c, d);
    EXPECT_LE(t.iteration_seconds(c, CommScheme::task_mode),
              t.iteration_seconds(c, CommScheme::vector_mode) +
                  c.thread_sync_s);
  }
}

TEST(NodeTiming, NoCommunicationMeansSchemesTie) {
  const auto c = ClusterSpec::dirac();
  const auto a = spmvm::testing::random_csr<double>(1024, 1024, 8, 16, 3);
  const auto d = distribute(a, partition_uniform(1024, 1), 0);
  const auto t = node_timing(c, d);
  EXPECT_EQ(t.n_peers, 0);
  EXPECT_DOUBLE_EQ(t.t_comm, 0.0);
  EXPECT_NEAR(t.iteration_seconds(c, CommScheme::vector_mode),
              t.iteration_seconds(c, CommScheme::task_mode),
              c.thread_sync_s + 1e-9);
}

TEST(StrongScaling, TaskModeWinsOnCommBoundMatrix) {
  // DLR1-like regime with communication and computation both relevant:
  // task mode must beat the vector modes (Fig. 5a). Once communication
  // dominates completely the schemes converge, so task is only required
  // not to fall below naive by more than its thread-sync overhead.
  GenConfig cfg;
  cfg.scale = 16;
  const auto a = make_dlr1<double>(cfg);
  const auto pts =
      strong_scaling(ClusterSpec::dirac(), a, {4, 8}, kAllSchemes);
  for (int nodes : {4, 8}) {
    const double task = gflops_of(pts, nodes, CommScheme::task_mode);
    const double naive = gflops_of(pts, nodes, CommScheme::naive_overlap);
    const double vec = gflops_of(pts, nodes, CommScheme::vector_mode);
    EXPECT_GT(task, naive) << nodes;
    EXPECT_GE(naive, vec * 0.98) << nodes;
  }
}

TEST(StrongScaling, ThroughputGrowsWithNodesInitially) {
  GenConfig cfg;
  cfg.scale = 32;
  const auto a = make_dlr1<double>(cfg);
  const auto pts = strong_scaling(ClusterSpec::dirac(), a, {1, 2, 4},
                                  {CommScheme::task_mode});
  EXPECT_GT(gflops_of(pts, 2, CommScheme::task_mode),
            gflops_of(pts, 1, CommScheme::task_mode));
  EXPECT_GT(gflops_of(pts, 4, CommScheme::task_mode),
            gflops_of(pts, 2, CommScheme::task_mode));
}

TEST(StrongScaling, ParallelEfficiencyDropsWithScale) {
  // The per-GPU subproblem shrinks: efficiency at many nodes is below
  // efficiency at few nodes (the Fig. 5a performance breakdown).
  GenConfig cfg;
  cfg.scale = 32;
  const auto a = make_dlr1<double>(cfg);
  const auto pts = strong_scaling(ClusterSpec::dirac(), a, {1, 4, 16},
                                  {CommScheme::task_mode});
  const double g1 = gflops_of(pts, 1, CommScheme::task_mode);
  const double e4 = gflops_of(pts, 4, CommScheme::task_mode) / (4 * g1);
  const double e16 = gflops_of(pts, 16, CommScheme::task_mode) / (16 * g1);
  EXPECT_LT(e16, e4);
}

TEST(StrongScaling, SchemesConvergeAtExtremeScaling) {
  // Paper: "At larger node counts the performance of all variants starts
  // to converge" — the gap between task and vector mode shrinks relative
  // to total time as the kernels shrink.
  GenConfig cfg;
  cfg.scale = 64;
  const auto a = make_dlr1<double>(cfg);
  const auto pts =
      strong_scaling(ClusterSpec::dirac(), a, {2, 16}, kAllSchemes);
  const double gap_small =
      gflops_of(pts, 2, CommScheme::task_mode) /
      gflops_of(pts, 2, CommScheme::vector_mode);
  const double gap_large =
      gflops_of(pts, 16, CommScheme::task_mode) /
      gflops_of(pts, 16, CommScheme::vector_mode);
  EXPECT_GT(gap_small, 1.0);
  EXPECT_GT(gap_large, 1.0);
}

TEST(StrongScaling, CapacitySkipsReportedAsZero) {
  // The UHBR-on-C2050 effect of Fig. 5b: points whose per-node matrix
  // exceeds device memory are reported with zero throughput.
  ClusterSpec c = ClusterSpec::dirac();
  c.device.dram_bytes = 1;  // nothing fits
  const auto a = spmvm::testing::random_csr<double>(512, 512, 4, 8, 5);
  const auto pts = strong_scaling(c, a, {2}, {CommScheme::task_mode});
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_DOUBLE_EQ(pts[0].gflops, 0.0);
}

TEST(Timeline, TaskModeTimelineHasAllActors) {
  const auto a = spmvm::testing::random_csr<double>(2048, 2048, 20, 40, 6);
  const auto d = distribute(a, partition_uniform(2048, 4), 1);
  const auto c = ClusterSpec::dirac();
  const auto tl = task_mode_timeline(c, node_timing(c, d));
  const std::string out = tl.render();
  EXPECT_NE(out.find("thread 0"), std::string::npos);
  EXPECT_NE(out.find("thread 1"), std::string::npos);
  EXPECT_NE(out.find("GPGPU"), std::string::npos);
  EXPECT_GT(tl.duration(), 0.0);
}

TEST(Timeline, RenderRejectsTinyWidth) {
  Timeline tl;
  tl.add("a", "x", 0.0, 1.0);
  EXPECT_THROW(tl.render(4), Error);
}

TEST(Timeline, EventsValidated) {
  Timeline tl;
  EXPECT_THROW(tl.add("a", "x", 2.0, 1.0), Error);
  EXPECT_THROW(tl.add("a", "x", -1.0, 1.0), Error);
}

}  // namespace
}  // namespace spmvm::dist
