#include "gpusim/coalescing.hpp"

#include <gtest/gtest.h>

#include <array>

namespace spmvm::gpusim {
namespace {

TEST(CoalescedBytes, FullWarpSinglePrecisionIsOneLine) {
  // 32 lanes x 4 B = 128 B = exactly one Fermi transaction.
  EXPECT_EQ(coalesced_bytes(32, 4, 128), 128u);
}

TEST(CoalescedBytes, FullWarpDoublePrecisionIsTwoLines) {
  EXPECT_EQ(coalesced_bytes(32, 8, 128), 256u);
}

TEST(CoalescedBytes, PartialWarpRoundsUp) {
  EXPECT_EQ(coalesced_bytes(1, 4, 128), 128u);
  EXPECT_EQ(coalesced_bytes(33, 4, 128), 256u);
}

TEST(CoalescedBytes, ZeroSpanIsFree) { EXPECT_EQ(coalesced_bytes(0, 8, 128), 0u); }

TEST(GatherLines, DedupsWithinWarp) {
  const std::array<std::uint64_t, 6> addrs = {0, 4, 8, 128, 132, 1024};
  std::array<std::uint64_t, 6> out{};
  EXPECT_EQ(gather_lines(addrs, 128, out), 3u);  // lines 0, 1, 8
}

TEST(GatherLines, AllSameLine) {
  const std::array<std::uint64_t, 4> addrs = {0, 1, 2, 3};
  std::array<std::uint64_t, 4> out{};
  EXPECT_EQ(gather_lines(addrs, 128, out), 1u);
  EXPECT_EQ(out[0], 0u);
}

TEST(GatherLines, AllDistinct) {
  const std::array<std::uint64_t, 3> addrs = {0, 128, 256};
  std::array<std::uint64_t, 3> out{};
  EXPECT_EQ(gather_lines(addrs, 128, out), 3u);
}

TEST(GatherLines, EmptyGather) {
  std::array<std::uint64_t, 1> out{};
  EXPECT_EQ(gather_lines(std::span<const std::uint64_t>{}, 128, out), 0u);
}

}  // namespace
}  // namespace spmvm::gpusim
