// Persistent halo-exchange plans (dist/comm_plan): bit-identity with
// the legacy per-call dist_spmv for every scheme, rendezvous delivery
// in steady state, comm-thread reuse in task mode, allocation-free
// steady-state iterations, and plan rebuild after a format switch.
#include "dist/comm_plan.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <new>
#include <tuple>

#include "matgen/generators.hpp"
#include "obs/metrics.hpp"
#include "test_helpers.hpp"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SPMVM_TSAN 1
#endif
#elif defined(__SANITIZE_THREAD__)
#define SPMVM_TSAN 1
#endif

// Global allocation counter for the zero-allocation assertion. The
// default operator new[] forwards here, so scalar and array news are
// both counted.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace spmvm::dist {
namespace {

using spmvm::testing::random_csr;
using spmvm::testing::random_vector;

/// Run the legacy dist_spmv and a CommPlan over the same distribution in
/// one SPMD program; returns (legacy, plan) global results.
std::pair<std::vector<double>, std::vector<double>> run_both(
    const Csr<double>& a, int n_ranks, CommScheme scheme,
    const std::vector<double>& x, int plan_iterations = 3,
    int gather_threads = 2) {
  const auto part = partition_balanced_nnz(a, n_ranks);
  std::vector<double> y_legacy(static_cast<std::size_t>(a.n_rows));
  std::vector<double> y_plan(static_cast<std::size_t>(a.n_rows));
  std::mutex m;
  msg::Runtime::run(n_ranks, [&](msg::Comm& comm) {
    const auto d = distribute(a, part, comm.rank());
    const index_t row0 = part.begin(comm.rank());
    std::vector<double> x_local(x.begin() + row0,
                                x.begin() + part.end(comm.rank()));
    std::vector<double> yl(static_cast<std::size_t>(d.n_local));
    std::vector<double> yp(static_cast<std::size_t>(d.n_local));
    std::vector<double> halo, sendbuf;
    dist_spmv(comm, d, std::span<const double>(x_local), std::span<double>(yl),
              scheme, halo, sendbuf);
    CommPlan<double> plan(comm, d, scheme, gather_threads);
    for (int it = 0; it < plan_iterations; ++it)
      plan.spmv(std::span<const double>(x_local), std::span<double>(yp));
    EXPECT_EQ(plan.iterations(),
              static_cast<std::uint64_t>(plan_iterations));
    std::lock_guard<std::mutex> lock(m);
    std::copy(yl.begin(), yl.end(), y_legacy.begin() + row0);
    std::copy(yp.begin(), yp.end(), y_plan.begin() + row0);
  });
  return {std::move(y_legacy), std::move(y_plan)};
}

class CommPlanSweep
    : public ::testing::TestWithParam<std::tuple<int, CommScheme>> {};

TEST_P(CommPlanSweep, BitIdenticalToLegacyDistSpmv) {
  const auto& [n_ranks, scheme] = GetParam();
  const auto a = random_csr<double>(211, 211, 0, 14, 31);
  const auto x = random_vector<double>(211, 32);
  const auto [legacy, plan] = run_both(a, n_ranks, scheme, x);
  // Same kernels in the same order: exact equality, no tolerance.
  EXPECT_EQ(legacy, plan);
}

INSTANTIATE_TEST_SUITE_P(
    RanksAndSchemes, CommPlanSweep,
    ::testing::Combine(::testing::Values(1, 2, 7),
                       ::testing::Values(CommScheme::vector_mode,
                                         CommScheme::naive_overlap,
                                         CommScheme::task_mode)));

// With a barrier between iterations no rank can outrun its peers, so
// every steady-state send must land in a pre-posted buffer (rendezvous)
// and none may fall back to the eager queue.
TEST(CommPlan, SteadyStateSendsAreRendezvous) {
  const auto a = make_banded<double>(192, 3);
  const auto x = random_vector<double>(192, 5);
  const auto part = partition_balanced_nnz(a, 2);
  constexpr int kIters = 10;
  std::uint64_t hits_delta = 0, eager_delta = 0;
  msg::Runtime::run(2, [&](msg::Comm& comm) {
    const auto d = distribute(a, part, comm.rank());
    const index_t row0 = part.begin(comm.rank());
    std::vector<double> x_local(x.begin() + row0,
                                x.begin() + part.end(comm.rank()));
    std::vector<double> y(static_cast<std::size_t>(d.n_local));
    CommPlan<double> plan(comm, d, CommScheme::vector_mode);
    plan.spmv(std::span<const double>(x_local), std::span<double>(y));
    comm.barrier();
    std::uint64_t hits0 = 0, eager0 = 0;
    if (comm.rank() == 0) {
      hits0 = obs::counter("comm.rendezvous_hits").value();
      eager0 = obs::counter("comm.eager_fallbacks").value();
    }
    comm.barrier();
    for (int it = 0; it < kIters; ++it) {
      plan.spmv(std::span<const double>(x_local), std::span<double>(y));
      comm.barrier();
    }
    if (comm.rank() == 0) {
      hits_delta = obs::counter("comm.rendezvous_hits").value() - hits0;
      eager_delta = obs::counter("comm.eager_fallbacks").value() - eager0;
    }
  });
  // One message per rank per iteration on a two-rank banded split.
  EXPECT_EQ(hits_delta, static_cast<std::uint64_t>(2 * kIters));
  EXPECT_EQ(eager_delta, 0u);
}

// Free-running ranks (no inter-iteration synchronization, evolving
// input) race each other by whole iterations, so deliveries mix the
// rendezvous and eager paths — the result must still be bit-identical
// to the fully synchronous legacy loop.
TEST(CommPlan, EagerFallbackUnderRacingIsBitIdentical) {
  const auto a = make_banded<double>(160, 2);
  const auto part = partition_balanced_nnz(a, 3);
  constexpr int kIters = 50;
  for (const auto scheme :
       {CommScheme::naive_overlap, CommScheme::task_mode}) {
    SCOPED_TRACE(to_string(scheme));
    std::vector<double> final_legacy(static_cast<std::size_t>(a.n_rows));
    std::vector<double> final_plan(static_cast<std::size_t>(a.n_rows));
    std::mutex m;
    msg::Runtime::run(3, [&](msg::Comm& comm) {
      const auto d = distribute(a, part, comm.rank());
      const index_t row0 = part.begin(comm.rank());
      const auto n = static_cast<std::size_t>(d.n_local);
      // Legacy loop: x <- A x / 2 per iteration, no global sync needed.
      std::vector<double> x(n, 1.0), y(n);
      std::vector<double> halo, sendbuf;
      for (int it = 0; it < kIters; ++it) {
        dist_spmv(comm, d, std::span<const double>(x), std::span<double>(y),
                  scheme, halo, sendbuf);
        for (std::size_t i = 0; i < n; ++i) x[i] = y[i] * 0.5;
      }
      const std::vector<double> legacy = x;
      // Same recurrence through the plan.
      x.assign(n, 1.0);
      CommPlan<double> plan(comm, d, scheme);
      for (int it = 0; it < kIters; ++it) {
        plan.spmv(std::span<const double>(x), std::span<double>(y));
        for (std::size_t i = 0; i < n; ++i) x[i] = y[i] * 0.5;
      }
      std::lock_guard<std::mutex> lock(m);
      std::copy(legacy.begin(), legacy.end(), final_legacy.begin() + row0);
      std::copy(x.begin(), x.end(), final_plan.begin() + row0);
    });
    EXPECT_EQ(final_legacy, final_plan);
  }
}

// Task mode spawns exactly one communication thread per rank at plan
// build and reuses it for every iteration.
TEST(CommPlan, TaskModeReusesOneCommThreadPerRank) {
  const auto a = make_banded<double>(144, 3);
  const auto x = random_vector<double>(144, 17);
  const std::uint64_t threads0 = obs::counter("comm.task_threads").value();
  const auto [legacy, plan] =
      run_both(a, 3, CommScheme::task_mode, x, /*plan_iterations=*/120);
  EXPECT_EQ(legacy, plan);
  EXPECT_EQ(obs::counter("comm.task_threads").value() - threads0, 3u);
}

// The steady-state path — gather, exchange, kernels, re-post — performs
// zero heap allocations once warmed up, for every scheme.
TEST(CommPlan, SteadyStateIterationsDoNotAllocate) {
#ifdef SPMVM_TSAN
  GTEST_SKIP() << "tsan instruments the allocator; counts are not ours";
#else
  const auto a = make_banded<double>(256, 4);
  const auto x = random_vector<double>(256, 23);
  const auto part = partition_balanced_nnz(a, 2);
  for (const auto scheme :
       {CommScheme::vector_mode, CommScheme::naive_overlap,
        CommScheme::task_mode}) {
    SCOPED_TRACE(to_string(scheme));
    std::uint64_t delta = ~0ull;
    msg::Runtime::run(2, [&](msg::Comm& comm) {
      const auto d = distribute(a, part, comm.rank());
      const index_t row0 = part.begin(comm.rank());
      std::vector<double> x_local(x.begin() + row0,
                                  x.begin() + part.end(comm.rank()));
      std::vector<double> y(static_cast<std::size_t>(d.n_local));
      CommPlan<double> plan(comm, d, scheme, /*gather_threads=*/2);
      // Warm up: spawn pool workers, initialize metric statics, size
      // the mailbox bookkeeping to its steady-state capacity.
      for (int it = 0; it < 3; ++it) {
        plan.spmv(std::span<const double>(x_local), std::span<double>(y));
        comm.barrier();
      }
      std::uint64_t base = 0;
      if (comm.rank() == 0) base = g_allocations.load();
      comm.barrier();
      // The barrier keeps every send on the rendezvous path, so no rank
      // allocates anywhere in the measured window.
      for (int it = 0; it < 10; ++it) {
        plan.spmv(std::span<const double>(x_local), std::span<double>(y));
        comm.barrier();
      }
      if (comm.rank() == 0) delta = g_allocations.load() - base;
    });
    EXPECT_EQ(delta, 0u);
  }
#endif
}

// Switching the DistMatrix kernel format invalidates the old plan's
// kernel dispatch; a freshly built plan must agree bit-for-bit with the
// legacy path under the new format.
TEST(CommPlan, RebuildAfterFormatSwitch) {
  const auto a = random_csr<double>(150, 150, 1, 9, 77);
  const auto x = random_vector<double>(150, 78);
  const auto part = partition_balanced_nnz(a, 3);
  std::vector<double> y_csr(static_cast<std::size_t>(a.n_rows));
  std::vector<double> y_ell(static_cast<std::size_t>(a.n_rows));
  std::vector<double> y_ell_legacy(static_cast<std::size_t>(a.n_rows));
  std::mutex m;
  msg::Runtime::run(3, [&](msg::Comm& comm) {
    auto d = distribute(a, part, comm.rank());
    const index_t row0 = part.begin(comm.rank());
    std::vector<double> x_local(x.begin() + row0,
                                x.begin() + part.end(comm.rank()));
    std::vector<double> y1(static_cast<std::size_t>(d.n_local));
    std::vector<double> y2(static_cast<std::size_t>(d.n_local));
    std::vector<double> y3(static_cast<std::size_t>(d.n_local));
    {
      CommPlan<double> plan(comm, d, CommScheme::vector_mode);
      plan.spmv(std::span<const double>(x_local), std::span<double>(y1));
    }  // destroyed before the format switch: its kernel dispatch is stale
    d.build_plans(formats::registry<double>(), "ellpack_r");
    std::vector<double> halo, sendbuf;
    dist_spmv(comm, d, std::span<const double>(x_local), std::span<double>(y3),
              CommScheme::vector_mode, halo, sendbuf);
    CommPlan<double> plan2(comm, d, CommScheme::vector_mode);
    plan2.spmv(std::span<const double>(x_local), std::span<double>(y2));
    std::lock_guard<std::mutex> lock(m);
    std::copy(y1.begin(), y1.end(), y_csr.begin() + row0);
    std::copy(y2.begin(), y2.end(), y_ell.begin() + row0);
    std::copy(y3.begin(), y3.end(), y_ell_legacy.begin() + row0);
  });
  EXPECT_EQ(y_ell, y_ell_legacy);  // same format: exact
  spmvm::testing::expect_vectors_near<double>(y_csr, y_ell, 1e-13);
}

// The gather metrics advance as plans execute.
TEST(CommPlan, GatherMetricsAdvance) {
  const auto a = make_banded<double>(128, 3);
  const auto x = random_vector<double>(128, 3);
  const std::uint64_t ns0 = obs::counter("comm.gather_ns").value();
  run_both(a, 2, CommScheme::vector_mode, x, /*plan_iterations=*/5);
  EXPECT_GT(obs::counter("comm.gather_ns").value(), ns0);
  EXPECT_GT(obs::gauge("comm.gather_seconds").value(), 0.0);
}

}  // namespace
}  // namespace spmvm::dist
