#include "dist/comm_stats.hpp"

#include <gtest/gtest.h>

#include "matgen/generators.hpp"
#include "test_helpers.hpp"

namespace spmvm::dist {
namespace {

TEST(CommStats, SingleRankHasNoCommunication) {
  const auto a = spmvm::testing::random_csr<double>(100, 100, 1, 8, 1);
  const auto s = analyze_partition(a, partition_uniform(100, 1));
  EXPECT_EQ(s.max_halo, 0);
  EXPECT_EQ(s.max_peers, 0);
  EXPECT_DOUBLE_EQ(s.nonlocal_fraction(), 0.0);
  EXPECT_EQ(s.total_nnz, a.nnz());
}

TEST(CommStats, EntriesConserved) {
  const auto a = spmvm::testing::random_csr<double>(200, 200, 0, 10, 2);
  for (int nodes : {2, 5, 8}) {
    const auto s = analyze_partition(a, partition_uniform(200, nodes));
    EXPECT_EQ(s.total_nnz, a.nnz()) << nodes;
  }
}

TEST(CommStats, HaloGrowsWithRankCount) {
  const auto a = make_uhbr<double>([] {
    GenConfig c;
    c.scale = 512;
    return c;
  }());
  const auto few = analyze_partition(a, partition_balanced_nnz(a, 2));
  const auto many = analyze_partition(a, partition_balanced_nnz(a, 8));
  // Total halo (avg * nodes) grows as cuts multiply.
  EXPECT_GT(many.avg_halo * 8, few.avg_halo * 2);
  EXPECT_GT(many.nonlocal_fraction(), few.nonlocal_fraction());
}

TEST(CommStats, BandedMatrixHasTinyHalo) {
  const auto a = make_banded<double>(512, 2);
  const auto s = analyze_partition(a, partition_uniform(512, 8));
  EXPECT_LE(s.max_halo, 4);  // at most `band` per cut side
  EXPECT_LE(s.max_peers, 2);
  EXPECT_LT(s.nonlocal_fraction(), 0.05);
}

TEST(CommStats, BalancedPartitionHasLowImbalance) {
  const auto a = make_powerlaw<double>(3000, 10.0, 200, 3);
  const auto uniform = analyze_partition(a, partition_uniform(3000, 6));
  const auto balanced = analyze_partition(a, partition_balanced_nnz(a, 6));
  EXPECT_LE(balanced.nnz_imbalance, uniform.nnz_imbalance + 1e-9);
  EXPECT_LT(balanced.nnz_imbalance, 1.3);
}

TEST(CommStats, FormatMentionsKeyFigures) {
  const auto a = spmvm::testing::random_csr<double>(64, 64, 1, 6, 4);
  const auto s = analyze_partition(a, partition_uniform(64, 4));
  const auto line = format_stats(s);
  EXPECT_NE(line.find("4 ranks"), std::string::npos);
  EXPECT_NE(line.find("peers"), std::string::npos);
}

}  // namespace
}  // namespace spmvm::dist
