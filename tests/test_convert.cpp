#include "sparse/convert.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "util/error.hpp"

namespace spmvm {
namespace {

TEST(PermuteCsr, RowOnlyReordersRows) {
  const auto a = testing::random_csr<double>(20, 30, 1, 5, 11);
  const auto p = Permutation::from_new_to_old([] {
    std::vector<index_t> v(20);
    for (index_t i = 0; i < 20; ++i) v[static_cast<std::size_t>(i)] = 19 - i;
    return v;
  }());
  const auto b = permute_csr(a, p, PermuteColumns::no);
  b.validate();
  for (index_t r = 0; r < 20; ++r)
    EXPECT_EQ(b.dense_row(r), a.dense_row(19 - r));
}

TEST(PermuteCsr, SymmetricPermutationPreservesProduct) {
  // (P A Pᵀ)(P x) == P (A x) — the identity that lets solvers iterate in
  // the permuted basis.
  const auto a = testing::random_csr<double>(40, 40, 1, 6, 13);
  std::vector<index_t> lens(40);
  for (index_t i = 0; i < 40; ++i)
    lens[static_cast<std::size_t>(i)] = a.row_len(i);
  const auto p = Permutation::sort_descending(lens, 40);
  const auto b = permute_csr(a, p, PermuteColumns::yes);
  b.validate();

  const auto x = testing::random_vector<double>(40, 17);
  std::vector<double> x_perm(40);
  p.to_permuted<double>(x, x_perm);

  const auto y_ref = testing::reference_spmv(a, x);
  const auto y_perm = testing::reference_spmv(b, x_perm);
  std::vector<double> y_back(40);
  p.from_permuted<double>(y_perm, y_back);
  testing::expect_vectors_near<double>(y_ref, y_back, 1e-12);
}

TEST(PermuteCsr, SymmetricRequiresSquare) {
  const auto a = testing::random_csr<double>(4, 5, 1, 2, 1);
  const auto p = Permutation::identity(4);
  EXPECT_THROW(permute_csr(a, p, PermuteColumns::yes), Error);
}

TEST(PermuteCsr, IdentityIsNoop) {
  const auto a = testing::random_csr<double>(25, 25, 0, 7, 19);
  const auto b = permute_csr(a, Permutation::identity(25), PermuteColumns::yes);
  EXPECT_TRUE(structurally_equal(a, b));
}

TEST(Transpose, InvolutionRestoresMatrix) {
  const auto a = testing::random_csr<double>(30, 45, 0, 9, 23);
  const auto t = transpose(a);
  t.validate();
  EXPECT_EQ(t.n_rows, 45);
  EXPECT_EQ(t.n_cols, 30);
  EXPECT_TRUE(structurally_equal(a, transpose(t)));
}

TEST(Transpose, MatchesDenseTranspose) {
  const auto a = testing::random_csr<double>(8, 6, 0, 4, 29);
  const auto t = transpose(a);
  for (index_t i = 0; i < a.n_rows; ++i) {
    const auto row = a.dense_row(i);
    for (index_t j = 0; j < a.n_cols; ++j)
      EXPECT_DOUBLE_EQ(row[static_cast<std::size_t>(j)],
                       t.dense_row(j)[static_cast<std::size_t>(i)]);
  }
}

TEST(IsSymmetric, DetectsSymmetry) {
  Coo<double> coo(3, 3);
  coo.add_symmetric(0, 1, 2.0);
  coo.add(2, 2, 1.0);
  const auto sym = Csr<double>::from_coo(std::move(coo));
  EXPECT_TRUE(is_symmetric(sym));

  Coo<double> coo2(3, 3);
  coo2.add(0, 1, 2.0);
  const auto asym = Csr<double>::from_coo(std::move(coo2));
  EXPECT_FALSE(is_symmetric(asym));
}

TEST(IsSymmetric, NonSquareIsNever) {
  const auto a = testing::random_csr<double>(3, 4, 1, 2, 31);
  EXPECT_FALSE(is_symmetric(a));
}

}  // namespace
}  // namespace spmvm
