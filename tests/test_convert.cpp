#include "sparse/convert.hpp"

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "formats/registry.hpp"
#include "matgen/generators.hpp"
#include "matgen/suite.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace spmvm {
namespace {

TEST(PermuteCsr, RowOnlyReordersRows) {
  const auto a = testing::random_csr<double>(20, 30, 1, 5, 11);
  const auto p = Permutation::from_new_to_old([] {
    std::vector<index_t> v(20);
    for (index_t i = 0; i < 20; ++i) v[static_cast<std::size_t>(i)] = 19 - i;
    return v;
  }());
  const auto b = permute_csr(a, p, PermuteColumns::no);
  b.validate();
  for (index_t r = 0; r < 20; ++r)
    EXPECT_EQ(b.dense_row(r), a.dense_row(19 - r));
}

TEST(PermuteCsr, SymmetricPermutationPreservesProduct) {
  // (P A Pᵀ)(P x) == P (A x) — the identity that lets solvers iterate in
  // the permuted basis.
  const auto a = testing::random_csr<double>(40, 40, 1, 6, 13);
  std::vector<index_t> lens(40);
  for (index_t i = 0; i < 40; ++i)
    lens[static_cast<std::size_t>(i)] = a.row_len(i);
  const auto p = Permutation::sort_descending(lens, 40);
  const auto b = permute_csr(a, p, PermuteColumns::yes);
  b.validate();

  const auto x = testing::random_vector<double>(40, 17);
  std::vector<double> x_perm(40);
  p.to_permuted<double>(x, x_perm);

  const auto y_ref = testing::reference_spmv(a, x);
  const auto y_perm = testing::reference_spmv(b, x_perm);
  std::vector<double> y_back(40);
  p.from_permuted<double>(y_perm, y_back);
  testing::expect_vectors_near<double>(y_ref, y_back, 1e-12);
}

TEST(PermuteCsr, SymmetricRequiresSquare) {
  const auto a = testing::random_csr<double>(4, 5, 1, 2, 1);
  const auto p = Permutation::identity(4);
  EXPECT_THROW(permute_csr(a, p, PermuteColumns::yes), Error);
}

TEST(PermuteCsr, IdentityIsNoop) {
  const auto a = testing::random_csr<double>(25, 25, 0, 7, 19);
  const auto b = permute_csr(a, Permutation::identity(25), PermuteColumns::yes);
  EXPECT_TRUE(structurally_equal(a, b));
}

TEST(Transpose, InvolutionRestoresMatrix) {
  const auto a = testing::random_csr<double>(30, 45, 0, 9, 23);
  const auto t = transpose(a);
  t.validate();
  EXPECT_EQ(t.n_rows, 45);
  EXPECT_EQ(t.n_cols, 30);
  EXPECT_TRUE(structurally_equal(a, transpose(t)));
}

TEST(Transpose, MatchesDenseTranspose) {
  const auto a = testing::random_csr<double>(8, 6, 0, 4, 29);
  const auto t = transpose(a);
  for (index_t i = 0; i < a.n_rows; ++i) {
    const auto row = a.dense_row(i);
    for (index_t j = 0; j < a.n_cols; ++j)
      EXPECT_DOUBLE_EQ(row[static_cast<std::size_t>(j)],
                       t.dense_row(j)[static_cast<std::size_t>(i)]);
  }
}

TEST(IsSymmetric, DetectsSymmetry) {
  Coo<double> coo(3, 3);
  coo.add_symmetric(0, 1, 2.0);
  coo.add(2, 2, 1.0);
  const auto sym = Csr<double>::from_coo(std::move(coo));
  EXPECT_TRUE(is_symmetric(sym));

  Coo<double> coo2(3, 3);
  coo2.add(0, 1, 2.0);
  const auto asym = Csr<double>::from_coo(std::move(coo2));
  EXPECT_FALSE(is_symmetric(asym));
}

TEST(IsSymmetric, NonSquareIsNever) {
  const auto a = testing::random_csr<double>(3, 4, 1, 2, 31);
  EXPECT_FALSE(is_symmetric(a));
}

// ---- registry-wide properties: CSR -> plan -> spMVM/to_csr ---------------

/// Apply the plan in the *original* basis: carry x/y across the row
/// permutation when the plan has one.
std::vector<double> plan_apply(const formats::FormatPlan<double>& plan,
                               const Csr<double>& a,
                               const std::vector<double>& x) {
  const Permutation* perm = plan.permutation();
  std::vector<double> xb = x;
  std::vector<double> yb(static_cast<std::size_t>(a.n_rows));
  if (perm != nullptr && plan.columns_permuted())
    perm->to_permuted<double>(x, xb);
  plan.spmv(std::span<const double>(xb), std::span<double>(yb));
  if (perm == nullptr) return yb;
  std::vector<double> y(yb.size());
  perm->from_permuted<double>(yb, y);
  return y;
}

std::vector<Csr<double>> property_matrices() {
  std::vector<Csr<double>> ms;
  ms.push_back(testing::random_csr<double>(64, 64, 0, 9, 41));
  ms.push_back(testing::random_csr<double>(50, 70, 1, 6, 43));  // rectangular
  ms.push_back(testing::random_csr<double>(33, 33, 0, 17, 47));  // ragged
  GenConfig cfg;
  cfg.scale = 512;
  ms.push_back(make_samg<double>(cfg));
  return ms;
}

TEST(FormatRegistry, EveryPlanMatchesReferenceSpmv) {
  const auto& reg = formats::registry<double>();
  for (const auto& a : property_matrices()) {
    const auto x = testing::random_vector<double>(a.n_cols, 53);
    const auto y_ref = testing::reference_spmv(a, x);
    for (const formats::FormatInfo& info : reg.list()) {
      if (std::string_view(info.name) == "auto") continue;
      SCOPED_TRACE(std::string(info.name) + " " + std::to_string(a.n_rows) +
                   "x" + std::to_string(a.n_cols));
      const auto plan = reg.build(info.name, a);
      EXPECT_EQ(plan->n_rows(), a.n_rows);
      EXPECT_EQ(plan->n_cols(), a.n_cols);
      EXPECT_EQ(plan->nnz(), a.nnz());
      testing::expect_vectors_near<double>(y_ref, plan_apply(*plan, a, x),
                                           1e-11);
    }
  }
}

TEST(FormatRegistry, EveryPlanRecoversCsr) {
  const auto& reg = formats::registry<double>();
  for (const auto& a : property_matrices()) {
    const auto x = testing::random_vector<double>(a.n_cols, 59);
    const auto y_ref = testing::reference_spmv(a, x);
    for (const formats::FormatInfo& info : reg.list()) {
      if (std::string_view(info.name) == "auto") continue;
      SCOPED_TRACE(info.name);
      const Csr<double> back = reg.build(info.name, a)->to_csr();
      back.validate();
      EXPECT_EQ(back.n_rows, a.n_rows);
      EXPECT_EQ(back.n_cols, a.n_cols);
      // Recovery drops the fill and undoes permutations, so the product
      // must match the original exactly (fill contributes 0·x anyway).
      testing::expect_vectors_near<double>(
          y_ref, testing::reference_spmv(back, x), 1e-12);
    }
  }
}

TEST(FormatRegistry, NativeAxpbyMatchesApplyPlusBlas1) {
  // y = beta*y0 + alpha*A*x: formats with a fused kernel must agree with
  // the two-pass fallback, and the spmv_axpby return value must match
  // the advertised capability.
  const auto& reg = formats::registry<double>();
  const double alpha = 0.75, beta = -1.25;
  for (const auto& a : property_matrices()) {
    if (a.n_rows != a.n_cols) continue;  // axpby consumers are square-only
    const auto n = static_cast<std::size_t>(a.n_rows);
    const auto x = testing::random_vector<double>(a.n_rows, 61);
    const auto y0 = testing::random_vector<double>(a.n_rows, 67);
    for (const formats::FormatInfo& info : reg.list()) {
      if (std::string_view(info.name) == "auto") continue;
      SCOPED_TRACE(info.name);
      const auto plan = reg.build(info.name, a);

      // Both passes work in the plan's own basis.
      std::vector<double> ax(n);
      plan->spmv(std::span<const double>(x), std::span<double>(ax));
      std::vector<double> expected(n);
      for (std::size_t i = 0; i < n; ++i)
        expected[i] = beta * y0[i] + alpha * ax[i];

      std::vector<double> y = y0;
      const bool fused = plan->spmv_axpby(std::span<const double>(x),
                                          std::span<double>(y), alpha, beta);
      EXPECT_EQ(fused, info.native_axpby);
      if (fused)
        testing::expect_vectors_near<double>(expected, y, 1e-11);
      else
        testing::expect_vectors_near<double>(y0, y, 0.0);  // left untouched
    }
  }
}

TEST(FormatRegistry, AutoSelectionIsDeterministicPerMatrixClass) {
  // With the probe disabled the auto plan ranks candidates purely by the
  // Eq. 1 code balance at the simulator-measured alpha — bit-identical
  // across runs, so the choice per Table I matrix class is testable.
  formats::PlanOptions opt;
  opt.probe = false;
  struct Item {
    const char* name;
    double scale;
  };
  for (const auto& [name, scale] :
       {Item{"DLR1", 64}, Item{"HMEp", 128}, Item{"sAMG", 128}}) {
    SCOPED_TRACE(name);
    const auto a = make_named(name, scale).matrix;
    const auto plan = formats::registry<double>().build("auto", a, opt);
    const formats::AutoChoice* c = plan->auto_choice();
    ASSERT_NE(c, nullptr);
    EXPECT_FALSE(c->chosen.empty());
    ASSERT_LT(c->chosen_index, c->candidates.size());
    EXPECT_EQ(c->chosen, c->candidates[c->chosen_index].name);
    EXPECT_EQ(c->chosen_index, c->model_index);  // no probe override
    EXPECT_GT(c->alpha_measured, 0.0);
    // The chosen format must actually be registered and buildable.
    EXPECT_NE(formats::registry<double>().find(c->chosen), nullptr);

    // Same inputs, same choice.
    const auto again = formats::registry<double>().build("auto", a, opt);
    EXPECT_EQ(again->auto_choice()->chosen, c->chosen);

    // The winner delegates: the auto plan computes the same product.
    const auto x = testing::random_vector<double>(a.n_cols, 71);
    testing::expect_vectors_near<double>(
        testing::reference_spmv(a, x), plan_apply(*plan, a, x), 1e-11);
  }
}

}  // namespace
}  // namespace spmvm
