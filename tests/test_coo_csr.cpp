#include <gtest/gtest.h>

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace spmvm {
namespace {

TEST(Coo, RejectsOutOfRangeIndices) {
  Coo<double> coo(3, 3);
  EXPECT_THROW(coo.add(3, 0, 1.0), Error);
  EXPECT_THROW(coo.add(0, -1, 1.0), Error);
  EXPECT_THROW(coo.add(-1, 0, 1.0), Error);
}

TEST(Coo, SortAndCombineSumsDuplicates) {
  Coo<double> coo(2, 2);
  coo.add(1, 1, 2.0);
  coo.add(0, 0, 1.0);
  coo.add(1, 1, 3.0);
  coo.sort_and_combine();
  ASSERT_EQ(coo.size(), 2);
  EXPECT_EQ(coo.entries()[0].row, 0);
  EXPECT_EQ(coo.entries()[1].row, 1);
  EXPECT_DOUBLE_EQ(coo.entries()[1].val, 5.0);
}

TEST(Coo, AddSymmetricMirrorsOffDiagonal) {
  Coo<double> coo(3, 3);
  coo.add_symmetric(0, 1, 4.0);
  coo.add_symmetric(2, 2, 7.0);
  EXPECT_EQ(coo.size(), 3);  // (0,1), (1,0), (2,2)
}

TEST(Csr, FromCooBuildsCorrectStructure) {
  Coo<double> coo(3, 4);
  coo.add(0, 1, 1.0);
  coo.add(0, 3, 2.0);
  coo.add(2, 0, 3.0);
  const auto a = Csr<double>::from_coo(std::move(coo));
  a.validate();
  EXPECT_EQ(a.n_rows, 3);
  EXPECT_EQ(a.n_cols, 4);
  EXPECT_EQ(a.nnz(), 3);
  EXPECT_EQ(a.row_len(0), 2);
  EXPECT_EQ(a.row_len(1), 0);
  EXPECT_EQ(a.row_len(2), 1);
  EXPECT_EQ(a.max_row_len(), 2);
  EXPECT_EQ(a.min_row_len(), 0);
  EXPECT_DOUBLE_EQ(a.avg_row_len(), 1.0);
}

TEST(Csr, DenseRowRoundTrip) {
  Coo<double> coo(2, 3);
  coo.add(0, 0, 1.5);
  coo.add(0, 2, -2.5);
  const auto a = Csr<double>::from_coo(std::move(coo));
  const auto row = a.dense_row(0);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_DOUBLE_EQ(row[0], 1.5);
  EXPECT_DOUBLE_EQ(row[1], 0.0);
  EXPECT_DOUBLE_EQ(row[2], -2.5);
  EXPECT_THROW(a.dense_row(2), Error);
}

TEST(Csr, EmptyMatrix) {
  Coo<double> coo(0, 0);
  const auto a = Csr<double>::from_coo(std::move(coo));
  a.validate();
  EXPECT_EQ(a.nnz(), 0);
  EXPECT_EQ(a.max_row_len(), 0);
  EXPECT_DOUBLE_EQ(a.avg_row_len(), 0.0);
}

TEST(Csr, ValidateCatchesUnsortedColumns) {
  Csr<double> a;
  a.n_rows = 1;
  a.n_cols = 3;
  a.row_ptr = {0, 2};
  a.col_idx = {2, 1};  // descending: invalid
  a.val = {1.0, 2.0};
  EXPECT_THROW(a.validate(), Error);
}

TEST(Csr, ValidateCatchesOutOfRangeColumn) {
  Csr<double> a;
  a.n_rows = 1;
  a.n_cols = 2;
  a.row_ptr = {0, 1};
  a.col_idx = {5};
  a.val = {1.0};
  EXPECT_THROW(a.validate(), Error);
}

TEST(Csr, StructurallyEqual) {
  const auto a = testing::random_csr<double>(50, 50, 1, 8, 1);
  auto b = a;
  EXPECT_TRUE(structurally_equal(a, b));
  b.val[0] += 1.0;
  EXPECT_FALSE(structurally_equal(a, b));
}

TEST(Csr, RandomMatrixValidates) {
  const auto a = testing::random_csr<double>(200, 150, 0, 20, 7);
  a.validate();
  EXPECT_EQ(a.n_rows, 200);
  EXPECT_EQ(a.n_cols, 150);
  EXPECT_LE(a.max_row_len(), 20);
}

TEST(Csr, BytesAccountsAllArrays) {
  const auto a = testing::random_csr<double>(10, 10, 2, 2, 3);
  const std::size_t expected = static_cast<std::size_t>(a.nnz()) * (8 + 4) +
                               11 * sizeof(offset_t);
  EXPECT_EQ(a.bytes(), expected);
}

}  // namespace
}  // namespace spmvm
