#include "gpusim/device_runtime.hpp"

#include <gtest/gtest.h>

#include "matgen/generators.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace spmvm::gpusim {
namespace {

using spmvm::testing::random_csr;
using spmvm::testing::random_vector;

std::shared_ptr<DeviceRuntime> fermi() {
  return std::make_shared<DeviceRuntime>(DeviceSpec::tesla_c2070());
}

TEST(DeviceRuntime, AllocationTracksCapacity) {
  DeviceRuntime dev(DeviceSpec::tesla_c2050());
  const std::size_t half = dev.spec().dram_bytes / 2;
  const int a = dev.alloc(half);
  EXPECT_EQ(dev.allocated_bytes(), half);
  const int b = dev.alloc(half);
  EXPECT_EQ(dev.free_bytes(), 0u);
  EXPECT_THROW(dev.alloc(1), Error);
  dev.free(a);
  EXPECT_NO_THROW(dev.alloc(half / 2));
  dev.free(b);
}

TEST(DeviceRuntime, FreeIsValidatedAndIdempotentIdsNotReused) {
  DeviceRuntime dev(DeviceSpec::tesla_c2070());
  EXPECT_THROW(dev.free(0), Error);
  const int a = dev.alloc(100);
  dev.free(a);
  EXPECT_EQ(dev.allocated_bytes(), 0u);
}

TEST(DeviceRuntime, ClockAdvancesWithTransfersAndLaunches) {
  auto dev = fermi();
  EXPECT_DOUBLE_EQ(dev->elapsed_seconds(), 0.0);
  dev->transfer(1 << 20);
  const double after_transfer = dev->elapsed_seconds();
  EXPECT_GT(after_transfer, 0.0);
  KernelResult k;
  k.seconds = 1e-3;
  dev->launch(k);
  EXPECT_NEAR(dev->elapsed_seconds(), after_transfer + 1e-3, 1e-12);
  EXPECT_NEAR(dev->kernel_seconds(), 1e-3, 1e-12);
}

TEST(DeviceSpmv, NumericsMatchReferenceForEveryFormat) {
  const auto a = random_csr<double>(150, 150, 0, 12, 1);
  const auto x = random_vector<double>(150, 2);
  const auto ref = spmvm::testing::reference_spmv(a, x);
  for (const auto kind :
       {FormatKind::csr_scalar, FormatKind::csr_vector, FormatKind::ellpack,
        FormatKind::ellpack_r, FormatKind::sliced_ell, FormatKind::pjds}) {
    SCOPED_TRACE(to_string(kind));
    auto dev = fermi();
    DeviceSpmv<double> op(dev, a, kind);
    std::vector<double> y(150);
    op.apply(x, y);
    spmvm::testing::expect_vectors_near<double>(ref, y, 1e-12);
  }
}

TEST(DeviceSpmv, MatrixUploadChargedOnce) {
  const auto a = random_csr<double>(300, 300, 2, 10, 3);
  auto dev = fermi();
  DeviceSpmv<double> op(dev, a, FormatKind::pjds);
  const double after_upload = dev->elapsed_seconds();
  EXPECT_GT(after_upload, 0.0);

  const auto x = random_vector<double>(300, 4);
  std::vector<double> y(300);
  op.apply(x, y);
  op.apply(x, y);
  // Two applies: 2 kernels + 4 vector transfers, no matrix re-upload.
  const double per_apply =
      (dev->elapsed_seconds() - after_upload) / 2.0;
  EXPECT_NEAR(per_apply, op.last_kernel_seconds() + op.last_transfer_seconds(),
              1e-12);
}

TEST(DeviceSpmv, ResidentVectorsSkipPcie) {
  const auto a = random_csr<double>(400, 400, 4, 12, 5);
  auto dev = fermi();
  DeviceSpmv<double> op(dev, a, FormatKind::ellpack_r);
  const auto x = random_vector<double>(400, 6);
  std::vector<double> y(400);
  op.apply(x, y, /*vectors_resident=*/true);
  EXPECT_DOUBLE_EQ(op.last_transfer_seconds(), 0.0);
  op.apply(x, y, /*vectors_resident=*/false);
  EXPECT_GT(op.last_transfer_seconds(), 0.0);
}

TEST(DeviceSpmv, Dlr2FitsScaledC2050OnlyAsPjds) {
  // The paper's capacity example at 1/32 scale with a 1/32-size card.
  const auto a = make_dlr2<double>([] {
    GenConfig c;
    c.scale = 32;
    return c;
  }());
  DeviceSpec small = DeviceSpec::tesla_c2050();
  small.dram_bytes /= 32;
  auto dev = std::make_shared<DeviceRuntime>(small);
  EXPECT_THROW(DeviceSpmv<double>(dev, a, FormatKind::ellpack_r), Error);
  EXPECT_EQ(dev->allocated_bytes(), 0u);  // failed alloc leaves no residue
  EXPECT_NO_THROW(DeviceSpmv<double>(dev, a, FormatKind::pjds));
}

TEST(DeviceSpmv, DestructorReleasesMemory) {
  const auto a = random_csr<double>(200, 200, 2, 8, 7);
  auto dev = fermi();
  {
    DeviceSpmv<double> op(dev, a, FormatKind::ellpack_r);
    EXPECT_GT(dev->allocated_bytes(), 0u);
  }
  EXPECT_EQ(dev->allocated_bytes(), 0u);
}

TEST(DeviceSpmv, RejectsShortVectors) {
  const auto a = random_csr<double>(50, 50, 1, 4, 8);
  auto dev = fermi();
  DeviceSpmv<double> op(dev, a, FormatKind::pjds);
  std::vector<double> x(10), y(50);
  EXPECT_THROW(op.apply(x, y), Error);
}

}  // namespace
}  // namespace spmvm::gpusim
