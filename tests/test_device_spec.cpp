#include "gpusim/device_spec.hpp"

#include <gtest/gtest.h>

namespace spmvm::gpusim {
namespace {

TEST(DeviceSpec, C2070PeakMatchesPaper) {
  // Paper: 896 flops per cycle on the whole GF100 chip; DP is half.
  const auto d = DeviceSpec::tesla_c2070();
  EXPECT_DOUBLE_EQ(d.peak_flops(Precision::sp) / (d.clock_ghz * 1e9), 896.0);
  EXPECT_DOUBLE_EQ(d.peak_flops(Precision::dp),
                   d.peak_flops(Precision::sp) / 2.0);
}

TEST(DeviceSpec, C2070BandwidthsMatchPaper) {
  // Paper: ~91 GB/s sustained with ECC, ~120 GB/s without.
  const auto d = DeviceSpec::tesla_c2070();
  EXPECT_DOUBLE_EQ(d.bandwidth_bytes(true), 91e9);
  EXPECT_DOUBLE_EQ(d.bandwidth_bytes(false), 120e9);
}

TEST(DeviceSpec, C2050IsThreeGigabyteC2070) {
  const auto a = DeviceSpec::tesla_c2050();
  const auto b = DeviceSpec::tesla_c2070();
  EXPECT_EQ(a.num_mps, b.num_mps);
  EXPECT_EQ(a.dram_bytes * 2, b.dram_bytes);
}

TEST(DeviceSpec, C1060HasNoL2AndNoEcc) {
  const auto d = DeviceSpec::tesla_c1060();
  EXPECT_EQ(d.l2_bytes, 0u);
  EXPECT_FALSE(d.has_ecc);
  // ECC request is ignored on a card without ECC.
  EXPECT_DOUBLE_EQ(d.bandwidth_bytes(true), d.bandwidth_bytes(false));
}

TEST(DeviceSpec, ScalarBytes) {
  EXPECT_EQ(scalar_bytes(Precision::sp), 4u);
  EXPECT_EQ(scalar_bytes(Precision::dp), 8u);
}

TEST(CpuNodeSpec, WestmereDefaults) {
  const auto n = CpuNodeSpec::westmere_ep();
  EXPECT_EQ(n.cores, 12);
  EXPECT_GT(n.bw_gbs, 20.0);
}

}  // namespace
}  // namespace spmvm::gpusim
