#include "dist/dist_matrix.hpp"

#include <gtest/gtest.h>

#include "matgen/generators.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace spmvm::dist {
namespace {

TEST(DistMatrix, SplitCoversAllEntries) {
  const auto a = testing::random_csr<double>(120, 120, 0, 10, 1);
  const auto part = partition_uniform(120, 4);
  offset_t total = 0;
  for (int r = 0; r < 4; ++r) {
    const auto d = distribute(a, part, r);
    d.validate();
    total += d.local.nnz() + d.nonlocal.nnz();
  }
  EXPECT_EQ(total, a.nnz());
}

TEST(DistMatrix, LocalPartIsDiagonalBlock) {
  const auto a = testing::random_csr<double>(60, 60, 1, 8, 2);
  const auto part = partition_uniform(60, 3);
  for (int r = 0; r < 3; ++r) {
    const auto d = distribute(a, part, r);
    const index_t row0 = part.begin(r);
    // Every local entry must correspond to an owned column of `a`.
    for (index_t i = 0; i < d.n_local; ++i)
      for (offset_t k = d.local.row_ptr[static_cast<std::size_t>(i)];
           k < d.local.row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
        const index_t c =
            d.local.col_idx[static_cast<std::size_t>(k)] + row0;
        EXPECT_EQ(part.owner(c), r);
      }
  }
}

TEST(DistMatrix, HaloGroupsAreSortedAndOwnedRemotely) {
  const auto a = testing::random_csr<double>(200, 200, 2, 12, 3);
  const auto part = partition_uniform(200, 5);
  const auto d = distribute(a, part, 2);
  d.validate();
  for (index_t h = 1; h < d.n_halo; ++h)
    EXPECT_LT(d.halo_global[static_cast<std::size_t>(h) - 1],
              d.halo_global[static_cast<std::size_t>(h)]);
}

TEST(DistMatrix, SendListsMirrorRecvLists) {
  // What rank r sends to p is exactly what p receives from r.
  const auto a = testing::random_csr<double>(150, 150, 1, 9, 4);
  const auto part = partition_uniform(150, 3);
  std::vector<DistMatrix<double>> views;
  for (int r = 0; r < 3; ++r) views.push_back(distribute(a, part, r));
  for (int r = 0; r < 3; ++r)
    for (int p = 0; p < 3; ++p) {
      if (r == p) continue;
      const auto& send = views[static_cast<std::size_t>(r)]
                             .send_idx[static_cast<std::size_t>(p)];
      const auto& dp = views[static_cast<std::size_t>(p)];
      const auto off = dp.recv_offset[static_cast<std::size_t>(r)];
      const auto cnt = dp.recv_count[static_cast<std::size_t>(r)];
      ASSERT_EQ(static_cast<index_t>(send.size()), cnt);
      for (index_t k = 0; k < cnt; ++k)
        EXPECT_EQ(send[static_cast<std::size_t>(k)] + part.begin(r),
                  dp.halo_global[static_cast<std::size_t>(off + k)]);
    }
}

TEST(DistMatrix, BandedMatrixTalksOnlyToNeighbors) {
  const auto a = make_banded<double>(400, 3);
  const auto part = partition_uniform(400, 8);
  for (int r = 0; r < 8; ++r) {
    const auto d = distribute(a, part, r);
    const int expected = (r == 0 || r == 7) ? 1 : 2;
    EXPECT_EQ(d.n_peers(), expected) << "rank " << r;
    // Narrow band: halo is at most `band` entries per side.
    EXPECT_LE(d.n_halo, 6);
  }
}

TEST(DistMatrix, SinglePartHasNoCommunication) {
  const auto a = testing::random_csr<double>(50, 50, 1, 6, 5);
  const auto d = distribute(a, partition_uniform(50, 1), 0);
  d.validate();
  EXPECT_EQ(d.n_halo, 0);
  EXPECT_EQ(d.n_peers(), 0);
  EXPECT_EQ(d.local.nnz(), a.nnz());
  EXPECT_EQ(d.nonlocal.nnz(), 0);
}

TEST(DistMatrix, RejectsNonSquare) {
  const auto a = testing::random_csr<double>(20, 30, 1, 3, 6);
  EXPECT_THROW(distribute(a, partition_uniform(20, 2), 0), Error);
}

TEST(DistMatrix, RejectsBadRank) {
  const auto a = testing::random_csr<double>(20, 20, 1, 3, 7);
  EXPECT_THROW(distribute(a, partition_uniform(20, 2), 2), Error);
}

}  // namespace
}  // namespace spmvm::dist
