#include "dist/dist_solver.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <mutex>

#include "matgen/generators.hpp"
#include "solver/cg.hpp"
#include "test_helpers.hpp"

namespace spmvm::dist {
namespace {

using spmvm::testing::random_vector;

struct DistRun {
  std::vector<double> x;
  DistCgResult result;
};

DistRun run_dist_cg(const Csr<double>& a, int n_ranks, CommScheme scheme,
                    const std::vector<double>& b) {
  const auto part = partition_balanced_nnz(a, n_ranks);
  DistRun out;
  out.x.assign(static_cast<std::size_t>(a.n_rows), 0.0);
  std::mutex m;
  msg::Runtime::run(n_ranks, [&](msg::Comm& comm) {
    const auto d = distribute(a, part, comm.rank());
    const index_t row0 = part.begin(comm.rank());
    std::vector<double> b_local(b.begin() + row0,
                                b.begin() + part.end(comm.rank()));
    std::vector<double> x_local(static_cast<std::size_t>(d.n_local), 0.0);
    const auto r = dist_cg(comm, d, std::span<const double>(b_local),
                           std::span<double>(x_local), 1e-11, 2000, scheme);
    std::lock_guard<std::mutex> lock(m);
    std::copy(x_local.begin(), x_local.end(), out.x.begin() + row0);
    out.result = r;  // identical on every rank
  });
  return out;
}

TEST(DistCg, MatchesSerialCgOnPoisson) {
  const auto a = make_poisson2d<double>(18, 18);
  const auto b = random_vector<double>(a.n_rows, 1);

  std::vector<double> x_serial(b.size(), 0.0);
  const auto shared = std::make_shared<const Csr<double>>(a);
  const auto rs = solver::cg(solver::make_operator<double>(shared),
                             std::span<const double>(b),
                             std::span<double>(x_serial), 1e-11, 2000);
  ASSERT_TRUE(rs.converged);

  const auto dist = run_dist_cg(a, 4, CommScheme::task_mode, b);
  EXPECT_TRUE(dist.result.converged);
  EXPECT_EQ(dist.result.iterations, rs.iterations);
  spmvm::testing::expect_vectors_near<double>(x_serial, dist.x, 1e-6);
}

TEST(DistCg, AllSchemesAgree) {
  const auto a = make_banded<double>(150, 5);
  const auto b = random_vector<double>(150, 2);
  const auto v = run_dist_cg(a, 3, CommScheme::vector_mode, b);
  const auto n = run_dist_cg(a, 3, CommScheme::naive_overlap, b);
  const auto t = run_dist_cg(a, 3, CommScheme::task_mode, b);
  ASSERT_TRUE(v.result.converged);
  EXPECT_EQ(v.x, n.x);  // identical arithmetic across schemes
  EXPECT_EQ(v.x, t.x);
}

TEST(DistCg, RankCountDoesNotChangeSolution) {
  const auto a = make_poisson2d<double>(12, 12);
  const auto b = random_vector<double>(a.n_rows, 3);
  const auto one = run_dist_cg(a, 1, CommScheme::task_mode, b);
  const auto many = run_dist_cg(a, 6, CommScheme::task_mode, b);
  ASSERT_TRUE(one.result.converged);
  ASSERT_TRUE(many.result.converged);
  spmvm::testing::expect_vectors_near<double>(one.x, many.x, 1e-6);
}

TEST(DistCg, SolutionSolvesSystem) {
  const auto a = make_banded<double>(200, 3);
  const auto b = random_vector<double>(200, 4);
  const auto run = run_dist_cg(a, 5, CommScheme::naive_overlap, b);
  ASSERT_TRUE(run.result.converged);
  const auto ax = spmvm::testing::reference_spmv(a, run.x);
  spmvm::testing::expect_vectors_near<double>(b, ax, 1e-7);
}

}  // namespace
}  // namespace spmvm::dist
