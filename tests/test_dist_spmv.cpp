// Integration tests: distributed spMVM over the message runtime must be
// bit-identical to the serial product for all three communication
// schemes, matrices and rank counts.
#include "dist/spmv_modes.hpp"

#include <gtest/gtest.h>

#include <mutex>
#include <tuple>

#include "matgen/generators.hpp"
#include "test_helpers.hpp"

namespace spmvm::dist {
namespace {

using spmvm::testing::random_csr;
using spmvm::testing::random_vector;

std::vector<double> run_distributed(const Csr<double>& a, int n_ranks,
                                    CommScheme scheme,
                                    const std::vector<double>& x) {
  const auto part = partition_balanced_nnz(a, n_ranks);
  std::vector<double> y(static_cast<std::size_t>(a.n_rows));
  std::mutex y_mutex;
  msg::Runtime::run(n_ranks, [&](msg::Comm& comm) {
    const auto d = distribute(a, part, comm.rank());
    handshake_pattern(comm, d);
    const index_t row0 = part.begin(comm.rank());
    std::vector<double> x_local(x.begin() + row0,
                                x.begin() + part.end(comm.rank()));
    std::vector<double> y_local(static_cast<std::size_t>(d.n_local));
    std::vector<double> halo, sendbuf;
    dist_spmv(comm, d, std::span<const double>(x_local),
              std::span<double>(y_local), scheme, halo, sendbuf);
    std::lock_guard<std::mutex> lock(y_mutex);
    std::copy(y_local.begin(), y_local.end(),
              y.begin() + row0);
  });
  return y;
}

class DistSpmvSweep
    : public ::testing::TestWithParam<std::tuple<int, CommScheme>> {};

TEST_P(DistSpmvSweep, MatchesSerialReference) {
  const auto& [n_ranks, scheme] = GetParam();
  const auto a = random_csr<double>(173, 173, 0, 12, 42);
  const auto x = random_vector<double>(173, 43);
  const auto expected = spmvm::testing::reference_spmv(a, x);
  const auto got = run_distributed(a, n_ranks, scheme, x);
  // The local/non-local split reorders partial sums; compare within a
  // tight floating-point tolerance.
  spmvm::testing::expect_vectors_near<double>(expected, got, 1e-13);
}

INSTANTIATE_TEST_SUITE_P(
    RanksAndSchemes, DistSpmvSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 7),
                       ::testing::Values(CommScheme::vector_mode,
                                         CommScheme::naive_overlap,
                                         CommScheme::task_mode)));

TEST(DistSpmv, BandedMatrixAllSchemes) {
  const auto a = make_banded<double>(256, 4);
  const auto x = random_vector<double>(256, 7);
  const auto expected = spmvm::testing::reference_spmv(a, x);
  for (const auto scheme :
       {CommScheme::vector_mode, CommScheme::naive_overlap,
        CommScheme::task_mode}) {
    SCOPED_TRACE(to_string(scheme));
    spmvm::testing::expect_vectors_near<double>(
        expected, run_distributed(a, 4, scheme, x), 1e-13);
  }
}

TEST(DistSpmv, HmepLikeMatrixAcrossRanks) {
  GenConfig cfg;
  cfg.scale = 2048;
  const auto a = make_hmep<double>(cfg);
  const auto x = random_vector<double>(a.n_rows, 9);
  const auto expected = spmvm::testing::reference_spmv(a, x);
  spmvm::testing::expect_vectors_near<double>(
      expected, run_distributed(a, 5, CommScheme::task_mode, x), 1e-13);
}

TEST(DistSpmv, PowerIterationsConvergeIdenticallyAcrossSchemes) {
  const auto a = make_poisson2d<double>(20, 20);
  const auto part = partition_uniform(a.n_rows, 4);
  std::vector<std::vector<double>> results;
  for (const auto scheme :
       {CommScheme::vector_mode, CommScheme::naive_overlap,
        CommScheme::task_mode}) {
    std::vector<double> full(static_cast<std::size_t>(a.n_rows));
    std::mutex m;
    msg::Runtime::run(4, [&](msg::Comm& comm) {
      const auto d = distribute(a, part, comm.rank());
      std::vector<double> x0(static_cast<std::size_t>(d.n_local), 1.0);
      const auto x = run_power_iterations(
          comm, d, std::span<const double>(x0), 10, scheme);
      std::lock_guard<std::mutex> lock(m);
      std::copy(x.begin(), x.end(), full.begin() + part.begin(comm.rank()));
    });
    results.push_back(std::move(full));
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(DistSpmv, EmptyRowsHandled) {
  Coo<double> coo(40, 40);
  for (index_t i = 0; i < 40; i += 2) coo.add(i, (i + 20) % 40, 1.0);
  const auto a = Csr<double>::from_coo(std::move(coo));
  const auto x = random_vector<double>(40, 11);
  const auto expected = spmvm::testing::reference_spmv(a, x);
  spmvm::testing::expect_vectors_near<double>(
      expected, run_distributed(a, 4, CommScheme::task_mode, x), 1e-13);
}

}  // namespace
}  // namespace spmvm::dist
