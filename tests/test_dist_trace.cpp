// Distributed observability (DESIGN.md §11): rank-lane stamping of
// spans, split/merge of multi-rank traces, send→recv flow-id balance
// across every scheme, Chrome export of rank lanes and flow arrows, and
// the per-rank comm-phase attribution (phase sums vs measured wall
// time). Runs under the tsan-concurrency preset.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "dist/comm_plan.hpp"
#include "matgen/generators.hpp"
#include "obs/attribution.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "test_helpers.hpp"

namespace spmvm::dist {
namespace {

using spmvm::testing::random_csr;
using spmvm::testing::random_vector;

class ScopedTracing {
 public:
  explicit ScopedTracing(bool on) : prev_(obs::tracing_enabled()) {
    obs::clear_trace();
    obs::set_tracing(on);
  }
  ~ScopedTracing() {
    obs::set_tracing(prev_);
    obs::clear_trace();
  }

 private:
  bool prev_;
};

/// Drive `iters` steady-state plan iterations on `n_ranks` with tracing
/// on; the recorded window is clipped to the iterations only (rank 0
/// clears the trace between two barriers after construction).
void run_traced_plan(const Csr<double>& a, int n_ranks, CommScheme scheme,
                     int iters, int gather_threads = 1) {
  const auto part = partition_balanced_nnz(a, n_ranks);
  const auto x = random_vector<double>(a.n_cols, 7);
  msg::Runtime::run(n_ranks, [&](msg::Comm& comm) {
    const auto d = distribute(a, part, comm.rank());
    const index_t row0 = part.begin(comm.rank());
    std::vector<double> x_local(x.begin() + row0,
                                x.begin() + part.end(comm.rank()));
    std::vector<double> y(static_cast<std::size_t>(d.n_local));
    CommPlan<double> plan(comm, d, scheme, gather_threads);
    // One warm iteration outside the window: first-call statics (pool
    // spin-up, counter registration) land here, then rank 0 clips the
    // trace to the steady-state iterations between two barriers.
    plan.spmv(std::span<const double>(x_local), std::span<double>(y));
    comm.barrier();
    if (comm.rank() == 0) obs::clear_trace();
    comm.barrier();
    for (int it = 0; it < iters; ++it) {
      plan.spmv(std::span<const double>(x_local), std::span<double>(y));
      comm.barrier();
    }
  });
}

TEST(DistTrace, RankThreadsStampTheirLane) {
  ScopedTracing on(true);
  msg::Runtime::run(3, [&](msg::Comm& comm) {
    EXPECT_EQ(obs::current_rank(), comm.rank());
    SPMVM_TRACE_SPAN("test/ranked");
    comm.barrier();
  });
  std::vector<bool> seen(3, false);
  for (const auto& e : obs::collect()) {
    if (std::string(e.name) != "test/ranked") continue;
    ASSERT_GE(e.rank, 0);
    ASSERT_LT(e.rank, 3);
    seen[static_cast<std::size_t>(e.rank)] = true;
  }
  EXPECT_TRUE(seen[0] && seen[1] && seen[2]);
  // The main thread stays unranked.
  EXPECT_EQ(obs::current_rank(), -1);
}

TEST(DistTrace, MergedTraceIsTimeOrderedAndRankComplete) {
  ScopedTracing on(true);
  const int n_ranks = 4;
  const auto a = random_csr<double>(211, 211, 0, 14, 31);
  run_traced_plan(a, n_ranks, CommScheme::vector_mode, 3);

  const auto parts =
      obs::split_trace_by_rank(obs::collect(), obs::trace_threads());
  // One part per rank lane; an unranked part (pool workers, main
  // thread) may or may not exist depending on what else was recorded.
  int ranked_parts = 0;
  for (const auto& p : parts) {
    if (p.rank < 0) continue;
    ++ranked_parts;
    EXPECT_FALSE(p.events.empty()) << "rank " << p.rank << " has no spans";
    for (const auto& e : p.events) EXPECT_EQ(e.rank, p.rank);
  }
  EXPECT_EQ(ranked_parts, n_ranks);

  const obs::MergedTrace merged = obs::merge_traces(parts);
  std::vector<bool> rank_seen(static_cast<std::size_t>(n_ranks), false);
  for (std::size_t i = 0; i < merged.events.size(); ++i) {
    const auto& e = merged.events[i];
    if (i > 0) EXPECT_GE(e.t0_ns, merged.events[i - 1].t0_ns);
    if (e.rank >= 0 && e.rank < n_ranks)
      rank_seen[static_cast<std::size_t>(e.rank)] = true;
  }
  for (int r = 0; r < n_ranks; ++r)
    EXPECT_TRUE(rank_seen[static_cast<std::size_t>(r)]) << "rank " << r;
  // Thread ids are unique after the merge remap.
  std::vector<std::uint32_t> tids;
  for (const auto& t : merged.threads) tids.push_back(t.tid);
  std::sort(tids.begin(), tids.end());
  EXPECT_TRUE(std::adjacent_find(tids.begin(), tids.end()) == tids.end());
}

TEST(DistTrace, MergeRebasesPartEpochs) {
  obs::RankTrace p0, p1;
  p0.rank = 0;
  p0.epoch_ns = 1000;
  obs::TraceEvent e;
  e.name = "test/a";
  e.t0_ns = 10;
  e.t1_ns = 20;
  p0.events.push_back(e);
  p0.threads.push_back({0, "main", -1});
  p1.rank = 1;
  p1.epoch_ns = 5000;
  e.t0_ns = 1;
  e.t1_ns = 2;
  p1.events.push_back(e);
  p1.threads.push_back({0, "main", -1});

  const obs::MergedTrace merged = obs::merge_traces({p0, p1});
  ASSERT_EQ(merged.events.size(), 2u);
  EXPECT_EQ(merged.events[0].t0_ns, 1010u);
  EXPECT_EQ(merged.events[0].rank, 0);
  EXPECT_EQ(merged.events[1].t0_ns, 5001u);
  EXPECT_EQ(merged.events[1].rank, 1);
  ASSERT_EQ(merged.threads.size(), 2u);
  EXPECT_NE(merged.threads[0].tid, merged.threads[1].tid);
}

class FlowSweep
    : public ::testing::TestWithParam<std::tuple<int, CommScheme>> {};

TEST_P(FlowSweep, FlowIdsBalance) {
  const auto& [n_ranks, scheme] = GetParam();
  ScopedTracing on(true);
  const auto a = random_csr<double>(211, 211, 0, 14, 31);
  run_traced_plan(a, n_ranks, scheme, 3, /*gather_threads=*/2);

  std::vector<std::uint64_t> sent, received;
  for (const auto& e : obs::collect()) {
    if (e.flow_id == 0) continue;
    if (e.flow == obs::FlowDir::send) sent.push_back(e.flow_id);
    if (e.flow == obs::FlowDir::recv) received.push_back(e.flow_id);
  }
  std::sort(sent.begin(), sent.end());
  std::sort(received.begin(), received.end());
  // Every traced send has exactly one matching receive, on every
  // scheme and rank count (n_ranks == 1 exchanges nothing).
  EXPECT_EQ(sent, received);
  if (n_ranks > 1) EXPECT_FALSE(sent.empty());
  EXPECT_TRUE(std::adjacent_find(sent.begin(), sent.end()) == sent.end())
      << "flow ids must be unique";
}

INSTANTIATE_TEST_SUITE_P(
    RanksAndSchemes, FlowSweep,
    ::testing::Combine(::testing::Values(1, 2, 7),
                       ::testing::Values(CommScheme::vector_mode,
                                         CommScheme::naive_overlap,
                                         CommScheme::task_mode)));

TEST(DistTrace, ChromeExportHasRankLanesAndFlowArrows) {
  ScopedTracing on(true);
  const auto a = random_csr<double>(211, 211, 0, 14, 31);
  run_traced_plan(a, 2, CommScheme::vector_mode, 2);

  const obs::MergedTrace merged = obs::merge_traces(
      obs::split_trace_by_rank(obs::collect(), obs::trace_threads()));
  const std::string json =
      obs::chrome_trace_json(merged.events, merged.threads);
  // One pid lane per rank (pid = rank + 1), named "rank N".
  EXPECT_NE(json.find("\"name\":\"rank 0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rank 1\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
  // Flow arrows: a start ("s") on the send span and a terminating
  // "f" (enclosing-slice binding) on the receive span.
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\",\"bp\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"msg\""), std::string::npos);
}

TEST(DistTrace, UnrankedTraceExportsWithoutRankLanes) {
  // Synthetic single-process trace (the live registry keeps rank-thread
  // registrations from earlier tests in this binary alive): pid 0, no
  // process metadata lanes — the legacy export shape.
  std::vector<obs::TraceEvent> events(1);
  events[0].name = "test/plain";
  events[0].t0_ns = 10;
  events[0].t1_ns = 20;
  const std::vector<obs::TraceThread> threads = {{0, "main", -1}};
  const std::string json = obs::chrome_trace_json(events, threads);
  EXPECT_NE(json.find("\"pid\":0"), std::string::npos);
  EXPECT_EQ(json.find("\"name\":\"process_name\""), std::string::npos);
}

TEST(Attribution, PhaseSumsMatchWallTime) {
  ScopedTracing on(true);
  const int n_ranks = 4;
  // Large enough that the six phase spans dominate the un-spanned
  // gaps between them (span recording, counter updates) by orders of
  // magnitude — those gaps are a fixed cost per iteration, so the 5%
  // bound needs iterations in the hundreds-of-microseconds range.
  const auto a = random_csr<double>(20000, 20000, 8, 32, 77);
  run_traced_plan(a, n_ranks, CommScheme::vector_mode, 5);

  const obs::AttributionReport r = obs::attribute_comm_phases(obs::collect());
  ASSERT_EQ(r.ranks.size(), static_cast<std::size_t>(n_ranks));
  for (const auto& rank : r.ranks) {
    EXPECT_EQ(rank.iterations, 5u);
    ASSERT_GT(rank.wall_s, 0.0);
    // Vector mode runs its phases back to back inside the iteration
    // span: the attributed phase time must account for the measured
    // iteration wall time within 5%.
    const double rel =
        std::abs(rank.phase_sum_s - rank.wall_s) / rank.wall_s;
    EXPECT_LE(rel, 0.05) << "rank " << rank.rank
                         << ": phase_sum=" << rank.phase_sum_s
                         << " wall=" << rank.wall_s;
  }
}

TEST(Attribution, ReportAggregatesAndRenders) {
  // Synthetic two-rank window: rank 0 overlaps nothing, rank 1 hides
  // half of a 4 us wait under its 8 us iteration.
  std::vector<obs::TraceEvent> events;
  const auto span = [&](const char* name, int rank, std::uint64_t t0_us,
                        std::uint64_t t1_us) {
    obs::TraceEvent e;
    e.name = name;
    e.rank = rank;
    e.t0_ns = t0_us * 1000;
    e.t1_ns = t1_us * 1000;
    return e;
  };
  events.push_back(span("dist/plan_vector", 0, 0, 10));
  events.push_back(span("comm/plan_gather", 0, 0, 2));
  events.push_back(span("comm/plan_waitall", 0, 2, 6));
  events.push_back(span("kernel/local", 0, 6, 10));
  events.push_back(span("dist/plan_task", 1, 0, 8));
  events.push_back(span("comm/plan_waitall", 1, 0, 4));
  events.push_back(span("kernel/local", 1, 0, 8));
  obs::TraceEvent send = span("msg/send", 0, 0, 1);
  send.bytes = 4000;
  send.arg_name[0] = "peer";
  send.arg_value[0] = 1.0;
  send.n_args = 1;
  events.push_back(send);

  const obs::AttributionReport r = obs::attribute_comm_phases(events);
  ASSERT_EQ(r.ranks.size(), 2u);
  EXPECT_EQ(r.ranks[0].rank, 0);
  EXPECT_NEAR(r.ranks[0].wall_s, 10e-6, 1e-12);
  EXPECT_NEAR(r.ranks[0].phase_sum_s, 10e-6, 1e-12);
  EXPECT_NEAR(r.ranks[0].overlap_s, 0.0, 1e-12);
  EXPECT_NEAR(r.ranks[1].wall_s, 8e-6, 1e-12);
  EXPECT_NEAR(r.ranks[1].phase_sum_s, 12e-6, 1e-12);
  EXPECT_NEAR(r.ranks[1].overlap_s, 4e-6, 1e-12);
  EXPECT_NEAR(r.ranks[1].overlap_pct(), 50.0, 1e-9);

  ASSERT_EQ(r.phases.size(), static_cast<std::size_t>(obs::kNumCommPhases));
  const auto& wait = r.phases[static_cast<int>(obs::CommPhase::wait)];
  EXPECT_NEAR(wait.min_s, 4e-6, 1e-12);
  EXPECT_NEAR(wait.max_s, 4e-6, 1e-12);
  EXPECT_NEAR(wait.total_s, 8e-6, 1e-12);

  ASSERT_EQ(r.peers.size(), 1u);
  EXPECT_EQ(r.peers[0].rank, 0);
  EXPECT_EQ(r.peers[0].peer, 1);
  EXPECT_EQ(r.peers[0].bytes, 4000u);
  EXPECT_NEAR(r.peers[0].gbytes_per_s(), 4.0, 1e-9);

  const std::string table = r.render();
  EXPECT_NE(table.find("gather"), std::string::npos);
  EXPECT_NE(table.find("overlap %"), std::string::npos);
  EXPECT_NE(table.find("0 -> 1"), std::string::npos);

  bool saw_wall = false, saw_overlap = false;
  for (const auto& [k, v] : r.counters()) {
    if (k == "wall_s") saw_wall = true;
    if (k == "overlap_pct") saw_overlap = true;
  }
  EXPECT_TRUE(saw_wall && saw_overlap);
}

TEST(Attribution, EmptyTraceYieldsEmptyReport) {
  const obs::AttributionReport r = obs::attribute_comm_phases({});
  EXPECT_TRUE(r.empty());
  EXPECT_TRUE(r.counters().empty());
  EXPECT_NE(r.render().find("no comm-plan iterations"), std::string::npos);
}

}  // namespace
}  // namespace spmvm::dist
