#include "sparse/ellpack.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace spmvm {
namespace {

TEST(Ellpack, PadsRowsToChunk) {
  const auto a = testing::random_csr<double>(33, 33, 1, 4, 1);
  const auto e = Ellpack<double>::from_csr(a, 32);
  e.validate();
  EXPECT_EQ(e.padded_rows, 64);
  EXPECT_EQ(e.width, a.max_row_len());
  EXPECT_EQ(e.nnz, a.nnz());
}

TEST(Ellpack, ExactMultipleNeedsNoRowPadding) {
  const auto a = testing::random_csr<double>(64, 64, 1, 4, 2);
  const auto e = Ellpack<double>::from_csr(a, 32);
  EXPECT_EQ(e.padded_rows, 64);
}

TEST(Ellpack, ColumnMajorLayoutMatchesCsr) {
  const auto a = testing::random_csr<double>(20, 20, 0, 6, 3);
  const auto e = Ellpack<double>::from_csr(a, 4);
  e.validate();
  for (index_t i = 0; i < a.n_rows; ++i) {
    const offset_t b = a.row_ptr[static_cast<std::size_t>(i)];
    for (index_t j = 0; j < a.row_len(i); ++j) {
      const std::size_t k = static_cast<std::size_t>(j) *
                                static_cast<std::size_t>(e.padded_rows) +
                            static_cast<std::size_t>(i);
      EXPECT_DOUBLE_EQ(e.val[k], a.val[static_cast<std::size_t>(b + j)]);
      EXPECT_EQ(e.col_idx[k], a.col_idx[static_cast<std::size_t>(b + j)]);
    }
  }
}

TEST(Ellpack, PaddingEntriesAreZero) {
  const auto a = testing::random_csr<double>(10, 10, 1, 5, 4);
  const auto e = Ellpack<double>::from_csr(a, 8);
  for (index_t i = 0; i < e.padded_rows; ++i) {
    for (index_t j = e.row_len[static_cast<std::size_t>(i)]; j < e.width; ++j) {
      const std::size_t k = static_cast<std::size_t>(j) *
                                static_cast<std::size_t>(e.padded_rows) +
                            static_cast<std::size_t>(i);
      EXPECT_DOUBLE_EQ(e.val[k], 0.0);
      EXPECT_EQ(e.col_idx[k], 0);
    }
  }
}

TEST(Ellpack, FillFractionForConstantRowLength) {
  // Constant row length: ELLPACK has no fill beyond the phantom rows.
  const auto a = testing::random_csr<double>(32, 32, 5, 5, 5);
  const auto e = Ellpack<double>::from_csr(a, 32);
  EXPECT_DOUBLE_EQ(e.fill_fraction(), 0.0);
}

TEST(Ellpack, WorstCaseFill) {
  // One full row plus single-entry rows: ELLPACK stores nearly N*N.
  Coo<double> coo(32, 32);
  for (index_t j = 0; j < 32; ++j) coo.add(0, j, 1.0);
  for (index_t i = 1; i < 32; ++i) coo.add(i, 0, 1.0);
  const auto e =
      Ellpack<double>::from_csr(Csr<double>::from_coo(std::move(coo)), 32);
  EXPECT_EQ(e.stored_entries(), 32 * 32);
  EXPECT_GT(e.fill_fraction(), 0.9);
}

TEST(Ellpack, BytesWithAndWithoutRowLen) {
  const auto a = testing::random_csr<double>(16, 16, 2, 4, 6);
  const auto e = Ellpack<double>::from_csr(a, 16);
  EXPECT_EQ(e.bytes(true) - e.bytes(false),
            static_cast<std::size_t>(e.padded_rows) * sizeof(index_t));
}

TEST(Ellpack, EmptyMatrix) {
  Coo<double> coo(0, 0);
  const auto e =
      Ellpack<double>::from_csr(Csr<double>::from_coo(std::move(coo)), 32);
  e.validate();
  EXPECT_EQ(e.stored_entries(), 0);
}

}  // namespace
}  // namespace spmvm
