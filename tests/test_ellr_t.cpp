#include <gtest/gtest.h>

#include "gpusim/kernel_sim.hpp"
#include "matgen/generators.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace spmvm::gpusim {
namespace {

const DeviceSpec kFermi = DeviceSpec::tesla_c2070();

TEST(EllrT, TOneMatchesEllpackRScheduling) {
  const auto a = spmvm::testing::random_csr<double>(512, 512, 0, 24, 1);
  const auto e = Ellpack<double>::from_csr(a, 32);
  const auto er = simulate(kFermi, e, EllpackKernel::r);
  const auto t1 = simulate_ellr_t(kFermi, e, 1);
  EXPECT_EQ(t1.stats.warp_steps, er.stats.warp_steps);
  EXPECT_EQ(t1.stats.useful_lane_steps, er.stats.useful_lane_steps);
}

TEST(EllrT, UsefulWorkEqualsNnzForAllT) {
  const auto a = spmvm::testing::random_csr<double>(300, 300, 0, 30, 2);
  const auto e = Ellpack<double>::from_csr(a, 32);
  for (int t : {1, 2, 4, 8, 16, 32}) {
    const auto r = simulate_ellr_t(kFermi, e, t);
    EXPECT_EQ(r.stats.useful_lane_steps,
              static_cast<std::uint64_t>(a.nnz()))
        << "T=" << t;
  }
}

TEST(EllrT, HigherTCutsWarpTailOnLongImbalancedRows) {
  // Long imbalanced rows: T > 1 shrinks the per-warp step count.
  const auto a = make_powerlaw<double>(4096, 40.0, 500, 3);
  const auto e = Ellpack<double>::from_csr(a, 32);
  const auto t1 = simulate_ellr_t(kFermi, e, 1);
  const auto t8 = simulate_ellr_t(kFermi, e, 8);
  EXPECT_LT(t8.stats.warp_steps, t1.stats.warp_steps);
}

TEST(EllrT, OversizedTWastesLanesOnShortRows) {
  // N_nzr ~ 7 with T = 32: at most 7 of 32 lanes ever active.
  const auto a = make_random_uniform<double>(20000, 7, 4);
  const auto e = Ellpack<double>::from_csr(a, 32);
  const auto t32 = simulate_ellr_t(kFermi, e, 32);
  EXPECT_LT(t32.stats.warp_efficiency(), 0.3);
  const auto t1 = simulate_ellr_t(kFermi, e, 1);
  EXPECT_GT(t1.gflops, t32.gflops);
}

TEST(EllrT, BestTIsMatrixDependent) {
  // The tuning-parameter contrast with pJDS: the optimal T differs
  // between a short-row and a long-row matrix.
  const auto short_rows = make_random_uniform<double>(20000, 6, 5);
  const auto long_rows = make_random_uniform<double>(2000, 200, 6);
  auto best_t = [&](const Csr<double>& a) {
    const auto e = Ellpack<double>::from_csr(a, 32);
    int best = 1;
    double best_gfs = 0.0;
    for (int t : {1, 2, 4, 8, 16, 32}) {
      const double g = simulate_ellr_t(kFermi, e, t).gflops;
      if (g > best_gfs) {
        best_gfs = g;
        best = t;
      }
    }
    return best;
  };
  EXPECT_LT(best_t(short_rows), best_t(long_rows));
}

TEST(EllrT, RejectsNonDivisorT) {
  const auto a = spmvm::testing::random_csr<double>(64, 64, 1, 4, 7);
  const auto e = Ellpack<double>::from_csr(a, 32);
  EXPECT_THROW(simulate_ellr_t(kFermi, e, 3), Error);
  EXPECT_THROW(simulate_ellr_t(kFermi, e, 0), Error);
}

}  // namespace
}  // namespace spmvm::gpusim
