// Cross-backend contract of the execution engine: the host, gpusim, and
// hybrid backends must produce bit-identical products for every
// registered storage format (gpusim executes the same host-mirror
// kernels; hybrid pins its parts to PermuteColumns::no so each row
// accumulates its entries in the same order as the unsplit kernel), and
// the engine's staging/selection model must be deterministic.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "exec/engine.hpp"
#include "formats/registry.hpp"
#include "matgen/generators.hpp"
#include "obs/ledger.hpp"
#include "solver/cg.hpp"
#include "solver/operator.hpp"

using namespace spmvm;

namespace {

Csr<double> test_matrix() {
  GenConfig cfg;
  cfg.scale = 512;  // smoke-sized sAMG: irregular rows, a few thousand nnz
  return make_samg<double>(cfg);
}

std::vector<double> test_x(index_t n_cols) {
  std::vector<double> x(static_cast<std::size_t>(n_cols));
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = 0.5 + static_cast<double>(i % 7) * 0.125;  // exact binary fractions
  return x;
}

/// Independent serial CSR reference (no library kernel involved).
std::vector<double> reference(const Csr<double>& a,
                              const std::vector<double>& x) {
  std::vector<double> y(static_cast<std::size_t>(a.n_rows));
  for (index_t i = 0; i < a.n_rows; ++i) {
    double acc = 0.0;
    for (offset_t k = a.row_ptr[static_cast<std::size_t>(i)];
         k < a.row_ptr[static_cast<std::size_t>(i) + 1]; ++k)
      acc += a.val[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(
                 a.col_idx[static_cast<std::size_t>(k)])];
    y[static_cast<std::size_t>(i)] = acc;
  }
  return y;
}

/// Bind + one product on `backend`, original basis, deterministic opts.
std::vector<double> product(exec::Engine<double>& eng, const char* backend,
                            const Csr<double>& a, const char* format,
                            const std::vector<double>& x,
                            exec::LaunchOptions launch = {}) {
  formats::PlanOptions opts;
  opts.permute_columns = PermuteColumns::no;
  opts.probe = false;
  const auto bound = eng.bind(backend, a, format, opts, launch);
  std::vector<double> y(static_cast<std::size_t>(a.n_rows), -1.0);
  bound->apply(std::span<const double>(x), std::span<double>(y));
  return y;
}

}  // namespace

TEST(ExecBackends, ListAndLookup) {
  exec::Engine<double> eng;
  const auto infos = eng.list();
  ASSERT_EQ(infos.size(), 3u);
  EXPECT_STREQ(infos[0].name, "host");
  EXPECT_STREQ(infos[1].name, "gpusim");
  EXPECT_STREQ(infos[2].name, "hybrid");
  EXPECT_FALSE(infos[0].uses_device);
  EXPECT_TRUE(infos[1].uses_device);
  EXPECT_TRUE(infos[2].uses_device);
  EXPECT_NE(eng.find("gpusim"), nullptr);
  EXPECT_EQ(eng.find("cuda"), nullptr);
  EXPECT_THROW(eng.at("cuda"), Error);
  EXPECT_TRUE(exec::is_backend_name("auto"));
  EXPECT_FALSE(exec::is_backend_name("cpu"));
}

TEST(ExecBackends, BitIdenticalAcrossBackendsForEveryFormat) {
  const Csr<double> a = test_matrix();
  const std::vector<double> x = test_x(a.n_cols);
  const std::vector<double> ref = reference(a, x);

  exec::Engine<double> eng;
  for (const formats::FormatInfo& info : formats::registry<double>().list()) {
    SCOPED_TRACE(info.name);
    const std::vector<double> host = product(eng, "host", a, info.name, x);
    const std::vector<double> sim = product(eng, "gpusim", a, info.name, x);
    const std::vector<double> hyb = product(eng, "hybrid", a, info.name, x);
    ASSERT_EQ(host.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      // Accumulation order is the row's entries in ascending column
      // order on every backend, so equality is exact, not approximate.
      EXPECT_EQ(host[i], sim[i]) << "row " << i;
      EXPECT_EQ(host[i], hyb[i]) << "row " << i;
      EXPECT_NEAR(host[i], ref[i], 1e-12 * (1.0 + std::abs(ref[i])))
          << "row " << i;
    }
  }
}

TEST(ExecBackends, HybridDeviceShareSweep) {
  const Csr<double> a = test_matrix();
  const std::vector<double> x = test_x(a.n_cols);
  const std::vector<double> ref = reference(a, x);

  exec::Engine<double> eng;
  for (const double share : {0.0, 0.5, 1.0}) {
    SCOPED_TRACE(share);
    exec::LaunchOptions launch;
    launch.device_share = share;
    formats::PlanOptions opts;
    opts.permute_columns = PermuteColumns::no;
    const auto bound = eng.bind("hybrid", a, "sell_c_sigma", opts, launch);
    if (share == 0.0) {
      EXPECT_EQ(bound->split_row(), 0);
      EXPECT_EQ(bound->device_nnz_share(), 0.0);
    } else if (share == 1.0) {
      EXPECT_EQ(bound->split_row(), a.n_rows);
      EXPECT_EQ(bound->device_nnz_share(), 1.0);
    } else {
      EXPECT_GT(bound->split_row(), 0);
      EXPECT_LT(bound->split_row(), a.n_rows);
      EXPECT_NEAR(bound->device_nnz_share(), share, 0.05);
    }
    std::vector<double> y(static_cast<std::size_t>(a.n_rows));
    bound->apply(std::span<const double>(x), std::span<double>(y));
    for (std::size_t i = 0; i < ref.size(); ++i)
      EXPECT_NEAR(y[i], ref[i], 1e-12 * (1.0 + std::abs(ref[i])))
          << "row " << i;
  }
}

TEST(ExecBackends, HybridEmptyRowsAtSplitBoundary) {
  // 8 rows, rows 3–5 empty; a 50% nnz split lands inside the empty band,
  // so one part ends (and the other begins) on empty rows.
  Csr<double> a;
  a.n_rows = 8;
  a.n_cols = 8;
  a.row_ptr = {0, 2, 4, 6, 6, 6, 6, 9, 12};
  a.col_idx = {0, 1, 1, 2, 2, 3, 0, 4, 7, 1, 5, 6};
  a.val = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  a.validate();
  const std::vector<double> x = test_x(a.n_cols);
  const std::vector<double> ref = reference(a, x);

  exec::Engine<double> eng;
  for (const double share : {0.0, 0.5, 1.0}) {
    SCOPED_TRACE(share);
    exec::LaunchOptions launch;
    launch.device_share = share;
    const auto bound = eng.bind("hybrid", a, "csr", {}, launch);
    std::vector<double> y(static_cast<std::size_t>(a.n_rows), -1.0);
    bound->apply(std::span<const double>(x), std::span<double>(y));
    for (std::size_t i = 0; i < ref.size(); ++i)
      EXPECT_EQ(y[i], ref[i]) << "row " << i;
  }
  // Degenerate shapes must bind too: the all-empty-rows matrix.
  Csr<double> empty;
  empty.n_rows = 4;
  empty.n_cols = 4;
  empty.row_ptr = {0, 0, 0, 0, 0};
  const auto bound = eng.bind("hybrid", empty, "csr");
  std::vector<double> y(4, -1.0);
  const std::vector<double> xe(4, 1.0);
  bound->apply(std::span<const double>(xe), std::span<double>(y));
  for (const double v : y) EXPECT_EQ(v, 0.0);
}

TEST(ExecBackends, TransferAccountingAndResidentVectors) {
  const Csr<double> a = test_matrix();
  const std::vector<double> x = test_x(a.n_cols);

  exec::Engine<double> eng;
  const auto& tm = *eng.transfers();
  const std::uint64_t h2d0 = tm.bytes_to_device();
  const auto plan = formats::registry<double>().build("ellpack_r", a);
  const std::size_t image = plan->footprint().total_bytes(sizeof(double));

  // Bind uploads the matrix image once.
  auto bound = eng.bind_plan("gpusim", plan);
  EXPECT_EQ(tm.bytes_to_device() - h2d0, image);

  // Each non-resident product stages x up and y down.
  const std::uint64_t h2d1 = tm.bytes_to_device();
  const std::uint64_t d2h1 = tm.bytes_to_host();
  std::vector<double> y(static_cast<std::size_t>(a.n_rows));
  bound->apply(std::span<const double>(x), std::span<double>(y));
  EXPECT_EQ(tm.bytes_to_device() - h2d1,
            static_cast<std::uint64_t>(a.n_cols) * sizeof(double));
  EXPECT_EQ(tm.bytes_to_host() - d2h1,
            static_cast<std::uint64_t>(a.n_rows) * sizeof(double));
  EXPECT_GT(tm.transfer_seconds(), 0.0);

  // Resident vectors: no per-product staging.
  exec::LaunchOptions launch;
  launch.vectors_resident = true;
  auto resident = eng.bind_plan("gpusim", plan, launch);
  const std::uint64_t h2d2 = tm.bytes_to_device();
  const std::uint64_t d2h2 = tm.bytes_to_host();
  resident->apply(std::span<const double>(x), std::span<double>(y));
  EXPECT_EQ(tm.bytes_to_device(), h2d2);
  EXPECT_EQ(tm.bytes_to_host(), d2h2);
}

TEST(ExecBackends, AutoSelectionIsDeterministicAndBindable) {
  const Csr<double> a = test_matrix();
  exec::Engine<double> eng;
  const exec::BackendChoice c1 = eng.select_backend(a);
  const exec::BackendChoice c2 = eng.select_backend(a);
  EXPECT_EQ(c1.chosen, c2.chosen);
  EXPECT_EQ(c1.host_seconds, c2.host_seconds);
  EXPECT_EQ(c1.gpusim_seconds, c2.gpusim_seconds);
  EXPECT_EQ(c1.hybrid_seconds, c2.hybrid_seconds);
  EXPECT_TRUE(exec::is_backend_name(c1.chosen));
  EXPECT_NE(c1.chosen, "auto");
  EXPECT_GT(c1.host_seconds, 0.0);
  EXPECT_GT(c1.gpusim_seconds, 0.0);
  EXPECT_GT(c1.hybrid_seconds, 0.0);
  // The empty matrix falls back to the host backend.
  EXPECT_EQ(eng.select_backend(0, 0, 0).chosen, "host");

  const std::vector<double> x = test_x(a.n_cols);
  const std::vector<double> ref = reference(a, x);
  const std::vector<double> y = product(eng, "auto", a, "csr", x);
  for (std::size_t i = 0; i < ref.size(); ++i)
    EXPECT_NEAR(y[i], ref[i], 1e-12 * (1.0 + std::abs(ref[i])));
}

TEST(ExecBackends, EveryDeviceLaunchLandsInTheLedger) {
  const Csr<double> a = test_matrix();
  const std::vector<double> x = test_x(a.n_cols);
  std::vector<double> y(static_cast<std::size_t>(a.n_rows));

  obs::reset_ledger();
  obs::set_ledger_enabled(true);
  exec::Engine<double> eng;
  const auto sim = eng.bind("gpusim", a, "pjds");
  sim->apply(std::span<const double>(x), std::span<double>(y));
  exec::LaunchOptions launch;
  launch.device_share = 0.5;
  const auto hyb = eng.bind("hybrid", a, "pjds", {}, launch);
  hyb->apply(std::span<const double>(x), std::span<double>(y));
  obs::set_ledger_enabled(false);

  bool saw_device = false, saw_pcie = false, saw_hybrid = false;
  for (const obs::EffRecord& r : obs::ledger_snapshot()) {
    if (r.lane == obs::RoofLane::device && r.phase == "launch")
      saw_device = true;
    if (r.lane == obs::RoofLane::pcie) saw_pcie = true;
    if (r.lane == obs::RoofLane::host && r.phase == "hybrid") {
      saw_hybrid = true;
      EXPECT_GT(r.predicted_s, 0.0);
      EXPECT_GT(r.bytes, 0.0);
    }
  }
  EXPECT_TRUE(saw_device);
  EXPECT_TRUE(saw_pcie);
  EXPECT_TRUE(saw_hybrid);
  obs::reset_ledger();
}

TEST(ExecBackends, SolverIteratesOnAnyBackend) {
  // The same SPD system solved through operators over every backend
  // must converge to the same solution.
  const auto a = std::make_shared<const Csr<double>>(
      make_banded<double>(400, 3));
  const std::vector<double> b(static_cast<std::size_t>(a->n_rows), 1.0);

  exec::Engine<double> eng;
  std::vector<std::vector<double>> solutions;
  for (const char* backend : {"host", "gpusim", "hybrid"}) {
    SCOPED_TRACE(backend);
    std::shared_ptr<exec::BoundSpmv<double>> bound =
        eng.bind(backend, *a, "sell_c_sigma");
    const solver::Operator<double> op = solver::make_operator(bound);
    std::vector<double> sol(b.size(), 0.0);
    const solver::CgResult r = solver::cg(
        op, std::span<const double>(b), std::span<double>(sol), 1e-10, 500);
    EXPECT_TRUE(r.converged);
    solutions.push_back(std::move(sol));
  }
  for (std::size_t k = 1; k < solutions.size(); ++k)
    for (std::size_t i = 0; i < solutions[0].size(); ++i)
      EXPECT_NEAR(solutions[k][i], solutions[0][i], 1e-9) << "row " << i;
}
