#include "sparse/footprint.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "util/error.hpp"

namespace spmvm {
namespace {

TEST(Footprint, CsrIsMinimal) {
  const auto a = testing::random_csr<double>(100, 100, 0, 10, 1);
  const auto f = footprint(a);
  EXPECT_EQ(f.stored_entries, a.nnz());
  EXPECT_DOUBLE_EQ(f.overhead_vs_minimum(), 0.0);
}

TEST(Footprint, EllpackCountsFill) {
  const auto a = testing::random_csr<double>(100, 100, 1, 10, 2);
  const auto e = Ellpack<double>::from_csr(a, 32);
  const auto f = footprint(e, true);
  EXPECT_EQ(f.stored_entries, e.stored_entries());
  EXPECT_GE(f.overhead_vs_minimum(), 0.0);
  // Without rowmax[] the aux bytes vanish (plain ELLPACK).
  EXPECT_EQ(footprint(e, false).aux_bytes, 0u);
}

TEST(Footprint, TotalBytesScaleWithScalarSize) {
  const auto a = testing::random_csr<double>(64, 64, 2, 8, 3);
  const auto p = Pjds<double>::from_csr(a);
  const auto f = footprint(p);
  const auto sp = f.total_bytes(4);
  const auto dp = f.total_bytes(8);
  EXPECT_EQ(dp - sp, static_cast<std::size_t>(f.stored_entries) * 4);
}

TEST(Footprint, DataReductionOrderingByRowSpread) {
  // A matrix with wildly varying row lengths must show a much larger
  // pJDS-vs-ELLPACK reduction than a near-constant one (Table I logic).
  const auto wide = testing::random_csr<double>(512, 512, 1, 64, 4);
  const auto narrow = testing::random_csr<double>(512, 512, 60, 64, 5);
  const auto rw = data_reduction_percent(Pjds<double>::from_csr(wide),
                                         Ellpack<double>::from_csr(wide, 32));
  const auto rn = data_reduction_percent(Pjds<double>::from_csr(narrow),
                                         Ellpack<double>::from_csr(narrow, 32));
  EXPECT_GT(rw, rn);
  EXPECT_GT(rw, 20.0);
  EXPECT_LT(rn, 10.0);
}

TEST(Footprint, DataReductionScaleInvariant) {
  // The reduction percentage depends on the row-length distribution, not
  // on the matrix size: doubling N with the same per-row law keeps it
  // nearly constant (justifies the scaled-down benchmark matrices).
  const auto small = testing::random_csr<double>(512, 512, 1, 32, 6);
  const auto large = testing::random_csr<double>(2048, 2048, 1, 32, 7);
  const auto rs = data_reduction_percent(Pjds<double>::from_csr(small),
                                         Ellpack<double>::from_csr(small, 32));
  const auto rl = data_reduction_percent(Pjds<double>::from_csr(large),
                                         Ellpack<double>::from_csr(large, 32));
  EXPECT_NEAR(rs, rl, 5.0);
}

TEST(Footprint, PjdsOverheadTiny) {
  // Paper: overhead of pJDS vs storing only non-zeros is < 0.01% for the
  // test matrices (br = 32). Random matrices are less favorable, but the
  // overhead must still be far below ELLPACK's.
  const auto a = testing::random_csr<double>(1024, 1024, 1, 64, 8);
  const auto p = Pjds<double>::from_csr(a);
  const auto e = Ellpack<double>::from_csr(a, 32);
  EXPECT_LT(footprint(p).overhead_vs_minimum(),
            0.2 * footprint(e, true).overhead_vs_minimum());
}

TEST(Footprint, JdsHasZeroFill) {
  const auto a = testing::random_csr<double>(128, 128, 0, 16, 9);
  const auto j = Jds<double>::from_csr(a);
  EXPECT_DOUBLE_EQ(footprint(j).overhead_vs_minimum(), 0.0);
}

TEST(Footprint, SlicedEllBetweenJdsAndEllpack) {
  const auto a = testing::random_csr<double>(256, 256, 0, 24, 10);
  const auto e = footprint(Ellpack<double>::from_csr(a, 32), true);
  const auto s = footprint(SlicedEll<double>::from_csr(a, 32));
  const auto j = footprint(Jds<double>::from_csr(a));
  EXPECT_LE(s.stored_entries, e.stored_entries);
  EXPECT_GE(s.stored_entries, j.stored_entries);
}

TEST(Footprint, MismatchedMatricesRejected) {
  const auto a = testing::random_csr<double>(64, 64, 2, 2, 11);
  const auto b = testing::random_csr<double>(64, 64, 3, 3, 12);
  EXPECT_THROW(data_reduction_percent(Pjds<double>::from_csr(a),
                                      Ellpack<double>::from_csr(b, 32)),
               Error);
}

}  // namespace
}  // namespace spmvm
