// Parameterized invariant suite for the GPU simulator: physical sanity
// across every (format, device, matrix, ECC) combination.
#include <gtest/gtest.h>

#include <tuple>

#include "gpusim/gpu_spmv.hpp"
#include "matgen/generators.hpp"
#include "test_helpers.hpp"

namespace spmvm::gpusim {
namespace {

enum class MatKind { random_wide, banded, stencil, powerlaw, uniform };

Csr<double> make_matrix(MatKind kind) {
  switch (kind) {
    case MatKind::random_wide:
      return spmvm::testing::random_csr<double>(700, 700, 0, 48, 11);
    case MatKind::banded:
      return make_banded<double>(900, 6);
    case MatKind::stencil:
      return make_poisson2d<double>(30, 30);
    case MatKind::powerlaw:
      return make_powerlaw<double>(800, 9.0, 120, 12);
    case MatKind::uniform:
      return make_random_uniform<double>(600, 24, 13);
  }
  return {};
}

class SimInvariants
    : public ::testing::TestWithParam<
          std::tuple<MatKind, FormatKind, bool /*ecc*/, bool /*fermi*/>> {};

TEST_P(SimInvariants, PhysicallySane) {
  const auto& [mat, format, ecc, fermi] = GetParam();
  const auto a = make_matrix(mat);
  const auto dev =
      fermi ? DeviceSpec::tesla_c2070() : DeviceSpec::tesla_c1060();
  SimOptions opt;
  opt.ecc = ecc;
  const auto r = simulate_format(dev, a, format, opt);

  // Throughput is positive and below both roofs.
  EXPECT_GT(r.gflops, 0.0);
  EXPECT_LT(r.gflops, dev.peak_flops(Precision::dp) / 1e9);
  EXPECT_LE(r.gflops,
            dev.bandwidth_bytes(ecc) / 1e9 / r.code_balance + 1.0);

  // Useful flops are exactly 2 nnz.
  EXPECT_EQ(r.stats.flops, 2 * static_cast<std::uint64_t>(a.nnz()));

  // Traffic can never undercut the compulsory matrix data (one value
  // per non-zero).
  EXPECT_GE(r.stats.dram_bytes(),
            static_cast<std::uint64_t>(a.nnz()) * sizeof(double));

  // Warp accounting.
  EXPECT_GT(r.stats.warps, 0u);
  EXPECT_GT(r.stats.warp_efficiency(), 0.0);
  EXPECT_LE(r.stats.warp_efficiency(), 1.0 + 1e-12);

  // Time composition.
  EXPECT_NEAR(r.seconds,
              std::max(r.mem_seconds, r.issue_seconds) + dev.kernel_launch_s,
              1e-15);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimInvariants,
    ::testing::Combine(
        ::testing::Values(MatKind::random_wide, MatKind::banded,
                          MatKind::stencil, MatKind::powerlaw,
                          MatKind::uniform),
        ::testing::Values(FormatKind::ellpack, FormatKind::ellpack_r,
                          FormatKind::pjds, FormatKind::sliced_ell,
                          FormatKind::csr_scalar, FormatKind::csr_vector),
        ::testing::Values(false, true), ::testing::Values(false, true)));

class EccOrdering : public ::testing::TestWithParam<FormatKind> {};

TEST_P(EccOrdering, EccNeverHelps) {
  const auto a = make_matrix(MatKind::random_wide);
  const auto dev = DeviceSpec::tesla_c2070();
  SimOptions on, off;
  on.ecc = true;
  off.ecc = false;
  EXPECT_GE(simulate_format(dev, a, GetParam(), off).gflops,
            simulate_format(dev, a, GetParam(), on).gflops);
}

INSTANTIATE_TEST_SUITE_P(AllFormats, EccOrdering,
                         ::testing::Values(FormatKind::ellpack,
                                           FormatKind::ellpack_r,
                                           FormatKind::pjds,
                                           FormatKind::sliced_ell,
                                           FormatKind::csr_vector));

TEST(SimDeterminism, RepeatedRunsIdentical) {
  const auto a = make_matrix(MatKind::powerlaw);
  const auto dev = DeviceSpec::tesla_c2070();
  const auto r1 = simulate_format(dev, a, FormatKind::pjds);
  const auto r2 = simulate_format(dev, a, FormatKind::pjds);
  EXPECT_DOUBLE_EQ(r1.seconds, r2.seconds);
  EXPECT_EQ(r1.stats.dram_bytes(), r2.stats.dram_bytes());
}

TEST(SimMonotonicity, MoreNnzMoreTime) {
  const auto dev = DeviceSpec::tesla_c2070();
  double prev = 0.0;
  for (index_t nnzr : {4, 16, 64}) {
    const auto a = make_random_uniform<double>(2000, nnzr, 21);
    const auto r = simulate_format(dev, a, FormatKind::ellpack_r);
    EXPECT_GT(r.seconds, prev);
    prev = r.seconds;
  }
}

}  // namespace
}  // namespace spmvm::gpusim
