// Shared fixtures for the test suite: deterministic random matrices and
// vector comparison helpers.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

#include "sparse/csr.hpp"
#include "util/rng.hpp"

namespace spmvm::testing {

/// Random sparse matrix: each row gets a random length in
/// [min_row_len, max_row_len] with distinct random columns.
template <class T>
Csr<T> random_csr(index_t n_rows, index_t n_cols, index_t min_row_len,
                  index_t max_row_len, std::uint64_t seed) {
  Rng rng(seed);
  Coo<T> coo(n_rows, n_cols);
  std::vector<bool> used(static_cast<std::size_t>(n_cols), false);
  std::vector<index_t> cols;
  for (index_t i = 0; i < n_rows; ++i) {
    const auto span = static_cast<std::uint64_t>(max_row_len - min_row_len + 1);
    index_t len = min_row_len + static_cast<index_t>(rng.next_below(span));
    if (len > n_cols) len = n_cols;
    cols.clear();
    while (static_cast<index_t>(cols.size()) < len) {
      const auto c =
          static_cast<index_t>(rng.next_below(static_cast<std::uint64_t>(n_cols)));
      if (!used[static_cast<std::size_t>(c)]) {
        used[static_cast<std::size_t>(c)] = true;
        cols.push_back(c);
      }
    }
    for (index_t c : cols) {
      used[static_cast<std::size_t>(c)] = false;
      coo.add(i, c, static_cast<T>(rng.uniform(-1.0, 1.0)));
    }
  }
  return Csr<T>::from_coo(std::move(coo));
}

/// Random dense vector in [-1, 1).
template <class T>
std::vector<T> random_vector(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<T> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<T>(rng.uniform(-1.0, 1.0));
  return v;
}

/// Element-wise comparison with a relative-plus-absolute tolerance.
template <class T>
void expect_vectors_near(const std::vector<T>& expected,
                         const std::vector<T>& got, double tol) {
  ASSERT_EQ(expected.size(), got.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const double e = static_cast<double>(expected[i]);
    const double g = static_cast<double>(got[i]);
    const double bound = tol * (1.0 + std::abs(e));
    ASSERT_NEAR(e, g, bound) << "at index " << i;
  }
}

/// Dense reference product y = A·x computed row-by-row from CSR.
template <class T>
std::vector<T> reference_spmv(const Csr<T>& a, const std::vector<T>& x) {
  std::vector<T> y(static_cast<std::size_t>(a.n_rows), T{0});
  for (index_t i = 0; i < a.n_rows; ++i)
    for (offset_t k = a.row_ptr[static_cast<std::size_t>(i)];
         k < a.row_ptr[static_cast<std::size_t>(i) + 1]; ++k)
      y[static_cast<std::size_t>(i)] +=
          a.val[static_cast<std::size_t>(k)] *
          x[static_cast<std::size_t>(a.col_idx[static_cast<std::size_t>(k)])];
  return y;
}

}  // namespace spmvm::testing
