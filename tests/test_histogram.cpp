#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace spmvm {
namespace {

TEST(Histogram, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.count(3), 0u);
  EXPECT_DOUBLE_EQ(h.relative_share(3), 0.0);
  EXPECT_EQ(h.min_value(), 0);
  EXPECT_EQ(h.max_value(), 0);
}

TEST(Histogram, CountsAndShares) {
  Histogram h;
  h.add(2);
  h.add(2);
  h.add(5);
  h.add(0);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(2), 2u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.count(1), 0u);
  EXPECT_DOUBLE_EQ(h.relative_share(2), 0.5);
}

TEST(Histogram, BulkAdd) {
  Histogram h;
  h.add(7, 100);
  EXPECT_EQ(h.count(7), 100u);
  EXPECT_EQ(h.total(), 100u);
}

TEST(Histogram, MinMaxMean) {
  Histogram h;
  h.add(3);
  h.add(9);
  h.add(6);
  EXPECT_EQ(h.min_value(), 3);
  EXPECT_EQ(h.max_value(), 9);
  EXPECT_DOUBLE_EQ(h.mean(), 6.0);
}

TEST(Histogram, ShareAtLeast) {
  Histogram h;
  for (index_t v : {1, 2, 3, 4}) h.add(v);
  EXPECT_DOUBLE_EQ(h.share_at_least(3), 0.5);
  EXPECT_DOUBLE_EQ(h.share_at_least(0), 1.0);
  EXPECT_DOUBLE_EQ(h.share_at_least(5), 0.0);
}

TEST(Histogram, FromValues) {
  const index_t values[] = {4, 4, 4, 1};
  const Histogram h = Histogram::from_values(values);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(4), 3u);
}

TEST(Histogram, RejectsNegative) {
  Histogram h;
  EXPECT_THROW(h.add(-1), Error);
}

}  // namespace
}  // namespace spmvm
