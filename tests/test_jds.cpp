#include "sparse/jds.hpp"

#include <gtest/gtest.h>

#include "sparse/spmv_host.hpp"
#include "test_helpers.hpp"

namespace spmvm {
namespace {

TEST(Jds, BuildsNonIncreasingDiagonals) {
  const auto a = testing::random_csr<double>(50, 50, 0, 12, 7);
  const auto j = Jds<double>::from_csr(a);
  j.validate();
  EXPECT_EQ(j.nnz, a.nnz());
  EXPECT_EQ(j.width, a.max_row_len());
}

TEST(Jds, NoStorageOverhead) {
  const auto a = testing::random_csr<double>(64, 64, 0, 9, 8);
  const auto j = Jds<double>::from_csr(a);
  // Classic JDS stores exactly nnz entries — zero fill by construction.
  EXPECT_EQ(j.jd_ptr.back(), a.nnz());
}

TEST(Jds, SpmvMatchesReferenceRowPermutationOnly) {
  const auto a = testing::random_csr<double>(60, 60, 0, 10, 9);
  const auto j = Jds<double>::from_csr(a, PermuteColumns::no);
  const auto x = testing::random_vector<double>(60, 10);
  std::vector<double> y_perm(60), y(60);
  spmv(j, std::span<const double>(x), std::span<double>(y_perm));
  j.perm.from_permuted<double>(y_perm, y);
  testing::expect_vectors_near<double>(testing::reference_spmv(a, x), y,
                                       1e-12);
}

TEST(Jds, SpmvMatchesReferenceSymmetricPermutation) {
  const auto a = testing::random_csr<double>(60, 60, 0, 10, 11);
  const auto j = Jds<double>::from_csr(a, PermuteColumns::yes);
  const auto x = testing::random_vector<double>(60, 12);
  std::vector<double> x_perm(60), y_perm(60), y(60);
  j.perm.to_permuted<double>(x, x_perm);
  spmv(j, std::span<const double>(x_perm), std::span<double>(y_perm));
  j.perm.from_permuted<double>(y_perm, y);
  testing::expect_vectors_near<double>(testing::reference_spmv(a, x), y,
                                       1e-12);
}

TEST(Jds, HandlesEmptyRows) {
  Coo<double> coo(5, 5);
  coo.add(2, 1, 3.0);
  const auto j = Jds<double>::from_csr(Csr<double>::from_coo(std::move(coo)));
  j.validate();
  EXPECT_EQ(j.width, 1);
  EXPECT_EQ(j.diag_len(0), 1);
}

}  // namespace
}  // namespace spmvm
